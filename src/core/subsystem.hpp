// MemorySubsystem: the one-stop facade a downstream user instantiates
// — NAND device + memory controller + cross-layer framework, wired
// consistently from a single configuration. Operating points are
// applied here: the facade programs both layers (device algorithm
// register and controller ECC capability) atomically, which is
// exactly the co-configuration the paper argues for.
//
// It also implements the paper's future-work extension: per-segment
// differentiated storage services, where block ranges carry their own
// operating point (e.g. an OTP/XIP segment on MinUber and a bulk
// segment on Baseline).
//
// Role in the trade-off loop: MemorySubsystem is the loop's actuator
// and its entry point for users. apply(point) asks the framework for
// the resolved (algo, t) at the current wear and commits it to both
// hardware layers; refresh() re-runs that resolution at epoch
// boundaries as the device ages; current_metrics() reports where on
// the trade-off surface the subsystem is now operating.
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "src/controller/controller.hpp"
#include "src/core/cross_layer.hpp"
#include "src/core/operating_point.hpp"
#include "src/nand/device.hpp"

namespace xlf::core {

struct SubsystemConfig {
  nand::DeviceConfig device;
  controller::ControllerConfig controller;
  hv::HvConfig hv;
  CrossLayerConfig cross_layer;

  // A small default geometry keeps the bit-true array affordable;
  // enlarge for capacity experiments.
  static SubsystemConfig defaults();
};

// Named block range bound to an operating point (storage service).
struct Segment {
  std::string name;
  std::uint32_t first_block = 0;
  std::uint32_t last_block = 0;  // inclusive
  OperatingPoint point;
};

class MemorySubsystem {
 public:
  explicit MemorySubsystem(const SubsystemConfig& config);

  nand::NandDevice& device() { return *device_; }
  controller::MemoryController& controller() { return *controller_; }
  const CrossLayerFramework& framework() const { return *framework_; }

  // --- cross-layer configuration --------------------------------------
  // Apply an operating point for the current device wear: selects the
  // program algorithm on the device and the correction capability on
  // the controller in one step.
  void apply(const OperatingPoint& point);
  const OperatingPoint& active_point() const { return active_point_; }
  // Re-resolve the active point after wear changed (epoch boundary).
  void refresh();
  // Predicted metrics of the active point at the current wear.
  Metrics current_metrics() const;

  // --- differentiated storage services (Section 7 future work) -------
  // Declare a segment; ranges must not overlap existing segments.
  void define_segment(const Segment& segment);
  const std::vector<Segment>& segments() const { return segments_; }
  // Write/read honouring the segment service of the target block.
  controller::WriteResult write_page(nand::PageAddress addr,
                                     const BitVec& data);
  controller::ReadResult read_page(nand::PageAddress addr);

 private:
  double representative_wear() const;
  const Segment* segment_of(std::uint32_t block) const;

  SubsystemConfig config_;
  std::unique_ptr<nand::NandDevice> device_;
  std::unique_ptr<controller::MemoryController> controller_;
  std::unique_ptr<CrossLayerFramework> framework_;
  OperatingPoint active_point_;
  std::vector<Segment> segments_;
};

}  // namespace xlf::core
