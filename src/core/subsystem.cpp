#include "src/core/subsystem.hpp"

#include <algorithm>

#include "src/util/expect.hpp"

namespace xlf::core {

SubsystemConfig SubsystemConfig::defaults() {
  SubsystemConfig config;
  // Defaults across the member configs already encode the paper's
  // parameters (GF(2^16)/4KB/t=3..65, 14-19 V ISPP, 80 MHz codec).
  return config;
}

MemorySubsystem::MemorySubsystem(const SubsystemConfig& config)
    : config_(config),
      device_(std::make_unique<nand::NandDevice>(config.device)),
      controller_(std::make_unique<controller::MemoryController>(
          config.controller, *device_, config.hv)),
      framework_(std::make_unique<CrossLayerFramework>(
          config.cross_layer, config.device.array.aging, device_->timing(),
          config.hv)),
      active_point_(OperatingPoint::baseline()) {
  apply(active_point_);
}

double MemorySubsystem::representative_wear() const {
  // Uniform wear levelling assumption: use the maximum block wear.
  double wear = 0.0;
  for (std::uint32_t b = 0; b < device_->geometry().blocks; ++b) {
    wear = std::max(wear, device_->wear(b));
  }
  return wear;
}

void MemorySubsystem::apply(const OperatingPoint& point) {
  const double wear = representative_wear();
  controller_->set_program_algorithm(point.algorithm);
  controller_->set_correction_capability(framework_->resolve_t(point, wear));
  active_point_ = point;
}

void MemorySubsystem::refresh() { apply(active_point_); }

Metrics MemorySubsystem::current_metrics() const {
  return framework_->evaluate(active_point_, representative_wear());
}

const Segment* MemorySubsystem::segment_of(std::uint32_t block) const {
  for (const Segment& segment : segments_) {
    if (block >= segment.first_block && block <= segment.last_block) {
      return &segment;
    }
  }
  return nullptr;
}

void MemorySubsystem::define_segment(const Segment& segment) {
  XLF_EXPECT(segment.first_block <= segment.last_block);
  XLF_EXPECT(segment.last_block < device_->geometry().blocks);
  for (std::uint32_t b = segment.first_block; b <= segment.last_block; ++b) {
    XLF_EXPECT(segment_of(b) == nullptr && "overlapping segments");
  }
  segments_.push_back(segment);
}

controller::WriteResult MemorySubsystem::write_page(nand::PageAddress addr,
                                                    const BitVec& data) {
  const Segment* segment = segment_of(addr.block);
  if (segment != nullptr) {
    // Service switch: configure both layers for this segment's point.
    const double wear = device_->wear(addr.block);
    controller_->set_program_algorithm(segment->point.algorithm);
    controller_->set_correction_capability(
        framework_->resolve_t(segment->point, wear));
  } else {
    refresh();
  }
  return controller_->write_page(addr, data);
}

controller::ReadResult MemorySubsystem::read_page(nand::PageAddress addr) {
  // Reads honour per-page metadata inside the controller; no segment
  // reconfiguration needed.
  return controller_->read_page(addr);
}

}  // namespace xlf::core
