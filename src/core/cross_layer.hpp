// The cross-layer configuration framework — the paper's primary
// contribution. Evaluates any (program algorithm, ECC capability)
// pair at any lifetime point using the calibrated models, realises
// the three named operating points, and exposes the full
// configuration space for Pareto exploration.
//
// Role in the trade-off loop: this is the loop's solver. It closes
// the chain NAND ISPP schedule -> RBER(cycles) -> required BCH t for
// the UBER target -> ECC decode latency/power -> read/write
// throughput, turning one (algo, t, age) triple into a Metrics
// bundle. OperatingPoint says *which* configurations to consider;
// CrossLayerFramework says *what each one costs and buys*.
//
// Conventions follow the paper's evaluation:
//  * read latency = page read time + worst-case decode latency
//    (decode dominates: ~150 us vs 75 us, Section 6.3.2);
//  * write latency = encode latency + program time (program
//    dominates: ~1.5 ms vs ~51 us, Section 6.3.3);
//  * UBER from Eq. (1); log10 carried exactly for deep-UBER points.
#pragma once

#include <vector>

#include "src/core/metrics.hpp"
#include "src/core/operating_point.hpp"
#include "src/ecc_hw/latency.hpp"
#include "src/ecc_hw/power.hpp"
#include "src/hv/power_model.hpp"
#include "src/nand/aging.hpp"
#include "src/nand/rber_model.hpp"
#include "src/nand/timing.hpp"

namespace xlf::core {

struct CrossLayerConfig {
  ecc_hw::EccHwConfig ecc_hw;
  double uber_target = 1e-11;
  std::uint32_t page_bytes = 4096;
};

class CrossLayerFramework {
 public:
  CrossLayerFramework(const CrossLayerConfig& config,
                      const nand::AgingLaw& aging,
                      const nand::NandTiming& timing,
                      const hv::HvConfig& hv_config);

  const CrossLayerConfig& config() const { return config_; }

  // ECC capability the reliability schedule selects for `algo` at the
  // given age (saturating at the hardware t_max).
  unsigned scheduled_t(nand::ProgramAlgorithm algo, double pe_cycles) const;
  // Resolve an operating point into a concrete (algo, t) at an age.
  unsigned resolve_t(const OperatingPoint& point, double pe_cycles) const;

  // Evaluate a concrete configuration.
  Metrics evaluate(nand::ProgramAlgorithm algo, unsigned t,
                   double pe_cycles) const;
  // Evaluate an operating point (resolves t first).
  Metrics evaluate(const OperatingPoint& point, double pe_cycles) const;

  // Enumerate the full configuration space {SV, DV} x [t_min, t_max]
  // at one age.
  std::vector<Metrics> enumerate(double pe_cycles) const;
  // Pareto-efficient subset under (read tput up, write tput up,
  // -log10 uber up, total power down).
  static std::vector<Metrics> pareto_front(std::vector<Metrics> space);
  // Same criterion as a membership mask over `space` (index-aligned),
  // for callers that must keep front flags attached to their own rows.
  static std::vector<bool> pareto_mask(const std::vector<Metrics>& space);

  const ecc_hw::LatencyModel& latency_model() const { return latency_; }
  const ecc_hw::PowerModel& ecc_power_model() const { return ecc_power_; }

 private:
  CrossLayerConfig config_;
  nand::AgingLaw aging_;
  const nand::NandTiming* timing_;
  hv::NandPowerModel nand_power_;
  ecc_hw::LatencyModel latency_;
  ecc_hw::PowerModel ecc_power_;
};

}  // namespace xlf::core
