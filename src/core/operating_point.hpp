// Cross-layer operating points (paper Section 6.3): each point fixes
// the physical-layer knob (program algorithm) and the ECC scheduling
// rule. The three named points are the paper's:
//
//  * Baseline  — ISPP-SV; t tracks RBER_SV(c) against the UBER target.
//  * MinUber   — ISPP-DV; t *keeps the SV schedule*, so the 10x RBER
//                improvement falls through to UBER (Section 6.3.1).
//  * MaxRead   — ISPP-DV; t relaxed to track RBER_DV(c), shrinking
//                decode latency at unchanged UBER (Section 6.3.2).
//
// Role in the trade-off loop: an OperatingPoint is the loop's input —
// the co-selected pair of knobs (one physical, one architectural)
// that the paper argues must move together. CrossLayerFramework
// resolves a point into a concrete t at the current age, and
// MemorySubsystem::apply() programs both layers with the result.
#pragma once

#include <optional>
#include <string>

#include "src/nand/aging.hpp"

namespace xlf::core {

enum class EccSchedule {
  kTrackSv,  // t sized for the ISPP-SV RBER at the current age
  kTrackDv,  // t sized for the ISPP-DV RBER at the current age
  kFixed,    // t pinned by the user
};

struct OperatingPoint {
  std::string name = "custom";
  nand::ProgramAlgorithm algorithm = nand::ProgramAlgorithm::kIsppSv;
  EccSchedule schedule = EccSchedule::kTrackSv;
  // Only meaningful for kFixed.
  unsigned fixed_t = 3;

  static OperatingPoint baseline();
  static OperatingPoint min_uber();
  static OperatingPoint max_read();
  static OperatingPoint custom(nand::ProgramAlgorithm algo, unsigned t);

  // Which algorithm the ECC schedule is sized against.
  nand::ProgramAlgorithm schedule_algorithm() const;
  std::string describe() const;
};

}  // namespace xlf::core
