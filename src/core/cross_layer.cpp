#include "src/core/cross_layer.hpp"

#include <algorithm>
#include <cmath>

#include "src/bch/code_params.hpp"
#include "src/util/expect.hpp"

namespace xlf::core {

CrossLayerFramework::CrossLayerFramework(const CrossLayerConfig& config,
                                         const nand::AgingLaw& aging,
                                         const nand::NandTiming& timing,
                                         const hv::HvConfig& hv_config)
    : config_(config),
      aging_(aging),
      timing_(&timing),
      nand_power_(hv_config, timing),
      latency_(config.ecc_hw),
      ecc_power_(config.ecc_hw) {
  XLF_EXPECT(config_.uber_target > 0.0);
  XLF_EXPECT(config_.page_bytes > 0);
}

unsigned CrossLayerFramework::scheduled_t(nand::ProgramAlgorithm algo,
                                          double pe_cycles) const {
  const double rber = aging_.rber(algo, pe_cycles);
  const auto& hw = config_.ecc_hw;
  const auto t = bch::min_t_for_uber(rber, config_.uber_target, hw.k, hw.m,
                                     hw.t_min, hw.t_max);
  return t.value_or(hw.t_max);
}

unsigned CrossLayerFramework::resolve_t(const OperatingPoint& point,
                                        double pe_cycles) const {
  if (point.schedule == EccSchedule::kFixed) {
    XLF_EXPECT(point.fixed_t >= config_.ecc_hw.t_min &&
               point.fixed_t <= config_.ecc_hw.t_max);
    return point.fixed_t;
  }
  return scheduled_t(point.schedule_algorithm(), pe_cycles);
}

Metrics CrossLayerFramework::evaluate(nand::ProgramAlgorithm algo, unsigned t,
                                      double pe_cycles) const {
  XLF_EXPECT(t >= config_.ecc_hw.t_min && t <= config_.ecc_hw.t_max);
  Metrics m;
  m.pe_cycles = pe_cycles;
  m.algo = algo;
  m.t = t;
  m.rber = aging_.rber(algo, pe_cycles);

  const bch::CodeParams params = config_.ecc_hw.code_at(t);
  const double log_uber = bch::log_uber(m.rber, params.n(), t);
  m.uber = std::exp(std::max(log_uber, -700.0));
  m.log10_uber = log_uber / std::log(10.0);

  // Paper convention: decode latency at its worst case dominates the
  // read path; encode latency is t-independent and small against the
  // program time.
  m.read_latency = timing_->read_time() + latency_.decode_latency(t);
  m.write_latency =
      latency_.encode_latency() + timing_->program_time(algo, pe_cycles);
  m.read_throughput =
      BytesPerSecond{config_.page_bytes / m.read_latency.value()};
  m.write_throughput =
      BytesPerSecond{config_.page_bytes / m.write_latency.value()};

  m.nand_program_power = nand_power_.program_power(algo, pe_cycles);
  // ECC decode power at the expected per-page error load.
  const double expected_errors = m.rber * params.n();
  m.ecc_decode_power = ecc_power_.decode_power(t, expected_errors);
  return m;
}

Metrics CrossLayerFramework::evaluate(const OperatingPoint& point,
                                      double pe_cycles) const {
  return evaluate(point.algorithm, resolve_t(point, pe_cycles), pe_cycles);
}

std::vector<Metrics> CrossLayerFramework::enumerate(double pe_cycles) const {
  std::vector<Metrics> space;
  for (auto algo :
       {nand::ProgramAlgorithm::kIsppSv, nand::ProgramAlgorithm::kIsppDv}) {
    for (unsigned t = config_.ecc_hw.t_min; t <= config_.ecc_hw.t_max; ++t) {
      space.push_back(evaluate(algo, t, pe_cycles));
    }
  }
  return space;
}

std::vector<bool> CrossLayerFramework::pareto_mask(
    const std::vector<Metrics>& space) {
  const auto dominates = [](const Metrics& a, const Metrics& b) {
    const bool geq = a.read_throughput.value() >= b.read_throughput.value() &&
                     a.write_throughput.value() >= b.write_throughput.value() &&
                     a.log10_uber <= b.log10_uber &&
                     a.total_power().value() <= b.total_power().value();
    const bool gt = a.read_throughput.value() > b.read_throughput.value() ||
                    a.write_throughput.value() > b.write_throughput.value() ||
                    a.log10_uber < b.log10_uber ||
                    a.total_power().value() < b.total_power().value();
    return geq && gt;
  };
  std::vector<bool> efficient(space.size());
  for (std::size_t i = 0; i < space.size(); ++i) {
    efficient[i] =
        std::none_of(space.begin(), space.end(), [&](const Metrics& other) {
          return dominates(other, space[i]);
        });
  }
  return efficient;
}

std::vector<Metrics> CrossLayerFramework::pareto_front(
    std::vector<Metrics> space) {
  const std::vector<bool> efficient = pareto_mask(space);
  std::vector<Metrics> front;
  for (std::size_t i = 0; i < space.size(); ++i) {
    if (efficient[i]) front.push_back(space[i]);
  }
  return front;
}

}  // namespace xlf::core
