#include "src/core/metrics.hpp"

#include <ostream>
#include <sstream>

namespace xlf::core {

std::string Metrics::summary() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Metrics& metrics) {
  os << nand::to_string(metrics.algo) << " t=" << metrics.t
     << " rber=" << metrics.rber
     << " log10(uber)=" << metrics.log10_uber
     << " read=" << to_string(metrics.read_throughput)
     << " write=" << to_string(metrics.write_throughput)
     << " P_nand=" << to_string(metrics.nand_program_power)
     << " P_ecc=" << to_string(metrics.ecc_decode_power);
  return os;
}

MetricsDelta compare(const Metrics& candidate, const Metrics& reference) {
  MetricsDelta delta;
  if (reference.read_throughput.value() > 0.0) {
    delta.read_throughput_gain_pct =
        100.0 * (candidate.read_throughput / reference.read_throughput - 1.0);
  }
  if (reference.write_throughput.value() > 0.0) {
    delta.write_throughput_loss_pct =
        100.0 *
        (1.0 - candidate.write_throughput / reference.write_throughput);
  }
  delta.uber_improvement_orders =
      reference.log10_uber - candidate.log10_uber;
  delta.power_delta = candidate.total_power() - reference.total_power();
  return delta;
}

}  // namespace xlf::core
