// The metric bundle every cross-layer evaluation produces: the
// quantities the paper trades against each other.
//
// Role in the trade-off loop: Metrics is the loop's output and its
// currency. Every figure in Section 6 is a projection of this struct
// — UBER (Fig. 7/10), read/write throughput (Fig. 9/11), ECC latency
// (Fig. 8), NAND + ECC power (Fig. 6 and the Section 6.3.2 budget) —
// and MetricsDelta expresses the paper's headline numbers (e.g. +17%
// read, -40% write, 10 orders of UBER) as deltas vs the baseline
// point. Pareto exploration in CrossLayerFramework orders candidate
// configurations by exactly these fields.
#pragma once

#include <iosfwd>
#include <string>

#include "src/nand/aging.hpp"
#include "src/util/units.hpp"

namespace xlf::core {

struct Metrics {
  double pe_cycles = 0.0;
  nand::ProgramAlgorithm algo = nand::ProgramAlgorithm::kIsppSv;
  unsigned t = 0;
  double rber = 0.0;
  double uber = 0.0;           // Eq. (1) at (rber, t)
  double log10_uber = 0.0;     // exact even when uber underflows
  Seconds read_latency{0.0};   // page read + worst-case decode
  Seconds write_latency{0.0};  // encode + program
  BytesPerSecond read_throughput{0.0};
  BytesPerSecond write_throughput{0.0};
  Watts nand_program_power{0.0};
  Watts ecc_decode_power{0.0};
  // NAND + ECC power while decoding (Section 6.3.2's budget).
  Watts total_power() const { return nand_program_power + ecc_decode_power; }

  std::string summary() const;
};

std::ostream& operator<<(std::ostream& os, const Metrics& metrics);

// Relative changes versus a reference configuration (the paper always
// reports deltas against the baseline).
struct MetricsDelta {
  double read_throughput_gain_pct = 0.0;
  double write_throughput_loss_pct = 0.0;
  // Orders of magnitude of UBER improvement (positive = better).
  double uber_improvement_orders = 0.0;
  Watts power_delta{0.0};
};

MetricsDelta compare(const Metrics& candidate, const Metrics& reference);

}  // namespace xlf::core
