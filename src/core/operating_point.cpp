#include "src/core/operating_point.hpp"

#include "src/util/expect.hpp"

namespace xlf::core {

OperatingPoint OperatingPoint::baseline() {
  return {"baseline", nand::ProgramAlgorithm::kIsppSv, EccSchedule::kTrackSv,
          3};
}

OperatingPoint OperatingPoint::min_uber() {
  // Physical layer moves to DV, architecture keeps the SV-sized ECC:
  // the whole RBER improvement becomes UBER margin.
  return {"min-uber", nand::ProgramAlgorithm::kIsppDv, EccSchedule::kTrackSv,
          3};
}

OperatingPoint OperatingPoint::max_read() {
  // Physical layer moves to DV *and* the ECC relaxes to the DV
  // schedule: same UBER, shorter decode, higher read throughput.
  return {"max-read", nand::ProgramAlgorithm::kIsppDv, EccSchedule::kTrackDv,
          3};
}

OperatingPoint OperatingPoint::custom(nand::ProgramAlgorithm algo,
                                      unsigned t) {
  XLF_EXPECT(t >= 1);
  return {"custom", algo, EccSchedule::kFixed, t};
}

nand::ProgramAlgorithm OperatingPoint::schedule_algorithm() const {
  switch (schedule) {
    case EccSchedule::kTrackSv: return nand::ProgramAlgorithm::kIsppSv;
    case EccSchedule::kTrackDv: return nand::ProgramAlgorithm::kIsppDv;
    case EccSchedule::kFixed: return algorithm;
  }
  XLF_EXPECT(false && "invalid schedule");
  return algorithm;
}

std::string OperatingPoint::describe() const {
  std::string out = name;
  out += " [";
  out += to_string(algorithm);
  out += ", ECC ";
  switch (schedule) {
    case EccSchedule::kTrackSv: out += "tracks SV schedule"; break;
    case EccSchedule::kTrackDv: out += "tracks DV schedule"; break;
    case EccSchedule::kFixed:
      out += "fixed t=" + std::to_string(fixed_t);
      break;
  }
  out += "]";
  return out;
}

}  // namespace xlf::core
