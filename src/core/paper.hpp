// Published anchor values from Zambelli et al., DATE 2012 — collected
// in one place so tests and benches reference the paper rather than
// magic numbers. Section/figure citations in the comments.
#pragma once

#include "src/util/units.hpp"

namespace xlf::core::paper {

// Section 4 / 6.2: BCH over GF(2^16) protecting a 4 KB page.
inline constexpr unsigned kFieldDegree = 16;
inline constexpr unsigned kPageBits = 32768;
// Section 6.2: correction capability range t = 3..65.
inline constexpr unsigned kTMin = 3;
inline constexpr unsigned kTMaxSv = 65;   // ISPP-SV end of life (Fig. 7)
inline constexpr unsigned kTMaxDv = 14;   // ISPP-DV end of life ("Fig. ??")
// Section 6.2: manufacturers' UBER target.
inline constexpr double kUberTarget = 1e-11;

// Fig. 7 annotated operating points (RBER -> required t).
inline constexpr double kFig7RberGrid[] = {1e-6,    2.5e-6,  5e-6,
                                           2.75e-4, 3.35e-4, 1e-3};

// Fig. 8: codec clock.
inline constexpr double kEccClockMhz = 80.0;

// Section 6.3.2: page read time vs decode latency.
inline const Seconds kPageReadTime = Seconds::micros(75.0);   // [27]
inline const Seconds kDecodeLatencyQuote = Seconds::micros(150.0);

// Section 6.3.3: ISPP-SV program time scale.
inline const Seconds kProgramTimeQuote = Seconds::millis(1.5);

// Section 6.1 / Fig. 6: DV power penalty and program power window.
inline const Watts kDvPowerPenalty = Watts::milliwatts(7.5);
inline const Watts kProgramPowerLow{0.145};
inline const Watts kProgramPowerHigh{0.185};

// Section 6.3.2: ECC power relaxation 7 mW -> 1 mW.
inline const Watts kEccPowerSvEol = Watts::milliwatts(7.0);
inline const Watts kEccPowerDvEol = Watts::milliwatts(1.0);

// Headline results: up to ~30% read-throughput gain (Fig. 11), write
// throughput loss ~40% on average, 40-48% over life (Fig. 9), RBER
// improvement of one order of magnitude (Fig. 5).
inline constexpr double kReadGainEolPct = 30.0;
inline constexpr double kWriteLossAvgPct = 40.0;
inline constexpr double kWriteLossEolPct = 48.0;
inline constexpr double kRberImprovementFactor = 10.0;

// ISPP staircase (Section 5.1): 14 -> 19 V, 250 mV steps, VDD 1.8 V.
inline const Volts kIsppStart{14.0};
inline const Volts kIsppEnd{19.0};
inline const Volts kIsppStep{0.25};
inline const Volts kVdd{1.8};

// Fig. 4 fit conditions: 7 us pulses, 1 V steps (41 nm device).
inline const Seconds kFig4PulseTime = Seconds::micros(7.0);
inline const Volts kFig4Step{1.0};

}  // namespace xlf::core::paper
