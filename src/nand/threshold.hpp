// Threshold-voltage plan of the 4LC cell (paper Fig. 3): the four
// levels L0-L3, the read levels R1-R3 separating them, the verify
// levels VFY1-VFY3 the ISPP algorithm programs against, the ISPP-DV
// pre-verify levels, and the over-programming bound OP — plus the
// Gray mapping of the two logical bits onto the levels (adjacent
// levels differ in exactly one bit, so a one-level misread costs one
// bit error, the assumption under the RBER accounting).
#pragma once

#include <array>
#include <cstdint>

#include "src/util/units.hpp"

namespace xlf::nand {

enum class Level : std::uint8_t { kL0 = 0, kL1 = 1, kL2 = 2, kL3 = 3 };

constexpr std::array<Level, 4> kAllLevels{Level::kL0, Level::kL1, Level::kL2,
                                          Level::kL3};

// Two logical bits (MSB = upper page, LSB = lower page).
struct Bits2 {
  bool msb = true;
  bool lsb = true;
  friend bool operator==(const Bits2&, const Bits2&) = default;
};

// Gray mapping L0=11, L1=01, L2=00, L3=10.
Bits2 level_to_bits(Level level);
Level bits_to_level(Bits2 bits);
// Hamming distance between the encodings of two levels.
unsigned bit_distance(Level a, Level b);

struct VoltagePlan {
  // Erased distribution (L0) centre and width.
  Volts erased_mean{-3.0};
  Volts erased_sigma{0.4};
  // Verify levels: lower edges of the programmed distributions.
  std::array<Volts, 3> verify{Volts{1.2}, Volts{2.5}, Volts{3.8}};
  // ISPP-DV pre-verify offset below each verify level (bitline-bias
  // zone in which the effective programming step is reduced).
  Volts pre_verify_offset{0.3};
  // Read levels between adjacent distributions.
  std::array<Volts, 3> read{Volts{-0.85}, Volts{1.95}, Volts{3.25}};
  // Over-programming bound: a cell above this is unreadable.
  Volts over_program{5.2};

  Volts verify_for(Level level) const;
  Volts pre_verify_for(Level level) const;
  // Level seen when sensing a threshold voltage against R1..R3.
  Level read_level(Volts vth) const;
  bool is_over_programmed(Volts vth) const { return vth > over_program; }
  // Sanity of the ordering invariants (R1 < VFY1 <= R2 < VFY2 ...).
  bool consistent() const;
};

}  // namespace xlf::nand
