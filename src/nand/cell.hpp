// Floating-gate cell compact model.
//
// The programming transient follows the standard ISPP law: per pulse
// the threshold voltage moves by a softplus of the gate overdrive,
//
//   dVTH = s * ln(1 + exp((VCG - VTH - K) / s))
//
// which vanishes below the tunnelling onset and approaches slope-1
// tracking of the control gate above it. In the staircase steady
// state VTH advances by exactly the ISPP step per pulse — the
// behaviour fitted against the 41 nm experimental staircase in the
// paper's Fig. 4. K (the onset offset) and the injection noise carry
// the per-cell variability and the aging state.
#pragma once

#include "src/util/rng.hpp"
#include "src/util/units.hpp"

namespace xlf::nand {

struct CellParams {
  // Tunnelling onset offset: VTH tracks VCG - K in steady state.
  // Fast cells have smaller K, slow cells larger.
  Volts k_onset{14.0};
  // Transition sharpness of the onset (technology constant).
  Volts onset_sharpness{0.4};
  // Per-pulse injection granularity noise (electron shot noise),
  // standard deviation added to each nonzero VTH step.
  Volts injection_sigma{0.05};
};

class FloatingGateCell {
 public:
  FloatingGateCell() = default;
  FloatingGateCell(Volts initial_vth, CellParams params)
      : vth_(initial_vth), params_(params) {}

  Volts vth() const { return vth_; }
  const CellParams& params() const { return params_; }

  // Deterministic transfer: expected VTH increment for one pulse at
  // gate voltage vcg (no noise). Exposed for model fitting (Fig. 4).
  Volts expected_step(Volts vcg) const;

  // Apply one program pulse; injection noise scales with the step so
  // an inhibited/off cell stays put. `bitline_bias` lifts the channel
  // potential and reduces the effective overdrive — the ISPP-DV
  // mechanism for half-step programming near the verify level.
  void apply_pulse(Volts vcg, Rng& rng, Volts bitline_bias = Volts{0.0});

  // Erase to the given threshold (block erase samples a fresh erased
  // distribution; retention state resets).
  void erase(Volts new_vth) { vth_ = new_vth; }

  // External threshold shifts: cell-to-cell interference, retention
  // loss, disturb.
  void shift(Volts delta) { vth_ = vth_ + delta; }

 private:
  Volts vth_{-3.0};
  CellParams params_;
};

}  // namespace xlf::nand
