#include "src/nand/device.hpp"

#include <algorithm>

#include "src/util/expect.hpp"

namespace xlf::nand {

NandDevice::NandDevice(const DeviceConfig& config)
    : config_(config),
      array_(config.array),
      timing_(config.timing, config.array.ispp, config.array.plan,
              config.array.variability, config.array.aging),
      resident_(config.available_algorithms) {
  XLF_EXPECT(!resident_.empty());
  active_algorithm_ = resident_.front();
  const Geometry& g = geometry();
  oob_.assign(static_cast<std::size_t>(g.blocks) * g.pages_per_block,
              std::nullopt);
  erase_counts_.assign(g.blocks, 0);
  bad_.assign(g.blocks, 0);
}

std::size_t NandDevice::page_index(PageAddress addr) const {
  XLF_EXPECT(addr.block < geometry().blocks &&
             addr.page < geometry().pages_per_block);
  return static_cast<std::size_t>(addr.block) * geometry().pages_per_block +
         addr.page;
}

void NandDevice::select_program_algorithm(ProgramAlgorithm algo) {
  const bool available =
      std::find(resident_.begin(), resident_.end(), algo) != resident_.end();
  XLF_EXPECT(available && "algorithm not resident in the code store");
  active_algorithm_ = algo;
}

void NandDevice::upload_algorithm(ProgramAlgorithm algo) {
  XLF_EXPECT(config_.store == AlgorithmStore::kSram &&
             "code-ROM devices cannot accept microcode uploads");
  if (std::find(resident_.begin(), resident_.end(), algo) == resident_.end()) {
    resident_.push_back(algo);
  }
}

ReadOutcome NandDevice::read_page(PageAddress addr) const {
  ReadOutcome outcome;
  outcome.data = array_.read_page(addr);
  outcome.busy_time = timing_.read_time();
  return outcome;
}

ProgramOutcome NandDevice::program_page(PageAddress addr, const BitVec& data,
                                        LoadStrategy strategy) {
  const double wear_now = array_.wear(addr.block);
  const ProgramResult result =
      array_.program_page(addr, data, active_algorithm_, config_.program_mode);
  ProgramOutcome outcome;
  outcome.ok = result.ok;
  outcome.over_programmed_cells = result.over_programmed_cells;
  if (result.trace.has_value()) {
    // Bit-true mode: the actual trace of this very page.
    outcome.busy_time = result.trace->duration() +
                        timing_.io_transfer_time(data.size() / 8) -
                        (strategy == LoadStrategy::kTwoRound
                             ? timing_.io_transfer_time(data.size() / 16)
                             : Seconds{0.0});
  } else {
    outcome.busy_time = timing_.page_write_time(
        active_algorithm_, wear_now, data.size() / 8, strategy);
  }
  return outcome;
}

EraseOutcome NandDevice::erase_block(std::uint32_t block) {
  XLF_EXPECT(block < geometry().blocks);
  XLF_EXPECT(!bad_[block] && "erasing a retired (grown-bad) block");
  array_.erase_block(block);
  // The spare area is erased with the data, and the durable erase
  // counter advances — this pair is what rebuild reads at mount.
  const std::size_t base =
      static_cast<std::size_t>(block) * geometry().pages_per_block;
  for (std::uint32_t p = 0; p < geometry().pages_per_block; ++p) {
    oob_[base + p].reset();
  }
  ++erase_counts_[block];
  return EraseOutcome{timing_.erase_time()};
}

void NandDevice::write_oob(PageAddress addr, const OobRecord& record) {
  const std::size_t index = page_index(addr);
  XLF_EXPECT(!bad_[addr.block] && "programming a retired block's spare area");
  XLF_EXPECT(!oob_[index].has_value() &&
             "spare area already programmed (program without erase)");
  oob_[index] = record;
}

const std::optional<OobRecord>& NandDevice::oob(PageAddress addr) const {
  return oob_[page_index(addr)];
}

void NandDevice::mark_bad(std::uint32_t block) {
  XLF_EXPECT(block < geometry().blocks);
  bad_[block] = 1;
}

bool NandDevice::is_bad(std::uint32_t block) const {
  XLF_EXPECT(block < geometry().blocks);
  return bad_[block] != 0;
}

std::uint32_t NandDevice::erase_count(std::uint32_t block) const {
  XLF_EXPECT(block < geometry().blocks);
  return erase_counts_[block];
}

void NandDevice::set_wear(std::uint32_t block, double cycles) {
  array_.set_wear(block, cycles);
}

void NandDevice::set_uniform_wear(double cycles) {
  for (std::uint32_t b = 0; b < geometry().blocks; ++b) {
    array_.set_wear(b, cycles);
  }
}

std::size_t NandDevice::code_store_bytes() const {
  return config_.base_microcode_bytes +
         resident_.size() * config_.bytes_per_algorithm;
}

}  // namespace xlf::nand
