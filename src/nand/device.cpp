#include "src/nand/device.hpp"

#include <algorithm>

#include "src/util/expect.hpp"

namespace xlf::nand {

NandDevice::NandDevice(const DeviceConfig& config)
    : config_(config),
      array_(config.data_plane ? std::make_unique<NandArray>(config.array)
                               : nullptr),
      timing_(config.timing, config.array.ispp, config.array.plan,
              config.array.variability, config.array.aging),
      resident_(config.available_algorithms) {
  XLF_EXPECT(!resident_.empty());
  active_algorithm_ = resident_.front();
  const Geometry& g = geometry();
  XLF_EXPECT(g.blocks >= 1 && g.pages_per_block >= 1);
  oob_.assign(static_cast<std::size_t>(g.blocks) * g.pages_per_block,
              std::nullopt);
  erase_counts_.assign(g.blocks, 0);
  bad_.assign(g.blocks, 0);
  wear_.assign(g.blocks, 0.0);  // factory-fresh, like the array's ctor
  programmed_.assign(oob_.size(), 0);
}

NandArray& NandDevice::array() {
  XLF_EXPECT(array_ != nullptr && "metadata-only device has no cell array");
  return *array_;
}

const NandArray& NandDevice::array() const {
  XLF_EXPECT(array_ != nullptr && "metadata-only device has no cell array");
  return *array_;
}

void NandDevice::attach_data_plane(DataPlaneQueue* queue) {
  if (queue != nullptr) {
    XLF_EXPECT(config_.data_plane &&
               "metadata-only devices have no cell work to defer");
    XLF_EXPECT(config_.program_mode == ProgramMode::kStatistical &&
               "ISPP-trace timing needs the cells at program time");
    // Catch a mid-stream re-attach that would drop another queue's
    // pending jobs.
    XLF_EXPECT(deferred_ == nullptr || !deferred_->pending());
  } else if (deferred_ != nullptr) {
    deferred_->drain();  // detaching must leave the array current
  }
  deferred_ = queue;
}

std::size_t NandDevice::page_index(PageAddress addr) const {
  XLF_EXPECT(addr.block < geometry().blocks &&
             addr.page < geometry().pages_per_block);
  return static_cast<std::size_t>(addr.block) * geometry().pages_per_block +
         addr.page;
}

void NandDevice::select_program_algorithm(ProgramAlgorithm algo) {
  const bool available =
      std::find(resident_.begin(), resident_.end(), algo) != resident_.end();
  XLF_EXPECT(available && "algorithm not resident in the code store");
  active_algorithm_ = algo;
}

void NandDevice::upload_algorithm(ProgramAlgorithm algo) {
  XLF_EXPECT(config_.store == AlgorithmStore::kSram &&
             "code-ROM devices cannot accept microcode uploads");
  if (std::find(resident_.begin(), resident_.end(), algo) == resident_.end()) {
    resident_.push_back(algo);
  }
}

ReadOutcome NandDevice::read_page(PageAddress addr) const {
  XLF_EXPECT(array_ != nullptr && "metadata-only devices service reads from "
                                  "the controller's timing models");
  // A read senses the cells as they stand, so any deferred program /
  // erase work for this die must land first (in push order — the
  // array's noise stream stays byte-identical to inline execution).
  if (deferred_ != nullptr) deferred_->drain();
  ReadOutcome outcome;
  outcome.data = array_->read_page(addr);
  outcome.busy_time = timing_.read_time();
  return outcome;
}

ProgramOutcome NandDevice::program_page(PageAddress addr, const BitVec& data,
                                        LoadStrategy strategy) {
  const std::size_t index = page_index(addr);
  XLF_EXPECT(!programmed_[index] &&
             "NAND constraint: program-after-erase only");
  programmed_[index] = 1;
  const double wear_now = wear_[addr.block];
  if (array_ == nullptr) {
    // Metadata-only: the statistical mode's deterministic service
    // time, no cells to place.
    return ProgramOutcome{
        true,
        timing_.page_write_time(active_algorithm_, wear_now,
                                geometry().bits_per_page() / 8, strategy),
        0};
  }
  if (deferred_ != nullptr) {
    // Statistical mode (enforced at attach): timing and success are
    // already determined by (algorithm, wear, size), so the cell
    // placement can run later on the die's own queue. The sampled
    // over-programmed count is not recoverable here; deferred runs
    // report 0.
    deferred_->push(
        [this, addr, bits = data, algo = active_algorithm_] {
          array_->program_page(addr, bits, algo, config_.program_mode);
        });
    return ProgramOutcome{
        true,
        timing_.page_write_time(active_algorithm_, wear_now, data.size() / 8,
                                strategy),
        0};
  }
  const ProgramResult result =
      array_->program_page(addr, data, active_algorithm_, config_.program_mode);
  ProgramOutcome outcome;
  outcome.ok = result.ok;
  outcome.over_programmed_cells = result.over_programmed_cells;
  if (result.trace.has_value()) {
    // Bit-true mode: the actual trace of this very page.
    outcome.busy_time = result.trace->duration() +
                        timing_.io_transfer_time(data.size() / 8) -
                        (strategy == LoadStrategy::kTwoRound
                             ? timing_.io_transfer_time(data.size() / 16)
                             : Seconds{0.0});
  } else {
    outcome.busy_time = timing_.page_write_time(
        active_algorithm_, wear_now, data.size() / 8, strategy);
  }
  return outcome;
}

EraseOutcome NandDevice::erase_block(std::uint32_t block) {
  XLF_EXPECT(block < geometry().blocks);
  XLF_EXPECT(!bad_[block] && "erasing a retired (grown-bad) block");
  if (deferred_ != nullptr) {
    deferred_->push([this, block] { array_->erase_block(block); });
  } else if (array_ != nullptr) {
    array_->erase_block(block);
  }
  // Mirror the array's own P/E accounting (erase_block adds one
  // cycle) so wear reads stay exact while the cell work is deferred
  // or absent.
  wear_[block] += 1.0;
  // The spare area is erased with the data, and the durable erase
  // counter advances — this pair is what rebuild reads at mount.
  const std::size_t base =
      static_cast<std::size_t>(block) * geometry().pages_per_block;
  for (std::uint32_t p = 0; p < geometry().pages_per_block; ++p) {
    oob_[base + p].reset();
    programmed_[base + p] = 0;
  }
  ++erase_counts_[block];
  return EraseOutcome{timing_.erase_time()};
}

void NandDevice::write_oob(PageAddress addr, const OobRecord& record) {
  const std::size_t index = page_index(addr);
  XLF_EXPECT(!bad_[addr.block] && "programming a retired block's spare area");
  XLF_EXPECT(!oob_[index].has_value() &&
             "spare area already programmed (program without erase)");
  oob_[index] = record;
}

const std::optional<OobRecord>& NandDevice::oob(PageAddress addr) const {
  return oob_[page_index(addr)];
}

void NandDevice::mark_bad(std::uint32_t block) {
  XLF_EXPECT(block < geometry().blocks);
  bad_[block] = 1;
}

bool NandDevice::is_bad(std::uint32_t block) const {
  XLF_EXPECT(block < geometry().blocks);
  return bad_[block] != 0;
}

std::uint32_t NandDevice::erase_count(std::uint32_t block) const {
  XLF_EXPECT(block < geometry().blocks);
  return erase_counts_[block];
}

bool NandDevice::page_programmed(PageAddress addr) const {
  return programmed_[page_index(addr)] != 0;
}

double NandDevice::wear(std::uint32_t block) const {
  XLF_EXPECT(block < geometry().blocks);
  return wear_[block];
}

void NandDevice::set_wear(std::uint32_t block, double cycles) {
  XLF_EXPECT(block < geometry().blocks);
  wear_[block] = cycles;
  if (deferred_ != nullptr) {
    deferred_->push([this, block, cycles] { array_->set_wear(block, cycles); });
  } else if (array_ != nullptr) {
    array_->set_wear(block, cycles);
  }
}

void NandDevice::set_uniform_wear(double cycles) {
  for (std::uint32_t b = 0; b < geometry().blocks; ++b) {
    set_wear(b, cycles);
  }
}

std::size_t NandDevice::code_store_bytes() const {
  return config_.base_microcode_bytes +
         resident_.size() * config_.bytes_per_algorithm;
}

}  // namespace xlf::nand
