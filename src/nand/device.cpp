#include "src/nand/device.hpp"

#include <algorithm>

#include "src/util/expect.hpp"

namespace xlf::nand {

NandDevice::NandDevice(const DeviceConfig& config)
    : config_(config),
      array_(config.array),
      timing_(config.timing, config.array.ispp, config.array.plan,
              config.array.variability, config.array.aging),
      resident_(config.available_algorithms) {
  XLF_EXPECT(!resident_.empty());
  active_algorithm_ = resident_.front();
}

void NandDevice::select_program_algorithm(ProgramAlgorithm algo) {
  const bool available =
      std::find(resident_.begin(), resident_.end(), algo) != resident_.end();
  XLF_EXPECT(available && "algorithm not resident in the code store");
  active_algorithm_ = algo;
}

void NandDevice::upload_algorithm(ProgramAlgorithm algo) {
  XLF_EXPECT(config_.store == AlgorithmStore::kSram &&
             "code-ROM devices cannot accept microcode uploads");
  if (std::find(resident_.begin(), resident_.end(), algo) == resident_.end()) {
    resident_.push_back(algo);
  }
}

ReadOutcome NandDevice::read_page(PageAddress addr) const {
  ReadOutcome outcome;
  outcome.data = array_.read_page(addr);
  outcome.busy_time = timing_.read_time();
  return outcome;
}

ProgramOutcome NandDevice::program_page(PageAddress addr, const BitVec& data,
                                        LoadStrategy strategy) {
  const double wear_now = array_.wear(addr.block);
  const ProgramResult result =
      array_.program_page(addr, data, active_algorithm_, config_.program_mode);
  ProgramOutcome outcome;
  outcome.ok = result.ok;
  outcome.over_programmed_cells = result.over_programmed_cells;
  if (result.trace.has_value()) {
    // Bit-true mode: the actual trace of this very page.
    outcome.busy_time = result.trace->duration() +
                        timing_.io_transfer_time(data.size() / 8) -
                        (strategy == LoadStrategy::kTwoRound
                             ? timing_.io_transfer_time(data.size() / 16)
                             : Seconds{0.0});
  } else {
    outcome.busy_time = timing_.page_write_time(
        active_algorithm_, wear_now, data.size() / 8, strategy);
  }
  return outcome;
}

EraseOutcome NandDevice::erase_block(std::uint32_t block) {
  array_.erase_block(block);
  return EraseOutcome{timing_.erase_time()};
}

void NandDevice::set_wear(std::uint32_t block, double cycles) {
  array_.set_wear(block, cycles);
}

void NandDevice::set_uniform_wear(double cycles) {
  for (std::uint32_t b = 0; b < geometry().blocks; ++b) {
    array_.set_wear(b, cycles);
  }
}

std::size_t NandDevice::code_store_bytes() const {
  return config_.base_microcode_bytes +
         resident_.size() * config_.bytes_per_algorithm;
}

}  // namespace xlf::nand
