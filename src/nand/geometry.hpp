// Device geometry for the simulated 2-bit/cell (4LC) NAND flash.
//
// The ECC block size matches the paper: 4 KB data pages with a spare
// area sized for the worst-case t = 65 parity (1040 bits) plus file
// system metadata. Bit-true array simulation is memory-hungry (every
// cell carries an analog threshold voltage), so the default simulated
// array is a small corner of a real die; all per-page behaviour is
// unaffected by the block count.
#pragma once

#include <cstddef>
#include <cstdint>

namespace xlf::nand {

struct Geometry {
  std::uint32_t data_bytes_per_page = 4096;  // 4 KB (paper Section 4)
  std::uint32_t spare_bytes_per_page = 224;  // holds ECC parity + metadata
  std::uint32_t pages_per_block = 16;
  std::uint32_t blocks = 2;

  std::uint32_t data_bits_per_page() const { return data_bytes_per_page * 8; }
  std::uint32_t spare_bits_per_page() const { return spare_bytes_per_page * 8; }
  std::uint32_t bits_per_page() const {
    return data_bits_per_page() + spare_bits_per_page();
  }
  // 2 bits per MLC cell.
  std::uint32_t cells_per_page() const { return bits_per_page() / 2; }
  std::uint32_t pages() const { return pages_per_block * blocks; }
};

struct PageAddress {
  std::uint32_t block = 0;
  std::uint32_t page = 0;  // within block

  friend bool operator==(const PageAddress&, const PageAddress&) = default;
};

}  // namespace xlf::nand
