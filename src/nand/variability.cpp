#include "src/nand/variability.hpp"

#include <algorithm>

namespace xlf::nand {

VariabilitySampler::VariabilitySampler(const VariabilityConfig& config,
                                       const AgingLaw& aging)
    : config_(config), aging_(aging) {}

CellParams VariabilitySampler::sample(Rng& rng, double pe_cycles) const {
  CellParams params;
  const double spread_mult = aging_.speed_spread_multiplier(pe_cycles);
  params.k_onset =
      Volts{rng.gaussian(config_.k_nominal.value() +
                             aging_.k_shift(pe_cycles).value(),
                         config_.k_sigma.value() * spread_mult)};
  params.onset_sharpness = Volts{std::max(
      0.05, rng.gaussian(config_.onset_sharpness.value(),
                         config_.onset_sharpness.value() *
                             config_.onset_sharpness_rel_sigma))};
  params.injection_sigma = config_.injection_sigma;
  return params;
}

Volts VariabilitySampler::sample_erased(Rng& rng, Volts mean,
                                        Volts sigma) const {
  return Volts{rng.gaussian(mean.value(), sigma.value())};
}

}  // namespace xlf::nand
