#include "src/nand/ispp.hpp"

#include <algorithm>
#include <array>

#include "src/util/expect.hpp"

namespace xlf::nand {

Seconds IsppTrace::duration() const {
  // Pulses and verifies are strictly sequential in a NAND plane.
  return setup_time + program_pump_time + verify_pump_time;
}

Volts IsppTrace::average_vcg() const {
  if (program_pump_time.value() <= 0.0) return Volts{0.0};
  return Volts{vcg_time_integral / program_pump_time.value()};
}

IsppEngine::IsppEngine(const IsppConfig& config, const VoltagePlan& plan)
    : config_(config), plan_(plan) {
  XLF_EXPECT(config_.v_step.value() > 0.0);
  XLF_EXPECT(config_.v_end > config_.v_start);
  XLF_EXPECT(config_.max_pulses >= 1);
  XLF_EXPECT(plan_.consistent());
}

IsppTrace IsppEngine::program(std::span<FloatingGateCell> cells,
                              std::span<const Level> targets,
                              ProgramAlgorithm algo, Rng& rng,
                              double dv_zone_multiplier) const {
  XLF_EXPECT(cells.size() == targets.size());
  XLF_EXPECT(dv_zone_multiplier >= 1.0);
  IsppTrace trace;
  trace.algorithm = algo;
  trace.setup_time = config_.setup_time;

  const bool double_verify = algo == ProgramAlgorithm::kIsppDv;

  // Per-cell programming state.
  enum class State : std::uint8_t { kInhibited, kPulsing, kSlowZone };
  std::vector<State> state(cells.size(), State::kInhibited);
  std::array<std::size_t, 4> pending_per_level{0, 0, 0, 0};
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (targets[i] != Level::kL0) {
      state[i] = State::kPulsing;
      ++pending_per_level[static_cast<std::size_t>(targets[i])];
    }
  }

  Volts vcg = config_.v_start;
  for (unsigned pulse = 0; pulse < config_.max_pulses; ++pulse) {
    const bool any_pending =
        pending_per_level[1] + pending_per_level[2] + pending_per_level[3] > 0;
    if (!any_pending) break;

    // --- program pulse ------------------------------------------------
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (state[i] == State::kPulsing) {
        cells[i].apply_pulse(vcg, rng);
      } else if (state[i] == State::kSlowZone) {
        cells[i].apply_pulse(vcg, rng, config_.dv_bitline_bias);
      }
    }
    ++trace.pulses;
    trace.program_pump_time += config_.pulse_time;
    trace.inhibit_pump_time += config_.pulse_time;
    trace.vcg_time_integral += vcg.value() * config_.pulse_time.value();

    // --- verify phase ---------------------------------------------
    for (Level level : {Level::kL1, Level::kL2, Level::kL3}) {
      const auto li = static_cast<std::size_t>(level);
      if (pending_per_level[li] == 0) continue;

      // Smart scheduling: sense this level only when its fastest
      // pending cell is within lookahead of the sensing voltage — the
      // pre-verify level for DV, the verify level for SV.
      const Volts vfy = plan_.verify_for(level);
      const Volts pre =
          vfy - plan_.pre_verify_offset * dv_zone_multiplier;
      const Volts sense_from = double_verify ? pre : vfy;
      Volts fastest{-100.0};
      for (std::size_t i = 0; i < cells.size(); ++i) {
        if (targets[i] == level && state[i] != State::kInhibited) {
          fastest = std::max(fastest, cells[i].vth());
        }
      }
      if (fastest < sense_from - config_.verify_lookahead) continue;

      if (double_verify) {
        // Pre-verify sense: move cells past VFYp into the slow zone.
        ++trace.verify_ops;
        trace.verify_pump_time += config_.verify_time;
        for (std::size_t i = 0; i < cells.size(); ++i) {
          if (targets[i] == level && state[i] == State::kPulsing &&
              cells[i].vth() >= pre) {
            state[i] = State::kSlowZone;
          }
        }
      }

      // Main verify sense: inhibit cells that reached the level.
      ++trace.verify_ops;
      trace.verify_pump_time += config_.verify_time;
      for (std::size_t i = 0; i < cells.size(); ++i) {
        if (targets[i] == level && state[i] != State::kInhibited &&
            cells[i].vth() >= vfy) {
          state[i] = State::kInhibited;
          --pending_per_level[li];
        }
      }
    }

    vcg = std::min(vcg + config_.v_step, config_.v_end);
  }

  trace.failed_cells = static_cast<unsigned>(
      pending_per_level[1] + pending_per_level[2] + pending_per_level[3]);
  trace.converged = trace.failed_cells == 0;
  return trace;
}

std::vector<Volts> IsppEngine::staircase_response(FloatingGateCell cell,
                                                  Volts v_start, Volts v_end,
                                                  Volts v_step,
                                                  Rng& rng) const {
  XLF_EXPECT(v_step.value() > 0.0);
  XLF_EXPECT(v_end > v_start);
  std::vector<Volts> response;
  for (Volts vcg = v_start; vcg <= v_end; vcg += v_step) {
    cell.apply_pulse(vcg, rng);
    response.push_back(cell.vth());
  }
  return response;
}

}  // namespace xlf::nand
