// Incremental Step Pulse Programming — the ISPP-SV and ISPP-DV
// algorithms of paper Section 5.
//
// Full-sequence MLC programming: a single VCG staircase sweeps from
// v_start to v_end; cells targeting L1..L3 receive pulses until they
// pass their verify level and are then program-inhibited. Verify
// scheduling is "smart": a level is sensed only while it has pending
// cells within reach, so early pulses verify only L1 and late pulses
// only L3 — making pulse/verify counts pattern-dependent, which is
// what the power figures (Fig. 6) key on.
//
// ISPP-DV adds a pre-verify sense per level: cells between pre-verify
// and verify get their bitline biased, reducing the effective step so
// they creep across the verify level with half the overshoot —
// tighter final distributions (lower RBER) at the price of extra
// verifies and pulses (longer program time, more verify-pump energy).
#pragma once

#include <span>
#include <vector>

#include "src/nand/aging.hpp"
#include "src/nand/cell.hpp"
#include "src/nand/threshold.hpp"
#include "src/util/rng.hpp"
#include "src/util/units.hpp"

namespace xlf::nand {

struct IsppConfig {
  Volts v_start{14.0};
  Volts v_end{19.0};
  Volts v_step{0.25};  // the paper's 250 mV Delta-ISPP
  // Pulse/verify wall-clock (one verify = one level sensed),
  // calibrated so a full-sequence ISPP-SV page program lands at the
  // paper's ~1.5 ms (Section 6.3.3).
  Seconds pulse_time = Seconds::micros(40.0);
  Seconds verify_time = Seconds::micros(18.0);
  // Command/data-path setup per program operation.
  Seconds setup_time = Seconds::micros(50.0);
  // Bitline bias applied in the DV slow zone: raises the channel by
  // 0.7 V so cells between pre-verify and verify crawl in ~55 mV
  // steps instead of the full 250 mV — the distribution-compaction
  // mechanism of [19].
  Volts dv_bitline_bias{0.7};
  // The staircase clamps at v_end; a bounded number of extra pulses at
  // v_end may run before the operation reports failure.
  unsigned max_pulses = 40;
  // A level is sensed only when its fastest pending cell is within
  // this distance below the verify level.
  Volts verify_lookahead{0.7};
};

// Everything the rest of the stack needs to know about one page
// program operation: durations for throughput, pump-activity
// integrals for the HV power model, convergence for reliability.
struct IsppTrace {
  ProgramAlgorithm algorithm = ProgramAlgorithm::kIsppSv;
  unsigned pulses = 0;
  unsigned verify_ops = 0;  // single-level sense operations
  bool converged = true;
  unsigned failed_cells = 0;

  // HV accounting.
  Seconds program_pump_time{0.0};  // pump driving VCG during pulses
  double vcg_time_integral = 0.0;  // integral of VCG over pulse time [V*s]
  Seconds verify_pump_time{0.0};   // pump driving the verify/read rails
  Seconds inhibit_pump_time{0.0};  // channel-boost pump, runs per pulse

  Seconds setup_time{0.0};
  Seconds duration() const;
  // Time-averaged VCG across pulse phases.
  Volts average_vcg() const;
};

class IsppEngine {
 public:
  IsppEngine(const IsppConfig& config, const VoltagePlan& plan);

  const IsppConfig& config() const { return config_; }
  const VoltagePlan& plan() const { return plan_; }

  // Program `cells` toward `targets` (same length). L0 targets are
  // never pulsed. Cells are mutated in place. `dv_zone_multiplier`
  // scales the DV pre-verify window — firmware widens the margin as
  // the device wears to preserve the distribution-compaction benefit
  // on broadened populations (see AgingLaw::dv_zone_multiplier).
  IsppTrace program(std::span<FloatingGateCell> cells,
                    std::span<const Level> targets, ProgramAlgorithm algo,
                    Rng& rng, double dv_zone_multiplier = 1.0) const;

  // Single-cell staircase characterisation: VTH after each pulse of a
  // VCG ramp — the paper's Fig. 4 experiment (no verify, no inhibit).
  std::vector<Volts> staircase_response(FloatingGateCell cell, Volts v_start,
                                        Volts v_end, Volts v_step,
                                        Rng& rng) const;

 private:
  IsppConfig config_;
  VoltagePlan plan_;
};

}  // namespace xlf::nand
