// Cell-to-cell interference: parasitic coupling between adjacent
// floating gates shifts a victim cell's threshold when its neighbours
// are programmed afterwards (paper Section 5.1 lists it among the
// variability effects of the compact model). Modelled as a linear
// coupling of the neighbours' threshold displacement onto the victim.
#pragma once

#include <span>

#include "src/nand/cell.hpp"
#include "src/util/units.hpp"

namespace xlf::nand {

struct InterferenceConfig {
  // Residual coupling ratios: full-sequence programming with
  // program-inhibit leaves only the displacement accumulated after a
  // victim is locked to couple onto it, so the effective ratios are
  // well below the raw geometric coupling of the 45 nm pitch.
  // Bitline-direction (within-page) coupling ratio per neighbour.
  double gamma_x = 0.008;
  // Wordline-direction (page-to-page) coupling ratio.
  double gamma_y = 0.015;
};

class InterferenceModel {
 public:
  explicit InterferenceModel(const InterferenceConfig& config);

  const InterferenceConfig& config() const { return config_; }

  // Apply within-page coupling after a page program: each cell is
  // shifted by gamma_x times the programming displacement of its left
  // and right neighbours. `deltas` are the per-cell VTH displacements
  // of the program operation just completed.
  void apply_within_page(std::span<FloatingGateCell> cells,
                         std::span<const Volts> deltas) const;

  // Shift a victim page's cells by gamma_y times the displacement of
  // the page programmed on the adjacent wordline.
  void apply_page_to_page(std::span<FloatingGateCell> victims,
                          std::span<const Volts> aggressor_deltas) const;

  // Standard deviation added to a programmed distribution by the
  // within-page mechanism, given the typical neighbour displacement —
  // used by the RBER calibration to avoid double-counting.
  Volts within_page_sigma(Volts typical_delta) const;

 private:
  InterferenceConfig config_;
};

}  // namespace xlf::nand
