#include "src/nand/aging.hpp"

#include <cmath>

#include "src/util/expect.hpp"

namespace xlf::nand {

const char* to_string(ProgramAlgorithm algo) {
  return algo == ProgramAlgorithm::kIsppSv ? "ISPP-SV" : "ISPP-DV";
}

double AgingLaw::rber(ProgramAlgorithm algo, double cycles) const {
  XLF_EXPECT(cycles >= 0.0);
  const double growth = 1.0 + std::pow(cycles / knee_cycles, exponent);
  const double sv = rber0_sv * growth;
  return algo == ProgramAlgorithm::kIsppSv ? sv : sv / dv_improvement;
}

Volts AgingLaw::k_shift(double cycles) const {
  XLF_EXPECT(cycles >= 0.0);
  return k_shift_eol * std::pow(cycles / 1e6, 0.6);
}

double AgingLaw::speed_spread_multiplier(double cycles) const {
  XLF_EXPECT(cycles >= 0.0);
  return 1.0 + speed_spread_growth_eol * std::sqrt(cycles / 1e6);
}

double AgingLaw::dv_zone_multiplier(double cycles) const {
  XLF_EXPECT(cycles >= 0.0);
  return 1.0 + 2.5 * std::sqrt(cycles / 1e6);
}

}  // namespace xlf::nand
