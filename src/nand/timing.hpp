// NAND operation timing.
//
// Read and erase are datasheet constants (page read 75 us per the
// Micron part the paper cites [27]); program time *emerges* from the
// ISPP engine — a sampled cell population is programmed pulse by
// pulse and the trace duration is cached per (algorithm, age,
// pattern). This is where the paper's ~1.5 ms ISPP-SV program time
// and the growing ISPP-DV penalty (Fig. 9) come from.
#pragma once

#include <map>
#include <mutex>
#include <optional>

#include "src/nand/aging.hpp"
#include "src/nand/ispp.hpp"
#include "src/nand/threshold.hpp"
#include "src/nand/variability.hpp"
#include "src/util/units.hpp"

namespace xlf::nand {

// Page-buffer data-load strategy (paper footnote 1 / Section 6.3.3):
// full-sequence loads both logical pages before programming starts;
// the two-round strategy overlaps half the load with programming,
// mitigating the write-throughput penalty.
enum class LoadStrategy { kFullSequence, kTwoRound };

struct TimingConfig {
  Seconds read_time = Seconds::micros(75.0);   // [27]
  Seconds erase_time = Seconds::millis(2.5);
  // Host-side I/O bandwidth for page transfers (legacy async NAND bus).
  BytesPerSecond io_bandwidth = BytesPerSecond::mib(40.0);
  // Cell population sampled when characterising program time.
  unsigned sample_cells = 8192;
  std::uint64_t sample_seed = 0xB10C5EED;
};

class NandTiming {
 public:
  NandTiming(const TimingConfig& config, const IsppConfig& ispp,
             const VoltagePlan& plan, const VariabilityConfig& variability,
             const AgingLaw& aging);

  Seconds read_time() const { return config_.read_time; }
  Seconds erase_time() const { return config_.erase_time; }
  Seconds io_transfer_time(std::size_t bytes) const;

  // Characteristic ISPP trace for one page program at the given age.
  // `pattern` restricts every programmed cell to one target level
  // (the Fig. 6 L1/L2/L3 patterns); nullopt = uniform random data.
  // Results are cached on a log-spaced age grid (12 keys per decade)
  // and characterised at the key's canonical age, so an entry is a
  // pure function of (algo, pattern, quantised age). Thread-safe:
  // lookups and insertion are lock-guarded while the characterisation
  // itself runs outside the lock (cold-cache keys characterise in
  // parallel), and key-purity makes a duplicate-compute race
  // value-identical — concurrent callers always observe the same
  // bits regardless of which thread populated the entry. The returned
  // reference stays valid for the lifetime of this object (std::map
  // nodes are stable and never erased).
  const IsppTrace& sample_trace(ProgramAlgorithm algo, double pe_cycles,
                                std::optional<Level> pattern = std::nullopt) const;

  Seconds program_time(ProgramAlgorithm algo, double pe_cycles) const;

  // Full page-write busy time including the data load under the given
  // strategy (the ECC encode latency is the controller's concern).
  Seconds page_write_time(ProgramAlgorithm algo, double pe_cycles,
                          std::size_t page_bytes, LoadStrategy strategy) const;

  const TimingConfig& config() const { return config_; }

 private:
  IsppTrace characterize(ProgramAlgorithm algo, double pe_cycles,
                         std::optional<Level> pattern) const;

  TimingConfig config_;
  IsppConfig ispp_config_;
  VoltagePlan plan_;
  AgingLaw aging_;
  VariabilitySampler variability_;
  IsppEngine engine_;
  // Cache key: (algo, pattern index or -1, quantised log10 cycles).
  // Guarded by cache_mutex_; characterisation runs under the lock so
  // an entry is computed exactly once. The mutex makes NandTiming
  // non-copyable — callers that used to clone private instances as a
  // thread-safety workaround (the explore sweep) share one instead.
  // Predates the lock-order rule: a pure memo cache, never held across
  // a call out of this class, so no ordering can form around it.
  mutable std::mutex cache_mutex_;  // xlf-lint: allow(lock-order)
  mutable std::map<std::tuple<int, int, long>, IsppTrace> cache_;
};

}  // namespace xlf::nand
