// Raw bit error rate model: the bridge between the macroscopic
// lifetime law (Fig. 5) and the microscopic threshold-distribution
// picture (Fig. 3).
//
// Macro view: RBER(algo, cycles) follows the calibrated AgingLaw,
// anchored so the UBER-target-driven correction capability reproduces
// the paper's t-chain (Fig. 7).
//
// Micro view: a cell programmed to level Lk sits at VFYk + overshoot
// right after ISPP (a sharp, verify-clamped placement) and then
// accumulates wear-induced spread (trap-assisted shifts, early
// retention loss, disturb, residual interference) which Gaussianises
// the distribution at read time. The model solves for the effective
// read-time sigma that makes the Gaussian overlap across R1..R3 equal
// the macro law — so closed-form figures and Monte-Carlo array
// simulation agree by construction, and ISPP-DV's tighter placement
// shows up as a genuinely narrower distribution.
#pragma once

#include <map>

#include "src/nand/aging.hpp"
#include "src/nand/interference.hpp"
#include "src/nand/ispp.hpp"
#include "src/nand/threshold.hpp"
#include "src/nand/variability.hpp"
#include "src/util/units.hpp"

namespace xlf::nand {

struct LevelDistribution {
  Volts mean{0.0};
  Volts sigma{0.1};
};

class RberModel {
 public:
  RberModel(const VoltagePlan& plan, const AgingLaw& aging,
            const IsppConfig& ispp,
            const VariabilityConfig& variability = {},
            const InterferenceConfig& interference = {});

  // Macro law (Fig. 5).
  double rber(ProgramAlgorithm algo, double cycles) const;

  // Effective final programming step: the full Delta-ISPP for SV, the
  // bitline-bias-reduced softplus step for DV.
  Volts effective_final_step(ProgramAlgorithm algo) const;
  // Mean placement overshoot above the verify level right after
  // programming (half the effective last step).
  Volts placement_offset(ProgramAlgorithm algo) const;
  // Placement spread right after ISPP, measured empirically: a sample
  // population is programmed through the actual ISPP engine (with
  // interference) at beginning of life and the pooled per-level spread
  // is extracted. Cached per algorithm.
  Volts placement_sigma(ProgramAlgorithm algo) const;

  // Effective read-time sigma of the programmed levels, solved so the
  // Gaussian overlap equals the macro law. Cached per (algo, cycles).
  Volts effective_sigma(ProgramAlgorithm algo, double cycles) const;

  // Wear-induced spread to add on top of the ISPP placement so the
  // total matches effective_sigma: sqrt(eff^2 - placement^2).
  Volts wear_sigma(ProgramAlgorithm algo, double cycles) const;

  // Read-time distribution of each level (L0 = erased).
  LevelDistribution distribution(Level level, ProgramAlgorithm algo,
                                 double cycles) const;

  // Exact Gaussian-overlap RBER for a given programmed-level sigma:
  // sum over levels and read bands of misread probability, weighted by
  // the Gray-code bit distance over the 2 bits per cell.
  double rber_from_overlap(ProgramAlgorithm algo, Volts prog_sigma) const;

  const VoltagePlan& plan() const { return plan_; }
  const AgingLaw& aging() const { return aging_; }

 private:
  double measure_placement_sigma(ProgramAlgorithm algo) const;

  VoltagePlan plan_;
  AgingLaw aging_;
  IsppConfig ispp_;
  VariabilityConfig variability_;
  InterferenceConfig interference_;
  // Bisection cache: key quantises log10(cycles) to avoid re-solving.
  mutable std::map<std::pair<int, long>, double> sigma_cache_;
  mutable std::map<int, double> placement_cache_;
};

}  // namespace xlf::nand
