#include "src/nand/interference.hpp"

#include <cmath>

#include "src/util/expect.hpp"

namespace xlf::nand {

InterferenceModel::InterferenceModel(const InterferenceConfig& config)
    : config_(config) {
  XLF_EXPECT(config_.gamma_x >= 0.0 && config_.gamma_x < 0.5);
  XLF_EXPECT(config_.gamma_y >= 0.0 && config_.gamma_y < 0.5);
}

void InterferenceModel::apply_within_page(std::span<FloatingGateCell> cells,
                                          std::span<const Volts> deltas) const {
  XLF_EXPECT(cells.size() == deltas.size());
  if (config_.gamma_x == 0.0) return;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    double shift = 0.0;
    if (i > 0) shift += deltas[i - 1].value();
    if (i + 1 < cells.size()) shift += deltas[i + 1].value();
    cells[i].shift(Volts{config_.gamma_x * shift / 2.0});
  }
}

void InterferenceModel::apply_page_to_page(
    std::span<FloatingGateCell> victims,
    std::span<const Volts> aggressor_deltas) const {
  XLF_EXPECT(victims.size() == aggressor_deltas.size());
  if (config_.gamma_y == 0.0) return;
  for (std::size_t i = 0; i < victims.size(); ++i) {
    victims[i].shift(Volts{config_.gamma_y * aggressor_deltas[i].value()});
  }
}

Volts InterferenceModel::within_page_sigma(Volts typical_delta) const {
  // Two neighbours, each contributing gamma_x/2 of a displacement
  // whose cell-to-cell spread is on the order of the displacement
  // itself divided by ~2 (levels L0..L3 spread); treat the two
  // contributions as independent.
  const double per_neighbour =
      config_.gamma_x / 2.0 * typical_delta.value() / 2.0;
  return Volts{per_neighbour * std::sqrt(2.0)};
}

}  // namespace xlf::nand
