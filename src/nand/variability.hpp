// Per-cell technology variability (paper Section 5.1): geometry (W/L)
// variations, tunnel-oxide and doping non-uniformity, and injection
// granularity. All sources fold into two per-cell quantities the
// compact model consumes — the onset offset K (cell speed) and the
// injection noise sigma — sampled per cell from a seeded generator so
// array populations are reproducible.
#pragma once

#include "src/nand/aging.hpp"
#include "src/nand/cell.hpp"
#include "src/util/rng.hpp"

namespace xlf::nand {

struct VariabilityConfig {
  // Nominal onset for the 45 nm production device (ISPP 14..19 V
  // staircase programming a 1.2..3.8 V verify window).
  Volts k_nominal{14.0};
  // Static cell-speed spread at beginning of life.
  Volts k_sigma{0.28};
  // Onset sharpness and its spread.
  Volts onset_sharpness{0.4};
  double onset_sharpness_rel_sigma = 0.05;
  // Injection-noise baseline; the rber model retunes this per
  // (algorithm, age) to meet the calibrated distribution widths.
  Volts injection_sigma{0.05};
};

class VariabilitySampler {
 public:
  VariabilitySampler(const VariabilityConfig& config, const AgingLaw& aging);

  // Sample the static parameters of one cell at the given wear state.
  CellParams sample(Rng& rng, double pe_cycles) const;

  // Sample an erased threshold voltage.
  Volts sample_erased(Rng& rng, Volts mean, Volts sigma) const;

  const VariabilityConfig& config() const { return config_; }

 private:
  VariabilityConfig config_;
  AgingLaw aging_;
};

}  // namespace xlf::nand
