// Program/erase cycling degradation and the lifetime RBER law.
//
// The macroscopic anchor is the paper's Fig. 5 / Fig. 7 chain: with
// UBER target 1e-11 the required correction capability must evolve
// from tMIN = 3 at beginning of life to tMAX = 65 (ISPP-SV) or 14
// (ISPP-DV) at 1e6 cycles, which pins
//
//   RBER_SV(c) = 2.5e-6 * (1 + (c / 2e4)^1.53)       (~1e-3 at 1e6)
//   RBER_DV(c) = RBER_SV(c) / 10                      (Fig. 5 gap)
//
// Microscopically the same degradation appears as distribution
// broadening (oxide trap buildup) and a slight negative shift of the
// tunnelling onset (trapped charge makes cells program faster); the
// array simulation consumes those, and the rber model ties the two
// views together by construction.
#pragma once

#include "src/util/units.hpp"

namespace xlf::nand {

enum class ProgramAlgorithm { kIsppSv, kIsppDv };

const char* to_string(ProgramAlgorithm algo);

struct AgingLaw {
  // Macro RBER law parameters.
  double rber0_sv = 2.5e-6;
  double knee_cycles = 2.0e4;
  double exponent = 1.53;
  double dv_improvement = 10.0;  // Fig. 5: one order of magnitude

  // Micro-level effects.
  // Onset shift at 1e6 cycles (cells appear faster when aged).
  Volts k_shift_eol{-0.25};
  // Relative growth of the cell-speed spread sigma_K at 1e6 cycles.
  double speed_spread_growth_eol = 0.6;

  double rber(ProgramAlgorithm algo, double cycles) const;
  // Onset shift at the given cycle count.
  Volts k_shift(double cycles) const;
  // Multiplier on the BOL cell-speed spread sigma_K.
  double speed_spread_multiplier(double cycles) const;
  // Widening of the ISPP-DV pre-verify window with wear: firmware
  // grows the slow-zone margin to keep compacting the broadened
  // populations, which is what makes the DV write-time penalty climb
  // from ~40% to ~48% over the lifetime (Fig. 9).
  double dv_zone_multiplier(double cycles) const;
};

}  // namespace xlf::nand
