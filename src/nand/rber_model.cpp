#include "src/nand/rber_model.hpp"

#include <cmath>

#include "src/util/expect.hpp"
#include "src/util/stats.hpp"

namespace xlf::nand {
namespace {

// Probability mass of N(mean, sigma) inside [lo, hi); +-infinity is
// encoded with the huge sentinels below.
constexpr double kMinusInf = -1e9;
constexpr double kPlusInf = 1e9;

double band_mass(double mean, double sigma, double lo, double hi) {
  const auto cdf = [&](double x) {
    if (x <= kMinusInf) return 0.0;
    if (x >= kPlusInf) return 1.0;
    return 1.0 - q_function((x - mean) / sigma);
  };
  return cdf(hi) - cdf(lo);
}

}  // namespace

RberModel::RberModel(const VoltagePlan& plan, const AgingLaw& aging,
                     const IsppConfig& ispp,
                     const VariabilityConfig& variability,
                     const InterferenceConfig& interference)
    : plan_(plan),
      aging_(aging),
      ispp_(ispp),
      variability_(variability),
      interference_(interference) {
  XLF_EXPECT(plan_.consistent());
}

double RberModel::rber(ProgramAlgorithm algo, double cycles) const {
  return aging_.rber(algo, cycles);
}

Volts RberModel::effective_final_step(ProgramAlgorithm algo) const {
  const double step = ispp_.v_step.value();
  if (algo == ProgramAlgorithm::kIsppSv) return Volts{step};
  // DV slow zone: the staircase steady-state overdrive OD* satisfies
  // softplus(OD*) = step; the bitline bias shifts it down, so the
  // crawl step is softplus(OD* - bias).
  const double s = variability_.onset_sharpness.value();
  const double od_star = s * std::log(std::expm1(step / s));
  const double crawl =
      s * std::log1p(std::exp((od_star - ispp_.dv_bitline_bias.value()) / s));
  return Volts{std::max(crawl, step / 8.0)};
}

Volts RberModel::placement_offset(ProgramAlgorithm algo) const {
  // Mean overshoot above the verify level: half the effective final
  // step.
  return Volts{effective_final_step(algo).value() / 2.0};
}

// xlf: cold — placement-cache fill on miss (warm-up), outside the
// hot allocation budget.
double RberModel::measure_placement_sigma(ProgramAlgorithm algo) const {
  // Program a beginning-of-life sample population through the real
  // ISPP engine, interference included, and pool the deviations of the
  // programmed levels from their per-level means.
  constexpr unsigned kCells = 6144;
  VariabilitySampler sampler(variability_, aging_);
  IsppEngine engine(ispp_, plan_);
  InterferenceModel interference(interference_);
  Rng rng(0xCA11B8A7Eull ^ static_cast<std::uint64_t>(algo));

  std::vector<FloatingGateCell> cells;
  std::vector<Level> targets;
  cells.reserve(kCells);
  targets.reserve(kCells);
  for (unsigned i = 0; i < kCells; ++i) {
    cells.emplace_back(
        sampler.sample_erased(rng, plan_.erased_mean, plan_.erased_sigma),
        sampler.sample(rng, 0.0));
    targets.push_back(static_cast<Level>(rng.below(4)));
  }
  std::vector<Volts> before(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) before[i] = cells[i].vth();
  engine.program(cells, targets, algo, rng);
  std::vector<Volts> deltas(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    deltas[i] = cells[i].vth() - before[i];
  }
  interference.apply_within_page(cells, deltas);

  // Pooled robust spread across L1..L3: the DV placement distribution
  // is bimodal (cells that hop the whole slow zone in one pulse carry
  // the full overshoot), so a raw standard deviation overstates the
  // core width; the interquartile range tracks the bulk that the
  // Gaussian wear model composes with.
  double total_var = 0.0;
  std::size_t groups = 0;
  for (Level level : {Level::kL1, Level::kL2, Level::kL3}) {
    std::vector<double> values;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (targets[i] == level) values.push_back(cells[i].vth().value());
    }
    if (values.size() >= 16) {
      const double iqr =
          percentile(values, 0.75) - percentile(values, 0.25);
      const double robust_sigma = iqr / 1.349;
      total_var += robust_sigma * robust_sigma;
      ++groups;
    }
  }
  XLF_ENSURE(groups > 0);
  return std::sqrt(total_var / static_cast<double>(groups));
}

Volts RberModel::placement_sigma(ProgramAlgorithm algo) const {
  const int key = static_cast<int>(algo);
  auto it = placement_cache_.find(key);
  if (it == placement_cache_.end()) {
    it = placement_cache_.emplace(key, measure_placement_sigma(algo)).first;
  }
  return Volts{it->second};
}

double RberModel::rber_from_overlap(ProgramAlgorithm algo,
                                    Volts prog_sigma) const {
  // Read bands: (-inf, R1), [R1, R2), [R2, R3), [R3, +inf).
  const double r1 = plan_.read[0].value();
  const double r2 = plan_.read[1].value();
  const double r3 = plan_.read[2].value();
  const double band_lo[4] = {kMinusInf, r1, r2, r3};
  const double band_hi[4] = {r1, r2, r3, kPlusInf};

  double bit_errors = 0.0;
  for (Level level : kAllLevels) {
    double mean;
    double sigma;
    if (level == Level::kL0) {
      mean = plan_.erased_mean.value();
      sigma = plan_.erased_sigma.value();
    } else {
      mean = plan_.verify_for(level).value() + placement_offset(algo).value();
      sigma = prog_sigma.value();
    }
    for (Level read : kAllLevels) {
      if (read == level) continue;
      const auto band = static_cast<std::size_t>(read);
      const double mass = band_mass(mean, sigma, band_lo[band], band_hi[band]);
      bit_errors += 0.25 * mass * bit_distance(level, read);
    }
  }
  // Two bits per cell.
  return bit_errors / 2.0;
}

Volts RberModel::effective_sigma(ProgramAlgorithm algo, double cycles) const {
  XLF_EXPECT(cycles >= 0.0);
  const auto key = std::make_pair(
      static_cast<int>(algo),
      std::lround(std::log10(std::max(cycles, 1.0)) * 1e6));
  const auto it = sigma_cache_.find(key);
  if (it != sigma_cache_.end()) return Volts{it->second};

  const double target = rber(algo, cycles);
  // Overlap RBER grows monotonically with sigma: bisection.
  double lo = 0.01, hi = 1.5;
  XLF_ENSURE(rber_from_overlap(algo, Volts{hi}) > target);
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (rber_from_overlap(algo, Volts{mid}) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double solved = 0.5 * (lo + hi);
  sigma_cache_.emplace(key, solved);
  return Volts{solved};
}

Volts RberModel::wear_sigma(ProgramAlgorithm algo, double cycles) const {
  const double eff = effective_sigma(algo, cycles).value();
  const double place = placement_sigma(algo).value();
  return Volts{std::sqrt(std::max(eff * eff - place * place, 1e-8))};
}

LevelDistribution RberModel::distribution(Level level, ProgramAlgorithm algo,
                                          double cycles) const {
  LevelDistribution dist;
  if (level == Level::kL0) {
    dist.mean = plan_.erased_mean;
    dist.sigma = plan_.erased_sigma;
  } else {
    dist.mean = plan_.verify_for(level) + placement_offset(algo);
    dist.sigma = effective_sigma(algo, cycles);
  }
  return dist;
}

}  // namespace xlf::nand
