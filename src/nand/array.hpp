// Bit-true NAND array: every cell carries an analog threshold
// voltage; pages are programmed through the ISPP engine (or a
// statistically equivalent placement), aged per block, disturbed by
// neighbours, and read back against R1..R3.
//
// Bit-to-cell mapping: page bit 2i is the MSB (upper page) and bit
// 2i+1 the LSB (lower page) of cell i, Gray-coded onto L0..L3.
#pragma once

#include <optional>
#include <vector>

#include "src/nand/aging.hpp"
#include "src/nand/disturb.hpp"
#include "src/nand/geometry.hpp"
#include "src/nand/interference.hpp"
#include "src/nand/ispp.hpp"
#include "src/nand/rber_model.hpp"
#include "src/nand/threshold.hpp"
#include "src/nand/variability.hpp"
#include "src/util/bitvec.hpp"
#include "src/util/rng.hpp"

namespace xlf::nand {

struct ArrayConfig {
  Geometry geometry;
  VoltagePlan plan;
  IsppConfig ispp;
  VariabilityConfig variability;
  InterferenceConfig interference;
  AgingLaw aging;
  DisturbConfig disturb;
  std::uint64_t seed = 1;
};

// How a page program places thresholds.
enum class ProgramMode {
  // Full ISPP pulse-by-pulse simulation plus wear spread: slow,
  // bit-true, produces a real IsppTrace.
  kIsppSimulation,
  // Direct sampling from the calibrated read-time distributions:
  // fast, statistically identical for RBER purposes.
  kStatistical,
};

struct ProgramResult {
  bool ok = true;
  // Populated in kIsppSimulation mode.
  std::optional<IsppTrace> trace;
  unsigned over_programmed_cells = 0;
};

class NandArray {
 public:
  explicit NandArray(const ArrayConfig& config);

  const ArrayConfig& config() const { return config_; }
  const RberModel& rber_model() const { return rber_; }

  // --- block operations ---------------------------------------------
  // Erase resamples the erased distribution and counts one P/E cycle.
  void erase_block(std::uint32_t block);
  double wear(std::uint32_t block) const;
  // Jump a block ahead in its lifetime (lifetime experiments).
  void set_wear(std::uint32_t block, double pe_cycles);

  // --- page operations ------------------------------------------------
  bool is_erased(PageAddress addr) const;
  ProgramResult program_page(PageAddress addr, const BitVec& bits,
                             ProgramAlgorithm algo,
                             ProgramMode mode = ProgramMode::kStatistical);
  BitVec read_page(PageAddress addr) const;
  // Raw level view for distribution diagnostics.
  std::vector<Level> read_levels(PageAddress addr) const;
  std::vector<Volts> thresholds(PageAddress addr) const;

  static std::vector<Level> bits_to_levels(const BitVec& bits);
  static BitVec levels_to_bits(const std::vector<Level>& levels);

  // --- stress injection (beyond the average-case RBER law) -----------
  // Retention bake: programmed cells of the page lose charge for
  // `hours` at the block's wear state (erased cells are unaffected).
  void apply_retention(PageAddress addr, double hours);
  // Read disturb: `reads` block reads creep the page's erased cells
  // upward toward R1.
  void apply_read_disturb(PageAddress addr, unsigned long long reads);

 private:
  struct PageState {
    std::vector<FloatingGateCell> cells;
    bool programmed = false;
  };
  PageState& page(PageAddress addr);
  const PageState& page(PageAddress addr) const;
  void check_addr(PageAddress addr) const;

  ArrayConfig config_;
  VariabilitySampler variability_;
  IsppEngine ispp_;
  InterferenceModel interference_;
  RberModel rber_;
  DisturbModel disturb_;
  Rng rng_;
  std::vector<double> block_wear_;
  std::vector<PageState> pages_;
};

// Monte-Carlo RBER measurement: program `pages` pages of random data
// at the given age and count raw read errors. Cross-validates the
// closed-form law (Fig. 5 companion experiment).
double monte_carlo_rber(const ArrayConfig& base_config, ProgramAlgorithm algo,
                        double pe_cycles, unsigned pages, ProgramMode mode,
                        std::uint64_t seed);

}  // namespace xlf::nand
