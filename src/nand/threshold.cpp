#include "src/nand/threshold.hpp"

#include "src/util/expect.hpp"

namespace xlf::nand {

Bits2 level_to_bits(Level level) {
  switch (level) {
    case Level::kL0: return {true, true};    // 11
    case Level::kL1: return {false, true};   // 01
    case Level::kL2: return {false, false};  // 00
    case Level::kL3: return {true, false};   // 10
  }
  XLF_EXPECT(false && "invalid level");
  return {};
}

Level bits_to_level(Bits2 bits) {
  if (bits.msb && bits.lsb) return Level::kL0;
  if (!bits.msb && bits.lsb) return Level::kL1;
  if (!bits.msb && !bits.lsb) return Level::kL2;
  return Level::kL3;
}

unsigned bit_distance(Level a, Level b) {
  const Bits2 ba = level_to_bits(a);
  const Bits2 bb = level_to_bits(b);
  return static_cast<unsigned>(ba.msb != bb.msb) +
         static_cast<unsigned>(ba.lsb != bb.lsb);
}

Volts VoltagePlan::verify_for(Level level) const {
  XLF_EXPECT(level != Level::kL0);  // L0 is reached by erase, not program
  return verify[static_cast<std::size_t>(level) - 1];
}

Volts VoltagePlan::pre_verify_for(Level level) const {
  return verify_for(level) - pre_verify_offset;
}

Level VoltagePlan::read_level(Volts vth) const {
  if (vth < read[0]) return Level::kL0;
  if (vth < read[1]) return Level::kL1;
  if (vth < read[2]) return Level::kL2;
  return Level::kL3;
}

bool VoltagePlan::consistent() const {
  if (!(erased_mean < read[0])) return false;
  for (std::size_t i = 0; i < 3; ++i) {
    if (!(read[i] < verify[i])) return false;
    if (i > 0 && !(verify[i - 1] < read[i])) return false;
    if (!(pre_verify_offset.value() > 0.0)) return false;
  }
  return verify[2] < over_program;
}

}  // namespace xlf::nand
