// Deferred data-plane queue: one per-die FIFO of cell-array jobs
// (program / erase / set_wear closures) that a NandDevice appends to
// instead of mutating its NandArray inline.
//
// The determinism contract is ordering, not threading: jobs drain in
// exactly the order they were pushed, so the die's array — including
// its private noise Rng stream — passes through the same state
// sequence as the undeferred execution. Which thread runs drain() is
// irrelevant to the bytes produced; the only rule is that push() and
// drain() never run concurrently on the same queue. The simulator
// upholds it structurally: pushes happen on the issue thread, and
// drains happen either inline on that thread (a read landing on a die
// with pending cell work) or inside a blocking fork-join flush where
// each die's queue is owned by exactly one worker
// (sim::DieShardExecutor).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace xlf::nand {

class DataPlaneQueue {
 public:
  using Job = std::function<void()>;

  // Deferred batch: drained every flush, capacity recycles.
  void push(Job job) { jobs_.push_back(std::move(job)); }  // xlf-lint: allow(hot-alloc)

  bool pending() const { return !jobs_.empty(); }
  std::size_t pending_jobs() const { return jobs_.size(); }

  // Execute every pending job in push order, then reset. clear()
  // keeps the vector's capacity, so a warmed-up queue never grows.
  // xlf: hot
  void drain() {
    for (Job& job : jobs_) job();
    jobs_.clear();
  }

 private:
  std::vector<Job> jobs_;
};

}  // namespace xlf::nand
