#include "src/nand/timing.hpp"

#include <cmath>

#include "src/util/expect.hpp"

namespace xlf::nand {

NandTiming::NandTiming(const TimingConfig& config, const IsppConfig& ispp,
                       const VoltagePlan& plan,
                       const VariabilityConfig& variability,
                       const AgingLaw& aging)
    : config_(config),
      ispp_config_(ispp),
      plan_(plan),
      aging_(aging),
      variability_(variability, aging),
      engine_(ispp, plan) {
  XLF_EXPECT(config_.sample_cells >= 64);
}

Seconds NandTiming::io_transfer_time(std::size_t bytes) const {
  return Seconds{static_cast<double>(bytes) / config_.io_bandwidth.value()};
}

// xlf: cold — characterization-cache fill: runs on a cache miss
// during warm-up, never in the steady-state event loop.
IsppTrace NandTiming::characterize(ProgramAlgorithm algo, double pe_cycles,
                                   std::optional<Level> pattern) const {
  // Average a few independent sample populations: the page program
  // time is set by the slowest-cell tail, which is noisy on a single
  // draw but very stable in expectation.
  constexpr unsigned kRuns = 3;
  const double zone = aging_.dv_zone_multiplier(pe_cycles);
  IsppTrace averaged;
  double pulses = 0.0, verify_ops = 0.0, failed = 0.0;
  for (unsigned run = 0; run < kRuns; ++run) {
    Rng rng(config_.sample_seed ^ (static_cast<std::uint64_t>(algo) << 32) ^
            (static_cast<std::uint64_t>(run) << 40) ^
            static_cast<std::uint64_t>(pe_cycles));
    std::vector<FloatingGateCell> cells;
    std::vector<Level> targets;
    cells.reserve(config_.sample_cells);
    targets.reserve(config_.sample_cells);
    for (unsigned i = 0; i < config_.sample_cells; ++i) {
      const Volts erased = variability_.sample_erased(rng, plan_.erased_mean,
                                                      plan_.erased_sigma);
      cells.emplace_back(erased, variability_.sample(rng, pe_cycles));
      if (pattern.has_value()) {
        targets.push_back(*pattern);
      } else {
        targets.push_back(static_cast<Level>(rng.below(4)));
      }
    }
    const IsppTrace trace = engine_.program(cells, targets, algo, rng, zone);
    averaged.algorithm = trace.algorithm;
    averaged.converged = averaged.converged && trace.converged;
    averaged.setup_time = trace.setup_time;
    averaged.program_pump_time += trace.program_pump_time / kRuns;
    averaged.verify_pump_time += trace.verify_pump_time / kRuns;
    averaged.inhibit_pump_time += trace.inhibit_pump_time / kRuns;
    averaged.vcg_time_integral += trace.vcg_time_integral / kRuns;
    pulses += trace.pulses;
    verify_ops += trace.verify_ops;
    failed += trace.failed_cells;
  }
  averaged.pulses = static_cast<unsigned>(pulses / kRuns + 0.5);
  averaged.verify_ops = static_cast<unsigned>(verify_ops / kRuns + 0.5);
  averaged.failed_cells = static_cast<unsigned>(failed / kRuns + 0.5);
  return averaged;
}

const IsppTrace& NandTiming::sample_trace(ProgramAlgorithm algo,
                                          double pe_cycles,
                                          std::optional<Level> pattern) const {
  XLF_EXPECT(pe_cycles >= 0.0);
  const int pattern_key =
      pattern.has_value() ? static_cast<int>(*pattern) : -1;
  // Quantise the age to 12 points per decade: program time varies
  // slowly with wear and the ISPP sample run is expensive.
  const long age_key =
      std::lround(std::log10(std::max(pe_cycles, 1.0)) * 12.0);
  const auto key = std::make_tuple(static_cast<int>(algo), pattern_key, age_key);
  {
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
  }
  // Characterise at the key's canonical age, not the exact request:
  // the entry is then a pure function of the key, so concurrent
  // first callers — even for *different* ages quantising to the same
  // key — compute bit-identical traces and any try_emplace race is
  // harmless (the loser's duplicate is discarded). Computing outside
  // the lock keeps cold-cache characterisations parallel across
  // workers, which is where the sweep's speedup lives.
  const double canonical_age =
      std::pow(10.0, static_cast<double>(age_key) / 12.0);
  IsppTrace trace = characterize(algo, canonical_age, pattern);
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  // The returned reference outlives the lock safely — map nodes are
  // stable and entries are never erased.
  return cache_.try_emplace(key, std::move(trace)).first->second;
}

Seconds NandTiming::program_time(ProgramAlgorithm algo,
                                 double pe_cycles) const {
  return sample_trace(algo, pe_cycles).duration();
}

Seconds NandTiming::page_write_time(ProgramAlgorithm algo, double pe_cycles,
                                    std::size_t page_bytes,
                                    LoadStrategy strategy) const {
  const Seconds load = io_transfer_time(page_bytes);
  const Seconds program = program_time(algo, pe_cycles);
  switch (strategy) {
    case LoadStrategy::kFullSequence:
      return load + program;
    case LoadStrategy::kTwoRound:
      // Second-round load overlaps the first programming round.
      return load / 2.0 + program;
  }
  XLF_EXPECT(false && "invalid strategy");
  return program;
}

}  // namespace xlf::nand
