#include "src/nand/array.hpp"

#include <algorithm>

#include "src/util/expect.hpp"

namespace xlf::nand {

NandArray::NandArray(const ArrayConfig& config)
    : config_(config),
      variability_(config.variability, config.aging),
      ispp_(config.ispp, config.plan),
      interference_(config.interference),
      rber_(config.plan, config.aging, config.ispp, config.variability,
            config.interference),
      disturb_(config.disturb),
      rng_(config.seed),
      block_wear_(config.geometry.blocks, 0.0),
      pages_(config.geometry.pages()) {
  XLF_EXPECT(config.geometry.blocks >= 1);
  XLF_EXPECT(config.geometry.pages_per_block >= 1);
  for (std::uint32_t b = 0; b < config_.geometry.blocks; ++b) {
    erase_block(b);
    block_wear_[b] = 0.0;  // factory-fresh: the first erase is free
  }
}

void NandArray::check_addr(PageAddress addr) const {
  XLF_EXPECT(addr.block < config_.geometry.blocks);
  XLF_EXPECT(addr.page < config_.geometry.pages_per_block);
}

NandArray::PageState& NandArray::page(PageAddress addr) {
  check_addr(addr);
  return pages_[addr.block * config_.geometry.pages_per_block + addr.page];
}

const NandArray::PageState& NandArray::page(PageAddress addr) const {
  check_addr(addr);
  return pages_[addr.block * config_.geometry.pages_per_block + addr.page];
}

void NandArray::erase_block(std::uint32_t block) {
  XLF_EXPECT(block < config_.geometry.blocks);
  block_wear_[block] += 1.0;
  const double wear_now = block_wear_[block];
  for (std::uint32_t p = 0; p < config_.geometry.pages_per_block; ++p) {
    PageState& state = pages_[block * config_.geometry.pages_per_block + p];
    state.programmed = false;
    state.cells.clear();
    // Erase rebuilds the page's cell population in place; clear()
    // keeps capacity, so this recycles after the first cycle.
    state.cells.reserve(config_.geometry.cells_per_page());  // xlf-lint: allow(hot-alloc)
    for (std::uint32_t i = 0; i < config_.geometry.cells_per_page(); ++i) {
      const Volts erased = variability_.sample_erased(
          rng_, config_.plan.erased_mean, config_.plan.erased_sigma);
      state.cells.emplace_back(  // xlf-lint: allow(hot-alloc)
          erased, variability_.sample(rng_, wear_now));
    }
  }
}

double NandArray::wear(std::uint32_t block) const {
  XLF_EXPECT(block < config_.geometry.blocks);
  return block_wear_[block];
}

void NandArray::set_wear(std::uint32_t block, double pe_cycles) {
  XLF_EXPECT(block < config_.geometry.blocks);
  XLF_EXPECT(pe_cycles >= 0.0);
  block_wear_[block] = pe_cycles;
}

bool NandArray::is_erased(PageAddress addr) const {
  return !page(addr).programmed;
}

std::vector<Level> NandArray::bits_to_levels(const BitVec& bits) {
  XLF_EXPECT(bits.size() % 2 == 0);
  std::vector<Level> levels(bits.size() / 2);
  for (std::size_t i = 0; i < levels.size(); ++i) {
    levels[i] = bits_to_level(Bits2{bits.get(2 * i), bits.get(2 * i + 1)});
  }
  return levels;
}

BitVec NandArray::levels_to_bits(const std::vector<Level>& levels) {
  BitVec bits(levels.size() * 2);
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const Bits2 b = level_to_bits(levels[i]);
    bits.set(2 * i, b.msb);
    bits.set(2 * i + 1, b.lsb);
  }
  return bits;
}

ProgramResult NandArray::program_page(PageAddress addr, const BitVec& bits,
                                      ProgramAlgorithm algo,
                                      ProgramMode mode) {
  PageState& state = page(addr);
  XLF_EXPECT(!state.programmed);  // NAND constraint: program-after-erase
  XLF_EXPECT(bits.size() == config_.geometry.bits_per_page());
  const auto targets = bits_to_levels(bits);
  const double pe = block_wear_[addr.block];

  ProgramResult result;
  if (mode == ProgramMode::kIsppSimulation) {
    std::vector<Volts> before(state.cells.size());
    for (std::size_t i = 0; i < state.cells.size(); ++i) {
      before[i] = state.cells[i].vth();
    }
    result.trace = ispp_.program(state.cells, targets, algo, rng_,
                                 config_.aging.dv_zone_multiplier(pe));
    result.ok = result.trace->converged;

    // Wear-induced spread on top of the verify-clamped placement: the
    // aggregate of trap-assisted shifts, early retention and disturb
    // that the RBER calibration attributes to read time.
    const double wear_spread = rber_.wear_sigma(algo, pe).value();
    for (std::size_t i = 0; i < state.cells.size(); ++i) {
      if (targets[i] != Level::kL0) {
        state.cells[i].shift(Volts{rng_.gaussian(0.0, wear_spread)});
      }
    }

    // Within-page parasitic coupling from the programming displacement.
    std::vector<Volts> deltas(state.cells.size());
    for (std::size_t i = 0; i < state.cells.size(); ++i) {
      deltas[i] = state.cells[i].vth() - before[i];
    }
    interference_.apply_within_page(state.cells, deltas);
  } else {
    // Statistical placement: sample the calibrated read-time
    // distribution directly.
    for (std::size_t i = 0; i < state.cells.size(); ++i) {
      const LevelDistribution dist = rber_.distribution(targets[i], algo, pe);
      if (targets[i] == Level::kL0) continue;  // erased cells stay put
      state.cells[i].erase(
          Volts{rng_.gaussian(dist.mean.value(), dist.sigma.value())});
    }
  }

  for (const auto& cell : state.cells) {
    if (config_.plan.is_over_programmed(cell.vth())) {
      ++result.over_programmed_cells;
    }
  }
  state.programmed = true;
  return result;
}

BitVec NandArray::read_page(PageAddress addr) const {
  const PageState& state = page(addr);
  BitVec bits(config_.geometry.bits_per_page());
  for (std::size_t i = 0; i < state.cells.size(); ++i) {
    const Level level = config_.plan.read_level(state.cells[i].vth());
    const Bits2 b = level_to_bits(level);
    bits.set(2 * i, b.msb);
    bits.set(2 * i + 1, b.lsb);
  }
  return bits;
}

std::vector<Level> NandArray::read_levels(PageAddress addr) const {
  const PageState& state = page(addr);
  std::vector<Level> levels(state.cells.size());
  for (std::size_t i = 0; i < state.cells.size(); ++i) {
    levels[i] = config_.plan.read_level(state.cells[i].vth());
  }
  return levels;
}

std::vector<Volts> NandArray::thresholds(PageAddress addr) const {
  const PageState& state = page(addr);
  std::vector<Volts> out(state.cells.size());
  for (std::size_t i = 0; i < state.cells.size(); ++i) {
    out[i] = state.cells[i].vth();
  }
  return out;
}

void NandArray::apply_retention(PageAddress addr, double hours) {
  PageState& state = page(addr);
  XLF_EXPECT(state.programmed && "retention stress targets written data");
  const double pe = block_wear_[addr.block];
  const double mean = disturb_.retention_mean(hours, pe).value();
  const double sigma = disturb_.retention_sigma(hours, pe).value();
  for (auto& cell : state.cells) {
    // Only cells holding charge detrap; the erased level is its own
    // equilibrium.
    if (cell.vth() < config_.plan.read[0]) continue;
    const double loss = std::max(0.0, rng_.gaussian(mean, sigma));
    cell.shift(Volts{-loss});
  }
}

void NandArray::apply_read_disturb(PageAddress addr,
                                   unsigned long long reads) {
  PageState& state = page(addr);
  const double mean = disturb_.read_disturb_shift(reads).value();
  for (auto& cell : state.cells) {
    // Weak gate stress mostly moves the erased population upward.
    if (cell.vth() >= config_.plan.read[0]) continue;
    const double shift = std::max(0.0, rng_.gaussian(mean, 0.3 * mean));
    cell.shift(Volts{shift});
  }
}

double monte_carlo_rber(const ArrayConfig& base_config, ProgramAlgorithm algo,
                        double pe_cycles, unsigned pages, ProgramMode mode,
                        std::uint64_t seed) {
  XLF_EXPECT(pages >= 1);
  ArrayConfig config = base_config;
  config.geometry.blocks = 1;
  config.geometry.pages_per_block = 1;
  config.seed = seed;

  NandArray array(config);
  Rng data_rng(seed ^ 0xD1CEBA5Eull);
  std::uint64_t errors = 0;
  std::uint64_t bits_total = 0;
  const PageAddress addr{0, 0};
  for (unsigned p = 0; p < pages; ++p) {
    // Set the wear before erasing so the fresh cell population is
    // sampled with the aged parameters.
    array.set_wear(0, pe_cycles);
    array.erase_block(0);
    array.set_wear(0, pe_cycles);
    BitVec data(config.geometry.bits_per_page());
    for (std::size_t i = 0; i < data.size(); ++i) {
      data.set(i, data_rng.chance(0.5));
    }
    array.program_page(addr, data, algo, mode);
    errors += array.read_page(addr).hamming_distance(data);
    bits_total += data.size();
  }
  return static_cast<double>(errors) / static_cast<double>(bits_total);
}

}  // namespace xlf::nand
