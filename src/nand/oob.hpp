// Out-of-band (spare-area) metadata model for crash consistency.
//
// Real NAND pages carry a spare area programmed in the same operation
// as the data (Geometry::spare_bytes_per_page already budgets it for
// ECC parity *and* metadata). The FTL uses a few of those bytes for a
// per-page record that makes its DRAM state reconstructible after
// power loss: which LPA the page holds, a device-wide monotonic
// sequence number (the replay order), and enough of the write-time
// context (stream, logical clock, block t) to restore the allocator
// frontiers and the per-block operating point.
//
// The device stores the record opaquely — it defines no semantics for
// the fields, it only guarantees the record is durable iff the page's
// program completed through the OOB step (a program killed between
// data and OOB leaves a "torn" page: programmed cells, no record —
// the two-step programming vulnerability the recovery path must treat
// as never written).
//
// Alongside the per-page records the device keeps a small durable
// per-block table (erase count + grown-bad flag) standing in for the
// metadata a real controller keeps in a reserved system block.
#pragma once

#include <cstdint>

namespace xlf::nand {

// The FTL's spare-area record format. Written atomically with the
// page's data; erased with the block.
struct OobRecord {
  // Logical page this physical page holds (host view).
  std::uint32_t lba = 0;
  // Device-wide monotonic program/trim sequence number. Replaying all
  // surviving records in increasing seq order reproduces the L2P map:
  // for every LBA the highest surviving seq wins.
  std::uint64_t seq = 0;
  // BCH correction capability the page was encoded with (the paper's
  // per-block t at program time).
  unsigned t = 0;
  // Which write frontier programmed the page: 0 = host stream,
  // 1 = GC/relocation stream. Mount uses it to reopen a partially
  // written block on the right frontier.
  std::uint8_t stream = 0;
  // FTL logical clock at program time (the cost-benefit age signal) —
  // restores DieAllocator::last_write_ on rebuild.
  std::uint64_t stamp = 0;

  friend bool operator==(const OobRecord&, const OobRecord&) = default;
};

}  // namespace xlf::nand
