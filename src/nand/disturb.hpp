// Data retention and read disturb — two of the primary MLC failure
// mechanisms the paper's introduction lists (refs [3], [4]). The
// evaluation section folds their average effect into the lifetime
// RBER law; this module exposes them as explicit, separately
// injectable stresses so tests and applications can exercise the ECC
// against retention bakes and read-hammering beyond the average case.
//
//  * Retention: trapped charge detraps over time, shifting programmed
//    cells down; the rate grows with wear (damaged oxide traps more).
//  * Read disturb: every read weakly gate-stresses the unselected
//    pages of the block; erased cells creep up toward R1.
#pragma once

#include "src/util/units.hpp"

namespace xlf::nand {

struct DisturbConfig {
  // Mean upward creep of erased cells per 1000 reads of the block.
  Volts read_disturb_per_kread{0.02};
  // Mean retention loss of a programmed cell after 1000 hours at
  // 1000 P/E cycles of wear.
  Volts retention_loss_1khr{0.04};
  // Spread of the loss relative to its mean (cell-to-cell variation
  // of the trapped-charge population).
  double retention_rel_sigma = 0.45;
  // Wear acceleration: loss scales with (cycles/1e3)^wear_exponent.
  double wear_exponent = 0.3;
  // Sub-linear time dependence (log-like detrapping transient).
  double time_exponent = 0.4;
};

class DisturbModel {
 public:
  explicit DisturbModel(const DisturbConfig& config);

  const DisturbConfig& config() const { return config_; }

  // Mean upward shift of erased cells after `reads` block reads.
  Volts read_disturb_shift(unsigned long long reads) const;

  // Mean / sigma of the downward retention shift after `hours` at a
  // given wear state.
  Volts retention_mean(double hours, double pe_cycles) const;
  Volts retention_sigma(double hours, double pe_cycles) const;

 private:
  DisturbConfig config_;
};

}  // namespace xlf::nand
