#include "src/nand/disturb.hpp"

#include <cmath>

#include "src/util/expect.hpp"

namespace xlf::nand {

DisturbModel::DisturbModel(const DisturbConfig& config) : config_(config) {
  XLF_EXPECT(config_.read_disturb_per_kread.value() >= 0.0);
  XLF_EXPECT(config_.retention_loss_1khr.value() >= 0.0);
  XLF_EXPECT(config_.retention_rel_sigma >= 0.0);
  XLF_EXPECT(config_.wear_exponent >= 0.0);
  XLF_EXPECT(config_.time_exponent > 0.0);
}

Volts DisturbModel::read_disturb_shift(unsigned long long reads) const {
  return config_.read_disturb_per_kread * (static_cast<double>(reads) / 1e3);
}

Volts DisturbModel::retention_mean(double hours, double pe_cycles) const {
  XLF_EXPECT(hours >= 0.0);
  XLF_EXPECT(pe_cycles >= 0.0);
  const double time_factor = std::pow(hours / 1e3, config_.time_exponent);
  const double wear_factor =
      std::pow(std::max(pe_cycles, 1.0) / 1e3, config_.wear_exponent);
  return config_.retention_loss_1khr * time_factor * wear_factor;
}

Volts DisturbModel::retention_sigma(double hours, double pe_cycles) const {
  return retention_mean(hours, pe_cycles) * config_.retention_rel_sigma;
}

}  // namespace xlf::nand
