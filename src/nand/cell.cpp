#include "src/nand/cell.hpp"

#include <cmath>

namespace xlf::nand {

Volts FloatingGateCell::expected_step(Volts vcg) const {
  const double overdrive = vcg.value() - vth_.value() - params_.k_onset.value();
  const double s = params_.onset_sharpness.value();
  // softplus(overdrive) with overflow care: for large positive
  // arguments it is the argument itself.
  const double x = overdrive / s;
  double step;
  if (x > 30.0) {
    step = overdrive;
  } else {
    step = s * std::log1p(std::exp(x));
  }
  return Volts{step};
}

void FloatingGateCell::apply_pulse(Volts vcg, Rng& rng, Volts bitline_bias) {
  const Volts effective_vcg = vcg - bitline_bias;
  const double step = expected_step(effective_vcg).value();
  if (step <= 1e-9) return;  // below onset: nothing tunnels
  // Shot noise grows with the square root of the transferred charge.
  const double sigma =
      params_.injection_sigma.value() * std::sqrt(std::max(step, 0.0));
  vth_ = vth_ + Volts{step + rng.gaussian(0.0, sigma)};
}

}  // namespace xlf::nand
