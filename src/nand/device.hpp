// NAND device facade: the component the memory controller talks to.
//
// Wraps the bit-true array with the command-level behaviours the
// paper's cross-layer knob needs:
//  * runtime-selectable program algorithm (Section 5) — the embedded
//    microcontroller executes whichever ISPP variant the code store
//    holds; switching is a register write, not a silicon change;
//  * the code-store model of Section 6.4 — algorithms live in an
//    on-die code ROM (or an SRAM written by the controller), and the
//    cost of selectability is a small capacity increase;
//  * per-operation timing from the NandTiming characterisation.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "src/nand/array.hpp"
#include "src/nand/data_plane.hpp"
#include "src/nand/oob.hpp"
#include "src/nand/timing.hpp"

namespace xlf::nand {

// Section 6.4: where the programming microcode lives.
enum class AlgorithmStore {
  kCodeRom,  // hardwired at fabrication, possibly multi-algorithm
  kSram,     // uploaded by the memory controller at runtime
};

struct DeviceConfig {
  ArrayConfig array;
  TimingConfig timing;
  AlgorithmStore store = AlgorithmStore::kCodeRom;
  // Algorithms resident in the code store.
  std::vector<ProgramAlgorithm> available_algorithms{
      ProgramAlgorithm::kIsppSv, ProgramAlgorithm::kIsppDv};
  // Microcode footprint model (Section 6.4).
  std::size_t base_microcode_bytes = 24 * 1024;
  std::size_t bytes_per_algorithm = 2 * 1024;
  // Default array programming fidelity.
  ProgramMode program_mode = ProgramMode::kStatistical;
  // Instantiate the bit-true cell array (true, the default) or run
  // metadata-only (false): no cells exist, programs and erases update
  // only the durable metadata plane and the device-level wear /
  // programmed-page trackers, and service times come from the same
  // NandTiming models the statistical mode uses. Metadata-only
  // devices make production block counts (64k+ blocks/die) cheap to
  // construct and simulate; reads then carry no payload, so drivers
  // must not verify data.
  bool data_plane = true;
};

struct ReadOutcome {
  BitVec data;
  Seconds busy_time{0.0};
};

struct ProgramOutcome {
  bool ok = true;
  Seconds busy_time{0.0};
  unsigned over_programmed_cells = 0;
};

struct EraseOutcome {
  Seconds busy_time{0.0};
};

class NandDevice {
 public:
  explicit NandDevice(const DeviceConfig& config);

  const DeviceConfig& config() const { return config_; }
  const Geometry& geometry() const { return config_.array.geometry; }
  // The cell array; only exists on data-plane devices.
  NandArray& array();
  const NandArray& array() const;
  const NandTiming& timing() const { return timing_; }

  // Defer cell-array mutations (programs, erases, wear jumps) into
  // `queue` instead of running them inline; nullptr detaches. While
  // attached, wear reads come from the device's synchronously
  // maintained shadow and reads drain the queue first, so results are
  // byte-identical to undeferred execution (see data_plane.hpp for
  // the ordering contract). Statistical-mode data-plane devices only:
  // ISPP-trace timing needs the cells at program time.
  void attach_data_plane(DataPlaneQueue* queue);

  // --- the cross-layer knob -----------------------------------------
  // Selects the ISPP variant for subsequent programs. Rejects
  // algorithms not resident in the code store.
  void select_program_algorithm(ProgramAlgorithm algo);
  ProgramAlgorithm program_algorithm() const { return active_algorithm_; }
  // SRAM store only: upload a new algorithm image at runtime.
  void upload_algorithm(ProgramAlgorithm algo);

  // --- command set ---------------------------------------------------
  ReadOutcome read_page(PageAddress addr) const;
  ProgramOutcome program_page(PageAddress addr, const BitVec& data,
                              LoadStrategy strategy = LoadStrategy::kFullSequence);
  EraseOutcome erase_block(std::uint32_t block);

  // --- durable metadata (spare area + system block) -------------------
  // Spare-area write of the page's OOB record; modelled as the tail
  // of the page's program operation (no extra time — the spare bytes
  // ride the same ISPP pass). The page must not already carry a
  // record and the block must not be retired.
  void write_oob(PageAddress addr, const OobRecord& record);
  // The page's surviving record; nullopt for erased pages and for
  // torn programs (data committed, crash before the OOB step).
  const std::optional<OobRecord>& oob(PageAddress addr) const;
  // Grown-bad bookkeeping: a block whose erase failed is retired into
  // the durable bad-block table and never touched again.
  void mark_bad(std::uint32_t block);
  bool is_bad(std::uint32_t block) const;
  // Durable per-block erase counter (survives remount, unlike the
  // FTL allocator's DRAM copy, which is rebuilt from this).
  std::uint32_t erase_count(std::uint32_t block) const;
  // Whether the page has been programmed since its block's last erase
  // (tracked at device level, so it answers in metadata-only and
  // deferred modes too — the FTL's rebuild frontier scan reads this).
  bool page_programmed(PageAddress addr) const;

  // --- wear / lifetime -------------------------------------------------
  // Device-level wear, kept in lockstep with the array's own counter
  // (and authoritative when the array is deferred or absent).
  double wear(std::uint32_t block) const;
  void set_wear(std::uint32_t block, double cycles);
  // Convenience: age every block (uniform wear-levelled device).
  void set_uniform_wear(double cycles);

  // --- Section 6.4 accounting -----------------------------------------
  std::size_t code_store_bytes() const;
  std::size_t algorithms_resident() const { return resident_.size(); }

 private:
  std::size_t page_index(PageAddress addr) const;

  DeviceConfig config_;
  // nullptr on metadata-only devices (constructing the array samples
  // every cell of every block — exactly the cost that mode avoids).
  std::unique_ptr<NandArray> array_;
  NandTiming timing_;
  std::vector<ProgramAlgorithm> resident_;
  ProgramAlgorithm active_algorithm_ = ProgramAlgorithm::kIsppSv;
  // Durable metadata plane: per-page spare records, per-block erase
  // counters and the grown-bad table.
  std::vector<std::optional<OobRecord>> oob_;
  std::vector<std::uint32_t> erase_counts_;
  std::vector<char> bad_;
  // Device-level mirrors of array state, valid in every mode: wear_
  // answers wear() while cell work is deferred (or absent), and
  // programmed_ answers page_programmed().
  std::vector<double> wear_;
  std::vector<char> programmed_;
  DataPlaneQueue* deferred_ = nullptr;
};

}  // namespace xlf::nand
