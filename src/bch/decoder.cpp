#include "src/bch/decoder.hpp"

#include <algorithm>
#include <bit>

#include "src/util/expect.hpp"

namespace xlf::bch {

Decoder::Decoder(const gf::Gf2m& field, CodeParams params)
    : field_(&field), params_(params) {
  XLF_EXPECT(params_.valid());
  XLF_EXPECT(field.m() == params_.m);
}

std::vector<gf::Element> Decoder::syndromes(const BitVec& received) const {
  XLF_EXPECT(received.size() == params_.n());
  const unsigned t2 = 2 * params_.t;
  std::vector<gf::Element> out(t2, 0);
  // Odd syndromes word at a time: with x = alpha^j,
  //   S_j = sum_w x^(64w) * val_w,   val_w = sum_{b set in word w} x^b,
  // so each word costs one table-driven val lookup chain (one XOR per
  // set bit) plus two field multiplies, and zero words cost only the
  // base-power advance. Even syndromes come free via S_2j = S_j^2.
  const std::vector<std::uint64_t>& words = received.words();
  std::vector<gf::Element> bit_powers(64);
  for (unsigned j = 1; j <= t2; j += 2) {
    for (std::size_t b = 0; b < 64; ++b) {
      bit_powers[b] = field_->alpha_pow(static_cast<long long>(j) * b);
    }
    const gf::Element word_step =
        field_->alpha_pow(static_cast<long long>(j) * 64);
    gf::Element acc = 0;
    gf::Element base = 1;
    for (std::size_t w = 0; w < words.size(); ++w) {
      std::uint64_t word = words[w];
      if (word != 0) {
        gf::Element val = 0;
        do {
          val ^= bit_powers[static_cast<std::size_t>(
              std::countr_zero(word))];
          word &= word - 1;
        } while (word != 0);
        acc ^= field_->mul(base, val);
      }
      base = field_->mul(base, word_step);
    }
    out[j - 1] = acc;
  }
  for (unsigned j = 2; j <= t2; j += 2) {
    const gf::Element half = out[j / 2 - 1];
    out[j - 1] = field_->mul(half, half);
  }
  return out;
}

std::vector<gf::Element> Decoder::syndromes_bitwise(
    const BitVec& received) const {
  XLF_EXPECT(received.size() == params_.n());
  const unsigned t2 = 2 * params_.t;
  std::vector<gf::Element> out(t2, 0);
  // Odd syndromes by per-bit Horner evaluation; even ones via
  // S_2j = S_j^2 (r(x)^2 = r(x^2) over GF(2)).
  for (unsigned j = 1; j <= t2; j += 2) {
    const gf::Element x = field_->alpha_pow(j);
    gf::Element acc = 0;
    for (std::size_t i = received.size(); i-- > 0;) {
      acc = field_->mul(acc, x);
      if (received.get(i)) acc ^= 1u;
    }
    out[j - 1] = acc;
  }
  for (unsigned j = 2; j <= t2; j += 2) {
    const gf::Element half = out[j / 2 - 1];
    out[j - 1] = field_->mul(half, half);
  }
  return out;
}

std::vector<gf::Element> Decoder::syndromes_from_errors(
    const std::vector<std::size_t>& error_positions) const {
  const unsigned t2 = 2 * params_.t;
  std::vector<gf::Element> out(t2, 0);
  for (unsigned j = 1; j <= t2; j += 2) {
    gf::Element acc = 0;
    for (std::size_t pos : error_positions) {
      XLF_EXPECT(pos < params_.n());
      acc ^= field_->alpha_pow(static_cast<long long>(pos) * j);
    }
    out[j - 1] = acc;
  }
  for (unsigned j = 2; j <= t2; j += 2) {
    const gf::Element half = out[j / 2 - 1];
    out[j - 1] = field_->mul(half, half);
  }
  return out;
}

gf::GfpPoly Decoder::berlekamp_massey(
    const std::vector<gf::Element>& syndromes) const {
  XLF_EXPECT(syndromes.size() == 2 * params_.t);
  // Massey's iterative construction; S[i] = S_{i+1}.
  gf::GfpPoly lambda = gf::GfpPoly::one();
  gf::GfpPoly prev = gf::GfpPoly::one();  // B(x)
  unsigned length = 0;                    // L, current register length
  unsigned gap = 1;                       // m, steps since last update
  gf::Element prev_discrepancy = 1;       // b

  for (unsigned step = 0; step < syndromes.size(); ++step) {
    // Discrepancy d = S_step+1 + sum_{i=1..L} lambda_i S_{step+1-i}.
    gf::Element d = syndromes[step];
    for (unsigned i = 1; i <= length; ++i) {
      if (i > step) break;
      d ^= field_->mul(lambda.coeff(i), syndromes[step - i]);
    }
    if (d == 0) {
      ++gap;
      continue;
    }
    const gf::Element factor = field_->div(d, prev_discrepancy);
    const gf::GfpPoly correction = prev.scale(*field_, factor).shifted(gap);
    if (2 * length <= step) {
      gf::GfpPoly old_lambda = lambda;
      lambda = lambda.add(*field_, correction);
      prev = std::move(old_lambda);
      prev_discrepancy = d;
      length = step + 1 - length;
      gap = 1;
    } else {
      lambda = lambda.add(*field_, correction);
      ++gap;
    }
  }
  return lambda;
}

std::vector<std::uint32_t> Decoder::chien_search(
    const gf::GfpPoly& lambda) const {
  const long long degree = lambda.degree();
  XLF_EXPECT(degree >= 0);
  std::vector<std::uint32_t> roots;
  if (degree == 0) return roots;

  // Incremental evaluation at alpha^-i for i = 0..n-1: keep the terms
  // lambda_j alpha^(-ij) and multiply term j by alpha^-j per step —
  // exactly the hardware's bank of constant Galois multipliers.
  const auto deg = static_cast<std::size_t>(degree);
  std::vector<gf::Element> terms(deg + 1);
  std::vector<gf::Element> steps(deg + 1);
  for (std::size_t j = 0; j <= deg; ++j) {
    terms[j] = lambda.coeff(j);
    steps[j] = field_->alpha_pow(-static_cast<long long>(j));
  }
  const std::uint32_t n = params_.n();
  for (std::uint32_t i = 0; i < n; ++i) {
    gf::Element sum = 0;
    for (std::size_t j = 0; j <= deg; ++j) sum ^= terms[j];
    if (sum == 0) {
      // Bounded by deg <= t error locations per codeword.
      roots.push_back(i);  // xlf-lint: allow(hot-alloc)
      if (roots.size() == deg) break;  // all error locations found
    }
    for (std::size_t j = 1; j <= deg; ++j) {
      terms[j] = field_->mul(terms[j], steps[j]);
    }
  }
  return roots;
}

DecodeResult Decoder::run_pipeline(
    BitVec& received, const std::vector<gf::Element>& syndromes) const {
  DecodeResult result;
  const bool clean = std::all_of(syndromes.begin(), syndromes.end(),
                                 [](gf::Element s) { return s == 0; });
  if (clean) {
    result.status = DecodeStatus::kClean;
    return result;
  }

  const gf::GfpPoly lambda = berlekamp_massey(syndromes);
  const long long degree = lambda.degree();
  if (degree <= 0 || degree > static_cast<long long>(params_.t)) {
    result.status = DecodeStatus::kUncorrectable;
    return result;
  }

  auto roots = chien_search(lambda);
  if (roots.size() != static_cast<std::size_t>(degree)) {
    // Locator roots fell outside the shortened range or were repeated:
    // more than t errors, detected.
    result.status = DecodeStatus::kUncorrectable;
    return result;
  }

  for (std::uint32_t pos : roots) received.flip(pos);
  result.status = DecodeStatus::kCorrected;
  result.corrected = static_cast<unsigned>(roots.size());
  result.positions = std::move(roots);
  return result;
}

DecodeResult Decoder::decode(BitVec& received) const {
  return run_pipeline(received, syndromes(received));
}

DecodeResult Decoder::decode_with_reference(BitVec& received,
                                            const BitVec& reference) const {
  XLF_EXPECT(received.size() == params_.n());
  XLF_EXPECT(reference.size() == params_.n());
  BitVec error = received;
  error ^= reference;
  return run_pipeline(received, syndromes_from_errors(error.set_positions()));
}

}  // namespace xlf::bch
