// The adaptive BCH codec: a single object whose correction capability
// t is switched at runtime through a dedicated port, mirroring the
// paper's adaptable ECC block (Section 4).
//
// Encoders/decoders for each t are built lazily and cached (the
// hardware keeps per-t polynomial configurations in a small ROM; the
// software twin keeps constructed codecs). The field is shared.
#pragma once

#include <map>
#include <memory>

#include "src/bch/code_params.hpp"
#include "src/bch/decoder.hpp"
#include "src/bch/encoder.hpp"
#include "src/bch/generator.hpp"
#include "src/gf/gf2m.hpp"
#include "src/util/bitvec.hpp"

namespace xlf::bch {

struct AdaptiveCodecConfig {
  unsigned m = 16;
  std::uint32_t k = 32768;  // 4 KB page
  unsigned t_min = 3;       // paper Section 6.2: tMIN = 3
  unsigned t_max = 65;      // paper Section 6.2: tMAX = 65
  unsigned initial_t = 3;
};

class AdaptiveBchCodec {
 public:
  explicit AdaptiveBchCodec(const AdaptiveCodecConfig& config);

  const AdaptiveCodecConfig& config() const { return config_; }
  const gf::Gf2m& field() const { return field_; }

  // The adaptability port: clamps nothing, rejects out-of-range t.
  void set_correction_capability(unsigned t);
  unsigned correction_capability() const { return t_; }
  CodeParams current_params() const;

  BitVec encode(const BitVec& message);
  DecodeResult decode(BitVec& codeword);
  DecodeResult decode_with_reference(BitVec& codeword, const BitVec& reference);
  BitVec extract_message(const BitVec& codeword);

  // Number of distinct t configurations instantiated so far (ROM usage
  // proxy; exposed for the implementation-complexity experiment).
  std::size_t cached_configurations() const { return stages_.size(); }

 private:
  struct Stage {
    std::unique_ptr<Encoder> encoder;
    std::unique_ptr<Decoder> decoder;
  };
  Stage& stage_for(unsigned t);

  AdaptiveCodecConfig config_;
  gf::Gf2m field_;
  GeneratorCache generators_;
  unsigned t_;
  std::map<unsigned, Stage> stages_;
};

}  // namespace xlf::bch
