#include "src/bch/code_params.hpp"

#include <cmath>

#include "src/util/expect.hpp"
#include "src/util/logmath.hpp"

namespace xlf::bch {

bool CodeParams::valid() const {
  if (m < 3 || m > 16 || t == 0 || k == 0) return false;
  return static_cast<std::uint64_t>(k) + parity_bits() <=
         (1ull << m) - 1ull;
}

unsigned min_field_degree(std::uint32_t k, unsigned t) {
  XLF_EXPECT(k > 0 && t > 0);
  for (unsigned m = 3; m <= 16; ++m) {
    if (static_cast<std::uint64_t>(k) + static_cast<std::uint64_t>(m) * t <=
        (1ull << m) - 1ull) {
      return m;
    }
  }
  XLF_EXPECT(false && "message too long for any supported field");
  return 0;
}

double log_uber(double rber, std::uint32_t n, unsigned t) {
  XLF_EXPECT(rber > 0.0 && rber < 1.0);
  XLF_EXPECT(t + 1u <= n);
  const std::uint64_t errors = t + 1u;
  return log_binomial_pmf(n, errors, rber) - std::log(static_cast<double>(n));
}

double uber(double rber, std::uint32_t n, unsigned t) {
  return safe_exp(log_uber(rber, n, t));
}

double log_uber_tail(double rber, std::uint32_t n, unsigned t) {
  XLF_EXPECT(rber > 0.0 && rber < 1.0);
  XLF_EXPECT(t + 1u <= n);
  return log_binomial_tail_geq(n, t + 1u, rber) -
         std::log(static_cast<double>(n));
}

double uber_tail(double rber, std::uint32_t n, unsigned t) {
  return safe_exp(log_uber_tail(rber, n, t));
}

std::optional<unsigned> min_t_for_uber(double rber, double uber_target,
                                       std::uint32_t k, unsigned m,
                                       unsigned t_min, unsigned t_max) {
  XLF_EXPECT(uber_target > 0.0);
  XLF_EXPECT(t_min >= 1 && t_min <= t_max);
  const double log_target = std::log(uber_target);
  // Eq. (1) is a single-term approximation, only meaningful once the
  // correction capability clears the mean error count n*rber (below
  // the mean the term shrinks again although the code is drowning in
  // errors). Start the search there: any t below the mean cannot be a
  // sane operating point regardless of what the term evaluates to.
  const double mean_errors =
      rber * (static_cast<double>(k) + static_cast<double>(m) * t_min);
  const auto floor_t =
      std::max<double>(t_min, std::ceil(mean_errors));
  if (floor_t > static_cast<double>(t_max)) return std::nullopt;
  for (unsigned t = static_cast<unsigned>(floor_t); t <= t_max; ++t) {
    const CodeParams params{m, k, t};
    if (!params.valid()) break;  // parity no longer fits the field
    if (log_uber(rber, params.n(), t) <= log_target) return t;
  }
  return std::nullopt;
}

}  // namespace xlf::bch
