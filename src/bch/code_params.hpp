// BCH code parameterisation and the paper's reliability equation.
//
// A BCH[n, k] code over GF(2^m) correcting t errors protects a k-bit
// message with r = m*t parity bits, n = k + r, subject to
// k + r <= 2^m - 1 (the code is used shortened from length 2^m - 1).
// For the paper's 4 KB page (k = 32768) this forces m = 16.
//
// Eq. (1) of the paper maps the device raw bit error rate (RBER) to
// the post-correction uncorrectable bit error rate (UBER):
//
//   UBER = C(n, t+1) RBER^(t+1) (1-RBER)^(n-(t+1)) / n
//
// i.e. the probability of the first uncorrectable pattern (exactly
// t+1 errors), normalised per bit. An exact binomial tail
// (P[X >= t+1] / n) is provided alongside as a cross-check.
#pragma once

#include <cstdint>
#include <optional>

namespace xlf::bch {

struct CodeParams {
  unsigned m = 16;       // field degree, GF(2^m)
  std::uint32_t k = 32768;  // message length in bits (4 KB page)
  unsigned t = 3;        // correction capability
  // Architected parity width; 0 selects the nominal r = m*t. Textbook
  // codes over small fields have generators of degree < m*t (short
  // cyclotomic cosets) and set this to the true generator degree.
  std::uint32_t r_explicit = 0;

  // Parity bits r.
  std::uint32_t parity_bits() const { return r_explicit != 0 ? r_explicit : m * t; }
  // Codeword length n = k + r (shortened code).
  std::uint32_t n() const { return k + parity_bits(); }
  // Natural (unshortened) length 2^m - 1.
  std::uint32_t natural_length() const { return (1u << m) - 1; }
  // Number of positions removed by shortening.
  std::uint32_t shortening() const { return natural_length() - n(); }
  // Code rate k/n.
  double rate() const { return static_cast<double>(k) / n(); }

  // The construction inequality k + m*t <= 2^m - 1.
  bool valid() const;
};

// Smallest field degree m able to host a k-bit message with correction
// capability t.
unsigned min_field_degree(std::uint32_t k, unsigned t);

// ln UBER per Eq. (1); computed in log space (n ~ 3.4e4 overflows
// linear doubles). rber must lie in (0, 1).
double log_uber(double rber, std::uint32_t n, unsigned t);
// Eq. (1) in linear space (0 when below double underflow).
double uber(double rber, std::uint32_t n, unsigned t);

// Exact-tail variant: P[X >= t+1]/n for X ~ Binomial(n, rber). Always
// >= the single-term Eq. (1) value; the two agree closely when
// rber * n << t.
double log_uber_tail(double rber, std::uint32_t n, unsigned t);
double uber_tail(double rber, std::uint32_t n, unsigned t);

// Smallest t in [t_min, t_max] meeting `uber_target` at the given rber
// for a k-bit message over GF(2^m); nullopt when even t_max misses the
// target. Note n depends on t through the parity bits, which this
// search accounts for.
std::optional<unsigned> min_t_for_uber(double rber, double uber_target,
                                       std::uint32_t k, unsigned m,
                                       unsigned t_min, unsigned t_max);

}  // namespace xlf::bch
