// Systematic BCH encoder.
//
// The codeword is c(x) = m(x) x^r + p(x) with p(x) the remainder of
// m(x) x^r divided by the generator g(x); bits [0, r) of the codeword
// hold the parity (stored in the flash spare area), bits [r, n) hold
// the message. The software model mirrors the hardware's LFSR
// division. Two paths exist:
//  * a byte-at-a-time table method (the software twin of the paper's
//    parallel LFSR with parallelism p = 8), used when message and
//    generator are byte-aligned — always true for the production
//    GF(2^16) codes where deg g = 16 t;
//  * a generic bit-serial path for arbitrary k/r (textbook codes over
//    small fields used in tests and microbenches).
// An independent polynomial-arithmetic reference (`parity_reference`)
// backs both in tests.
#pragma once

#include <cstdint>
#include <vector>

#include "src/bch/code_params.hpp"
#include "src/gf/gf2_poly.hpp"
#include "src/util/bitvec.hpp"

namespace xlf::bch {

class Encoder {
 public:
  // `generator` is the generator for params.t; its degree must not
  // exceed the architected parity width params.parity_bits().
  Encoder(CodeParams params, const gf::Gf2Poly& generator);

  const CodeParams& params() const { return params_; }
  // True when the byte-table fast path is active.
  bool byte_accelerated() const { return byte_fast_; }

  // r parity bits for a k-bit message (LFSR division).
  BitVec parity(const BitVec& message) const;
  // Independent reference: explicit polynomial remainder via Gf2Poly.
  BitVec parity_reference(const BitVec& message) const;

  // Full systematic codeword of length n.
  BitVec encode(const BitVec& message) const;

  // Split a codeword back into its message part (bits [r, n)).
  BitVec extract_message(const BitVec& codeword) const;

 private:
  void build_byte_table();
  BitVec parity_bitserial(const BitVec& message) const;
  BitVec parity_bytewise(const BitVec& message) const;

  CodeParams params_;
  gf::Gf2Poly generator_;
  std::uint32_t w_ = 0;  // generator degree (LFSR register width)
  bool byte_fast_ = false;
  std::vector<std::uint64_t> gen_low_words_;  // g minus x^w, packed bits
  std::vector<std::uint8_t> gen_low_bytes_;   // same, byte view (fast path)
  // table_[v] = remainder update for feedback byte v, w/8 bytes each.
  std::vector<std::vector<std::uint8_t>> table_;
};

}  // namespace xlf::bch
