// Error-pattern generation for codec validation and Monte-Carlo UBER
// measurement: exactly-w patterns, iid bit flips at a given RBER, and
// burst errors (the paper notes flash errors are largely uncorrelated,
// which is why BCH suits them; bursts exercise the same decoder on the
// pattern it is *not* optimised for).
#pragma once

#include <cstddef>
#include <vector>

#include "src/util/bitvec.hpp"
#include "src/util/rng.hpp"

namespace xlf::bch {

// Flip exactly `count` distinct random positions; returns them sorted.
std::vector<std::size_t> inject_exact(BitVec& word, std::size_t count, Rng& rng);

// Flip each bit independently with probability rber; returns flipped
// positions sorted.
std::vector<std::size_t> inject_iid(BitVec& word, double rber, Rng& rng);

// Flip `length` consecutive bits starting at a random offset.
std::vector<std::size_t> inject_burst(BitVec& word, std::size_t length, Rng& rng);

}  // namespace xlf::bch
