#include "src/bch/error_injection.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "src/util/expect.hpp"

namespace xlf::bch {

std::vector<std::size_t> inject_exact(BitVec& word, std::size_t count, Rng& rng) {
  XLF_EXPECT(count <= word.size());
  std::set<std::size_t> positions;
  while (positions.size() < count) {
    positions.insert(static_cast<std::size_t>(rng.below(word.size())));
  }
  std::vector<std::size_t> out(positions.begin(), positions.end());
  for (std::size_t pos : out) word.flip(pos);
  return out;
}

std::vector<std::size_t> inject_iid(BitVec& word, double rber, Rng& rng) {
  XLF_EXPECT(rber >= 0.0 && rber <= 1.0);
  std::vector<std::size_t> out;
  if (rber == 0.0) return out;
  // Geometric skipping: draw the gap to the next flipped bit rather
  // than testing every bit — pages are 3.3e4 bits and RBER is ~1e-5,
  // so this saves four orders of magnitude of RNG draws.
  const double log1m_p = std::log1p(-rber);
  double position = 0.0;
  for (;;) {
    double u = rng.uniform();
    while (u <= 0.0) u = rng.uniform();
    position += std::floor(std::log(u) / log1m_p);
    if (position >= static_cast<double>(word.size())) break;
    const auto idx = static_cast<std::size_t>(position);
    word.flip(idx);
    out.push_back(idx);
    position += 1.0;
  }
  return out;
}

std::vector<std::size_t> inject_burst(BitVec& word, std::size_t length, Rng& rng) {
  XLF_EXPECT(length >= 1 && length <= word.size());
  const std::size_t start =
      static_cast<std::size_t>(rng.below(word.size() - length + 1));
  std::vector<std::size_t> out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    word.flip(start + i);
    out.push_back(start + i);
  }
  return out;
}

}  // namespace xlf::bch
