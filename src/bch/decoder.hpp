// BCH decoder: syndrome computation, inversionless-capable
// Berlekamp-Massey, and Chien search — the three stages of the
// paper's Fig. 2 pipeline.
//
// Three syndrome paths exist:
//  * `syndromes(received)` — the honest path: evaluate the received
//    polynomial at alpha^1..alpha^(2t) (even syndromes come free via
//    the Frobenius identity S_2j = S_j^2), scanning the BitVec a
//    64-bit word at a time against a per-syndrome table of
//    alpha^(j*b) powers and skipping zero words entirely.
//  * `syndromes_bitwise(received)` — the textbook per-bit Horner
//    evaluation the word kernel is verified against (and the baseline
//    bench_codec_micro measures the speedup over).
//  * `syndromes_from_errors(positions)` — simulation fast path: when
//    the simulator knows the transmitted codeword, the syndrome of
//    the received word equals the syndrome of the (sparse) error
//    pattern by linearity. Mathematically identical; tests assert so.
#pragma once

#include <cstdint>
#include <vector>

#include "src/bch/code_params.hpp"
#include "src/gf/gf2m.hpp"
#include "src/gf/gfp_poly.hpp"
#include "src/util/bitvec.hpp"

namespace xlf::bch {

enum class DecodeStatus {
  kClean,          // all syndromes zero, nothing to do
  kCorrected,      // <= t errors located and flipped
  kUncorrectable,  // error locator inconsistent: > t errors detected
};

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kClean;
  // Number of bits flipped by the corrector.
  unsigned corrected = 0;
  // Positions flipped (codeword bit indices), ascending.
  std::vector<std::uint32_t> positions;

  bool ok() const { return status != DecodeStatus::kUncorrectable; }
};

class Decoder {
 public:
  Decoder(const gf::Gf2m& field, CodeParams params);

  const CodeParams& params() const { return params_; }

  // S_1..S_2t of the received word (index 0 holds S_1).
  std::vector<gf::Element> syndromes(const BitVec& received) const;
  // Reference per-bit Horner evaluation; bit-identical to syndromes().
  std::vector<gf::Element> syndromes_bitwise(const BitVec& received) const;
  // Same, from the sparse error-position list.
  std::vector<gf::Element> syndromes_from_errors(
      const std::vector<std::size_t>& error_positions) const;

  // Berlekamp-Massey: error-locator polynomial lambda(x) with
  // lambda(0) = 1, deg <= t on success. A degree above t already
  // signals an uncorrectable pattern.
  gf::GfpPoly berlekamp_massey(const std::vector<gf::Element>& syndromes) const;

  // Chien search over the shortened positions [0, n): returns the bit
  // indices i where lambda(alpha^-i) = 0.
  std::vector<std::uint32_t> chien_search(const gf::GfpPoly& lambda) const;

  // Full pipeline; corrects `received` in place.
  DecodeResult decode(BitVec& received) const;
  // Full pipeline with the simulation fast path (see file comment).
  DecodeResult decode_with_reference(BitVec& received,
                                     const BitVec& reference) const;

 private:
  DecodeResult run_pipeline(BitVec& received,
                            const std::vector<gf::Element>& syndromes) const;

  const gf::Gf2m* field_;
  CodeParams params_;
};

}  // namespace xlf::bch
