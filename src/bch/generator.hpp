// BCH generator polynomial construction.
//
// g(x) = lcm of the minimal polynomials of alpha, alpha^2, ...,
// alpha^(2t). Conjugate exponents (cosets under doubling) share a
// minimal polynomial, so the LCM is the product over distinct cosets —
// in practice the cosets led by odd exponents 1, 3, ..., 2t-1.
//
// The adaptive codec needs one generator per correction capability;
// GeneratorCache builds them lazily and also exposes the psi_i
// factors the hardware syndrome block divides by (Fig. 2).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/gf/gf2_poly.hpp"
#include "src/gf/gf2m.hpp"

namespace xlf::bch {

// Generator polynomial for correction capability t over `field`.
// Degree equals m*t whenever all 2t cosets are full-size (true for
// the parameter ranges used here); this is verified.
gf::Gf2Poly generator_polynomial(const gf::Gf2m& field, unsigned t);

// The distinct minimal polynomials psi_i(x) whose product is g(x),
// keyed by coset-leader exponent; the hardware decoder instantiates
// one syndrome LFSR per psi_i.
std::vector<gf::Gf2Poly> generator_factors(const gf::Gf2m& field, unsigned t);

class GeneratorCache {
 public:
  explicit GeneratorCache(const gf::Gf2m& field) : field_(&field) {}

  const gf::Gf2Poly& get(unsigned t);

 private:
  const gf::Gf2m* field_;
  std::map<unsigned, gf::Gf2Poly> cache_;
};

}  // namespace xlf::bch
