#include "src/bch/codec.hpp"

#include "src/util/expect.hpp"

namespace xlf::bch {

AdaptiveBchCodec::AdaptiveBchCodec(const AdaptiveCodecConfig& config)
    : config_(config),
      field_(config.m),
      generators_(field_),
      t_(config.initial_t) {
  XLF_EXPECT(config.t_min >= 1 && config.t_min <= config.t_max);
  XLF_EXPECT(config.initial_t >= config.t_min &&
             config.initial_t <= config.t_max);
  const CodeParams worst{config.m, config.k, config.t_max};
  XLF_EXPECT(worst.valid());
}

void AdaptiveBchCodec::set_correction_capability(unsigned t) {
  XLF_EXPECT(t >= config_.t_min && t <= config_.t_max);
  t_ = t;
}

CodeParams AdaptiveBchCodec::current_params() const {
  return CodeParams{config_.m, config_.k, t_};
}

// xlf: cold — stage-cache fill: the encoder/decoder pair for each
// correction strength t is built once on first use (warm-up) and
// reused for every later page.
AdaptiveBchCodec::Stage& AdaptiveBchCodec::stage_for(unsigned t) {
  auto it = stages_.find(t);
  if (it == stages_.end()) {
    const CodeParams params{config_.m, config_.k, t};
    Stage stage;
    stage.encoder = std::make_unique<Encoder>(params, generators_.get(t));
    stage.decoder = std::make_unique<Decoder>(field_, params);
    it = stages_.emplace(t, std::move(stage)).first;
  }
  return it->second;
}

BitVec AdaptiveBchCodec::encode(const BitVec& message) {
  return stage_for(t_).encoder->encode(message);
}

DecodeResult AdaptiveBchCodec::decode(BitVec& codeword) {
  return stage_for(t_).decoder->decode(codeword);
}

DecodeResult AdaptiveBchCodec::decode_with_reference(BitVec& codeword,
                                                     const BitVec& reference) {
  return stage_for(t_).decoder->decode_with_reference(codeword, reference);
}

BitVec AdaptiveBchCodec::extract_message(const BitVec& codeword) {
  return stage_for(t_).encoder->extract_message(codeword);
}

}  // namespace xlf::bch
