#include "src/bch/encoder.hpp"

#include <algorithm>

#include "src/util/expect.hpp"

namespace xlf::bch {
namespace {

// One bit of LFSR division over a byte register, MSB-first.
void lfsr_step_bytes(std::vector<std::uint8_t>& reg,
                     const std::vector<std::uint8_t>& gen_low, bool in_bit) {
  const std::size_t bytes = reg.size();
  const bool feedback = (((reg[bytes - 1] >> 7) & 1u) != 0) != in_bit;
  for (std::size_t i = bytes; i-- > 1;) {
    reg[i] = static_cast<std::uint8_t>((reg[i] << 1) | (reg[i - 1] >> 7));
  }
  reg[0] = static_cast<std::uint8_t>(reg[0] << 1);
  if (feedback) {
    for (std::size_t i = 0; i < bytes; ++i) reg[i] ^= gen_low[i];
  }
}

}  // namespace

Encoder::Encoder(CodeParams params, const gf::Gf2Poly& generator)
    : params_(params), generator_(generator) {
  XLF_EXPECT(params_.valid());
  XLF_EXPECT(generator.degree() >= 1);
  w_ = static_cast<std::uint32_t>(generator.degree());
  XLF_EXPECT(w_ <= params_.parity_bits());

  gen_low_words_.assign((w_ + 63) / 64, 0);
  for (std::uint32_t i = 0; i < w_; ++i) {
    if (generator.coeff(i)) gen_low_words_[i / 64] |= 1ull << (i % 64);
  }

  byte_fast_ =
      params_.k % 8 == 0 && w_ % 8 == 0 && w_ == params_.parity_bits();
  if (byte_fast_) {
    gen_low_bytes_.assign(w_ / 8, 0);
    for (std::uint32_t i = 0; i < w_; ++i) {
      if (generator.coeff(i)) {
        gen_low_bytes_[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
      }
    }
    build_byte_table();
  }
}

void Encoder::build_byte_table() {
  const std::size_t bytes = gen_low_bytes_.size();
  table_.assign(256, std::vector<std::uint8_t>(bytes, 0));
  for (unsigned v = 0; v < 256; ++v) {
    std::vector<std::uint8_t> reg(bytes, 0);
    reg[bytes - 1] = static_cast<std::uint8_t>(v);
    for (int bit = 0; bit < 8; ++bit) lfsr_step_bytes(reg, gen_low_bytes_, false);
    table_[v] = std::move(reg);
  }
}

BitVec Encoder::parity_bytewise(const BitVec& message) const {
  const std::size_t bytes = gen_low_bytes_.size();
  std::vector<std::uint8_t> reg(bytes, 0);
  // Message bytes MSB-first: the register's top byte XOR the incoming
  // byte is the feedback selecting the table row.
  for (std::size_t j = params_.k / 8; j-- > 0;) {
    const std::uint8_t feedback =
        static_cast<std::uint8_t>(reg[bytes - 1] ^ message.byte(j));
    for (std::size_t i = bytes; i-- > 1;) reg[i] = reg[i - 1];
    reg[0] = 0;
    const auto& update = table_[feedback];
    for (std::size_t i = 0; i < bytes; ++i) reg[i] ^= update[i];
  }
  BitVec out(params_.parity_bits());
  for (std::size_t i = 0; i < bytes; ++i) out.set_byte(i, reg[i]);
  return out;
}

BitVec Encoder::parity_bitserial(const BitVec& message) const {
  // Word-packed register of w bits; top bit sits at index w-1.
  std::vector<std::uint64_t> reg(gen_low_words_.size(), 0);
  const std::uint32_t top_word = (w_ - 1) / 64;
  const std::uint32_t top_bit = (w_ - 1) % 64;

  const auto step = [&](bool in_bit) {
    const bool feedback = (((reg[top_word] >> top_bit) & 1u) != 0) != in_bit;
    for (std::size_t i = reg.size(); i-- > 1;) {
      reg[i] = (reg[i] << 1) | (reg[i - 1] >> 63);
    }
    reg[0] <<= 1;
    if (feedback) {
      for (std::size_t i = 0; i < reg.size(); ++i) reg[i] ^= gen_low_words_[i];
    }
    // Bits above w-1 never influence the remainder; keep them clear.
    if (top_bit == 63) return;
    reg[top_word] &= (1ull << (top_bit + 1)) - 1;
  };

  for (std::size_t i = params_.k; i-- > 0;) step(message.get(i));
  // Architected parity width beyond deg g: multiply the remainder by
  // x^(r - w), i.e. feed trailing zeros.
  for (std::uint32_t i = 0; i < params_.parity_bits() - w_; ++i) step(false);

  BitVec out(params_.parity_bits());
  for (std::uint32_t i = 0; i < w_; ++i) {
    if ((reg[i / 64] >> (i % 64)) & 1u) out.set(i, true);
  }
  return out;
}

BitVec Encoder::parity(const BitVec& message) const {
  XLF_EXPECT(message.size() == params_.k);
  return byte_fast_ ? parity_bytewise(message) : parity_bitserial(message);
}

BitVec Encoder::parity_reference(const BitVec& message) const {
  XLF_EXPECT(message.size() == params_.k);
  // Explicit polynomial arithmetic: p(x) = m(x) x^r mod g(x).
  gf::Gf2Poly m;
  m.reserve_degree(params_.n());
  for (std::size_t i = 0; i < params_.k; ++i) {
    if (message.get(i)) m.set_coeff(i + params_.parity_bits(), true);
  }
  const gf::Gf2Poly rem = m % generator_;
  BitVec out(params_.parity_bits());
  for (std::uint32_t i = 0; i < params_.parity_bits(); ++i) {
    if (rem.coeff(i)) out.set(i, true);
  }
  return out;
}

BitVec Encoder::encode(const BitVec& message) const {
  BitVec codeword(params_.n());
  codeword.insert(0, parity(message));
  codeword.insert(params_.parity_bits(), message);
  return codeword;
}

BitVec Encoder::extract_message(const BitVec& codeword) const {
  XLF_EXPECT(codeword.size() == params_.n());
  return codeword.slice(params_.parity_bits(), params_.k);
}

}  // namespace xlf::bch
