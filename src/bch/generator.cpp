#include "src/bch/generator.hpp"

#include <set>

#include "src/gf/minpoly.hpp"
#include "src/util/expect.hpp"

namespace xlf::bch {

// xlf: cold — generator construction runs once per codec stage
// build (warm-up), never per page.
std::vector<gf::Gf2Poly> generator_factors(const gf::Gf2m& field, unsigned t) {
  XLF_EXPECT(t >= 1);
  XLF_EXPECT(2 * t < field.order());
  std::set<std::uint32_t> seen_leaders;
  std::vector<gf::Gf2Poly> factors;
  for (std::uint32_t i = 1; i <= 2 * t; ++i) {
    const auto coset = gf::cyclotomic_coset(field, i);
    const std::uint32_t leader = coset.front();
    if (seen_leaders.insert(leader).second) {
      factors.push_back(gf::minimal_polynomial(field, leader));
    }
  }
  return factors;
}

gf::Gf2Poly generator_polynomial(const gf::Gf2m& field, unsigned t) {
  gf::Gf2Poly g = gf::Gf2Poly::one();
  for (const auto& factor : generator_factors(field, t)) {
    g = g * factor;
  }
  // Designed distance requires alpha^1..alpha^(2t) to be roots.
  for (std::uint32_t i = 1; i <= 2 * t; ++i) {
    XLF_ENSURE(g.eval(field, field.alpha_pow(i)) == 0);
  }
  return g;
}

const gf::Gf2Poly& GeneratorCache::get(unsigned t) {
  auto it = cache_.find(t);
  if (it == cache_.end()) {
    it = cache_.emplace(t, generator_polynomial(*field_, t)).first;
  }
  return it->second;
}

}  // namespace xlf::bch
