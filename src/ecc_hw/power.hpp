// Activity-based power model of the adaptive codec.
//
// Dynamic power follows switching activity: only the 2t syndrome
// LFSRs enabled by the selected correction capability clock, the iBM
// machine runs t iterations, and the Chien bank's constant multipliers
// only toggle for the nonzero locator coefficients (deg lambda = actual
// error count), the rest being clock-gated. Energy is gate-equivalents
// x active cycles x a per-GE switching energy calibrated so that the
// paper's Section 6.3.2 anchors hold: ~7 mW decoding at t = 65 under
// end-of-life ISPP-SV error loads, relaxing to ~1 mW at the ISPP-DV
// end-of-life point (t = 14).
#pragma once

#include "src/ecc_hw/area.hpp"
#include "src/ecc_hw/latency.hpp"
#include "src/util/units.hpp"

namespace xlf::ecc_hw {

class PowerModel {
 public:
  explicit PowerModel(const EccHwConfig& config);

  // Switching energy per gate-equivalent per clock, 45 nm low-power
  // class; calibrated against the paper's 7 mW @ t=65 anchor.
  static constexpr double kJoulePerGeCycle = 2.3e-15;

  // Energy of one page encode (t fixes the LFSR span).
  Joules encode_energy(unsigned t) const;
  // Energy of one page decode at correction capability t with
  // `expected_errors` raised locator coefficients.
  Joules decode_energy(unsigned t, double expected_errors) const;

  // Average power while continuously decoding (the codec's duty in a
  // read-saturated workload): energy over decode latency.
  Watts decode_power(unsigned t, double expected_errors) const;
  Watts encode_power(unsigned t) const;

 private:
  EccHwConfig config_;
  LatencyModel latency_;
  AreaModel area_;
};

}  // namespace xlf::ecc_hw
