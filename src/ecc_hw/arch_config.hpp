// Microarchitecture parameters of the adaptive BCH codec hardware
// (Section 4 of the paper): a parallel programmable LFSR encoder, a
// syndrome block of 2*tmax parallel LFSRs, an iBM machine, and a
// Chien search with h parallel evaluators (t x h constant Galois
// multipliers). The codec runs at 80 MHz (Fig. 8 caption).
#pragma once

#include "src/bch/code_params.hpp"
#include "src/util/units.hpp"

namespace xlf::ecc_hw {

struct EccHwConfig {
  // Datapath parallelism of encoder and syndrome LFSRs (bits/cycle).
  unsigned lfsr_parallelism = 8;
  // Chien search parallelism (positions evaluated per cycle).
  unsigned chien_parallelism = 8;
  // Codec clock (paper Fig. 8: 80 MHz).
  Hertz clock = Hertz::megahertz(80.0);
  // Code family served by the hardware.
  unsigned m = 16;
  std::uint32_t k = 32768;
  unsigned t_min = 3;
  unsigned t_max = 65;
  // Fixed per-stage control/handshake overhead.
  unsigned stage_overhead_cycles = 4;

  bch::CodeParams code_at(unsigned t) const { return bch::CodeParams{m, k, t}; }
};

}  // namespace xlf::ecc_hw
