// Gate-count area model of the adaptive codec.
//
// Unlike latency and power, area is fixed by the *worst-case*
// configuration: the silicon instantiates 2*t_max syndrome LFSRs and
// t_max x h Chien multipliers whether or not the runtime t uses them
// (unused units are clock-gated — that is the power model's job).
// Counts are expressed in 2-input-NAND gate equivalents (GE) and
// converted to silicon area with a 45 nm standard-cell density.
#pragma once

#include "src/ecc_hw/arch_config.hpp"

namespace xlf::ecc_hw {

struct AreaBreakdown {
  double encoder_ge = 0.0;
  double syndrome_ge = 0.0;
  double berlekamp_massey_ge = 0.0;
  double chien_ge = 0.0;
  double control_ge = 0.0;
  double total_ge() const {
    return encoder_ge + syndrome_ge + berlekamp_massey_ge + chien_ge +
           control_ge;
  }
};

class AreaModel {
 public:
  explicit AreaModel(const EccHwConfig& config);

  // Gate-equivalent cost constants (45 nm class; documented defaults).
  static constexpr double kGePerFlipFlop = 4.0;
  static constexpr double kGePerXor2 = 2.0;
  static constexpr double kGePerMux2 = 1.5;
  // Standard-cell density at 45 nm, um^2 per GE.
  static constexpr double kUm2PerGe = 0.71;

  AreaBreakdown breakdown() const;
  // GE of one constant GF(2^m) multiplier (~m^2/2 XORs).
  double ge_per_constant_multiplier() const;
  double total_ge() const { return breakdown().total_ge(); }
  double area_mm2() const;

 private:
  EccHwConfig config_;
};

}  // namespace xlf::ecc_hw
