#include "src/ecc_hw/rom.hpp"

#include "src/util/expect.hpp"

namespace xlf::ecc_hw {

ConfigRom::ConfigRom(const EccHwConfig& config) : config_(config) {
  for (unsigned t = config_.t_min; t <= config_.t_max; ++t) {
    RomEntry entry;
    entry.t = t;
    entry.generator_config_bits = config_.m * t;
    entry.syndrome_enable_bits = 2 * config_.t_max;
    entry.chien_start_bits = config_.m;
    entries_.push_back(entry);
  }
}

const RomEntry& ConfigRom::entry(unsigned t) const {
  XLF_EXPECT(t >= config_.t_min && t <= config_.t_max);
  return entries_.at(t - config_.t_min);
}

std::uint64_t ConfigRom::total_bits() const {
  std::uint64_t bits = 0;
  for (const RomEntry& e : entries_) {
    bits += e.generator_config_bits + e.syndrome_enable_bits +
            e.chien_start_bits;
  }
  return bits;
}

double ConfigRom::total_kib() const {
  return static_cast<double>(total_bits()) / 8.0 / 1024.0;
}

std::uint32_t ConfigRom::chien_start_index(unsigned t) const {
  XLF_EXPECT(t >= config_.t_min && t <= config_.t_max);
  const auto params = config_.code_at(t);
  return params.natural_length() - params.n();
}

}  // namespace xlf::ecc_hw
