#include "src/ecc_hw/area.hpp"

#include "src/util/expect.hpp"

namespace xlf::ecc_hw {

AreaModel::AreaModel(const EccHwConfig& config) : config_(config) {
  XLF_EXPECT(config_.code_at(config_.t_max).valid());
}

double AreaModel::ge_per_constant_multiplier() const {
  // A constant GF(2^m) multiplier reduces to an XOR network of about
  // m^2/2 two-input XORs.
  const double m = config_.m;
  return (m * m / 2.0) * kGePerXor2;
}

AreaBreakdown AreaModel::breakdown() const {
  const double m = config_.m;
  const double t_max = config_.t_max;
  const double p = config_.lfsr_parallelism;
  const double h = config_.chien_parallelism;
  const double r_max = m * t_max;

  AreaBreakdown area;
  // Programmable parallel LFSR encoder: r_max flip-flops, plus per-bit
  // an XOR and the polynomial-select mux (the [28]-style programmable
  // feedback network), replicated p-fold for the parallel datapath.
  area.encoder_ge =
      r_max * kGePerFlipFlop + r_max * p * (kGePerXor2 + kGePerMux2);

  // Syndrome block: 2*t_max LFSRs of m bits each with p-parallel
  // feedback, plus the GF evaluation network per LFSR.
  area.syndrome_ge =
      2.0 * t_max *
      (m * kGePerFlipFlop + m * p * kGePerXor2 + ge_per_constant_multiplier());

  // iBM machine: ~3t+2 coefficient registers of m bits, two general
  // multipliers (~2x a constant one) and the update adders.
  area.berlekamp_massey_ge = (3.0 * t_max + 2.0) * m * kGePerFlipFlop +
                             2.0 * 2.0 * ge_per_constant_multiplier() +
                             (2.0 * t_max) * m * kGePerXor2;

  // Chien search: t_max x h constant multipliers plus t_max m-bit term
  // registers and the h summation trees.
  area.chien_ge = t_max * h * ge_per_constant_multiplier() +
                  t_max * m * kGePerFlipFlop +
                  h * t_max * m * kGePerXor2 / 2.0;

  // Control FSM, correction-capability port, handshake.
  area.control_ge = 2000.0;
  return area;
}

double AreaModel::area_mm2() const {
  return total_ge() * kUm2PerGe / 1e6;
}

}  // namespace xlf::ecc_hw
