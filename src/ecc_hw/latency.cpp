#include "src/ecc_hw/latency.hpp"

#include <cmath>

#include "src/util/expect.hpp"

namespace xlf::ecc_hw {
namespace {

unsigned long long ceil_div(unsigned long long a, unsigned long long b) {
  return (a + b - 1) / b;
}

}  // namespace

LatencyModel::LatencyModel(const EccHwConfig& config) : config_(config) {
  XLF_EXPECT(config_.lfsr_parallelism >= 1);
  XLF_EXPECT(config_.chien_parallelism >= 1);
  XLF_EXPECT(config_.clock.value() > 0.0);
  XLF_EXPECT(config_.t_min >= 1 && config_.t_min <= config_.t_max);
  XLF_EXPECT(config_.code_at(config_.t_max).valid());
}

void LatencyModel::check_t(unsigned t) const {
  XLF_EXPECT(t >= config_.t_min && t <= config_.t_max);
}

unsigned long long LatencyModel::encode_cycles() const {
  return ceil_div(config_.k, config_.lfsr_parallelism) +
         config_.stage_overhead_cycles;
}

unsigned long long LatencyModel::alignment_cycles(unsigned t) const {
  check_t(t);
  // When the r = m*t parity bits are not a multiple of the datapath
  // parallelism the decoder runs a preliminary alignment phase
  // (Section 4); one cycle per residual bit.
  return config_.code_at(t).parity_bits() % config_.lfsr_parallelism;
}

unsigned long long LatencyModel::syndrome_cycles(unsigned t) const {
  check_t(t);
  return ceil_div(config_.code_at(t).n(), config_.lfsr_parallelism) +
         alignment_cycles(t);
}

unsigned long long LatencyModel::berlekamp_massey_cycles(unsigned t) const {
  check_t(t);
  // t iterations; iteration i updates a locator of degree <= i on a
  // folded m-bit datapath: (t+1) cycles each.
  return static_cast<unsigned long long>(t) * (t + 1);
}

unsigned long long LatencyModel::chien_cycles(unsigned t) const {
  check_t(t);
  return ceil_div(config_.code_at(t).n(), config_.chien_parallelism);
}

unsigned long long LatencyModel::decode_cycles(unsigned t) const {
  return syndrome_cycles(t) + berlekamp_massey_cycles(t) + chien_cycles(t) +
         3ull * config_.stage_overhead_cycles;
}

unsigned long long LatencyModel::decode_cycles_clean(unsigned t) const {
  return syndrome_cycles(t) + config_.stage_overhead_cycles;
}

Seconds LatencyModel::encode_latency() const {
  return config_.clock.period() * static_cast<double>(encode_cycles());
}

Seconds LatencyModel::decode_latency(unsigned t) const {
  return config_.clock.period() * static_cast<double>(decode_cycles(t));
}

Seconds LatencyModel::decode_latency_clean(unsigned t) const {
  return config_.clock.period() * static_cast<double>(decode_cycles_clean(t));
}

Seconds LatencyModel::expected_decode_latency(unsigned t, double rber) const {
  check_t(t);
  XLF_EXPECT(rber >= 0.0 && rber < 1.0);
  const double n = static_cast<double>(config_.code_at(t).n());
  const double p_clean = std::exp(n * std::log1p(-rber));
  const Seconds clean = decode_latency_clean(t);
  const Seconds dirty = decode_latency(t);
  return clean * p_clean + dirty * (1.0 - p_clean);
}

}  // namespace xlf::ecc_hw
