// Cycle-accurate latency model of the adaptive codec (paper Fig. 8).
//
// Encoding: the parallel LFSR consumes the k-bit message p bits per
// cycle — ceil(k/p) cycles regardless of t (the paper stresses that
// encoding latency is *not* influenced by the correction capability).
//
// Decoding (Fig. 2 pipeline):
//  * Syndrome: 2t parallel LFSRs stream the n(t)-bit codeword p bits
//    per cycle, plus an alignment phase when the parity width does not
//    fit the datapath parallelism.
//  * Berlekamp-Massey: t iterations on a folded datapath whose work
//    per iteration grows with the running locator degree — t(t+1)
//    cycles in total.
//  * Chien: n(t)/h cycles with h positions evaluated in parallel.
//
// With p = h = 8 at 80 MHz this lands on the paper's envelope:
// encode ~51 us flat; decode ~103 us (t=3) to ~159 us (t=65), matching
// the 40-160 us plot and the "150 us decode vs 75 us page read" text.
#pragma once

#include "src/ecc_hw/arch_config.hpp"
#include "src/util/units.hpp"

namespace xlf::ecc_hw {

class LatencyModel {
 public:
  explicit LatencyModel(const EccHwConfig& config);

  const EccHwConfig& config() const { return config_; }

  // --- cycle counts -----------------------------------------------
  unsigned long long encode_cycles() const;
  unsigned long long syndrome_cycles(unsigned t) const;
  unsigned long long alignment_cycles(unsigned t) const;
  unsigned long long berlekamp_massey_cycles(unsigned t) const;
  unsigned long long chien_cycles(unsigned t) const;
  // Full decode: syndrome + iBM + Chien + per-stage overhead. This is
  // the worst-case (errors present) latency the paper's figures use.
  unsigned long long decode_cycles(unsigned t) const;
  // Clean-page fast path: syndromes all zero ends decoding early.
  unsigned long long decode_cycles_clean(unsigned t) const;

  // --- wall-clock -------------------------------------------------
  Seconds encode_latency() const;
  Seconds decode_latency(unsigned t) const;
  Seconds decode_latency_clean(unsigned t) const;
  // Expected decode latency at a given raw bit error rate: clean pages
  // (probability (1-rber)^n) skip iBM and Chien. An extension beyond
  // the paper, which dimensions for the worst case.
  Seconds expected_decode_latency(unsigned t, double rber) const;

 private:
  void check_t(unsigned t) const;
  EccHwConfig config_;
};

}  // namespace xlf::ecc_hw
