// Configuration ROM of the adaptive decoder (Section 4).
//
// For every supported correction capability the hardware stores:
//  * the generator-polynomial mux configuration for the programmable
//    encoder LFSR (r = m*t bits),
//  * the psi_i selection masks enabling 2t of the 2*t_max syndrome
//    LFSRs,
//  * the GF(2^m) element from which the Chien search must initiate
//    (the shortened code skips the unused positions).
// This model accounts those bits — the "small ROM" whose growth is
// the main implementation cost of adaptivity (Section 6.4).
#pragma once

#include <cstdint>
#include <vector>

#include "src/ecc_hw/arch_config.hpp"

namespace xlf::ecc_hw {

struct RomEntry {
  unsigned t = 0;
  std::uint32_t generator_config_bits = 0;  // r bits of LFSR muxing
  std::uint32_t syndrome_enable_bits = 0;   // 2*t_max enable mask width
  std::uint32_t chien_start_bits = 0;       // one field element
};

class ConfigRom {
 public:
  explicit ConfigRom(const EccHwConfig& config);

  const std::vector<RomEntry>& entries() const { return entries_; }
  // Entry lookup; throws for unsupported t.
  const RomEntry& entry(unsigned t) const;

  // Total storage in bits / bytes.
  std::uint64_t total_bits() const;
  double total_kib() const;

  // Chien start index for capability t: the first position of the
  // full-length code that maps into the shortened codeword, i.e.
  // 2^m - 1 - n(t) positions are skipped.
  std::uint32_t chien_start_index(unsigned t) const;

 private:
  EccHwConfig config_;
  std::vector<RomEntry> entries_;
};

}  // namespace xlf::ecc_hw
