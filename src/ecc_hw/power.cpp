#include "src/ecc_hw/power.hpp"

#include <algorithm>

#include "src/util/expect.hpp"

namespace xlf::ecc_hw {

PowerModel::PowerModel(const EccHwConfig& config)
    : config_(config), latency_(config), area_(config) {}

Joules PowerModel::encode_energy(unsigned t) const {
  XLF_EXPECT(t >= config_.t_min && t <= config_.t_max);
  // Active encoder slice: r = m*t of the r_max register bits switch.
  const double m = config_.m;
  const double p = config_.lfsr_parallelism;
  const double active_ge =
      m * t * AreaModel::kGePerFlipFlop + m * t * p * AreaModel::kGePerXor2;
  const double ge_cycles =
      active_ge * static_cast<double>(latency_.encode_cycles());
  return Joules{ge_cycles * kJoulePerGeCycle};
}

Joules PowerModel::decode_energy(unsigned t, double expected_errors) const {
  XLF_EXPECT(t >= config_.t_min && t <= config_.t_max);
  XLF_EXPECT(expected_errors >= 0.0);
  const double m = config_.m;
  const double p = config_.lfsr_parallelism;
  const double h = config_.chien_parallelism;
  const double mult_ge = area_.ge_per_constant_multiplier();
  // Locator coefficients that actually toggle in the Chien bank: the
  // locator degree equals the number of errors, capped at t.
  const double active_terms = std::min<double>(expected_errors, t);

  // Syndrome: 2t enabled LFSRs (m FFs + p-parallel XOR net + GF
  // evaluation) for the full streaming phase.
  const double syn_ge =
      2.0 * t * (m * AreaModel::kGePerFlipFlop + m * p * AreaModel::kGePerXor2);
  const double syn =
      syn_ge * static_cast<double>(latency_.syndrome_cycles(t));

  // iBM: datapath width tracks t.
  const double bm_ge = (3.0 * t + 2.0) * m * AreaModel::kGePerFlipFlop / 4.0 +
                       4.0 * mult_ge;
  const double bm =
      bm_ge * static_cast<double>(latency_.berlekamp_massey_cycles(t));

  // Chien: h multipliers per *active* locator term.
  const double chien_ge = active_terms * h * mult_ge;
  const double chien =
      chien_ge * static_cast<double>(latency_.chien_cycles(t));

  return Joules{(syn + bm + chien) * kJoulePerGeCycle};
}

Watts PowerModel::decode_power(unsigned t, double expected_errors) const {
  return decode_energy(t, expected_errors) / latency_.decode_latency(t);
}

Watts PowerModel::encode_power(unsigned t) const {
  return encode_energy(t) / latency_.encode_latency();
}

}  // namespace xlf::ecc_hw
