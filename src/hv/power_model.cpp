#include "src/hv/power_model.hpp"

namespace xlf::hv {

NandPowerModel::NandPowerModel(const HvConfig& hv,
                               const nand::NandTiming& timing)
    : subsystem_(hv), timing_(&timing) {}

Watts NandPowerModel::program_power(nand::ProgramAlgorithm algo,
                                    double pe_cycles,
                                    std::optional<nand::Level> pattern) const {
  const nand::IsppTrace& trace =
      timing_->sample_trace(algo, pe_cycles, pattern);
  return subsystem_.average_power(trace);
}

Joules NandPowerModel::program_energy(
    nand::ProgramAlgorithm algo, double pe_cycles,
    std::optional<nand::Level> pattern) const {
  const nand::IsppTrace& trace =
      timing_->sample_trace(algo, pe_cycles, pattern);
  return subsystem_.energy(trace).total();
}

Joules NandPowerModel::read_energy() const {
  return subsystem_.read_energy(timing_->read_time());
}

Watts NandPowerModel::dv_power_penalty(
    double pe_cycles, std::optional<nand::Level> pattern) const {
  return program_power(nand::ProgramAlgorithm::kIsppDv, pe_cycles, pattern) -
         program_power(nand::ProgramAlgorithm::kIsppSv, pe_cycles, pattern);
}

}  // namespace xlf::hv
