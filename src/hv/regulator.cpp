#include "src/hv/regulator.hpp"

#include "src/util/expect.hpp"

namespace xlf::hv {

Regulator::Regulator(const RegulatorConfig& config, Volts target)
    : config_(config), target_(target) {
  XLF_EXPECT(config_.vref.value() > 0.0);
  XLF_EXPECT(config_.hysteresis.value() >= 0.0);
  XLF_EXPECT(target.value() > 0.0);
}

void Regulator::set_target(Volts target) {
  XLF_EXPECT(target.value() > 0.0);
  target_ = target;
}

RegulatedStep Regulator::step(DicksonPump& pump, Seconds dt, Amperes load) {
  // Comparator with hysteresis: stop above target, restart below
  // target - hysteresis.
  const Volts sensed = pump.vout();
  if (enabled_ && sensed >= target_) {
    enabled_ = false;
  } else if (!enabled_ && sensed < target_ - config_.hysteresis) {
    enabled_ = true;
  }
  const PumpStep pump_step = pump.step(dt, enabled_, load);
  RegulatedStep out;
  out.vout = pump_step.vout;
  out.pump_enabled = enabled_;
  out.input_energy = pump_step.input_energy;
  return out;
}

RegulationSummary regulate_for(Regulator& regulator, DicksonPump& pump,
                               Seconds duration, unsigned steps,
                               Amperes load) {
  XLF_EXPECT(steps >= 1);
  const Seconds dt = duration / static_cast<double>(steps);
  RegulationSummary summary;
  double v_sum = 0.0;
  unsigned enabled_steps = 0;
  for (unsigned i = 0; i < steps; ++i) {
    const RegulatedStep s = regulator.step(pump, dt, load);
    summary.input_energy += s.input_energy;
    v_sum += s.vout.value();
    if (s.pump_enabled) ++enabled_steps;
  }
  summary.final_voltage = pump.vout();
  summary.mean_voltage = Volts{v_sum / steps};
  summary.duty_cycle = static_cast<double>(enabled_steps) / steps;
  return summary;
}

}  // namespace xlf::hv
