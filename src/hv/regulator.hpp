// Hysteretic regulation loop (paper Section 5.1, "Regulators and
// limiting systems"): a voltage divider feeds back the pump output to
// a comparator against a bandgap-style reference; the pump is shut
// down when the target is reached and restarted when the output
// droops below the restart threshold. This bang-bang control is "the
// only viable solution for an accurate control of the threshold
// voltages in an MLC NAND device".
#pragma once

#include "src/hv/charge_pump.hpp"
#include "src/util/units.hpp"

namespace xlf::hv {

struct RegulatorConfig {
  Volts vref{1.2};
  // Comparator hysteresis expressed at the regulated output.
  Volts hysteresis{0.10};
};

struct RegulatedStep {
  Volts vout{0.0};
  bool pump_enabled = false;
  Joules input_energy{0.0};
};

class Regulator {
 public:
  Regulator(const RegulatorConfig& config, Volts target);

  const RegulatorConfig& config() const { return config_; }
  Volts target() const { return target_; }
  // Divider ratio mapping the target output to vref.
  double divider_ratio() const { return config_.vref.value() / target_.value(); }
  // Retarget at runtime (the ISPP staircase raises the program rail
  // every pulse).
  void set_target(Volts target);

  // One control step: sense, compare with hysteresis, gate the pump.
  RegulatedStep step(DicksonPump& pump, Seconds dt, Amperes load);

 private:
  RegulatorConfig config_;
  Volts target_;
  bool enabled_ = true;
};

// Convenience: run the loop for `duration` in `steps` increments and
// integrate energy; returns final voltage, mean voltage and energy.
struct RegulationSummary {
  Volts final_voltage{0.0};
  Volts mean_voltage{0.0};
  Joules input_energy{0.0};
  double duty_cycle = 0.0;  // fraction of time the pump was enabled
};
RegulationSummary regulate_for(Regulator& regulator, DicksonPump& pump,
                               Seconds duration, unsigned steps, Amperes load);

}  // namespace xlf::hv
