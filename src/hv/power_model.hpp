// NAND power model: joins the ISPP timing characterisation with the
// HV-subsystem energy accounting to produce the paper's Fig. 6
// quantities — average program power per algorithm, data pattern and
// age — plus read/erase energies for the system simulator.
#pragma once

#include <optional>

#include "src/hv/hv_subsystem.hpp"
#include "src/nand/timing.hpp"

namespace xlf::hv {

class NandPowerModel {
 public:
  NandPowerModel(const HvConfig& hv, const nand::NandTiming& timing);

  // Average power of one page program (Fig. 6). `pattern` pins all
  // programmed cells to one level; nullopt = uniform random data.
  Watts program_power(nand::ProgramAlgorithm algo, double pe_cycles,
                      std::optional<nand::Level> pattern = std::nullopt) const;

  Joules program_energy(nand::ProgramAlgorithm algo, double pe_cycles,
                        std::optional<nand::Level> pattern = std::nullopt) const;

  Joules read_energy() const;

  // Power gap DV - SV at the given age/pattern (the paper's ~7.5 mW).
  Watts dv_power_penalty(double pe_cycles,
                         std::optional<nand::Level> pattern = std::nullopt) const;

  const HvSubsystem& subsystem() const { return subsystem_; }

 private:
  HvSubsystem subsystem_;
  const nand::NandTiming* timing_;
};

}  // namespace xlf::hv
