#include "src/hv/charge_pump.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/expect.hpp"

namespace xlf::hv {

DicksonPump::DicksonPump(const PumpConfig& config) : config_(config) {
  XLF_EXPECT(config_.stages >= 1);
  XLF_EXPECT(config_.vdd.value() > 0.0);
  XLF_EXPECT(config_.stage_capacitance_f > 0.0);
  XLF_EXPECT(config_.output_capacitance_f > 0.0);
  XLF_EXPECT(config_.clock.value() > 0.0);
  XLF_EXPECT(config_.parasitic_fraction >= 0.0 &&
             config_.parasitic_fraction < 1.0);
}

Volts DicksonPump::open_circuit_voltage() const {
  const double n = config_.stages;
  return Volts{(n + 1.0) * config_.vdd.value() - n * config_.stage_loss.value()};
}

double DicksonPump::output_impedance_ohm() const {
  return static_cast<double>(config_.stages) /
         (config_.clock.value() * config_.stage_capacitance_f);
}

Volts DicksonPump::steady_state_voltage(Amperes load) const {
  return Volts{open_circuit_voltage().value() -
               load.value() * output_impedance_ohm()};
}

Amperes DicksonPump::input_current(Amperes load) const {
  // Every coulomb delivered at the output transits all N+1 stages from
  // the supply; bottom-plate parasitics add a proportional waste term.
  const double n = config_.stages;
  const double ideal = (n + 1.0) * load.value();
  const double parasitic = config_.parasitic_fraction * n *
                           config_.stage_capacitance_f *
                           config_.clock.value() * config_.vdd.value();
  return Amperes{ideal + parasitic};
}

double DicksonPump::efficiency(Volts vout, Amperes load) const {
  XLF_EXPECT(load.value() >= 0.0);
  if (load.value() == 0.0) return 0.0;
  const double out = vout.value() * load.value();
  const double in = config_.vdd.value() * input_current(load).value();
  XLF_ENSURE(in > 0.0);
  return std::clamp(out / in, 0.0, 1.0);
}

void DicksonPump::reset(Volts initial_vout) { vout_ = initial_vout; }

PumpStep DicksonPump::step(Seconds dt, bool enabled, Amperes load) {
  XLF_EXPECT(dt.value() > 0.0);
  XLF_EXPECT(load.value() >= 0.0);
  PumpStep out;
  const double c_out = config_.output_capacitance_f;
  if (enabled) {
    // RC relaxation toward the loaded steady state with time constant
    // Rout * Cout.
    const double v_target = steady_state_voltage(load).value();
    const double tau = output_impedance_ohm() * c_out;
    const double alpha = 1.0 - std::exp(-dt.value() / tau);
    vout_ = Volts{vout_.value() + (v_target - vout_.value()) * alpha};
    const Amperes iin = input_current(load);
    out.input_current = iin;
    out.input_energy = Joules{config_.vdd.value() * iin.value() * dt.value()};
  } else {
    // Disabled: the load discharges the output capacitance.
    const double droop = load.value() * dt.value() / c_out;
    vout_ = Volts{std::max(0.0, vout_.value() - droop)};
  }
  out.vout = vout_;
  return out;
}

}  // namespace xlf::hv
