// Behavioural Dickson charge pump (paper Section 5.1).
//
// The paper simulates three pumps in SPICE on the STM 45 nm library:
// a 12-stage modified Dickson supplying the 14-19 V ISPP staircase, an
// 8-stage pump for the 8 V program-inhibit rail, and a 4-stage
// high-speed pump for the 4.5 V verify/read pass rail. This model
// replaces the transistor netlist with the standard Dickson
// difference equations — per clock phase each stage transfers charge
// C*(Vdd - Vloss) up the ladder — which preserves exactly what the
// figures consume: output voltage trajectory, input current, and
// conversion efficiency under load.
#pragma once

#include "src/util/units.hpp"

namespace xlf::hv {

struct PumpConfig {
  unsigned stages = 12;
  Volts vdd{1.8};
  // Per-stage transfer capacitor and output capacitance, sized so the
  // 12-stage program pump holds 19 V under the ~0.2 mA tunnelling
  // load (output impedance N/(f C) = 3 kOhm).
  double stage_capacitance_f = 200e-12;
  double output_capacitance_f = 1e-9;
  Hertz clock = Hertz::megahertz(20.0);
  // Diode/switch drop per stage.
  Volts stage_loss{0.15};
  // Parasitic bottom-plate fraction (charge wasted per transfer).
  double parasitic_fraction = 0.05;
};

// State of a pump integrated over a simulation step.
struct PumpStep {
  Volts vout{0.0};
  Amperes input_current{0.0};
  Joules input_energy{0.0};
};

class DicksonPump {
 public:
  explicit DicksonPump(const PumpConfig& config);

  const PumpConfig& config() const { return config_; }

  // Ideal no-load output voltage: (N+1) Vdd - N Vloss.
  Volts open_circuit_voltage() const;
  // Output impedance of the ladder: N / (f C).
  double output_impedance_ohm() const;
  // Steady-state output voltage under a DC load current.
  Volts steady_state_voltage(Amperes load) const;
  // Input current drawn when sourcing `load` at the output: each
  // output electron is lifted through N+1 stages, plus parasitics.
  Amperes input_current(Amperes load) const;
  // Conversion efficiency under load at output voltage vout.
  double efficiency(Volts vout, Amperes load) const;

  // --- transient simulation -----------------------------------------
  void reset(Volts initial_vout = Volts{0.0});
  Volts vout() const { return vout_; }
  // Advance by dt while `enabled` (regulator gating) with a DC load;
  // returns the step's electrical accounting.
  PumpStep step(Seconds dt, bool enabled, Amperes load);

 private:
  PumpConfig config_;
  Volts vout_{0.0};
};

}  // namespace xlf::hv
