// The high-voltage subsystem: the three charge pumps of the paper's
// Section 5.1 with their regulators, and the per-operation energy
// accounting driven by ISPP traces.
//
// Energy model per program operation (FlashPower-style [25]):
//  * Program pump (12-stage, 14-19 V): per pulse it recharges the
//    selected wordline to VCG and sustains the FN tunnelling current;
//    every output coulomb is lifted from VDD through N+1 stages.
//  * Inhibit pump (8-stage, 8 V): drives the unselected wordlines /
//    channel self-boosting during every pulse.
//  * Verify pump (4-stage high-speed, 4.5 V): drives the read pass
//    rail during every verify sense — the component whose extra duty
//    under ISPP-DV produces the ~7.5 mW gap of Fig. 6.
//  * Background: VDD-rail consumption of sense amplifiers, page
//    buffer and control logic over the whole operation (I/O pins and
//    the external digital part are excluded, as in the paper).
#pragma once

#include "src/hv/charge_pump.hpp"
#include "src/hv/regulator.hpp"
#include "src/nand/ispp.hpp"
#include "src/util/units.hpp"

namespace xlf::hv {

struct HvConfig {
  PumpConfig program_pump{.stages = 12, .vdd = Volts{1.8}};
  PumpConfig inhibit_pump{.stages = 8, .vdd = Volts{1.8}};
  PumpConfig verify_pump{
      .stages = 4, .vdd = Volts{1.8}, .clock = Hertz::megahertz(40.0)};
  RegulatorConfig regulator;

  Volts inhibit_rail{8.0};
  Volts verify_rail{4.5};

  // Load model constants.
  double wordline_capacitance_f = 5.0e-9;   // selected WL + string load
  Amperes tunnel_current{0.20e-3};          // page-wide FN current
  double inhibit_capacitance_f = 6.0e-9;    // unselected WLs + channels
  Amperes inhibit_dc{0.10e-3};
  double verify_capacitance_f = 2.0e-9;     // pass rail per sense
  Amperes verify_dc{0.35e-3};
  // VDD-rail consumption of bitline precharge and the page-wide sense
  // amplifier bank while a verify/read sense is in flight. Sensing a
  // 4 KB page precharges ~34k bitlines, making verify phases the most
  // power-hungry part of the operation — the root of the ISPP-DV
  // power penalty (Fig. 6).
  Watts sense{0.102};
  // VDD-rail background power while the device is busy.
  Watts background{0.070};
};

struct HvEnergyBreakdown {
  Joules program_pump{0.0};
  Joules inhibit_pump{0.0};
  Joules verify_pump{0.0};
  Joules sensing{0.0};
  Joules background{0.0};
  Joules total() const {
    return program_pump + inhibit_pump + verify_pump + sensing + background;
  }
};

class HvSubsystem {
 public:
  explicit HvSubsystem(const HvConfig& config);

  const HvConfig& config() const { return config_; }

  // Pumps exposed for rail-level verification (tests, Fig. 6 setup).
  const DicksonPump& program_pump() const { return program_pump_; }
  const DicksonPump& inhibit_pump() const { return inhibit_pump_; }
  const DicksonPump& verify_pump() const { return verify_pump_; }

  // Energy of one program operation described by an ISPP trace.
  HvEnergyBreakdown energy(const nand::IsppTrace& trace) const;
  // Average power over the operation (the Fig. 6 quantity).
  Watts average_power(const nand::IsppTrace& trace) const;

  // Energy of one page-read operation (verify pump + background).
  Joules read_energy(Seconds read_time) const;

 private:
  // Input energy to lift `charge` coulombs to the output of `pump`.
  Joules lift_energy(const DicksonPump& pump, double charge_c) const;
  // DC-load input power of a pump.
  Watts dc_input_power(const DicksonPump& pump, Amperes load) const;

  HvConfig config_;
  DicksonPump program_pump_;
  DicksonPump inhibit_pump_;
  DicksonPump verify_pump_;
};

}  // namespace xlf::hv
