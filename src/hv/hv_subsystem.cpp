#include "src/hv/hv_subsystem.hpp"

#include "src/util/expect.hpp"

namespace xlf::hv {

HvSubsystem::HvSubsystem(const HvConfig& config)
    : config_(config),
      program_pump_(config.program_pump),
      inhibit_pump_(config.inhibit_pump),
      verify_pump_(config.verify_pump) {
  // The rails must be reachable by their pumps.
  XLF_EXPECT(program_pump_.open_circuit_voltage() > Volts{19.0});
  XLF_EXPECT(inhibit_pump_.open_circuit_voltage() > config_.inhibit_rail);
  XLF_EXPECT(verify_pump_.open_circuit_voltage() > config_.verify_rail);
}

Joules HvSubsystem::lift_energy(const DicksonPump& pump,
                                double charge_c) const {
  XLF_EXPECT(charge_c >= 0.0);
  // Each output coulomb transits N+1 stages from VDD.
  const double n1 = pump.config().stages + 1.0;
  return Joules{n1 * pump.config().vdd.value() * charge_c};
}

Watts HvSubsystem::dc_input_power(const DicksonPump& pump,
                                  Amperes load) const {
  return Watts{pump.config().vdd.value() * pump.input_current(load).value()};
}

HvEnergyBreakdown HvSubsystem::energy(const nand::IsppTrace& trace) const {
  HvEnergyBreakdown out;

  // --- program pump ---------------------------------------------------
  // Wordline recharge: per pulse the WL capacitance is charged to VCG;
  // summing C * VCG over pulses equals C * (integral VCG dt) / t_pulse,
  // and the trace carries exactly that integral.
  const Seconds pulse_total = trace.program_pump_time;
  if (pulse_total.value() > 0.0) {
    const double t_pulse = pulse_total.value() / trace.pulses;
    const double wl_charge =
        config_.wordline_capacitance_f * trace.vcg_time_integral / t_pulse;
    out.program_pump = lift_energy(program_pump_, wl_charge) +
                       dc_input_power(program_pump_, config_.tunnel_current) *
                           pulse_total;
  }

  // --- inhibit pump -----------------------------------------------------
  if (trace.inhibit_pump_time.value() > 0.0) {
    const double t_pulse = trace.inhibit_pump_time.value() / trace.pulses;
    const double boost_charge = config_.inhibit_capacitance_f *
                                config_.inhibit_rail.value() *
                                (trace.inhibit_pump_time.value() / t_pulse);
    out.inhibit_pump = lift_energy(inhibit_pump_, boost_charge) +
                       dc_input_power(inhibit_pump_, config_.inhibit_dc) *
                           trace.inhibit_pump_time;
  }

  // --- verify pump and page sensing -----------------------------------
  if (trace.verify_ops > 0) {
    const double pass_charge = config_.verify_capacitance_f *
                               config_.verify_rail.value() * trace.verify_ops;
    out.verify_pump = lift_energy(verify_pump_, pass_charge) +
                      dc_input_power(verify_pump_, config_.verify_dc) *
                          trace.verify_pump_time;
    out.sensing = config_.sense * trace.verify_pump_time;
  }

  // --- background -----------------------------------------------------
  out.background = config_.background * trace.duration();
  return out;
}

Watts HvSubsystem::average_power(const nand::IsppTrace& trace) const {
  const Seconds duration = trace.duration();
  XLF_EXPECT(duration.value() > 0.0);
  return energy(trace).total() / duration;
}

Joules HvSubsystem::read_energy(Seconds read_time) const {
  XLF_EXPECT(read_time.value() >= 0.0);
  const double pass_charge =
      config_.verify_capacitance_f * config_.verify_rail.value();
  return lift_energy(verify_pump_, pass_charge) +
         dc_input_power(verify_pump_, config_.verify_dc) * read_time +
         config_.sense * read_time + config_.background * read_time;
}

}  // namespace xlf::hv
