#include "src/controller/ecc_unit.hpp"

#include "src/util/expect.hpp"

namespace xlf::controller {

EccUnit::EccUnit(const bch::AdaptiveCodecConfig& codec_config,
                 const ecc_hw::EccHwConfig& hw_config)
    : codec_(codec_config), latency_(hw_config), power_(hw_config) {
  // The software codec and the hardware model must describe the same
  // code family.
  XLF_EXPECT(codec_config.m == hw_config.m);
  XLF_EXPECT(codec_config.k == hw_config.k);
  XLF_EXPECT(codec_config.t_min == hw_config.t_min);
  XLF_EXPECT(codec_config.t_max == hw_config.t_max);
}

void EccUnit::set_correction_capability(unsigned t) {
  codec_.set_correction_capability(t);
}

unsigned EccUnit::correction_capability() const {
  return codec_.correction_capability();
}

bch::CodeParams EccUnit::current_params() const {
  return codec_.current_params();
}

EncodeOutcome EccUnit::encode(const BitVec& message) {
  EncodeOutcome out;
  out.codeword = codec_.encode(message);
  out.latency = latency_.encode_latency();
  out.energy = power_.encode_energy(codec_.correction_capability());
  return out;
}

DecodeOutcome EccUnit::finish_decode(const bch::DecodeResult& result) {
  DecodeOutcome out;
  out.result = result;
  const unsigned t = codec_.correction_capability();
  if (result.status == bch::DecodeStatus::kClean) {
    out.latency = latency_.decode_latency_clean(t);
    out.energy = power_.decode_energy(t, 0.0);
  } else {
    out.latency = latency_.decode_latency(t);
    out.energy = power_.decode_energy(t, result.corrected);
  }
  return out;
}

DecodeOutcome EccUnit::decode(BitVec& codeword) {
  return finish_decode(codec_.decode(codeword));
}

DecodeOutcome EccUnit::decode_with_reference(BitVec& codeword,
                                             const BitVec& reference) {
  return finish_decode(codec_.decode_with_reference(codeword, reference));
}

BitVec EccUnit::extract_message(const BitVec& codeword) {
  return codec_.extract_message(codeword);
}

}  // namespace xlf::controller
