// Multi-die dispatch: the timing model that turns N channels x M dies
// of per-die MemoryControllers into one SSD-level device.
//
// Each die owns a serial timeline (one outstanding NAND operation at a
// time) and each channel owns a serial timeline for data bursts (the
// dies of a channel share its bus). An operation splits into the
// channel share (`io_time`, the OCP/page-buffer burst a
// MemoryController reports as io_latency) and the cell share
// (`cell_time`, encode + program or sense + decode), and the
// dispatcher resolves when both resources are free:
//
//   write: burst in over the channel, then program occupies the die
//          (the die is held from burst start: its page buffer fills);
//   read:  sense occupies the die, then the outbound burst waits for
//          the channel; the die is held until its data has left.
//
// The dispatcher is pure deterministic arithmetic over Seconds — no
// threads, no clock of its own. The open-loop simulator feeds it
// arrival times from the EventQueue and schedules completions at the
// returned times, which keeps SSD-level runs bit-reproducible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/util/units.hpp"

namespace xlf::controller {

struct DispatchConfig {
  std::uint32_t channels = 1;
  std::uint32_t dies_per_channel = 1;
};

// Outcome of placing one operation on the die/channel timelines.
struct DispatchSlot {
  Seconds start{0.0};       // when the die begins serving it
  Seconds completion{0.0};  // when the host sees it done
  Seconds queued{0.0};      // completion - arrival (queueing + service)
};

class DieDispatcher {
 public:
  explicit DieDispatcher(const DispatchConfig& config);

  std::size_t dies() const { return die_free_.size(); }
  std::size_t channels() const { return channel_free_.size(); }
  // Dies stripe round-robin across channels so consecutive die
  // indices (= consecutive LPAs under the FTL's modulo affinity) land
  // on different buses.
  std::size_t channel_of(std::size_t die) const;

  // Place a write arriving at `arrival`: channel burst of `io_time`
  // followed by `cell_time` on the die.
  DispatchSlot submit_write(std::size_t die, Seconds arrival, Seconds io_time,
                            Seconds cell_time);
  // Place a read arriving at `arrival`: `cell_time` on the die, then
  // an outbound burst of `io_time` on the channel.
  DispatchSlot submit_read(std::size_t die, Seconds arrival, Seconds io_time,
                           Seconds cell_time);

  // Earliest instant the die could start a new operation.
  Seconds die_free_at(std::size_t die) const { return die_free_.at(die); }
  // Accumulated busy time per die / channel (utilisation numerators).
  Seconds die_busy(std::size_t die) const { return die_busy_.at(die); }
  Seconds channel_busy(std::size_t channel) const {
    return channel_busy_.at(channel);
  }

  void reset();

 private:
  DispatchConfig config_;
  std::vector<Seconds> die_free_;
  std::vector<Seconds> channel_free_;
  std::vector<Seconds> die_busy_;
  std::vector<Seconds> channel_busy_;
};

}  // namespace xlf::controller
