#include "src/controller/registers.hpp"

#include <cmath>

#include "src/util/expect.hpp"

namespace xlf::controller {

RegisterFile::RegisterFile() = default;

std::uint32_t RegisterFile::read(RegisterId reg) const {
  switch (reg) {
    case RegisterId::kControl: return control_;
    case RegisterId::kEccCapability: return ecc_capability_;
    case RegisterId::kProgramAlgo: return program_algo_;
    case RegisterId::kStatus: return status_;
    case RegisterId::kCorrectedBits: return corrected_bits_;
    case RegisterId::kDecodedPages: return decoded_pages_;
    case RegisterId::kUncorrectable: return uncorrectable_;
    case RegisterId::kUberTargetExp: return uber_target_exp_;
  }
  XLF_EXPECT(false && "unknown register");
  return 0;
}

void RegisterFile::write(RegisterId reg, std::uint32_t value) {
  switch (reg) {
    case RegisterId::kControl:
      control_ = value;
      return;
    case RegisterId::kEccCapability:
      XLF_EXPECT(value >= 1);
      ecc_capability_ = value;
      return;
    case RegisterId::kProgramAlgo:
      XLF_EXPECT(value <= 1);
      program_algo_ = value;
      return;
    case RegisterId::kUberTargetExp:
      XLF_EXPECT(value >= 1 && value <= 30);
      uber_target_exp_ = value;
      return;
    case RegisterId::kStatus:
    case RegisterId::kCorrectedBits:
    case RegisterId::kDecodedPages:
    case RegisterId::kUncorrectable:
      XLF_EXPECT(false && "read-only register");
      return;
  }
  XLF_EXPECT(false && "unknown register");
}

bool RegisterFile::enabled() const { return (control_ & 1u) != 0; }

unsigned RegisterFile::ecc_capability() const { return ecc_capability_; }

void RegisterFile::set_ecc_capability(unsigned t) {
  XLF_EXPECT(t >= 1);
  ecc_capability_ = t;
}

nand::ProgramAlgorithm RegisterFile::program_algorithm() const {
  return program_algo_ == 0 ? nand::ProgramAlgorithm::kIsppSv
                            : nand::ProgramAlgorithm::kIsppDv;
}

void RegisterFile::set_program_algorithm(nand::ProgramAlgorithm algo) {
  program_algo_ = algo == nand::ProgramAlgorithm::kIsppSv ? 0 : 1;
}

bool RegisterFile::busy() const { return (status_ & 1u) != 0; }

void RegisterFile::set_busy(bool busy) {
  status_ = (status_ & ~1u) | (busy ? 1u : 0u);
}

void RegisterFile::set_error(bool error) {
  status_ = (status_ & ~2u) | (error ? 2u : 0u);
}

double RegisterFile::uber_target() const {
  return std::pow(10.0, -static_cast<double>(uber_target_exp_));
}

void RegisterFile::record_decode(unsigned corrected_bits, bool uncorrectable) {
  corrected_bits_ += corrected_bits;
  ++decoded_pages_;
  if (uncorrectable) ++uncorrectable_;
}

std::uint32_t RegisterFile::corrected_bits() const { return corrected_bits_; }
std::uint32_t RegisterFile::decoded_pages() const { return decoded_pages_; }
std::uint32_t RegisterFile::uncorrectable_pages() const { return uncorrectable_; }

void RegisterFile::clear_counters() {
  corrected_bits_ = 0;
  decoded_pages_ = 0;
  uncorrectable_ = 0;
}

}  // namespace xlf::controller
