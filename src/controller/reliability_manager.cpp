#include "src/controller/reliability_manager.hpp"

#include "src/policy/registry.hpp"
#include "src/util/expect.hpp"

namespace xlf::controller {

struct ReliabilityManager::Host final : policy::TuningHost {
  const ReliabilityManager* manager = nullptr;
  unsigned t_for_rber(double rber) const override {
    return manager->t_for_rber(rber);
  }
};

ReliabilityManager::ReliabilityManager(const ReliabilityConfig& config,
                                       const std::string& policy_name,
                                       const nand::AgingLaw& law)
    : config_(config), law_(law) {
  XLF_EXPECT(config_.uber_target > 0.0 && config_.uber_target < 1.0);
  XLF_EXPECT(config_.t_min >= 1 && config_.t_min <= config_.t_max);
  XLF_EXPECT(config_.ewma_alpha > 0.0 && config_.ewma_alpha <= 1.0);
  XLF_EXPECT(config_.safety_factor >= 1.0);
  set_policy(policy_name);
}

void ReliabilityManager::set_policy(const std::string& policy_name) {
  policy_ =
      policy::PolicyRegistry<policy::TuningPolicy>::instance().make_shared(
          policy_name);
  policy_name_ = policy_name;
}

unsigned ReliabilityManager::t_for_rber(double rber) const {
  const auto t =
      bch::min_t_for_uber(rber, config_.uber_target, config_.k, config_.m,
                          config_.t_min, config_.t_max);
  saturated_ = !t.has_value();
  return t.value_or(config_.t_max);
}

unsigned ReliabilityManager::select_t(nand::ProgramAlgorithm algo,
                                      double pe_cycles) const {
  return t_for_rber(law_.rber(algo, pe_cycles));
}

double ReliabilityManager::predicted_uber(nand::ProgramAlgorithm algo,
                                          double pe_cycles) const {
  const double rber = law_.rber(algo, pe_cycles);
  const unsigned t = t_for_rber(rber);
  const bch::CodeParams params{config_.m, config_.k, t};
  return bch::uber(rber, params.n(), t);
}

void ReliabilityManager::observe_decode(unsigned corrected_bits,
                                        std::uint32_t codeword_bits) {
  XLF_EXPECT(codeword_bits > 0);
  const double sample =
      static_cast<double>(corrected_bits) / codeword_bits;
  if (pages_seen_ == 0) {
    rber_estimate_ = sample;
  } else {
    rber_estimate_ = (1.0 - config_.ewma_alpha) * rber_estimate_ +
                     config_.ewma_alpha * sample;
  }
  ++pages_seen_;
}

double ReliabilityManager::estimated_rber() const { return rber_estimate_; }

unsigned ReliabilityManager::recommended_t(nand::ProgramAlgorithm algo,
                                           double pe_cycles,
                                           unsigned fallback_t) const {
  Host host;
  host.manager = this;

  policy::TuningContext ctx;
  ctx.algo = algo;
  ctx.pe_cycles = pe_cycles;
  ctx.fallback_t = fallback_t;
  ctx.estimated_rber = rber_estimate_;
  ctx.estimate_ready = estimate_ready();
  ctx.safety_factor = config_.safety_factor;
  ctx.budget = {config_.uber_target, config_.m, config_.k, config_.t_min,
                config_.t_max};
  ctx.law = &law_;
  ctx.host = &host;
  return policy_->recommend(ctx);
}

}  // namespace xlf::controller
