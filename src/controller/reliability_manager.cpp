#include "src/controller/reliability_manager.hpp"

#include <algorithm>

#include "src/util/expect.hpp"

namespace xlf::controller {

ReliabilityManager::ReliabilityManager(const ReliabilityConfig& config,
                                       ReliabilityPolicy policy,
                                       const nand::AgingLaw& law)
    : config_(config), policy_(policy), law_(law) {
  XLF_EXPECT(config_.uber_target > 0.0 && config_.uber_target < 1.0);
  XLF_EXPECT(config_.t_min >= 1 && config_.t_min <= config_.t_max);
  XLF_EXPECT(config_.ewma_alpha > 0.0 && config_.ewma_alpha <= 1.0);
  XLF_EXPECT(config_.safety_factor >= 1.0);
}

unsigned ReliabilityManager::t_for_rber(double rber) const {
  const auto t =
      bch::min_t_for_uber(rber, config_.uber_target, config_.k, config_.m,
                          config_.t_min, config_.t_max);
  saturated_ = !t.has_value();
  return t.value_or(config_.t_max);
}

unsigned ReliabilityManager::select_t(nand::ProgramAlgorithm algo,
                                      double pe_cycles) const {
  return t_for_rber(law_.rber(algo, pe_cycles));
}

double ReliabilityManager::predicted_uber(nand::ProgramAlgorithm algo,
                                          double pe_cycles) const {
  const double rber = law_.rber(algo, pe_cycles);
  const unsigned t = t_for_rber(rber);
  const bch::CodeParams params{config_.m, config_.k, t};
  return bch::uber(rber, params.n(), t);
}

void ReliabilityManager::observe_decode(unsigned corrected_bits,
                                        std::uint32_t codeword_bits) {
  XLF_EXPECT(codeword_bits > 0);
  const double sample =
      static_cast<double>(corrected_bits) / codeword_bits;
  if (pages_seen_ == 0) {
    rber_estimate_ = sample;
  } else {
    rber_estimate_ = (1.0 - config_.ewma_alpha) * rber_estimate_ +
                     config_.ewma_alpha * sample;
  }
  ++pages_seen_;
}

double ReliabilityManager::estimated_rber() const { return rber_estimate_; }

unsigned ReliabilityManager::recommended_t(nand::ProgramAlgorithm algo,
                                           double pe_cycles,
                                           unsigned fallback_t) const {
  switch (policy_) {
    case ReliabilityPolicy::kStatic:
      return fallback_t;
    case ReliabilityPolicy::kModelBased:
      return select_t(algo, pe_cycles);
    case ReliabilityPolicy::kFeedback: {
      if (!estimate_ready()) return fallback_t;
      // Never trust an estimate of exactly zero: with no observed
      // errors the best statement is "below one error per observed
      // window"; fall back to the floor capability.
      if (rber_estimate_ <= 0.0) return config_.t_min;
      return t_for_rber(
          std::min(0.5, rber_estimate_ * config_.safety_factor));
    }
  }
  XLF_EXPECT(false && "unknown policy");
  return fallback_t;
}

}  // namespace xlf::controller
