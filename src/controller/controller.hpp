// The memory controller of paper Fig. 1: OCP socket toward the
// interconnect, page buffer, adaptive ECC unit, reliability manager,
// and the NAND device interface. Every page write and read flows
// through the full pipeline and returns latency + energy accounting,
// which is what the throughput figures integrate.
//
// Per-page metadata: a page is decoded with the correction capability
// it was encoded with, so the controller keeps the (t, algorithm)
// used at write time per page — the model of the config metadata a
// real controller stores in the spare area.
#pragma once

#include <map>
#include <optional>

#include "src/controller/ecc_unit.hpp"
#include "src/controller/ocp.hpp"
#include "src/controller/page_buffer.hpp"
#include "src/controller/registers.hpp"
#include "src/controller/reliability_manager.hpp"
#include "src/hv/power_model.hpp"
#include "src/nand/device.hpp"

namespace xlf::controller {

struct ControllerConfig {
  bch::AdaptiveCodecConfig codec;       // defaults: GF(2^16), 4 KB, t 3..65
  ecc_hw::EccHwConfig ecc_hw;           // p = h = 8, 80 MHz
  OcpConfig ocp;
  PageBufferConfig page_buffer;
  ReliabilityConfig reliability;
  // Reliability-manager tuning strategy, resolved through
  // PolicyRegistry<policy::TuningPolicy> ("static", "model_based",
  // "feedback", or any policy registered by a downstream TU).
  std::string tuning_policy = "model_based";
  nand::LoadStrategy load_strategy = nand::LoadStrategy::kFullSequence;
  // Use the decoder's sparse-syndrome fast path with the known
  // written codeword as reference (simulation accelerator; bit-exact
  // per bch::Decoder's linearity, asserted in tests).
  bool simulation_fast_decode = true;
};

struct WriteResult {
  bool ok = true;
  Seconds latency{0.0};       // host-visible busy time
  // Portion of `latency` spent bursting data over the shared host
  // interconnect (OCP + page-buffer load). In a multi-die SSD this
  // share contends on the channel while the rest (encode + program)
  // overlaps across dies on the same channel.
  Seconds io_latency{0.0};
  Joules ecc_energy{0.0};
  Joules nand_energy{0.0};
  unsigned t_used = 0;
};

struct ReadResult {
  bool ok = true;
  BitVec data;
  Seconds latency{0.0};
  // Channel share of `latency` (the outbound OCP burst); see
  // WriteResult::io_latency.
  Seconds io_latency{0.0};
  Joules ecc_energy{0.0};
  Joules nand_energy{0.0};
  unsigned corrected_bits = 0;
  bool uncorrectable = false;
};

class MemoryController {
 public:
  MemoryController(const ControllerConfig& config, nand::NandDevice& device,
                   const hv::HvConfig& hv_config);

  // --- configuration plane (the two cross-layer knobs) ---------------
  void set_correction_capability(unsigned t);
  unsigned correction_capability() const;
  void set_program_algorithm(nand::ProgramAlgorithm algo);
  nand::ProgramAlgorithm program_algorithm() const;
  // Let the reliability manager reconfigure t for the given wear
  // state (call on epoch boundaries or after feedback warm-up).
  unsigned adapt_ecc(double pe_cycles);

  RegisterFile& registers() { return registers_; }
  const RegisterFile& registers() const { return registers_; }
  ReliabilityManager& reliability() { return reliability_; }
  EccUnit& ecc() { return ecc_; }
  const OcpSocket& ocp() const { return ocp_; }
  nand::NandDevice& device() { return *device_; }
  const nand::NandDevice& device() const { return *device_; }

  // --- data plane -----------------------------------------------------
  // Write 4 KB of user data to a page. The data flows: OCP burst ->
  // page buffer -> ECC encode -> NAND program.
  WriteResult write_page(nand::PageAddress addr, const BitVec& data);
  // Read it back: NAND read -> ECC decode (+ feedback) -> OCP burst.
  ReadResult read_page(nand::PageAddress addr);
  Seconds erase_block(std::uint32_t block);

  // Worst-case (errors-present) read/write service times at the
  // current configuration — the paper's throughput convention.
  Seconds worst_case_read_latency() const;
  Seconds write_latency(double pe_cycles) const;

 private:
  struct PageMeta {
    unsigned t = 0;
    BitVec reference;  // written codeword (simulation fast decode)
  };

  // Metadata-only device service (DeviceConfig::data_plane == false):
  // the same pipeline arithmetic fed from the timing/energy models
  // alone — no payload bits move, reads model a clean worst-case
  // decode of an all-zero page.
  WriteResult write_page_meta(nand::PageAddress addr, const BitVec& data);
  ReadResult read_page_meta(const PageMeta& meta);

  ControllerConfig config_;
  nand::NandDevice* device_;
  RegisterFile registers_;
  OcpSocket ocp_;
  PageBuffer buffer_;
  EccUnit ecc_;
  ReliabilityManager reliability_;
  hv::NandPowerModel nand_power_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, PageMeta> page_meta_;
};

}  // namespace xlf::controller
