// The integrated reliability manager (paper Section 3): selects the
// minimal BCH correction capability meeting the UBER target through a
// pluggable policy::TuningPolicy — the built-ins are `static` (hold
// the configured t), `model_based` (t from the device's known wear
// state and RBER law) and `feedback` (t from live corrected-bit
// feedback out of the ECC unit, the self-adaptive path). Eq. (1)
// closes the loop in the model-based and feedback cases.
//
// The manager owns all mutable state (the EWMA estimator, the
// saturation flag); the policy object is immutable and consulted per
// decision with a TuningContext snapshot, so one policy instance is
// safely shared across dies and threads.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "src/bch/code_params.hpp"
#include "src/nand/aging.hpp"
#include "src/policy/policy.hpp"

namespace xlf::controller {

struct ReliabilityConfig {
  double uber_target = 1e-11;  // Section 6.2
  unsigned m = 16;
  std::uint32_t k = 32768;
  unsigned t_min = 3;
  unsigned t_max = 65;
  // Feedback estimator: EWMA smoothing and a multiplicative safety
  // margin on the estimated RBER (estimates from sparse error counts
  // are noisy; undershooting t is the expensive direction).
  double ewma_alpha = 0.05;
  double safety_factor = 1.25;
  // Pages to observe before trusting the feedback estimate.
  unsigned warmup_pages = 32;
};

class ReliabilityManager {
 public:
  // `policy_name` is looked up in PolicyRegistry<TuningPolicy>;
  // unknown names throw listing the registered policies.
  ReliabilityManager(const ReliabilityConfig& config,
                     const std::string& policy_name,
                     const nand::AgingLaw& law);

  const std::string& policy_name() const { return policy_name_; }
  const policy::TuningPolicy& tuning_policy() const { return *policy_; }
  // Swap the tuning strategy at runtime (estimator state is kept).
  void set_policy(const std::string& policy_name);
  const ReliabilityConfig& config() const { return config_; }

  // --- model-based path ------------------------------------------------
  // Minimal t meeting the UBER target for the given algorithm/wear.
  // Saturates at t_max (and reports so via `saturated()`).
  unsigned select_t(nand::ProgramAlgorithm algo, double pe_cycles) const;
  // Eq. (1) evaluated at the configuration the manager would pick.
  double predicted_uber(nand::ProgramAlgorithm algo, double pe_cycles) const;

  // --- feedback path -----------------------------------------------------
  // Feed one decode result: corrected bits over a codeword of n bits.
  void observe_decode(unsigned corrected_bits, std::uint32_t codeword_bits);
  double estimated_rber() const;
  bool estimate_ready() const { return pages_seen_ >= config_.warmup_pages; }
  // Recommended t per the active policy and current state;
  // `fallback_t` is returned by policies that decline to retune (the
  // static policy, feedback before warm-up).
  unsigned recommended_t(nand::ProgramAlgorithm algo, double pe_cycles,
                         unsigned fallback_t) const;

  // True when the last selection could not meet the target within t_max.
  bool saturated() const { return saturated_; }

 private:
  // Bridges a TuningPolicy's t_for_rber calls back to the manager so
  // the saturation flag tracks exactly the selections that consulted
  // the UBER equation. Nested for private access; defined in the cpp.
  struct Host;

  unsigned t_for_rber(double rber) const;

  ReliabilityConfig config_;
  std::string policy_name_;
  std::shared_ptr<const policy::TuningPolicy> policy_;
  nand::AgingLaw law_;
  double rber_estimate_ = 0.0;
  unsigned pages_seen_ = 0;
  mutable bool saturated_ = false;
};

}  // namespace xlf::controller
