// The integrated reliability manager (paper Section 3): selects the
// minimal BCH correction capability meeting the UBER target, either
// from the device's known wear state and RBER law (model-based) or
// from live corrected-bit feedback out of the ECC unit
// (self-adaptive). Eq. (1) closes the loop in both cases.
#pragma once

#include <optional>

#include "src/bch/code_params.hpp"
#include "src/nand/aging.hpp"

namespace xlf::controller {

enum class ReliabilityPolicy {
  kStatic,      // hold whatever t was configured
  kModelBased,  // t from wear counter + RBER aging law
  kFeedback,    // t from EWMA of observed corrected-bit density
};

struct ReliabilityConfig {
  double uber_target = 1e-11;  // Section 6.2
  unsigned m = 16;
  std::uint32_t k = 32768;
  unsigned t_min = 3;
  unsigned t_max = 65;
  // Feedback estimator: EWMA smoothing and a multiplicative safety
  // margin on the estimated RBER (estimates from sparse error counts
  // are noisy; undershooting t is the expensive direction).
  double ewma_alpha = 0.05;
  double safety_factor = 1.25;
  // Pages to observe before trusting the feedback estimate.
  unsigned warmup_pages = 32;
};

class ReliabilityManager {
 public:
  ReliabilityManager(const ReliabilityConfig& config,
                     ReliabilityPolicy policy, const nand::AgingLaw& law);

  ReliabilityPolicy policy() const { return policy_; }
  void set_policy(ReliabilityPolicy policy) { policy_ = policy; }
  const ReliabilityConfig& config() const { return config_; }

  // --- model-based path ------------------------------------------------
  // Minimal t meeting the UBER target for the given algorithm/wear.
  // Saturates at t_max (and reports so via `saturated()`).
  unsigned select_t(nand::ProgramAlgorithm algo, double pe_cycles) const;
  // Eq. (1) evaluated at the configuration the manager would pick.
  double predicted_uber(nand::ProgramAlgorithm algo, double pe_cycles) const;

  // --- feedback path -----------------------------------------------------
  // Feed one decode result: corrected bits over a codeword of n bits.
  void observe_decode(unsigned corrected_bits, std::uint32_t codeword_bits);
  double estimated_rber() const;
  bool estimate_ready() const { return pages_seen_ >= config_.warmup_pages; }
  // Recommended t given the policy and current state; `fallback_t` is
  // returned by the static policy and by feedback before warm-up.
  unsigned recommended_t(nand::ProgramAlgorithm algo, double pe_cycles,
                         unsigned fallback_t) const;

  // True when the last selection could not meet the target within t_max.
  bool saturated() const { return saturated_; }

 private:
  unsigned t_for_rber(double rber) const;

  ReliabilityConfig config_;
  ReliabilityPolicy policy_;
  nand::AgingLaw law_;
  double rber_estimate_ = 0.0;
  unsigned pages_seen_ = 0;
  mutable bool saturated_ = false;
};

}  // namespace xlf::controller
