// The controller's ECC unit: the bit-true adaptive BCH codec fused
// with the hardware timing/power models, so every encode/decode
// returns data *and* the latency/energy the silicon would have spent.
//
// Decode latency honours the hardware fast path: if all syndromes are
// zero the iBM and Chien stages never start (Section 4's "if all
// reminders are null the codeword is error-free and the decoding
// process ends"). The paper's figures use the worst-case (errors
// present) latency, available from the latency model directly.
#pragma once

#include "src/bch/codec.hpp"
#include "src/ecc_hw/latency.hpp"
#include "src/ecc_hw/power.hpp"
#include "src/util/bitvec.hpp"
#include "src/util/units.hpp"

namespace xlf::controller {

struct EncodeOutcome {
  BitVec codeword;
  Seconds latency{0.0};
  Joules energy{0.0};
};

struct DecodeOutcome {
  bch::DecodeResult result;
  Seconds latency{0.0};
  Joules energy{0.0};
};

class EccUnit {
 public:
  EccUnit(const bch::AdaptiveCodecConfig& codec_config,
          const ecc_hw::EccHwConfig& hw_config);

  // The adaptability port (drives codec, latency and power together).
  void set_correction_capability(unsigned t);
  unsigned correction_capability() const;
  bch::CodeParams current_params() const;

  EncodeOutcome encode(const BitVec& message);
  DecodeOutcome decode(BitVec& codeword);
  // Simulation fast path (identical results; see bch::Decoder).
  DecodeOutcome decode_with_reference(BitVec& codeword,
                                      const BitVec& reference);
  BitVec extract_message(const BitVec& codeword);

  const ecc_hw::LatencyModel& latency_model() const { return latency_; }
  const ecc_hw::PowerModel& power_model() const { return power_; }
  const bch::AdaptiveBchCodec& codec() const { return codec_; }

 private:
  DecodeOutcome finish_decode(const bch::DecodeResult& result);

  bch::AdaptiveBchCodec codec_;
  ecc_hw::LatencyModel latency_;
  ecc_hw::PowerModel power_;
};

}  // namespace xlf::controller
