#include "src/controller/controller.hpp"

#include "src/util/expect.hpp"
#include "src/util/log.hpp"

namespace xlf::controller {
namespace {

std::pair<std::uint32_t, std::uint32_t> key_of(nand::PageAddress addr) {
  return {addr.block, addr.page};
}

}  // namespace

MemoryController::MemoryController(const ControllerConfig& config,
                                   nand::NandDevice& device,
                                   const hv::HvConfig& hv_config)
    : config_(config),
      device_(&device),
      ocp_(config.ocp),
      buffer_(config.page_buffer),
      ecc_(config.codec, config.ecc_hw),
      reliability_(config.reliability, config.tuning_policy,
                   device.config().array.aging),
      nand_power_(hv_config, device.timing()) {
  // The codeword for t_max must fit the device page.
  const bch::CodeParams worst{config.codec.m, config.codec.k,
                              config.codec.t_max};
  XLF_EXPECT(worst.n() <= device.geometry().bits_per_page());
  XLF_EXPECT(config.codec.k == device.geometry().data_bits_per_page());
  registers_.set_ecc_capability(ecc_.correction_capability());
  registers_.set_program_algorithm(device.program_algorithm());
}

void MemoryController::set_correction_capability(unsigned t) {
  ecc_.set_correction_capability(t);
  registers_.set_ecc_capability(t);
}

unsigned MemoryController::correction_capability() const {
  return ecc_.correction_capability();
}

void MemoryController::set_program_algorithm(nand::ProgramAlgorithm algo) {
  device_->select_program_algorithm(algo);
  registers_.set_program_algorithm(algo);
}

nand::ProgramAlgorithm MemoryController::program_algorithm() const {
  return device_->program_algorithm();
}

unsigned MemoryController::adapt_ecc(double pe_cycles) {
  const unsigned t = reliability_.recommended_t(
      program_algorithm(), pe_cycles, correction_capability());
  if (t != correction_capability()) {
    log_info() << "reliability manager: t " << correction_capability()
               << " -> " << t << " at " << pe_cycles << " cycles";
    set_correction_capability(t);
  }
  return t;
}

WriteResult MemoryController::write_page(nand::PageAddress addr,
                                         const BitVec& data) {
  if (!device_->config().data_plane) return write_page_meta(addr, data);
  XLF_EXPECT(data.size() == config_.codec.k);
  WriteResult result;
  registers_.set_busy(true);

  // Host burst across the OCP socket into the page buffer. This is
  // the channel-contended share of the write in a multi-die SSD.
  const OcpRequest request{OcpCommand::kWrite, 0,
                           static_cast<std::uint32_t>(data.size() / 8)};
  ocp_.record(request);
  result.io_latency = ocp_.transfer_time(request) + buffer_.load(data);
  result.latency += result.io_latency;

  // ECC encode.
  const EncodeOutcome encoded = ecc_.encode(buffer_.unload());
  result.latency += encoded.latency;
  result.ecc_energy += encoded.energy;
  result.t_used = ecc_.correction_capability();

  // Pad the codeword to the physical page and program.
  BitVec page_bits(device_->geometry().bits_per_page());
  page_bits.insert(0, encoded.codeword);
  const double wear = device_->wear(addr.block);
  const nand::ProgramOutcome programmed =
      device_->program_page(addr, page_bits, config_.load_strategy);
  result.ok = programmed.ok;
  result.latency += programmed.busy_time;
  result.nand_energy += nand_power_.program_energy(program_algorithm(), wear);

  page_meta_[key_of(addr)] = PageMeta{result.t_used, encoded.codeword};
  registers_.set_busy(false);
  registers_.set_error(!result.ok);
  return result;
}

WriteResult MemoryController::write_page_meta(nand::PageAddress addr,
                                              const BitVec& data) {
  // Metadata-only pipeline: the same stage arithmetic as the bit-true
  // path — OCP burst + buffer stream, model encode, statistical-mode
  // program time — with no payload bits moved (callers pass empty or
  // full-size data; only its modeled size matters).
  XLF_EXPECT(data.size() == config_.codec.k || data.size() == 0);
  const std::size_t k = config_.codec.k;
  WriteResult result;
  registers_.set_busy(true);

  const OcpRequest request{OcpCommand::kWrite, 0,
                           static_cast<std::uint32_t>(k / 8)};
  ocp_.record(request);
  result.io_latency = ocp_.transfer_time(request) + buffer_.stream_time(k);
  result.latency += result.io_latency;

  result.latency += ecc_.latency_model().encode_latency();
  result.ecc_energy +=
      ecc_.power_model().encode_energy(ecc_.correction_capability());
  result.t_used = ecc_.correction_capability();

  const double wear = device_->wear(addr.block);
  const nand::ProgramOutcome programmed =
      device_->program_page(addr, BitVec(0), config_.load_strategy);
  result.ok = programmed.ok;
  result.latency += programmed.busy_time;
  result.nand_energy += nand_power_.program_energy(program_algorithm(), wear);

  page_meta_[key_of(addr)] = PageMeta{result.t_used, BitVec(0)};
  registers_.set_busy(false);
  registers_.set_error(!result.ok);
  return result;
}

ReadResult MemoryController::read_page(nand::PageAddress addr) {
  const auto meta_it = page_meta_.find(key_of(addr));
  XLF_EXPECT(meta_it != page_meta_.end() && "reading an unwritten page");
  const PageMeta& meta = meta_it->second;
  if (!device_->config().data_plane) return read_page_meta(meta);

  ReadResult result;
  registers_.set_busy(true);

  // NAND sensing.
  const nand::ReadOutcome raw = device_->read_page(addr);
  result.latency += raw.busy_time;
  result.nand_energy += nand_power_.read_energy();

  // Decode with the capability the page was written at.
  const unsigned current_t = ecc_.correction_capability();
  ecc_.set_correction_capability(meta.t);
  const bch::CodeParams params = ecc_.current_params();
  BitVec codeword = raw.data.slice(0, params.n());
  const DecodeOutcome decoded =
      config_.simulation_fast_decode
          ? ecc_.decode_with_reference(codeword, meta.reference)
          : ecc_.decode(codeword);
  result.latency += decoded.latency;
  result.ecc_energy += decoded.energy;
  result.corrected_bits = decoded.result.corrected;
  result.uncorrectable =
      decoded.result.status == bch::DecodeStatus::kUncorrectable;
  result.ok = !result.uncorrectable;
  result.data = ecc_.extract_message(codeword);
  ecc_.set_correction_capability(current_t);

  // Reliability feedback. An uncorrectable page carries no corrected
  // count but is evidence of at least t+1 raw errors — feeding zero
  // would bias the estimator down exactly when the error rate
  // explodes.
  const unsigned observed_errors =
      result.uncorrectable ? meta.t + 1 : decoded.result.corrected;
  reliability_.observe_decode(observed_errors, params.n());
  registers_.record_decode(decoded.result.corrected, result.uncorrectable);

  // Host burst out — the channel-contended share of the read.
  const OcpRequest request{OcpCommand::kRead, 0,
                           static_cast<std::uint32_t>(result.data.size() / 8)};
  ocp_.record(request);
  result.io_latency = ocp_.transfer_time(request);
  result.latency += result.io_latency;

  registers_.set_busy(false);
  registers_.set_error(!result.ok);
  return result;
}

ReadResult MemoryController::read_page_meta(const PageMeta& meta) {
  // Metadata-only read service: sensing time + the worst-case decode
  // at the page's written t (the paper's throughput convention) and a
  // clean-decode outcome — no cells exist to produce errors, so the
  // payload is an all-zero page and the reliability feedback sees a
  // clean decode.
  ReadResult result;
  registers_.set_busy(true);

  result.latency += device_->timing().read_time();
  result.nand_energy += nand_power_.read_energy();

  const bch::CodeParams params{config_.codec.m, config_.codec.k, meta.t};
  result.latency += ecc_.latency_model().decode_latency(meta.t);
  result.ecc_energy += ecc_.power_model().decode_energy(meta.t, 0.0);
  result.data = BitVec(config_.codec.k);

  reliability_.observe_decode(0, params.n());
  registers_.record_decode(0, false);

  const OcpRequest request{OcpCommand::kRead, 0,
                           static_cast<std::uint32_t>(result.data.size() / 8)};
  ocp_.record(request);
  result.io_latency = ocp_.transfer_time(request);
  result.latency += result.io_latency;

  registers_.set_busy(false);
  registers_.set_error(false);
  return result;
}

Seconds MemoryController::erase_block(std::uint32_t block) {
  const nand::EraseOutcome outcome = device_->erase_block(block);
  // Invalidate metadata of the erased pages.
  for (std::uint32_t p = 0; p < device_->geometry().pages_per_block; ++p) {
    page_meta_.erase({block, p});
  }
  return outcome.busy_time;
}

Seconds MemoryController::worst_case_read_latency() const {
  return device_->timing().read_time() +
         ecc_.latency_model().decode_latency(ecc_.correction_capability());
}

Seconds MemoryController::write_latency(double pe_cycles) const {
  return ecc_.latency_model().encode_latency() +
         device_->timing().program_time(program_algorithm(), pe_cycles);
}

}  // namespace xlf::controller
