#include "src/controller/page_buffer.hpp"

#include "src/util/expect.hpp"

namespace xlf::controller {

PageBuffer::PageBuffer(const PageBufferConfig& config) : config_(config) {
  XLF_EXPECT(config_.capacity_bits > 0);
  XLF_EXPECT(config_.bandwidth.value() > 0.0);
}

Seconds PageBuffer::load(const BitVec& data) {
  XLF_EXPECT(!occupied() && "page buffer hand-off violation");
  XLF_EXPECT(data.size() <= config_.capacity_bits);
  content_ = data;
  return stream_time(data.size());
}

const BitVec& PageBuffer::content() const {
  XLF_EXPECT(occupied());
  return *content_;
}

BitVec PageBuffer::unload() {
  XLF_EXPECT(occupied());
  BitVec out = std::move(*content_);
  content_.reset();
  return out;
}

Seconds PageBuffer::stream_time(std::size_t bits) const {
  return Seconds{static_cast<double>(bits) / 8.0 / config_.bandwidth.value()};
}

}  // namespace xlf::controller
