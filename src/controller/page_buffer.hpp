// The controller's page buffer (paper Fig. 1): an embedded RAM block,
// one page deep, decoupling the fast interconnect from the slow flash
// device. All data between host and ECC stages flows through here;
// the model tracks occupancy and hand-off validity so pipeline-order
// bugs surface as contract violations rather than silent corruption.
#pragma once

#include <optional>

#include "src/util/bitvec.hpp"
#include "src/util/units.hpp"

namespace xlf::controller {

struct PageBufferConfig {
  std::uint32_t capacity_bits = 34560;  // one page incl. spare
  // Embedded-SRAM streaming bandwidth.
  BytesPerSecond bandwidth = BytesPerSecond::mib(800.0);
};

class PageBuffer {
 public:
  explicit PageBuffer(const PageBufferConfig& config);

  const PageBufferConfig& config() const { return config_; }
  bool occupied() const { return content_.has_value(); }

  // Load data into the buffer; fails if still occupied.
  Seconds load(const BitVec& data);
  // Peek without releasing.
  const BitVec& content() const;
  // Drain the buffer.
  BitVec unload();
  // Streaming time for `bits` through the SRAM.
  Seconds stream_time(std::size_t bits) const;

 private:
  PageBufferConfig config_;
  std::optional<BitVec> content_;
};

}  // namespace xlf::controller
