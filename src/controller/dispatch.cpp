#include "src/controller/dispatch.hpp"

#include <algorithm>

#include "src/util/expect.hpp"

namespace xlf::controller {

DieDispatcher::DieDispatcher(const DispatchConfig& config) : config_(config) {
  XLF_EXPECT(config.channels >= 1);
  XLF_EXPECT(config.dies_per_channel >= 1);
  const std::size_t dies =
      static_cast<std::size_t>(config.channels) * config.dies_per_channel;
  die_free_.assign(dies, Seconds{0.0});
  die_busy_.assign(dies, Seconds{0.0});
  channel_free_.assign(config.channels, Seconds{0.0});
  channel_busy_.assign(config.channels, Seconds{0.0});
}

std::size_t DieDispatcher::channel_of(std::size_t die) const {
  XLF_EXPECT(die < die_free_.size());
  return die % channel_free_.size();
}

DispatchSlot DieDispatcher::submit_write(std::size_t die, Seconds arrival,
                                         Seconds io_time, Seconds cell_time) {
  XLF_EXPECT(die < die_free_.size());
  const std::size_t channel = channel_of(die);
  // The inbound burst needs channel and die together (the die's page
  // buffer is the burst target), then programming holds only the die.
  const Seconds start =
      std::max({arrival, die_free_[die], channel_free_[channel]});
  const Seconds burst_done = start + io_time;
  const Seconds completion = burst_done + cell_time;
  channel_free_[channel] = burst_done;
  channel_busy_[channel] += io_time;
  die_free_[die] = completion;
  die_busy_[die] += completion - start;
  return DispatchSlot{start, completion, completion - arrival};
}

DispatchSlot DieDispatcher::submit_read(std::size_t die, Seconds arrival,
                                        Seconds io_time, Seconds cell_time) {
  XLF_EXPECT(die < die_free_.size());
  const std::size_t channel = channel_of(die);
  const Seconds start = std::max(arrival, die_free_[die]);
  const Seconds sensed = start + cell_time;
  // The outbound burst waits for the channel; the die holds its data
  // until the burst drains it.
  const Seconds burst_start = std::max(sensed, channel_free_[channel]);
  const Seconds completion = burst_start + io_time;
  channel_free_[channel] = completion;
  channel_busy_[channel] += io_time;
  die_free_[die] = completion;
  die_busy_[die] += completion - start;
  return DispatchSlot{start, completion, completion - arrival};
}

void DieDispatcher::reset() {
  std::fill(die_free_.begin(), die_free_.end(), Seconds{0.0});
  std::fill(die_busy_.begin(), die_busy_.end(), Seconds{0.0});
  std::fill(channel_free_.begin(), channel_free_.end(), Seconds{0.0});
  std::fill(channel_busy_.begin(), channel_busy_.end(), Seconds{0.0});
}

}  // namespace xlf::controller
