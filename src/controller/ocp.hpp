// OCP-style socket between the on-chip interconnect and the memory
// controller (paper Fig. 1). The network is much faster than the
// flash device, so requests are modelled at the transaction level:
// a fixed network traversal latency plus a burst transfer time into
// or out of the controller's page buffer.
#pragma once

#include <cstdint>

#include "src/util/units.hpp"

namespace xlf::controller {

enum class OcpCommand {
  kRead,         // page read request
  kWrite,        // page write request (with data burst)
  kConfigRead,   // register read
  kConfigWrite,  // register write
};

struct OcpRequest {
  OcpCommand command = OcpCommand::kRead;
  std::uint64_t address = 0;
  std::uint32_t bytes = 0;  // burst size; 4 for config accesses
};

struct OcpConfig {
  // One-way network traversal (router hops + arbitration).
  Seconds network_latency = Seconds::micros(0.5);
  // Socket data width and clock: 32-bit OCP at 200 MHz.
  unsigned data_width_bits = 32;
  Hertz clock = Hertz::megahertz(200.0);
};

class OcpSocket {
 public:
  explicit OcpSocket(const OcpConfig& config);

  const OcpConfig& config() const { return config_; }

  // Time for the request (and its data phase) to cross the socket.
  Seconds transfer_time(const OcpRequest& request) const;
  // Burst-only component.
  Seconds burst_time(std::uint32_t bytes) const;

  // Traffic accounting.
  std::uint64_t requests_served() const { return requests_; }
  std::uint64_t bytes_moved() const { return bytes_; }
  void record(const OcpRequest& request);

 private:
  OcpConfig config_;
  std::uint64_t requests_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace xlf::controller
