// Command/status register file of the memory controller (paper
// Fig. 1): configuration commands arriving over the OCP socket land
// here and drive the core controller; status and reliability feedback
// are read back the same way. The register map is the hardware-style
// face of the controller's configuration state.
#pragma once

#include <cstdint>

#include "src/nand/aging.hpp"

namespace xlf::controller {

enum class RegisterId : std::uint32_t {
  kControl = 0x00,        // bit0: controller enable
  kEccCapability = 0x04,  // correction capability t
  kProgramAlgo = 0x08,    // 0 = ISPP-SV, 1 = ISPP-DV
  kStatus = 0x0C,         // bit0: busy, bit1: last op error
  kCorrectedBits = 0x10,  // running corrected-bit counter
  kDecodedPages = 0x14,   // running decoded-page counter
  kUncorrectable = 0x18,  // running uncorrectable-page counter
  kUberTargetExp = 0x1C,  // UBER target as -log10 (e.g. 11 -> 1e-11)
};

class RegisterFile {
 public:
  RegisterFile();

  // Raw bus access (configuration commands from the interconnect).
  std::uint32_t read(RegisterId reg) const;
  void write(RegisterId reg, std::uint32_t value);

  // Typed views used by the core controller.
  bool enabled() const;
  unsigned ecc_capability() const;
  void set_ecc_capability(unsigned t);
  nand::ProgramAlgorithm program_algorithm() const;
  void set_program_algorithm(nand::ProgramAlgorithm algo);
  bool busy() const;
  void set_busy(bool busy);
  void set_error(bool error);
  double uber_target() const;

  // Reliability feedback counters (read by the reliability manager
  // and the host).
  void record_decode(unsigned corrected_bits, bool uncorrectable);
  std::uint32_t corrected_bits() const;
  std::uint32_t decoded_pages() const;
  std::uint32_t uncorrectable_pages() const;
  void clear_counters();

 private:
  std::uint32_t control_ = 1;
  std::uint32_t ecc_capability_ = 3;
  std::uint32_t program_algo_ = 0;
  std::uint32_t status_ = 0;
  std::uint32_t corrected_bits_ = 0;
  std::uint32_t decoded_pages_ = 0;
  std::uint32_t uncorrectable_ = 0;
  std::uint32_t uber_target_exp_ = 11;
};

}  // namespace xlf::controller
