#include "src/controller/ocp.hpp"

#include "src/util/expect.hpp"

namespace xlf::controller {

OcpSocket::OcpSocket(const OcpConfig& config) : config_(config) {
  XLF_EXPECT(config_.data_width_bits >= 8 && config_.data_width_bits % 8 == 0);
  XLF_EXPECT(config_.clock.value() > 0.0);
}

Seconds OcpSocket::burst_time(std::uint32_t bytes) const {
  const double beats =
      static_cast<double>(bytes) * 8.0 / config_.data_width_bits;
  return config_.clock.period() * beats;
}

Seconds OcpSocket::transfer_time(const OcpRequest& request) const {
  switch (request.command) {
    case OcpCommand::kConfigRead:
    case OcpCommand::kConfigWrite:
      return config_.network_latency + config_.clock.period();
    case OcpCommand::kRead:
    case OcpCommand::kWrite:
      return config_.network_latency + burst_time(request.bytes);
  }
  XLF_EXPECT(false && "unknown command");
  return Seconds{0.0};
}

void OcpSocket::record(const OcpRequest& request) {
  ++requests_;
  if (request.command == OcpCommand::kRead ||
      request.command == OcpCommand::kWrite) {
    bytes_ += request.bytes;
  }
}

}  // namespace xlf::controller
