#include "src/util/bitvec.hpp"

#include <bit>

#include "src/util/expect.hpp"

namespace xlf {

bool BitVec::get(std::size_t i) const {
  XLF_EXPECT(i < bits_);
  return (words_[i / 64] >> (i % 64)) & 1u;
}

void BitVec::set(std::size_t i, bool value) {
  XLF_EXPECT(i < bits_);
  const std::uint64_t mask = 1ull << (i % 64);
  if (value) {
    words_[i / 64] |= mask;
  } else {
    words_[i / 64] &= ~mask;
  }
}

void BitVec::flip(std::size_t i) {
  XLF_EXPECT(i < bits_);
  words_[i / 64] ^= 1ull << (i % 64);
}

std::size_t BitVec::popcount() const {
  std::size_t count = 0;
  for (std::uint64_t w : words_) count += static_cast<std::size_t>(std::popcount(w));
  return count;
}

std::size_t BitVec::hamming_distance(const BitVec& other) const {
  XLF_EXPECT(bits_ == other.bits_);
  std::size_t count = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    count += static_cast<std::size_t>(std::popcount(words_[i] ^ other.words_[i]));
  }
  return count;
}

std::vector<std::size_t> BitVec::set_positions() const {
  std::vector<std::size_t> out;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      // Bounded by the popcount of the (page-sized) vector.
      out.push_back(w * 64 + static_cast<std::size_t>(bit));  // xlf-lint: allow(hot-alloc)
      word &= word - 1;
    }
  }
  return out;
}

BitVec& BitVec::operator^=(const BitVec& other) {
  XLF_EXPECT(bits_ == other.bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

bool BitVec::operator==(const BitVec& other) const {
  return bits_ == other.bits_ && words_ == other.words_;
}

void BitVec::clear() {
  for (auto& w : words_) w = 0;
}

BitVec BitVec::slice(std::size_t offset, std::size_t count) const {
  XLF_EXPECT(offset + count <= bits_);
  BitVec out(count);
  // Word-aligned fast path covers the common page/parity splits.
  if (offset % 64 == 0) {
    const std::size_t first = offset / 64;
    for (std::size_t w = 0; w < out.words_.size(); ++w) {
      out.words_[w] = words_[first + w];
    }
    out.mask_tail();
    return out;
  }
  for (std::size_t i = 0; i < count; ++i) out.set(i, get(offset + i));
  return out;
}

void BitVec::insert(std::size_t offset, const BitVec& src) {
  XLF_EXPECT(offset + src.bits_ <= bits_);
  if (offset % 64 == 0 && src.bits_ % 64 == 0) {
    const std::size_t first = offset / 64;
    for (std::size_t w = 0; w < src.words_.size(); ++w) {
      words_[first + w] = src.words_[w];
    }
    return;
  }
  for (std::size_t i = 0; i < src.bits_; ++i) set(offset + i, src.get(i));
}

std::uint8_t BitVec::byte(std::size_t i) const {
  XLF_EXPECT(8 * i < bits_);
  return static_cast<std::uint8_t>(words_[i / 8] >> ((i % 8) * 8));
}

void BitVec::set_byte(std::size_t i, std::uint8_t value) {
  XLF_EXPECT(8 * i < bits_);
  const std::size_t w = i / 8;
  const unsigned shift = (i % 8) * 8;
  words_[w] = (words_[w] & ~(0xFFull << shift)) |
              (static_cast<std::uint64_t>(value) << shift);
  mask_tail();
}

void BitVec::mask_tail() {
  const std::size_t tail = bits_ % 64;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (1ull << tail) - 1;
  }
}

}  // namespace xlf
