#include "src/util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/expect.hpp"

namespace xlf {

void RunningStats::add(double x) {
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  // Extrema carry +/-infinity identities, so an empty side is inert.
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  if (other.n_ == 0) return;
  if (n_ == 0) {
    n_ = other.n_;
    mean_ = other.mean_;
    m2_ = other.m2_;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
}

double RunningStats::mean() const { return mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }
double RunningStats::min() const {
  return n_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
}
double RunningStats::max() const {
  return n_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  XLF_EXPECT(hi > lo);
  XLF_EXPECT(bins > 0);
}

void Histogram::add(double x) {
  const double unit = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<long long>(unit * static_cast<double>(counts_.size()));
  idx = std::clamp<long long>(idx, 0, static_cast<long long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_center(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(i) + 0.5) * width;
}

double Histogram::quantile(double q) const {
  XLF_EXPECT(q >= 0.0 && q <= 1.0);
  XLF_EXPECT(total_ > 0);
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double within =
          counts_[i] == 0 ? 0.0 : (target - cumulative) / static_cast<double>(counts_[i]);
      return lo_ + (static_cast<double>(i) + within) * width;
    }
    cumulative = next;
  }
  return hi_;
}

double percentile(std::vector<double> samples, double q) {
  XLF_EXPECT(!samples.empty());
  XLF_EXPECT(q >= 0.0 && q <= 1.0);
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lower = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lower);
  if (lower + 1 >= samples.size()) return samples.back();
  return samples[lower] * (1.0 - frac) + samples[lower + 1] * frac;
}

double rmse(const std::vector<double>& a, const std::vector<double>& b) {
  XLF_EXPECT(a.size() == b.size());
  XLF_EXPECT(!a.empty());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(a.size()));
}

LinearFit fit_line(const std::vector<double>& x, const std::vector<double>& y) {
  XLF_EXPECT(x.size() == y.size());
  XLF_EXPECT(x.size() >= 2);
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  LinearFit fit;
  const double denom = n * sxx - sx * sx;
  XLF_EXPECT(denom != 0.0);
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double r = y[i] - (fit.slope * x[i] + fit.intercept);
    ss_res += r * r;
  }
  fit.r2 = ss_tot <= 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

double q_function(double x) {
  return 0.5 * std::erfc(x / std::sqrt(2.0));
}

double q_function_inverse(double p) {
  XLF_EXPECT(p > 0.0 && p < 1.0);
  // Bisection on the monotone Q; the models only need ~1e-12 accuracy
  // in x, reached in ~60 iterations over [-40, 40].
  double lo = -40.0, hi = 40.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (q_function(mid) > p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

std::vector<double> log_space(double lo, double hi, std::size_t points) {
  XLF_EXPECT(lo > 0.0 && hi > lo);
  XLF_EXPECT(points >= 2);
  std::vector<double> grid(points);
  const double llo = std::log10(lo);
  const double lhi = std::log10(hi);
  for (std::size_t i = 0; i < points; ++i) {
    const double f = static_cast<double>(i) / static_cast<double>(points - 1);
    grid[i] = std::pow(10.0, llo + f * (lhi - llo));
  }
  return grid;
}

}  // namespace xlf
