#include "src/util/units.hpp"

#include <cmath>
#include <cstdio>

namespace xlf {
namespace {

std::string scaled(double value, const char* unit) {
  struct Prefix {
    double scale;
    const char* name;
  };
  static constexpr Prefix kPrefixes[] = {
      {1e9, "G"}, {1e6, "M"}, {1e3, "k"}, {1.0, ""},
      {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"},
  };
  const double mag = std::fabs(value);
  const Prefix* chosen = &kPrefixes[3];  // plain unit by default
  if (mag != 0.0) {
    for (const Prefix& p : kPrefixes) {
      if (mag >= p.scale) {
        chosen = &p;
        break;
      }
    }
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3g %s%s", value / chosen->scale,
                chosen->name, unit);
  return buf;
}

}  // namespace

std::string to_string(Seconds t) { return scaled(t.value(), "s"); }
std::string to_string(Volts u) { return scaled(u.value(), "V"); }
std::string to_string(Watts p) { return scaled(p.value(), "W"); }
std::string to_string(Joules e) { return scaled(e.value(), "J"); }

std::string to_string(BytesPerSecond bw) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f MiB/s", bw.mib());
  return buf;
}

}  // namespace xlf
