#include "src/util/logmath.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/expect.hpp"

namespace xlf {

double log_factorial(std::uint64_t n) {
#if defined(__GLIBC__)
  // std::lgamma writes the process-global `signgam`, which is a data
  // race when sweep workers evaluate UBER concurrently (TSan report).
  // lgamma_r computes the identical value and hands the sign to a
  // caller-local instead.
  int sign = 0;
  return lgamma_r(static_cast<double>(n) + 1.0, &sign);
#else
  return std::lgamma(static_cast<double>(n) + 1.0);
#endif
}

double log_choose(std::uint64_t n, std::uint64_t k) {
  XLF_EXPECT(k <= n);
  return log_factorial(n) - log_factorial(k) - log_factorial(n - k);
}

double log1m(double p) {
  XLF_EXPECT(p < 1.0);
  return std::log1p(-p);
}

double log_binomial_pmf(std::uint64_t n, std::uint64_t k, double p) {
  XLF_EXPECT(p > 0.0 && p < 1.0);
  XLF_EXPECT(k <= n);
  return log_choose(n, k) + static_cast<double>(k) * std::log(p) +
         static_cast<double>(n - k) * log1m(p);
}

double log_add(double a, double b) {
  if (a == -std::numeric_limits<double>::infinity()) return b;
  if (b == -std::numeric_limits<double>::infinity()) return a;
  const double hi = std::max(a, b);
  const double lo = std::min(a, b);
  return hi + std::log1p(std::exp(lo - hi));
}

double log_binomial_tail_geq(std::uint64_t n, std::uint64_t k, double p) {
  XLF_EXPECT(p > 0.0 && p < 1.0);
  if (k == 0) return 0.0;  // P >= 0 errors is certain
  if (k > n) return -std::numeric_limits<double>::infinity();
  // Sum pmf terms upward from k. Terms decay geometrically once k is
  // past the mean, so stop when a term no longer moves the total.
  double total = -std::numeric_limits<double>::infinity();
  for (std::uint64_t j = k; j <= n; ++j) {
    const double term = log_binomial_pmf(n, j, p);
    const double next = log_add(total, term);
    if (j > k && next - total < 1e-15) {
      total = next;
      break;
    }
    total = next;
  }
  return total;
}

double safe_exp(double x) {
  if (x < -700.0) return 0.0;
  return std::exp(x);
}

}  // namespace xlf
