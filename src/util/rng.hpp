// Deterministic random number generation for Monte-Carlo simulation.
//
// Every stochastic component (cell variability, injection granularity,
// error injection, workload arrival) draws from an Rng seeded
// explicitly, so each experiment is reproducible bit-for-bit and each
// test can pin its expectations. The generator is xoshiro256**, seeded
// through SplitMix64 — small, fast and statistically solid, and, unlike
// std::mt19937, identical across standard library implementations.
#pragma once

#include <array>
#include <cstdint>

namespace xlf {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  // UniformRandomBitGenerator interface.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  // Uniform double in [0, 1).
  double uniform();
  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [0, bound).
  std::uint64_t below(std::uint64_t bound);
  // Standard normal via Box-Muller (cached second draw).
  double gaussian();
  double gaussian(double mean, double sigma);
  // Bernoulli trial.
  bool chance(double p);
  // Poisson draw (Knuth for small lambda, normal approximation above).
  std::uint64_t poisson(double lambda);

  // Derive an independent stream, e.g. one per cell/page/worker.
  Rng fork();

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace xlf
