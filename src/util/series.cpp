#include "src/util/series.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <stdexcept>

#include "src/util/expect.hpp"

namespace xlf {

SeriesTable::SeriesTable(std::string x_label) : x_label_(std::move(x_label)) {}

std::size_t SeriesTable::add_series(std::string label) {
  XLF_EXPECT(xs_.empty());  // declare columns before adding rows
  labels_.push_back(std::move(label));
  return labels_.size() - 1;
}

void SeriesTable::add_row(double x, const std::vector<double>& values) {
  XLF_EXPECT(values.size() == labels_.size());
  xs_.push_back(x);
  values_.push_back(values);
}

double SeriesTable::value_at(std::size_t row, std::size_t series) const {
  return values_.at(row).at(series);
}

void SeriesTable::print(std::ostream& os, bool scientific) const {
  constexpr int kWidth = 16;
  os << std::left << std::setw(kWidth) << x_label_;
  for (const auto& label : labels_) os << std::left << std::setw(kWidth) << label;
  os << '\n';
  for (std::size_t row = 0; row < xs_.size(); ++row) {
    os << std::left << std::setw(kWidth) << std::setprecision(6) << std::defaultfloat
       << xs_[row];
    for (std::size_t s = 0; s < labels_.size(); ++s) {
      if (scientific) {
        os << std::left << std::setw(kWidth) << std::setprecision(4)
           << std::scientific << values_[row][s];
      } else {
        os << std::left << std::setw(kWidth) << std::setprecision(4)
           << std::defaultfloat << values_[row][s];
      }
    }
    os << std::defaultfloat << '\n';
  }
}

void SeriesTable::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open CSV output: " + path);
  out << x_label_;
  for (const auto& label : labels_) out << ',' << label;
  out << '\n';
  out << std::setprecision(12);
  for (std::size_t row = 0; row < xs_.size(); ++row) {
    out << xs_[row];
    for (std::size_t s = 0; s < labels_.size(); ++s) out << ',' << values_[row][s];
    out << '\n';
  }
}

void print_banner(std::ostream& os, const std::string& figure,
                  const std::string& caption) {
  os << "==================================================================\n"
     << figure << " — " << caption << '\n'
     << "==================================================================\n";
}

}  // namespace xlf
