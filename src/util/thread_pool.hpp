// Minimal blocking fork-join pool for the explore engine.
//
// Deliberately work-stealing-free: a parallel_for publishes one job
// whose shared atomic index every worker (plus the calling thread)
// fetch-adds. Tasks therefore run exactly once each, in no guaranteed
// order — determinism is the *caller's* job, achieved by writing task
// i's result into slot i and reducing the slots serially afterwards.
// With `threads == 1` no workers exist and everything runs inline on
// the calling thread, which is the serial reference the
// parallel-equals-serial tests compare against.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace xlf {

class ThreadPool {
 public:
  // Total concurrency including the calling thread: `threads - 1`
  // background workers are spawned. 0 selects the hardware count.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned thread_count() const { return threads_; }

  // Invoke body(i) exactly once for every i in [0, count), spread over
  // the pool; blocks until all complete. The first exception thrown by
  // any task is rethrown here (remaining tasks still drain, so the
  // pool stays reusable). Not reentrant: body must not call
  // parallel_for on the same pool.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

 private:
  // All mutable state of one parallel_for, bundled so that a worker
  // waking late for an already-finished job holds a shared_ptr to
  // *that* job: its private index counter is exhausted, so the worker
  // retires without ever touching a successor job's body or indices.
  struct Job {
    const std::function<void(std::size_t)>* body = nullptr;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::size_t completed = 0;        // guarded by the pool mutex
    std::exception_ptr first_error;   // guarded by the pool mutex
  };

  void worker_loop();
  // Pull indices until `job` is exhausted; report completions.
  void drain(Job& job);

  unsigned threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable job_done_;
  bool shutting_down_ = false;
  bool job_running_ = false;
  // Bumps once per parallel_for so sleeping workers can tell a new
  // job from the one they just finished.
  std::uint64_t generation_ = 0;
  std::shared_ptr<Job> job_;  // guarded by the pool mutex
};

}  // namespace xlf
