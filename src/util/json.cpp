#include "src/util/json.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace xlf {

const char* JsonValue::to_string(Type type) {
  switch (type) {
    case Type::kNull:
      return "null";
    case Type::kBool:
      return "bool";
    case Type::kNumber:
      return "number";
    case Type::kString:
      return "string";
    case Type::kArray:
      return "array";
    case Type::kObject:
      return "object";
  }
  return "?";
}

// xlf: cold — config-parse error path; throws, never returns to the
// event loop.
void JsonValue::require(Type type) const {
  if (type_ != type) {
    throw std::invalid_argument(std::string("JSON value is ") +
                                to_string(type_) + ", expected " +
                                to_string(type));
  }
}

bool JsonValue::as_bool() const {
  require(Type::kBool);
  return bool_;
}

double JsonValue::as_number() const {
  require(Type::kNumber);
  return number_;
}

const std::string& JsonValue::as_string() const {
  require(Type::kString);
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  require(Type::kArray);
  return items_;
}

const std::map<std::string, JsonValue>& JsonValue::members() const {
  require(Type::kObject);
  return members_;
}

bool JsonValue::has(const std::string& key) const {
  require(Type::kObject);
  return members_.count(key) != 0;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  require(Type::kObject);
  const auto it = members_.find(key);
  if (it == members_.end()) {
    throw std::invalid_argument("missing JSON key '" + key + "'");
  }
  return it->second;
}

std::vector<std::string> JsonValue::keys() const {
  require(Type::kObject);
  std::vector<std::string> out;
  out.reserve(members_.size());
  for (const auto& [key, value] : members_) out.push_back(key);
  return out;
}

// Recursive-descent parser over the raw text. Tracks position for
// error messages; all fail() throws carry line:column.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  // xlf: cold — parse-error path, [[noreturn]].
  [[noreturn]] void fail(const std::string& what) const {
    std::size_t line = 1, column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    throw std::invalid_argument("JSON error at " + std::to_string(line) + ":" +
                                std::to_string(column) + ": " + what);
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  char next() {
    if (eof()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void skip_whitespace() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }

  void expect(char c) {
    if (eof() || peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  void expect_literal(const char* literal) {
    for (const char* p = literal; *p != '\0'; ++p) {
      if (eof() || peek() != *p) {
        fail(std::string("expected literal '") + literal + "'");
      }
      ++pos_;
    }
  }

  JsonValue parse_value() {
    skip_whitespace();
    if (eof()) fail("unexpected end of input");
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return parse_string_value();
      case 't': {
        expect_literal("true");
        JsonValue v;
        v.type_ = JsonValue::Type::kBool;
        v.bool_ = true;
        return v;
      }
      case 'f': {
        expect_literal("false");
        JsonValue v;
        v.type_ = JsonValue::Type::kBool;
        v.bool_ = false;
        return v;
      }
      case 'n': {
        expect_literal("null");
        JsonValue v;
        v.type_ = JsonValue::Type::kNull;
        return v;
      }
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type_ = JsonValue::Type::kObject;
    skip_whitespace();
    if (!eof() && peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_whitespace();
      const std::string key = parse_string();
      skip_whitespace();
      expect(':');
      if (!v.members_.emplace(key, parse_value()).second) {
        fail("duplicate key '" + key + "'");
      }
      skip_whitespace();
      if (eof()) fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type_ = JsonValue::Type::kArray;
    skip_whitespace();
    if (!eof() && peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items_.push_back(parse_value());
      skip_whitespace();
      if (eof()) fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue parse_string_value() {
    JsonValue v;
    v.type_ = JsonValue::Type::kString;
    v.string_ = parse_string();
    return v;
  }

  std::string parse_string() {
    if (eof() || peek() != '"') fail("expected string");
    ++pos_;
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char escape = next();
      switch (escape) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = next();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
            }
          }
          if (code >= 0xD800 && code <= 0xDFFF) {
            fail("surrogate pairs are not supported");
          }
          // UTF-8 encode the BMP code point.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("invalid escape sequence");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      fail("invalid value");
    }
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("digit expected after decimal point");
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("digit expected in exponent");
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    JsonValue v;
    v.type_ = JsonValue::Type::kNumber;
    v.number_ = std::strtod(text_.c_str() + start, nullptr);
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(const std::string& text) {
  return JsonParser(text).parse_document();
}

}  // namespace xlf
