// Fixed-length bit vector backed by packed 64-bit words.
//
// Pages (32768 data bits), codewords (~33808 bits) and error patterns
// are all BitVecs. Unlike Gf2Poly this type has an explicit length, so
// trailing zero bits are meaningful (a codeword keeps its length even
// when its top bits are zero).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace xlf {

class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t bits) : bits_(bits), words_((bits + 63) / 64, 0) {}

  std::size_t size() const { return bits_; }
  bool empty() const { return bits_ == 0; }

  bool get(std::size_t i) const;
  void set(std::size_t i, bool value);
  void flip(std::size_t i);

  // Number of set bits.
  std::size_t popcount() const;
  // Number of positions where *this and other differ; sizes must match.
  std::size_t hamming_distance(const BitVec& other) const;
  // Indices of set bits, ascending.
  std::vector<std::size_t> set_positions() const;

  // XOR-accumulate other into this; sizes must match.
  BitVec& operator^=(const BitVec& other);
  bool operator==(const BitVec& other) const;

  void clear();

  // Extract `count` bits starting at `offset` into a new BitVec.
  BitVec slice(std::size_t offset, std::size_t count) const;
  // Overwrite bits [offset, offset+src.size()) with src.
  void insert(std::size_t offset, const BitVec& src);

  const std::vector<std::uint64_t>& words() const { return words_; }
  std::uint64_t word(std::size_t w) const { return words_[w]; }

  // Byte accessors for interfacing page buffers; byte i covers bits
  // [8i, 8i+8) little-endian within the vector.
  std::uint8_t byte(std::size_t i) const;
  void set_byte(std::size_t i, std::uint8_t value);

 private:
  void mask_tail();
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace xlf
