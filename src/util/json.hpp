// Minimal JSON reader for declarative experiment specs.
//
// Self-contained recursive-descent parser (the container bakes no
// third-party JSON dependency) covering the full RFC 8259 value
// grammar: objects, arrays, strings with escapes (\uXXXX for the
// basic multilingual plane), numbers, booleans, null. Errors throw
// std::invalid_argument with the 1-based line:column of the offending
// character.
//
// The accessor API is geared toward config parsing: typed as_*()
// getters throw on type mismatch naming the expected and actual type,
// object lookups throw naming the missing key, and keys() exposes the
// member list so callers can reject unknown fields (typo detection in
// user-authored specs).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace xlf {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  static const char* to_string(Type type);

  // Parses exactly one JSON document; trailing non-whitespace is an
  // error.
  static JsonValue parse(const std::string& text);

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  // Typed accessors; throw std::invalid_argument on mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;       // array
  const std::map<std::string, JsonValue>& members() const;  // object

  // Object conveniences.
  bool has(const std::string& key) const;
  // Member lookup; throws naming the key when absent.
  const JsonValue& at(const std::string& key) const;
  std::vector<std::string> keys() const;

 private:
  friend class JsonParser;

  void require(Type type) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::map<std::string, JsonValue> members_;
};

}  // namespace xlf
