#include "src/util/log.hpp"

#include <iostream>

namespace xlf {
namespace {

LogLevel g_level = LogLevel::kWarn;
std::string* g_capture = nullptr;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }
void set_log_capture(std::string* sink) { g_capture = sink; }

void log_message(LogLevel level, const std::string& msg) {
  if (level < g_level) return;
  std::string line = std::string("[xlf ") + level_name(level) + "] " + msg + "\n";
  if (g_capture != nullptr) {
    *g_capture += line;
  } else {
    std::cerr << line;
  }
}

}  // namespace xlf
