// Strong unit types for the physical quantities the models trade in.
//
// The paper mixes microseconds (ECC latency), milliseconds (program
// time), volts (ISPP staircase), milliwatts (ECC power) and watts (NAND
// power); a silent unit slip moves a result by three orders of
// magnitude, which is exactly the kind of error the figures would not
// survive. Each quantity is therefore a distinct value type holding a
// double in SI base units, with only dimensionally meaningful
// operations defined.
#pragma once

#include <compare>
#include <string>

namespace xlf {

// CRTP base giving every unit the same affine-space arithmetic
// (add/sub/scale/ratio/compare) without allowing cross-unit mixing.
template <class Derived>
struct UnitBase {
  double v = 0.0;

  constexpr UnitBase() = default;
  constexpr explicit UnitBase(double value) : v(value) {}

  constexpr double value() const { return v; }

  friend constexpr Derived operator+(Derived a, Derived b) { return Derived{a.v + b.v}; }
  friend constexpr Derived operator-(Derived a, Derived b) { return Derived{a.v - b.v}; }
  friend constexpr Derived operator*(Derived a, double s) { return Derived{a.v * s}; }
  friend constexpr Derived operator*(double s, Derived a) { return Derived{a.v * s}; }
  friend constexpr Derived operator/(Derived a, double s) { return Derived{a.v / s}; }
  // Ratio of two like quantities is dimensionless.
  friend constexpr double operator/(Derived a, Derived b) { return a.v / b.v; }
  friend constexpr auto operator<=>(Derived a, Derived b) { return a.v <=> b.v; }
  friend constexpr bool operator==(Derived a, Derived b) { return a.v == b.v; }

  Derived& operator+=(Derived o) { v += o.v; return self(); }
  Derived& operator-=(Derived o) { v -= o.v; return self(); }

 private:
  Derived& self() { return static_cast<Derived&>(*this); }
};

struct Seconds : UnitBase<Seconds> {
  using UnitBase::UnitBase;
  static constexpr Seconds micros(double us) { return Seconds{us * 1e-6}; }
  static constexpr Seconds millis(double ms) { return Seconds{ms * 1e-3}; }
  constexpr double micros() const { return v * 1e6; }
  constexpr double millis() const { return v * 1e3; }
};

struct Volts : UnitBase<Volts> {
  using UnitBase::UnitBase;
  static constexpr Volts millivolts(double mv) { return Volts{mv * 1e-3}; }
  constexpr double millivolts() const { return v * 1e3; }
};

struct Amperes : UnitBase<Amperes> {
  using UnitBase::UnitBase;
  static constexpr Amperes milliamps(double ma) { return Amperes{ma * 1e-3}; }
  constexpr double milliamps() const { return v * 1e3; }
};

struct Watts : UnitBase<Watts> {
  using UnitBase::UnitBase;
  static constexpr Watts milliwatts(double mw) { return Watts{mw * 1e-3}; }
  constexpr double milliwatts() const { return v * 1e3; }
};

struct Joules : UnitBase<Joules> {
  using UnitBase::UnitBase;
  static constexpr Joules microjoules(double uj) { return Joules{uj * 1e-6}; }
  constexpr double microjoules() const { return v * 1e6; }
};

struct Hertz : UnitBase<Hertz> {
  using UnitBase::UnitBase;
  static constexpr Hertz megahertz(double mhz) { return Hertz{mhz * 1e6}; }
  constexpr double megahertz() const { return v * 1e-6; }
  // One clock period.
  constexpr Seconds period() const { return Seconds{1.0 / v}; }
};

// Data throughput; stored in bytes per second.
struct BytesPerSecond : UnitBase<BytesPerSecond> {
  using UnitBase::UnitBase;
  static constexpr BytesPerSecond mib(double mibps) {
    return BytesPerSecond{mibps * 1024.0 * 1024.0};
  }
  constexpr double mib() const { return v / (1024.0 * 1024.0); }
};

// Cross-dimension products/quotients that the models actually need.
constexpr Joules operator*(Watts p, Seconds t) { return Joules{p.v * t.v}; }
constexpr Joules operator*(Seconds t, Watts p) { return Joules{p.v * t.v}; }
constexpr Watts operator/(Joules e, Seconds t) { return Watts{e.v / t.v}; }
constexpr Seconds operator/(Joules e, Watts p) { return Seconds{e.v / p.v}; }
constexpr Watts operator*(Volts u, Amperes i) { return Watts{u.v * i.v}; }
constexpr Watts operator*(Amperes i, Volts u) { return Watts{u.v * i.v}; }
constexpr Amperes operator/(Watts p, Volts u) { return Amperes{p.v / u.v}; }

// Human-readable rendering with auto-scaled SI prefix, e.g. "159.3 us",
// "7.5 mW". Used by benches and examples; keep out of hot paths.
std::string to_string(Seconds t);
std::string to_string(Volts u);
std::string to_string(Watts p);
std::string to_string(Joules e);
std::string to_string(BytesPerSecond bw);

namespace literals {
constexpr Seconds operator""_s(long double x) { return Seconds{static_cast<double>(x)}; }
constexpr Seconds operator""_ms(long double x) { return Seconds{static_cast<double>(x) * 1e-3}; }
constexpr Seconds operator""_us(long double x) { return Seconds{static_cast<double>(x) * 1e-6}; }
constexpr Seconds operator""_ns(long double x) { return Seconds{static_cast<double>(x) * 1e-9}; }
constexpr Volts operator""_V(long double x) { return Volts{static_cast<double>(x)}; }
constexpr Volts operator""_mV(long double x) { return Volts{static_cast<double>(x) * 1e-3}; }
constexpr Watts operator""_W(long double x) { return Watts{static_cast<double>(x)}; }
constexpr Watts operator""_mW(long double x) { return Watts{static_cast<double>(x) * 1e-3}; }
constexpr Hertz operator""_MHz(long double x) { return Hertz{static_cast<double>(x) * 1e6}; }
}  // namespace literals

}  // namespace xlf
