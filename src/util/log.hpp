// Minimal leveled logger.
//
// The simulator and the reliability manager emit occasional diagnostic
// lines (reconfiguration events, calibration summaries). A global
// level keeps example/bench output clean by default while tests can
// raise verbosity when debugging.
#pragma once

#include <sstream>
#include <string>

namespace xlf {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);

// Sink for captured output in tests; nullptr restores stderr.
void set_log_capture(std::string* sink);

void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  template <class T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace xlf
