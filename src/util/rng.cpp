#include "src/util/rng.hpp"

#include <cmath>

#include "src/util/expect.hpp"

namespace xlf {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  XLF_EXPECT(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::below(std::uint64_t bound) {
  XLF_EXPECT(bound > 0);
  // Rejection sampling to remove modulo bias.
  const std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod bound
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::gaussian(double mean, double sigma) {
  XLF_EXPECT(sigma >= 0.0);
  return mean + sigma * gaussian();
}

bool Rng::chance(double p) {
  XLF_EXPECT(p >= 0.0 && p <= 1.0);
  return uniform() < p;
}

std::uint64_t Rng::poisson(double lambda) {
  XLF_EXPECT(lambda >= 0.0);
  if (lambda == 0.0) return 0;
  if (lambda < 30.0) {
    const double limit = std::exp(-lambda);
    std::uint64_t k = 0;
    double product = uniform();
    while (product > limit) {
      ++k;
      product *= uniform();
    }
    return k;
  }
  // Normal approximation with continuity correction for large lambda.
  // The cast must be range-checked on both sides: converting a double
  // that is negative (left tail) or >= 2^64 (lambda near the integer
  // range) to uint64_t is undefined behaviour, not a saturation.
  const double draw = gaussian(lambda, std::sqrt(lambda)) + 0.5;
  if (draw <= 0.0) return 0;
  if (draw >= 18446744073709551616.0 /* 2^64 */) return ~0ull;
  return static_cast<std::uint64_t>(draw);
}

Rng Rng::fork() { return Rng(next()); }

}  // namespace xlf
