// Log-domain combinatorics.
//
// Eq. (1) of the paper evaluates binomial terms at n ~ 33808 and
// t up to 65; C(33808, 66) overflows double by hundreds of orders of
// magnitude, and the resulting UBERs span 1e-9 .. 1e-70. All the
// probability math therefore lives in natural-log space and only
// converts to linear at the edges (printing, comparisons against
// targets that are themselves converted to logs).
//
// Thread safety: every function here is called concurrently by sweep
// workers evaluating UBER, so none may touch process-global state —
// in particular lgamma's `signgam` global (log_factorial uses the
// reentrant lgamma_r on glibc; the TSan CI job guards this).
#pragma once

#include <cstdint>

namespace xlf {

// ln(n!) via lgamma.
double log_factorial(std::uint64_t n);

// ln C(n, k); requires k <= n.
double log_choose(std::uint64_t n, std::uint64_t k);

// ln[C(n,k) p^k (1-p)^(n-k)] — one binomial pmf term, p in (0,1).
double log_binomial_pmf(std::uint64_t n, std::uint64_t k, double p);

// ln P[X >= k] for X ~ Binomial(n, p), exact summation in log space.
// Used for the "exact tail" UBER variant that complements the paper's
// single-term approximation.
double log_binomial_tail_geq(std::uint64_t n, std::uint64_t k, double p);

// ln(exp(a) + exp(b)) without overflow.
double log_add(double a, double b);

// exp(x) clamped to 0 for very negative x instead of underflow noise.
double safe_exp(double x);

// log1p(-p) computed accurately also for p ~ 1.
double log1m(double p);

}  // namespace xlf
