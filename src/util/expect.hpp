// Contract-checking helpers (C++ Core Guidelines I.6/I.8 style).
//
// XLF_EXPECT      — precondition; throws std::invalid_argument on violation.
// XLF_EXPECT_MSG  — precondition with a caller-built message (use for
//                   configuration validation, where the error must name
//                   the offending field and its value).
// XLF_ENSURE      — postcondition/invariant; throws std::logic_error.
//
// All are always on: this library models hardware where a silent
// out-of-range configuration (e.g. t > tmax) corrupts every derived
// figure, so the cost of the checks is accepted even in release builds.
#pragma once

#include <stdexcept>
#include <string>

namespace xlf {

[[noreturn]] inline void contract_violation_expect(const char* cond,
                                                   const char* file, int line) {
  throw std::invalid_argument(std::string("precondition failed: ") + cond +
                              " at " + file + ":" + std::to_string(line));
}

[[noreturn]] inline void contract_violation_expect_msg(
    const std::string& message) {
  throw std::invalid_argument(message);
}

[[noreturn]] inline void contract_violation_ensure(const char* cond,
                                                   const char* file, int line) {
  throw std::logic_error(std::string("invariant failed: ") + cond + " at " +
                         file + ":" + std::to_string(line));
}

}  // namespace xlf

#define XLF_EXPECT(cond)                                          \
  do {                                                            \
    if (!(cond)) ::xlf::contract_violation_expect(#cond, __FILE__, __LINE__); \
  } while (false)

#define XLF_EXPECT_MSG(cond, message)                             \
  do {                                                            \
    if (!(cond)) ::xlf::contract_violation_expect_msg((message)); \
  } while (false)

#define XLF_ENSURE(cond)                                          \
  do {                                                            \
    if (!(cond)) ::xlf::contract_violation_ensure(#cond, __FILE__, __LINE__); \
  } while (false)
