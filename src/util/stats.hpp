// Streaming statistics and small fitting helpers used to characterise
// Monte-Carlo runs (threshold-voltage distributions, pulse counts,
// per-page error counts) and to validate model fits (Fig. 4 RMSE).
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace xlf {

// Welford running mean/variance; O(1) space, numerically stable.
// merge() is associative with add(): merging per-worker partials in a
// fixed order reproduces the serial accumulation exactly, which is what
// the parallel explore engine's deterministic reduction relies on.
class RunningStats {
 public:
  void add(double x);
  // Fold `other` into this; an empty side never disturbs the other's
  // mean, variance or extrema.
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const;
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  // Extrema of the samples seen; NaN while empty (no samples), so a
  // zero-request stream cannot masquerade as a measured 0.0 in
  // reports.
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  // +/-infinity identities: the extrema stay correct under any merge
  // order without special-casing an empty side.
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
// edge bins so the total count is preserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t total() const { return total_; }
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  double bin_center(std::size_t i) const;
  // Value below which `q` (0..1) of the mass lies, by linear
  // interpolation within the bin.
  double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

// Exact percentile of a sample vector (copies and sorts; test-scale).
double percentile(std::vector<double> samples, double q);

// Root-mean-square error between two equally sized series.
double rmse(const std::vector<double>& a, const std::vector<double>& b);

// Least-squares straight line y = slope*x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;
};
LinearFit fit_line(const std::vector<double>& x, const std::vector<double>& y);

// Standard normal upper-tail probability Q(x) = P(N(0,1) > x), and its
// inverse. Q underpins the distribution-overlap RBER model; the inverse
// is used to calibrate distribution sigmas from a target RBER.
double q_function(double x);
double q_function_inverse(double p);

// Log-spaced grid [lo, hi] with `points` samples, inclusive; the x-axes
// of every lifetime figure in the paper (P/E cycles 1e0..1e6).
std::vector<double> log_space(double lo, double hi, std::size_t points);

}  // namespace xlf
