// Tabular output for the benchmark harness.
//
// Every figure in the paper is a set of series over a shared x-axis;
// each bench binary assembles a Series table and renders it twice —
// an aligned ASCII table on stdout (what EXPERIMENTS.md quotes) and a
// CSV file for external plotting.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace xlf {

class SeriesTable {
 public:
  // `x_label` names the shared abscissa (e.g. "PE_cycles").
  explicit SeriesTable(std::string x_label);

  // Declare a series column; returns its index.
  std::size_t add_series(std::string label);

  // Append one x row; values must match the number of declared series.
  void add_row(double x, const std::vector<double>& values);

  std::size_t rows() const { return xs_.size(); }
  std::size_t series() const { return labels_.size(); }
  double x_at(std::size_t row) const { return xs_.at(row); }
  double value_at(std::size_t row, std::size_t series) const;
  const std::string& label(std::size_t series) const { return labels_.at(series); }

  // Aligned, human-readable rendering. `scientific` switches the value
  // format (RBER/UBER columns need exponents; percentages do not).
  void print(std::ostream& os, bool scientific = true) const;

  // RFC-4180-ish CSV with a header row.
  void write_csv(const std::string& path) const;

 private:
  std::string x_label_;
  std::vector<std::string> labels_;
  std::vector<double> xs_;
  std::vector<std::vector<double>> values_;  // values_[row][series]
};

// Helper for bench mains: prints a figure banner matching the paper
// numbering, e.g. banner("Figure 5", "RBER characterization ...").
void print_banner(std::ostream& os, const std::string& figure,
                  const std::string& caption);

}  // namespace xlf
