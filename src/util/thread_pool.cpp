#include "src/util/thread_pool.hpp"

#include "src/util/expect.hpp"

namespace xlf {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  threads_ = threads;
  workers_.reserve(threads_ - 1);
  for (unsigned i = 0; i + 1 < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::drain(Job& job) {
  // job.body stays valid while any index remains unaccounted: the
  // owning parallel_for cannot return (and release the functional)
  // before `completed` reaches `count`, which requires every fetched
  // index — including ours — to be reported below.
  std::size_t done_here = 0;
  std::exception_ptr error;
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.count) break;
    try {
      (*job.body)(i);
    } catch (...) {
      if (!error) error = std::current_exception();
    }
    ++done_here;
  }
  if (done_here > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    job.completed += done_here;
    if (error && !job.first_error) job.first_error = error;
    if (job.completed == job.count) job_done_.notify_all();
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] {
        return shutting_down_ || generation_ != seen_generation;
      });
      if (shutting_down_) return;
      // Snapshot the current job under the lock. It may already be
      // gone (finished before this worker woke) — then skip the round.
      seen_generation = generation_;
      job = job_;
    }
    if (job) drain(*job);
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  XLF_EXPECT(body != nullptr);
  if (workers_.empty()) {
    // Serial reference path: drain every task exactly like the pooled
    // path (side effects must not depend on the thread count), then
    // rethrow the first error.
    std::exception_ptr error;
    for (std::size_t i = 0; i < count; ++i) {
      try {
        body(i);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }
  // One control block per parallel batch, not per item.
  auto job = std::make_shared<Job>();  // xlf-lint: allow(hot-alloc)
  job->body = &body;
  job->count = count;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    XLF_EXPECT(!job_running_ && "parallel_for is not reentrant");
    job_running_ = true;
    job_ = job;
    ++generation_;
  }
  work_ready_.notify_all();
  drain(*job);
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    job_done_.wait(lock, [&] { return job->completed == job->count; });
    error = job->first_error;
    job_.reset();
    job_running_ = false;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace xlf
