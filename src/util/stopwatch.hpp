// The one sanctioned wall-clock site in src/. Everything the
// simulator reports is driven by simulated time (EventQueue seconds,
// FTL logical clock) and must be byte-identical across runs; the only
// legitimate reason to read the host's clock is a throughput read-out
// ABOUT the simulator — how many simulated commands per wall second —
// reported beside, never inside, the deterministic rows.
//
// Wrapping that read here keeps the no-wall-clock allow-list at
// exactly one line: callers use Stopwatch and never touch
// std::chrono clocks, so a new `steady_clock::now()` anywhere else in
// src/ is always a finding.
#pragma once

#include <chrono>

namespace xlf {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  // Wall seconds since construction or the last reset().
  double elapsed_seconds() const {
    const std::chrono::duration<double> wall = Clock::now() - start_;
    return wall.count();
  }

 private:
  using Clock = std::chrono::steady_clock;  // xlf-lint: allow(no-wall-clock)
  Clock::time_point start_;
};

}  // namespace xlf
