#include "src/explore/report.hpp"

#include <cstdio>

namespace xlf::explore {
namespace {

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

// One field table per report drives both the CSV and the JSON
// emitters, so the two formats cannot drift apart. `text` marks
// fields JSON must quote.
template <class Row>
struct Field {
  const char* name;
  bool text;
  std::string (*value)(const Row&);
};

template <class Row, std::size_t N>
std::string table_csv(const Field<Row> (&fields)[N],
                      const std::vector<Row>& rows) {
  std::string out;
  for (std::size_t f = 0; f < N; ++f) {
    if (f > 0) out += ",";
    out += fields[f].name;
  }
  out += "\n";
  for (const Row& row : rows) {
    for (std::size_t f = 0; f < N; ++f) {
      if (f > 0) out += ",";
      out += fields[f].value(row);
    }
    out += "\n";
  }
  return out;
}

template <class Row, std::size_t N>
std::string table_json(const Field<Row> (&fields)[N],
                       const std::vector<Row>& rows) {
  std::string out = "[";
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (r > 0) out += ",";
    out += "{";
    for (std::size_t f = 0; f < N; ++f) {
      if (f > 0) out += ",";
      out += "\"";
      out += fields[f].name;
      out += "\":";
      // Appends, not operator+ chains: GCC 12's -Wrestrict (PR 105651)
      // false-fires on const char* + std::string temporaries.
      const std::string value = fields[f].value(rows[r]);
      if (fields[f].text) {
        out += "\"";
        out += value;
        out += "\"";
      } else if (value == "nan" || value == "-nan" || value == "inf" ||
                 value == "-inf") {
        // Unobserved statistics (e.g. the max latency of a
        // zero-request stream) print as NaN in CSV; JSON has no NaN
        // literal, so they render as null.
        out += "null";
      } else {
        out += value;
      }
    }
    out += "}";
  }
  out += "]";
  return out;
}

const Field<SweepCell> kCellFields[] = {
    {"pe_cycles", false,
     [](const SweepCell& c) { return num(c.metrics.pe_cycles); }},
    {"algo", true,
     [](const SweepCell& c) {
       return std::string(nand::to_string(c.metrics.algo));
     }},
    {"t", false, [](const SweepCell& c) { return std::to_string(c.metrics.t); }},
    {"rber", false, [](const SweepCell& c) { return num(c.metrics.rber); }},
    {"log10_uber", false,
     [](const SweepCell& c) { return num(c.metrics.log10_uber); }},
    {"read_latency_us", false,
     [](const SweepCell& c) { return num(c.metrics.read_latency.micros()); }},
    {"write_latency_us", false,
     [](const SweepCell& c) { return num(c.metrics.write_latency.micros()); }},
    {"read_mib_s", false,
     [](const SweepCell& c) { return num(c.metrics.read_throughput.mib()); }},
    {"write_mib_s", false,
     [](const SweepCell& c) { return num(c.metrics.write_throughput.mib()); }},
    {"nand_power_mw", false,
     [](const SweepCell& c) {
       return num(c.metrics.nand_program_power.milliwatts());
     }},
    {"ecc_power_mw", false,
     [](const SweepCell& c) {
       return num(c.metrics.ecc_decode_power.milliwatts());
     }},
    {"total_power_mw", false,
     [](const SweepCell& c) {
       return num(c.metrics.total_power().milliwatts());
     }},
    // "true"/"false" are valid bare JSON and unambiguous CSV.
    {"pareto", false,
     [](const SweepCell& c) { return std::string(c.pareto ? "true" : "false"); }},
};

const Field<WorkloadValidation> kQosFields[] = {
    {"workload", true, [](const WorkloadValidation& v) { return v.workload; }},
    {"pe_cycles", false,
     [](const WorkloadValidation& v) { return num(v.pe_cycles); }},
    {"replicas", false,
     [](const WorkloadValidation& v) { return std::to_string(v.result.replicas); }},
    {"reads", false,
     [](const WorkloadValidation& v) {
       return std::to_string(v.result.merged.reads);
     }},
    {"writes", false,
     [](const WorkloadValidation& v) {
       return std::to_string(v.result.merged.writes);
     }},
    {"uncorrectable", false,
     [](const WorkloadValidation& v) {
       return std::to_string(v.result.merged.uncorrectable);
     }},
    {"data_mismatches", false,
     [](const WorkloadValidation& v) {
       return std::to_string(v.result.merged.data_mismatches);
     }},
    {"qos_misses", false,
     [](const WorkloadValidation& v) {
       return std::to_string(v.result.merged.qos_misses);
     }},
    {"uncorrectable_page_rate", false,
     [](const WorkloadValidation& v) {
       return num(v.result.uncorrectable_page_rate());
     }},
    {"read_latency_mean_us", false,
     [](const WorkloadValidation& v) {
       return num(v.result.merged.read_latency.mean() * 1e6);
     }},
    {"read_latency_max_us", false,
     [](const WorkloadValidation& v) {
       return num(v.result.merged.read_latency.max() * 1e6);
     }},
    {"write_latency_mean_us", false,
     [](const WorkloadValidation& v) {
       return num(v.result.merged.write_latency.mean() * 1e6);
     }},
    {"write_latency_max_us", false,
     [](const WorkloadValidation& v) {
       return num(v.result.merged.write_latency.max() * 1e6);
     }},
    {"simulated_seconds", false,
     [](const WorkloadValidation& v) {
       return num(v.result.merged.elapsed.value());
     }},
};

// ';'-joined per-queue mean of one latency series, in microseconds —
// one formatter for both per-queue columns so they cannot diverge.
std::string joined_queue_means(const FtlSweepRow& r,
                               RunningStats host::QueueStats::*series) {
  std::string out;
  for (std::size_t q = 0; q < r.stats.queue_stats.size(); ++q) {
    if (q > 0) out += ";";
    out += num((r.stats.queue_stats[q].*series).mean() * 1e6);
  }
  return out;
}

const Field<FtlSweepRow> kFtlFields[] = {
    {"channels", false,
     [](const FtlSweepRow& r) { return std::to_string(r.channels); }},
    {"dies_per_channel", false,
     [](const FtlSweepRow& r) { return std::to_string(r.dies_per_channel); }},
    {"queue_depth", false,
     [](const FtlSweepRow& r) { return std::to_string(r.queue_depth); }},
    {"gc_policy", true,
     [](const FtlSweepRow& r) { return r.gc_policy; }},
    {"wear_policy", true,
     [](const FtlSweepRow& r) { return r.wear_policy; }},
    {"tuning_policy", true,
     [](const FtlSweepRow& r) { return r.tuning_policy; }},
    {"refresh_policy", true,
     [](const FtlSweepRow& r) { return r.refresh_policy; }},
    {"host_writes", false,
     [](const FtlSweepRow& r) { return std::to_string(r.stats.writes); }},
    {"host_reads", false,
     [](const FtlSweepRow& r) { return std::to_string(r.stats.reads); }},
    {"write_amplification", false,
     [](const FtlSweepRow& r) { return num(r.stats.write_amplification); }},
    {"gc_relocations", false,
     [](const FtlSweepRow& r) {
       return std::to_string(r.stats.gc_relocations);
     }},
    {"erases", false,
     [](const FtlSweepRow& r) { return std::to_string(r.stats.erases); }},
    {"wl_swaps", false,
     [](const FtlSweepRow& r) { return std::to_string(r.stats.wl_swaps); }},
    {"refresh_blocks", false,
     [](const FtlSweepRow& r) {
       return std::to_string(r.stats.refresh_blocks);
     }},
    {"refresh_relocations", false,
     [](const FtlSweepRow& r) {
       return std::to_string(r.stats.refresh_relocations);
     }},
    {"uncorrectable", false,
     [](const FtlSweepRow& r) {
       return std::to_string(r.stats.uncorrectable);
     }},
    {"data_mismatches", false,
     [](const FtlSweepRow& r) {
       return std::to_string(r.stats.data_mismatches);
     }},
    {"min_t", false,
     [](const FtlSweepRow& r) { return std::to_string(r.stats.min_t_used); }},
    {"max_t", false,
     [](const FtlSweepRow& r) { return std::to_string(r.stats.max_t_used); }},
    {"wear_min", false,
     [](const FtlSweepRow& r) { return num(r.stats.wear_min); }},
    {"wear_max", false,
     [](const FtlSweepRow& r) { return num(r.stats.wear_max); }},
    {"read_latency_mean_us", false,
     [](const FtlSweepRow& r) {
       return num(r.stats.read_latency.mean() * 1e6);
     }},
    {"read_latency_max_us", false,
     [](const FtlSweepRow& r) {
       return num(r.stats.read_latency.max() * 1e6);
     }},
    {"write_latency_mean_us", false,
     [](const FtlSweepRow& r) {
       return num(r.stats.write_latency.mean() * 1e6);
     }},
    {"write_latency_max_us", false,
     [](const FtlSweepRow& r) {
       return num(r.stats.write_latency.max() * 1e6);
     }},
    {"die_util_min", false,
     [](const FtlSweepRow& r) { return num(r.stats.die_util_min()); }},
    {"die_util_mean", false,
     [](const FtlSweepRow& r) { return num(r.stats.die_util_mean()); }},
    {"die_util_max", false,
     [](const FtlSweepRow& r) { return num(r.stats.die_util_max()); }},
    {"gc_busy_s", false,
     [](const FtlSweepRow& r) { return num(r.stats.gc_busy.value()); }},
    {"simulated_seconds", false,
     [](const FtlSweepRow& r) { return num(r.stats.elapsed.value()); }},
    // Multi-queue host-interface columns (appended after the
    // pre-redesign set, whose bytes the 1-queue round-robin
    // degenerate case reproduces exactly).
    {"queues", false,
     [](const FtlSweepRow& r) { return std::to_string(r.queues); }},
    {"arbitration", true,
     [](const FtlSweepRow& r) { return r.arbitration; }},
    {"trims", false,
     [](const FtlSweepRow& r) { return std::to_string(r.stats.trims); }},
    {"trimmed_pages", false,
     [](const FtlSweepRow& r) {
       return std::to_string(r.stats.trimmed_pages);
     }},
    {"flushes", false,
     [](const FtlSweepRow& r) { return std::to_string(r.stats.flushes); }},
    // Per-queue mean latency, queue 0 first, ';'-separated (CSV-safe;
    // a quoted string in JSON). 0 for a queue that completed no
    // command of that type, matching the global latency columns.
    {"per_queue_write_mean_us", true,
     [](const FtlSweepRow& r) {
       return joined_queue_means(r, &host::QueueStats::write_latency);
     }},
    {"per_queue_read_mean_us", true,
     [](const FtlSweepRow& r) {
       return joined_queue_means(r, &host::QueueStats::read_latency);
     }},
    // Recovery / fault-injection columns (appended last, preserving
    // the byte-prefix of older reports): injected fail count, blocks
    // actually retired, and the clean-shutdown remount audit's
    // mismatch count (0 = every stored LPA read back bit-true after
    // rebuild_from_oob).
    {"fail_blocks", false,
     [](const FtlSweepRow& r) { return std::to_string(r.fail_blocks); }},
    {"bad_blocks", false,
     [](const FtlSweepRow& r) { return std::to_string(r.bad_blocks); }},
    {"rebuild_mismatches", false,
     [](const FtlSweepRow& r) {
       return std::to_string(r.rebuild_mismatches);
     }},
};

}  // namespace

std::string sweep_csv(const SweepResult& result) {
  return table_csv(kCellFields, result.cells);
}

std::string sweep_json(const SweepResult& result) {
  std::string out = "{\"cells_per_age\":";
  out += std::to_string(result.cells_per_age);
  out += ",\"space\":";
  out += table_json(kCellFields, result.cells);
  out += "}";
  return out;
}

std::string qos_csv(const std::vector<WorkloadValidation>& validations) {
  return table_csv(kQosFields, validations);
}

std::string qos_json(const std::vector<WorkloadValidation>& validations) {
  return table_json(kQosFields, validations);
}

std::string ftl_csv(const FtlSweepResult& result) {
  return table_csv(kFtlFields, result.rows);
}

std::string ftl_json(const FtlSweepResult& result) {
  std::string rows = table_json(kFtlFields, result.rows);
  if (result.throughput_commands_per_second.empty()) return rows;
  // Wall-clock throughput rides in a wrapper object, combo order
  // matching the rows. Emitted only when measured, so the default
  // output — the deterministic bare row array — stays byte-stable.
  std::string out = "{\"rows\":";
  out += rows;
  out += ",\"throughput_commands_per_second\":[";
  for (std::size_t i = 0; i < result.throughput_commands_per_second.size();
       ++i) {
    if (i > 0) out += ",";
    out += num(result.throughput_commands_per_second[i]);
  }
  out += "]}";
  return out;
}

}  // namespace xlf::explore
