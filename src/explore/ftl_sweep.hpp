// Parallel FTL-policy exploration: sweep (SSD topology x queue depth
// x GC policy) combinations of the multi-die stack under one
// host-level workload, and report write amplification, per-die
// utilisation, QoS (latency distribution) and the per-block
// reliability spread next to the device-level metrics the space
// sweep produces.
//
// Determinism contract (same as sweep/monte_carlo): every combo's
// randomness comes from its own serially pre-forked Rng stream, each
// combo builds a private Ssd + simulator and writes its row into a
// preallocated slot, and rows emit in combo order — so the output is
// byte-identical for any thread count.
#pragma once

#include <vector>

#include "src/ftl/ssd.hpp"
#include "src/sim/ssd_sim.hpp"
#include "src/util/thread_pool.hpp"

namespace xlf::explore {

struct FtlSweepSpec {
  // Template for every combo; topology / queue depth / GC policy are
  // overridden per grid point.
  ftl::SsdConfig base;
  std::vector<controller::DispatchConfig> topologies{{1, 1}, {2, 1}};
  std::vector<std::size_t> queue_depths{1, 4};
  std::vector<ftl::GcPolicy> gc_policies{ftl::GcPolicy::kGreedy,
                                         ftl::GcPolicy::kCostBenefit};
  // Hot/cold overwrite traffic driving GC (see HotColdWorkload).
  double hot_fraction = 0.25;
  double hot_write_fraction = 0.85;
  double read_fraction = 0.3;
  Seconds mean_gap{0.0};
  std::size_t requests = 200;
  bool prepopulate = true;
  std::uint64_t seed = 0x55DF71;
};

struct FtlSweepRow {
  std::uint32_t channels = 0;
  std::uint32_t dies_per_channel = 0;
  std::size_t queue_depth = 0;
  ftl::GcPolicy gc_policy = ftl::GcPolicy::kGreedy;
  sim::SsdSimStats stats;
};

struct FtlSweepResult {
  // Topology-major, then queue depth, then GC policy.
  std::vector<FtlSweepRow> rows;
};

FtlSweepResult ftl_sweep(const FtlSweepSpec& spec, ThreadPool& pool);

}  // namespace xlf::explore
