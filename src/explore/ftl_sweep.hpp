// Parallel FTL-policy exploration: sweep (SSD topology x queue depth
// x policy combination) grids of the multi-die stack under one
// host-level workload, and report write amplification, per-die
// utilisation, QoS (latency distribution) and the per-block
// reliability spread next to the device-level metrics the space
// sweep produces.
//
// Policies are swept by registry name along five independent axes —
// GC victim selection, wear leveling, reliability tuning, background
// refresh and host-queue arbitration — so any combination of
// registered strategies (including ones registered by downstream
// translation units) is reachable without code changes. The grid is
// the cartesian product topology x queue depth x queue count x
// arbitration x gc x wear x tuning x refresh, in that nesting order;
// axes default to a single entry, so the historical (topology x QD x
// GC) grid is the default shape, and the default single-queue
// round-robin host interface reproduces the pre-redesign single-
// stream rows byte for byte.
//
// Determinism contract (same as sweep/monte_carlo): every combo's
// randomness comes from its own serially pre-forked Rng stream, each
// combo builds a private Ssd + simulator and writes its row into a
// preallocated slot, and rows emit in combo order — so the output is
// byte-identical for any thread count.
#pragma once

#include <string>
#include <vector>

#include "src/ftl/ssd.hpp"
#include "src/sim/ssd_sim.hpp"
#include "src/util/thread_pool.hpp"

namespace xlf::explore {

struct FtlSweepSpec {
  // Template for every combo; topology / queue depth / policy names
  // are overridden per grid point.
  ftl::SsdConfig base;
  std::vector<controller::DispatchConfig> topologies{{1, 1}, {2, 1}};
  std::vector<std::size_t> queue_depths{1, 4};
  // Host-interface axes: submission-queue counts and arbitration
  // policy names (PolicyRegistry, kind "arbitration"). One tenant per
  // queue; requests split evenly across tenants.
  std::vector<std::size_t> queue_counts{1};
  std::vector<std::string> arbitration_policies{"round-robin"};
  // Arbitration weight per queue (queue 0 first; shorter lists pad
  // with 1.0, empty = equal weights).
  std::vector<double> queue_weights;
  // Policy axes (PolicyRegistry names of the matching interface).
  std::vector<std::string> gc_policies{"greedy", "cost-benefit"};
  std::vector<std::string> wear_policies{"dynamic"};
  std::vector<std::string> tuning_policies{"model_based"};
  std::vector<std::string> refresh_policies{"none"};
  // Fault-injection axis (innermost): how many blocks per die grow
  // bad during the combo (the lowest block ids fail on their first
  // erase and retire to the durable bad-block table). Each entry must
  // leave the die enough healthy blocks for its logical share plus
  // the GC slack.
  std::vector<std::uint32_t> fail_blocks{0};
  // Hot/cold overwrite traffic driving GC (see HotColdWorkload /
  // MultiTenantWorkload). trim_fraction > 0 makes each tenant
  // deallocate that share of its non-read requests.
  double hot_fraction = 0.25;
  double hot_write_fraction = 0.85;
  double read_fraction = 0.3;
  double trim_fraction = 0.0;
  Seconds mean_gap{0.0};
  std::size_t requests = 200;
  bool prepopulate = true;
  std::uint64_t seed = 0x55DF71;
  // Bit-true cell arrays (true, the default) or metadata-only devices
  // (false): programs/reads cost their modeled times but move no
  // payload bits, which is what makes production block counts (64k+
  // blocks/die, millions of commands) tractable. The post-run
  // read-back audit still runs but has no payloads to compare.
  bool data_plane = true;
  // Shard each combo's cell work into per-die queues drained on the
  // sweep's ThreadPool (sim::DieShardExecutor). Combos then run
  // serially so the pool belongs to the per-die flushes; rows are
  // byte-identical either way. Requires data_plane.
  bool shard_dies = false;
  // Measure wall-clock simulation throughput per combo (fills
  // FtlSweepResult::throughput_commands_per_second). Off by default:
  // wall-clock readings are run-dependent and must stay out of the
  // deterministic row set.
  bool measure_throughput = false;
};

struct FtlSweepRow {
  std::uint32_t channels = 0;
  std::uint32_t dies_per_channel = 0;
  std::size_t queue_depth = 0;
  std::size_t queues = 0;
  std::string arbitration;
  std::string gc_policy;
  std::string wear_policy;
  std::string tuning_policy;
  std::string refresh_policy;
  sim::SsdSimStats stats;
  // Recovery drill read-out: injected fail count, blocks actually
  // retired over the combo's lifetime, and the mismatch count of the
  // post-run clean-shutdown remount audit (flush -> remount ->
  // rebuild_from_oob -> verify every stored LPA; 0 = bit-true).
  std::uint32_t fail_blocks = 0;
  std::uint64_t bad_blocks = 0;
  std::size_t rebuild_mismatches = 0;
};

struct FtlSweepResult {
  // Topology-major, then queue depth, then queue count, arbitration,
  // gc / wear / tuning / refresh policy, fail-block count (innermost).
  std::vector<FtlSweepRow> rows;
  // Wall-clock commands/s per combo (same order as rows); only filled
  // under FtlSweepSpec::measure_throughput, and deliberately kept out
  // of FtlSweepRow so the deterministic row set never carries
  // run-dependent readings.
  std::vector<double> throughput_commands_per_second;
};

FtlSweepResult ftl_sweep(const FtlSweepSpec& spec, ThreadPool& pool);

}  // namespace xlf::explore
