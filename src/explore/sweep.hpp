// Parallel exploration of the cross-layer configuration space: the
// full (program algorithm x ECC capability x lifetime) grid the paper
// builds its trade-off analysis on, fanned out over a ThreadPool.
//
// All age tasks share ONE NandTiming + CrossLayerFramework:
// NandTiming's ISPP characterisation cache is internally locked, and
// a cached entry is a pure function of its key (each characterisation
// seeds its own Rng from the key), so concurrent workers read
// identical values no matter which thread populated the cache. Every
// grid cell's result lands in its preallocated slot, and the per-age
// Pareto flags are a pure function of that age's cells computed
// inside the age's own task, so the output is bit-identical whatever
// the thread count — `threads=1` versus `threads=N` is asserted in
// tests.
#pragma once

#include <vector>

#include "src/core/cross_layer.hpp"
#include "src/core/subsystem.hpp"
#include "src/util/thread_pool.hpp"

namespace xlf::explore {

// The ingredients of a CrossLayerFramework, by value.
struct FrameworkSpec {
  core::CrossLayerConfig cross_layer;
  nand::AgingLaw aging;
  nand::TimingConfig timing;
  nand::IsppConfig ispp;
  nand::VoltagePlan plan;
  nand::VariabilityConfig variability;
  hv::HvConfig hv;

  static FrameworkSpec from(const core::SubsystemConfig& config);
  nand::NandTiming make_timing() const;
};

struct SweepSpec {
  FrameworkSpec framework;
  // P/E cycle grid; see sim::lifetime_grid for the paper's axis.
  std::vector<double> ages;
};

// One cell of the configuration space at one age, tagged with its
// Pareto-front membership *within that age*.
struct SweepCell {
  core::Metrics metrics;
  bool pareto = false;
};

struct SweepResult {
  // Age-major, then {SV, DV} x t ascending — the enumerate() order.
  std::vector<SweepCell> cells;
  std::size_t cells_per_age = 0;

  // The Pareto-efficient subset, in cell order.
  std::vector<core::Metrics> front() const;
};

// Evaluate every (algo, t) cell at every age, one parallel task per
// age point.
SweepResult sweep_space(const SweepSpec& spec, ThreadPool& pool);

}  // namespace xlf::explore
