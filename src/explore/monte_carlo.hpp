// Parallel Monte-Carlo validation: N independent subsystem-simulator
// replicas of one workload at one (operating point, age), fanned out
// over a ThreadPool and reduced deterministically.
//
// Determinism contract: replica r's entire randomness (device noise,
// request stream, payload data) derives from the r-th Rng::fork() of
// a root stream, and the forks are drawn serially before any worker
// starts. Each replica builds a private MemorySubsystem (the bit-true
// array and controller are stateful and not thread-safe) and writes
// its SimStats into slot r; the slots merge in replica order on the
// calling thread. The merged result is therefore bit-identical for
// any thread count, which tests assert.
#pragma once

#include <vector>

#include "src/core/subsystem.hpp"
#include "src/sim/subsystem_sim.hpp"
#include "src/sim/workload.hpp"
#include "src/util/thread_pool.hpp"

namespace xlf::explore {

struct MonteCarloSpec {
  core::SubsystemConfig subsystem;
  core::OperatingPoint point = core::OperatingPoint::baseline();
  double pe_cycles = 0.0;
  const sim::Workload* workload = nullptr;  // non-owning, required
  std::size_t requests_per_replica = 32;
  std::size_t replicas = 4;
  std::uint64_t seed = 0x5EEDCA5E;
  // Fill the device before the measured run (read-heavy workloads).
  bool prepopulate = false;
};

struct MonteCarloResult {
  std::size_t replicas = 0;
  sim::SimStats merged;
  // Fraction of page reads that were uncorrectable — the empirical
  // companion of the analytic UBER (page-level, not per-bit).
  double uncorrectable_page_rate() const;
};

MonteCarloResult run_monte_carlo(const MonteCarloSpec& spec, ThreadPool& pool);

}  // namespace xlf::explore
