#include "src/explore/sweep.hpp"

#include "src/util/expect.hpp"

namespace xlf::explore {

FrameworkSpec FrameworkSpec::from(const core::SubsystemConfig& config) {
  FrameworkSpec spec;
  spec.cross_layer = config.cross_layer;
  spec.aging = config.device.array.aging;
  spec.timing = config.device.timing;
  spec.ispp = config.device.array.ispp;
  spec.plan = config.device.array.plan;
  spec.variability = config.device.array.variability;
  spec.hv = config.hv;
  return spec;
}

nand::NandTiming FrameworkSpec::make_timing() const {
  return nand::NandTiming(timing, ispp, plan, variability, aging);
}

// xlf: cold — report-time Pareto extraction; the hot closure only
// reaches it through the name collision with container front().
std::vector<core::Metrics> SweepResult::front() const {
  std::vector<core::Metrics> out;
  for (const SweepCell& cell : cells) {
    if (cell.pareto) out.push_back(cell.metrics);
  }
  return out;
}

SweepResult sweep_space(const SweepSpec& spec, ThreadPool& pool) {
  XLF_EXPECT(!spec.ages.empty());
  const auto& hw = spec.framework.cross_layer.ecc_hw;
  XLF_EXPECT(hw.t_min <= hw.t_max);
  const std::size_t per_age = 2 * (hw.t_max - hw.t_min + 1);

  SweepResult result;
  result.cells_per_age = per_age;
  result.cells.resize(spec.ages.size() * per_age);

  // One framework shared by every age task: NandTiming's trace cache
  // is internally synchronised and key-deterministic, so workers no
  // longer build private clones. One task per age point — the ISPP
  // characterisation (the expensive part) is per (algo, age), so an
  // age task pays it exactly once per algorithm.
  nand::NandTiming timing = spec.framework.make_timing();
  const core::CrossLayerFramework framework(
      spec.framework.cross_layer, spec.framework.aging, timing,
      spec.framework.hv);
  pool.parallel_for(spec.ages.size(), [&](std::size_t a) {
    const std::vector<core::Metrics> space = framework.enumerate(spec.ages[a]);
    XLF_ENSURE(space.size() == per_age);
    const std::vector<bool> efficient =
        core::CrossLayerFramework::pareto_mask(space);
    for (std::size_t i = 0; i < per_age; ++i) {
      result.cells[a * per_age + i] = SweepCell{space[i], efficient[i]};
    }
  });
  return result;
}

}  // namespace xlf::explore
