// Declarative experiment specs: one JSON document describes a whole
// exploration run — which engine (configuration-space sweep or FTL
// policy sweep), the device/FTL configuration under test, the sweep
// axes (including arbitrary policy-name combinations from the
// PolicyRegistry), and the optional Monte-Carlo validation — and
// tools/xlf_explore --spec executes it. The spec is the write-once
// artifact of an experiment: the same file reproduces the same bytes
// on any machine at any thread count (the engines' determinism
// contract), which is what makes sweeps citable results rather than
// run-dependent samples.
//
// Parsing is strict: unknown keys, unknown policy names, malformed
// topologies and out-of-range values all throw std::invalid_argument
// with the offending key/value (and, for policies, the registered
// alternatives) in the message.
//
// Spec shape (all keys optional unless noted; defaults mirror the
// CLI's):
//
//   {
//     "mode": "ftl-sweep" | "space",        // required
//     "seed": 123,
//     "uber_target": 1e-11,
//     "point": "baseline" | "min-uber" | "max-read",
//     // --- mode: "space" ---------------------------------------
//     "ages": {"lo": 1, "hi": 1e6, "points": 13},
//     "pareto_only": false,
//     "monte_carlo": {                       // omit to skip MC
//       "replicas": 4, "requests": 32, "age": 1e6,
//       "workloads": ["sequential-read", "mixed"]
//     },
//     // --- mode: "ftl-sweep" -----------------------------------
//     "geometry": {"blocks": 8, "pages_per_block": 4},
//     "initial_pe_cycles": 1e4,
//     "ftl": {"pe_cycles_per_erase": 3e4, "logical_fraction": 0.6,
//             "gc_free_blocks": 1, "static_wl_spread": 8,
//             "scrub_retention_hours": 1000},
//     "workload": {"requests": 200, "read_fraction": 0.3,
//                  "hot_fraction": 0.25, "hot_write_fraction": 0.85,
//                  "trim_fraction": 0.0, "queue_weights": [8, 1],
//                  "prepopulate": true},
//     "sweep": {"topologies": ["1x1", "2x1"], "queue_depths": [1, 4],
//               "queues": [1, 4],
//               "arbitrations": ["round-robin", "weighted"],
//               "gc_policies": ["greedy", "cost-benefit"],
//               "wear_policies": ["dynamic"],
//               "tuning_policies": ["model_based"],
//               "refresh_policies": ["none"],
//               "fail_blocks": [0, 2]}
//   }
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/explore/ftl_sweep.hpp"
#include "src/util/json.hpp"
#include "src/util/thread_pool.hpp"

namespace xlf::explore {

struct ExperimentSpec {
  enum class Mode { kSpace, kFtlSweep };

  // The starting point both the JSON parser and the CLI's flag path
  // refine: simulation-affordable FTL geometry (8 blocks x 4 pages
  // per die), mid-life pre-conditioning and compressed aging — the
  // same values the CLI flags default to.
  static ExperimentSpec defaults();

  Mode mode = Mode::kSpace;
  std::uint64_t seed = 0x5EEDCA5E;
  double uber_target = 1e-11;
  std::string point = "baseline";

  // --- space mode -----------------------------------------------------
  double age_lo = 1.0;
  double age_hi = 1e6;
  std::size_t age_points = 13;
  bool pareto_only = false;
  // Monte-Carlo validation (replicas == 0 skips it).
  std::size_t mc_replicas = 0;
  std::size_t mc_requests = 32;
  double mc_age = -1.0;  // < 0 = last grid age
  std::vector<std::string> mc_workloads{"sequential-read", "random-read",
                                        "write-burst", "mixed", "streaming"};

  // --- ftl-sweep mode -------------------------------------------------
  FtlSweepSpec ftl;
};

// Parses one "CxD" topology token (channels x dies per channel, both
// >= 1), e.g. "2x1"; nullopt on malformed input. Shared by the spec
// parser and the CLI flag path so the accepted format cannot drift.
std::optional<controller::DispatchConfig> parse_topology(
    const std::string& text);

// Builds a spec from parsed JSON / raw text / a file on disk.
// Validation is strict (see file comment).
ExperimentSpec parse_experiment(const JsonValue& root);
ExperimentSpec parse_experiment_text(const std::string& text);
ExperimentSpec load_experiment(const std::string& path);

// Executes the spec and renders the report — the same bytes the CLI's
// flag-driven paths produce for equivalent parameters. `format` must
// be "csv" or "json".
std::string run_experiment(const ExperimentSpec& spec, ThreadPool& pool,
                           const std::string& format);

}  // namespace xlf::explore
