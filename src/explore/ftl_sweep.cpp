#include "src/explore/ftl_sweep.hpp"

#include <algorithm>
#include <optional>
#include <sstream>

#include "src/ftl/fault.hpp"
#include "src/sim/die_shard.hpp"
#include "src/sim/host_workload.hpp"
#include "src/util/expect.hpp"
#include "src/util/stopwatch.hpp"

namespace xlf::explore {

FtlSweepResult ftl_sweep(const FtlSweepSpec& spec, ThreadPool& pool) {
  XLF_EXPECT(!spec.topologies.empty());
  XLF_EXPECT(!spec.queue_depths.empty());
  XLF_EXPECT(!spec.queue_counts.empty());
  XLF_EXPECT(!spec.arbitration_policies.empty());
  XLF_EXPECT(!spec.gc_policies.empty());
  XLF_EXPECT(!spec.wear_policies.empty());
  XLF_EXPECT(!spec.tuning_policies.empty());
  XLF_EXPECT(!spec.refresh_policies.empty());
  XLF_EXPECT(spec.requests > 0);
  XLF_EXPECT(spec.trim_fraction >= 0.0 && spec.trim_fraction < 1.0);
  XLF_EXPECT(!spec.fail_blocks.empty());
  XLF_EXPECT_MSG(spec.data_plane || !spec.shard_dies,
                 "shard_dies defers cell-array work, which metadata-only "
                 "devices do not have");

  // Every fail-block count must leave each die its logical share plus
  // the GC slack (the same viability bound Ftl's constructor enforces,
  // with the retired blocks subtracted) — checked up front for every
  // topology so a bad axis entry fails before any combo runs.
  const nand::Geometry& geometry = spec.base.die.device.array.geometry;
  const std::uint32_t slack = spec.base.ftl.gc_free_blocks + 2;
  for (const std::uint32_t fail : spec.fail_blocks) {
    XLF_EXPECT_MSG(geometry.blocks > fail + slack, [&] {
      std::ostringstream msg;
      msg << "fail_blocks=" << fail << " leaves fewer than the " << slack
          << " slack blocks GC needs out of blocks=" << geometry.blocks;
      return msg.str();
    }());
    for (const controller::DispatchConfig& topology : spec.topologies) {
      const std::uint32_t die_count =
          topology.channels * topology.dies_per_channel;
      const std::size_t physical =
          static_cast<std::size_t>(die_count) * geometry.pages();
      const auto logical = static_cast<std::uint32_t>(
          static_cast<double>(physical) * spec.base.ftl.logical_fraction);
      const std::uint32_t per_die_logical_max =
          logical / die_count + (logical % die_count != 0 ? 1 : 0);
      XLF_EXPECT_MSG(
          per_die_logical_max <=
              (geometry.blocks - fail - slack) * geometry.pages_per_block,
          [&] {
            std::ostringstream msg;
            msg << "fail_blocks=" << fail << " starves topology "
                << topology.channels << "x" << topology.dies_per_channel
                << ": up to " << per_die_logical_max
                << " logical pages land on one die but only "
                << (geometry.blocks - fail - slack) * geometry.pages_per_block
                << " fit beside the slack once the retired blocks are gone; "
                   "lower fail_blocks or logical_fraction, or grow the die";
            return msg.str();
          }());
    }
  }

  const std::size_t policy_combos =
      spec.gc_policies.size() * spec.wear_policies.size() *
      spec.tuning_policies.size() * spec.refresh_policies.size() *
      spec.fail_blocks.size();
  const std::size_t host_combos =
      spec.queue_counts.size() * spec.arbitration_policies.size();
  const std::size_t combos = spec.topologies.size() *
                             spec.queue_depths.size() * host_combos *
                             policy_combos;

  // Serially pre-forked randomness, one stream per combo: adding a
  // combo or reordering workers never reshuffles another combo's run.
  Rng root(spec.seed);
  std::vector<Rng> streams;
  streams.reserve(combos);
  for (std::size_t i = 0; i < combos; ++i) streams.push_back(root.fork());

  FtlSweepResult result;
  result.rows.resize(combos);
  if (spec.measure_throughput) {
    result.throughput_commands_per_second.assign(combos, 0.0);
  }

  const auto run_combo = [&](std::size_t index) {
    // Decompose: topology-major, then queue depth, queue count,
    // arbitration, then the policy axes gc > wear > tuning > refresh,
    // then the fail-block count (innermost).
    std::size_t rest = index;
    const std::size_t f = rest % spec.fail_blocks.size();
    rest /= spec.fail_blocks.size();
    const std::size_t r = rest % spec.refresh_policies.size();
    rest /= spec.refresh_policies.size();
    const std::size_t u = rest % spec.tuning_policies.size();
    rest /= spec.tuning_policies.size();
    const std::size_t w = rest % spec.wear_policies.size();
    rest /= spec.wear_policies.size();
    const std::size_t g = rest % spec.gc_policies.size();
    rest /= spec.gc_policies.size();
    const std::size_t a = rest % spec.arbitration_policies.size();
    rest /= spec.arbitration_policies.size();
    const std::size_t n = rest % spec.queue_counts.size();
    rest /= spec.queue_counts.size();
    const std::size_t q = rest % spec.queue_depths.size();
    const std::size_t t = rest / spec.queue_depths.size();

    ftl::SsdConfig config = spec.base;
    config.topology = spec.topologies[t];
    config.ftl.gc_policy = spec.gc_policies[g];
    config.ftl.wear_policy = spec.wear_policies[w];
    config.ftl.refresh_policy = spec.refresh_policies[r];
    config.die.controller.tuning_policy = spec.tuning_policies[u];
    config.die.device.data_plane = spec.data_plane;

    Rng stream = streams[index];
    ftl::Ssd ssd(config);
    // Sharded mode: this combo owns the whole pool (combos run
    // serially), so the per-die cell queues drain in parallel.
    std::optional<sim::DieShardExecutor> shards;
    if (spec.shard_dies) shards.emplace(ssd, pool);

    // Grown-bad injection: the combo's fail count retires the lowest
    // block ids of every die on their first erase — the blocks every
    // wear policy allocates first and GC churns hardest, so the
    // injection reliably bites.
    ftl::FaultInjector injector;
    const std::uint32_t fail = spec.fail_blocks[f];
    for (std::size_t d = 0; d < ssd.dies(); ++d) {
      for (std::uint32_t i = 0; i < fail; ++i) {
        injector.fail_block(static_cast<std::uint32_t>(d), i);
      }
    }
    ssd.set_fault_injector(&injector);

    const std::size_t queues = spec.queue_counts[n];
    sim::SsdSimConfig sim_config;
    sim_config.queue_depth = spec.queue_depths[q];
    sim_config.host.queues = queues;
    sim_config.host.arbitration = spec.arbitration_policies[a];
    // One weight list serves every queue-count entry: take the first
    // `queues` entries, pad missing ones with 1.0 (HostInterface).
    sim_config.host.queue_weights.assign(
        spec.queue_weights.begin(),
        spec.queue_weights.begin() +
            static_cast<std::ptrdiff_t>(
                std::min(queues, spec.queue_weights.size())));
    sim_config.data_seed = stream.next();
    if (shards.has_value()) sim_config.data_plane_shards = &*shards;
    sim::SsdSimulator simulator(ssd, sim_config);
    if (spec.prepopulate) simulator.prepopulate();

    sim::TenantSpec tenant;
    tenant.hot_fraction = spec.hot_fraction;
    tenant.hot_write_fraction = spec.hot_write_fraction;
    tenant.read_fraction = spec.read_fraction;
    tenant.trim_fraction = spec.trim_fraction;
    tenant.mean_gap = spec.mean_gap;
    const sim::MultiTenantWorkload workload(
        std::vector<sim::TenantSpec>(queues, tenant));
    const std::vector<host::Command> commands =
        workload.generate(ssd.logical_pages(), spec.requests, stream);

    FtlSweepRow row;
    row.channels = config.topology.channels;
    row.dies_per_channel = config.topology.dies_per_channel;
    row.queue_depth = spec.queue_depths[q];
    row.queues = queues;
    row.arbitration = spec.arbitration_policies[a];
    row.gc_policy = spec.gc_policies[g];
    row.wear_policy = spec.wear_policies[w];
    row.tuning_policy = spec.tuning_policies[u];
    row.refresh_policy = spec.refresh_policies[r];
    if (spec.measure_throughput) {
      // Wall-clock throughput read-out, reported beside (never inside)
      // the deterministic rows. Stopwatch owns the repo's only
      // sanctioned wall-clock read (src/util/stopwatch.hpp).
      const Stopwatch watch;
      row.stats = simulator.run(commands);
      const double wall = watch.elapsed_seconds();
      result.throughput_commands_per_second[index] =
          wall > 0.0 ? static_cast<double>(commands.size()) / wall : 0.0;
    } else {
      row.stats = simulator.run(commands);
    }
    // Land any deferred cell work and revert to inline execution
    // before the scrub / remount / read-back tail touches the arrays.
    shards.reset();
    // One maintenance scrub after the request stream: the refresh
    // policy's effect shows up as preventive relocations in the row.
    // Unconditional — a policy that refreshes nothing (the "none"
    // built-in, or any downstream no-op) just reports zeros.
    const ftl::ScrubResult scrubbed = ssd.ftl().scrub();
    row.stats.refresh_blocks = scrubbed.blocks_refreshed;
    row.stats.refresh_relocations = scrubbed.pages_relocated;
    // Recovery drill: every combo ends with a clean shutdown (flush),
    // a remount that rebuilds the FTL from OOB + journal, an
    // invariant audit, and a bit-true read-back of everything the
    // host still holds. Lifetime totals (prepopulate + run + scrub)
    // for the bad-block count, read before the remount resets stats.
    row.fail_blocks = fail;
    row.bad_blocks = ssd.ftl().stats().bad_blocks;
    ssd.ftl().flush();
    ssd.remount();
    ssd.ftl().check_consistency();
    row.rebuild_mismatches = simulator.verify_stored();
    result.rows[index] = std::move(row);
  };
  if (spec.shard_dies) {
    // The pool is not reentrant: sharded combos borrow it for their
    // per-die flushes, so the combo loop itself runs serially. Row
    // order — and row content — is identical either way.
    for (std::size_t index = 0; index < combos; ++index) run_combo(index);
  } else {
    pool.parallel_for(combos, run_combo);
  }
  return result;
}

}  // namespace xlf::explore
