#include "src/explore/ftl_sweep.hpp"

#include <algorithm>

#include "src/sim/host_workload.hpp"
#include "src/util/expect.hpp"

namespace xlf::explore {

FtlSweepResult ftl_sweep(const FtlSweepSpec& spec, ThreadPool& pool) {
  XLF_EXPECT(!spec.topologies.empty());
  XLF_EXPECT(!spec.queue_depths.empty());
  XLF_EXPECT(!spec.queue_counts.empty());
  XLF_EXPECT(!spec.arbitration_policies.empty());
  XLF_EXPECT(!spec.gc_policies.empty());
  XLF_EXPECT(!spec.wear_policies.empty());
  XLF_EXPECT(!spec.tuning_policies.empty());
  XLF_EXPECT(!spec.refresh_policies.empty());
  XLF_EXPECT(spec.requests > 0);
  XLF_EXPECT(spec.trim_fraction >= 0.0 && spec.trim_fraction < 1.0);

  const std::size_t policy_combos =
      spec.gc_policies.size() * spec.wear_policies.size() *
      spec.tuning_policies.size() * spec.refresh_policies.size();
  const std::size_t host_combos =
      spec.queue_counts.size() * spec.arbitration_policies.size();
  const std::size_t combos = spec.topologies.size() *
                             spec.queue_depths.size() * host_combos *
                             policy_combos;

  // Serially pre-forked randomness, one stream per combo: adding a
  // combo or reordering workers never reshuffles another combo's run.
  Rng root(spec.seed);
  std::vector<Rng> streams;
  streams.reserve(combos);
  for (std::size_t i = 0; i < combos; ++i) streams.push_back(root.fork());

  FtlSweepResult result;
  result.rows.resize(combos);

  pool.parallel_for(combos, [&](std::size_t index) {
    // Decompose: topology-major, then queue depth, queue count,
    // arbitration, then the policy axes gc > wear > tuning > refresh
    // (refresh innermost).
    std::size_t rest = index;
    const std::size_t r = rest % spec.refresh_policies.size();
    rest /= spec.refresh_policies.size();
    const std::size_t u = rest % spec.tuning_policies.size();
    rest /= spec.tuning_policies.size();
    const std::size_t w = rest % spec.wear_policies.size();
    rest /= spec.wear_policies.size();
    const std::size_t g = rest % spec.gc_policies.size();
    rest /= spec.gc_policies.size();
    const std::size_t a = rest % spec.arbitration_policies.size();
    rest /= spec.arbitration_policies.size();
    const std::size_t n = rest % spec.queue_counts.size();
    rest /= spec.queue_counts.size();
    const std::size_t q = rest % spec.queue_depths.size();
    const std::size_t t = rest / spec.queue_depths.size();

    ftl::SsdConfig config = spec.base;
    config.topology = spec.topologies[t];
    config.ftl.gc_policy = spec.gc_policies[g];
    config.ftl.wear_policy = spec.wear_policies[w];
    config.ftl.refresh_policy = spec.refresh_policies[r];
    config.die.controller.tuning_policy = spec.tuning_policies[u];

    Rng stream = streams[index];
    ftl::Ssd ssd(config);

    const std::size_t queues = spec.queue_counts[n];
    sim::SsdSimConfig sim_config;
    sim_config.queue_depth = spec.queue_depths[q];
    sim_config.host.queues = queues;
    sim_config.host.arbitration = spec.arbitration_policies[a];
    // One weight list serves every queue-count entry: take the first
    // `queues` entries, pad missing ones with 1.0 (HostInterface).
    sim_config.host.queue_weights.assign(
        spec.queue_weights.begin(),
        spec.queue_weights.begin() +
            static_cast<std::ptrdiff_t>(
                std::min(queues, spec.queue_weights.size())));
    sim_config.data_seed = stream.next();
    sim::SsdSimulator simulator(ssd, sim_config);
    if (spec.prepopulate) simulator.prepopulate();

    sim::TenantSpec tenant;
    tenant.hot_fraction = spec.hot_fraction;
    tenant.hot_write_fraction = spec.hot_write_fraction;
    tenant.read_fraction = spec.read_fraction;
    tenant.trim_fraction = spec.trim_fraction;
    tenant.mean_gap = spec.mean_gap;
    const sim::MultiTenantWorkload workload(
        std::vector<sim::TenantSpec>(queues, tenant));
    const std::vector<host::Command> commands =
        workload.generate(ssd.logical_pages(), spec.requests, stream);

    FtlSweepRow row;
    row.channels = config.topology.channels;
    row.dies_per_channel = config.topology.dies_per_channel;
    row.queue_depth = spec.queue_depths[q];
    row.queues = queues;
    row.arbitration = spec.arbitration_policies[a];
    row.gc_policy = spec.gc_policies[g];
    row.wear_policy = spec.wear_policies[w];
    row.tuning_policy = spec.tuning_policies[u];
    row.refresh_policy = spec.refresh_policies[r];
    row.stats = simulator.run(commands);
    // One maintenance scrub after the request stream: the refresh
    // policy's effect shows up as preventive relocations in the row.
    // Unconditional — a policy that refreshes nothing (the "none"
    // built-in, or any downstream no-op) just reports zeros.
    const ftl::ScrubResult scrubbed = ssd.ftl().scrub();
    row.stats.refresh_blocks = scrubbed.blocks_refreshed;
    row.stats.refresh_relocations = scrubbed.pages_relocated;
    result.rows[index] = std::move(row);
  });
  return result;
}

}  // namespace xlf::explore
