#include "src/explore/ftl_sweep.hpp"

#include "src/sim/host_workload.hpp"
#include "src/util/expect.hpp"

namespace xlf::explore {

FtlSweepResult ftl_sweep(const FtlSweepSpec& spec, ThreadPool& pool) {
  XLF_EXPECT(!spec.topologies.empty());
  XLF_EXPECT(!spec.queue_depths.empty());
  XLF_EXPECT(!spec.gc_policies.empty());
  XLF_EXPECT(spec.requests > 0);

  const std::size_t combos = spec.topologies.size() *
                             spec.queue_depths.size() *
                             spec.gc_policies.size();

  // Serially pre-forked randomness, one stream per combo: adding a
  // combo or reordering workers never reshuffles another combo's run.
  Rng root(spec.seed);
  std::vector<Rng> streams;
  streams.reserve(combos);
  for (std::size_t i = 0; i < combos; ++i) streams.push_back(root.fork());

  FtlSweepResult result;
  result.rows.resize(combos);

  pool.parallel_for(combos, [&](std::size_t index) {
    const std::size_t per_topology =
        spec.queue_depths.size() * spec.gc_policies.size();
    const std::size_t t = index / per_topology;
    const std::size_t q = (index % per_topology) / spec.gc_policies.size();
    const std::size_t g = index % spec.gc_policies.size();

    ftl::SsdConfig config = spec.base;
    config.topology = spec.topologies[t];
    config.ftl.gc_policy = spec.gc_policies[g];

    Rng stream = streams[index];
    ftl::Ssd ssd(config);

    sim::SsdSimConfig sim_config;
    sim_config.queue_depth = spec.queue_depths[q];
    sim_config.data_seed = stream.next();
    sim::SsdSimulator simulator(ssd, sim_config);
    if (spec.prepopulate) simulator.prepopulate();

    const sim::HotColdWorkload workload(spec.hot_fraction,
                                        spec.hot_write_fraction,
                                        spec.read_fraction, spec.mean_gap);
    const std::vector<sim::HostRequest> requests =
        workload.generate(ssd.logical_pages(), spec.requests, stream);

    FtlSweepRow row;
    row.channels = config.topology.channels;
    row.dies_per_channel = config.topology.dies_per_channel;
    row.queue_depth = spec.queue_depths[q];
    row.gc_policy = spec.gc_policies[g];
    row.stats = simulator.run(requests);
    result.rows[index] = std::move(row);
  });
  return result;
}

}  // namespace xlf::explore
