// Text emitters for exploration results: the full configuration
// space, its Pareto front and per-workload QoS statistics as CSV or
// JSON — the formats tools/xlf_explore ships to plotting pipelines.
// Output is a pure function of the results, so parallel and serial
// runs of the same spec print byte-identical reports.
#pragma once

#include <string>
#include <vector>

#include "src/explore/ftl_sweep.hpp"
#include "src/explore/monte_carlo.hpp"
#include "src/explore/sweep.hpp"

namespace xlf::explore {

// A Monte-Carlo validation labelled with the workload it ran.
struct WorkloadValidation {
  std::string workload;
  double pe_cycles = 0.0;
  MonteCarloResult result;
};

// Configuration space, one row per cell, with a `pareto` flag column.
std::string sweep_csv(const SweepResult& result);
std::string sweep_json(const SweepResult& result);

// Per-workload QoS/reliability table from Monte-Carlo validations.
std::string qos_csv(const std::vector<WorkloadValidation>& validations);
std::string qos_json(const std::vector<WorkloadValidation>& validations);

// FTL sweep table: one row per (topology, queue depth, queue shape,
// policy) combo — write amplification, utilisation, latency QoS
// (global and per submission queue), trim/flush activity, and the
// per-block wear/t spread. The multi-queue columns are appended
// after the pre-redesign set, whose bytes the single-queue
// round-robin default reproduces exactly.
std::string ftl_csv(const FtlSweepResult& result);
std::string ftl_json(const FtlSweepResult& result);

}  // namespace xlf::explore
