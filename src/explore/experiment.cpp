#include "src/explore/experiment.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "src/explore/monte_carlo.hpp"
#include "src/explore/report.hpp"
#include "src/explore/sweep.hpp"
#include "src/policy/registry.hpp"
#include "src/sim/workload.hpp"
#include "src/util/stats.hpp"

namespace xlf::explore {
namespace {

[[noreturn]] void spec_error(const std::string& what) {
  throw std::invalid_argument("experiment spec: " + what);
}

// Strict-object helper: every known key is consumed through find();
// finish() rejects the leftovers so a typo ("qeue_depths") fails
// loudly instead of silently running the default.
class StrictObject {
 public:
  StrictObject(const JsonValue& value, std::string path)
      : value_(value), path_(std::move(path)) {
    if (!value_.is_object()) {
      spec_error("'" + path_ + "' must be an object");
    }
  }

  // The member under `key`, or nullptr when absent.
  const JsonValue* find(const std::string& key) {
    consumed_.push_back(key);
    if (!value_.has(key)) return nullptr;
    return &value_.at(key);
  }

  void finish() const {
    for (const std::string& key : value_.keys()) {
      bool known = false;
      for (const std::string& c : consumed_) {
        if (c == key) {
          known = true;
          break;
        }
      }
      if (!known) {
        std::string message = "unknown key '" + key + "' in " + path_ +
                              "; known keys:";
        for (const std::string& c : consumed_) message += " " + c;
        spec_error(message);
      }
    }
  }

 private:
  const JsonValue& value_;
  std::string path_;
  std::vector<std::string> consumed_;
};

double as_number(const JsonValue& v, const std::string& key) {
  if (v.type() != JsonValue::Type::kNumber) {
    spec_error("'" + key + "' must be a number");
  }
  return v.as_number();
}

// JSON numbers are doubles: only integers below 2^53 are exact, and
// a cast from a double at or above 2^64 is undefined behaviour — so
// both integer readers share one checked range.
double checked_integer(const JsonValue& v, const std::string& key) {
  constexpr double kMaxExactInteger = 9007199254740992.0;  // 2^53
  const double n = as_number(v, key);
  if (n < 0.0 || n != std::floor(n) || n > kMaxExactInteger) {
    spec_error("'" + key +
               "' must be a non-negative integer below 2^53 (JSON numbers "
               "are doubles)");
  }
  return n;
}

std::size_t as_index(const JsonValue& v, const std::string& key) {
  return static_cast<std::size_t>(checked_integer(v, key));
}

std::uint64_t as_u64(const JsonValue& v, const std::string& key) {
  return static_cast<std::uint64_t>(checked_integer(v, key));
}

bool as_bool(const JsonValue& v, const std::string& key) {
  if (v.type() != JsonValue::Type::kBool) {
    spec_error("'" + key + "' must be true or false");
  }
  return v.as_bool();
}

const std::string& as_string(const JsonValue& v, const std::string& key) {
  if (v.type() != JsonValue::Type::kString) {
    spec_error("'" + key + "' must be a string");
  }
  return v.as_string();
}

std::vector<std::string> as_string_list(const JsonValue& v,
                                        const std::string& key) {
  if (!v.is_array() || v.items().empty()) {
    spec_error("'" + key + "' must be a non-empty array of strings");
  }
  std::vector<std::string> out;
  for (const JsonValue& item : v.items()) out.push_back(as_string(item, key));
  return out;
}

// Validates each name against the interface's registry; an unknown
// name throws the registry's message (which lists the alternatives).
template <class Interface>
void check_policies(const std::vector<std::string>& names) {
  for (const std::string& name : names) {
    (void)policy::PolicyRegistry<Interface>::instance().make(name);
  }
}

void check_point_name(const std::string& name) {
  if (name != "baseline" && name != "min-uber" && name != "max-read") {
    spec_error("unknown operating point '" + name +
               "'; available: baseline min-uber max-read");
  }
}

core::OperatingPoint make_point(const std::string& name) {
  if (name == "min-uber") return core::OperatingPoint::min_uber();
  if (name == "max-read") return core::OperatingPoint::max_read();
  return core::OperatingPoint::baseline();
}

std::unique_ptr<sim::Workload> make_workload(const std::string& name) {
  if (name == "sequential-read") {
    return std::make_unique<sim::SequentialReadWorkload>();
  }
  if (name == "random-read") {
    return std::make_unique<sim::RandomReadWorkload>();
  }
  if (name == "write-burst") {
    return std::make_unique<sim::WriteBurstWorkload>();
  }
  if (name == "mixed") {
    return std::make_unique<sim::MixedWorkload>(0.7);
  }
  if (name == "streaming") {
    return std::make_unique<sim::MultimediaStreamingWorkload>(
        BytesPerSecond::mib(8.0));
  }
  return nullptr;
}

void parse_ages(StrictObject& root, ExperimentSpec& spec) {
  const JsonValue* ages = root.find("ages");
  if (ages == nullptr) return;
  StrictObject obj(*ages, "ages");
  if (const JsonValue* v = obj.find("lo")) spec.age_lo = as_number(*v, "lo");
  if (const JsonValue* v = obj.find("hi")) spec.age_hi = as_number(*v, "hi");
  if (const JsonValue* v = obj.find("points")) {
    spec.age_points = as_index(*v, "points");
  }
  obj.finish();
  if (spec.age_points < 2 || spec.age_lo <= 0.0 ||
      spec.age_hi <= spec.age_lo) {
    std::ostringstream msg;
    msg << "invalid ages grid lo=" << spec.age_lo << " hi=" << spec.age_hi
        << " points=" << spec.age_points
        << " (need lo > 0, hi > lo, points >= 2)";
    spec_error(msg.str());
  }
}

void parse_monte_carlo(StrictObject& root, ExperimentSpec& spec) {
  const JsonValue* mc = root.find("monte_carlo");
  if (mc == nullptr) return;
  StrictObject obj(*mc, "monte_carlo");
  if (const JsonValue* v = obj.find("replicas")) {
    spec.mc_replicas = as_index(*v, "replicas");
  }
  if (const JsonValue* v = obj.find("requests")) {
    spec.mc_requests = as_index(*v, "requests");
  }
  if (const JsonValue* v = obj.find("age")) {
    spec.mc_age = as_number(*v, "age");
  }
  if (const JsonValue* v = obj.find("workloads")) {
    spec.mc_workloads = as_string_list(*v, "workloads");
  }
  obj.finish();
  for (const std::string& name : spec.mc_workloads) {
    if (make_workload(name) == nullptr) {
      spec_error("unknown workload '" + name +
                 "'; available: sequential-read random-read write-burst "
                 "mixed streaming");
    }
  }
}

void parse_geometry(StrictObject& root, ExperimentSpec& spec) {
  const JsonValue* geometry = root.find("geometry");
  if (geometry == nullptr) return;
  StrictObject obj(*geometry, "geometry");
  if (const JsonValue* v = obj.find("blocks")) {
    spec.ftl.base.die.device.array.geometry.blocks =
        static_cast<std::uint32_t>(as_index(*v, "blocks"));
  }
  if (const JsonValue* v = obj.find("pages_per_block")) {
    spec.ftl.base.die.device.array.geometry.pages_per_block =
        static_cast<std::uint32_t>(as_index(*v, "pages_per_block"));
  }
  obj.finish();
}

void parse_ftl(StrictObject& root, ExperimentSpec& spec) {
  const JsonValue* ftl = root.find("ftl");
  if (ftl == nullptr) return;
  StrictObject obj(*ftl, "ftl");
  ftl::FtlConfig& config = spec.ftl.base.ftl;
  if (const JsonValue* v = obj.find("pe_cycles_per_erase")) {
    config.pe_cycles_per_erase = as_number(*v, "pe_cycles_per_erase");
  }
  if (const JsonValue* v = obj.find("logical_fraction")) {
    config.logical_fraction = as_number(*v, "logical_fraction");
  }
  if (const JsonValue* v = obj.find("gc_free_blocks")) {
    config.gc_free_blocks =
        static_cast<std::uint32_t>(as_index(*v, "gc_free_blocks"));
  }
  if (const JsonValue* v = obj.find("static_wl_spread")) {
    config.static_wl_spread =
        static_cast<std::uint32_t>(as_index(*v, "static_wl_spread"));
  }
  if (const JsonValue* v = obj.find("scrub_retention_hours")) {
    config.scrub_retention_hours = as_number(*v, "scrub_retention_hours");
  }
  obj.finish();
}

void parse_workload(StrictObject& root, ExperimentSpec& spec) {
  const JsonValue* workload = root.find("workload");
  if (workload == nullptr) return;
  StrictObject obj(*workload, "workload");
  if (const JsonValue* v = obj.find("requests")) {
    spec.ftl.requests = as_index(*v, "requests");
  }
  if (const JsonValue* v = obj.find("read_fraction")) {
    spec.ftl.read_fraction = as_number(*v, "read_fraction");
  }
  if (const JsonValue* v = obj.find("hot_fraction")) {
    spec.ftl.hot_fraction = as_number(*v, "hot_fraction");
  }
  if (const JsonValue* v = obj.find("hot_write_fraction")) {
    spec.ftl.hot_write_fraction = as_number(*v, "hot_write_fraction");
  }
  if (const JsonValue* v = obj.find("trim_fraction")) {
    spec.ftl.trim_fraction = as_number(*v, "trim_fraction");
    if (spec.ftl.trim_fraction < 0.0 || spec.ftl.trim_fraction >= 1.0) {
      spec_error("'trim_fraction' must lie in [0, 1)");
    }
  }
  if (const JsonValue* v = obj.find("queue_weights")) {
    if (!v->is_array() || v->items().empty()) {
      spec_error("'queue_weights' must be a non-empty array of numbers > 0");
    }
    spec.ftl.queue_weights.clear();
    for (const JsonValue& item : v->items()) {
      const double weight = as_number(item, "queue_weights");
      if (weight <= 0.0) {
        spec_error("'queue_weights' entries must be > 0");
      }
      spec.ftl.queue_weights.push_back(weight);
    }
  }
  if (const JsonValue* v = obj.find("prepopulate")) {
    spec.ftl.prepopulate = as_bool(*v, "prepopulate");
  }
  obj.finish();
}

void parse_sweep(StrictObject& root, ExperimentSpec& spec) {
  const JsonValue* sweep = root.find("sweep");
  if (sweep == nullptr) return;
  StrictObject obj(*sweep, "sweep");
  if (const JsonValue* v = obj.find("topologies")) {
    spec.ftl.topologies.clear();
    for (const std::string& part : as_string_list(*v, "topologies")) {
      const std::optional<controller::DispatchConfig> topology =
          parse_topology(part);
      if (!topology.has_value()) {
        spec_error("topology '" + part +
                   "' must be CxD (channels x dies per channel), e.g. \"2x1\"");
      }
      spec.ftl.topologies.push_back(*topology);
    }
  }
  if (const JsonValue* v = obj.find("queue_depths")) {
    if (!v->is_array() || v->items().empty()) {
      spec_error("'queue_depths' must be a non-empty array of integers >= 1");
    }
    spec.ftl.queue_depths.clear();
    for (const JsonValue& item : v->items()) {
      const std::size_t qd = as_index(item, "queue_depths");
      if (qd < 1) spec_error("'queue_depths' entries must be >= 1");
      spec.ftl.queue_depths.push_back(qd);
    }
  }
  if (const JsonValue* v = obj.find("queues")) {
    if (!v->is_array() || v->items().empty()) {
      spec_error("'queues' must be a non-empty array of integers >= 1");
    }
    spec.ftl.queue_counts.clear();
    for (const JsonValue& item : v->items()) {
      const std::size_t queues = as_index(item, "queues");
      if (queues < 1) spec_error("'queues' entries must be >= 1");
      spec.ftl.queue_counts.push_back(queues);
    }
  }
  if (const JsonValue* v = obj.find("arbitrations")) {
    spec.ftl.arbitration_policies = as_string_list(*v, "arbitrations");
  }
  if (const JsonValue* v = obj.find("gc_policies")) {
    spec.ftl.gc_policies = as_string_list(*v, "gc_policies");
  }
  if (const JsonValue* v = obj.find("wear_policies")) {
    spec.ftl.wear_policies = as_string_list(*v, "wear_policies");
  }
  if (const JsonValue* v = obj.find("tuning_policies")) {
    spec.ftl.tuning_policies = as_string_list(*v, "tuning_policies");
  }
  if (const JsonValue* v = obj.find("refresh_policies")) {
    spec.ftl.refresh_policies = as_string_list(*v, "refresh_policies");
  }
  if (const JsonValue* v = obj.find("fail_blocks")) {
    if (!v->is_array() || v->items().empty()) {
      spec_error("'fail_blocks' must be a non-empty array of integers >= 0");
    }
    spec.ftl.fail_blocks.clear();
    for (const JsonValue& item : v->items()) {
      spec.ftl.fail_blocks.push_back(
          static_cast<std::uint32_t>(as_index(item, "fail_blocks")));
    }
  }
  obj.finish();
  check_policies<policy::GcPolicy>(spec.ftl.gc_policies);
  check_policies<policy::WearPolicy>(spec.ftl.wear_policies);
  check_policies<policy::TuningPolicy>(spec.ftl.tuning_policies);
  check_policies<policy::RefreshPolicy>(spec.ftl.refresh_policies);
  check_policies<policy::ArbitrationPolicy>(spec.ftl.arbitration_policies);
}

}  // namespace

std::optional<controller::DispatchConfig> parse_topology(
    const std::string& text) {
  unsigned channels = 0, dies = 0;
  if (std::sscanf(text.c_str(), "%ux%u", &channels, &dies) != 2 ||
      channels == 0 || dies == 0) {
    return std::nullopt;
  }
  return controller::DispatchConfig{channels, dies};
}

ExperimentSpec ExperimentSpec::defaults() {
  ExperimentSpec spec;
  spec.ftl.base.die.device.array.geometry.blocks = 8;
  spec.ftl.base.die.device.array.geometry.pages_per_block = 4;
  spec.ftl.base.initial_pe_cycles = 1e4;
  spec.ftl.base.ftl.pe_cycles_per_erase = 3e4;
  spec.ftl.base.ftl.logical_fraction = 0.6;
  return spec;
}

ExperimentSpec parse_experiment(const JsonValue& root) {
  ExperimentSpec spec = ExperimentSpec::defaults();
  StrictObject obj(root, "the spec");

  const JsonValue* mode = obj.find("mode");
  if (mode == nullptr) {
    spec_error("missing required key 'mode' (\"space\" or \"ftl-sweep\")");
  }
  const std::string& mode_name = as_string(*mode, "mode");
  if (mode_name == "space") {
    spec.mode = ExperimentSpec::Mode::kSpace;
  } else if (mode_name == "ftl-sweep") {
    spec.mode = ExperimentSpec::Mode::kFtlSweep;
  } else {
    spec_error("unknown mode '" + mode_name +
               "'; available: space ftl-sweep");
  }

  if (const JsonValue* v = obj.find("seed")) spec.seed = as_u64(*v, "seed");
  if (const JsonValue* v = obj.find("uber_target")) {
    spec.uber_target = as_number(*v, "uber_target");
    if (spec.uber_target <= 0.0 || spec.uber_target >= 1.0) {
      spec_error("'uber_target' must lie in (0, 1)");
    }
  }
  if (const JsonValue* v = obj.find("point")) {
    spec.point = as_string(*v, "point");
    check_point_name(spec.point);
  }

  // Space-mode sections.
  parse_ages(obj, spec);
  if (const JsonValue* v = obj.find("pareto_only")) {
    spec.pareto_only = as_bool(*v, "pareto_only");
  }
  parse_monte_carlo(obj, spec);

  // FTL-sweep sections.
  parse_geometry(obj, spec);
  if (const JsonValue* v = obj.find("initial_pe_cycles")) {
    spec.ftl.base.initial_pe_cycles = as_number(*v, "initial_pe_cycles");
  }
  parse_ftl(obj, spec);
  parse_workload(obj, spec);
  parse_sweep(obj, spec);

  obj.finish();
  return spec;
}

ExperimentSpec parse_experiment_text(const std::string& text) {
  return parse_experiment(JsonValue::parse(text));
}

ExperimentSpec load_experiment(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    throw std::invalid_argument("cannot open experiment spec " + path);
  }
  std::ostringstream contents;
  contents << file.rdbuf();
  return parse_experiment_text(contents.str());
}

std::string run_experiment(const ExperimentSpec& spec, ThreadPool& pool,
                           const std::string& format) {
  if (format != "csv" && format != "json") {
    throw std::invalid_argument("experiment format must be csv or json, got " +
                                format);
  }

  if (spec.mode == ExperimentSpec::Mode::kFtlSweep) {
    // The experiment-level knobs (seed, UBER target, operating point)
    // override the sweep template's own copies, whichever path built
    // the spec.
    FtlSweepSpec ftl = spec.ftl;
    ftl.seed = spec.seed;
    ftl.base.die.cross_layer.uber_target = spec.uber_target;
    ftl.base.die.controller.reliability.uber_target = spec.uber_target;
    ftl.base.point = make_point(spec.point);
    const FtlSweepResult result = ftl_sweep(ftl, pool);
    if (format == "csv") return ftl_csv(result);
    std::string report = "{\"ftl\":";
    report += ftl_json(result);
    report += "}";
    return report;
  }

  // Configuration-space sweep (+ optional Monte-Carlo validation).
  core::SubsystemConfig subsystem = core::SubsystemConfig::defaults();
  subsystem.cross_layer.uber_target = spec.uber_target;

  SweepSpec sweep_spec;
  sweep_spec.framework = FrameworkSpec::from(subsystem);
  sweep_spec.ages = log_space(spec.age_lo, spec.age_hi, spec.age_points);

  SweepResult space = sweep_space(sweep_spec, pool);
  if (spec.pareto_only) {
    SweepResult front;
    // Front sizes vary per age, so the filtered rows are no longer an
    // ages x cells_per_age grid; 0 signals the irregular layout.
    front.cells_per_age = 0;
    for (const SweepCell& cell : space.cells) {
      if (cell.pareto) front.cells.push_back(cell);
    }
    space = std::move(front);
  }

  std::vector<WorkloadValidation> validations;
  if (spec.mc_replicas > 0) {
    const double mc_age =
        spec.mc_age >= 0.0 ? spec.mc_age : sweep_spec.ages.back();
    // One root stream per workload, derived serially from the seed so
    // adding a workload never reshuffles the others' replicas.
    Rng workload_seeder(spec.seed);
    for (const std::string& name : spec.mc_workloads) {
      const std::uint64_t workload_seed = workload_seeder.next();
      const std::unique_ptr<sim::Workload> workload = make_workload(name);
      if (workload == nullptr) {
        throw std::invalid_argument("unknown workload " + name);
      }
      MonteCarloSpec mc;
      mc.subsystem = subsystem;
      mc.point = make_point(spec.point);
      mc.pe_cycles = mc_age;
      mc.workload = workload.get();
      mc.requests_per_replica = spec.mc_requests;
      mc.replicas = spec.mc_replicas;
      mc.seed = workload_seed;
      validations.push_back(WorkloadValidation{workload->name(), mc_age,
                                               run_monte_carlo(mc, pool)});
    }
  }

  std::string report;
  if (format == "csv") {
    report = sweep_csv(space);
    if (!validations.empty()) {
      report += "\n";
      report += qos_csv(validations);
    }
  } else {
    report = "{\"sweep\":" + sweep_json(space);
    report += ",\"qos\":" + qos_json(validations);
    report += "}";
  }
  return report;
}

}  // namespace xlf::explore
