#include "src/explore/monte_carlo.hpp"

#include "src/util/expect.hpp"

namespace xlf::explore {

double MonteCarloResult::uncorrectable_page_rate() const {
  if (merged.reads == 0) return 0.0;
  return static_cast<double>(merged.uncorrectable) /
         static_cast<double>(merged.reads);
}

MonteCarloResult run_monte_carlo(const MonteCarloSpec& spec,
                                 ThreadPool& pool) {
  XLF_EXPECT(spec.workload != nullptr);
  XLF_EXPECT(spec.replicas > 0);
  XLF_EXPECT(spec.requests_per_replica > 0);
  XLF_EXPECT(spec.pe_cycles >= 0.0);

  // Fork all replica streams serially up front: fork() advances the
  // root generator, so doing it inside workers would order-depend.
  Rng root(spec.seed);
  std::vector<Rng> streams;
  streams.reserve(spec.replicas);
  for (std::size_t r = 0; r < spec.replicas; ++r) {
    streams.push_back(root.fork());
  }

  std::vector<sim::SimStats> slots(spec.replicas);
  pool.parallel_for(spec.replicas, [&](std::size_t r) {
    Rng stream = streams[r];
    core::SubsystemConfig config = spec.subsystem;
    config.device.array.seed = stream.next();  // independent device noise
    core::MemorySubsystem subsystem(config);
    subsystem.device().set_uniform_wear(spec.pe_cycles);
    subsystem.apply(spec.point);

    std::vector<sim::Request> requests = spec.workload->generate(
        subsystem.device().geometry(), spec.requests_per_replica, stream);

    sim::SimConfig sim_config;
    sim_config.data_seed = stream.next();
    sim::SubsystemSimulator simulator(subsystem.controller(), sim_config);
    if (spec.prepopulate) simulator.prepopulate();
    slots[r] = simulator.run(requests);
  });

  MonteCarloResult result;
  result.replicas = spec.replicas;
  // Deterministic reduction: replica order, on this thread.
  for (const sim::SimStats& stats : slots) result.merged.merge(stats);
  return result;
}

}  // namespace xlf::explore
