// Closed-loop subsystem simulator: drives a MemoryController over a
// workload request stream, modelling a single-outstanding-request
// host (the paper's controller has one page buffer, so requests
// serialise at the socket). Paced workloads (multimedia streaming)
// carry think-time gaps; a request whose service completes after the
// next arrival would have stalled the consumer, which the stats
// report as QoS misses.
#pragma once

#include <map>
#include <optional>

#include "src/controller/controller.hpp"
#include "src/sim/event_queue.hpp"
#include "src/sim/workload.hpp"
#include "src/util/stats.hpp"

namespace xlf::sim {

struct SimConfig {
  // Verify read payloads against what was written (bit-true check).
  bool verify_data = true;
  std::uint64_t data_seed = 0xDA7A5EED;
};

struct SimStats {
  std::size_t reads = 0;
  std::size_t writes = 0;
  std::size_t erases = 0;
  std::size_t uncorrectable = 0;
  std::size_t data_mismatches = 0;
  std::size_t corrected_bits = 0;
  std::size_t qos_misses = 0;  // completions past the next arrival
  Seconds elapsed{0.0};
  Seconds read_busy{0.0};
  Seconds write_busy{0.0};
  Joules ecc_energy{0.0};
  Joules nand_energy{0.0};
  RunningStats read_latency;   // seconds
  RunningStats write_latency;  // seconds

  // Fold another run's statistics into this one (Monte-Carlo replica
  // reduction): counts, busy times and energies sum, the latency
  // distributions merge, and `elapsed` accumulates total simulated
  // time across the runs. Merging per-replica stats in a fixed order
  // reproduces bit-identical totals regardless of how many workers
  // produced them.
  void merge(const SimStats& other);

  BytesPerSecond read_throughput(std::size_t page_bytes) const;
  BytesPerSecond write_throughput(std::size_t page_bytes) const;
};

class SubsystemSimulator {
 public:
  SubsystemSimulator(controller::MemoryController& controller,
                     const SimConfig& config = {});

  // Execute the request stream; returns the collected statistics.
  SimStats run(const std::vector<Request>& requests);

  // Write every page of the device with random payloads (state setup
  // before read-only experiments); not counted in the next run's
  // stats.
  void prepopulate();

 private:
  BitVec random_payload();
  void service_write(nand::PageAddress addr, SimStats& stats);
  void service_read(nand::PageAddress addr, SimStats& stats);

  controller::MemoryController* controller_;
  SimConfig config_;
  EventQueue queue_;
  Rng data_rng_;
  // Reference payloads for verification.
  std::map<std::pair<std::uint32_t, std::uint32_t>, BitVec> written_;
};

}  // namespace xlf::sim
