// Minimal discrete-event core for the subsystem simulator: a
// time-ordered queue of callbacks with a monotonic clock. Events at
// equal timestamps fire in scheduling order (stable sequence
// numbers), which keeps request/completion chains deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/util/units.hpp"

namespace xlf::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  Seconds now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

  // Schedule `fn` at absolute time `when` (>= now).
  void schedule_at(Seconds when, Callback fn);
  // Schedule `fn` after a delay.
  void schedule_in(Seconds delay, Callback fn);

  // Drop every pending event without running it — the power-loss
  // path: a killed simulation must not fire callbacks scheduled by
  // the pre-crash timeline. The clock stays where it stopped.
  void clear() { heap_ = {}; }

  // Run the next event; returns false when the queue is empty.
  bool step();
  // Run everything (or until `limit` events, as a runaway guard).
  std::size_t run(std::size_t limit = 100000000);
  // Run until the clock passes `until` (events beyond stay queued).
  std::size_t run_until(Seconds until);

 private:
  struct Event {
    double when;
    std::uint64_t sequence;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.sequence > b.sequence;
    }
  };

  Seconds now_{0.0};
  std::uint64_t next_sequence_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

}  // namespace xlf::sim
