// Lifetime experiment driver: age the device to a wear point, let the
// reliability manager reconfigure the ECC, run a workload slice, and
// collect the metrics. Every lifetime figure (Figs. 8-11) is a sweep
// of such points over a log-spaced P/E grid.
#pragma once

#include "src/controller/controller.hpp"
#include "src/sim/subsystem_sim.hpp"
#include "src/sim/workload.hpp"

namespace xlf::sim {

struct LifetimePoint {
  double pe_cycles = 0.0;
  unsigned t_selected = 0;
  double rber = 0.0;
  double uber = 0.0;
  SimStats stats;
};

// Runs `count` requests of `workload` at wear level `pe_cycles`:
// sets uniform wear, invokes the controller's reliability adaptation,
// then executes the stream. The controller/device keep their state
// between calls (a real device only ever moves forward in wear).
LifetimePoint run_at_age(controller::MemoryController& controller,
                         const Workload& workload, std::size_t count,
                         double pe_cycles, std::uint64_t seed);

// Standard log-spaced lifetime grid 1e0..1e6 (the paper's x-axes).
std::vector<double> lifetime_grid(std::size_t points_per_decade = 2);

}  // namespace xlf::sim
