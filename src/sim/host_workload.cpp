#include "src/sim/host_workload.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/expect.hpp"

namespace xlf::sim {
namespace {

// Exponential inter-arrival with the given mean (Poisson stream);
// zero mean short-circuits to back-to-back arrivals without drawing,
// so the pressure case stays on the same random stream as paced runs.
Seconds draw_gap(Seconds mean, Rng& rng) {
  if (mean.value() <= 0.0) return Seconds{0.0};
  return Seconds{-mean.value() * std::log(1.0 - rng.uniform())};
}

void check_tenant(const TenantSpec& tenant) {
  XLF_EXPECT(tenant.hot_fraction > 0.0 && tenant.hot_fraction <= 1.0);
  XLF_EXPECT(tenant.hot_write_fraction >= 0.0 &&
             tenant.hot_write_fraction <= 1.0);
  XLF_EXPECT(tenant.read_fraction >= 0.0 && tenant.read_fraction < 1.0);
  XLF_EXPECT(tenant.trim_fraction >= 0.0 && tenant.trim_fraction < 1.0);
}

// One tenant's command stream — the HotColdWorkload draw sequence
// (gap, read-or-not, target) extended with a trim branch. The trim
// draw is gated on trim_fraction > 0 so a trim-free tenant consumes
// the Rng exactly like HotColdWorkload::generate: that gate is what
// keeps the single-tenant degenerate case byte-identical to the
// pre-redesign single-stream path.
std::vector<host::Command> tenant_commands(const TenantSpec& tenant,
                                           std::uint32_t logical_pages,
                                           std::size_t count,
                                           std::uint16_t queue, Rng& rng) {
  XLF_EXPECT(logical_pages >= 2);
  const auto hot_pages = static_cast<std::uint32_t>(std::max(
      1.0, static_cast<double>(logical_pages) * tenant.hot_fraction));
  std::vector<host::Command> out;
  out.reserve(count);
  std::vector<ftl::Lpa> written;
  for (std::size_t i = 0; i < count; ++i) {
    host::Command command;
    command.queue = queue;
    command.tenant = queue;
    command.gap = draw_gap(tenant.mean_gap, rng);
    if (!written.empty() && rng.chance(tenant.read_fraction)) {
      command.type = host::CmdType::kRead;
      command.lba = written[rng.below(written.size())];
    } else if (tenant.trim_fraction > 0.0 && !written.empty() &&
               rng.chance(tenant.trim_fraction)) {
      // Deallocate a live LPA; swap-pop keeps the written set compact
      // so trimmed pages stop attracting reads and re-trims.
      command.type = host::CmdType::kTrim;
      const std::size_t victim = rng.below(written.size());
      command.lba = written[victim];
      written[victim] = written.back();
      written.pop_back();
    } else {
      command.type = host::CmdType::kWrite;
      if (rng.chance(tenant.hot_write_fraction)) {
        // Hot set: the low end of the LPA space.
        command.lba = static_cast<ftl::Lpa>(rng.below(hot_pages));
      } else {
        command.lba = static_cast<ftl::Lpa>(
            hot_pages + rng.below(logical_pages - hot_pages));
      }
      written.push_back(command.lba);
    }
    out.push_back(command);
  }
  return out;
}

}  // namespace

HotColdWorkload::HotColdWorkload(double hot_fraction,
                                 double hot_write_fraction,
                                 double read_fraction, Seconds mean_gap)
    : hot_fraction_(hot_fraction),
      hot_write_fraction_(hot_write_fraction),
      read_fraction_(read_fraction),
      mean_gap_(mean_gap) {
  XLF_EXPECT(hot_fraction > 0.0 && hot_fraction <= 1.0);
  XLF_EXPECT(hot_write_fraction >= 0.0 && hot_write_fraction <= 1.0);
  XLF_EXPECT(read_fraction >= 0.0 && read_fraction < 1.0);
}

std::vector<HostRequest> HotColdWorkload::generate(std::uint32_t logical_pages,
                                                   std::size_t count,
                                                   Rng& rng) const {
  // One draw loop for both shapes: this is tenant_commands with the
  // trim branch gated off, converted back to flat requests — so the
  // single-tenant degenerate case of the multi-queue generator cannot
  // drift from this stream (it IS this stream).
  TenantSpec tenant;
  tenant.hot_fraction = hot_fraction_;
  tenant.hot_write_fraction = hot_write_fraction_;
  tenant.read_fraction = read_fraction_;
  tenant.trim_fraction = 0.0;
  tenant.mean_gap = mean_gap_;
  const std::vector<host::Command> commands =
      tenant_commands(tenant, logical_pages, count, 0, rng);
  std::vector<HostRequest> out;
  out.reserve(commands.size());
  for (const host::Command& command : commands) {
    out.push_back(HostRequest{command.type == host::CmdType::kWrite
                                  ? OpType::kWrite
                                  : OpType::kRead,
                              command.lba, command.gap});
  }
  return out;
}

SequentialOverwriteWorkload::SequentialOverwriteWorkload(Seconds mean_gap)
    : mean_gap_(mean_gap) {}

std::vector<HostRequest> SequentialOverwriteWorkload::generate(
    std::uint32_t logical_pages, std::size_t count, Rng& rng) const {
  XLF_EXPECT(logical_pages >= 1);
  std::vector<HostRequest> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(HostRequest{
        OpType::kWrite,
        static_cast<ftl::Lpa>(i % logical_pages),
        draw_gap(mean_gap_, rng)});
  }
  return out;
}

UniformOverwriteWorkload::UniformOverwriteWorkload(double read_fraction,
                                                   Seconds mean_gap)
    : read_fraction_(read_fraction), mean_gap_(mean_gap) {
  XLF_EXPECT(read_fraction >= 0.0 && read_fraction < 1.0);
}

std::vector<HostRequest> UniformOverwriteWorkload::generate(
    std::uint32_t logical_pages, std::size_t count, Rng& rng) const {
  XLF_EXPECT(logical_pages >= 1);
  std::vector<HostRequest> out;
  out.reserve(count);
  std::vector<ftl::Lpa> written;
  for (std::size_t i = 0; i < count; ++i) {
    HostRequest request;
    request.gap = draw_gap(mean_gap_, rng);
    if (!written.empty() && rng.chance(read_fraction_)) {
      request.type = OpType::kRead;
      request.lpa = written[rng.below(written.size())];
    } else {
      request.type = OpType::kWrite;
      request.lpa = static_cast<ftl::Lpa>(rng.below(logical_pages));
      written.push_back(request.lpa);
    }
    out.push_back(request);
  }
  return out;
}

MultiTenantWorkload::MultiTenantWorkload(std::vector<TenantSpec> tenants)
    : tenants_(std::move(tenants)) {
  XLF_EXPECT(!tenants_.empty());
  for (const TenantSpec& tenant : tenants_) check_tenant(tenant);
}

std::vector<host::Command> MultiTenantWorkload::generate(
    std::uint32_t logical_pages, std::size_t count, Rng& rng) const {
  // Single tenant: consume the caller's stream directly — no fork, no
  // merge (the merge's absolute-time round trip would perturb gap
  // bits) — so the degenerate case stays on the pre-redesign stream.
  if (tenants_.size() == 1) {
    return tenant_commands(tenants_[0], logical_pages, count, 0, rng);
  }

  // Per-tenant streams from serially pre-forked Rngs: adding a tenant
  // never reshuffles another tenant's draws.
  std::vector<Rng> streams;
  streams.reserve(tenants_.size());
  for (std::size_t t = 0; t < tenants_.size(); ++t) {
    streams.push_back(rng.fork());
  }

  const std::size_t per_tenant = count / tenants_.size();
  const std::size_t remainder = count % tenants_.size();

  struct Pending {
    double arrival;
    std::uint16_t tenant;
    std::size_t sequence;
    host::Command command;
  };
  std::vector<Pending> merged;
  merged.reserve(count);
  for (std::size_t t = 0; t < tenants_.size(); ++t) {
    const std::size_t quota = per_tenant + (t < remainder ? 1 : 0);
    const std::vector<host::Command> stream =
        tenant_commands(tenants_[t], logical_pages, quota,
                        static_cast<std::uint16_t>(t), streams[t]);
    double arrival = 0.0;
    for (std::size_t i = 0; i < stream.size(); ++i) {
      arrival += stream[i].gap.value();
      merged.push_back(
          Pending{arrival, static_cast<std::uint16_t>(t), i, stream[i]});
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const Pending& a, const Pending& b) {
              if (a.arrival != b.arrival) return a.arrival < b.arrival;
              if (a.tenant != b.tenant) return a.tenant < b.tenant;
              return a.sequence < b.sequence;
            });

  // Back to inter-arrival gaps of the merged open-loop stream.
  std::vector<host::Command> out;
  out.reserve(merged.size());
  double previous = 0.0;
  for (Pending& p : merged) {
    p.command.gap = Seconds{p.arrival - previous};
    previous = p.arrival;
    out.push_back(p.command);
  }
  return out;
}

std::vector<host::Command> to_commands(
    const std::vector<HostRequest>& requests) {
  std::vector<host::Command> out;
  out.reserve(requests.size());
  for (const HostRequest& request : requests) {
    host::Command command;
    command.type = request.type == OpType::kWrite ? host::CmdType::kWrite
                                                  : host::CmdType::kRead;
    command.lba = request.lpa;
    command.gap = request.gap;
    out.push_back(command);
  }
  return out;
}

}  // namespace xlf::sim
