#include "src/sim/host_workload.hpp"

#include <cmath>

#include "src/util/expect.hpp"

namespace xlf::sim {
namespace {

// Exponential inter-arrival with the given mean (Poisson stream);
// zero mean short-circuits to back-to-back arrivals without drawing,
// so the pressure case stays on the same random stream as paced runs.
Seconds draw_gap(Seconds mean, Rng& rng) {
  if (mean.value() <= 0.0) return Seconds{0.0};
  return Seconds{-mean.value() * std::log(1.0 - rng.uniform())};
}

}  // namespace

HotColdWorkload::HotColdWorkload(double hot_fraction,
                                 double hot_write_fraction,
                                 double read_fraction, Seconds mean_gap)
    : hot_fraction_(hot_fraction),
      hot_write_fraction_(hot_write_fraction),
      read_fraction_(read_fraction),
      mean_gap_(mean_gap) {
  XLF_EXPECT(hot_fraction > 0.0 && hot_fraction <= 1.0);
  XLF_EXPECT(hot_write_fraction >= 0.0 && hot_write_fraction <= 1.0);
  XLF_EXPECT(read_fraction >= 0.0 && read_fraction < 1.0);
}

std::vector<HostRequest> HotColdWorkload::generate(std::uint32_t logical_pages,
                                                   std::size_t count,
                                                   Rng& rng) const {
  XLF_EXPECT(logical_pages >= 2);
  const auto hot_pages = static_cast<std::uint32_t>(std::max(
      1.0, static_cast<double>(logical_pages) * hot_fraction_));
  std::vector<HostRequest> out;
  out.reserve(count);
  std::vector<ftl::Lpa> written;
  for (std::size_t i = 0; i < count; ++i) {
    HostRequest request;
    request.gap = draw_gap(mean_gap_, rng);
    if (!written.empty() && rng.chance(read_fraction_)) {
      request.type = OpType::kRead;
      request.lpa = written[rng.below(written.size())];
    } else {
      request.type = OpType::kWrite;
      if (rng.chance(hot_write_fraction_)) {
        // Hot set: the low end of the LPA space.
        request.lpa = static_cast<ftl::Lpa>(rng.below(hot_pages));
      } else {
        request.lpa = static_cast<ftl::Lpa>(
            hot_pages + rng.below(logical_pages - hot_pages));
      }
      written.push_back(request.lpa);
    }
    out.push_back(request);
  }
  return out;
}

SequentialOverwriteWorkload::SequentialOverwriteWorkload(Seconds mean_gap)
    : mean_gap_(mean_gap) {}

std::vector<HostRequest> SequentialOverwriteWorkload::generate(
    std::uint32_t logical_pages, std::size_t count, Rng& rng) const {
  XLF_EXPECT(logical_pages >= 1);
  std::vector<HostRequest> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(HostRequest{
        OpType::kWrite,
        static_cast<ftl::Lpa>(i % logical_pages),
        draw_gap(mean_gap_, rng)});
  }
  return out;
}

UniformOverwriteWorkload::UniformOverwriteWorkload(double read_fraction,
                                                   Seconds mean_gap)
    : read_fraction_(read_fraction), mean_gap_(mean_gap) {
  XLF_EXPECT(read_fraction >= 0.0 && read_fraction < 1.0);
}

std::vector<HostRequest> UniformOverwriteWorkload::generate(
    std::uint32_t logical_pages, std::size_t count, Rng& rng) const {
  XLF_EXPECT(logical_pages >= 1);
  std::vector<HostRequest> out;
  out.reserve(count);
  std::vector<ftl::Lpa> written;
  for (std::size_t i = 0; i < count; ++i) {
    HostRequest request;
    request.gap = draw_gap(mean_gap_, rng);
    if (!written.empty() && rng.chance(read_fraction_)) {
      request.type = OpType::kRead;
      request.lpa = written[rng.below(written.size())];
    } else {
      request.type = OpType::kWrite;
      request.lpa = static_cast<ftl::Lpa>(rng.below(logical_pages));
      written.push_back(request.lpa);
    }
    out.push_back(request);
  }
  return out;
}

}  // namespace xlf::sim
