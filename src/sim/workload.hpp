// Workload generators for the subsystem simulator, modelled on the
// paper's motivating applications (Sections 6.3.1/6.3.2): multimedia
// streaming and digitised pictures (read-intensive), OS upgrades and
// data backup (large sequential writes), web transactions (mixed),
// plus synthetic sequential/random primitives and trace replay.
#pragma once

#include <string>
#include <vector>

#include "src/nand/geometry.hpp"
#include "src/util/rng.hpp"
#include "src/util/units.hpp"

namespace xlf::sim {

enum class OpType { kRead, kWrite };

struct Request {
  OpType type = OpType::kRead;
  nand::PageAddress addr;
  // Host think time before this request is issued (closed-loop pacing;
  // zero = back-to-back).
  Seconds gap{0.0};
};

// A workload is a finite request stream over a device geometry.
class Workload {
 public:
  virtual ~Workload() = default;
  virtual std::string name() const = 0;
  // Generate the full request stream.
  virtual std::vector<Request> generate(const nand::Geometry& geometry,
                                        std::size_t count, Rng& rng) const = 0;
};

// Sequential full-device reads (media playback from flash).
class SequentialReadWorkload final : public Workload {
 public:
  std::string name() const override { return "sequential-read"; }
  std::vector<Request> generate(const nand::Geometry& geometry,
                                std::size_t count, Rng& rng) const override;
};

// Uniformly random page reads (picture browsing, XIP code fetch).
class RandomReadWorkload final : public Workload {
 public:
  std::string name() const override { return "random-read"; }
  std::vector<Request> generate(const nand::Geometry& geometry,
                                std::size_t count, Rng& rng) const override;
};

// Sequential writes filling blocks (OS upgrade, backup image).
class WriteBurstWorkload final : public Workload {
 public:
  std::string name() const override { return "write-burst"; }
  std::vector<Request> generate(const nand::Geometry& geometry,
                                std::size_t count, Rng& rng) const override;
};

// Interleaved reads and writes with a configurable read fraction
// (web-transaction style storage traffic).
class MixedWorkload final : public Workload {
 public:
  explicit MixedWorkload(double read_fraction);
  std::string name() const override;
  std::vector<Request> generate(const nand::Geometry& geometry,
                                std::size_t count, Rng& rng) const override;

 private:
  double read_fraction_;
};

// Bitrate-paced sequential reads: a media stream consuming pages at
// a constant rate inserts think time between requests; quality of
// service holds as long as the device can keep up.
class MultimediaStreamingWorkload final : public Workload {
 public:
  explicit MultimediaStreamingWorkload(BytesPerSecond bitrate,
                                       std::size_t page_bytes = 4096);
  std::string name() const override { return "multimedia-streaming"; }
  BytesPerSecond bitrate() const { return bitrate_; }
  std::vector<Request> generate(const nand::Geometry& geometry,
                                std::size_t count, Rng& rng) const override;

 private:
  BytesPerSecond bitrate_;
  std::size_t page_bytes_;
};

// Record/replay: capture a stream once, replay it bit-identically.
std::vector<Request> record_trace(const Workload& workload,
                                  const nand::Geometry& geometry,
                                  std::size_t count, std::uint64_t seed);

// Text serialisation of a recorded trace — one request per line,
// "R|W <block> <page> <gap seconds>". Gaps print with 17 significant
// digits, so to_text/from_text round-trips every double bit-exactly.
std::string trace_to_text(const std::vector<Request>& trace);
std::vector<Request> trace_from_text(const std::string& text);

// Replays a recorded (or deserialised) trace through the Workload
// interface: generate() returns the stored requests verbatim — the
// rng is unused and `count` caps the replay length.
class TraceReplayWorkload final : public Workload {
 public:
  explicit TraceReplayWorkload(std::vector<Request> trace);
  std::string name() const override { return "trace-replay"; }
  std::size_t size() const { return trace_.size(); }
  std::vector<Request> generate(const nand::Geometry& geometry,
                                std::size_t count, Rng& rng) const override;

 private:
  std::vector<Request> trace_;
};

}  // namespace xlf::sim
