#include "src/sim/workload.hpp"

#include <algorithm>
#include <cstdio>

#include "src/util/expect.hpp"

namespace xlf::sim {
namespace {

nand::PageAddress nth_page(const nand::Geometry& geometry, std::size_t n) {
  const std::size_t wrapped = n % geometry.pages();
  return nand::PageAddress{
      static_cast<std::uint32_t>(wrapped / geometry.pages_per_block),
      static_cast<std::uint32_t>(wrapped % geometry.pages_per_block)};
}

nand::PageAddress random_page(const nand::Geometry& geometry, Rng& rng) {
  return nth_page(geometry, static_cast<std::size_t>(rng.below(geometry.pages())));
}

}  // namespace

std::vector<Request> SequentialReadWorkload::generate(
    const nand::Geometry& geometry, std::size_t count, Rng&) const {
  std::vector<Request> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back({OpType::kRead, nth_page(geometry, i), Seconds{0.0}});
  }
  return out;
}

std::vector<Request> RandomReadWorkload::generate(
    const nand::Geometry& geometry, std::size_t count, Rng& rng) const {
  std::vector<Request> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back({OpType::kRead, random_page(geometry, rng), Seconds{0.0}});
  }
  return out;
}

std::vector<Request> WriteBurstWorkload::generate(
    const nand::Geometry& geometry, std::size_t count, Rng&) const {
  std::vector<Request> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back({OpType::kWrite, nth_page(geometry, i), Seconds{0.0}});
  }
  return out;
}

MixedWorkload::MixedWorkload(double read_fraction)
    : read_fraction_(read_fraction) {
  XLF_EXPECT(read_fraction >= 0.0 && read_fraction <= 1.0);
}

std::string MixedWorkload::name() const {
  return "mixed-r" + std::to_string(static_cast<int>(read_fraction_ * 100));
}

std::vector<Request> MixedWorkload::generate(const nand::Geometry& geometry,
                                             std::size_t count,
                                             Rng& rng) const {
  std::vector<Request> out;
  out.reserve(count);
  std::size_t write_cursor = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (rng.chance(read_fraction_)) {
      out.push_back({OpType::kRead, random_page(geometry, rng), Seconds{0.0}});
    } else {
      out.push_back(
          {OpType::kWrite, nth_page(geometry, write_cursor++), Seconds{0.0}});
    }
  }
  return out;
}

MultimediaStreamingWorkload::MultimediaStreamingWorkload(
    BytesPerSecond bitrate, std::size_t page_bytes)
    : bitrate_(bitrate), page_bytes_(page_bytes) {
  XLF_EXPECT(bitrate.value() > 0.0);
  XLF_EXPECT(page_bytes > 0);
}

std::vector<Request> MultimediaStreamingWorkload::generate(
    const nand::Geometry& geometry, std::size_t count, Rng&) const {
  // The stream consumes one page every page_bytes / bitrate seconds.
  const Seconds gap{static_cast<double>(page_bytes_) / bitrate_.value()};
  std::vector<Request> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back({OpType::kRead, nth_page(geometry, i), gap});
  }
  return out;
}

std::vector<Request> record_trace(const Workload& workload,
                                  const nand::Geometry& geometry,
                                  std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  return workload.generate(geometry, count, rng);
}

std::string trace_to_text(const std::vector<Request>& trace) {
  std::string out;
  char line[80];
  for (const Request& request : trace) {
    // %.17g round-trips any binary64 exactly through strtod.
    std::snprintf(line, sizeof line, "%c %u %u %.17g\n",
                  request.type == OpType::kRead ? 'R' : 'W',
                  request.addr.block, request.addr.page, request.gap.value());
    out += line;
  }
  return out;
}

std::vector<Request> trace_from_text(const std::string& text) {
  std::vector<Request> trace;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    char op = 0;
    unsigned block = 0, page = 0;
    double gap = 0.0;
    const int fields =
        std::sscanf(line.c_str(), " %c %u %u %lg", &op, &block, &page, &gap);
    XLF_EXPECT(fields == 4 && "malformed trace line");
    XLF_EXPECT(op == 'R' || op == 'W');
    trace.push_back(Request{op == 'R' ? OpType::kRead : OpType::kWrite,
                            nand::PageAddress{block, page}, Seconds{gap}});
  }
  return trace;
}

TraceReplayWorkload::TraceReplayWorkload(std::vector<Request> trace)
    : trace_(std::move(trace)) {}

std::vector<Request> TraceReplayWorkload::generate(
    const nand::Geometry& geometry, std::size_t count, Rng&) const {
  std::vector<Request> out;
  out.reserve(std::min(count, trace_.size()));
  for (std::size_t i = 0; i < trace_.size() && i < count; ++i) {
    XLF_EXPECT(trace_[i].addr.block < geometry.blocks);
    XLF_EXPECT(trace_[i].addr.page < geometry.pages_per_block);
    out.push_back(trace_[i]);
  }
  return out;
}

}  // namespace xlf::sim
