#include "src/sim/workload.hpp"

#include "src/util/expect.hpp"

namespace xlf::sim {
namespace {

nand::PageAddress nth_page(const nand::Geometry& geometry, std::size_t n) {
  const std::size_t wrapped = n % geometry.pages();
  return nand::PageAddress{
      static_cast<std::uint32_t>(wrapped / geometry.pages_per_block),
      static_cast<std::uint32_t>(wrapped % geometry.pages_per_block)};
}

nand::PageAddress random_page(const nand::Geometry& geometry, Rng& rng) {
  return nth_page(geometry, static_cast<std::size_t>(rng.below(geometry.pages())));
}

}  // namespace

std::vector<Request> SequentialReadWorkload::generate(
    const nand::Geometry& geometry, std::size_t count, Rng&) const {
  std::vector<Request> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back({OpType::kRead, nth_page(geometry, i), Seconds{0.0}});
  }
  return out;
}

std::vector<Request> RandomReadWorkload::generate(
    const nand::Geometry& geometry, std::size_t count, Rng& rng) const {
  std::vector<Request> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back({OpType::kRead, random_page(geometry, rng), Seconds{0.0}});
  }
  return out;
}

std::vector<Request> WriteBurstWorkload::generate(
    const nand::Geometry& geometry, std::size_t count, Rng&) const {
  std::vector<Request> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back({OpType::kWrite, nth_page(geometry, i), Seconds{0.0}});
  }
  return out;
}

MixedWorkload::MixedWorkload(double read_fraction)
    : read_fraction_(read_fraction) {
  XLF_EXPECT(read_fraction >= 0.0 && read_fraction <= 1.0);
}

std::string MixedWorkload::name() const {
  return "mixed-r" + std::to_string(static_cast<int>(read_fraction_ * 100));
}

std::vector<Request> MixedWorkload::generate(const nand::Geometry& geometry,
                                             std::size_t count,
                                             Rng& rng) const {
  std::vector<Request> out;
  out.reserve(count);
  std::size_t write_cursor = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (rng.chance(read_fraction_)) {
      out.push_back({OpType::kRead, random_page(geometry, rng), Seconds{0.0}});
    } else {
      out.push_back(
          {OpType::kWrite, nth_page(geometry, write_cursor++), Seconds{0.0}});
    }
  }
  return out;
}

MultimediaStreamingWorkload::MultimediaStreamingWorkload(
    BytesPerSecond bitrate, std::size_t page_bytes)
    : bitrate_(bitrate), page_bytes_(page_bytes) {
  XLF_EXPECT(bitrate.value() > 0.0);
  XLF_EXPECT(page_bytes > 0);
}

std::vector<Request> MultimediaStreamingWorkload::generate(
    const nand::Geometry& geometry, std::size_t count, Rng&) const {
  // The stream consumes one page every page_bytes / bitrate seconds.
  const Seconds gap{static_cast<double>(page_bytes_) / bitrate_.value()};
  std::vector<Request> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back({OpType::kRead, nth_page(geometry, i), gap});
  }
  return out;
}

std::vector<Request> record_trace(const Workload& workload,
                                  const nand::Geometry& geometry,
                                  std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  return workload.generate(geometry, count, rng);
}

}  // namespace xlf::sim
