// Sharded per-die data-plane execution for one simulation run.
//
// The simulator's logical event loop (arrivals, arbitration, FTL
// state, completion merge) is inherently serial — that is what makes
// runs byte-reproducible. What parallelizes is the physical work
// underneath it: each die's cell-array mutations (page programs,
// erases, wear jumps) touch only that die's private array and noise
// Rng. DieShardExecutor attaches one nand::DataPlaneQueue to every
// die of an Ssd, so the issue loop appends cell jobs instead of
// running them inline, and flush() drains all dies concurrently on a
// borrowed ThreadPool — one worker per die, each queue in strict push
// order.
//
// Determinism contract: ordering is per-die FIFO, and the serial
// merge point is the issue loop itself — every cross-die interaction
// (the L2P map, allocators, the clock, channel timelines) already
// happened serially before a job was enqueued. A read landing on a
// die with pending jobs drains that die inline first (see
// NandDevice::read_page), so data dependencies hold. Any thread
// count — including 1 — therefore produces byte-identical results,
// and so does detaching the executor entirely.
#pragma once

#include <cstddef>
#include <vector>

#include "src/ftl/ssd.hpp"
#include "src/nand/data_plane.hpp"
#include "src/util/thread_pool.hpp"

namespace xlf::sim {

class DieShardExecutor {
 public:
  // Attaches to every die of `ssd`; both referents must outlive the
  // executor. `batch_jobs` is the backlog at which batch_ready()
  // starts asking the driver for a flush (bounds captured-payload
  // memory while keeping flush batches big enough to amortize the
  // fork-join).
  DieShardExecutor(ftl::Ssd& ssd, ThreadPool& pool,
                   std::size_t batch_jobs = 4096);
  // Drains remaining work and detaches (the Ssd reverts to inline
  // execution).
  ~DieShardExecutor();

  DieShardExecutor(const DieShardExecutor&) = delete;
  DieShardExecutor& operator=(const DieShardExecutor&) = delete;

  std::size_t pending_jobs() const;
  bool batch_ready() const { return pending_jobs() >= batch_jobs_; }

  // Run every pending cell job, dies in parallel (one worker per
  // die), each die's jobs in push order. Callers must be at a safe
  // point: not inside an FTL or controller operation.
  void flush();

 private:
  ftl::Ssd* ssd_;
  ThreadPool* pool_;
  std::size_t batch_jobs_;
  std::vector<nand::DataPlaneQueue> queues_;
};

}  // namespace xlf::sim
