#include "src/sim/event_queue.hpp"

#include "src/util/expect.hpp"

namespace xlf::sim {

void EventQueue::schedule_at(Seconds when, Callback fn) {
  XLF_EXPECT(when >= now_);
  XLF_EXPECT(fn != nullptr);
  heap_.push(Event{when.value(), next_sequence_++, std::move(fn)});
}

void EventQueue::schedule_in(Seconds delay, Callback fn) {
  XLF_EXPECT(delay.value() >= 0.0);
  schedule_at(now_ + delay, std::move(fn));
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // Copy out before pop: the callback may schedule new events.
  Event event = heap_.top();
  heap_.pop();
  now_ = Seconds{event.when};
  event.fn();
  return true;
}

std::size_t EventQueue::run(std::size_t limit) {
  std::size_t executed = 0;
  while (executed < limit && step()) ++executed;
  // Runaway only if events remain after the budget; draining exactly
  // `limit` events is a legitimate completion.
  XLF_ENSURE(heap_.empty() && "event limit hit: runaway simulation");
  return executed;
}

std::size_t EventQueue::run_until(Seconds until) {
  std::size_t executed = 0;
  while (!heap_.empty() && heap_.top().when <= until.value()) {
    step();
    ++executed;
  }
  if (now_ < until) now_ = until;
  return executed;
}

}  // namespace xlf::sim
