#include "src/sim/subsystem_sim.hpp"

#include <algorithm>

#include "src/util/expect.hpp"

namespace xlf::sim {

void SimStats::merge(const SimStats& other) {
  reads += other.reads;
  writes += other.writes;
  erases += other.erases;
  uncorrectable += other.uncorrectable;
  data_mismatches += other.data_mismatches;
  corrected_bits += other.corrected_bits;
  qos_misses += other.qos_misses;
  elapsed += other.elapsed;
  read_busy += other.read_busy;
  write_busy += other.write_busy;
  ecc_energy += other.ecc_energy;
  nand_energy += other.nand_energy;
  read_latency.merge(other.read_latency);
  write_latency.merge(other.write_latency);
}

BytesPerSecond SimStats::read_throughput(std::size_t page_bytes) const {
  if (read_busy.value() <= 0.0) return BytesPerSecond{0.0};
  return BytesPerSecond{static_cast<double>(reads * page_bytes) /
                        read_busy.value()};
}

BytesPerSecond SimStats::write_throughput(std::size_t page_bytes) const {
  if (write_busy.value() <= 0.0) return BytesPerSecond{0.0};
  return BytesPerSecond{static_cast<double>(writes * page_bytes) /
                        write_busy.value()};
}

SubsystemSimulator::SubsystemSimulator(
    controller::MemoryController& controller, const SimConfig& config)
    : controller_(&controller), config_(config), data_rng_(config.data_seed) {}

BitVec SubsystemSimulator::random_payload() {
  const std::uint32_t bits =
      controller_->device().geometry().data_bits_per_page();
  BitVec data(bits);
  for (std::size_t w = 0; w < (bits + 63) / 64; ++w) {
    for (std::size_t b = 0; b < 64 && w * 64 + b < bits; ++b) {
      if (data_rng_.chance(0.5)) data.set(w * 64 + b, true);
    }
  }
  return data;
}

void SubsystemSimulator::prepopulate() {
  const auto& geometry = controller_->device().geometry();
  for (std::uint32_t block = 0; block < geometry.blocks; ++block) {
    for (std::uint32_t p = 0; p < geometry.pages_per_block; ++p) {
      const nand::PageAddress addr{block, p};
      if (!controller_->device().array().is_erased(addr)) continue;
      BitVec payload = random_payload();
      controller_->write_page(addr, payload);
      written_[{block, p}] = std::move(payload);
    }
  }
}

void SubsystemSimulator::service_write(nand::PageAddress addr,
                                       SimStats& stats) {
  // Writing a programmed page requires an erase of its block first
  // (no FTL indirection in this subsystem-level model).
  if (!controller_->device().array().is_erased(addr)) {
    const Seconds erase_time = controller_->erase_block(addr.block);
    queue_.schedule_in(erase_time, [] {});
    queue_.run();
    stats.write_busy += erase_time;
    ++stats.erases;
    for (std::uint32_t p = 0;
         p < controller_->device().geometry().pages_per_block; ++p) {
      written_.erase({addr.block, p});
    }
  }
  BitVec payload = random_payload();
  const controller::WriteResult result =
      controller_->write_page(addr, payload);
  queue_.schedule_in(result.latency, [] {});
  queue_.run();
  stats.write_busy += result.latency;
  stats.write_latency.add(result.latency.value());
  stats.ecc_energy += result.ecc_energy;
  stats.nand_energy += result.nand_energy;
  ++stats.writes;
  written_[{addr.block, addr.page}] = std::move(payload);
}

void SubsystemSimulator::service_read(nand::PageAddress addr,
                                      SimStats& stats) {
  // Reads of pages this simulator has not written are satisfied by
  // writing them first outside the accounting (state setup). A page
  // programmed by an earlier simulator instance must be recycled
  // through an erase before it can be rewritten.
  if (written_.find({addr.block, addr.page}) == written_.end()) {
    if (!controller_->device().array().is_erased(addr)) {
      controller_->erase_block(addr.block);
      for (std::uint32_t p = 0;
           p < controller_->device().geometry().pages_per_block; ++p) {
        written_.erase({addr.block, p});
      }
    }
    BitVec payload = random_payload();
    controller_->write_page(addr, payload);
    written_[{addr.block, addr.page}] = std::move(payload);
  }
  const controller::ReadResult result = controller_->read_page(addr);
  queue_.schedule_in(result.latency, [] {});
  queue_.run();
  stats.read_busy += result.latency;
  stats.read_latency.add(result.latency.value());
  stats.ecc_energy += result.ecc_energy;
  stats.nand_energy += result.nand_energy;
  stats.corrected_bits += result.corrected_bits;
  if (result.uncorrectable) ++stats.uncorrectable;
  ++stats.reads;
  if (config_.verify_data && !result.uncorrectable) {
    const auto it = written_.find({addr.block, addr.page});
    if (it != written_.end() && !(result.data == it->second)) {
      ++stats.data_mismatches;
    }
  }
}

SimStats SubsystemSimulator::run(const std::vector<Request>& requests) {
  SimStats stats;
  Seconds next_arrival = queue_.now();
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Request& request = requests[i];
    next_arrival += request.gap;
    // Closed loop with pacing: service starts at the later of the
    // arrival and device-free time.
    if (queue_.now() < next_arrival) {
      queue_.run_until(next_arrival);
    }
    const Seconds service_start = queue_.now();
    if (request.type == OpType::kWrite) {
      service_write(request.addr, stats);
    } else {
      service_read(request.addr, stats);
    }
    // A paced consumer misses QoS when service runs past the next
    // scheduled arrival.
    if (i + 1 < requests.size() && requests[i + 1].gap.value() > 0.0) {
      if (queue_.now() > next_arrival + requests[i + 1].gap) {
        ++stats.qos_misses;
      }
    }
    (void)service_start;
  }
  stats.elapsed = queue_.now();
  return stats;
}

}  // namespace xlf::sim
