// Host-level (LBA) workload generators for the open-loop SSD
// simulator. Unlike the physical-address workloads in workload.hpp,
// these address the FTL's logical page space, and their defining
// feature is *overwrite*: re-writing live LPAs is what invalidates
// physical pages, triggers garbage collection, and spreads wear — the
// machinery the per-block adaptive configuration pays off on.
//
// Arrival gaps are inter-arrival times of an open-loop stream (the
// host issues on its own clock, not on completions). A zero mean gap
// degenerates to maximum pressure (back-to-back arrivals).
#pragma once

#include <string>
#include <vector>

#include "src/ftl/mapping.hpp"
#include "src/host/command.hpp"
#include "src/sim/workload.hpp"
#include "src/util/rng.hpp"
#include "src/util/units.hpp"

namespace xlf::sim {

struct HostRequest {
  OpType type = OpType::kWrite;
  ftl::Lpa lpa = 0;
  // Inter-arrival time before this request enters the host queue.
  Seconds gap{0.0};
};

class HostWorkload {
 public:
  virtual ~HostWorkload() = default;
  virtual std::string name() const = 0;
  // Generate `count` requests over an LPA space of `logical_pages`.
  virtual std::vector<HostRequest> generate(std::uint32_t logical_pages,
                                            std::size_t count,
                                            Rng& rng) const = 0;
};

// Skewed overwrite traffic: a `hot_fraction` slice of the LPA space
// receives `hot_write_fraction` of all writes (the classic hot/cold
// split; 0.2/0.8 approximates the usual "80% of writes hit 20% of
// data"). Reads, a `read_fraction` of requests, target LPAs the
// stream has already written, so every read hits mapped data.
class HotColdWorkload final : public HostWorkload {
 public:
  HotColdWorkload(double hot_fraction, double hot_write_fraction,
                  double read_fraction, Seconds mean_gap = Seconds{0.0});
  std::string name() const override { return "hot-cold"; }
  std::vector<HostRequest> generate(std::uint32_t logical_pages,
                                    std::size_t count,
                                    Rng& rng) const override;

 private:
  double hot_fraction_;
  double hot_write_fraction_;
  double read_fraction_;
  Seconds mean_gap_;
};

// Sequential overwrite: cycles through the LPA space writing every
// page in order, pass after pass — uniform wear, GC of fully invalid
// blocks (the write-amplification floor).
class SequentialOverwriteWorkload final : public HostWorkload {
 public:
  explicit SequentialOverwriteWorkload(Seconds mean_gap = Seconds{0.0});
  std::string name() const override { return "seq-overwrite"; }
  std::vector<HostRequest> generate(std::uint32_t logical_pages,
                                    std::size_t count,
                                    Rng& rng) const override;

 private:
  Seconds mean_gap_;
};

// Uniformly random overwrites (no skew): the GC stress case — every
// block ends up a mix of valid and invalid pages.
class UniformOverwriteWorkload final : public HostWorkload {
 public:
  UniformOverwriteWorkload(double read_fraction,
                           Seconds mean_gap = Seconds{0.0});
  std::string name() const override { return "uniform-overwrite"; }
  std::vector<HostRequest> generate(std::uint32_t logical_pages,
                                    std::size_t count,
                                    Rng& rng) const override;

 private:
  double read_fraction_;
  Seconds mean_gap_;
};

// One tenant of the multi-queue composite generator: hot/cold
// overwrite traffic (the HotColdWorkload shape) extended with trim —
// a `trim_fraction` share of the non-read requests deallocates a
// previously written LPA instead of overwriting one, which is what
// hands the FTL's GC cheap (invalid-page-rich) victims.
struct TenantSpec {
  double hot_fraction = 0.25;
  double hot_write_fraction = 0.85;
  double read_fraction = 0.3;
  double trim_fraction = 0.0;
  Seconds mean_gap{0.0};
};

// Composite multi-tenant host-command generator: tenant i submits on
// queue i, each tenant draws its stream from its own serially
// pre-forked Rng, and the streams merge into one open-loop arrival
// sequence ordered by absolute arrival time (ties break by tenant,
// then sequence — deterministic).
//
// Degenerate-case contract: with exactly one tenant and
// trim_fraction == 0, the generator consumes the caller's Rng
// identically to HotColdWorkload::generate (no fork, no extra draws)
// and emits the same stream as host commands on queue 0 — which is
// how the multi-queue sweep reproduces the pre-redesign single-stream
// output byte for byte (tests/test_host_workload.cpp pins this).
class MultiTenantWorkload {
 public:
  explicit MultiTenantWorkload(std::vector<TenantSpec> tenants);

  std::size_t tenants() const { return tenants_.size(); }
  std::string name() const { return "multi-tenant"; }

  // Generate `count` commands total, split evenly across tenants
  // (earlier tenants absorb the remainder).
  std::vector<host::Command> generate(std::uint32_t logical_pages,
                                      std::size_t count, Rng& rng) const;

 private:
  std::vector<TenantSpec> tenants_;
};

// The flat single-stream view converted onto the command API: every
// HostRequest becomes a one-page read/write command on queue 0 with
// the same arrival gap. The legacy SsdSimulator::run(requests) path
// goes through this, so both entry points execute identical command
// streams.
std::vector<host::Command> to_commands(
    const std::vector<HostRequest>& requests);

}  // namespace xlf::sim
