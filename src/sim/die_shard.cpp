#include "src/sim/die_shard.hpp"

namespace xlf::sim {

DieShardExecutor::DieShardExecutor(ftl::Ssd& ssd, ThreadPool& pool,
                                   std::size_t batch_jobs)
    : ssd_(&ssd), pool_(&pool), batch_jobs_(batch_jobs),
      queues_(ssd.dies()) {
  for (std::size_t d = 0; d < queues_.size(); ++d) {
    ssd_->die(d).device().attach_data_plane(&queues_[d]);
  }
}

DieShardExecutor::~DieShardExecutor() {
  // attach_data_plane(nullptr) drains each die's queue before
  // detaching, so destruction leaves the arrays current even without
  // an explicit flush.
  for (std::size_t d = 0; d < queues_.size(); ++d) {
    ssd_->die(d).device().attach_data_plane(nullptr);
  }
}

std::size_t DieShardExecutor::pending_jobs() const {
  std::size_t total = 0;
  for (const nand::DataPlaneQueue& q : queues_) total += q.pending_jobs();
  return total;
}

void DieShardExecutor::flush() {
  if (pending_jobs() == 0) return;
  pool_->parallel_for(queues_.size(),
                      [this](std::size_t d) { queues_[d].drain(); });
}

}  // namespace xlf::sim
