#include "src/sim/lifetime.hpp"

#include "src/bch/code_params.hpp"
#include "src/util/stats.hpp"

namespace xlf::sim {

LifetimePoint run_at_age(controller::MemoryController& controller,
                         const Workload& workload, std::size_t count,
                         double pe_cycles, std::uint64_t seed) {
  LifetimePoint point;
  point.pe_cycles = pe_cycles;

  controller.device().set_uniform_wear(pe_cycles);
  point.t_selected = controller.adapt_ecc(pe_cycles);

  const nand::AgingLaw& law = controller.device().config().array.aging;
  point.rber = law.rber(controller.program_algorithm(), pe_cycles);
  const bch::CodeParams params{controller.ecc().current_params()};
  point.uber = bch::uber(point.rber, params.n(), point.t_selected);

  Rng rng(seed);
  const auto requests =
      workload.generate(controller.device().geometry(), count, rng);
  SubsystemSimulator simulator(controller);
  point.stats = simulator.run(requests);
  return point;
}

std::vector<double> lifetime_grid(std::size_t points_per_decade) {
  return log_space(1.0, 1e6, 6 * points_per_decade + 1);
}

}  // namespace xlf::sim
