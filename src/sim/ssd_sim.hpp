// Open-loop SSD simulator: host-level (LBA) requests arrive on their
// own clock, up to `queue_depth` of them are in flight at once, and
// the FTL + channel/die dispatcher resolve where and when each one
// runs. This replaces the single-outstanding-request closed loop of
// SubsystemSimulator at SSD scale: with QD > 1 and multiple dies,
// requests to different dies genuinely overlap, which is where the
// multi-die refactor earns its throughput.
//
// Mechanics: arrivals are pre-scheduled on the EventQueue (open
// loop); an issue step runs whenever an arrival lands or an in-flight
// request completes, admitting host-queue requests while fewer than
// queue_depth are outstanding. FTL state (mapping, GC, per-block t)
// mutates at issue time; the dispatcher's resource timelines place
// the operation; the completion event records the arrival-to-
// completion latency. Single-threaded and event-ordered, so runs are
// bit-reproducible.
#pragma once

#include <cstddef>
#include <deque>
#include <map>
#include <vector>

#include "src/ftl/ssd.hpp"
#include "src/sim/event_queue.hpp"
#include "src/sim/host_workload.hpp"
#include "src/util/stats.hpp"

namespace xlf::sim {

struct SsdSimConfig {
  // Maximum requests in flight across the whole SSD.
  std::size_t queue_depth = 4;
  // Verify read payloads bit-for-bit against the host's write record.
  bool verify_data = true;
  std::uint64_t data_seed = 0xDA7A5EED;
};

struct SsdSimStats {
  // Host operations serviced this run.
  std::size_t reads = 0;
  std::size_t writes = 0;
  std::size_t unmapped_reads = 0;
  std::size_t uncorrectable = 0;
  std::size_t data_mismatches = 0;
  std::size_t corrected_bits = 0;

  // FTL activity attributable to this run (deltas over the run).
  std::uint64_t gc_relocations = 0;
  std::uint64_t erases = 0;
  std::uint64_t wl_swaps = 0;
  double write_amplification = 0.0;
  // Background scrub activity (filled by callers that run Ftl::scrub
  // around this run — e.g. the FTL sweep; the simulator itself never
  // scrubs, so these stay 0 unless a refresh policy is in play).
  std::uint64_t refresh_blocks = 0;
  std::uint64_t refresh_relocations = 0;

  // Per-block configuration spread over the FTL's lifetime so far:
  // min == max means wear never diverged enough for the reliability
  // manager to pick different t for different blocks.
  unsigned min_t_used = 0;
  unsigned max_t_used = 0;
  double wear_min = 0.0;
  double wear_max = 0.0;

  Seconds elapsed{0.0};
  Seconds gc_busy{0.0};  // die time spent on GC + wear leveling
  Joules ecc_energy{0.0};
  Joules nand_energy{0.0};
  RunningStats read_latency;   // arrival -> completion, seconds
  RunningStats write_latency;

  // Busy fraction of each die / channel over this run's elapsed time.
  std::vector<double> die_utilisation;
  std::vector<double> channel_utilisation;

  double die_util_min() const;
  double die_util_max() const;
  double die_util_mean() const;
};

class SsdSimulator {
 public:
  explicit SsdSimulator(ftl::Ssd& ssd, const SsdSimConfig& config = {});

  // Write every logical page once, sequentially, outside any run's
  // accounting (state setup for read/overwrite experiments).
  void prepopulate();

  // Execute the arrival stream; returns this run's statistics.
  SsdSimStats run(const std::vector<HostRequest>& requests);

 private:
  BitVec random_payload();
  void try_issue(SsdSimStats& stats);

  ftl::Ssd* ssd_;
  SsdSimConfig config_;
  EventQueue queue_;
  Rng data_rng_;
  // Host view of every LPA's current payload (verification oracle).
  std::map<ftl::Lpa, BitVec> written_;

  // Per-run issue state.
  const std::vector<HostRequest>* requests_ = nullptr;
  std::deque<std::pair<std::size_t, Seconds>> host_queue_;  // (index, arrival)
  std::size_t outstanding_ = 0;
};

}  // namespace xlf::sim
