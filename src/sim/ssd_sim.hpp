// Open-loop SSD simulator, now a thin driver over the multi-queue
// host command API (src/host/): host commands — Read, Write, Trim,
// Flush — arrive on their own clock onto N submission queues, an
// arbitration policy picks which queue issues next while fewer than
// `queue_depth` commands are outstanding, and the FTL + channel/die
// dispatcher resolve where and when each page of the command runs.
// Completions post back through the host interface, which keeps
// per-queue latency statistics next to the global ones.
//
// Mechanics: arrivals are pre-scheduled on the EventQueue (open
// loop); an issue step runs whenever an arrival lands or an in-flight
// command completes. FTL state (mapping, GC, per-block t) mutates at
// issue time; the dispatcher's resource timelines place each page
// operation; a command completes when its last page does. Trim is
// metadata-only (unmap + valid-counter decrement) and completes
// immediately; Flush is a per-queue barrier — it completes once every
// command previously issued from its queue has, and holds that
// queue's later commands until then. Single-threaded and
// event-ordered, so runs are bit-reproducible.
//
// The pre-redesign single-stream interface survives as the 1-queue
// round-robin degenerate case: run(requests) converts the flat
// request vector onto queue 0 and produces byte-identical statistics
// to the old flat-vector simulator.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "src/ftl/ssd.hpp"
#include "src/host/command.hpp"
#include "src/host/queues.hpp"
#include "src/sim/event_queue.hpp"
#include "src/sim/host_workload.hpp"
#include "src/util/stats.hpp"

namespace xlf::sim {

class DieShardExecutor;

struct SsdSimConfig {
  // Maximum commands in flight across the whole SSD (shared by all
  // submission queues; the arbiter divides it).
  std::size_t queue_depth = 4;
  // Submission/completion queue shape + arbitration policy name.
  host::HostConfig host;
  // Verify read payloads bit-for-bit against the host's write record.
  bool verify_data = true;
  std::uint64_t data_seed = 0xDA7A5EED;
  // Optional sharded data plane (see die_shard.hpp): the simulator
  // asks it to flush between commands whenever a batch is ready, and
  // always before a run returns. Attach/detach is the caller's job;
  // results are byte-identical with or without it, for any thread
  // count.
  DieShardExecutor* data_plane_shards = nullptr;
  // Skip payload generation and the host write oracle — for
  // metadata-only devices (no cells to hold data) and for throughput
  // measurements where the host-side payload RNG would dominate.
  // Implies no data verification.
  bool generate_payloads = true;
};

struct SsdSimStats {
  // Host page operations serviced this run.
  std::size_t reads = 0;
  std::size_t writes = 0;
  std::size_t unmapped_reads = 0;
  std::size_t uncorrectable = 0;
  std::size_t data_mismatches = 0;
  std::size_t corrected_bits = 0;
  // Trim/flush commands serviced (host view: one per command
  // whatever the extent length); trimmed_pages is the FTL-stats
  // delta of mapped pages trims actually dropped.
  std::size_t trims = 0;
  std::size_t trimmed_pages = 0;
  std::size_t flushes = 0;

  // True when an armed FaultInjector cut power mid-run: the command
  // stream stopped at the kill instant and the FTL's DRAM state is
  // considered lost (remount the Ssd before touching it again).
  bool power_loss = false;
  // Blocks retired to the bad-block table during this run.
  std::uint64_t bad_blocks = 0;

  // FTL activity attributable to this run (deltas over the run).
  std::uint64_t gc_relocations = 0;
  std::uint64_t erases = 0;
  std::uint64_t wl_swaps = 0;
  double write_amplification = 0.0;
  // Background scrub activity (filled by callers that run Ftl::scrub
  // around this run — e.g. the FTL sweep; the simulator itself never
  // scrubs, so these stay 0 unless a refresh policy is in play).
  std::uint64_t refresh_blocks = 0;
  std::uint64_t refresh_relocations = 0;

  // Per-block configuration spread over the FTL's lifetime so far:
  // min == max means wear never diverged enough for the reliability
  // manager to pick different t for different blocks.
  unsigned min_t_used = 0;
  unsigned max_t_used = 0;
  double wear_min = 0.0;
  double wear_max = 0.0;

  Seconds elapsed{0.0};
  Seconds gc_busy{0.0};  // die time spent on GC + wear leveling
  Joules ecc_energy{0.0};
  Joules nand_energy{0.0};
  RunningStats read_latency;   // arrival -> completion, seconds
  RunningStats write_latency;

  // Per-submission-queue service statistics (queue 0 first) — the
  // QoS read-out of the multi-queue interface.
  std::vector<host::QueueStats> queue_stats;

  // Busy fraction of each die / channel over this run's elapsed time.
  std::vector<double> die_utilisation;
  std::vector<double> channel_utilisation;

  // NaN (JSON null) while no utilisation was recorded — an
  // unmeasured run must not masquerade as 0% busy.
  double die_util_min() const;
  double die_util_max() const;
  double die_util_mean() const;
};

class SsdSimulator {
 public:
  explicit SsdSimulator(ftl::Ssd& ssd, const SsdSimConfig& config = {});

  // Write every logical page once, sequentially, outside any run's
  // accounting (state setup for read/overwrite experiments).
  void prepopulate();

  // Execute a host command stream; returns this run's statistics.
  // A PowerLoss thrown by an armed FaultInjector does not propagate:
  // the run returns early with stats.power_loss set and the pending
  // timeline dropped (the host oracle keeps every acknowledged
  // write, so verify_stored() audits the rebuilt device).
  SsdSimStats run(const std::vector<host::Command>& commands);
  // Degenerate single-stream form: the flat request vector converted
  // onto queue 0 (see to_commands).
  SsdSimStats run(const std::vector<HostRequest>& requests);

  // Recovery audit: read every LPA the host holds a payload for and
  // count the ones that come back unmapped or bit-different. Zero is
  // the expected answer even after a crash + remount — acknowledged
  // writes are durable, and trims (whose resurrection is legal until
  // flushed) left the oracle at trim time. Direct FTL reads, outside
  // any run's accounting.
  std::size_t verify_stored();

 private:
  BitVec random_payload();
  void try_issue(SsdSimStats& stats);
  void issue(std::uint32_t q, const host::Command& command, Seconds arrival,
             SsdSimStats& stats);
  // Fire the completion parked in inflight_[slot] (stats, unblock,
  // issue step), recycling the slot.
  void complete_slot(std::uint32_t slot);
  std::uint32_t acquire_inflight();
  // Flush the attached sharded data plane when a batch is ready.
  void maybe_flush_shards();

  ftl::Ssd* ssd_;
  SsdSimConfig config_;
  EventQueue queue_;
  Rng data_rng_;
  // Host view of every LPA's current payload (verification oracle);
  // trims erase their entry, matching the device's deallocation.
  std::map<ftl::Lpa, BitVec> written_;

  // Per-run issue state (valid while run() executes). run_commands_ /
  // run_stats_ exist so event callbacks capture only {this, index}:
  // 16 bytes keeps every per-command std::function inside libstdc++'s
  // small-buffer storage — zero heap traffic per event at 10M-command
  // scale (Completion payloads park in the inflight_ arena instead of
  // the closure).
  host::HostInterface* host_ = nullptr;
  std::size_t outstanding_ = 0;
  const std::vector<host::Command>* run_commands_ = nullptr;
  SsdSimStats* run_stats_ = nullptr;
  // In-flight Completion arena (bounded by queue_depth + 1; slots
  // recycle through the free list).
  // xlf: arena(grows)
  std::vector<host::Completion> inflight_;
  std::vector<std::uint32_t> inflight_free_;
};

}  // namespace xlf::sim
