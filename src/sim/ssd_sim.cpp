#include "src/sim/ssd_sim.hpp"

#include <algorithm>
#include <limits>

#include "src/sim/die_shard.hpp"
#include "src/util/expect.hpp"

namespace xlf::sim {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

}  // namespace

double SsdSimStats::die_util_min() const {
  if (die_utilisation.empty()) return kNaN;
  return *std::min_element(die_utilisation.begin(), die_utilisation.end());
}

double SsdSimStats::die_util_max() const {
  if (die_utilisation.empty()) return kNaN;
  return *std::max_element(die_utilisation.begin(), die_utilisation.end());
}

double SsdSimStats::die_util_mean() const {
  if (die_utilisation.empty()) return kNaN;
  double sum = 0.0;
  for (double u : die_utilisation) sum += u;
  return sum / static_cast<double>(die_utilisation.size());
}

SsdSimulator::SsdSimulator(ftl::Ssd& ssd, const SsdSimConfig& config)
    : ssd_(&ssd), config_(config), data_rng_(config.data_seed) {
  XLF_EXPECT(config.queue_depth >= 1);
  // Surface a bad queue shape / arbitration name at construction, not
  // mid-run: building a throwaway interface runs all the checks.
  host::HostInterface probe(config_.host);
  // Metadata-only devices hold no payload bits: nothing to generate,
  // nothing to verify.
  if (!ssd.die(0).device().config().data_plane) {
    config_.generate_payloads = false;
    config_.verify_data = false;
  }
}

void SsdSimulator::maybe_flush_shards() {
  if (config_.data_plane_shards != nullptr &&
      config_.data_plane_shards->batch_ready()) {
    config_.data_plane_shards->flush();
  }
}

BitVec SsdSimulator::random_payload() {
  const std::uint32_t bits = ssd_->die_geometry().data_bits_per_page();
  BitVec data(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    if (data_rng_.chance(0.5)) data.set(i, true);
  }
  return data;
}

void SsdSimulator::prepopulate() {
  for (ftl::Lpa lpa = 0; lpa < ssd_->logical_pages(); ++lpa) {
    if (config_.generate_payloads) {
      BitVec payload = random_payload();
      ssd_->ftl().write(lpa, payload);
      written_[lpa] = std::move(payload);
    } else {
      ssd_->ftl().write(lpa, BitVec(0));
    }
    maybe_flush_shards();
  }
}

void SsdSimulator::issue(std::uint32_t q, const host::Command& command,
                         Seconds arrival, SsdSimStats& stats) {
  const Seconds now = queue_.now();
  controller::DieDispatcher& dispatcher = ssd_->dispatcher();
  host::Completion entry;
  entry.type = command.type;
  entry.lba = command.lba;
  entry.length = command.length;
  entry.queue = command.queue;
  entry.tenant = command.tenant;
  entry.submitted = arrival;

  // The command's completion: the latest page of its extent (or `now`
  // for pure metadata work).
  Seconds completion = now;

  switch (command.type) {
    case host::CmdType::kWrite: {
      for (std::uint32_t p = 0; p < command.length; ++p) {
        const ftl::Lpa lpa = command.lba + p;
        BitVec payload =
            config_.generate_payloads ? random_payload() : BitVec(0);
        const ftl::FtlOpResult res = ssd_->ftl().write(lpa, payload);
        if (config_.generate_payloads) written_[lpa] = std::move(payload);
        stats.gc_busy += res.gc_time;
        stats.ecc_energy += res.ecc_energy;
        stats.nand_energy += res.nand_energy;
        ++stats.writes;
        const controller::DispatchSlot slot =
            dispatcher.submit_write(res.die, now, res.io_time, res.cell_time);
        completion = std::max(completion, slot.completion);
      }
      break;
    }
    case host::CmdType::kRead: {
      for (std::uint32_t p = 0; p < command.length; ++p) {
        const ftl::Lpa lpa = command.lba + p;
        // FTL state resolves at issue; the payload check runs against
        // the host's record as of this instant.
        const ftl::FtlOpResult res = ssd_->ftl().read(lpa);
        if (res.unmapped) {
          // Serviced from the map with no flash access: this page
          // contributes no device time.
          ++stats.unmapped_reads;
          continue;
        }
        stats.corrected_bits += res.corrected_bits;
        stats.ecc_energy += res.ecc_energy;
        stats.nand_energy += res.nand_energy;
        ++stats.reads;
        if (res.uncorrectable) {
          ++stats.uncorrectable;
          entry.ok = false;
        } else if (config_.verify_data) {
          const auto it = written_.find(lpa);
          if (it != written_.end() && !(res.data == it->second)) {
            ++stats.data_mismatches;
          }
        }
        const controller::DispatchSlot slot =
            dispatcher.submit_read(res.die, now, res.io_time, res.cell_time);
        completion = std::max(completion, slot.completion);
      }
      break;
    }
    case host::CmdType::kTrim: {
      for (std::uint32_t p = 0; p < command.length; ++p) {
        const ftl::Lpa lpa = command.lba + p;
        ssd_->ftl().trim(lpa);
        written_.erase(lpa);
      }
      // Host-level count (one per command; trimmed_pages comes from
      // the FTL-stats delta like the other FTL activity).
      ++stats.trims;
      // Metadata-only: completes at issue time.
      break;
    }
    case host::CmdType::kFlush: {
      // Barrier: done when everything previously issued from this
      // queue is; the queue stays blocked until then.
      ssd_->ftl().flush();
      ++stats.flushes;
      completion = std::max(now, host_->last_scheduled_completion(q));
      host_->block(q);
      break;
    }
  }

  entry.completed = completion;
  host_->note_scheduled_completion(q, completion);
  ++outstanding_;
  // Park the Completion in the inflight arena and schedule only the
  // slot index: the {this, slot} capture fits std::function's
  // small-buffer storage, so the per-command completion event costs
  // no allocation.
  const std::uint32_t slot = acquire_inflight();
  inflight_[slot] = entry;
  queue_.schedule_at(completion, [this, slot] { complete_slot(slot); });
}

std::uint32_t SsdSimulator::acquire_inflight() {
  if (!inflight_free_.empty()) {
    const std::uint32_t slot = inflight_free_.back();
    inflight_free_.pop_back();
    return slot;
  }
  // Arena growth: bounded by queue_depth, so the pool stops growing
  // once the pipeline is full and every later acquire recycles.
  inflight_.emplace_back();  // xlf-lint: allow(hot-alloc)
  return static_cast<std::uint32_t>(inflight_.size() - 1);
}

// xlf: hot — the completion event, once per command; everything it
// reaches (try_issue, issue, the inflight arena) recycles storage.
// xlf: ack — this is where a command is acknowledged to the host;
// no NAND mutation may be reachable from here without a durable
// commit on the path (ack-order).
void SsdSimulator::complete_slot(std::uint32_t slot) {
  // Copy out before recycling: try_issue below reuses the slot, and a
  // pool grow would invalidate a reference into it.
  const host::Completion entry = inflight_[slot];
  // Returning a slot to the free list reuses capacity the matching
  // acquire_inflight pop made available; it cannot grow past the
  // arena's own high-water mark.
  inflight_free_.push_back(slot);  // xlf-lint: allow(hot-alloc)
  SsdSimStats& stats = *run_stats_;
  const double latency = entry.latency().value();
  switch (entry.type) {
    case host::CmdType::kRead:
      stats.read_latency.add(latency);
      break;
    case host::CmdType::kWrite:
      stats.write_latency.add(latency);
      break;
    case host::CmdType::kTrim:
      break;
    case host::CmdType::kFlush:
      host_->unblock(entry.queue);
      break;
  }
  host_->complete(entry);
  --outstanding_;
  try_issue(stats);
}

// xlf: hot — the issue loop; runs between every pair of completions.
void SsdSimulator::try_issue(SsdSimStats& stats) {
  while (outstanding_ < config_.queue_depth) {
    const std::optional<std::uint32_t> q = host_->arbitrate();
    if (!q.has_value()) break;
    const auto [command, arrival] = host_->pop(*q);
    issue(*q, command, arrival, stats);
    // Between commands is a safe point (no FTL/controller operation
    // in progress): drain accumulated per-die cell work in parallel
    // once a batch is worth the fork-join.
    maybe_flush_shards();
  }
}

SsdSimStats SsdSimulator::run(const std::vector<HostRequest>& requests) {
  return run(to_commands(requests));
}

std::size_t SsdSimulator::verify_stored() {
  std::size_t mismatches = 0;
  for (const auto& [lpa, payload] : written_) {
    const ftl::FtlOpResult res = ssd_->ftl().read(lpa);
    if (res.unmapped || !(res.data == payload)) ++mismatches;
  }
  return mismatches;
}

SsdSimStats SsdSimulator::run(const std::vector<host::Command>& commands) {
  SsdSimStats stats;
  host::HostInterface host(config_.host);
  host_ = &host;
  outstanding_ = 0;
  run_commands_ = &commands;
  run_stats_ = &stats;
  inflight_.clear();
  inflight_free_.clear();

  const Seconds start = queue_.now();
  const ftl::FtlStats ftl_before = ssd_->ftl().stats();
  std::vector<Seconds> die_busy_before(ssd_->dies());
  std::vector<Seconds> channel_busy_before(ssd_->dispatcher().channels());
  for (std::size_t d = 0; d < die_busy_before.size(); ++d) {
    die_busy_before[d] = ssd_->dispatcher().die_busy(d);
  }
  for (std::size_t c = 0; c < channel_busy_before.size(); ++c) {
    channel_busy_before[c] = ssd_->dispatcher().channel_busy(c);
  }

  // Open loop: every arrival is on the calendar before the first
  // event fires; completions never delay arrivals, only issue.
  Seconds arrival = start;
  for (std::size_t i = 0; i < commands.size(); ++i) {
    arrival += commands[i].gap;
    // The event fires exactly at its scheduled instant, so the
    // callback recovers the arrival stamp from queue_.now(); capturing
    // only {this, index} keeps the event inside std::function's
    // small-buffer storage (no per-command allocation).
    queue_.schedule_at(arrival, [this, i] {
      host_->submit((*run_commands_)[i], queue_.now());
      try_issue(*run_stats_);
    });
  }
  try {
    queue_.run();
    XLF_ENSURE(outstanding_ == 0 && !host.pending());
  } catch (const ftl::PowerLoss&) {
    // Power cut: everything scheduled after the kill instant never
    // happens. Drop the timeline and report the crash in the stats;
    // the caller remounts the Ssd over the surviving NAND state.
    queue_.clear();
    outstanding_ = 0;
    stats.power_loss = true;
  }
  // Deferred cell work models data already on the cells (its OOB
  // record committed at issue); land it before anyone reads the
  // arrays — including the post-crash remount audit.
  if (config_.data_plane_shards != nullptr) config_.data_plane_shards->flush();

  stats.elapsed = queue_.now() - start;
  const ftl::FtlStats& ftl_after = ssd_->ftl().stats();
  stats.gc_relocations = ftl_after.gc_relocations - ftl_before.gc_relocations;
  stats.erases = ftl_after.erases - ftl_before.erases;
  stats.wl_swaps = ftl_after.wl_swaps - ftl_before.wl_swaps;
  stats.trimmed_pages = ftl_after.trimmed_pages - ftl_before.trimmed_pages;
  stats.bad_blocks = ftl_after.bad_blocks - ftl_before.bad_blocks;
  const std::uint64_t host_writes =
      ftl_after.host_writes - ftl_before.host_writes;
  stats.write_amplification =
      host_writes == 0
          ? 0.0
          : static_cast<double>(host_writes + stats.gc_relocations) /
                static_cast<double>(host_writes);
  // Lifetime spread (includes prepopulation): normalise the "never
  // wrote" sentinel away.
  stats.min_t_used =
      ftl_after.max_t_used == 0 ? 0 : ftl_after.min_t_used;
  stats.max_t_used = ftl_after.max_t_used;
  stats.wear_min = ssd_->ftl().min_wear();
  stats.wear_max = ssd_->ftl().max_wear();

  stats.die_utilisation.resize(ssd_->dies());
  stats.channel_utilisation.resize(channel_busy_before.size());
  const double elapsed = std::max(stats.elapsed.value(),
                                  std::numeric_limits<double>::min());
  for (std::size_t d = 0; d < stats.die_utilisation.size(); ++d) {
    stats.die_utilisation[d] =
        (ssd_->dispatcher().die_busy(d) - die_busy_before[d]).value() /
        elapsed;
  }
  for (std::size_t c = 0; c < stats.channel_utilisation.size(); ++c) {
    stats.channel_utilisation[c] =
        (ssd_->dispatcher().channel_busy(c) - channel_busy_before[c]).value() /
        elapsed;
  }
  stats.queue_stats = host.all_stats();
  host_ = nullptr;
  run_commands_ = nullptr;
  run_stats_ = nullptr;
  return stats;
}

}  // namespace xlf::sim
