// The flash translation layer: logical-block addressing over N dies
// of (NAND device + memory controller) pairs.
//
// What it adds over the raw controller stack:
//  * out-of-place writes through the L2P map (no host-visible
//    erase-before-write);
//  * garbage collection with hot/cold frontier separation, charged to
//    the die as foreground time — victim selection through a
//    pluggable policy::GcPolicy ("greedy", "cost-benefit", ...);
//  * wear leveling over FTL-visible erase counters through a
//    policy::WearPolicy ("none", "dynamic", "static");
//  * a background scrub pass (`scrub()`) driven by a
//    policy::RefreshPolicy ("none", "retention_aware", ...): blocks
//    whose predicted post-retention RBER would outgrow the t their
//    pages were written with are preventively re-programmed;
//  * accelerated aging (`pe_cycles_per_erase`) so a short simulated
//    run can traverse the device lifetime the paper's schedule spans;
//  * wear-aware per-block operating points: before every program the
//    target block's own P/E count is fed to the controller's
//    reliability manager, which re-selects the BCH correction
//    capability t — the paper's (algo, t) schedule applied at block
//    granularity. Hot blocks (high wear from GC churn) get a larger t
//    than cold blocks in the same run, and every page remembers the t
//    it was written with, so reads decode correctly either way;
//  * crash consistency: every program writes an OOB record (LBA,
//    monotonic seq, stream, clock stamp, t) into the page's spare
//    area, trims journal tombstones that flush() persists, and
//    rebuild_from_oob() reconstructs the whole DRAM state — L2P map,
//    valid counters, frontiers, erase counters, per-block t — from
//    the surviving NAND after a power loss (see fault.hpp for the
//    injection hooks and ARCHITECTURE.md for the crash model);
//  * grown-bad blocks: an erase failure (FaultInjector-injected)
//    retires the block into the device's durable bad-block table;
//    retired blocks are never allocated, never collected, excluded
//    from the wear spread, and stay retired across remounts.
//
// All policies are registry-resolved from the names in FtlConfig, so
// the decision logic is swappable (and sweepable from an experiment
// spec) without touching this layer.
//
// LPA -> die affinity is `lpa % dies` (page-level striping):
// sequential host streams fan out across channels, and each die's GC
// is self-contained.
//
// Single-threaded and deterministic: the FTL mutates controller and
// map state at issue time; the caller (SsdSimulator) turns the
// returned io/cell durations into timeline events.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "src/controller/controller.hpp"
#include "src/ftl/allocator.hpp"
#include "src/ftl/durable.hpp"
#include "src/ftl/fault.hpp"
#include "src/ftl/mapping.hpp"
#include "src/policy/policy.hpp"

namespace xlf::ftl {

struct FtlConfig {
  // Policy-plane strategy names, resolved through the PolicyRegistry
  // of the matching interface at construction (unknown names throw,
  // listing what is registered).
  std::string gc_policy = "greedy";
  std::string wear_policy = "dynamic";
  std::string refresh_policy = "none";
  // GC reclaims until a die's free-block count exceeds this floor
  // (>= 1 guarantees relocation frontiers can always open a block).
  std::uint32_t gc_free_blocks = 1;
  // Share of physical pages exposed as logical capacity; the rest is
  // over-provisioning. Each die must keep room for its two write
  // frontiers plus the free floor beside its logical share, which at
  // the simulated block counts (a handful per die — the bit-true
  // array is expensive) caps the usable fraction well below a real
  // drive's ~0.93.
  double logical_fraction = 0.6;
  // Static wear leveling swaps a cold block out when the die's erase
  // spread (max - min) exceeds this.
  std::uint32_t static_wl_spread = 8;
  // Lifetime compression: device wear advances this many P/E cycles
  // per FTL erase, so block ages diverge across the paper's schedule
  // within an affordable number of simulated operations.
  double pe_cycles_per_erase = 1.0;
  // Retention horizon (hours) a scrub pass guards against — the
  // storage interval the refresh policy must keep decodable.
  double scrub_retention_hours = 1000.0;
};

// One host operation's outcome, with the service-time split the
// multi-die dispatcher needs (io = channel share, cell = die share;
// GC and wear-leveling overhead is folded into the cell share of the
// write that triggered it — foreground GC).
struct FtlOpResult {
  bool ok = true;
  bool unmapped = false;  // read of a never-written LPA (serviced as zeros)
  std::uint32_t die = 0;
  Seconds io_time{0.0};
  Seconds cell_time{0.0};
  Seconds gc_time{0.0};  // portion of cell_time spent on GC + WL
  unsigned t_used = 0;   // writes: correction capability selected
  BitVec data;           // reads: decoded payload
  unsigned corrected_bits = 0;
  bool uncorrectable = false;
  std::size_t relocations = 0;  // GC copies triggered by this op
  Joules ecc_energy{0.0};
  Joules nand_energy{0.0};
};

// One background scrub pass's outcome (see Ftl::scrub).
struct ScrubResult {
  std::uint64_t blocks_checked = 0;
  std::uint64_t blocks_refreshed = 0;
  std::uint64_t pages_relocated = 0;
  Seconds busy{0.0};
  Joules ecc_energy{0.0};
  Joules nand_energy{0.0};
};

struct FtlStats {
  std::uint64_t host_writes = 0;
  std::uint64_t host_reads = 0;
  std::uint64_t unmapped_reads = 0;
  // Host trim commands serviced / mapped pages they actually dropped
  // (a trim of a never-written LPA counts in the first, not the
  // second), and flush barriers acknowledged.
  std::uint64_t host_trims = 0;
  std::uint64_t trimmed_pages = 0;
  std::uint64_t host_flushes = 0;
  std::uint64_t gc_relocations = 0;
  std::uint64_t erases = 0;
  std::uint64_t wl_swaps = 0;
  // Background scrub activity: blocks preventively re-programmed by
  // the refresh policy, and the page copies that took.
  std::uint64_t refresh_blocks = 0;
  std::uint64_t refresh_relocations = 0;
  // Relocation reads that came back uncorrectable (data propagated
  // as decoded; the mismatch surfaces in the simulator's verify).
  std::uint64_t gc_uncorrectable = 0;
  // Trim tombstones persisted by flush barriers, and blocks retired
  // to the bad-block table, this mount.
  std::uint64_t flushed_tombstones = 0;
  std::uint64_t bad_blocks = 0;
  // Spread of the per-block correction capability the reliability
  // manager assigned across all programs of the run.
  unsigned min_t_used = std::numeric_limits<unsigned>::max();
  unsigned max_t_used = 0;

  // (host + GC) writes per host write; the FTL's defining overhead.
  double write_amplification() const {
    if (host_writes == 0) return 0.0;
    return static_cast<double>(host_writes + gc_relocations) /
           static_cast<double>(host_writes);
  }
};

class Ftl {
 public:
  // One controller per die; non-owning, all dies must share a
  // geometry. The FTL drives each controller's reliability manager
  // and ECC configuration per block. `durable` is the device's
  // durable metadata region (trim journal + counter checkpoint); it
  // must outlive the Ftl and survive remounts — nullptr falls back to
  // an internal instance for single-mount use.
  Ftl(const FtlConfig& config,
      std::vector<controller::MemoryController*> dies,
      DurableMeta* durable = nullptr);

  const FtlConfig& config() const { return config_; }
  std::uint32_t dies() const {
    return static_cast<std::uint32_t>(controllers_.size());
  }
  std::uint32_t logical_pages() const { return map_.logical_pages(); }
  std::uint32_t die_of(Lpa lpa) const { return lpa % dies(); }
  const PageMap& map() const { return map_; }
  const FtlStats& stats() const { return stats_; }

  bool mapped(Lpa lpa) const { return map_.mapped(lpa); }

  // Out-of-place host write; may trigger GC / wear leveling on the
  // target die first (charged to the result's cell share).
  FtlOpResult write(Lpa lpa, const BitVec& data);
  // Host read through the map. Unmapped LPAs are serviced as zero
  // pages without touching flash (`unmapped` flag set).
  FtlOpResult read(Lpa lpa);
  // Host trim/deallocate: drop the LPA's mapping and invalidate its
  // physical page. Metadata-only (no flash op, zero service time) —
  // but the invalidated page lowers its block's valid count, which is
  // exactly the GC victim signal, so trimmed workloads reclaim blocks
  // with fewer relocations. The trim also buffers a tombstone in DRAM;
  // only the next flush() makes the deallocation durable (until then
  // a crash may resurrect the LPA — advisory-deallocate semantics).
  // Trimming a never-written LPA is a no-op with `unmapped` set,
  // mirroring the read path.
  FtlOpResult trim(Lpa lpa);
  // Host flush/durability barrier. Writes are durable at acknowledge
  // (data + OOB record land in one program), so the barrier's real
  // work is the metadata that is NOT write-through: every pending
  // trim tombstone is persisted into the durable journal, and the
  // (seq, clock) checkpoint is refreshed. After a completed flush,
  // rebuild_from_oob() is exact for everything acknowledged before
  // it. Zero modeled service time (journal appends ride the system
  // block; ordering against in-flight commands is the driver's job —
  // the simulator holds a flush until every previously issued command
  // of its queue completes).
  FtlOpResult flush();

  // Background scrub: every closed block is offered to the refresh
  // policy with its wear, its pages' t budget and the configured
  // retention horizon; accepted blocks have their live data relocated
  // (re-programmed fresh, with re-adapted t) and are erased. Runs
  // outside any host request's accounting — the returned busy time is
  // the maintenance cost a deployment would schedule into idle
  // windows.
  ScrubResult scrub();

  // --- crash consistency ----------------------------------------------
  // Attach the fault plane (non-owning; nullptr detaches). The FTL
  // consults it at every program/erase/flush step.
  void set_fault_injector(FaultInjector* injector) { fault_ = injector; }
  // Mount path: reset the DRAM state and reconstruct it from the
  // surviving NAND — scan every non-retired block's OOB records,
  // merge them with the durable trim journal, and replay in sequence
  // order (highest seq wins per LPA). Torn pages (programmed cells,
  // no OOB record) are treated as never written; a partially written
  // block reopens as the write frontier of the stream that was
  // filling it. Call on a freshly constructed Ftl over the same
  // controllers and DurableMeta as the pre-crash instance.
  void rebuild_from_oob();
  // Full cross-structure invariant audit (L2P/P2L inverse, valid
  // counters, allocator states, frontiers, bad-block table). Throws
  // std::logic_error on the first violation; O(physical pages).
  void check_consistency() const;

  std::uint64_t sequence() const { return seq_; }
  std::uint64_t logical_clock() const { return clock_; }
  std::size_t pending_trims() const { return pending_trims_.size(); }
  const DurableMeta& durable() const { return *durable_; }
  const DieAllocator& allocator(std::uint32_t die) const {
    return allocators_.at(die);
  }
  bool is_bad(std::uint32_t die, std::uint32_t block) const;

  // --- wear / configuration visibility --------------------------------
  double wear(std::uint32_t die, std::uint32_t block) const;
  std::uint32_t erase_count(std::uint32_t die, std::uint32_t block) const;
  // Last correction capability assigned to the block (0 = never
  // programmed since construction).
  unsigned block_t(std::uint32_t die, std::uint32_t block) const;
  double min_wear() const;
  double max_wear() const;

 private:
  controller::MemoryController& ctrl(std::uint32_t die) {
    return *controllers_[die];
  }
  nand::NandDevice& device(std::uint32_t die) {
    return controllers_[die]->device();
  }
  const nand::NandDevice& device(std::uint32_t die) const {
    return static_cast<const controller::MemoryController*>(controllers_[die])
        ->device();
  }
  // Fault-plane hook: no-op without an injector.
  void fault(FaultPoint point) {
    if (fault_ != nullptr) fault_->hit(point);
  }
  // PageMap transitions routed through the allocators' mirrored
  // valid counters (the victim-index feed). All Ftl code paths —
  // host writes, GC relocation, trim, mount replay — use these
  // instead of touching map_.map/unmap directly.
  void map_page(Lpa lpa, Ppa ppa);
  void unmap_page(Lpa lpa);
  // Reliability manager pass for the target block's own wear; records
  // the chosen t.
  unsigned adapt_block_t(std::uint32_t die, std::uint32_t block);
  // Reclaim until the die's free count clears the floor; returns die
  // busy time spent.
  Seconds ensure_capacity(std::uint32_t die, FtlOpResult& result);
  // Move every valid page of `block` to the GC frontier.
  Seconds relocate_valid_pages(std::uint32_t die, std::uint32_t block,
                               FtlOpResult& result);
  // Erase + wear acceleration + allocator/map bookkeeping.
  Seconds erase_block(std::uint32_t die, std::uint32_t block);
  // One static wear-leveling swap when the spread warrants it.
  Seconds maybe_static_swap(std::uint32_t die, FtlOpResult& result);

  FtlConfig config_;
  std::vector<controller::MemoryController*> controllers_;
  PageMap map_;
  std::vector<DieAllocator> allocators_;
  // Registry-resolved strategies (immutable, shared across dies).
  std::shared_ptr<const policy::GcPolicy> gc_policy_;
  std::shared_ptr<const policy::WearPolicy> wear_policy_;
  std::shared_ptr<const policy::RefreshPolicy> refresh_policy_;
  std::vector<std::vector<unsigned>> block_t_;  // [die][block]
  std::uint64_t clock_ = 0;  // logical write stamp (cost-benefit age)
  std::uint64_t seq_ = 0;    // OOB/tombstone sequence counter
  // Trim tombstones accepted but not yet flushed (lost on power loss).
  std::vector<TrimTombstone> pending_trims_;
  DurableMeta* durable_ = nullptr;  // external or &owned_durable_
  DurableMeta owned_durable_;
  FaultInjector* fault_ = nullptr;  // non-owning fault plane
  FtlStats stats_;
};

}  // namespace xlf::ftl
