// Logical-to-physical page mapping for the flash translation layer.
//
// The FTL exposes a flat logical page address (LPA) space smaller
// than the physical space (the difference is over-provisioning for
// garbage collection) and writes out of place: every host write lands
// on a fresh physical page and merely invalidates the LPA's previous
// location. PageMap is the bookkeeping core of that scheme — the L2P
// table, its P2L inverse (needed by GC to find the owner of a valid
// page), and per-block valid-page counters (the GC victim-selection
// signal).
//
// Pure data structure: no device access, no timing, no policy. The
// Ftl drives it and keeps it consistent with the NAND state.
#pragma once

#include <cstdint>
#include <vector>

namespace xlf::ftl {

// Logical page address (host view, SSD-wide).
using Lpa = std::uint32_t;
inline constexpr std::uint32_t kUnmapped = 0xFFFFFFFFu;

// Physical page address (die-qualified).
struct Ppa {
  std::uint32_t die = kUnmapped;
  std::uint32_t block = 0;
  std::uint32_t page = 0;

  bool valid() const { return die != kUnmapped; }
  friend bool operator==(const Ppa&, const Ppa&) = default;
};

class PageMap {
 public:
  PageMap(std::uint32_t dies, std::uint32_t blocks_per_die,
          std::uint32_t pages_per_block, std::uint32_t logical_pages);

  std::uint32_t logical_pages() const { return logical_pages_; }
  std::uint32_t dies() const { return dies_; }

  bool mapped(Lpa lpa) const;
  // Current location of `lpa`; Ppa::valid() is false when unmapped.
  Ppa lookup(Lpa lpa) const;
  // Point `lpa` at a fresh physical page, invalidating its previous
  // location (the out-of-place write step). The target page must not
  // already hold a valid mapping. Returns the displaced location
  // (Ppa::valid() false when the LPA was unmapped) so the caller can
  // feed per-block valid-count listeners (the victim index).
  Ppa map(Lpa lpa, Ppa ppa);
  // Drop `lpa`'s mapping entirely (host trim/deallocate): its
  // physical page goes invalid — feeding the block's GC signal — and
  // subsequent lookups see the LPA as never written. The LPA must be
  // mapped. Returns the dropped location.
  Ppa unmap(Lpa lpa);

  // True when the physical page holds the current copy of some LPA.
  bool valid(Ppa ppa) const;
  // Owner of a valid physical page; kUnmapped when invalid.
  Lpa lpa_at(Ppa ppa) const;
  // Valid pages in a block — the GC victim-selection signal.
  std::uint32_t valid_count(std::uint32_t die, std::uint32_t block) const;
  // An erase leaves every page of the block invalid. Any still-valid
  // page must have been relocated (remapped) first.
  void on_erase(std::uint32_t die, std::uint32_t block);

 private:
  std::size_t page_index(const Ppa& ppa) const;
  void check(const Ppa& ppa) const;

  std::uint32_t dies_;
  std::uint32_t blocks_per_die_;
  std::uint32_t pages_per_block_;
  std::uint32_t logical_pages_;
  std::vector<Ppa> l2p_;
  // P2L inverse, flat [die][block][page]; kUnmapped marks invalid.
  std::vector<Lpa> p2l_;
  // [die][block] valid-page counters, kept in lockstep with p2l_.
  std::vector<std::uint32_t> valid_counts_;
};

}  // namespace xlf::ftl
