// Fault plane for crash-consistency testing: a FaultInjector the FTL
// consults at every durability-relevant step, able to kill the
// simulation at an arbitrary event (power loss) or fail a block's
// next erase (grown-bad injection).
//
// Kill semantics: power loss is modelled as a PowerLoss exception
// thrown from inside an FTL operation. Everything already committed
// to the NAND model (programmed cells, OOB records, the durable trim
// journal) survives; everything in FTL DRAM (L2P map, valid counters,
// frontiers, pending trim tombstones) is lost. The test harness
// catches the exception, constructs a fresh Ftl over the surviving
// state and calls rebuild_from_oob().
//
// The event counter is global and monotonic across the injector's
// lifetime, so a counting run (attach, never arm) measures the total
// number of kill opportunities of a workload, and a later armed run
// of the same seeded workload kills at a chosen index —
// deterministically, whatever the thread count.
#pragma once

#include <cstdint>
#include <set>
#include <stdexcept>
#include <utility>

namespace xlf::ftl {

// Where in the FTL's program/erase/flush sequences the kill lands.
// kMid*Program sits between the page's data program and its OOB
// record — the torn-program window (arXiv 1805.03291's two-step
// programming vulnerability): the data is on the cells but no record
// says so, and rebuild must treat the page as never written.
enum class FaultPoint {
  kNone,
  kBeforeHostProgram,  // host write: slot taken, nothing programmed yet
  kMidHostProgram,     // host write: data committed, OOB record missing
  kBeforeGcProgram,    // GC/scrub relocation: source read, copy not yet made
  kMidGcProgram,       // relocation copy committed, OOB record missing
  kBeforeErase,        // victim relocated, erase not started
  kAfterErase,         // erase committed (OOB cleared), allocator updated
  kMidFlush,           // between two tombstones of a flush barrier
};

// The power cut. Carries where and at which event index it struck so
// torture tests can assert coverage of the interesting windows.
struct PowerLoss : std::runtime_error {
  PowerLoss(FaultPoint point, std::uint64_t event);

  FaultPoint point;
  std::uint64_t event;
};

class FaultInjector {
 public:
  // Kill when the running event counter reaches `event` (1-based
  // against the counter's current value semantics: hit() increments
  // first, then compares). 0 disarms.
  void arm_at_event(std::uint64_t event);
  // Kill at the nth occurrence (1-based) of a specific fault point —
  // the way tests guarantee a kill lands mid-GC / mid-program /
  // mid-flush regardless of the workload's event layout.
  void arm_at_point(FaultPoint point, std::uint64_t occurrence = 1);
  void disarm();

  std::uint64_t events() const { return events_; }
  bool fired() const { return fired_; }

  // FTL-side hook: count the event and throw PowerLoss when armed for
  // it. Fires at most once per arming (post-crash remount traffic
  // does not re-trigger a spent injector).
  void hit(FaultPoint point);

  // Grown-bad injection: the block's next erase on `die` fails and
  // the FTL retires it into the durable bad-block table.
  void fail_block(std::uint32_t die, std::uint32_t block);
  bool should_fail(std::uint32_t die, std::uint32_t block) const;

 private:
  std::uint64_t events_ = 0;
  std::uint64_t kill_event_ = 0;  // 0 = not armed by index
  FaultPoint kill_point_ = FaultPoint::kNone;
  std::uint64_t kill_occurrence_ = 0;
  std::uint64_t point_seen_ = 0;
  bool fired_ = false;
  std::set<std::pair<std::uint32_t, std::uint32_t>> fail_;
};

}  // namespace xlf::ftl
