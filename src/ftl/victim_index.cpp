#include "src/ftl/victim_index.hpp"

#include <algorithm>

#include "src/util/expect.hpp"

namespace xlf::ftl {

GcIndexKind gc_index_kind_for(std::string_view gc_policy_name) {
  if (gc_policy_name == "greedy") return GcIndexKind::kGreedy;
  if (gc_policy_name == "cost-benefit") return GcIndexKind::kCostBenefit;
  return GcIndexKind::kNone;
}

namespace {

// a sinks below b (max-heap `less`) when a's (key, id) is larger:
// the heap front is then the minimal (key, id) — the bucket head.
inline bool victim_less(const std::uint64_t a_key, const std::uint32_t a_block,
                        const std::uint64_t b_key, const std::uint32_t b_block) {
  if (a_key != b_key) return a_key > b_key;
  return a_block > b_block;
}

}  // namespace

// xlf: cold — reconfiguration: rebuilds the bucket arena before a
// run starts, never while commands are in flight.
void VictimIndex::reset(GcIndexKind kind, std::uint32_t blocks,
                        std::uint32_t pages_per_block) {
  kind_ = kind;
  blocks_ = blocks;
  pages_per_block_ = pages_per_block;
  buckets_.clear();
  version_.clear();
  bucket_of_.clear();
  entries_ = 0;
  if (kind_ == GcIndexKind::kNone) return;
  buckets_.resize(pages_per_block_);
  version_.assign(blocks_, 0);
  bucket_of_.assign(blocks_, kNoBucket);
}

void VictimIndex::update(std::uint32_t block, std::uint32_t valid,
                         std::uint64_t last_write) {
  if (kind_ == GcIndexKind::kNone) return;
  XLF_EXPECT(block < blocks_ && valid <= pages_per_block_);
  ++version_[block];
  bucket_of_[block] = valid;
  // Fully valid blocks have nothing to reclaim; the version bump above
  // already retired any earlier entry, so they carry no storage.
  if (valid >= pages_per_block_) return;
  const std::uint64_t key =
      kind_ == GcIndexKind::kCostBenefit ? last_write : 0;
  auto& bucket = buckets_[valid];
  // Lazy-deletion insert: capacity recycles once purge() has run.
  bucket.push_back(Entry{key, block, version_[block]});  // xlf-lint: allow(hot-alloc)
  std::push_heap(bucket.begin(), bucket.end(),
                 [](const Entry& a, const Entry& b) {
                   return victim_less(a.key, a.block, b.key, b.block);
                 });
  ++entries_;
  if (entries_ > 4 * static_cast<std::size_t>(blocks_) + 64) compact();
}

void VictimIndex::remove(std::uint32_t block) {
  if (kind_ == GcIndexKind::kNone) return;
  XLF_EXPECT(block < blocks_);
  ++version_[block];
  bucket_of_[block] = kNoBucket;
}

// xlf: hot — lazy-deletion pops on the pick path; shrink-only.
void VictimIndex::purge(std::uint32_t bucket) const {
  auto& heap = buckets_[bucket];
  while (!heap.empty() && !live(heap.front(), bucket)) {
    std::pop_heap(heap.begin(), heap.end(),
                  [](const Entry& a, const Entry& b) {
                    return victim_less(a.key, a.block, b.key, b.block);
                  });
    heap.pop_back();
    --entries_;
  }
}

void VictimIndex::compact() {
  // Keep only the live entry per block; rebuilt heaps stay heaps
  // because make_heap runs per bucket. O(blocks) amortized: the
  // trigger requires entries_ to have grown past 4x blocks.
  entries_ = 0;
  for (std::uint32_t v = 0; v < buckets_.size(); ++v) {
    auto& bucket = buckets_[v];
    bucket.erase(std::remove_if(bucket.begin(), bucket.end(),
                                [&](const Entry& e) { return !live(e, v); }),
                 bucket.end());
    std::make_heap(bucket.begin(), bucket.end(),
                   [](const Entry& a, const Entry& b) {
                     return victim_less(a.key, a.block, b.key, b.block);
                   });
    entries_ += bucket.size();
  }
}

void FreeBlockIndex::reset(std::uint32_t blocks) {
  heap_.clear();
  version_.assign(blocks, 0);
  is_free_.assign(blocks, 0);
}

namespace {

// Max-heap on (score, lowest id): a sinks below b when a's score is
// smaller, or equal-scored with a higher id.
inline bool free_entry_less(double a_score, std::uint32_t a_block,
                            double b_score, std::uint32_t b_block) {
  if (a_score != b_score) return a_score < b_score;
  return a_block > b_block;
}

}  // namespace

void FreeBlockIndex::push(std::uint32_t block, double score) {
  XLF_EXPECT(block < version_.size());
  ++version_[block];
  is_free_[block] = 1;
  // Free-heap insert: capacity recycles after the first GC cycle.
  heap_.push_back(Entry{score, block, version_[block]});  // xlf-lint: allow(hot-alloc)
  std::push_heap(heap_.begin(), heap_.end(),
                 [](const Entry& a, const Entry& b) {
                   return free_entry_less(a.score, a.block, b.score, b.block);
                 });
  if (heap_.size() > 4 * version_.size() + 64) compact();
}

void FreeBlockIndex::remove(std::uint32_t block) {
  XLF_EXPECT(block < version_.size());
  ++version_[block];
  is_free_[block] = 0;
}

// xlf: hot — every open-block choice lands here; shrink-only pops.
std::uint32_t FreeBlockIndex::best() const {
  while (!heap_.empty() && !live(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(),
                  [](const Entry& a, const Entry& b) {
                    return free_entry_less(a.score, a.block, b.score, b.block);
                  });
    heap_.pop_back();
  }
  return heap_.empty() ? kNone : heap_.front().block;
}

void FreeBlockIndex::compact() {
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [&](const Entry& e) { return !live(e); }),
              heap_.end());
  std::make_heap(heap_.begin(), heap_.end(),
                 [](const Entry& a, const Entry& b) {
                   return free_entry_less(a.score, a.block, b.score, b.block);
                 });
}

}  // namespace xlf::ftl
