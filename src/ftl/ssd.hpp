// The multi-die SSD facade: N channels x M dies of complete per-die
// stacks (NAND device + memory controller + cross-layer framework,
// i.e. one core::MemorySubsystem per die), the channel/die dispatch
// timing model, and the FTL on top.
//
// This is where the paper's trade-off finally runs at system scale:
// GC and wear leveling *create* a P/E spread across physical blocks,
// the FTL feeds every block's own counter to the reliability manager
// at write time, and block_metrics() closes the loop by evaluating
// the cross-layer framework at a block's individual age — the same
// Metrics read-out the device-level sweep produces, now at block
// granularity.
#pragma once

#include <memory>
#include <vector>

#include "src/controller/dispatch.hpp"
#include "src/core/subsystem.hpp"
#include "src/ftl/ftl.hpp"

namespace xlf::ftl {

struct SsdConfig {
  controller::DispatchConfig topology{2, 1};  // channels x dies/channel
  // Per-die stack; every die gets a distinct array noise seed derived
  // from this one.
  core::SubsystemConfig die = core::SubsystemConfig::defaults();
  FtlConfig ftl;
  // Uniform pre-conditioning: every block starts this many P/E cycles
  // into its life (lifetime experiments start mid-life, not at BOL).
  double initial_pe_cycles = 0.0;
  core::OperatingPoint point = core::OperatingPoint::baseline();
};

class Ssd {
 public:
  explicit Ssd(const SsdConfig& config);

  const SsdConfig& config() const { return config_; }
  std::size_t dies() const { return subsystems_.size(); }
  core::MemorySubsystem& die(std::size_t i) { return *subsystems_.at(i); }
  const nand::Geometry& die_geometry() const {
    return subsystems_.front()->device().geometry();
  }
  Ftl& ftl() { return *ftl_; }
  const Ftl& ftl() const { return *ftl_; }
  controller::DieDispatcher& dispatcher() { return *dispatcher_; }
  std::uint32_t logical_pages() const { return ftl_->logical_pages(); }

  // Program both cross-layer knobs on every die.
  void apply(const core::OperatingPoint& point);
  const core::OperatingPoint& active_point() const { return active_point_; }

  // The block's own P/E counter fed through the cross-layer
  // framework: predicted metrics of the active operating point at
  // this block's age.
  core::Metrics block_metrics(std::uint32_t die, std::uint32_t block) const;

  // Attach the fault plane to the FTL (remembered across remounts).
  void set_fault_injector(FaultInjector* injector);
  // Simulated power cycle: the FTL object (all DRAM state) is thrown
  // away and a fresh one is mounted over the surviving NAND + durable
  // metadata via rebuild_from_oob(). Dies, controllers, dispatcher
  // timelines and the durable region carry over.
  void remount();
  const DurableMeta& durable() const { return durable_; }

 private:
  SsdConfig config_;
  std::vector<std::unique_ptr<core::MemorySubsystem>> subsystems_;
  std::unique_ptr<controller::DieDispatcher> dispatcher_;
  // The reserved system block's contents: outlives every Ftl mount.
  DurableMeta durable_;
  std::unique_ptr<Ftl> ftl_;
  core::OperatingPoint active_point_;
  FaultInjector* fault_ = nullptr;
};

}  // namespace xlf::ftl
