#include "src/ftl/ssd.hpp"

#include "src/util/expect.hpp"

namespace xlf::ftl {

Ssd::Ssd(const SsdConfig& config)
    : config_(config), active_point_(config.point) {
  const std::size_t die_count =
      static_cast<std::size_t>(config.topology.channels) *
      config.topology.dies_per_channel;
  XLF_EXPECT(die_count >= 1);
  XLF_EXPECT(config.initial_pe_cycles >= 0.0);

  subsystems_.reserve(die_count);
  std::vector<controller::MemoryController*> controllers;
  controllers.reserve(die_count);
  for (std::size_t d = 0; d < die_count; ++d) {
    core::SubsystemConfig die_config = config.die;
    // Distinct device noise per die, derived deterministically.
    die_config.device.array.seed =
        config.die.device.array.seed + static_cast<std::uint64_t>(d) + 1;
    subsystems_.push_back(std::make_unique<core::MemorySubsystem>(die_config));
    if (config.initial_pe_cycles > 0.0) {
      subsystems_.back()->device().set_uniform_wear(config.initial_pe_cycles);
    }
    controllers.push_back(&subsystems_.back()->controller());
  }
  apply(config.point);
  dispatcher_ = std::make_unique<controller::DieDispatcher>(config.topology);
  ftl_ = std::make_unique<Ftl>(config.ftl, std::move(controllers), &durable_);
}

void Ssd::set_fault_injector(FaultInjector* injector) {
  fault_ = injector;
  ftl_->set_fault_injector(injector);
}

void Ssd::remount() {
  std::vector<controller::MemoryController*> controllers;
  controllers.reserve(subsystems_.size());
  for (auto& subsystem : subsystems_) {
    controllers.push_back(&subsystem->controller());
  }
  ftl_.reset();  // DRAM gone first — nothing of the old mount survives
  ftl_ = std::make_unique<Ftl>(config_.ftl, std::move(controllers), &durable_);
  ftl_->set_fault_injector(fault_);
  ftl_->rebuild_from_oob();
}

void Ssd::apply(const core::OperatingPoint& point) {
  for (auto& subsystem : subsystems_) subsystem->apply(point);
  active_point_ = point;
}

core::Metrics Ssd::block_metrics(std::uint32_t die, std::uint32_t block) const {
  XLF_EXPECT(die < subsystems_.size());
  return subsystems_[die]->framework().evaluate(active_point_,
                                                ftl_->wear(die, block));
}

}  // namespace xlf::ftl
