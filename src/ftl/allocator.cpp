#include "src/ftl/allocator.hpp"

#include <algorithm>
#include <string>

#include "src/policy/registry.hpp"
#include "src/util/expect.hpp"

namespace xlf::ftl {

DieAllocator::DieAllocator(const AllocatorConfig& config) : config_(config) {
  XLF_EXPECT_MSG(config.blocks >= 3,
                 "blocks=" + std::to_string(config.blocks) +
                     " is too small: a die needs >= 3 blocks (host + GC "
                     "frontiers plus free slack)");
  XLF_EXPECT_MSG(config.pages_per_block >= 1,
                 "pages_per_block=" + std::to_string(config.pages_per_block) +
                     " must be >= 1");
  if (config_.wear == nullptr) {
    config_.wear =
        policy::PolicyRegistry<policy::WearPolicy>::instance().make_shared(
            "dynamic");
  }
  states_.assign(config.blocks, State::kFree);
  erase_counts_.assign(config.blocks, 0);
  last_write_.assign(config.blocks, 0);
  free_count_ = config.blocks;
}

DieAllocator::Frontier& DieAllocator::frontier(Stream stream) {
  return stream == Stream::kHost ? host_ : gc_;
}

const DieAllocator::Frontier& DieAllocator::frontier(Stream stream) const {
  return stream == Stream::kHost ? host_ : gc_;
}

bool DieAllocator::needs_block(Stream stream) const {
  const Frontier& f = frontier(stream);
  return !f.open || f.next_page >= config_.pages_per_block;
}

std::uint32_t DieAllocator::pick_free_block() const {
  XLF_EXPECT(free_count_ > 0 && "allocating with an empty free list");
  std::optional<std::uint32_t> best;
  double best_score = 0.0;
  for (std::uint32_t b = 0; b < config_.blocks; ++b) {
    if (states_[b] != State::kFree) continue;
    // Wear policy preference; strict > keeps the lowest-id winner on
    // ties ("none" scores everything 0 and so picks by id, "dynamic"
    // scores -erase_count and so picks the least-erased block).
    const double score = config_.wear->free_block_score(erase_counts_[b]);
    if (!best.has_value() || score > best_score) {
      best = b;
      best_score = score;
    }
  }
  XLF_ENSURE(best.has_value());
  return *best;
}

std::pair<std::uint32_t, std::uint32_t> DieAllocator::take_page(Stream stream) {
  Frontier& f = frontier(stream);
  if (!f.open || f.next_page >= config_.pages_per_block) {
    const std::uint32_t block = pick_free_block();
    states_[block] = State::kOpen;
    --free_count_;
    f.block = block;
    f.next_page = 0;
    f.open = true;
  }
  const std::pair<std::uint32_t, std::uint32_t> slot{f.block, f.next_page};
  ++f.next_page;
  if (f.next_page >= config_.pages_per_block) {
    // Fully written: the block becomes a GC candidate.
    states_[f.block] = State::kClosed;
    f.open = false;
  }
  return slot;
}

void DieAllocator::stamp_write(std::uint32_t block, std::uint64_t stamp) {
  XLF_EXPECT(block < config_.blocks);
  last_write_[block] = stamp;
}

void DieAllocator::on_erase(std::uint32_t block) {
  XLF_EXPECT(block < config_.blocks);
  XLF_EXPECT(states_[block] == State::kClosed &&
             "only closed blocks are erased");
  states_[block] = State::kFree;
  ++erase_counts_[block];
  ++free_count_;
}

std::uint32_t DieAllocator::erase_count(std::uint32_t block) const {
  XLF_EXPECT(block < config_.blocks);
  return erase_counts_[block];
}

std::uint32_t DieAllocator::min_erase_count() const {
  return *std::min_element(erase_counts_.begin(), erase_counts_.end());
}

std::uint32_t DieAllocator::max_erase_count() const {
  return *std::max_element(erase_counts_.begin(), erase_counts_.end());
}

std::optional<std::uint32_t> DieAllocator::pick_coldest() const {
  std::optional<std::uint32_t> best;
  for (std::uint32_t b = 0; b < config_.blocks; ++b) {
    if (states_[b] != State::kClosed) continue;
    if (!best.has_value() || erase_counts_[b] < erase_counts_[*best] ||
        (erase_counts_[b] == erase_counts_[*best] &&
         last_write_[b] < last_write_[*best])) {
      best = b;
    }
  }
  return best;
}

}  // namespace xlf::ftl
