#include "src/ftl/allocator.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "src/policy/registry.hpp"
#include "src/util/expect.hpp"

namespace xlf::ftl {

DieAllocator::DieAllocator(const AllocatorConfig& config) : config_(config) {
  XLF_EXPECT_MSG(config.blocks >= 3,
                 "blocks=" + std::to_string(config.blocks) +
                     " is too small: a die needs >= 3 blocks (host + GC "
                     "frontiers plus free slack)");
  XLF_EXPECT_MSG(config.pages_per_block >= 1,
                 "pages_per_block=" + std::to_string(config.pages_per_block) +
                     " must be >= 1");
  if (config_.wear == nullptr) {
    config_.wear =
        policy::PolicyRegistry<policy::WearPolicy>::instance().make_shared(
            "dynamic");
  }
  states_.assign(config.blocks, BlockState::kFree);
  erase_counts_.assign(config.blocks, 0);
  last_write_.assign(config.blocks, 0);
  cached_valid_.assign(config.blocks, 0);
  free_count_ = config.blocks;
  victims_.reset(config_.gc_index, config_.blocks, config_.pages_per_block);
  free_index_.reset(config_.blocks);
  for (std::uint32_t b = 0; b < config_.blocks; ++b) {
    free_index_.push(b, config_.wear->free_block_score(0));
  }
}

DieAllocator::Frontier& DieAllocator::frontier(Stream stream) {
  return stream == Stream::kHost ? host_ : gc_;
}

const DieAllocator::Frontier& DieAllocator::frontier(Stream stream) const {
  return stream == Stream::kHost ? host_ : gc_;
}

bool DieAllocator::needs_block(Stream stream) const {
  const Frontier& f = frontier(stream);
  return !f.open || f.next_page >= config_.pages_per_block;
}

std::uint32_t DieAllocator::pick_free_block() const {
  XLF_EXPECT(free_count_ > 0 && "allocating with an empty free list");
  // Heap-backed wear-policy preference: the snapshot scores in the
  // index are exact (free_block_score depends only on the erase count,
  // frozen while a block stays free), and the heap's (score, lowest
  // id) order matches the linear scan's strict-> tie-break ("none"
  // scores everything 0 and so picks by id, "dynamic" scores
  // -erase_count and so picks the least-erased block).
  const std::uint32_t best = free_index_.best();
  XLF_ENSURE(best != FreeBlockIndex::kNone);
  return best;
}

std::pair<std::uint32_t, std::uint32_t> DieAllocator::take_page(Stream stream) {
  Frontier& f = frontier(stream);
  if (!f.open || f.next_page >= config_.pages_per_block) {
    const std::uint32_t block = pick_free_block();
    states_[block] = BlockState::kOpen;
    free_index_.remove(block);
    --free_count_;
    f.block = block;
    f.next_page = 0;
    f.open = true;
  }
  const std::pair<std::uint32_t, std::uint32_t> slot{f.block, f.next_page};
  ++f.next_page;
  if (f.next_page >= config_.pages_per_block) {
    // Fully written: the block becomes a GC candidate. The valid
    // count is still settling (the caller maps the final page after
    // take_page returns), so the index entry pushed here is refreshed
    // by the trailing on_page_mapped/stamp_write notifications.
    states_[f.block] = BlockState::kClosed;
    f.open = false;
    index_update(f.block);
  }
  return slot;
}

void DieAllocator::stamp_write(std::uint32_t block, std::uint64_t stamp) {
  XLF_EXPECT(block < config_.blocks);
  last_write_[block] = stamp;
  // A closed block's stamp feeds the cost-benefit bucket key.
  index_update(block);
}

void DieAllocator::on_page_mapped(std::uint32_t block) {
  XLF_EXPECT(block < config_.blocks);
  XLF_EXPECT(cached_valid_[block] < config_.pages_per_block);
  ++cached_valid_[block];
  index_update(block);
}

void DieAllocator::on_page_invalidated(std::uint32_t block) {
  XLF_EXPECT(block < config_.blocks);
  XLF_EXPECT(cached_valid_[block] > 0);
  --cached_valid_[block];
  index_update(block);
}

void DieAllocator::index_update(std::uint32_t block) {
  if (states_[block] != BlockState::kClosed) return;
  victims_.update(block, cached_valid_[block], last_write_[block]);
}

void DieAllocator::on_erase(std::uint32_t block) {
  XLF_EXPECT(block < config_.blocks);
  XLF_EXPECT(states_[block] == BlockState::kClosed &&
             "only closed blocks are erased");
  states_[block] = BlockState::kFree;
  ++erase_counts_[block];
  // A free block carries no age: clearing the stamp keeps the live
  // state field-identical to what rebuild_from_oob reconstructs (an
  // erased block has no OOB records to derive a stamp from).
  last_write_[block] = 0;
  cached_valid_[block] = 0;
  ++free_count_;
  victims_.remove(block);
  free_index_.push(block, config_.wear->free_block_score(erase_counts_[block]));
}

void DieAllocator::retire(std::uint32_t block) {
  XLF_EXPECT(block < config_.blocks);
  XLF_EXPECT(states_[block] == BlockState::kClosed &&
             "only closed blocks reach the erase that can fail");
  states_[block] = BlockState::kBad;
  last_write_[block] = 0;
  cached_valid_[block] = 0;
  victims_.remove(block);
}

void DieAllocator::restore(std::uint32_t block, BlockState state,
                           std::uint32_t erase_count,
                           std::uint64_t last_write) {
  XLF_EXPECT(block < config_.blocks);
  XLF_EXPECT(state != BlockState::kOpen &&
             "open blocks are restored through restore_frontier");
  XLF_EXPECT(states_[block] == BlockState::kFree &&
             "restore targets a freshly constructed allocator");
  erase_counts_[block] = erase_count;
  last_write_[block] = last_write;
  if (state != BlockState::kFree) {
    states_[block] = state;
    --free_count_;
    free_index_.remove(block);
    // A restored closed block enters the index with zero valid pages;
    // the mount replay feeds the real count back through
    // on_page_mapped as it reconstructs the L2P map.
    index_update(block);
  } else {
    // Erase count changed under the ctor's snapshot score: re-push.
    free_index_.push(block,
                     config_.wear->free_block_score(erase_counts_[block]));
  }
}

void DieAllocator::restore_frontier(Stream stream, std::uint32_t block,
                                    std::uint32_t next_page,
                                    std::uint32_t erase_count,
                                    std::uint64_t last_write) {
  XLF_EXPECT(block < config_.blocks);
  XLF_EXPECT(next_page >= 1 && next_page < config_.pages_per_block &&
             "an open frontier sits strictly inside its block");
  XLF_EXPECT(states_[block] == BlockState::kFree &&
             "restore targets a freshly constructed allocator");
  Frontier& f = frontier(stream);
  XLF_EXPECT(!f.open && "one open block per stream");
  states_[block] = BlockState::kOpen;
  free_index_.remove(block);
  --free_count_;
  erase_counts_[block] = erase_count;
  last_write_[block] = last_write;
  f.block = block;
  f.next_page = next_page;
  f.open = true;
}

DieAllocator::FrontierView DieAllocator::frontier_view(Stream stream) const {
  const Frontier& f = frontier(stream);
  if (!f.open) return FrontierView{};
  return FrontierView{true, f.block, f.next_page};
}

std::uint32_t DieAllocator::erase_count(std::uint32_t block) const {
  XLF_EXPECT(block < config_.blocks);
  return erase_counts_[block];
}

std::uint32_t DieAllocator::min_erase_count() const {
  std::uint32_t best = std::numeric_limits<std::uint32_t>::max();
  bool any = false;
  for (std::uint32_t b = 0; b < config_.blocks; ++b) {
    if (states_[b] == BlockState::kBad) continue;
    best = std::min(best, erase_counts_[b]);
    any = true;
  }
  return any ? best : 0;
}

std::uint32_t DieAllocator::max_erase_count() const {
  std::uint32_t best = 0;
  for (std::uint32_t b = 0; b < config_.blocks; ++b) {
    if (states_[b] == BlockState::kBad) continue;
    best = std::max(best, erase_counts_[b]);
  }
  return best;
}

// xlf: hot — the indexed pick exists to keep GC selection off the
// allocator; the bucket-head walk must stay allocation-free.
std::optional<std::uint32_t> DieAllocator::pick_victim_indexed(
    const policy::GcPolicy& policy, std::uint64_t now) const {
  XLF_EXPECT(victims_.enabled());
  // Each bucket head is the best candidate at its valid count (the
  // bucket key is the policy's within-bucket tie-break; see
  // victim_index.hpp). Scoring the heads through the policy object —
  // the same virtual call, view fields and floating-point path as the
  // oracle scan — and keeping the argmax under the oracle's strict-> /
  // lowest-id rule reproduces pick_victim_scored byte for byte at
  // O(pages_per_block) instead of O(blocks).
  std::optional<std::uint32_t> best;
  double best_score = 0.0;
  victims_.for_each_head([&](std::uint32_t block, std::uint32_t valid) {
    policy::GcBlockView view;
    view.block = block;
    view.valid_pages = valid;
    view.pages_per_block = config_.pages_per_block;
    view.erase_count = erase_counts_[block];
    view.last_write = last_write_[block];
    view.now = now;
    const double candidate = policy.score(view);
    if (!best.has_value() || candidate > best_score ||
        (candidate == best_score && block < *best)) {
      best = block;
      best_score = candidate;
    }
  });
  return best;
}

std::optional<std::uint32_t> DieAllocator::pick_coldest() const {
  std::optional<std::uint32_t> best;
  for (std::uint32_t b = 0; b < config_.blocks; ++b) {
    if (states_[b] != BlockState::kClosed) continue;
    if (!best.has_value() || erase_counts_[b] < erase_counts_[*best] ||
        (erase_counts_[b] == erase_counts_[*best] &&
         last_write_[b] < last_write_[*best])) {
      best = b;
    }
  }
  return best;
}

}  // namespace xlf::ftl
