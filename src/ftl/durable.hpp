// The FTL's durable metadata region — the model of the reserved
// system block a real controller journals into. Owned by the Ssd
// facade (or the test harness), so it survives the Ftl object across
// a simulated power cycle the way NAND state does.
//
// Contents:
//  * the trim journal: a tombstone per flushed trim. Trims are
//    metadata-only and buffer in FTL DRAM until the next flush()
//    persists them — that is the durability barrier flush provides.
//    A trim that never reached a flush is lost with DRAM, and the
//    trimmed LPA may come back after remount (mapped to its pre-trim
//    payload, or even an older surviving version if GC already erased
//    the newest copy — the documented advisory-deallocate crash
//    semantics). A flushed tombstone, by contrast, outranks every
//    earlier write of its LPA by sequence number, so the LPA stays
//    unmapped across any later crash.
//  * a (seq, clock) checkpoint refreshed by every flush, so a clean
//    shutdown (flush + remount) restores the FTL's logical clock and
//    sequence counter exactly even when the newest-stamped OOB
//    records were erased by GC before the shutdown.
#pragma once

#include <cstdint>
#include <vector>

#include "src/ftl/mapping.hpp"

namespace xlf::ftl {

struct TrimTombstone {
  Lpa lpa = 0;
  // Same monotonic counter as the OOB records: during replay the
  // tombstone invalidates every lower-seq write of the LPA and loses
  // to any higher-seq rewrite.
  std::uint64_t seq = 0;

  friend bool operator==(const TrimTombstone&, const TrimTombstone&) = default;
};

struct DurableMeta {
  // Append-only trim journal (a real device would checkpoint and
  // compact it; at simulation scale replaying the full journal is
  // cheap and keeps the replay rule trivial).
  std::vector<TrimTombstone> tombstones;
  // Counter checkpoint taken at the end of every completed flush.
  std::uint64_t checkpoint_seq = 0;
  std::uint64_t checkpoint_clock = 0;
  // Completed flush barriers over the device's lifetime.
  std::uint64_t flush_epochs = 0;
};

}  // namespace xlf::ftl
