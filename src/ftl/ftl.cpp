#include "src/ftl/ftl.hpp"

#include <algorithm>
#include <sstream>

#include "src/policy/registry.hpp"
#include "src/util/expect.hpp"
#include "src/util/log.hpp"

namespace xlf::ftl {

Ftl::Ftl(const FtlConfig& config,
         std::vector<controller::MemoryController*> dies,
         DurableMeta* durable)
    : config_(config),
      controllers_(std::move(dies)),
      map_(1, 1, 2, 1),  // placeholder; rebuilt below once validated
      clock_(0),
      durable_(durable != nullptr ? durable : &owned_durable_) {
  XLF_EXPECT(!controllers_.empty());
  XLF_EXPECT_MSG(config_.gc_free_blocks >= 1,
                 "gc_free_blocks=" + std::to_string(config_.gc_free_blocks) +
                     " must be >= 1 so relocation frontiers can always open "
                     "a block");
  XLF_EXPECT_MSG(
      config_.logical_fraction > 0.0 && config_.logical_fraction < 1.0,
      [&] {
        std::ostringstream msg;
        msg << "logical_fraction=" << config_.logical_fraction
            << " must lie in (0, 1): the share above the logical space is "
               "the over-provisioning GC lives on";
        return msg.str();
      }());
  XLF_EXPECT_MSG(config_.pe_cycles_per_erase >= 1.0, [&] {
    std::ostringstream msg;
    msg << "pe_cycles_per_erase=" << config_.pe_cycles_per_erase
        << " must be >= 1 (every FTL erase is at least one physical cycle)";
    return msg.str();
  }());

  // Resolve the policy plane up front: a typo in any policy name
  // fails construction with the registered alternatives listed.
  gc_policy_ = policy::PolicyRegistry<policy::GcPolicy>::instance().make_shared(
      config_.gc_policy);
  wear_policy_ =
      policy::PolicyRegistry<policy::WearPolicy>::instance().make_shared(
          config_.wear_policy);
  refresh_policy_ =
      policy::PolicyRegistry<policy::RefreshPolicy>::instance().make_shared(
          config_.refresh_policy);

  const nand::Geometry& geometry = controllers_.front()->device().geometry();
  for (const auto* c : controllers_) {
    XLF_EXPECT(c != nullptr);
    XLF_EXPECT(c->device().geometry().blocks == geometry.blocks);
    XLF_EXPECT(c->device().geometry().pages_per_block ==
               geometry.pages_per_block);
  }
  const std::uint32_t die_count = this->dies();
  const std::size_t physical =
      static_cast<std::size_t>(die_count) * geometry.pages();
  const auto logical = static_cast<std::uint32_t>(
      static_cast<double>(physical) * config_.logical_fraction);
  XLF_EXPECT_MSG(logical >= 1, [&] {
    std::ostringstream msg;
    msg << "logical_fraction=" << config_.logical_fraction
        << " leaves no logical space: " << physical << " physical pages x "
        << config_.logical_fraction << " rounds down to 0 logical pages";
    return msg.str();
  }());

  // GC progress needs slack on every die: the host and GC frontiers
  // plus the free-block floor must fit beside the die's share of the
  // logical space (lpa % dies affinity).
  const std::uint32_t per_die_logical_max =
      logical / die_count + (logical % die_count != 0 ? 1 : 0);
  const std::uint32_t slack_blocks = config_.gc_free_blocks + 2;
  XLF_EXPECT_MSG(geometry.blocks > slack_blocks, [&] {
    std::ostringstream msg;
    msg << "blocks=" << geometry.blocks << " per die cannot host the "
        << slack_blocks << " slack blocks GC needs (gc_free_blocks="
        << config_.gc_free_blocks << " + 2 write frontiers)";
    return msg.str();
  }());
  XLF_EXPECT_MSG(
      per_die_logical_max <=
          (geometry.blocks - slack_blocks) * geometry.pages_per_block,
      [&] {
        std::ostringstream msg;
        msg << "logical_fraction=" << config_.logical_fraction
            << " leaves less than gc_free_blocks+2=" << slack_blocks
            << " blocks of slack per die: up to " << per_die_logical_max
            << " logical pages land on one die but only "
            << (geometry.blocks - slack_blocks) * geometry.pages_per_block
            << " fit beside the slack (" << die_count << " dies, blocks="
            << geometry.blocks << ", pages_per_block="
            << geometry.pages_per_block
            << "); lower logical_fraction or gc_free_blocks, or grow the die";
        return msg.str();
      }());

  map_ = PageMap(die_count, geometry.blocks, geometry.pages_per_block, logical);
  AllocatorConfig alloc_config;
  alloc_config.blocks = geometry.blocks;
  alloc_config.pages_per_block = geometry.pages_per_block;
  alloc_config.wear = wear_policy_;
  // Built-in GC policies get the incremental victim index (O(ppb)
  // picks); custom registrations keep the linear oracle scan.
  alloc_config.gc_index = gc_index_kind_for(config_.gc_policy);
  allocators_.assign(die_count, DieAllocator(alloc_config));
  block_t_.assign(die_count, std::vector<unsigned>(geometry.blocks, 0));
}

void Ftl::map_page(Lpa lpa, Ppa ppa) {
  // Every map transition feeds the allocators' mirrored valid
  // counters (and through them the victim index): +1 on the new
  // block, -1 on the displaced copy's block when the LPA was mapped.
  const Ppa old = map_.map(lpa, ppa);
  allocators_[ppa.die].on_page_mapped(ppa.block);
  if (old.valid()) allocators_[old.die].on_page_invalidated(old.block);
}

void Ftl::unmap_page(Lpa lpa) {
  const Ppa old = map_.unmap(lpa);
  allocators_[old.die].on_page_invalidated(old.block);
}

unsigned Ftl::adapt_block_t(std::uint32_t die, std::uint32_t block) {
  // The paper's schedule at block granularity: the reliability
  // manager re-selects t for the target block's own P/E count, and
  // the controller keeps per-page metadata so older pages still
  // decode at the t they were written with.
  const unsigned t = ctrl(die).adapt_ecc(device(die).wear(block));
  block_t_[die][block] = t;
  stats_.min_t_used = std::min(stats_.min_t_used, t);
  stats_.max_t_used = std::max(stats_.max_t_used, t);
  return t;
}

// xlf: durable — erase pairs with the bad-block table and counter
// records; the kill-window tests own this interior (ack-order stops
// here).
Seconds Ftl::erase_block(std::uint32_t die, std::uint32_t block) {
  fault(FaultPoint::kBeforeErase);
  nand::NandDevice& dev = device(die);
  if (fault_ != nullptr && fault_->should_fail(die, block)) {
    // Grown-bad: the erase fails and the block retires into the
    // durable bad-block table. Its data is already fully invalid
    // (victims are erased only after relocation), so only the
    // bookkeeping moves: no wear bump, no erase count, no free slot.
    // The die still spent the attempt's time going busy.
    dev.mark_bad(block);
    map_.on_erase(die, block);
    allocators_[die].retire(block);
    block_t_[die][block] = 0;
    ++stats_.bad_blocks;
    log_info() << "erase failure: die " << die << " block " << block
               << " retired to the bad-block table";
    return dev.timing().erase_time();
  }
  // Accelerated aging: bump the wear before the physical erase adds
  // its own cycle, so one FTL erase stands for pe_cycles_per_erase
  // cycles of the compressed deployment.
  if (config_.pe_cycles_per_erase > 1.0) {
    dev.set_wear(block, dev.wear(block) + config_.pe_cycles_per_erase - 1.0);
  }
  const Seconds busy = ctrl(die).erase_block(block);
  map_.on_erase(die, block);
  allocators_[die].on_erase(block);
  block_t_[die][block] = 0;  // no pages, no operating point (see rebuild)
  ++stats_.erases;
  fault(FaultPoint::kAfterErase);
  return busy;
}

// xlf: durable — every page moved here writes its OOB record before
// the mapping flips (see the mid-GC kill windows).
Seconds Ftl::relocate_valid_pages(std::uint32_t die, std::uint32_t block,
                                  FtlOpResult& result) {
  Seconds busy{0.0};
  DieAllocator& alloc = allocators_[die];
  const std::uint32_t ppb =
      controllers_.front()->device().geometry().pages_per_block;
  for (std::uint32_t p = 0; p < ppb; ++p) {
    const Ppa src{die, block, p};
    if (!map_.valid(src)) continue;
    const Lpa owner = map_.lpa_at(src);

    fault(FaultPoint::kBeforeGcProgram);
    const controller::ReadResult rd = ctrl(die).read_page({block, p});
    if (rd.uncorrectable) ++stats_.gc_uncorrectable;

    const auto [dst_block, dst_page] = alloc.take_page(DieAllocator::Stream::kGc);
    const unsigned t = adapt_block_t(die, dst_block);
    const controller::WriteResult wr =
        ctrl(die).write_page({dst_block, dst_page}, rd.data);
    // The torn-program window: data committed, record not yet. A kill
    // here leaves the source copy (lower seq, still on flash until
    // the erase below) as the LPA's surviving version.
    fault(FaultPoint::kMidGcProgram);
    device(die).write_oob({dst_block, dst_page},
                          {owner, ++seq_, t, 1, clock_});

    map_page(owner, Ppa{die, dst_block, dst_page});
    // Relocated data keeps the current logical time without advancing
    // it: GC traffic must not make victims look freshly written.
    alloc.stamp_write(dst_block, clock_);

    busy += rd.latency + wr.latency;
    result.ecc_energy += rd.ecc_energy + wr.ecc_energy;
    result.nand_energy += rd.nand_energy + wr.nand_energy;
    ++result.relocations;
    ++stats_.gc_relocations;
  }
  return busy;
}

Seconds Ftl::maybe_static_swap(std::uint32_t die, FtlOpResult& result) {
  // The capability probe keeps non-swapping policies off the erase-
  // counter scans below — this runs on every host write.
  if (!wear_policy_->swaps()) return Seconds{0.0};
  DieAllocator& alloc = allocators_[die];
  policy::WearContext ctx;
  ctx.min_erase_count = alloc.min_erase_count();
  ctx.max_erase_count = alloc.max_erase_count();
  ctx.configured_spread = config_.static_wl_spread;
  if (!wear_policy_->should_swap(ctx)) return Seconds{0.0};
  if (alloc.free_count() == 0) return Seconds{0.0};
  const std::optional<std::uint32_t> cold = alloc.pick_coldest();
  if (!cold.has_value()) return Seconds{0.0};
  // Evict the cold block's pinned data so the low-wear block rejoins
  // the free pool, where dynamic allocation hands it to hot traffic.
  Seconds busy = relocate_valid_pages(die, *cold, result);
  busy += erase_block(die, *cold);
  ++stats_.wl_swaps;
  return busy;
}

Seconds Ftl::ensure_capacity(std::uint32_t die, FtlOpResult& result) {
  Seconds busy{0.0};
  DieAllocator& alloc = allocators_[die];
  const nand::Geometry& geometry = controllers_.front()->device().geometry();
  // Hard bound on GC iterations: every round reclaims at least one
  // invalid page, so a pass over every physical page is a safe guard
  // against a policy bug spinning forever.
  std::size_t rounds = 0;
  const std::size_t max_rounds =
      static_cast<std::size_t>(geometry.blocks) * geometry.pages_per_block + 1;
  while (alloc.free_count() <= config_.gc_free_blocks) {
    const std::optional<std::uint32_t> victim = alloc.pick_victim(
        *gc_policy_,
        [&](std::uint32_t b) { return map_.valid_count(die, b); }, clock_);
    if (!victim.has_value()) break;  // nothing reclaimable yet
    busy += relocate_valid_pages(die, *victim, result);
    busy += erase_block(die, *victim);
    XLF_ENSURE(++rounds <= max_rounds);
  }
  busy += maybe_static_swap(die, result);
  return busy;
}

// xlf: durable — the program is paired with its OOB record inside;
// a write acknowledged above this boundary is rebuildable on mount.
FtlOpResult Ftl::write(Lpa lpa, const BitVec& data) {
  XLF_EXPECT(lpa < logical_pages());
  FtlOpResult result;
  const std::uint32_t die = die_of(lpa);
  result.die = die;

  const Seconds overhead = ensure_capacity(die, result);

  fault(FaultPoint::kBeforeHostProgram);
  const auto [block, page] =
      allocators_[die].take_page(DieAllocator::Stream::kHost);
  result.t_used = adapt_block_t(die, block);
  const controller::WriteResult wr = ctrl(die).write_page({block, page}, data);
  // Torn-program window (data on the cells, no OOB record): a kill
  // here must leave the LPA reading its previous version at rebuild.
  fault(FaultPoint::kMidHostProgram);
  ++clock_;
  device(die).write_oob({block, page},
                        {lpa, ++seq_, result.t_used, 0, clock_});
  result.ok = wr.ok;
  map_page(lpa, Ppa{die, block, page});
  allocators_[die].stamp_write(block, clock_);

  result.io_time = wr.io_latency;
  result.cell_time = (wr.latency - wr.io_latency) + overhead;
  result.gc_time = overhead;
  result.ecc_energy += wr.ecc_energy;
  result.nand_energy += wr.nand_energy;
  ++stats_.host_writes;
  return result;
}

FtlOpResult Ftl::read(Lpa lpa) {
  XLF_EXPECT(lpa < logical_pages());
  FtlOpResult result;
  result.die = die_of(lpa);
  if (!map_.mapped(lpa)) {
    // Never-written LPA: serviced from the map alone as a zero page,
    // no flash touched (a real FTL returns a deallocated pattern).
    result.unmapped = true;
    result.data = BitVec(
        controllers_.front()->device().geometry().data_bits_per_page());
    ++stats_.unmapped_reads;
    return result;
  }
  const Ppa ppa = map_.lookup(lpa);
  const controller::ReadResult rd =
      ctrl(ppa.die).read_page({ppa.block, ppa.page});
  result.ok = rd.ok;
  result.data = rd.data;
  result.corrected_bits = rd.corrected_bits;
  result.uncorrectable = rd.uncorrectable;
  result.io_time = rd.io_latency;
  result.cell_time = rd.latency - rd.io_latency;
  result.ecc_energy += rd.ecc_energy;
  result.nand_energy += rd.nand_energy;
  ++stats_.host_reads;
  return result;
}

FtlOpResult Ftl::trim(Lpa lpa) {
  XLF_EXPECT(lpa < logical_pages());
  FtlOpResult result;
  result.die = die_of(lpa);
  ++stats_.host_trims;
  if (!map_.mapped(lpa)) {
    result.unmapped = true;
    return result;
  }
  unmap_page(lpa);
  // The deallocation is DRAM-only until a flush journals the
  // tombstone; its seq rides the same counter as the OOB records so
  // replay ranks it against the LPA's writes.
  pending_trims_.push_back({lpa, ++seq_});  // xlf-lint: allow(hot-alloc)
  ++stats_.trimmed_pages;
  return result;
}

// xlf: durable — the flush barrier itself.
FtlOpResult Ftl::flush() {
  // The durability barrier: page data is write-through (durable at
  // acknowledge), so what flush persists is the trim journal and the
  // counter checkpoint. Tombstones land one at a time — the kMidFlush
  // window models a power cut after a prefix of the journal append.
  FtlOpResult result;
  for (const TrimTombstone& tombstone : pending_trims_) {
    fault(FaultPoint::kMidFlush);
    // Journal append: the durable record IS the operation here.
    durable_->tombstones.push_back(tombstone);  // xlf-lint: allow(hot-alloc)
    ++stats_.flushed_tombstones;
  }
  pending_trims_.clear();
  durable_->checkpoint_seq = seq_;
  durable_->checkpoint_clock = clock_;
  ++durable_->flush_epochs;
  ++stats_.host_flushes;
  return result;
}

ScrubResult Ftl::scrub() {
  ScrubResult scrub_result;
  const nand::Geometry& geometry = controllers_.front()->device().geometry();
  for (std::uint32_t d = 0; d < dies(); ++d) {
    const nand::AgingLaw& law = device(d).config().array.aging;
    const controller::ReliabilityConfig& rel =
        ctrl(d).reliability().config();
    // Snapshot the candidates before relocating anything: a refresh
    // fills the GC frontier, which can close a *new* block mid-pass,
    // and freshly re-programmed data must not be offered again in the
    // same pass (it would double-copy and double-count).
    std::vector<std::uint32_t> candidates;
    for (std::uint32_t b = 0; b < geometry.blocks; ++b) {
      // Only closed blocks with live data are scrub candidates: open
      // frontiers are in active use and free blocks hold nothing.
      if (allocators_[d].is_closed(b) && map_.valid_count(d, b) > 0) {
        candidates.push_back(b);
      }
    }
    for (const std::uint32_t b : candidates) {
      // Re-check at visit time: an earlier refresh in this pass may
      // have recycled the block through the free list.
      if (!allocators_[d].is_closed(b)) continue;
      if (map_.valid_count(d, b) == 0) continue;
      ++scrub_result.blocks_checked;

      policy::RefreshContext ctx;
      ctx.algo = ctrl(d).program_algorithm();
      ctx.pe_cycles = device(d).wear(b);
      ctx.page_t = block_t_[d][b];
      ctx.retention_hours = config_.scrub_retention_hours;
      ctx.budget = {rel.uber_target, rel.m, rel.k, rel.t_min, rel.t_max};
      ctx.law = &law;
      if (!refresh_policy_->should_refresh(ctx)) continue;

      // Refresh = relocate live data to fresh pages (re-encoded at a
      // re-adapted t) and reclaim the block. The copies ride the GC
      // frontier and counters, and are additionally accounted as
      // refresh traffic.
      FtlOpResult relocation;
      const std::uint64_t relocations_before = stats_.gc_relocations;
      scrub_result.busy += relocate_valid_pages(d, b, relocation);
      scrub_result.busy += erase_block(d, b);
      scrub_result.ecc_energy += relocation.ecc_energy;
      scrub_result.nand_energy += relocation.nand_energy;
      const std::uint64_t moved = stats_.gc_relocations - relocations_before;
      scrub_result.pages_relocated += moved;
      stats_.refresh_relocations += moved;
      ++scrub_result.blocks_refreshed;
      ++stats_.refresh_blocks;
    }
  }
  if (scrub_result.blocks_refreshed > 0) {
    log_info() << "scrub: refreshed " << scrub_result.blocks_refreshed
               << " of " << scrub_result.blocks_checked << " candidate blocks ("
               << scrub_result.pages_relocated << " pages)";
  }
  return scrub_result;
}

void Ftl::rebuild_from_oob() {
  const nand::Geometry& geometry = controllers_.front()->device().geometry();
  const std::uint32_t die_count = dies();
  const std::uint32_t ppb = geometry.pages_per_block;

  // Reset the DRAM state to the fresh-mount layout; the scan below
  // repopulates it. Counters start from the last flush's checkpoint
  // and advance to whatever the scan proves happened after it.
  map_ = PageMap(die_count, geometry.blocks, ppb, map_.logical_pages());
  AllocatorConfig alloc_config;
  alloc_config.blocks = geometry.blocks;
  alloc_config.pages_per_block = ppb;
  alloc_config.wear = wear_policy_;
  alloc_config.gc_index = gc_index_kind_for(config_.gc_policy);
  allocators_.assign(die_count, DieAllocator(alloc_config));
  block_t_.assign(die_count, std::vector<unsigned>(geometry.blocks, 0));
  pending_trims_.clear();
  stats_ = FtlStats{};
  clock_ = durable_->checkpoint_clock;
  seq_ = durable_->checkpoint_seq;

  struct Replay {
    std::uint64_t seq = 0;
    Lpa lpa = 0;
    Ppa ppa;  // invalid for tombstones
    bool tombstone = false;
  };
  std::vector<Replay> replay;

  for (std::uint32_t d = 0; d < die_count; ++d) {
    nand::NandDevice& dev = device(d);
    DieAllocator& alloc = allocators_[d];
    for (std::uint32_t b = 0; b < geometry.blocks; ++b) {
      const std::uint32_t erases = dev.erase_count(b);
      if (dev.is_bad(b)) {
        // Retired for good; stale records inside are never replayed.
        alloc.restore(b, DieAllocator::BlockState::kBad, erases, 0);
        continue;
      }
      std::uint64_t block_stamp = 0;  // newest program's clock stamp
      std::uint64_t best_seq = 0;
      unsigned last_t = 0;
      std::uint8_t last_stream = 0;
      bool any = false;
      for (std::uint32_t p = 0; p < ppb; ++p) {
        const std::optional<nand::OobRecord>& rec = dev.oob({b, p});
        if (!rec.has_value()) continue;
        replay.push_back({rec->seq, rec->lba, Ppa{d, b, p}, false});
        if (rec->seq >= best_seq) {
          best_seq = rec->seq;
          last_t = rec->t;
          last_stream = rec->stream;
        }
        block_stamp = std::max(block_stamp, rec->stamp);
        clock_ = std::max(clock_, rec->stamp);
        seq_ = std::max(seq_, rec->seq);
        stats_.min_t_used = std::min(stats_.min_t_used, rec->t);
        stats_.max_t_used = std::max(stats_.max_t_used, rec->t);
        any = true;
      }
      // Frontier rule: the erased-and-unrecorded suffix is where the
      // block's append position stood. A torn page (programmed cells,
      // no record) stops the suffix scan — it sits below the frontier
      // as an invalid page until the block's next erase.
      std::uint32_t next = ppb;
      while (next > 0 && !dev.oob({b, next - 1}).has_value() &&
             !dev.page_programmed({b, next - 1})) {
        --next;
      }
      if (next == 0) {
        alloc.restore(b, DieAllocator::BlockState::kFree, erases, 0);
      } else if (next == ppb || !any) {
        // Full, or holding nothing but torn pages (a kill on the very
        // first program of a fresh block): closed either way, so GC
        // reclaims it through the normal victim path.
        alloc.restore(b, DieAllocator::BlockState::kClosed, erases,
                      block_stamp);
        block_t_[d][b] = any ? last_t : 0;
      } else {
        // Partially written: reopen as the write frontier of the
        // stream that was filling it (at most one such block per
        // stream — append-only discipline). The defensive fallback
        // closes a second claimant rather than corrupt the frontier.
        const DieAllocator::Stream stream =
            last_stream == 0 ? DieAllocator::Stream::kHost
                             : DieAllocator::Stream::kGc;
        if (alloc.frontier_view(stream).open) {
          alloc.restore(b, DieAllocator::BlockState::kClosed, erases,
                        block_stamp);
        } else {
          alloc.restore_frontier(stream, b, next, erases, block_stamp);
        }
        block_t_[d][b] = last_t;
      }
    }
  }

  for (const TrimTombstone& tombstone : durable_->tombstones) {
    replay.push_back({tombstone.seq, tombstone.lpa, Ppa{}, true});
    seq_ = std::max(seq_, tombstone.seq);
  }

  // Replay in sequence order: for every LPA the highest surviving seq
  // wins — later writes supersede earlier ones, a journaled trim
  // invalidates everything before it and loses to any rewrite after.
  std::sort(replay.begin(), replay.end(),
            [](const Replay& a, const Replay& b) { return a.seq < b.seq; });
  for (const Replay& r : replay) {
    if (r.tombstone) {
      // No-op when already superseded (double trim, GC'd copy, or a
      // journal entry whose write never survived).
      if (r.lpa < map_.logical_pages() && map_.mapped(r.lpa)) {
        unmap_page(r.lpa);
      }
      continue;
    }
    XLF_ENSURE(r.lpa < map_.logical_pages());
    // map_page keeps the allocators' mirrored counters — and with
    // them the victim index — in lockstep with the replay, so the
    // index is fully reconstructed by the time the mount returns.
    map_page(r.lpa, r.ppa);
  }
}

void Ftl::check_consistency() const {
  const nand::Geometry& geometry = controllers_.front()->device().geometry();
  // Every mapping round-trips through the P2L inverse and respects
  // the die affinity.
  for (Lpa lpa = 0; lpa < map_.logical_pages(); ++lpa) {
    if (!map_.mapped(lpa)) continue;
    const Ppa ppa = map_.lookup(lpa);
    XLF_ENSURE(ppa.die == die_of(lpa));
    XLF_ENSURE(ppa.block < geometry.blocks &&
               ppa.page < geometry.pages_per_block);
    XLF_ENSURE(map_.valid(ppa));
    XLF_ENSURE(map_.lpa_at(ppa) == lpa);
  }
  for (std::uint32_t d = 0; d < dies(); ++d) {
    const DieAllocator& alloc = allocators_[d];
    const nand::NandDevice& dev = device(d);
    std::size_t free_blocks = 0;
    std::size_t open_blocks = 0;
    for (std::uint32_t b = 0; b < geometry.blocks; ++b) {
      // Valid counter == recount of P2L-valid pages, each owned by a
      // live mapping.
      std::uint32_t valid = 0;
      for (std::uint32_t p = 0; p < geometry.pages_per_block; ++p) {
        const Ppa ppa{d, b, p};
        if (!map_.valid(ppa)) continue;
        const Lpa owner = map_.lpa_at(ppa);
        XLF_ENSURE(owner < map_.logical_pages());
        XLF_ENSURE(map_.mapped(owner) && map_.lookup(owner) == ppa);
        ++valid;
      }
      XLF_ENSURE(valid == map_.valid_count(d, b));
      // The allocator's mirrored counter (the victim-index feed) must
      // track the map exactly.
      XLF_ENSURE(valid == alloc.cached_valid(b));
      const DieAllocator::BlockState state = alloc.state(b);
      XLF_ENSURE(dev.is_bad(b) == (state == DieAllocator::BlockState::kBad));
      if (state == DieAllocator::BlockState::kFree ||
          state == DieAllocator::BlockState::kBad) {
        XLF_ENSURE(valid == 0);
      }
      if (state == DieAllocator::BlockState::kFree) ++free_blocks;
      if (state == DieAllocator::BlockState::kOpen) ++open_blocks;
    }
    XLF_ENSURE(free_blocks == alloc.free_count());
    // Open blocks and open frontiers are one and the same set.
    std::size_t open_frontiers = 0;
    for (const DieAllocator::Stream stream :
         {DieAllocator::Stream::kHost, DieAllocator::Stream::kGc}) {
      const DieAllocator::FrontierView f = alloc.frontier_view(stream);
      if (!f.open) continue;
      ++open_frontiers;
      XLF_ENSURE(alloc.state(f.block) == DieAllocator::BlockState::kOpen);
      XLF_ENSURE(f.next_page >= 1 && f.next_page < geometry.pages_per_block);
    }
    XLF_ENSURE(open_frontiers == open_blocks);
    // Victim-index audit: the incremental index must reproduce the
    // from-scratch oracle scan — same victim (or both empty) under
    // the live policy and clock.
    if (alloc.victim_index_enabled()) {
      const std::optional<std::uint32_t> oracle = alloc.pick_victim_scored(
          [&](const policy::GcBlockView& view) {
            return gc_policy_->score(view);
          },
          [&](std::uint32_t b) { return map_.valid_count(d, b); }, clock_);
      XLF_ENSURE(alloc.pick_victim_indexed(*gc_policy_, clock_) == oracle);
    }
  }
}

bool Ftl::is_bad(std::uint32_t die, std::uint32_t block) const {
  XLF_EXPECT(die < dies());
  return device(die).is_bad(block);
}

double Ftl::wear(std::uint32_t die, std::uint32_t block) const {
  XLF_EXPECT(die < dies());
  return controllers_[die]->device().wear(block);
}

std::uint32_t Ftl::erase_count(std::uint32_t die, std::uint32_t block) const {
  XLF_EXPECT(die < dies());
  return allocators_[die].erase_count(block);
}

unsigned Ftl::block_t(std::uint32_t die, std::uint32_t block) const {
  XLF_EXPECT(die < dies());
  return block_t_.at(die).at(block);
}

double Ftl::min_wear() const {
  double w = std::numeric_limits<double>::infinity();
  for (std::uint32_t d = 0; d < dies(); ++d) {
    const nand::Geometry& geometry = controllers_[d]->device().geometry();
    for (std::uint32_t b = 0; b < geometry.blocks; ++b) {
      w = std::min(w, wear(d, b));
    }
  }
  return w;
}

double Ftl::max_wear() const {
  double w = 0.0;
  for (std::uint32_t d = 0; d < dies(); ++d) {
    const nand::Geometry& geometry = controllers_[d]->device().geometry();
    for (std::uint32_t b = 0; b < geometry.blocks; ++b) {
      w = std::max(w, wear(d, b));
    }
  }
  return w;
}

}  // namespace xlf::ftl
