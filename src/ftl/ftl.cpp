#include "src/ftl/ftl.hpp"

#include <algorithm>
#include <sstream>

#include "src/policy/registry.hpp"
#include "src/util/expect.hpp"
#include "src/util/log.hpp"

namespace xlf::ftl {

Ftl::Ftl(const FtlConfig& config,
         std::vector<controller::MemoryController*> dies)
    : config_(config),
      controllers_(std::move(dies)),
      map_(1, 1, 2, 1),  // placeholder; rebuilt below once validated
      clock_(0) {
  XLF_EXPECT(!controllers_.empty());
  XLF_EXPECT_MSG(config_.gc_free_blocks >= 1,
                 "gc_free_blocks=" + std::to_string(config_.gc_free_blocks) +
                     " must be >= 1 so relocation frontiers can always open "
                     "a block");
  XLF_EXPECT_MSG(
      config_.logical_fraction > 0.0 && config_.logical_fraction < 1.0,
      [&] {
        std::ostringstream msg;
        msg << "logical_fraction=" << config_.logical_fraction
            << " must lie in (0, 1): the share above the logical space is "
               "the over-provisioning GC lives on";
        return msg.str();
      }());
  XLF_EXPECT_MSG(config_.pe_cycles_per_erase >= 1.0, [&] {
    std::ostringstream msg;
    msg << "pe_cycles_per_erase=" << config_.pe_cycles_per_erase
        << " must be >= 1 (every FTL erase is at least one physical cycle)";
    return msg.str();
  }());

  // Resolve the policy plane up front: a typo in any policy name
  // fails construction with the registered alternatives listed.
  gc_policy_ = policy::PolicyRegistry<policy::GcPolicy>::instance().make_shared(
      config_.gc_policy);
  wear_policy_ =
      policy::PolicyRegistry<policy::WearPolicy>::instance().make_shared(
          config_.wear_policy);
  refresh_policy_ =
      policy::PolicyRegistry<policy::RefreshPolicy>::instance().make_shared(
          config_.refresh_policy);

  const nand::Geometry& geometry = controllers_.front()->device().geometry();
  for (const auto* c : controllers_) {
    XLF_EXPECT(c != nullptr);
    XLF_EXPECT(c->device().geometry().blocks == geometry.blocks);
    XLF_EXPECT(c->device().geometry().pages_per_block ==
               geometry.pages_per_block);
  }
  const std::uint32_t die_count = this->dies();
  const std::size_t physical =
      static_cast<std::size_t>(die_count) * geometry.pages();
  const auto logical = static_cast<std::uint32_t>(
      static_cast<double>(physical) * config_.logical_fraction);
  XLF_EXPECT_MSG(logical >= 1, [&] {
    std::ostringstream msg;
    msg << "logical_fraction=" << config_.logical_fraction
        << " leaves no logical space: " << physical << " physical pages x "
        << config_.logical_fraction << " rounds down to 0 logical pages";
    return msg.str();
  }());

  // GC progress needs slack on every die: the host and GC frontiers
  // plus the free-block floor must fit beside the die's share of the
  // logical space (lpa % dies affinity).
  const std::uint32_t per_die_logical_max =
      logical / die_count + (logical % die_count != 0 ? 1 : 0);
  const std::uint32_t slack_blocks = config_.gc_free_blocks + 2;
  XLF_EXPECT_MSG(geometry.blocks > slack_blocks, [&] {
    std::ostringstream msg;
    msg << "blocks=" << geometry.blocks << " per die cannot host the "
        << slack_blocks << " slack blocks GC needs (gc_free_blocks="
        << config_.gc_free_blocks << " + 2 write frontiers)";
    return msg.str();
  }());
  XLF_EXPECT_MSG(
      per_die_logical_max <=
          (geometry.blocks - slack_blocks) * geometry.pages_per_block,
      [&] {
        std::ostringstream msg;
        msg << "logical_fraction=" << config_.logical_fraction
            << " leaves less than gc_free_blocks+2=" << slack_blocks
            << " blocks of slack per die: up to " << per_die_logical_max
            << " logical pages land on one die but only "
            << (geometry.blocks - slack_blocks) * geometry.pages_per_block
            << " fit beside the slack (" << die_count << " dies, blocks="
            << geometry.blocks << ", pages_per_block="
            << geometry.pages_per_block
            << "); lower logical_fraction or gc_free_blocks, or grow the die";
        return msg.str();
      }());

  map_ = PageMap(die_count, geometry.blocks, geometry.pages_per_block, logical);
  AllocatorConfig alloc_config;
  alloc_config.blocks = geometry.blocks;
  alloc_config.pages_per_block = geometry.pages_per_block;
  alloc_config.wear = wear_policy_;
  allocators_.assign(die_count, DieAllocator(alloc_config));
  block_t_.assign(die_count, std::vector<unsigned>(geometry.blocks, 0));
}

unsigned Ftl::adapt_block_t(std::uint32_t die, std::uint32_t block) {
  // The paper's schedule at block granularity: the reliability
  // manager re-selects t for the target block's own P/E count, and
  // the controller keeps per-page metadata so older pages still
  // decode at the t they were written with.
  const unsigned t = ctrl(die).adapt_ecc(device(die).wear(block));
  block_t_[die][block] = t;
  stats_.min_t_used = std::min(stats_.min_t_used, t);
  stats_.max_t_used = std::max(stats_.max_t_used, t);
  return t;
}

Seconds Ftl::erase_block(std::uint32_t die, std::uint32_t block) {
  nand::NandDevice& dev = device(die);
  // Accelerated aging: bump the wear before the physical erase adds
  // its own cycle, so one FTL erase stands for pe_cycles_per_erase
  // cycles of the compressed deployment.
  if (config_.pe_cycles_per_erase > 1.0) {
    dev.set_wear(block, dev.wear(block) + config_.pe_cycles_per_erase - 1.0);
  }
  const Seconds busy = ctrl(die).erase_block(block);
  map_.on_erase(die, block);
  allocators_[die].on_erase(block);
  ++stats_.erases;
  return busy;
}

Seconds Ftl::relocate_valid_pages(std::uint32_t die, std::uint32_t block,
                                  FtlOpResult& result) {
  Seconds busy{0.0};
  DieAllocator& alloc = allocators_[die];
  const std::uint32_t ppb =
      controllers_.front()->device().geometry().pages_per_block;
  for (std::uint32_t p = 0; p < ppb; ++p) {
    const Ppa src{die, block, p};
    if (!map_.valid(src)) continue;
    const Lpa owner = map_.lpa_at(src);

    const controller::ReadResult rd = ctrl(die).read_page({block, p});
    if (rd.uncorrectable) ++stats_.gc_uncorrectable;

    const auto [dst_block, dst_page] = alloc.take_page(DieAllocator::Stream::kGc);
    adapt_block_t(die, dst_block);
    const controller::WriteResult wr =
        ctrl(die).write_page({dst_block, dst_page}, rd.data);

    map_.map(owner, Ppa{die, dst_block, dst_page});
    // Relocated data keeps the current logical time without advancing
    // it: GC traffic must not make victims look freshly written.
    alloc.stamp_write(dst_block, clock_);

    busy += rd.latency + wr.latency;
    result.ecc_energy += rd.ecc_energy + wr.ecc_energy;
    result.nand_energy += rd.nand_energy + wr.nand_energy;
    ++result.relocations;
    ++stats_.gc_relocations;
  }
  return busy;
}

Seconds Ftl::maybe_static_swap(std::uint32_t die, FtlOpResult& result) {
  // The capability probe keeps non-swapping policies off the erase-
  // counter scans below — this runs on every host write.
  if (!wear_policy_->swaps()) return Seconds{0.0};
  DieAllocator& alloc = allocators_[die];
  policy::WearContext ctx;
  ctx.min_erase_count = alloc.min_erase_count();
  ctx.max_erase_count = alloc.max_erase_count();
  ctx.configured_spread = config_.static_wl_spread;
  if (!wear_policy_->should_swap(ctx)) return Seconds{0.0};
  if (alloc.free_count() == 0) return Seconds{0.0};
  const std::optional<std::uint32_t> cold = alloc.pick_coldest();
  if (!cold.has_value()) return Seconds{0.0};
  // Evict the cold block's pinned data so the low-wear block rejoins
  // the free pool, where dynamic allocation hands it to hot traffic.
  Seconds busy = relocate_valid_pages(die, *cold, result);
  busy += erase_block(die, *cold);
  ++stats_.wl_swaps;
  return busy;
}

Seconds Ftl::ensure_capacity(std::uint32_t die, FtlOpResult& result) {
  Seconds busy{0.0};
  DieAllocator& alloc = allocators_[die];
  const nand::Geometry& geometry = controllers_.front()->device().geometry();
  // Hard bound on GC iterations: every round reclaims at least one
  // invalid page, so a pass over every physical page is a safe guard
  // against a policy bug spinning forever.
  std::size_t rounds = 0;
  const std::size_t max_rounds =
      static_cast<std::size_t>(geometry.blocks) * geometry.pages_per_block + 1;
  while (alloc.free_count() <= config_.gc_free_blocks) {
    const std::optional<std::uint32_t> victim = alloc.pick_victim(
        *gc_policy_,
        [&](std::uint32_t b) { return map_.valid_count(die, b); }, clock_);
    if (!victim.has_value()) break;  // nothing reclaimable yet
    busy += relocate_valid_pages(die, *victim, result);
    busy += erase_block(die, *victim);
    XLF_ENSURE(++rounds <= max_rounds);
  }
  busy += maybe_static_swap(die, result);
  return busy;
}

FtlOpResult Ftl::write(Lpa lpa, const BitVec& data) {
  XLF_EXPECT(lpa < logical_pages());
  FtlOpResult result;
  const std::uint32_t die = die_of(lpa);
  result.die = die;

  const Seconds overhead = ensure_capacity(die, result);

  const auto [block, page] =
      allocators_[die].take_page(DieAllocator::Stream::kHost);
  result.t_used = adapt_block_t(die, block);
  const controller::WriteResult wr = ctrl(die).write_page({block, page}, data);
  result.ok = wr.ok;
  map_.map(lpa, Ppa{die, block, page});
  allocators_[die].stamp_write(block, ++clock_);

  result.io_time = wr.io_latency;
  result.cell_time = (wr.latency - wr.io_latency) + overhead;
  result.gc_time = overhead;
  result.ecc_energy += wr.ecc_energy;
  result.nand_energy += wr.nand_energy;
  ++stats_.host_writes;
  return result;
}

FtlOpResult Ftl::read(Lpa lpa) {
  XLF_EXPECT(lpa < logical_pages());
  FtlOpResult result;
  result.die = die_of(lpa);
  if (!map_.mapped(lpa)) {
    // Never-written LPA: serviced from the map alone as a zero page,
    // no flash touched (a real FTL returns a deallocated pattern).
    result.unmapped = true;
    result.data = BitVec(
        controllers_.front()->device().geometry().data_bits_per_page());
    ++stats_.unmapped_reads;
    return result;
  }
  const Ppa ppa = map_.lookup(lpa);
  const controller::ReadResult rd =
      ctrl(ppa.die).read_page({ppa.block, ppa.page});
  result.ok = rd.ok;
  result.data = rd.data;
  result.corrected_bits = rd.corrected_bits;
  result.uncorrectable = rd.uncorrectable;
  result.io_time = rd.io_latency;
  result.cell_time = rd.latency - rd.io_latency;
  result.ecc_energy += rd.ecc_energy;
  result.nand_energy += rd.nand_energy;
  ++stats_.host_reads;
  return result;
}

FtlOpResult Ftl::trim(Lpa lpa) {
  XLF_EXPECT(lpa < logical_pages());
  FtlOpResult result;
  result.die = die_of(lpa);
  ++stats_.host_trims;
  if (!map_.mapped(lpa)) {
    result.unmapped = true;
    return result;
  }
  map_.unmap(lpa);
  ++stats_.trimmed_pages;
  return result;
}

FtlOpResult Ftl::flush() {
  // Write-through: nothing buffered, nothing to persist (see header).
  FtlOpResult result;
  ++stats_.host_flushes;
  return result;
}

ScrubResult Ftl::scrub() {
  ScrubResult scrub_result;
  const nand::Geometry& geometry = controllers_.front()->device().geometry();
  for (std::uint32_t d = 0; d < dies(); ++d) {
    const nand::AgingLaw& law = device(d).config().array.aging;
    const controller::ReliabilityConfig& rel =
        ctrl(d).reliability().config();
    // Snapshot the candidates before relocating anything: a refresh
    // fills the GC frontier, which can close a *new* block mid-pass,
    // and freshly re-programmed data must not be offered again in the
    // same pass (it would double-copy and double-count).
    std::vector<std::uint32_t> candidates;
    for (std::uint32_t b = 0; b < geometry.blocks; ++b) {
      // Only closed blocks with live data are scrub candidates: open
      // frontiers are in active use and free blocks hold nothing.
      if (allocators_[d].is_closed(b) && map_.valid_count(d, b) > 0) {
        candidates.push_back(b);
      }
    }
    for (const std::uint32_t b : candidates) {
      // Re-check at visit time: an earlier refresh in this pass may
      // have recycled the block through the free list.
      if (!allocators_[d].is_closed(b)) continue;
      if (map_.valid_count(d, b) == 0) continue;
      ++scrub_result.blocks_checked;

      policy::RefreshContext ctx;
      ctx.algo = ctrl(d).program_algorithm();
      ctx.pe_cycles = device(d).wear(b);
      ctx.page_t = block_t_[d][b];
      ctx.retention_hours = config_.scrub_retention_hours;
      ctx.budget = {rel.uber_target, rel.m, rel.k, rel.t_min, rel.t_max};
      ctx.law = &law;
      if (!refresh_policy_->should_refresh(ctx)) continue;

      // Refresh = relocate live data to fresh pages (re-encoded at a
      // re-adapted t) and reclaim the block. The copies ride the GC
      // frontier and counters, and are additionally accounted as
      // refresh traffic.
      FtlOpResult relocation;
      const std::uint64_t relocations_before = stats_.gc_relocations;
      scrub_result.busy += relocate_valid_pages(d, b, relocation);
      scrub_result.busy += erase_block(d, b);
      scrub_result.ecc_energy += relocation.ecc_energy;
      scrub_result.nand_energy += relocation.nand_energy;
      const std::uint64_t moved = stats_.gc_relocations - relocations_before;
      scrub_result.pages_relocated += moved;
      stats_.refresh_relocations += moved;
      ++scrub_result.blocks_refreshed;
      ++stats_.refresh_blocks;
    }
  }
  if (scrub_result.blocks_refreshed > 0) {
    log_info() << "scrub: refreshed " << scrub_result.blocks_refreshed
               << " of " << scrub_result.blocks_checked << " candidate blocks ("
               << scrub_result.pages_relocated << " pages)";
  }
  return scrub_result;
}

double Ftl::wear(std::uint32_t die, std::uint32_t block) const {
  XLF_EXPECT(die < dies());
  return controllers_[die]->device().wear(block);
}

std::uint32_t Ftl::erase_count(std::uint32_t die, std::uint32_t block) const {
  XLF_EXPECT(die < dies());
  return allocators_[die].erase_count(block);
}

unsigned Ftl::block_t(std::uint32_t die, std::uint32_t block) const {
  XLF_EXPECT(die < dies());
  return block_t_.at(die).at(block);
}

double Ftl::min_wear() const {
  double w = std::numeric_limits<double>::infinity();
  for (std::uint32_t d = 0; d < dies(); ++d) {
    const nand::Geometry& geometry = controllers_[d]->device().geometry();
    for (std::uint32_t b = 0; b < geometry.blocks; ++b) {
      w = std::min(w, wear(d, b));
    }
  }
  return w;
}

double Ftl::max_wear() const {
  double w = 0.0;
  for (std::uint32_t d = 0; d < dies(); ++d) {
    const nand::Geometry& geometry = controllers_[d]->device().geometry();
    for (std::uint32_t b = 0; b < geometry.blocks; ++b) {
      w = std::max(w, wear(d, b));
    }
  }
  return w;
}

}  // namespace xlf::ftl
