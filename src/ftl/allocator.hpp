// Per-die block allocation and garbage-collection victim selection.
//
// Each die runs two append-only write frontiers — the host stream
// (hot, freshly written data) and the GC stream (cold, relocated
// data) — the classic hot/cold separation that keeps write
// amplification down under skewed workloads. Blocks cycle through
// free -> open -> closed -> (GC victim) -> free; the allocator owns
// that state machine plus the FTL-visible erase counters the wear
// leveler and the per-block ECC adaptation read.
//
// Policy decisions are delegated to the xlf::policy plane:
//  * GC victim selection scores closed blocks through a
//    policy::GcPolicy ("greedy", "cost-benefit", or any registered
//    strategy) — pick_victim is also available as the pick_victim_scored
//    template for inlined scoring (benchmarks pin the virtual-dispatch
//    cost against it);
//  * free-block preference comes from the policy::WearPolicy's
//    free_block_score ("none" = by id, "dynamic"/"static" = lowest
//    erase count).
//
// Deterministic throughout: all ties break toward the lowest block
// id, so simulation runs are bit-reproducible whatever the policy.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/policy/policy.hpp"

namespace xlf::ftl {

struct AllocatorConfig {
  std::uint32_t blocks = 0;
  std::uint32_t pages_per_block = 0;
  // Shared, immutable wear-leveling strategy; nullptr resolves to the
  // registry's "dynamic" built-in (the historical default).
  std::shared_ptr<const policy::WearPolicy> wear;
};

class DieAllocator {
 public:
  // The two write frontiers (hot/cold separation).
  enum class Stream { kHost, kGc };

  explicit DieAllocator(const AllocatorConfig& config);

  std::size_t free_count() const { return free_count_; }
  // True when the next take_page(stream) must open a fresh block.
  bool needs_block(Stream stream) const;

  // Next append position of the stream's open block; opens a block
  // from the free list when needed (requires free_count() > 0 then).
  // Returns {block, page}.
  std::pair<std::uint32_t, std::uint32_t> take_page(Stream stream);

  // Record the logical write time of a block (cost-benefit age).
  void stamp_write(std::uint32_t block, std::uint64_t stamp);
  // Erase bookkeeping: the block rejoins the free list and its erase
  // counter advances. Must be a closed block (victims always are;
  // open frontiers are never collected).
  void on_erase(std::uint32_t block);

  std::uint32_t erase_count(std::uint32_t block) const;
  std::uint32_t min_erase_count() const;
  std::uint32_t max_erase_count() const;

  // GC victim among closed blocks with at least one invalid page:
  // the highest-scoring candidate under `score`, lowest block id on
  // ties. `valid_count(block)` supplies the live-page signal, `now`
  // the logical clock. nullopt when nothing is reclaimable. The
  // template keeps the score call inlinable for hand-rolled scans;
  // the GcPolicy overload below is the policy-plane entry point.
  template <class ScoreFn, class ValidCountFn>
  std::optional<std::uint32_t> pick_victim_scored(
      const ScoreFn& score, const ValidCountFn& valid_count,
      std::uint64_t now) const;

  template <class ValidCountFn>
  std::optional<std::uint32_t> pick_victim(const policy::GcPolicy& policy,
                                           const ValidCountFn& valid_count,
                                           std::uint64_t now) const {
    return pick_victim_scored(
        [&policy](const policy::GcBlockView& view) {
          return policy.score(view);
        },
        valid_count, now);
  }

  // Coldest closed block (lowest erase count, oldest stamp as the
  // tiebreak) — the static wear leveler's swap source. nullopt when
  // no block is closed.
  std::optional<std::uint32_t> pick_coldest() const;

  bool is_closed(std::uint32_t block) const {
    return states_.at(block) == State::kClosed;
  }

 private:
  enum class State { kFree, kOpen, kClosed };
  struct Frontier {
    std::uint32_t block = 0;
    std::uint32_t next_page = 0;
    bool open = false;
  };

  std::uint32_t pick_free_block() const;
  Frontier& frontier(Stream stream);
  const Frontier& frontier(Stream stream) const;

  AllocatorConfig config_;
  std::vector<State> states_;
  std::vector<std::uint32_t> erase_counts_;
  std::vector<std::uint64_t> last_write_;
  Frontier host_;
  Frontier gc_;
  std::size_t free_count_ = 0;
};

template <class ScoreFn, class ValidCountFn>
std::optional<std::uint32_t> DieAllocator::pick_victim_scored(
    const ScoreFn& score, const ValidCountFn& valid_count,
    std::uint64_t now) const {
  std::optional<std::uint32_t> best;
  double best_score = 0.0;
  for (std::uint32_t b = 0; b < config_.blocks; ++b) {
    if (states_[b] != State::kClosed) continue;
    const std::uint32_t valid = valid_count(b);
    if (valid >= config_.pages_per_block) continue;  // nothing to reclaim
    policy::GcBlockView view;
    view.block = b;
    view.valid_pages = valid;
    view.pages_per_block = config_.pages_per_block;
    view.erase_count = erase_counts_[b];
    view.last_write = last_write_[b];
    view.now = now;
    const double candidate = score(view);
    // Strict > keeps the lowest-id winner on ties (deterministic).
    if (!best.has_value() || candidate > best_score) {
      best = b;
      best_score = candidate;
    }
  }
  return best;
}

}  // namespace xlf::ftl
