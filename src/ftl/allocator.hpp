// Per-die block allocation and garbage-collection victim selection.
//
// Each die runs two append-only write frontiers — the host stream
// (hot, freshly written data) and the GC stream (cold, relocated
// data) — the classic hot/cold separation that keeps write
// amplification down under skewed workloads. Blocks cycle through
// free -> open -> closed -> (GC victim) -> free; the allocator owns
// that state machine plus the FTL-visible erase counters the wear
// leveler and the per-block ECC adaptation read.
//
// Victim selection implements the two textbook policies:
//  * greedy — fewest valid pages (cheapest copy-out now);
//  * cost-benefit — maximise age * (1-u) / (2u), which lets a
//    slightly fuller but long-cold block win over a just-written
//    sparse one (Rosenblum & Ousterhout's LFS cleaner formula).
//
// Deterministic throughout: all ties break toward the lowest block
// id, so simulation runs are bit-reproducible.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace xlf::ftl {

enum class GcPolicy { kGreedy, kCostBenefit };

enum class WearLeveling {
  kNone,     // free blocks picked by id; no cold-data swaps
  kDynamic,  // free blocks picked by lowest erase count
  kStatic,   // dynamic + periodic cold-block swap on wide wear spread
};

const char* to_string(GcPolicy policy);
const char* to_string(WearLeveling wl);

struct AllocatorConfig {
  std::uint32_t blocks = 0;
  std::uint32_t pages_per_block = 0;
  WearLeveling wear_leveling = WearLeveling::kDynamic;
};

class DieAllocator {
 public:
  // The two write frontiers (hot/cold separation).
  enum class Stream { kHost, kGc };

  explicit DieAllocator(const AllocatorConfig& config);

  std::size_t free_count() const { return free_count_; }
  // True when the next take_page(stream) must open a fresh block.
  bool needs_block(Stream stream) const;

  // Next append position of the stream's open block; opens a block
  // from the free list when needed (requires free_count() > 0 then).
  // Returns {block, page}.
  std::pair<std::uint32_t, std::uint32_t> take_page(Stream stream);

  // Record the logical write time of a block (cost-benefit age).
  void stamp_write(std::uint32_t block, std::uint64_t stamp);
  // Erase bookkeeping: the block rejoins the free list and its erase
  // counter advances. Must be a closed block (victims always are;
  // open frontiers are never collected).
  void on_erase(std::uint32_t block);

  std::uint32_t erase_count(std::uint32_t block) const;
  std::uint32_t min_erase_count() const;
  std::uint32_t max_erase_count() const;

  // GC victim among closed blocks with at least one invalid page;
  // `valid_count(block)` supplies the live-page signal, `now` the
  // logical clock for cost-benefit aging. nullopt when nothing is
  // reclaimable.
  template <class ValidCountFn>
  std::optional<std::uint32_t> pick_victim(GcPolicy policy,
                                           const ValidCountFn& valid_count,
                                           std::uint64_t now) const;

  // Coldest closed block (lowest erase count, oldest stamp as the
  // tiebreak) — the static wear leveler's swap source. nullopt when
  // no block is closed.
  std::optional<std::uint32_t> pick_coldest() const;

  bool is_closed(std::uint32_t block) const {
    return states_.at(block) == State::kClosed;
  }

 private:
  enum class State { kFree, kOpen, kClosed };
  struct Frontier {
    std::uint32_t block = 0;
    std::uint32_t next_page = 0;
    bool open = false;
  };

  std::uint32_t pick_free_block() const;
  Frontier& frontier(Stream stream);
  const Frontier& frontier(Stream stream) const;

  AllocatorConfig config_;
  std::vector<State> states_;
  std::vector<std::uint32_t> erase_counts_;
  std::vector<std::uint64_t> last_write_;
  Frontier host_;
  Frontier gc_;
  std::size_t free_count_ = 0;
};

template <class ValidCountFn>
std::optional<std::uint32_t> DieAllocator::pick_victim(
    GcPolicy policy, const ValidCountFn& valid_count,
    std::uint64_t now) const {
  std::optional<std::uint32_t> best;
  double best_score = 0.0;
  for (std::uint32_t b = 0; b < config_.blocks; ++b) {
    if (states_[b] != State::kClosed) continue;
    const std::uint32_t valid = valid_count(b);
    if (valid >= config_.pages_per_block) continue;  // nothing to reclaim
    double score = 0.0;
    switch (policy) {
      case GcPolicy::kGreedy:
        // Fewest valid pages wins; score rises as valid drops.
        score = static_cast<double>(config_.pages_per_block - valid);
        break;
      case GcPolicy::kCostBenefit: {
        const double u =
            static_cast<double>(valid) / config_.pages_per_block;
        const double age =
            static_cast<double>(now - std::min(now, last_write_[b])) + 1.0;
        // benefit/cost = free-space gain * age over twice the copy
        // cost; u == 0 degenerates to "free block's worth per unit
        // cost", handled by the u floor.
        score = age * (1.0 - u) / (2.0 * std::max(u, 1e-9));
        break;
      }
    }
    // Strict > keeps the lowest-id winner on ties (deterministic).
    if (!best.has_value() || score > best_score) {
      best = b;
      best_score = score;
    }
  }
  return best;
}

}  // namespace xlf::ftl
