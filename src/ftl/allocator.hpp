// Per-die block allocation and garbage-collection victim selection.
//
// Each die runs two append-only write frontiers — the host stream
// (hot, freshly written data) and the GC stream (cold, relocated
// data) — the classic hot/cold separation that keeps write
// amplification down under skewed workloads. Blocks cycle through
// free -> open -> closed -> (GC victim) -> free, with a terminal
// `bad` state for blocks retired after an erase failure (never
// allocated, never collected, excluded from the wear spread); the
// allocator owns that state machine plus the FTL-visible erase
// counters the wear leveler and the per-block ECC adaptation read.
//
// All of this is DRAM state: after a simulated power cycle the Ftl
// reconstructs it through the restore()/restore_frontier() mount API
// from the durable per-block table and the OOB scan (see
// Ftl::rebuild_from_oob).
//
// Policy decisions are delegated to the xlf::policy plane:
//  * GC victim selection scores closed blocks through a
//    policy::GcPolicy ("greedy", "cost-benefit", or any registered
//    strategy) — pick_victim is also available as the pick_victim_scored
//    template for inlined scoring (benchmarks pin the virtual-dispatch
//    cost against it);
//  * free-block preference comes from the policy::WearPolicy's
//    free_block_score ("none" = by id, "dynamic"/"static" = lowest
//    erase count).
//
// Deterministic throughout: all ties break toward the lowest block
// id, so simulation runs are bit-reproducible whatever the policy.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/ftl/victim_index.hpp"
#include "src/policy/policy.hpp"

namespace xlf::ftl {

struct AllocatorConfig {
  std::uint32_t blocks = 0;
  std::uint32_t pages_per_block = 0;
  // Shared, immutable wear-leveling strategy; nullptr resolves to the
  // registry's "dynamic" built-in (the historical default).
  std::shared_ptr<const policy::WearPolicy> wear;
  // Enables the incremental victim index when the GC policy is a
  // built-in whose scoring the index can mirror (see victim_index.hpp).
  // kNone keeps pick_victim on the linear oracle scan. Callers that
  // enable it must report valid-count changes through on_page_mapped /
  // on_page_invalidated (the Ftl does).
  GcIndexKind gc_index = GcIndexKind::kNone;
};

class DieAllocator {
 public:
  // The two write frontiers (hot/cold separation).
  enum class Stream { kHost, kGc };

  // Block life cycle; kBad is terminal (grown-bad retirement).
  enum class BlockState { kFree, kOpen, kClosed, kBad };

  struct FrontierView {
    bool open = false;
    // Zero when closed, so views compare cleanly across a remount
    // (a closed frontier's stale block/page fields never leak).
    std::uint32_t block = 0;
    std::uint32_t next_page = 0;

    friend bool operator==(const FrontierView&, const FrontierView&) = default;
  };

  explicit DieAllocator(const AllocatorConfig& config);

  std::size_t free_count() const { return free_count_; }
  // True when the next take_page(stream) must open a fresh block.
  bool needs_block(Stream stream) const;

  // Next append position of the stream's open block; opens a block
  // from the free list when needed (requires free_count() > 0 then).
  // Returns {block, page}.
  std::pair<std::uint32_t, std::uint32_t> take_page(Stream stream);

  // Record the logical write time of a block (cost-benefit age).
  void stamp_write(std::uint32_t block, std::uint64_t stamp);

  // --- victim-index valid-count feed --------------------------------
  // The allocator mirrors the PageMap's per-block valid counters so
  // the victim index can re-bucket closed blocks incrementally. The
  // Ftl calls these on every map/unmap transition (host writes, GC
  // relocation, trim). Cheap unconditionally; with the index enabled
  // they also refresh the block's index entry.
  void on_page_mapped(std::uint32_t block);
  void on_page_invalidated(std::uint32_t block);
  std::uint32_t cached_valid(std::uint32_t block) const {
    return cached_valid_.at(block);
  }
  bool victim_index_enabled() const { return victims_.enabled(); }
  // Erase bookkeeping: the block rejoins the free list, its erase
  // counter advances and its write stamp resets (a free block has no
  // age). Must be a closed block (victims always are; open frontiers
  // are never collected).
  void on_erase(std::uint32_t block);
  // Grown-bad retirement: a closed block whose erase failed leaves
  // the allocation cycle for good. Its erase counter does not advance
  // (the erase did not happen).
  void retire(std::uint32_t block);

  std::uint32_t erase_count(std::uint32_t block) const;
  // Wear spread over blocks still in the allocation cycle (retired
  // blocks' frozen counters must not drive wear-leveling decisions).
  std::uint32_t min_erase_count() const;
  std::uint32_t max_erase_count() const;

  // --- mount-time restore (rebuild_from_oob) ------------------------
  // Reconstruct a block's state on a freshly constructed allocator.
  // kOpen goes through restore_frontier instead, which also reopens
  // the stream's append position.
  void restore(std::uint32_t block, BlockState state,
               std::uint32_t erase_count, std::uint64_t last_write);
  void restore_frontier(Stream stream, std::uint32_t block,
                        std::uint32_t next_page, std::uint32_t erase_count,
                        std::uint64_t last_write);

  BlockState state(std::uint32_t block) const { return states_.at(block); }
  std::uint64_t last_write(std::uint32_t block) const {
    return last_write_.at(block);
  }
  FrontierView frontier_view(Stream stream) const;

  // GC victim among closed blocks with at least one invalid page:
  // the highest-scoring candidate under `score`, lowest block id on
  // ties. `valid_count(block)` supplies the live-page signal, `now`
  // the logical clock. nullopt when nothing is reclaimable. The
  // template keeps the score call inlinable for hand-rolled scans;
  // the GcPolicy overload below is the policy-plane entry point.
  template <class ScoreFn, class ValidCountFn>
  std::optional<std::uint32_t> pick_victim_scored(
      const ScoreFn& score, const ValidCountFn& valid_count,
      std::uint64_t now) const;

  // Policy-plane victim selection. With the victim index enabled the
  // pick costs O(pages_per_block) bucket-head probes instead of an
  // O(blocks) scan, and is byte-identical to the oracle (scores run
  // through the same policy object; ties break toward the lowest id
  // in both). `valid_count` is only consulted on the fallback path —
  // the index path reads the mirrored counters.
  // xlf: hot — on the GC trigger path of every write burst.
  template <class ValidCountFn>
  std::optional<std::uint32_t> pick_victim(const policy::GcPolicy& policy,
                                           const ValidCountFn& valid_count,
                                           std::uint64_t now) const {
    if (victims_.enabled()) return pick_victim_indexed(policy, now);
    return pick_victim_scored(
        [&policy](const policy::GcBlockView& view) {
          return policy.score(view);
        },
        valid_count, now);
  }

  // Index-backed pick (requires victim_index_enabled()); exposed so
  // tests can pin it against pick_victim_scored directly.
  std::optional<std::uint32_t> pick_victim_indexed(
      const policy::GcPolicy& policy, std::uint64_t now) const;

  // Coldest closed block (lowest erase count, oldest stamp as the
  // tiebreak) — the static wear leveler's swap source. nullopt when
  // no block is closed.
  std::optional<std::uint32_t> pick_coldest() const;

  bool is_closed(std::uint32_t block) const {
    return states_.at(block) == BlockState::kClosed;
  }

 private:
  struct Frontier {
    std::uint32_t block = 0;
    std::uint32_t next_page = 0;
    bool open = false;
  };

  std::uint32_t pick_free_block() const;
  Frontier& frontier(Stream stream);
  const Frontier& frontier(Stream stream) const;
  // Refresh the block's victim-index entry from the mirrored state
  // (no-op while the block is not closed or the index is disabled).
  void index_update(std::uint32_t block);

  AllocatorConfig config_;
  std::vector<BlockState> states_;
  std::vector<std::uint32_t> erase_counts_;
  std::vector<std::uint64_t> last_write_;
  // Mirror of the PageMap's per-block valid counts, fed through
  // on_page_mapped / on_page_invalidated; drives the victim index.
  std::vector<std::uint32_t> cached_valid_;
  VictimIndex victims_;
  FreeBlockIndex free_index_;
  Frontier host_;
  Frontier gc_;
  std::size_t free_count_ = 0;
};

template <class ScoreFn, class ValidCountFn>
std::optional<std::uint32_t> DieAllocator::pick_victim_scored(
    const ScoreFn& score, const ValidCountFn& valid_count,
    std::uint64_t now) const {
  std::optional<std::uint32_t> best;
  double best_score = 0.0;
  for (std::uint32_t b = 0; b < config_.blocks; ++b) {
    if (states_[b] != BlockState::kClosed) continue;
    const std::uint32_t valid = valid_count(b);
    if (valid >= config_.pages_per_block) continue;  // nothing to reclaim
    policy::GcBlockView view;
    view.block = b;
    view.valid_pages = valid;
    view.pages_per_block = config_.pages_per_block;
    view.erase_count = erase_counts_[b];
    view.last_write = last_write_[b];
    view.now = now;
    const double candidate = score(view);
    // Strict > keeps the lowest-id winner on ties (deterministic).
    if (!best.has_value() || candidate > best_score) {
      best = b;
      best_score = candidate;
    }
  }
  return best;
}

}  // namespace xlf::ftl
