#include "src/ftl/mapping.hpp"

#include "src/util/expect.hpp"

namespace xlf::ftl {

PageMap::PageMap(std::uint32_t dies, std::uint32_t blocks_per_die,
                 std::uint32_t pages_per_block, std::uint32_t logical_pages)
    : dies_(dies),
      blocks_per_die_(blocks_per_die),
      pages_per_block_(pages_per_block),
      logical_pages_(logical_pages) {
  XLF_EXPECT(dies >= 1);
  XLF_EXPECT(blocks_per_die >= 1);
  XLF_EXPECT(pages_per_block >= 1);
  const std::size_t physical =
      static_cast<std::size_t>(dies) * blocks_per_die * pages_per_block;
  XLF_EXPECT(logical_pages >= 1);
  // Strictly fewer logical than physical pages: the slack is the
  // over-provisioning GC lives off.
  XLF_EXPECT(logical_pages < physical);
  l2p_.assign(logical_pages, Ppa{});
  p2l_.assign(physical, kUnmapped);
  valid_counts_.assign(static_cast<std::size_t>(dies) * blocks_per_die, 0);
}

std::size_t PageMap::page_index(const Ppa& ppa) const {
  return (static_cast<std::size_t>(ppa.die) * blocks_per_die_ + ppa.block) *
             pages_per_block_ +
         ppa.page;
}

void PageMap::check(const Ppa& ppa) const {
  XLF_EXPECT(ppa.die < dies_);
  XLF_EXPECT(ppa.block < blocks_per_die_);
  XLF_EXPECT(ppa.page < pages_per_block_);
}

bool PageMap::mapped(Lpa lpa) const {
  XLF_EXPECT(lpa < logical_pages_);
  return l2p_[lpa].valid();
}

Ppa PageMap::lookup(Lpa lpa) const {
  XLF_EXPECT(lpa < logical_pages_);
  return l2p_[lpa];
}

Ppa PageMap::map(Lpa lpa, Ppa ppa) {
  XLF_EXPECT(lpa < logical_pages_);
  check(ppa);
  const std::size_t target = page_index(ppa);
  XLF_EXPECT(p2l_[target] == kUnmapped && "mapping onto a live page");
  const Ppa old = l2p_[lpa];
  if (old.valid()) {
    const std::size_t previous = page_index(old);
    XLF_ENSURE(p2l_[previous] == lpa);
    p2l_[previous] = kUnmapped;
    --valid_counts_[static_cast<std::size_t>(old.die) * blocks_per_die_ +
                    old.block];
  }
  l2p_[lpa] = ppa;
  p2l_[target] = lpa;
  ++valid_counts_[static_cast<std::size_t>(ppa.die) * blocks_per_die_ +
                  ppa.block];
  return old;
}

Ppa PageMap::unmap(Lpa lpa) {
  XLF_EXPECT(lpa < logical_pages_);
  const Ppa old = l2p_[lpa];
  XLF_EXPECT(old.valid() && "trimming an unmapped LPA");
  const std::size_t previous = page_index(old);
  XLF_ENSURE(p2l_[previous] == lpa);
  p2l_[previous] = kUnmapped;
  --valid_counts_[static_cast<std::size_t>(old.die) * blocks_per_die_ +
                  old.block];
  l2p_[lpa] = Ppa{};
  return old;
}

bool PageMap::valid(Ppa ppa) const {
  check(ppa);
  return p2l_[page_index(ppa)] != kUnmapped;
}

Lpa PageMap::lpa_at(Ppa ppa) const {
  check(ppa);
  return p2l_[page_index(ppa)];
}

std::uint32_t PageMap::valid_count(std::uint32_t die,
                                   std::uint32_t block) const {
  XLF_EXPECT(die < dies_);
  XLF_EXPECT(block < blocks_per_die_);
  return valid_counts_[static_cast<std::size_t>(die) * blocks_per_die_ + block];
}

void PageMap::on_erase(std::uint32_t die, std::uint32_t block) {
  XLF_EXPECT(die < dies_);
  XLF_EXPECT(block < blocks_per_die_);
  XLF_EXPECT(valid_count(die, block) == 0 &&
             "erasing a block with live data (relocate first)");
  const std::size_t base =
      (static_cast<std::size_t>(die) * blocks_per_die_ + block) *
      pages_per_block_;
  for (std::uint32_t p = 0; p < pages_per_block_; ++p) {
    p2l_[base + p] = kUnmapped;
  }
}

}  // namespace xlf::ftl
