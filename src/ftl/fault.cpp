#include "src/ftl/fault.hpp"

#include <string>

#include "src/util/expect.hpp"

namespace xlf::ftl {
namespace {

const char* point_name(FaultPoint point) {
  switch (point) {
    case FaultPoint::kNone:
      return "none";
    case FaultPoint::kBeforeHostProgram:
      return "before-host-program";
    case FaultPoint::kMidHostProgram:
      return "mid-host-program";
    case FaultPoint::kBeforeGcProgram:
      return "before-gc-program";
    case FaultPoint::kMidGcProgram:
      return "mid-gc-program";
    case FaultPoint::kBeforeErase:
      return "before-erase";
    case FaultPoint::kAfterErase:
      return "after-erase";
    case FaultPoint::kMidFlush:
      return "mid-flush";
  }
  return "unknown";
}

}  // namespace

PowerLoss::PowerLoss(FaultPoint p, std::uint64_t e)
    : std::runtime_error(std::string("power loss at event ") +
                         std::to_string(e) + " (" + point_name(p) + ")"),
      point(p),
      event(e) {}

void FaultInjector::arm_at_event(std::uint64_t event) {
  kill_event_ = event;
  kill_point_ = FaultPoint::kNone;
  kill_occurrence_ = 0;
  point_seen_ = 0;
  fired_ = false;
}

void FaultInjector::arm_at_point(FaultPoint point, std::uint64_t occurrence) {
  XLF_EXPECT(point != FaultPoint::kNone);
  XLF_EXPECT(occurrence >= 1);
  kill_event_ = 0;
  kill_point_ = point;
  kill_occurrence_ = occurrence;
  point_seen_ = 0;
  fired_ = false;
}

void FaultInjector::disarm() {
  kill_event_ = 0;
  kill_point_ = FaultPoint::kNone;
  kill_occurrence_ = 0;
  point_seen_ = 0;
  fired_ = false;
}

void FaultInjector::hit(FaultPoint point) {
  ++events_;
  if (fired_) return;
  if (kill_event_ != 0 && events_ == kill_event_) {
    fired_ = true;
    throw PowerLoss(point, events_);
  }
  if (kill_point_ == point && ++point_seen_ == kill_occurrence_) {
    fired_ = true;
    throw PowerLoss(point, events_);
  }
}

void FaultInjector::fail_block(std::uint32_t die, std::uint32_t block) {
  fail_.insert({die, block});
}

bool FaultInjector::should_fail(std::uint32_t die, std::uint32_t block) const {
  return fail_.count({die, block}) != 0;
}

}  // namespace xlf::ftl
