// Incrementally maintained indexes over the per-die block population,
// replacing the O(blocks) scans on the two allocation hot paths:
//
//  * VictimIndex — GC victim selection. Closed blocks are bucketed by
//    valid-page count; each bucket is a lazy binary min-heap ordered by
//    the policy's within-bucket tie-break key. For "greedy" the key is
//    the block id alone (every block in a bucket scores the same, and
//    the oracle breaks ties toward the lowest id). For "cost-benefit"
//    the key is (last_write, id): for a fixed valid count the score is
//    non-increasing in last_write, so the minimal key is the maximal
//    score with the lowest id among score ties. A pick scans the
//    pages_per_block bucket heads, scores each through the real policy
//    object (bit-identical floating point), and keeps the argmax with
//    the oracle's strict-> / lowest-id rule — so the result matches
//    DieAllocator::pick_victim_scored byte for byte. Custom GC
//    policies (GcIndexKind::kNone) fall back to the linear oracle.
//
//  * FreeBlockIndex — free-block preference. The wear policy's
//    free_block_score is a pure function of the erase count, so a
//    score snapshot taken when the block turns free stays valid until
//    the block leaves the free state. A lazy max-heap over
//    (score, lowest id) replicates the linear scan for every wear
//    policy, built-in or custom.
//
// Both indexes use lazy deletion: an update pushes a fresh entry and
// bumps the block's version; stale entries are discarded when they
// surface at a heap top. A size-triggered compaction bounds memory at
// O(blocks) amortized. Determinism: entries order by (key, id) only —
// no pointers, no hashing — so picks are bit-reproducible.
//
// Key invariant (cost-benefit): pick-time `now` must be >= every
// stored last_write stamp. Ftl's logical clock is monotonic and
// stamps copy it, so the within-bucket score ordering "older stamp =
// higher score" never inverts under the age clamp in the policy.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace xlf::ftl {

// Which built-in GC policy the victim index mirrors. kNone disables
// the index (unknown/custom policies use the linear oracle).
enum class GcIndexKind { kNone, kGreedy, kCostBenefit };

// Registry-name resolution ("greedy" / "cost-benefit"; anything else,
// including custom registrations, maps to kNone).
GcIndexKind gc_index_kind_for(std::string_view gc_policy_name);

class VictimIndex {
 public:
  void reset(GcIndexKind kind, std::uint32_t blocks,
             std::uint32_t pages_per_block);

  GcIndexKind kind() const { return kind_; }
  bool enabled() const { return kind_ != GcIndexKind::kNone; }

  // Record the current (valid count, last_write stamp) of a closed
  // block. Any earlier entry for the block becomes stale. Blocks with
  // valid == pages_per_block are tracked but not stored (nothing to
  // reclaim — the oracle skips them too).
  void update(std::uint32_t block, std::uint32_t valid,
              std::uint64_t last_write);

  // Drop the block from the index (erase, retire, or reopen).
  void remove(std::uint32_t block);

  // Call visit(block, valid) on the minimal-key live entry of every
  // non-empty bucket, in ascending valid-count order. Purges stale
  // entries as they surface (hence the mutable heaps).
  // xlf: hot — the whole point of the index is an allocation-free pick.
  template <class Visit>
  void for_each_head(Visit&& visit) const {
    for (std::uint32_t v = 0; v < buckets_.size(); ++v) {
      purge(v);
      if (!buckets_[v].empty()) visit(buckets_[v].front().block, v);
    }
  }

 private:
  struct Entry {
    std::uint64_t key = 0;  // last_write for cost-benefit, 0 for greedy
    std::uint32_t block = 0;
    std::uint32_t version = 0;
  };
  static constexpr std::uint32_t kNoBucket = 0xFFFFFFFFu;

  bool live(const Entry& entry, std::uint32_t bucket) const {
    return entry.version == version_[entry.block] &&
           bucket_of_[entry.block] == bucket;
  }
  void purge(std::uint32_t bucket) const;
  void compact();

  GcIndexKind kind_ = GcIndexKind::kNone;
  std::uint32_t blocks_ = 0;
  std::uint32_t pages_per_block_ = 0;
  // buckets_[v] holds candidates whose latest valid count is v
  // (v < pages_per_block); min-heap on (key, block id).
  mutable std::vector<std::vector<Entry>> buckets_;  // xlf: arena(grows)
  std::vector<std::uint32_t> version_;    // latest pushed version per block
  std::vector<std::uint32_t> bucket_of_;  // bucket of the latest update
  mutable std::size_t entries_ = 0;       // live + stale, across buckets
};

class FreeBlockIndex {
 public:
  void reset(std::uint32_t blocks);

  // Record the block as free with the given preference score (the
  // wear policy's free_block_score at its current erase count).
  void push(std::uint32_t block, double score);

  // The block left the free state (opened, or restored non-free).
  void remove(std::uint32_t block);

  // Best live entry: highest score, lowest block id on ties — the
  // same rule as the linear scan it replaces. Returns kNone (no live
  // entry) only when no block is free.
  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;
  std::uint32_t best() const;

 private:
  struct Entry {
    double score = 0.0;
    std::uint32_t block = 0;
    std::uint32_t version = 0;
  };

  bool live(const Entry& entry) const {
    return entry.version == version_[entry.block] && is_free_[entry.block] != 0;
  }
  void compact();

  // xlf: arena(grows)
  mutable std::vector<Entry> heap_;  // max-heap on (score, -block id)
  std::vector<std::uint32_t> version_;
  std::vector<std::uint8_t> is_free_;  // latest push still stands
};

}  // namespace xlf::ftl
