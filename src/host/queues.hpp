// Multi-queue host interface: N independent submission/completion
// queue pairs in front of the SSD, with a pluggable arbitration
// policy deciding which queue issues next whenever the device has a
// free command slot.
//
// The structure mirrors NVMe's submission/completion model scaled to
// the simulator: the host submits Commands onto per-queue FIFOs on
// its own clock; the driver (sim::SsdSimulator) asks `arbitrate()`
// for the next queue while its outstanding count is below the device
// queue depth, pops the head command, executes it against the FTL,
// and posts a Completion back through `complete()`. Per-queue issue
// counters, flush barriers and latency statistics live here — the
// ArbitrationPolicy itself stays immutable and shareable, receiving
// all mutable state through the per-decision context
// (policy::ArbitrationContext), exactly like the other policy-plane
// interfaces.
//
// Single-threaded like the simulator that drives it; determinism
// comes from FIFO queues, the stable arbitration tie-break contract,
// and nothing else.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/host/command.hpp"
#include "src/policy/policy.hpp"
#include "src/util/stats.hpp"

namespace xlf::host {

struct HostConfig {
  // Independent submission/completion queue pairs.
  std::size_t queues = 1;
  // policy::ArbitrationPolicy registry name ("round-robin",
  // "weighted", or any downstream registration).
  std::string arbitration = "round-robin";
  // Arbitration weight per queue, queue 0 first. Shorter lists pad
  // with 1.0 (so one template serves several queue counts); longer
  // lists are a configuration error. Empty = equal weights.
  std::vector<double> queue_weights;
  // Retain Completion entries for drain(). Off by default: a driver
  // that only reads the aggregated QueueStats (the simulator) must
  // not accumulate O(commands) of ring memory per run.
  bool record_completions = false;
};

// Per-queue service statistics, filled as completions post.
struct QueueStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t trims = 0;
  std::uint64_t flushes = 0;
  // Submission -> completion, seconds, per command (not per page).
  RunningStats read_latency;
  RunningStats write_latency;

  std::uint64_t commands() const { return reads + writes + trims + flushes; }
};

class HostInterface {
 public:
  explicit HostInterface(const HostConfig& config);

  std::size_t queues() const { return states_.size(); }
  double weight(std::size_t q) const;

  // --- submission side ------------------------------------------------
  // Enqueue onto the command's own queue (Command::queue must be in
  // range) at host time `arrival`.
  void submit(const Command& command, Seconds arrival);
  // Any command submitted and not yet issued?
  bool pending() const;
  std::size_t backlog(std::size_t q) const;

  // --- arbitration / issue -------------------------------------------
  // The queue that should issue next, per the arbitration policy;
  // nullopt when no queue is eligible (all empty or flush-blocked).
  std::optional<std::uint32_t> arbitrate() const;
  // Pop the head command of queue `q` (with its arrival stamp) and
  // charge the issue to the queue's fairness counter.
  std::pair<Command, Seconds> pop(std::uint32_t q);

  // Flush barrier: while blocked, a queue's backlog is ineligible
  // (commands behind an in-flight flush wait for it), but submissions
  // still land.
  void block(std::uint32_t q);
  void unblock(std::uint32_t q);
  bool blocked(std::uint32_t q) const;

  // Latest completion time scheduled for any command issued from `q`
  // — the instant a flush issued now must wait for.
  Seconds last_scheduled_completion(std::uint32_t q) const;

  // --- completion side ------------------------------------------------
  // Record that a command issued from `q` will complete at
  // `completion` (keeps the flush horizon current).
  void note_scheduled_completion(std::uint32_t q, Seconds completion);
  // Post a completion-queue entry: fold it into the queue's stats
  // and, under record_completions, retain it for drain().
  void complete(const Completion& entry);
  // Drain queue `q`'s retained completion entries (moves them out;
  // always empty unless record_completions is set).
  std::vector<Completion> drain(std::uint32_t q);

  const QueueStats& stats(std::size_t q) const;
  // Copy of all per-queue statistics, queue 0 first.
  std::vector<QueueStats> all_stats() const;

 private:
  static constexpr std::uint32_t kNilSlot = 0xFFFFFFFFu;

  // One arena slot: a pending command, its arrival stamp, and the
  // intrusive link that threads it into the FIFO (while queued) or
  // the free list (while recycled).
  struct SubmissionSlot {
    Command command;
    Seconds arrival{0.0};
    std::uint32_t next = kNilSlot;
  };

  struct QueueState {
    // Per-queue submission arena: slots slab-allocate once and then
    // recycle through the free list, so the steady-state submit/pop
    // cycle touches no allocator (the deque this replaces paid node
    // churn on every command — BM_HostSubmissionPath is the guard).
    std::vector<SubmissionSlot> slots;  // xlf: arena(grows)
    std::uint32_t free_head = kNilSlot;  // recycled slots
    std::uint32_t head = kNilSlot;       // FIFO front (next pop)
    std::uint32_t tail = kNilSlot;
    std::size_t backlog = 0;
    std::vector<Completion> completion;
    std::uint64_t issued = 0;
    double weight = 1.0;
    bool blocked = false;
    Seconds last_completion{0.0};
    QueueStats stats;
  };

  // Built-in arbitration policies devirtualized by registry name: the
  // once-per-issued-command pick runs the shared inline scan from
  // policy/arbitration_impl.hpp instead of the virtual call. kCustom
  // routes through the registry-resolved policy object.
  enum class BuiltinArb { kCustom, kRoundRobin, kWeighted };

  const QueueState& state(std::size_t q) const;
  static std::uint32_t acquire_slot(QueueState& s);

  std::shared_ptr<const policy::ArbitrationPolicy> arbitration_;
  BuiltinArb builtin_arb_ = BuiltinArb::kCustom;
  std::vector<QueueState> states_;
  bool record_completions_;
  // == queues() before the first issue (the round-robin start cue).
  std::uint32_t last_queue_;
  // Scratch for arbitrate()'s per-decision snapshot — reused so the
  // once-per-issued-command hot path never allocates. (The interface
  // is single-threaded, like the simulator that drives it.)
  mutable std::vector<policy::QueueView> views_;
};

}  // namespace xlf::host
