// The NVMe-style host command set (xlf::host).
//
// This is the boundary real SSD stacks expose: the host describes its
// intent as commands — read, write, trim (deallocate), flush
// (durability barrier) — tagged with the submission queue and tenant
// they belong to, and the device decides when each queue gets to
// issue (src/host/queues.hpp + policy::ArbitrationPolicy). Commands
// address the FTL's logical page space in (LBA, length) extents; the
// driver expands an extent into per-page FTL operations and completes
// the command when the last page lands.
//
// Replaces the flat std::vector<HostRequest> edge of the simulator:
// multi-tenant, QoS and trim/retention scenarios need queues and a
// command vocabulary, not a single anonymous request stream.
#pragma once

#include <cstdint>
#include <string>

#include "src/ftl/mapping.hpp"
#include "src/util/units.hpp"

namespace xlf::host {

enum class CmdType : std::uint8_t { kRead, kWrite, kTrim, kFlush };

inline const char* to_string(CmdType type) {
  switch (type) {
    case CmdType::kRead: return "read";
    case CmdType::kWrite: return "write";
    case CmdType::kTrim: return "trim";
    case CmdType::kFlush: return "flush";
  }
  return "?";
}

// One host command as it enters a submission queue.
struct Command {
  CmdType type = CmdType::kRead;
  // First logical page of the extent; ignored by kFlush.
  ftl::Lpa lba = 0;
  // Extent length in logical pages (>= 1); ignored by kFlush.
  std::uint32_t length = 1;
  // Submission queue this command is enqueued on.
  std::uint16_t queue = 0;
  // Free-form stream tag (multi-tenant workloads stamp the tenant
  // index; single-stream conversions leave it 0).
  std::uint16_t tenant = 0;
  // Inter-arrival time before this command enters its queue, relative
  // to the previous command of the *merged* host stream (the open-loop
  // clock the simulator schedules arrivals on).
  Seconds gap{0.0};
};

// One completion-queue entry: the command echoed back with its
// timing. `ok` is false when any page of the extent decoded
// uncorrectably.
struct Completion {
  CmdType type = CmdType::kRead;
  ftl::Lpa lba = 0;
  std::uint32_t length = 1;
  std::uint16_t queue = 0;
  std::uint16_t tenant = 0;
  Seconds submitted{0.0};
  Seconds completed{0.0};
  bool ok = true;

  Seconds latency() const { return completed - submitted; }
};

}  // namespace xlf::host
