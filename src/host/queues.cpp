#include "src/host/queues.hpp"

#include <algorithm>
#include <sstream>

#include "src/policy/arbitration_impl.hpp"
#include "src/policy/registry.hpp"
#include "src/util/expect.hpp"

namespace xlf::host {

HostInterface::HostInterface(const HostConfig& config)
    : record_completions_(config.record_completions),
      last_queue_(static_cast<std::uint32_t>(config.queues)) {
  XLF_EXPECT_MSG(config.queues >= 1,
                 "host interface needs at least one submission queue");
  XLF_EXPECT_MSG(config.queue_weights.size() <= config.queues, [&] {
    std::ostringstream msg;
    msg << "queue_weights has " << config.queue_weights.size()
        << " entries for " << config.queues
        << " queues; extra weights have no queue to apply to";
    return msg.str();
  }());
  arbitration_ =
      policy::PolicyRegistry<policy::ArbitrationPolicy>::instance()
          .make_shared(config.arbitration);
  // The registry call above stays authoritative (name validation,
  // custom registrations); the enum only short-circuits the per-pick
  // virtual dispatch for the two built-ins.
  if (config.arbitration == "round-robin") {
    builtin_arb_ = BuiltinArb::kRoundRobin;
  } else if (config.arbitration == "weighted") {
    builtin_arb_ = BuiltinArb::kWeighted;
  }
  states_.resize(config.queues);
  views_.resize(config.queues);
  for (std::size_t q = 0; q < config.queue_weights.size(); ++q) {
    XLF_EXPECT_MSG(config.queue_weights[q] > 0.0, [&] {
      std::ostringstream msg;
      msg << "queue_weights[" << q << "]=" << config.queue_weights[q]
          << " must be > 0 (weights are issue-share proportions)";
      return msg.str();
    }());
    states_[q].weight = config.queue_weights[q];
  }
}

const HostInterface::QueueState& HostInterface::state(std::size_t q) const {
  XLF_EXPECT(q < states_.size());
  return states_[q];
}

double HostInterface::weight(std::size_t q) const { return state(q).weight; }

// xlf: hot — per-command path; slots recycle through the free list.
void HostInterface::submit(const Command& command, Seconds arrival) {
  XLF_EXPECT_MSG(command.queue < states_.size(), [&] {
    std::ostringstream msg;
    msg << "command targets queue " << command.queue << " but only "
        << states_.size() << " queues exist";
    return msg.str();
  }());
  XLF_EXPECT(command.type == CmdType::kFlush || command.length >= 1);
  QueueState& s = states_[command.queue];
  const std::uint32_t slot = acquire_slot(s);
  SubmissionSlot& node = s.slots[slot];
  node.command = command;
  node.arrival = arrival;
  node.next = kNilSlot;
  if (s.tail == kNilSlot) {
    s.head = slot;
  } else {
    s.slots[s.tail].next = slot;
  }
  s.tail = slot;
  ++s.backlog;
}

std::uint32_t HostInterface::acquire_slot(QueueState& s) {
  if (s.free_head != kNilSlot) {
    const std::uint32_t slot = s.free_head;
    s.free_head = s.slots[slot].next;
    return slot;
  }
  // Arena growth: the slot pool only grows while the backlog sets a
  // new high-water mark; at steady state every submit recycles.
  s.slots.emplace_back();  // xlf-lint: allow(hot-alloc)
  return static_cast<std::uint32_t>(s.slots.size() - 1);
}

bool HostInterface::pending() const {
  for (const QueueState& s : states_) {
    if (s.backlog != 0) return true;
  }
  return false;
}

std::size_t HostInterface::backlog(std::size_t q) const {
  return state(q).backlog;
}

// xlf: hot — runs once per issued command; views_ is preallocated.
std::optional<std::uint32_t> HostInterface::arbitrate() const {
  bool any = false;
  for (std::size_t q = 0; q < states_.size(); ++q) {
    views_[q].id = static_cast<std::uint32_t>(q);
    views_[q].backlog = states_[q].backlog;
    views_[q].issued = states_[q].issued;
    views_[q].weight = states_[q].weight;
    views_[q].eligible = !states_[q].blocked && states_[q].backlog != 0;
    any = any || views_[q].eligible;
  }
  if (!any) return std::nullopt;
  std::uint32_t pick = 0;
  switch (builtin_arb_) {
    case BuiltinArb::kRoundRobin:
      pick = policy::detail::round_robin_pick(views_.data(), views_.size(),
                                              last_queue_);
      break;
    case BuiltinArb::kWeighted:
      pick = policy::detail::weighted_pick(views_.data(), views_.size());
      break;
    case BuiltinArb::kCustom: {
      policy::ArbitrationContext ctx;
      ctx.queues = views_.data();
      ctx.queue_count = views_.size();
      ctx.last_queue = last_queue_;
      pick = arbitration_->pick(ctx);
      break;
    }
  }
  // A policy that picks an out-of-range or ineligible queue would
  // stall or corrupt the issue loop; fail loudly instead.
  XLF_ENSURE(pick < views_.size() && views_[pick].eligible);
  return pick;
}

// xlf: hot — intrusive-list unlink, no container operations at all.
std::pair<Command, Seconds> HostInterface::pop(std::uint32_t q) {
  XLF_EXPECT(q < states_.size());
  QueueState& s = states_[q];
  XLF_EXPECT(!s.blocked && s.backlog != 0);
  SubmissionSlot& node = s.slots[s.head];
  std::pair<Command, Seconds> head{node.command, node.arrival};
  const std::uint32_t slot = s.head;
  s.head = node.next;
  if (s.head == kNilSlot) s.tail = kNilSlot;
  node.next = s.free_head;
  s.free_head = slot;
  --s.backlog;
  ++s.issued;
  last_queue_ = q;
  return head;
}

void HostInterface::block(std::uint32_t q) {
  XLF_EXPECT(q < states_.size());
  states_[q].blocked = true;
}

void HostInterface::unblock(std::uint32_t q) {
  XLF_EXPECT(q < states_.size());
  states_[q].blocked = false;
}

bool HostInterface::blocked(std::uint32_t q) const { return state(q).blocked; }

Seconds HostInterface::last_scheduled_completion(std::uint32_t q) const {
  return state(q).last_completion;
}

void HostInterface::note_scheduled_completion(std::uint32_t q,
                                              Seconds completion) {
  XLF_EXPECT(q < states_.size());
  states_[q].last_completion =
      std::max(states_[q].last_completion, completion);
}

// xlf: ack — the host-visible acknowledgement: once the completion
// posts here the operation is promised durable (ack-order audits
// every NAND mutation reachable past this point).
void HostInterface::complete(const Completion& entry) {
  XLF_EXPECT(entry.queue < states_.size());
  QueueState& s = states_[entry.queue];
  // Trace capture only: gated off in perf runs.
  if (record_completions_) s.completion.push_back(entry);  // xlf-lint: allow(hot-alloc)
  const double latency = entry.latency().value();
  switch (entry.type) {
    case CmdType::kRead:
      ++s.stats.reads;
      s.stats.read_latency.add(latency);
      break;
    case CmdType::kWrite:
      ++s.stats.writes;
      s.stats.write_latency.add(latency);
      break;
    case CmdType::kTrim:
      ++s.stats.trims;
      break;
    case CmdType::kFlush:
      ++s.stats.flushes;
      break;
  }
}

std::vector<Completion> HostInterface::drain(std::uint32_t q) {
  XLF_EXPECT(q < states_.size());
  std::vector<Completion> out = std::move(states_[q].completion);
  states_[q].completion.clear();
  return out;
}

const QueueStats& HostInterface::stats(std::size_t q) const {
  return state(q).stats;
}

std::vector<QueueStats> HostInterface::all_stats() const {
  std::vector<QueueStats> out;
  out.reserve(states_.size());
  for (const QueueState& s : states_) out.push_back(s.stats);
  return out;
}

}  // namespace xlf::host
