#include "src/policy/registry.hpp"

#include "src/policy/builtin_anchors.hpp"

namespace xlf::policy::detail {

// Referencing one symbol per built-in TU forces the linker to pull
// those archive members in, which runs their namespace-scope
// Registration objects at static-initialisation time. The calls are
// no-ops; only the references matter.
void require_builtin_policies() {
  builtin_tuning_anchor();
  builtin_gc_anchor();
  builtin_wear_anchor();
  builtin_refresh_anchor();
  builtin_arbitration_anchor();
  retention_refresh_anchor();
}

}  // namespace xlf::policy::detail
