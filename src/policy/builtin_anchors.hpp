// Link anchors for the built-in policy translation units (see
// registry.hpp's static-archive caveat). One no-op function per TU;
// registry.cpp references them all so using any registry links every
// built-in.
#pragma once

namespace xlf::policy::detail {

void builtin_tuning_anchor();
void builtin_gc_anchor();
void builtin_wear_anchor();
void builtin_refresh_anchor();
void builtin_arbitration_anchor();
void retention_refresh_anchor();

}  // namespace xlf::policy::detail
