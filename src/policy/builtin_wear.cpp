// Built-in wear-leveling policies:
//  * none    — free blocks picked by id, no cold-data swaps;
//  * dynamic — free blocks picked by lowest erase count;
//  * static  — dynamic, plus a cold-block swap whenever the die's
//    erase spread (max - min) exceeds the configured tolerance.
#include "src/policy/policy.hpp"
#include "src/policy/registry.hpp"

namespace xlf::policy {
namespace {

class NoWearLeveling final : public WearPolicy {
 public:
  // All free blocks equal: the lowest-id tiebreak picks by id.
  double free_block_score(std::uint32_t /*erase_count*/) const override {
    return 0.0;
  }
  bool swaps() const override { return false; }
  bool should_swap(const WearContext& /*ctx*/) const override { return false; }
};

class DynamicWearLeveling final : public WearPolicy {
 public:
  // Prefer the least-erased free block.
  double free_block_score(std::uint32_t erase_count) const override {
    return -static_cast<double>(erase_count);
  }
  bool swaps() const override { return false; }
  bool should_swap(const WearContext& /*ctx*/) const override { return false; }
};

class StaticWearLeveling final : public WearPolicy {
 public:
  double free_block_score(std::uint32_t erase_count) const override {
    return -static_cast<double>(erase_count);
  }
  bool swaps() const override { return true; }
  // Evict the coldest block once the spread outgrows the tolerance:
  // pinned-cold data is what dynamic leveling alone cannot reach.
  bool should_swap(const WearContext& ctx) const override {
    return ctx.max_erase_count - ctx.min_erase_count > ctx.configured_spread;
  }
};

const Registration<WearPolicy, NoWearLeveling> kNone("none");
const Registration<WearPolicy, DynamicWearLeveling> kDynamic("dynamic");
const Registration<WearPolicy, StaticWearLeveling> kStatic("static");

}  // namespace

namespace detail {
void builtin_wear_anchor() {}
}  // namespace detail

}  // namespace xlf::policy
