// String-keyed policy registry with self-registering factories.
//
// Each strategy interface (TuningPolicy, GcPolicy, WearPolicy,
// RefreshPolicy) has one process-wide registry. A policy registers
// itself from its own translation unit:
//
//   namespace {
//   class MyRefresh final : public policy::RefreshPolicy { ... };
//   const policy::Registration<policy::RefreshPolicy, MyRefresh>
//       kRegisterMyRefresh("my-refresh");
//   }  // namespace
//
// and is from then on constructible by name — from FtlConfig, a
// ControllerConfig, or a JSON experiment spec — without touching any
// core file. Duplicate names throw at registration; unknown names
// throw at lookup with the list of registered names in the message.
//
// Static-archive caveat: the linker only pulls an archive member that
// some referenced symbol lives in, so a registration-only TU inside
// libxlf_policy.a would silently vanish. instance() therefore calls
// require_builtin_policies() (registry.cpp), which references one
// anchor symbol per built-in TU — using any registry guarantees the
// built-ins are linked and registered. TUs outside the archive (tests,
// tools, downstream applications) are handed to the linker as plain
// object files and need no anchor.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace xlf::policy {

class TuningPolicy;
class GcPolicy;
class WearPolicy;
class RefreshPolicy;
class ArbitrationPolicy;

// Human-readable registry label used in error messages ("unknown gc
// policy 'foo'; available: ...").
template <class Interface>
struct PolicyKindName;
template <>
struct PolicyKindName<TuningPolicy> {
  static constexpr const char* value = "tuning";
};
template <>
struct PolicyKindName<GcPolicy> {
  static constexpr const char* value = "gc";
};
template <>
struct PolicyKindName<WearPolicy> {
  static constexpr const char* value = "wear";
};
template <>
struct PolicyKindName<RefreshPolicy> {
  static constexpr const char* value = "refresh";
};
template <>
struct PolicyKindName<ArbitrationPolicy> {
  static constexpr const char* value = "arbitration";
};

namespace detail {
// Defined in registry.cpp; references every built-in policy TU so the
// archive members cannot be dropped (see file comment).
void require_builtin_policies();
}  // namespace detail

template <class Interface>
class PolicyRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Interface>()>;

  static PolicyRegistry& instance() {
    detail::require_builtin_policies();
    static PolicyRegistry registry;
    return registry;
  }

  // Registers `factory` under `name`; a second registration of the
  // same name is a programming error and throws.
  // xlf: cold — registration runs at startup, before any command.
  void add(const std::string& name, Factory factory) {
    if (name.empty()) {
      throw std::invalid_argument(std::string(kind()) +
                                  " policy name must not be empty");
    }
    if (!factory) {
      throw std::invalid_argument(std::string(kind()) + " policy '" + name +
                                  "' registered without a factory");
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!factories_.emplace(name, std::move(factory)).second) {
      throw std::invalid_argument("duplicate " + std::string(kind()) +
                                  " policy registration: '" + name + "'");
    }
  }

  bool contains(const std::string& name) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return factories_.count(name) != 0;
  }

  // Registered names, sorted (std::map order).
  std::vector<std::string> names() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto& [name, factory] : factories_) out.push_back(name);
    return out;
  }

  // Constructs the policy registered under `name`; throws listing the
  // registered names when it is unknown.
  std::unique_ptr<Interface> make(const std::string& name) const {
    Factory factory;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      const auto it = factories_.find(name);
      if (it == factories_.end()) {
        std::string message = "unknown ";
        message += kind();
        message += " policy '";
        message += name;
        message += "'; available:";
        for (const auto& [known, f] : factories_) {
          message += " ";
          message += known;
        }
        throw std::invalid_argument(message);
      }
      factory = it->second;
    }
    // Invoked outside the lock so a factory may itself consult the
    // registry.
    return factory();
  }

  // Shared-ownership variant: policies are immutable, so one instance
  // is safely shared across dies and threads.
  std::shared_ptr<const Interface> make_shared(const std::string& name) const {
    return std::shared_ptr<const Interface>(make(name));
  }

 private:
  static constexpr const char* kind() {
    return PolicyKindName<Interface>::value;
  }

  mutable std::mutex mutex_;
  std::map<std::string, Factory> factories_;
};

// Namespace-scope registrar: constructing one registers `Impl` (which
// must be default-constructible) under `name`. Intended for const
// objects in anonymous namespaces of the policy's own TU.
template <class Interface, class Impl>
class Registration {
 public:
  explicit Registration(const char* name) {
    PolicyRegistry<Interface>::instance().add(
        name, [] { return std::make_unique<Impl>(); });
  }
};

}  // namespace xlf::policy
