// Built-in tuning policies — the three reliability-manager behaviours
// of paper Section 3, now as registry entries: `static` holds the
// configured t, `model_based` derives t from the wear counter and the
// RBER aging law, `feedback` derives it from the EWMA of observed
// corrected-bit density (self-adaptive ECC).
#include <algorithm>

#include "src/policy/policy.hpp"
#include "src/policy/registry.hpp"
#include "src/util/expect.hpp"

namespace xlf::policy {
namespace {

// Hold whatever t is configured.
class StaticTuning final : public TuningPolicy {
 public:
  unsigned recommend(const TuningContext& ctx) const override {
    return ctx.fallback_t;
  }
};

// t from the device's known wear state and RBER law (Eq. (1) closes
// the loop inside the host's t_for_rber).
class ModelBasedTuning final : public TuningPolicy {
 public:
  unsigned recommend(const TuningContext& ctx) const override {
    XLF_EXPECT(ctx.law != nullptr && ctx.host != nullptr);
    return ctx.host->t_for_rber(ctx.law->rber(ctx.algo, ctx.pe_cycles));
  }
};

// t from live corrected-bit feedback out of the ECC unit.
class FeedbackTuning final : public TuningPolicy {
 public:
  unsigned recommend(const TuningContext& ctx) const override {
    XLF_EXPECT(ctx.host != nullptr);
    if (!ctx.estimate_ready) return ctx.fallback_t;
    // Never trust an estimate of exactly zero: with no observed
    // errors the best statement is "below one error per observed
    // window"; fall back to the floor capability.
    if (ctx.estimated_rber <= 0.0) return ctx.budget.t_min;
    return ctx.host->t_for_rber(
        std::min(0.5, ctx.estimated_rber * ctx.safety_factor));
  }
};

const Registration<TuningPolicy, StaticTuning> kStatic("static");
const Registration<TuningPolicy, ModelBasedTuning> kModelBased("model_based");
const Registration<TuningPolicy, FeedbackTuning> kFeedback("feedback");

}  // namespace

namespace detail {
void builtin_tuning_anchor() {}
}  // namespace detail

}  // namespace xlf::policy
