// Built-in GC victim-selection policies, scoring exactly what the
// FTL's former hardwired enum computed:
//  * greedy — fewest valid pages (cheapest copy-out now);
//  * cost-benefit — age * (1-u) / (2u), which lets a slightly fuller
//    but long-cold block win over a just-written sparse one
//    (Rosenblum & Ousterhout's LFS cleaner formula).
#include <algorithm>

#include "src/policy/policy.hpp"
#include "src/policy/registry.hpp"

namespace xlf::policy {
namespace {

class GreedyGc final : public GcPolicy {
 public:
  double score(const GcBlockView& view) const override {
    // Fewest valid pages wins; score rises as valid drops.
    return static_cast<double>(view.pages_per_block - view.valid_pages);
  }
};

class CostBenefitGc final : public GcPolicy {
 public:
  double score(const GcBlockView& view) const override {
    const double u =
        static_cast<double>(view.valid_pages) / view.pages_per_block;
    const double age = static_cast<double>(
                           view.now - std::min(view.now, view.last_write)) +
                       1.0;
    // benefit/cost = free-space gain * age over twice the copy cost;
    // u == 0 degenerates to "free block's worth per unit cost",
    // handled by the u floor.
    return age * (1.0 - u) / (2.0 * std::max(u, 1e-9));
  }
};

const Registration<GcPolicy, GreedyGc> kGreedy("greedy");
const Registration<GcPolicy, CostBenefitGc> kCostBenefit("cost-benefit");

}  // namespace

namespace detail {
void builtin_gc_anchor() {}
}  // namespace detail

}  // namespace xlf::policy
