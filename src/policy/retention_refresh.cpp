// Retention-aware refresh: preventively re-program blocks whose
// predicted post-retention RBER approaches the correction-capability
// budget their pages were written with.
//
// Motivation (Cai et al., "Data Retention in MLC NAND Flash Memory":
// characterization/optimization/recovery of retention errors; and the
// mitigation taxonomy of Cai et al.'s SSD error survey): retention
// charge loss is the dominant error source between writes, it grows
// with both storage time and P/E wear, and periodically re-programming
// cold data resets it. A model-based tuner assigns each block the
// *minimal* t for its wear at program time, so any retention growth
// eats directly into the correction margin — exactly the gap this
// policy closes.
//
// First-order prediction model: the instantaneous RBER law gives the
// block's error rate right after programming; retention multiplies it
// by (1 + strength * hours/1000h * wear_accel), the linear head of the
// time- and wear-dependent growth the characterisation papers report
// (wear_accel rises with P/E because aged oxide leaks faster). The
// block is refreshed when the minimal t meeting the UBER target at
// that stressed RBER reaches or exceeds the t budget its pages carry —
// i.e. when predicted retention would consume the entire margin.
//
// This TU is the extension-point proof for the policy plane: it
// registers itself under "retention_aware" and no controller/ftl/
// explore file names it.
#include <optional>

#include "src/bch/code_params.hpp"
#include "src/policy/policy.hpp"
#include "src/policy/registry.hpp"
#include "src/util/expect.hpp"

namespace xlf::policy {
namespace {

class RetentionAwareRefresh final : public RefreshPolicy {
 public:
  // RBER growth per 1000 hours of retention at the knee-cycle wear
  // point; calibrated so mid-life blocks survive the default 1000 h
  // horizon untouched while end-of-life blocks trip the refresh.
  static constexpr double kStrengthPer1kHours = 4.0;

  bool should_refresh(const RefreshContext& ctx) const override {
    XLF_EXPECT(ctx.law != nullptr);
    if (ctx.page_t == 0) return false;  // never programmed
    if (ctx.retention_hours <= 0.0) return false;

    const double fresh_rber = ctx.law->rber(ctx.algo, ctx.pe_cycles);
    // Wear acceleration: leakage grows past the aging law's knee the
    // same way its RBER term does, normalised to 1 at the knee.
    const double wear_accel = ctx.pe_cycles / ctx.law->knee_cycles;
    const double stressed_rber =
        fresh_rber * (1.0 + kStrengthPer1kHours *
                                (ctx.retention_hours / 1000.0) * wear_accel);

    const std::optional<unsigned> required = bch::min_t_for_uber(
        stressed_rber, ctx.budget.uber_target, ctx.budget.k, ctx.budget.m,
        ctx.budget.t_min, ctx.budget.t_max);
    // No t can hold the target after retention — refresh immediately.
    if (!required.has_value()) return true;
    // Refresh when the stressed requirement outgrows the pages' t. A
    // strict compare, because a model-based tuner assigns exactly the
    // fresh requirement at program time: equality is the healthy
    // steady state, one step beyond it means retention would consume
    // the entire margin.
    return *required > ctx.page_t;
  }
};

const Registration<RefreshPolicy, RetentionAwareRefresh>
    kRetentionAware("retention_aware");

}  // namespace

namespace detail {
void retention_refresh_anchor() {}
}  // namespace detail

}  // namespace xlf::policy
