// Shared inner loops of the built-in arbitration policies.
//
// Two call sites compile these: the registry-facing policy classes in
// builtin_arbitration.cpp (the policy-plane contract, virtual
// dispatch) and the host interface's devirtualized fast path
// (src/host/queues.cpp), which recognizes the built-in registry names
// at construction and calls these directly once per issued command.
// Keeping one definition guarantees the two paths stay byte-identical
// — BM_HostSubmissionPath guards the speedup, the host-queue tests
// guard the equivalence.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

#include "src/policy/policy.hpp"

namespace xlf::policy::detail {

// Round-robin: first eligible queue scanning circularly from just
// past the last issuer (queue 0 before anything has issued).
inline std::uint32_t round_robin_pick(const QueueView* queues, std::size_t n,
                                      std::uint32_t last_queue) {
  const std::size_t start = last_queue >= n ? 0 : (last_queue + 1) % n;
  for (std::size_t step = 0; step < n; ++step) {
    const std::size_t q = (start + step) % n;
    if (queues[q].eligible) return queues[q].id;
  }
  // The contract guarantees an eligible queue; reaching here is a
  // host-interface bug.
  return queues[0].id;
}

// Weighted deficit: the eligible queue furthest behind its weighted
// issue share goes next; strict < keeps ties on the lowest id.
inline std::uint32_t weighted_pick(const QueueView* queues, std::size_t n) {
  double best = std::numeric_limits<double>::infinity();
  std::uint32_t pick = queues[0].id;
  bool found = false;
  for (std::size_t q = 0; q < n; ++q) {
    const QueueView& view = queues[q];
    if (!view.eligible) continue;
    const double share = static_cast<double>(view.issued) / view.weight;
    if (!found || share < best) {
      best = share;
      pick = view.id;
      found = true;
    }
  }
  return pick;
}

}  // namespace xlf::policy::detail
