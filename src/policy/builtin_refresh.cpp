// The default refresh policy: never scrub. Registered so "none" is a
// first-class sweepable choice next to retention_aware, and so the
// FTL's default configuration goes through the registry like every
// other policy.
#include "src/policy/policy.hpp"
#include "src/policy/registry.hpp"

namespace xlf::policy {
namespace {

class NoRefresh final : public RefreshPolicy {
 public:
  bool should_refresh(const RefreshContext& /*ctx*/) const override {
    return false;
  }
};

const Registration<RefreshPolicy, NoRefresh> kNone("none");

}  // namespace

namespace detail {
void builtin_refresh_anchor() {}
}  // namespace detail

}  // namespace xlf::policy
