// Built-in host-queue arbitration policies:
//  * round-robin — cycle through the queues starting after the one
//    that issued last; every eligible queue gets one issue slot per
//    turn of the wheel (the fairness baseline, and the degenerate
//    single-queue case of the multi-queue host interface);
//  * weighted    — deficit-style weighted sharing: issue from the
//    eligible queue with the smallest issued/weight ratio, so issue
//    opportunities converge to the configured weight proportions and
//    heavy queues drain (and complete) first under contention.
//
// The scan bodies live in arbitration_impl.hpp, shared with the host
// interface's devirtualized fast path for these two names.
#include "src/policy/arbitration_impl.hpp"
#include "src/policy/policy.hpp"
#include "src/policy/registry.hpp"

namespace xlf::policy {
namespace {

class RoundRobinArbitration final : public ArbitrationPolicy {
 public:
  std::uint32_t pick(const ArbitrationContext& ctx) const override {
    return detail::round_robin_pick(ctx.queues, ctx.queue_count,
                                    ctx.last_queue);
  }
};

class WeightedArbitration final : public ArbitrationPolicy {
 public:
  std::uint32_t pick(const ArbitrationContext& ctx) const override {
    return detail::weighted_pick(ctx.queues, ctx.queue_count);
  }
};

const Registration<ArbitrationPolicy, RoundRobinArbitration>
    kRoundRobin("round-robin");
const Registration<ArbitrationPolicy, WeightedArbitration>
    kWeighted("weighted");

}  // namespace

namespace detail {
void builtin_arbitration_anchor() {}
}  // namespace detail

}  // namespace xlf::policy
