// Built-in host-queue arbitration policies:
//  * round-robin — cycle through the queues starting after the one
//    that issued last; every eligible queue gets one issue slot per
//    turn of the wheel (the fairness baseline, and the degenerate
//    single-queue case of the multi-queue host interface);
//  * weighted    — deficit-style weighted sharing: issue from the
//    eligible queue with the smallest issued/weight ratio, so issue
//    opportunities converge to the configured weight proportions and
//    heavy queues drain (and complete) first under contention.
#include <limits>

#include "src/policy/policy.hpp"
#include "src/policy/registry.hpp"

namespace xlf::policy {
namespace {

class RoundRobinArbitration final : public ArbitrationPolicy {
 public:
  std::uint32_t pick(const ArbitrationContext& ctx) const override {
    // Start scanning just past the last issuer (or at queue 0 before
    // anything has issued) so service rotates instead of pinning on
    // the lowest id.
    const std::size_t n = ctx.queue_count;
    const std::size_t start =
        ctx.last_queue >= n ? 0 : (ctx.last_queue + 1) % n;
    for (std::size_t step = 0; step < n; ++step) {
      const std::size_t q = (start + step) % n;
      if (ctx.queues[q].eligible) return ctx.queues[q].id;
    }
    // The contract guarantees an eligible queue; reaching here is a
    // host-interface bug.
    return ctx.queues[0].id;
  }
};

class WeightedArbitration final : public ArbitrationPolicy {
 public:
  std::uint32_t pick(const ArbitrationContext& ctx) const override {
    double best = std::numeric_limits<double>::infinity();
    std::uint32_t pick = ctx.queues[0].id;
    bool found = false;
    for (std::size_t q = 0; q < ctx.queue_count; ++q) {
      const QueueView& view = ctx.queues[q];
      if (!view.eligible) continue;
      // Deficit: the queue furthest behind its weighted share of
      // issues goes next. Strict < keeps ties on the lowest id.
      const double share = static_cast<double>(view.issued) / view.weight;
      if (!found || share < best) {
        best = share;
        pick = view.id;
        found = true;
      }
    }
    return pick;
  }
};

const Registration<ArbitrationPolicy, RoundRobinArbitration>
    kRoundRobin("round-robin");
const Registration<ArbitrationPolicy, WeightedArbitration>
    kWeighted("weighted");

}  // namespace

namespace detail {
void builtin_arbitration_anchor() {}
}  // namespace detail

}  // namespace xlf::policy
