// The cross-layer control plane as pluggable strategies (xlf::policy).
//
// The paper's thesis is that reliability/performance knobs must be
// co-configured across layers; this layer is where the *decisions*
// live, decoupled from the mechanisms that execute them. Five
// strategy interfaces cover the control points of the stack:
//
//  * TuningPolicy  — per-block (algo, t) selection inside the
//    controller's reliability manager (static / model-based /
//    feedback are the built-ins);
//  * GcPolicy      — garbage-collection victim scoring inside the
//    FTL's per-die allocator (greedy / cost-benefit);
//  * WearPolicy    — free-block preference and static-swap triggering
//    for wear leveling (none / dynamic / static);
//  * RefreshPolicy — background scrub decisions: which blocks should
//    be preventively re-programmed before retention errors outgrow
//    the correction capability their pages were written with (none /
//    retention_aware);
//  * ArbitrationPolicy — which host submission queue issues its next
//    command when the device has a free slot (round-robin /
//    weighted), the QoS knob of the multi-queue host interface
//    (src/host/).
//
// Every interface is consumed through PolicyRegistry (registry.hpp),
// so a new policy lives in its own translation unit, registers itself
// under a string name, and becomes sweepable from the experiment spec
// without touching controller/ftl/explore code.
//
// Policies are immutable once constructed and must be safe to share
// across dies and threads: all mutable state (feedback estimators,
// erase counters, valid-page maps) stays with the caller and is
// passed in through the per-decision context structs.
#pragma once

#include <cstdint>

#include "src/nand/aging.hpp"

namespace xlf::policy {

// The ECC envelope a tuning/refresh decision works inside: the BCH
// code family (GF(2^m), k-bit payload) and the UBER target the paper
// holds constant while trading everything else.
struct EccBudget {
  double uber_target = 1e-11;
  unsigned m = 16;
  std::uint32_t k = 32768;
  unsigned t_min = 3;
  unsigned t_max = 65;
};

// --- TuningPolicy ----------------------------------------------------

// Services the reliability manager exposes to its tuning policy.
// t_for_rber records saturation (no t in [t_min, t_max] meets the
// target) in the manager, which is why it is a host callback and not
// a free function: policies that never consult the RBER law (e.g.
// static) must also never touch the saturation flag.
class TuningHost {
 public:
  virtual ~TuningHost() = default;
  // Minimal t meeting the UBER target at the given RBER; saturates at
  // t_max.
  virtual unsigned t_for_rber(double rber) const = 0;
};

// Everything the reliability manager knows at selection time.
struct TuningContext {
  nand::ProgramAlgorithm algo = nand::ProgramAlgorithm::kIsppSv;
  double pe_cycles = 0.0;
  // Returned by policies that decline to retune (static, feedback
  // before warm-up): the currently configured capability.
  unsigned fallback_t = 0;
  // Feedback estimator state (EWMA of corrected-bit density).
  double estimated_rber = 0.0;
  bool estimate_ready = false;
  // Multiplicative guard band on noisy feedback estimates.
  double safety_factor = 1.0;
  EccBudget budget;
  const nand::AgingLaw* law = nullptr;
  const TuningHost* host = nullptr;
};

// Per-block correction-capability selection (the t knob of the
// paper's (algo, t) schedule).
class TuningPolicy {
 public:
  virtual ~TuningPolicy() = default;
  virtual unsigned recommend(const TuningContext& ctx) const = 0;
};

// --- GcPolicy --------------------------------------------------------

// One GC candidate as the allocator presents it: a closed block with
// at least one invalid page.
struct GcBlockView {
  std::uint32_t block = 0;
  std::uint32_t valid_pages = 0;
  std::uint32_t pages_per_block = 0;
  std::uint32_t erase_count = 0;
  // Logical write stamps (the FTL's monotonic write clock).
  std::uint64_t last_write = 0;
  std::uint64_t now = 0;
};

// Victim scoring: the allocator scans its closed blocks and collects
// the highest-scoring candidate, breaking ties toward the lowest
// block id so runs stay bit-reproducible whatever the policy.
class GcPolicy {
 public:
  virtual ~GcPolicy() = default;
  virtual double score(const GcBlockView& view) const = 0;
};

// --- WearPolicy ------------------------------------------------------

// Die-level wear state a swap decision sees.
struct WearContext {
  std::uint32_t min_erase_count = 0;
  std::uint32_t max_erase_count = 0;
  // FtlConfig::static_wl_spread — the configured tolerance.
  std::uint32_t configured_spread = 0;
};

// Wear leveling split into its two decision points: which free block
// to open next (dynamic leveling), and whether the erase spread has
// grown enough to evict a cold block (static leveling).
class WearPolicy {
 public:
  virtual ~WearPolicy() = default;
  // Free-block preference: the allocator opens the highest-scoring
  // free block, lowest id on ties.
  virtual double free_block_score(std::uint32_t erase_count) const = 0;
  // Capability probe, consulted on the write hot path: building a
  // WearContext costs two O(blocks) erase-counter scans, so the FTL
  // only assembles one (and calls should_swap) when this is true.
  virtual bool swaps() const = 0;
  // True when the FTL should relocate the coldest closed block now.
  virtual bool should_swap(const WearContext& ctx) const = 0;
};

// --- RefreshPolicy ---------------------------------------------------

// One block as the scrub pass presents it.
struct RefreshContext {
  nand::ProgramAlgorithm algo = nand::ProgramAlgorithm::kIsppSv;
  // The block's own P/E counter.
  double pe_cycles = 0.0;
  // Correction capability the block's pages were written with — the t
  // budget a refresh decision guards.
  unsigned page_t = 0;
  // Retention horizon to guard against (hours at storage temperature
  // before the next scrub opportunity).
  double retention_hours = 0.0;
  EccBudget budget;
  const nand::AgingLaw* law = nullptr;
};

// Background scrub decisions: re-program a block's live data before
// predicted post-retention errors approach its pages' t budget.
class RefreshPolicy {
 public:
  virtual ~RefreshPolicy() = default;
  virtual bool should_refresh(const RefreshContext& ctx) const = 0;
};

// --- ArbitrationPolicy -----------------------------------------------

// One host submission queue as the arbiter sees it at a decision
// point. All mutable queue state (backlogs, issue counters, flush
// barriers) lives with the host interface and is passed in per
// decision, so one policy instance is shareable like the others.
struct QueueView {
  std::uint32_t id = 0;
  // Commands submitted but not yet issued to the device.
  std::size_t backlog = 0;
  // Commands this queue has issued so far this run (the fairness /
  // deficit signal weighted arbitration balances).
  std::uint64_t issued = 0;
  double weight = 1.0;
  // Issuable now: non-empty and not behind an in-flight flush barrier.
  bool eligible = false;
};

struct ArbitrationContext {
  const QueueView* queues = nullptr;
  std::size_t queue_count = 0;
  // Queue that issued most recently; == queue_count before the first
  // issue of a run.
  std::uint32_t last_queue = 0;
};

// Picks which submission queue issues next whenever the device has a
// free command slot. Called only when at least one queue is eligible,
// and must return the id of an eligible queue; ties must break toward
// the lowest id so runs stay bit-reproducible whatever the policy.
class ArbitrationPolicy {
 public:
  virtual ~ArbitrationPolicy() = default;
  virtual std::uint32_t pick(const ArbitrationContext& ctx) const = 0;
};

}  // namespace xlf::policy
