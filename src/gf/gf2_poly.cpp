#include "src/gf/gf2_poly.hpp"

#include <bit>

#include "src/util/expect.hpp"

namespace xlf::gf {
namespace {
constexpr std::size_t kBits = 64;
}

Gf2Poly::Gf2Poly(std::uint64_t bits) {
  // Single-word polynomial temporary; pooling tracked in ROADMAP.
  if (bits != 0) words_.push_back(bits);  // xlf-lint: allow(hot-alloc)
}

Gf2Poly Gf2Poly::monomial(std::size_t e) {
  Gf2Poly p;
  p.set_coeff(e, true);
  return p;
}

long long Gf2Poly::degree() const {
  for (std::size_t w = words_.size(); w-- > 0;) {
    if (words_[w] != 0) {
      return static_cast<long long>(w * kBits) + (63 - std::countl_zero(words_[w]));
    }
  }
  return -1;
}

bool Gf2Poly::is_zero() const { return degree() < 0; }

bool Gf2Poly::coeff(std::size_t i) const {
  const std::size_t w = i / kBits;
  if (w >= words_.size()) return false;
  return (words_[w] >> (i % kBits)) & 1u;
}

void Gf2Poly::set_coeff(std::size_t i, bool value) {
  const std::size_t w = i / kBits;
  if (w >= words_.size()) {
    if (!value) return;
    words_.resize(w + 1, 0);
  }
  const std::uint64_t mask = 1ull << (i % kBits);
  if (value) {
    words_[w] |= mask;
  } else {
    words_[w] &= ~mask;
  }
}

std::size_t Gf2Poly::weight() const {
  std::size_t count = 0;
  for (std::uint64_t w : words_) count += static_cast<std::size_t>(std::popcount(w));
  return count;
}

Gf2Poly Gf2Poly::operator+(const Gf2Poly& other) const {
  Gf2Poly result = *this;
  if (other.words_.size() > result.words_.size()) {
    result.words_.resize(other.words_.size(), 0);
  }
  for (std::size_t i = 0; i < other.words_.size(); ++i) {
    result.words_[i] ^= other.words_[i];
  }
  result.trim();
  return result;
}

Gf2Poly Gf2Poly::operator*(const Gf2Poly& other) const {
  if (is_zero() || other.is_zero()) return Gf2Poly();
  // Schoolbook shift-and-xor over the sparser operand's set bits; the
  // polynomials met here (generators, minimal polynomials) are at most
  // a few thousand bits, so this is never a bottleneck.
  const Gf2Poly& sparse = weight() <= other.weight() ? *this : other;
  const Gf2Poly& dense = weight() <= other.weight() ? other : *this;
  Gf2Poly result;
  const auto deg = static_cast<std::size_t>(sparse.degree());
  for (std::size_t i = 0; i <= deg; ++i) {
    if (sparse.coeff(i)) result = result + dense.shifted(i);
  }
  return result;
}

Gf2Poly::DivMod Gf2Poly::divmod(const Gf2Poly& divisor) const {
  XLF_EXPECT(!divisor.is_zero());
  DivMod out;
  out.remainder = *this;
  const long long ddeg = divisor.degree();
  for (long long rdeg = out.remainder.degree(); rdeg >= ddeg;
       rdeg = out.remainder.degree()) {
    const auto shift = static_cast<std::size_t>(rdeg - ddeg);
    out.quotient.set_coeff(shift, true);
    out.remainder = out.remainder + divisor.shifted(shift);
  }
  return out;
}

Gf2Poly Gf2Poly::operator%(const Gf2Poly& divisor) const {
  return divmod(divisor).remainder;
}

bool Gf2Poly::operator==(const Gf2Poly& other) const {
  const std::size_t n = std::max(words_.size(), other.words_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t a = i < words_.size() ? words_[i] : 0;
    const std::uint64_t b = i < other.words_.size() ? other.words_[i] : 0;
    if (a != b) return false;
  }
  return true;
}

Gf2Poly Gf2Poly::shifted(std::size_t e) const {
  if (is_zero() || e == 0) {
    Gf2Poly copy = *this;
    copy.trim();
    return copy;
  }
  const std::size_t word_shift = e / kBits;
  const std::size_t bit_shift = e % kBits;
  Gf2Poly result;
  result.words_.assign(words_.size() + word_shift + 1, 0);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    result.words_[i + word_shift] |= words_[i] << bit_shift;
    if (bit_shift != 0) {
      result.words_[i + word_shift + 1] |= words_[i] >> (kBits - bit_shift);
    }
  }
  result.trim();
  return result;
}

Element Gf2Poly::eval(const Gf2m& field, Element x) const {
  const long long deg = degree();
  if (deg < 0) return 0;
  Element acc = 0;
  for (long long i = deg; i >= 0; --i) {
    acc = field.mul(acc, x);
    if (coeff(static_cast<std::size_t>(i))) acc ^= 1u;
  }
  return acc;
}

Gf2Poly Gf2Poly::derivative() const {
  // d/dx sum a_i x^i = sum (i mod 2) a_i x^(i-1): odd terms drop one
  // degree, even terms vanish.
  Gf2Poly result;
  const long long deg = degree();
  for (long long i = 1; i <= deg; i += 2) {
    if (coeff(static_cast<std::size_t>(i))) {
      result.set_coeff(static_cast<std::size_t>(i - 1), true);
    }
  }
  return result;
}

Gf2Poly Gf2Poly::gcd(Gf2Poly a, Gf2Poly b) {
  while (!b.is_zero()) {
    Gf2Poly r = a % b;
    a = b;
    b = r;
  }
  return a;
}

void Gf2Poly::reserve_degree(std::size_t deg) {
  const std::size_t need = deg / kBits + 1;
  if (words_.size() < need) words_.resize(need, 0);
}

// xlf: cold — diagnostics only; reached by the hot closure through
// unrelated .to_string() receivers.
std::string Gf2Poly::to_string() const {
  if (is_zero()) return "0";
  std::string out;
  for (long long i = degree(); i >= 0; --i) {
    if (!coeff(static_cast<std::size_t>(i))) continue;
    if (!out.empty()) out += " + ";
    if (i == 0) {
      out += "1";
    } else if (i == 1) {
      out += "x";
    } else {
      out += "x^" + std::to_string(i);
    }
  }
  return out;
}

void Gf2Poly::trim() {
  while (!words_.empty() && words_.back() == 0) words_.pop_back();
}

}  // namespace xlf::gf
