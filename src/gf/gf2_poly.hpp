// Dense polynomials over GF(2), stored as packed 64-bit words.
//
// These represent codewords, messages and generator polynomials; the
// generator for t = 65 over GF(2^16) has degree 1040 and codewords
// have degree ~33807, so all bulk operations are word-parallel.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/gf/gf2m.hpp"

namespace xlf::gf {

class Gf2Poly {
 public:
  Gf2Poly() = default;
  // Polynomial from bit pattern: bit i of `bits` = coefficient of x^i.
  explicit Gf2Poly(std::uint64_t bits);

  static Gf2Poly zero() { return Gf2Poly(); }
  static Gf2Poly one() { return Gf2Poly(1); }
  // x^e
  static Gf2Poly monomial(std::size_t e);

  // Degree of the zero polynomial is reported as -1.
  long long degree() const;
  bool is_zero() const;
  bool coeff(std::size_t i) const;
  void set_coeff(std::size_t i, bool value);
  // Number of nonzero coefficients.
  std::size_t weight() const;

  Gf2Poly operator+(const Gf2Poly& other) const;  // XOR; same as subtraction
  Gf2Poly operator*(const Gf2Poly& other) const;
  // Quotient and remainder of *this / divisor.
  struct DivMod;
  DivMod divmod(const Gf2Poly& divisor) const;
  Gf2Poly operator%(const Gf2Poly& divisor) const;
  bool operator==(const Gf2Poly& other) const;

  // Multiply by x^e (shift left).
  Gf2Poly shifted(std::size_t e) const;

  // Evaluate at a field element via Horner's rule.
  Element eval(const Gf2m& field, Element x) const;

  // Formal derivative: over GF(2) only odd-degree terms survive.
  Gf2Poly derivative() const;

  // Greatest common divisor (Euclid).
  static Gf2Poly gcd(Gf2Poly a, Gf2Poly b);

  // Raw word access for bulk codeword manipulation.
  const std::vector<std::uint64_t>& words() const { return words_; }
  // Ensure capacity for degree `deg` (zero-filled).
  void reserve_degree(std::size_t deg);

  // "x^5 + x^2 + 1" style rendering, low-degree terms last.
  std::string to_string() const;

 private:
  void trim();
  std::vector<std::uint64_t> words_;
};

struct Gf2Poly::DivMod {
  Gf2Poly quotient;
  Gf2Poly remainder;
};

}  // namespace xlf::gf
