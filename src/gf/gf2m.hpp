// Binary extension field GF(2^m) arithmetic, 3 <= m <= 16.
//
// BCH construction for a 4 KB page needs GF(2^16) (k + r <= 2^m - 1
// with k = 32768 demands m = 16); smaller fields are supported so
// tests and microbenches can sweep code sizes. Multiplication and
// inversion run over discrete log/antilog tables built once per field
// from a primitive polynomial; addition is XOR.
#pragma once

#include <cstdint>
#include <vector>

namespace xlf::gf {

// A field element is an unsigned value < 2^m. Element 0 is the
// additive identity; alpha = 0b10 is the primitive element whose
// powers enumerate the multiplicative group.
using Element = std::uint32_t;

class Gf2m {
 public:
  // Builds the field from the default primitive polynomial for m.
  explicit Gf2m(unsigned m);
  // Builds the field from a caller-supplied primitive polynomial given
  // as its bit pattern (bit i = coefficient of x^i); validated to be
  // primitive by checking the generated cycle length.
  Gf2m(unsigned m, std::uint32_t primitive_poly);

  unsigned m() const { return m_; }
  // Field size 2^m.
  std::uint32_t size() const { return 1u << m_; }
  // Multiplicative group order 2^m - 1.
  std::uint32_t order() const { return size() - 1; }
  std::uint32_t primitive_poly() const { return poly_; }

  static Element add(Element a, Element b) { return a ^ b; }
  Element mul(Element a, Element b) const;
  Element div(Element a, Element b) const;
  Element inv(Element a) const;
  // a^e with e possibly negative (interpreted modulo the group order).
  Element pow(Element a, long long e) const;
  // alpha^e for the primitive element.
  Element alpha_pow(long long e) const;
  // Discrete log base alpha; requires a != 0.
  std::uint32_t log(Element a) const;
  // Every element of GF(2^m) satisfies x = (x^(2^(m-1)))^2, so square
  // roots exist and are unique.
  Element sqrt(Element a) const;

  // Default primitive polynomial bit pattern for m in [3, 16].
  static std::uint32_t default_primitive_poly(unsigned m);

 private:
  void build_tables();

  unsigned m_;
  std::uint32_t poly_;
  std::vector<Element> exp_;        // exp_[i] = alpha^i, doubled to skip mod
  std::vector<std::uint32_t> log_;  // log_[a] = i with alpha^i = a
};

}  // namespace xlf::gf
