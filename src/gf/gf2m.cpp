#include "src/gf/gf2m.hpp"

#include "src/util/expect.hpp"

namespace xlf::gf {

std::uint32_t Gf2m::default_primitive_poly(unsigned m) {
  // Standard primitive polynomials (Lin & Costello, Appendix A-ish
  // table); bit i is the coefficient of x^i.
  switch (m) {
    case 3: return 0x0B;      // x^3 + x + 1
    case 4: return 0x13;      // x^4 + x + 1
    case 5: return 0x25;      // x^5 + x^2 + 1
    case 6: return 0x43;      // x^6 + x + 1
    case 7: return 0x89;      // x^7 + x^3 + 1
    case 8: return 0x11D;     // x^8 + x^4 + x^3 + x^2 + 1
    case 9: return 0x211;     // x^9 + x^4 + 1
    case 10: return 0x409;    // x^10 + x^3 + 1
    case 11: return 0x805;    // x^11 + x^2 + 1
    case 12: return 0x1053;   // x^12 + x^6 + x^4 + x + 1
    case 13: return 0x201B;   // x^13 + x^4 + x^3 + x + 1
    case 14: return 0x4443;   // x^14 + x^10 + x^6 + x + 1
    case 15: return 0x8003;   // x^15 + x + 1
    case 16: return 0x1100B;  // x^16 + x^12 + x^3 + x + 1
    default:
      XLF_EXPECT(false && "unsupported field degree");
      return 0;
  }
}

Gf2m::Gf2m(unsigned m) : Gf2m(m, default_primitive_poly(m)) {}

Gf2m::Gf2m(unsigned m, std::uint32_t primitive_poly)
    : m_(m), poly_(primitive_poly) {
  XLF_EXPECT(m >= 3 && m <= 16);
  XLF_EXPECT((primitive_poly >> m) == 1u);  // monic of degree exactly m
  build_tables();
}

void Gf2m::build_tables() {
  const std::uint32_t q = size();
  const std::uint32_t n = order();
  exp_.assign(2 * n, 0);
  log_.assign(q, 0);

  Element x = 1;
  for (std::uint32_t i = 0; i < n; ++i) {
    // The polynomial is primitive iff alpha's powers only return to 1
    // after exactly 2^m - 1 steps.
    XLF_EXPECT(!(i > 0 && x == 1) && "polynomial is not primitive");
    exp_[i] = x;
    exp_[i + n] = x;
    log_[x] = i;
    x <<= 1;
    if (x & q) x ^= poly_;
  }
  XLF_ENSURE(x == 1);  // closes the cycle
}

Element Gf2m::mul(Element a, Element b) const {
  if (a == 0 || b == 0) return 0;
  return exp_[log_[a] + log_[b]];
}

Element Gf2m::inv(Element a) const {
  XLF_EXPECT(a != 0);
  return exp_[order() - log_[a]];
}

Element Gf2m::div(Element a, Element b) const {
  XLF_EXPECT(b != 0);
  if (a == 0) return 0;
  return exp_[log_[a] + order() - log_[b]];
}

Element Gf2m::pow(Element a, long long e) const {
  if (a == 0) {
    XLF_EXPECT(e > 0);  // 0^0 and negative powers of 0 are undefined
    return 0;
  }
  const long long n = static_cast<long long>(order());
  long long idx = (static_cast<long long>(log_[a]) * (e % n)) % n;
  if (idx < 0) idx += n;
  return exp_[static_cast<std::uint32_t>(idx)];
}

Element Gf2m::alpha_pow(long long e) const {
  const long long n = static_cast<long long>(order());
  long long idx = e % n;
  if (idx < 0) idx += n;
  return exp_[static_cast<std::uint32_t>(idx)];
}

std::uint32_t Gf2m::log(Element a) const {
  XLF_EXPECT(a != 0);
  return log_[a];
}

Element Gf2m::sqrt(Element a) const {
  if (a == 0) return 0;
  // In characteristic 2, squaring is a bijection; the inverse map is
  // x -> x^(2^(m-1)).
  Element r = a;
  for (unsigned i = 0; i + 1 < m_; ++i) r = mul(r, r);
  return r;
}

}  // namespace xlf::gf
