#include "src/gf/gfp_poly.hpp"

#include <algorithm>

#include "src/util/expect.hpp"

namespace xlf::gf {

GfpPoly::GfpPoly(std::vector<Element> coeffs) : coeffs_(std::move(coeffs)) {
  trim();
}

long long GfpPoly::degree() const {
  for (std::size_t i = coeffs_.size(); i-- > 0;) {
    if (coeffs_[i] != 0) return static_cast<long long>(i);
  }
  return -1;
}

Element GfpPoly::coeff(std::size_t i) const {
  return i < coeffs_.size() ? coeffs_[i] : 0;
}

void GfpPoly::set_coeff(std::size_t i, Element value) {
  if (i >= coeffs_.size()) {
    if (value == 0) return;
    coeffs_.resize(i + 1, 0);
  }
  coeffs_[i] = value;
}

GfpPoly GfpPoly::add(const Gf2m&, const GfpPoly& other) const {
  GfpPoly result = *this;
  if (other.coeffs_.size() > result.coeffs_.size()) {
    // Bounded by 2t syndrome/locator coefficients.
    result.coeffs_.resize(other.coeffs_.size(), 0);  // xlf-lint: allow(hot-alloc)
  }
  for (std::size_t i = 0; i < other.coeffs_.size(); ++i) {
    result.coeffs_[i] ^= other.coeffs_[i];
  }
  result.trim();
  return result;
}

GfpPoly GfpPoly::mul(const Gf2m& field, const GfpPoly& other) const {
  if (is_zero() || other.is_zero()) return GfpPoly();
  std::vector<Element> out(coeffs_.size() + other.coeffs_.size() - 1, 0);
  for (std::size_t i = 0; i < coeffs_.size(); ++i) {
    if (coeffs_[i] == 0) continue;
    for (std::size_t j = 0; j < other.coeffs_.size(); ++j) {
      out[i + j] ^= field.mul(coeffs_[i], other.coeffs_[j]);
    }
  }
  return GfpPoly(std::move(out));
}

GfpPoly GfpPoly::scale(const Gf2m& field, Element factor) const {
  if (factor == 0) return GfpPoly();
  std::vector<Element> out(coeffs_.size());
  for (std::size_t i = 0; i < coeffs_.size(); ++i) {
    out[i] = field.mul(coeffs_[i], factor);
  }
  return GfpPoly(std::move(out));
}

GfpPoly GfpPoly::shifted(std::size_t e) const {
  if (is_zero()) return GfpPoly();
  std::vector<Element> out(coeffs_.size() + e, 0);
  std::copy(coeffs_.begin(), coeffs_.end(), out.begin() + static_cast<long>(e));
  return GfpPoly(std::move(out));
}

Element GfpPoly::eval(const Gf2m& field, Element x) const {
  Element acc = 0;
  for (std::size_t i = coeffs_.size(); i-- > 0;) {
    acc = field.mul(acc, x) ^ coeffs_[i];
  }
  return acc;
}

GfpPoly GfpPoly::derivative() const {
  if (coeffs_.size() <= 1) return GfpPoly();
  std::vector<Element> out(coeffs_.size() - 1, 0);
  for (std::size_t i = 1; i < coeffs_.size(); i += 2) {
    out[i - 1] = coeffs_[i];  // i * a_i = a_i for odd i in char 2
  }
  return GfpPoly(std::move(out));
}

bool GfpPoly::equals(const GfpPoly& other) const {
  const std::size_t n = std::max(coeffs_.size(), other.coeffs_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (coeff(i) != other.coeff(i)) return false;
  }
  return true;
}

// xlf: cold — diagnostics only.
std::string GfpPoly::to_string() const {
  if (is_zero()) return "0";
  std::string out;
  for (long long i = degree(); i >= 0; --i) {
    const Element c = coeff(static_cast<std::size_t>(i));
    if (c == 0) continue;
    if (!out.empty()) out += " + ";
    out += std::to_string(c);
    if (i == 1) {
      out += "*x";
    } else if (i > 1) {
      out += "*x^" + std::to_string(i);
    }
  }
  return out;
}

void GfpPoly::trim() {
  while (!coeffs_.empty() && coeffs_.back() == 0) coeffs_.pop_back();
}

}  // namespace xlf::gf
