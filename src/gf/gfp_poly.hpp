// Polynomials with coefficients in GF(2^m).
//
// The decoder works with these: the error-locator polynomial lambda(x)
// produced by Berlekamp-Massey has degree <= t (65 here), so these
// stay tiny — a plain coefficient vector with Horner evaluation.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/gf/gf2m.hpp"

namespace xlf::gf {

class GfpPoly {
 public:
  GfpPoly() = default;
  explicit GfpPoly(std::vector<Element> coeffs);  // coeffs[i] = coeff of x^i

  static GfpPoly zero() { return GfpPoly(); }
  static GfpPoly one() { return GfpPoly({1}); }

  long long degree() const;
  bool is_zero() const { return degree() < 0; }
  Element coeff(std::size_t i) const;
  void set_coeff(std::size_t i, Element value);
  const std::vector<Element>& coeffs() const { return coeffs_; }

  GfpPoly add(const Gf2m& field, const GfpPoly& other) const;
  GfpPoly mul(const Gf2m& field, const GfpPoly& other) const;
  GfpPoly scale(const Gf2m& field, Element factor) const;
  // Multiply by x^e.
  GfpPoly shifted(std::size_t e) const;

  Element eval(const Gf2m& field, Element x) const;

  // Formal derivative in characteristic 2.
  GfpPoly derivative() const;

  bool equals(const GfpPoly& other) const;

  std::string to_string() const;

 private:
  void trim();
  std::vector<Element> coeffs_;
};

}  // namespace xlf::gf
