#include "src/gf/minpoly.hpp"

#include <algorithm>

#include "src/gf/gfp_poly.hpp"
#include "src/util/expect.hpp"

namespace xlf::gf {

// xlf: cold — minimal-polynomial construction: codec stage build
// only (warm-up).
std::vector<std::uint32_t> cyclotomic_coset(const Gf2m& field, std::uint32_t i) {
  const std::uint32_t n = field.order();
  XLF_EXPECT(i < n);
  std::vector<std::uint32_t> coset;
  std::uint32_t j = i;
  do {
    coset.push_back(j);
    j = static_cast<std::uint32_t>((2ull * j) % n);
  } while (j != i);
  std::sort(coset.begin(), coset.end());
  return coset;
}

Gf2Poly minimal_polynomial(const Gf2m& field, std::uint32_t i) {
  const auto coset = cyclotomic_coset(field, i);
  // Build prod (x + alpha^j) over GF(2^m), then project to GF(2).
  GfpPoly acc = GfpPoly::one();
  for (std::uint32_t j : coset) {
    const GfpPoly factor({field.alpha_pow(j), 1});  // alpha^j + x
    acc = acc.mul(field, factor);
  }
  Gf2Poly result;
  for (long long d = acc.degree(); d >= 0; --d) {
    const Element c = acc.coeff(static_cast<std::size_t>(d));
    XLF_ENSURE(c == 0 || c == 1);  // conjugate closure forces binary coeffs
    if (c == 1) result.set_coeff(static_cast<std::size_t>(d), true);
  }
  XLF_ENSURE(result.degree() == static_cast<long long>(coset.size()));
  return result;
}

}  // namespace xlf::gf
