// Cyclotomic cosets and minimal polynomials over GF(2).
//
// The BCH generator polynomial is the least common multiple of the
// minimal polynomials of alpha^1 .. alpha^(2t); conjugate powers share
// a minimal polynomial, so the LCM reduces to a product over distinct
// cyclotomic cosets (in practice the odd exponents 1, 3, ..., 2t-1).
#pragma once

#include <cstdint>
#include <vector>

#include "src/gf/gf2_poly.hpp"
#include "src/gf/gf2m.hpp"

namespace xlf::gf {

// Cyclotomic coset of `i` modulo 2^m - 1: {i, 2i, 4i, ...} until it
// wraps. Returned sorted ascending with the coset leader first
// (the smallest member).
std::vector<std::uint32_t> cyclotomic_coset(const Gf2m& field, std::uint32_t i);

// Minimal polynomial of alpha^i over GF(2): the monic polynomial
// prod_{j in coset(i)} (x - alpha^j). All coefficients land in {0,1};
// this is checked and the result returned as a GF(2) polynomial.
Gf2Poly minimal_polynomial(const Gf2m& field, std::uint32_t i);

}  // namespace xlf::gf
