// Secure vault (paper Section 6.3.1): mission-critical storage —
// web-payment transactions, OS images, internal backups — wants UBER
// far below the stock 1e-11. The MinUber point switches the physical
// layer to ISPP-DV while keeping the SV-sized ECC: the entire 10x
// RBER margin becomes UBER headroom, with no read-throughput cost.
// The demo also exercises the margin: error bursts beyond what the
// raw device would produce are still corrected transparently.
#include <iostream>

#include "src/bch/error_injection.hpp"
#include "src/core/subsystem.hpp"
#include "src/util/rng.hpp"

using namespace xlf;

int main() {
  core::SubsystemConfig config = core::SubsystemConfig::defaults();
  core::MemorySubsystem subsystem(config);
  subsystem.device().set_uniform_wear(1e5);  // mid-life device

  std::cout << "=== secure vault: UBER minimisation at mid-life ===\n\n";
  for (const core::OperatingPoint& point :
       {core::OperatingPoint::baseline(), core::OperatingPoint::min_uber()}) {
    subsystem.apply(point);
    const core::Metrics m = subsystem.current_metrics();
    std::cout << point.describe() << '\n'
              << "  log10(UBER) = " << m.log10_uber
              << "  read throughput = " << to_string(m.read_throughput)
              << "  (identical decode path)\n";
  }

  // Commit a critical payload under MinUber and stress the margin.
  subsystem.apply(core::OperatingPoint::min_uber());
  Rng rng(7);
  BitVec secret(config.device.array.geometry.data_bits_per_page());
  for (std::size_t i = 0; i < secret.size(); ++i) {
    secret.set(i, rng.chance(0.5));
  }
  const nand::PageAddress addr{0, 3};
  const controller::WriteResult write = subsystem.write_page(addr, secret);
  std::cout << "\ncritical page committed with t=" << write.t_used << '\n';

  const controller::ReadResult read = subsystem.read_page(addr);
  std::cout << "read back: corrected " << read.corrected_bits
            << " device bits, data intact: "
            << (read.data == secret ? "yes" : "NO") << '\n';

  // Show the correction margin directly at the codec level.
  auto& ecc = subsystem.controller().ecc();
  const unsigned t = ecc.correction_capability();
  BitVec message(config.controller.codec.k);
  for (std::size_t i = 0; i < message.size(); ++i) {
    message.set(i, rng.chance(0.5));
  }
  const controller::EncodeOutcome enc = ecc.encode(message);
  BitVec stressed = enc.codeword;
  Rng burst_rng(99);
  bch::inject_burst(stressed, t, burst_rng);  // full-t contiguous burst
  const controller::DecodeOutcome dec = ecc.decode(stressed);
  std::cout << "burst stress at full capability t=" << t << ": "
            << (dec.result.ok() && ecc.extract_message(stressed) == message
                    ? "corrected"
                    : "FAILED")
            << " (latency " << to_string(dec.latency) << ")\n";

  std::cout << "\nMinUber adds ~"
            << (subsystem.framework()
                    .evaluate(core::OperatingPoint::baseline(), 1e5)
                    .log10_uber -
                subsystem.framework()
                    .evaluate(core::OperatingPoint::min_uber(), 1e5)
                    .log10_uber)
            << " orders of magnitude of UBER margin at this age\n";
  return 0;
}
