// Multimedia streaming (paper Section 6.3.2): a read-intensive,
// QoS-sensitive workload near the end of the device's life. The
// MaxRead cross-layer point (ISPP-DV + relaxed ECC) shortens the
// worst-case read service time, letting the device sustain a higher
// stream bitrate at the same 1e-11 UBER — at the cost of slower
// (rare) writes.
#include <iostream>

#include "src/core/subsystem.hpp"
#include "src/sim/lifetime.hpp"
#include "src/sim/subsystem_sim.hpp"
#include "src/sim/workload.hpp"

using namespace xlf;

namespace {

void run_stream(core::MemorySubsystem& subsystem,
                const core::OperatingPoint& point, double pe_cycles,
                BytesPerSecond bitrate) {
  subsystem.device().set_uniform_wear(pe_cycles);
  subsystem.apply(point);

  sim::MultimediaStreamingWorkload workload(bitrate);
  sim::LifetimePoint result = sim::run_at_age(
      subsystem.controller(), workload, /*count=*/160, pe_cycles, /*seed=*/9);

  const std::size_t page_bytes =
      subsystem.device().geometry().data_bytes_per_page;
  std::cout << "  " << point.describe() << '\n'
            << "    t=" << result.t_selected
            << "  device read throughput: "
            << to_string(result.stats.read_throughput(page_bytes))
            << "  mean latency: "
            << to_string(Seconds{result.stats.read_latency.mean()})
            << "  QoS misses: " << result.stats.qos_misses << "/"
            << result.stats.reads
            << "  uncorrectable: " << result.stats.uncorrectable << '\n';
}

}  // namespace

int main() {
  std::cout << "=== multimedia streaming at end of life (1e6 P/E) ===\n";
  core::SubsystemConfig config = core::SubsystemConfig::defaults();
  core::MemorySubsystem subsystem(config);

  // A stream rate chosen to be feasible with the relaxed decoder but
  // marginal with the baseline's worst-case t = 65 decode latency.
  const BytesPerSecond bitrate = BytesPerSecond::mib(17.0);
  std::cout << "stream bitrate: " << to_string(bitrate) << "\n\n";

  run_stream(subsystem, core::OperatingPoint::baseline(), 1e6, bitrate);
  run_stream(subsystem, core::OperatingPoint::max_read(), 1e6, bitrate);

  std::cout << "\nthe cross-layer point sustains the stream that the "
               "baseline misses deadlines on, with UBER unchanged at the "
               "1e-11 target (occasional glitches are the tolerance the "
               "paper cites for multimedia QoS)\n";
  return 0;
}
