// Quickstart: bring up a complete MLC NAND subsystem, write and read
// pages under each of the paper's operating points, and print the
// predicted metrics. Everything flows through the public API:
// MemorySubsystem -> MemoryController -> (adaptive BCH ECC, NAND
// device with runtime-selectable ISPP).
#include <iostream>

#include "src/core/subsystem.hpp"
#include "src/util/rng.hpp"

using namespace xlf;

int main() {
  // 1. Construct the subsystem with the paper's default parameters:
  //    GF(2^16) BCH over 4 KB pages with t = 3..65, 45 nm MLC NAND
  //    with ISPP-SV/DV selectable at runtime, 80 MHz codec.
  core::SubsystemConfig config = core::SubsystemConfig::defaults();
  core::MemorySubsystem subsystem(config);

  std::cout << "device: " << subsystem.device().geometry().blocks
            << " blocks x " << subsystem.device().geometry().pages_per_block
            << " pages x " << subsystem.device().geometry().data_bytes_per_page
            << " B\n";

  // 2. Write a page of data and read it back at the baseline point.
  Rng rng(42);
  BitVec payload(config.device.array.geometry.data_bits_per_page());
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload.set(i, rng.chance(0.5));
  }

  const nand::PageAddress addr{0, 0};
  const controller::WriteResult write = subsystem.write_page(addr, payload);
  const controller::ReadResult read = subsystem.read_page(addr);
  std::cout << "\nbaseline write: " << to_string(write.latency) << " (t="
            << write.t_used << "), read: " << to_string(read.latency)
            << ", corrected bits: " << read.corrected_bits
            << ", data intact: " << (read.data == payload ? "yes" : "NO")
            << '\n';

  // 3. Compare the three cross-layer operating points at mid-life.
  subsystem.device().set_uniform_wear(1e5);
  std::cout << "\noperating points at 1e5 P/E cycles:\n";
  for (const core::OperatingPoint& point :
       {core::OperatingPoint::baseline(), core::OperatingPoint::min_uber(),
        core::OperatingPoint::max_read()}) {
    subsystem.apply(point);
    const core::Metrics m = subsystem.current_metrics();
    std::cout << "  " << point.describe() << "\n    " << m.summary() << '\n';
  }

  // 4. The cross-layer knobs are plain controller calls, usable
  //    directly for custom configurations.
  subsystem.controller().set_program_algorithm(nand::ProgramAlgorithm::kIsppDv);
  subsystem.controller().set_correction_capability(20);
  std::cout << "\ncustom point applied: algo="
            << to_string(subsystem.controller().program_algorithm())
            << " t=" << subsystem.controller().correction_capability() << '\n';
  return 0;
}
