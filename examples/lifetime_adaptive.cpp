// Self-adaptive reliability management (paper Section 3): instead of
// trusting a wear counter and the RBER model, the controller's
// reliability manager estimates the error rate from the corrected-bit
// feedback of the ECC itself and re-sizes t online. This demo ages
// the device through its life and shows the feedback schedule
// converging to the model-based one.
#include <iomanip>
#include <iostream>

#include "src/core/subsystem.hpp"
#include "src/sim/subsystem_sim.hpp"
#include "src/sim/workload.hpp"

using namespace xlf;

int main() {
  std::cout << "=== self-adaptive ECC over the device lifetime ===\n\n";
  core::SubsystemConfig config = core::SubsystemConfig::defaults();
  config.controller.tuning_policy = "feedback";
  // Snappier estimator for the demo's coarse age steps.
  config.controller.reliability.ewma_alpha = 0.15;
  core::MemorySubsystem subsystem(config);
  auto& ctrl = subsystem.controller();

  std::cout << std::left << std::setw(12) << "PE cycles" << std::setw(14)
            << "est. RBER" << std::setw(12) << "model RBER" << std::setw(12)
            << "t feedback" << std::setw(10) << "t model" << "uncorrectable\n";

  const sim::MixedWorkload workload(/*read_fraction=*/0.8);
  for (double cycles : {1e2, 1e3, 1e4, 1e5, 5e5, 1e6}) {
    subsystem.device().set_uniform_wear(cycles);

    // Run traffic in rounds, letting the manager react between them —
    // the continuous loop a deployed controller executes. The first
    // round after a large age jump may fail pages (the old t is too
    // weak); the feedback pushes t up and the later rounds recover.
    std::size_t uncorrectable = 0;
    unsigned t_feedback = ctrl.correction_capability();
    for (int round = 0; round < 3; ++round) {
      Rng rng(static_cast<std::uint64_t>(cycles) + round);
      const auto requests =
          workload.generate(subsystem.device().geometry(), 48, rng);
      sim::SubsystemSimulator simulator(ctrl);
      const sim::SimStats stats = simulator.run(requests);
      uncorrectable += stats.uncorrectable;
      t_feedback = ctrl.adapt_ecc(cycles);
    }
    const unsigned t_model = ctrl.reliability().select_t(
        ctrl.program_algorithm(), cycles);

    std::cout << std::left << std::setw(12) << cycles << std::setw(14)
              << ctrl.reliability().estimated_rber() << std::setw(12)
              << subsystem.device().config().array.aging.rber(
                     ctrl.program_algorithm(), cycles)
              << std::setw(12) << t_feedback << std::setw(10) << t_model
              << uncorrectable << '\n';
  }

  std::cout << "\nthe feedback schedule tracks the model-based one using "
               "only observable decode statistics — the in-situ adaptation "
               "loop the paper envisions for future MPSoCs\n";
  return 0;
}
