// Differentiated storage services (paper Sections 6.3.3 and 7): the
// extreme case the paper names for the cross-layer methodology is the
// one-time-programmable (OTP) sector used for execute-in-place code.
// Writes happen once — the ISPP-DV write-time penalty is irrelevant —
// while reads want both maximum reliability and full speed.
//
// This example carves the device into two segments with their own
// operating points (the paper's future-work item, implemented):
//   * "otp-xip" : MinUber (ISPP-DV + strong ECC margin)
//   * "bulk"    : Baseline (ISPP-SV)
#include <iostream>

#include "src/core/subsystem.hpp"
#include "src/util/rng.hpp"

using namespace xlf;

int main() {
  core::SubsystemConfig config = core::SubsystemConfig::defaults();
  // Give the demo a few blocks to carve up.
  config.device.array.geometry.blocks = 4;
  core::MemorySubsystem subsystem(config);

  subsystem.define_segment(
      {"otp-xip", 0, 0, core::OperatingPoint::min_uber()});
  subsystem.define_segment(
      {"bulk", 1, 3, core::OperatingPoint::baseline()});

  std::cout << "=== per-segment storage services ===\n";
  for (const core::Segment& segment : subsystem.segments()) {
    std::cout << "  segment '" << segment.name << "' blocks "
              << segment.first_block << ".." << segment.last_block << " -> "
              << segment.point.describe() << '\n';
  }

  // Burn firmware into the OTP segment, user data into bulk.
  Rng rng(21);
  const auto make_page = [&] {
    BitVec data(config.device.array.geometry.data_bits_per_page());
    for (std::size_t i = 0; i < data.size(); ++i) data.set(i, rng.chance(0.5));
    return data;
  };

  const BitVec firmware = make_page();
  const controller::WriteResult fw_write =
      subsystem.write_page({0, 0}, firmware);
  std::cout << "\nfirmware burn (otp-xip): algo="
            << to_string(subsystem.controller().program_algorithm())
            << " t=" << fw_write.t_used
            << " latency=" << to_string(fw_write.latency) << '\n';

  const BitVec user_data = make_page();
  const controller::WriteResult bulk_write =
      subsystem.write_page({2, 0}, user_data);
  std::cout << "bulk write:              algo="
            << to_string(subsystem.controller().program_algorithm())
            << " t=" << bulk_write.t_used
            << " latency=" << to_string(bulk_write.latency) << '\n';

  // XIP-style read-back of the firmware.
  const controller::ReadResult fw_read = subsystem.read_page({0, 0});
  std::cout << "\nXIP fetch: " << to_string(fw_read.latency) << ", corrected "
            << fw_read.corrected_bits << " bits, firmware intact: "
            << (fw_read.data == firmware ? "yes" : "NO") << '\n';

  std::cout << "\nthe OTP segment pays the one-time ISPP-DV write cost ("
            << fw_write.latency / bulk_write.latency
            << "x the bulk write) for permanently higher read reliability\n";
  return 0;
}
