# CLI contract of tools/xlf_explore, run as a CTest script:
#   cmake -DXLF_EXPLORE=<binary> -DSPEC=<example spec> -P xlf_explore_cli.cmake
#
# Checks the teaching-error satellite (unknown flags exit non-zero and
# point at --help instead of being silently ignored), spec error
# handling, and that a shipped example spec runs clean.

if(NOT DEFINED XLF_EXPLORE OR NOT DEFINED SPEC)
  message(FATAL_ERROR "usage: cmake -DXLF_EXPLORE=... -DSPEC=... -P xlf_explore_cli.cmake")
endif()

# --- unknown flag: non-zero exit, names the flag, suggests --help ----
execute_process(COMMAND ${XLF_EXPLORE} --no-such-flag
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "unknown flag must exit non-zero (got 0)")
endif()
if(NOT err MATCHES "unknown flag '--no-such-flag'")
  message(FATAL_ERROR "unknown-flag message must name the flag, got: ${err}")
endif()
if(NOT err MATCHES "--help")
  message(FATAL_ERROR "unknown-flag message must suggest --help, got: ${err}")
endif()

# --- --list-policies: every kind on its own line, exit 0 -------------
execute_process(COMMAND ${XLF_EXPLORE} --list-policies
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--list-policies must exit 0 (got ${rc}): ${err}")
endif()
foreach(kind tuning gc wear refresh arbitration)
  if(NOT out MATCHES "${kind}:")
    message(FATAL_ERROR "--list-policies missing kind '${kind}': ${out}")
  endif()
endforeach()
if(NOT out MATCHES "round-robin" OR NOT out MATCHES "weighted")
  message(FATAL_ERROR "--list-policies missing arbitration built-ins: ${out}")
endif()

# --- --version/--build-info: provenance lines, exit 0 ----------------
foreach(flag --version --build-info)
  execute_process(COMMAND ${XLF_EXPLORE} ${flag}
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${flag} must exit 0 (got ${rc}): ${err}")
  endif()
  foreach(field "xlf_explore " "compiler:" "build type:" "sanitizers:")
    if(NOT out MATCHES "${field}")
      message(FATAL_ERROR "${flag} output missing '${field}': ${out}")
    endif()
  endforeach()
endforeach()

# --- --version is exclusive with --spec ------------------------------
execute_process(COMMAND ${XLF_EXPLORE} --version --spec ${SPEC}
                RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "--version --spec must exit non-zero (got 0)")
endif()
if(NOT err MATCHES "exclusive")
  message(FATAL_ERROR "--version/--spec conflict message unclear, got: ${err}")
endif()

# --- an unknown flag with a valid one around it still fails ----------
execute_process(COMMAND ${XLF_EXPLORE} --threads 1 --ftl-swep
                RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "misspelled flag must exit non-zero (got 0)")
endif()

# --- missing spec file: non-zero with a clear message ----------------
execute_process(COMMAND ${XLF_EXPLORE} --spec /nonexistent/spec.json
                RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "missing spec file must exit non-zero (got 0)")
endif()
if(NOT err MATCHES "cannot open")
  message(FATAL_ERROR "missing-spec message unclear, got: ${err}")
endif()

# --- --spec conflicts with sweep-shaping flags -----------------------
execute_process(COMMAND ${XLF_EXPLORE} --spec ${SPEC} --ftl-sweep
                RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "--spec + shaping flags must exit non-zero (got 0)")
endif()
if(NOT err MATCHES "exclusive")
  message(FATAL_ERROR "--spec conflict message unclear, got: ${err}")
endif()

# --- a shipped example spec runs and is thread-count deterministic ---
execute_process(COMMAND ${XLF_EXPLORE} --spec ${SPEC} --threads 1
                RESULT_VARIABLE rc1 OUTPUT_VARIABLE run1 ERROR_VARIABLE err1)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "--spec ${SPEC} failed (${rc1}): ${err1}")
endif()
execute_process(COMMAND ${XLF_EXPLORE} --spec ${SPEC} --threads 4
                RESULT_VARIABLE rc4 OUTPUT_VARIABLE run4 ERROR_VARIABLE err4)
if(NOT rc4 EQUAL 0)
  message(FATAL_ERROR "--spec ${SPEC} --threads 4 failed (${rc4}): ${err4}")
endif()
if(NOT run1 STREQUAL run4)
  message(FATAL_ERROR "--spec output differs between --threads 1 and 4")
endif()
if(run1 STREQUAL "")
  message(FATAL_ERROR "--spec produced no output")
endif()
