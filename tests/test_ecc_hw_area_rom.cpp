#include <gtest/gtest.h>

#include <stdexcept>

#include "src/ecc_hw/area.hpp"
#include "src/ecc_hw/rom.hpp"

namespace xlf::ecc_hw {
namespace {

TEST(Area, BreakdownSumsToTotal) {
  const AreaModel area{EccHwConfig{}};
  const AreaBreakdown b = area.breakdown();
  EXPECT_DOUBLE_EQ(b.total_ge(), b.encoder_ge + b.syndrome_ge +
                                     b.berlekamp_massey_ge + b.chien_ge +
                                     b.control_ge);
  EXPECT_GT(b.total_ge(), 0.0);
}

TEST(Area, ChienBankDominatesAtFullCapability) {
  // t_max x h constant multipliers dwarf the other stages in the
  // paper's configuration — the cost of fast search the paper notes.
  const AreaModel area{EccHwConfig{}};
  const AreaBreakdown b = area.breakdown();
  EXPECT_GT(b.chien_ge, b.syndrome_ge);
  EXPECT_GT(b.chien_ge, b.encoder_ge);
  EXPECT_GT(b.chien_ge, b.berlekamp_massey_ge);
}

TEST(Area, SiliconIsFixedByTmaxNotRuntimeT) {
  // Two configs differing only in t_min occupy identical silicon.
  EccHwConfig a;
  EccHwConfig b;
  b.t_min = 10;
  EXPECT_DOUBLE_EQ(AreaModel{a}.total_ge(), AreaModel{b}.total_ge());
}

TEST(Area, GrowsWithTmaxAndParallelism) {
  EccHwConfig small;
  small.t_max = 14;
  EccHwConfig big;
  big.t_max = 65;
  EXPECT_GT(AreaModel{big}.total_ge(), AreaModel{small}.total_ge());

  EccHwConfig narrow;
  narrow.chien_parallelism = 2;
  EccHwConfig wide;
  wide.chien_parallelism = 16;
  EXPECT_GT(AreaModel{wide}.total_ge(), AreaModel{narrow}.total_ge());
}

TEST(Area, PlausibleSilicon45nm) {
  // The adaptive codec should land in the hundreds-of-kGE / ~0.1 mm^2
  // class — sanity bounds, not a published number.
  const AreaModel area{EccHwConfig{}};
  EXPECT_GT(area.total_ge(), 5e4);
  EXPECT_LT(area.total_ge(), 5e6);
  EXPECT_GT(area.area_mm2(), 0.01);
  EXPECT_LT(area.area_mm2(), 5.0);
}

TEST(Area, ConstantMultiplierQuadraticInFieldDegree) {
  EccHwConfig m13;
  m13.m = 13;
  m13.k = 4096;
  m13.t_max = 12;
  const AreaModel small(m13);
  const AreaModel big{EccHwConfig{}};
  EXPECT_GT(big.ge_per_constant_multiplier(),
            small.ge_per_constant_multiplier());
}

TEST(ConfigRom, OneEntryPerCapability) {
  const ConfigRom rom{EccHwConfig{}};
  EXPECT_EQ(rom.entries().size(), 65u - 3u + 1u);
  EXPECT_EQ(rom.entry(3).t, 3u);
  EXPECT_EQ(rom.entry(65).t, 65u);
  EXPECT_THROW(rom.entry(2), std::invalid_argument);
  EXPECT_THROW(rom.entry(66), std::invalid_argument);
}

TEST(ConfigRom, EntrySizesMatchArchitecture) {
  const ConfigRom rom{EccHwConfig{}};
  const RomEntry& entry = rom.entry(10);
  EXPECT_EQ(entry.generator_config_bits, 160u);  // r = 16 * 10
  EXPECT_EQ(entry.syndrome_enable_bits, 130u);   // 2 * t_max
  EXPECT_EQ(entry.chien_start_bits, 16u);        // one field element
}

TEST(ConfigRom, TotalIsSmall) {
  // Section 4 calls it "a small ROM": a few KiB.
  const ConfigRom rom{EccHwConfig{}};
  EXPECT_GT(rom.total_kib(), 1.0);
  EXPECT_LT(rom.total_kib(), 16.0);
}

TEST(ConfigRom, ChienStartSkipsShortenedPositions) {
  const ConfigRom rom{EccHwConfig{}};
  // n(t=65) = 33808, natural 65535: skip = 31727.
  EXPECT_EQ(rom.chien_start_index(65), 65535u - 33808u);
  // Larger t -> longer codeword -> fewer skipped positions.
  EXPECT_GT(rom.chien_start_index(3), rom.chien_start_index(65));
}

}  // namespace
}  // namespace xlf::ecc_hw
