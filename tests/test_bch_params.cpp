#include "src/bch/code_params.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace xlf::bch {
namespace {

TEST(CodeParams, PaperConfiguration) {
  // 4 KB page over GF(2^16), t = 65 worst case: r = 1040 parity bits
  // (130 bytes of spare area), n = 33808.
  const CodeParams p{16, 32768, 65};
  EXPECT_TRUE(p.valid());
  EXPECT_EQ(p.parity_bits(), 1040u);
  EXPECT_EQ(p.n(), 33808u);
  EXPECT_EQ(p.natural_length(), 65535u);
  EXPECT_EQ(p.shortening(), 65535u - 33808u);
  EXPECT_NEAR(p.rate(), 32768.0 / 33808.0, 1e-12);
}

TEST(CodeParams, ConstructionInequality) {
  // k + m t <= 2^m - 1: for m = 16, k = 32768 the bound is t <= 2047.
  EXPECT_TRUE((CodeParams{16, 32768, 2047}).valid());
  EXPECT_FALSE((CodeParams{16, 32768, 2048}).valid());
  // A 4 KB page cannot fit in GF(2^15).
  EXPECT_FALSE((CodeParams{15, 32768, 1}).valid());
}

TEST(CodeParams, MinFieldDegree) {
  EXPECT_EQ(min_field_degree(32768, 65), 16u);   // the paper's page
  EXPECT_EQ(min_field_degree(4096, 16), 13u);    // 512 B sector, as in [28]
  EXPECT_EQ(min_field_degree(100, 3), 7u);
}

TEST(Uber, MatchesDirectFormulaAtSmallScale) {
  // Directly computable scale: n = 100, t = 2, RBER = 0.01.
  const double direct = /* C(100,3) */ 161700.0 * std::pow(0.01, 3) *
                        std::pow(0.99, 97) / 100.0;
  EXPECT_NEAR(uber(0.01, 100, 2), direct, direct * 1e-10);
}

TEST(Uber, LogAndLinearAgree) {
  const double rber = 1e-3;
  const double lin = uber(rber, 33808, 10);
  EXPECT_NEAR(std::log(lin), log_uber(rber, 33808, 10), 1e-9);
}

TEST(Uber, MonotoneDecreasingInTBeyondMeanErrorCount) {
  // Eq. (1) is a single-term approximation: it decreases in t only
  // once t+1 exceeds the mean error count n*rber (~3.4 here). The
  // operating points the reliability manager selects always satisfy
  // that.
  double prev = 1.0;
  for (unsigned t = 4; t <= 65; ++t) {
    const CodeParams p{16, 32768, t};
    const double u = log_uber(1e-4, p.n(), t);
    EXPECT_LT(u, prev) << "t=" << t;
    prev = u;
  }
}

TEST(Uber, MonotoneIncreasingInRberBelowSaturation) {
  // Same regime caveat: monotone while n*rber stays below t+1.
  double prev = -1e9;
  for (double rber : {1e-6, 1e-5, 1e-4, 2e-4}) {
    const double u = log_uber(rber, 33808, 10);
    EXPECT_GT(u, prev);
    prev = u;
  }
}

TEST(Uber, TailDominatesSingleTerm) {
  // P[X >= t+1] includes the t+1 term plus more, so the exact tail is
  // always >= Eq. (1)'s single-term value.
  for (double rber : {1e-5, 1e-4, 1e-3}) {
    for (unsigned t : {3u, 14u, 30u, 65u}) {
      EXPECT_GE(log_uber_tail(rber, 33808, t) + 1e-9,
                log_uber(rber, 33808, t));
    }
  }
}

TEST(Uber, TailCloseToSingleTermWhenErrorsRare) {
  // With n*rber << t the first term dominates the tail.
  const double single = log_uber(1e-6, 33808, 10);
  const double tail = log_uber_tail(1e-6, 33808, 10);
  EXPECT_NEAR(single, tail, 0.05);  // within 5% in log space
}

// --- The paper's Fig. 7 operating points -------------------------------
//
// Section 6.2: with UBER target 1e-11, the BOL RBER requires tMIN = 3
// and the EOL ISPP-SV RBER (1e-3) requires tMAX = 65; the annotated
// points on Fig. 7 associate t = {3, 4, 27, 30, 65} with RBER =
// {1e-6, 2.5e-6, 2.75e-4, 3.35e-4, 1e-3}.

constexpr double kUberTarget = 1e-11;

TEST(MinTForUber, PaperFig7Chain) {
  const auto t_for = [](double rber) {
    const auto t = min_t_for_uber(rber, kUberTarget, 32768, 16, 1, 100);
    return t.has_value() ? static_cast<int>(*t) : -1;
  };
  EXPECT_EQ(t_for(1e-6), 3);
  EXPECT_EQ(t_for(2.5e-6), 4);
  // 5e-6 sits between the t=4 and t=5 contours; accept either side of
  // the annotation.
  EXPECT_NEAR(t_for(5e-6), 5, 1);
  EXPECT_NEAR(t_for(2.75e-4), 27, 1);
  EXPECT_NEAR(t_for(3.35e-4), 30, 1);
  EXPECT_NEAR(t_for(1e-3), 65, 1);
}

TEST(MinTForUber, SelectedTActuallyMeetsTarget) {
  for (double rber : {1e-6, 5e-6, 1e-4, 5e-4, 1e-3}) {
    const auto t = min_t_for_uber(rber, kUberTarget, 32768, 16, 1, 100);
    ASSERT_TRUE(t.has_value());
    const CodeParams p{16, 32768, *t};
    EXPECT_LE(uber(rber, p.n(), *t), kUberTarget);
    if (*t > 1) {
      const CodeParams weaker{16, 32768, *t - 1};
      EXPECT_GT(uber(rber, weaker.n(), *t - 1), kUberTarget)
          << "t not minimal at rber=" << rber;
    }
  }
}

TEST(MinTForUber, RespectsLowerBound) {
  // Clamping t_min = 3 (the codec's design minimum) must never return
  // less than 3 even for tiny RBER.
  const auto t = min_t_for_uber(1e-9, kUberTarget, 32768, 16, 3, 65);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 3u);
}

TEST(MinTForUber, UnreachableTargetReturnsNullopt) {
  // RBER 10% cannot be repaired by t <= 65 on a 4 KB page.
  EXPECT_FALSE(min_t_for_uber(0.1, kUberTarget, 32768, 16, 1, 65).has_value());
}

TEST(MinTForUber, MonotoneInRber) {
  unsigned prev = 1;
  for (double rber = 1e-6; rber < 2e-3; rber *= 1.5) {
    const auto t = min_t_for_uber(rber, kUberTarget, 32768, 16, 1, 200);
    ASSERT_TRUE(t.has_value());
    EXPECT_GE(*t, prev);
    prev = *t;
  }
}

TEST(MinTForUber, TighterTargetNeedsMoreCorrection) {
  const auto loose = min_t_for_uber(1e-4, 1e-9, 32768, 16, 1, 200);
  const auto tight = min_t_for_uber(1e-4, 1e-15, 32768, 16, 1, 200);
  ASSERT_TRUE(loose.has_value());
  ASSERT_TRUE(tight.has_value());
  EXPECT_GT(*tight, *loose);
}

}  // namespace
}  // namespace xlf::bch
