#include "src/hv/regulator.hpp"

#include <gtest/gtest.h>

namespace xlf::hv {
namespace {

TEST(Regulator, HoldsTargetWithinHysteresis) {
  DicksonPump pump(PumpConfig{});  // 12-stage, can reach well above 16 V
  Regulator regulator(RegulatorConfig{}, Volts{16.0});
  pump.reset(Volts{0.0});
  RegulationSummary summary = regulate_for(regulator, pump, Seconds::millis(1.0),
                                           2000, Amperes::milliamps(0.2));
  // After the startup ramp the output must ripple around the target
  // (the hysteretic loop overshoots by up to one RC slew per
  // comparator period).
  EXPECT_NEAR(summary.final_voltage.value(), 16.0, 0.6);
  // Run a second window from steady state: mean close to target.
  summary = regulate_for(regulator, pump, Seconds::millis(1.0), 2000,
                         Amperes::milliamps(0.2));
  EXPECT_NEAR(summary.mean_voltage.value(), 16.0, 0.4);
}

TEST(Regulator, DutyCycleBelowOneInSteadyState) {
  // The bang-bang loop must actually shut the pump down part of the
  // time — that is what bounds the ripple and the power.
  DicksonPump pump(PumpConfig{});
  Regulator regulator(RegulatorConfig{}, Volts{15.0});
  pump.reset(Volts{15.0});
  const RegulationSummary summary = regulate_for(
      regulator, pump, Seconds::millis(1.0), 2000, Amperes::milliamps(0.1));
  EXPECT_GT(summary.duty_cycle, 0.0);
  EXPECT_LT(summary.duty_cycle, 1.0);
}

TEST(Regulator, RetargetingFollowsIsppStaircase) {
  // The ISPP staircase retargets the program rail pulse by pulse.
  DicksonPump pump(PumpConfig{});
  Regulator regulator(RegulatorConfig{}, Volts{14.0});
  pump.reset(Volts{14.0});
  for (double target = 14.0; target <= 16.0; target += 0.25) {
    regulator.set_target(Volts{target});
    const RegulationSummary summary =
        regulate_for(regulator, pump, Seconds::micros(100.0), 500,
                     Amperes::milliamps(0.2));
    EXPECT_NEAR(summary.final_voltage.value(), target, 0.6) << target;
  }
}

TEST(Regulator, DividerRatioMapsTargetToReference) {
  Regulator regulator(RegulatorConfig{.vref = Volts{1.2},
                                      .hysteresis = Volts{0.1}},
                      Volts{16.0});
  EXPECT_NEAR(regulator.divider_ratio(), 1.2 / 16.0, 1e-12);
  regulator.set_target(Volts{19.0});
  EXPECT_NEAR(regulator.divider_ratio(), 1.2 / 19.0, 1e-12);
}

TEST(Regulator, EnergyOnlyWhenPumpEnabled) {
  DicksonPump pump(PumpConfig{});
  Regulator regulator(RegulatorConfig{}, Volts{10.0});
  pump.reset(Volts{12.0});  // above target: pump gated off
  const RegulatedStep step =
      regulator.step(pump, Seconds::micros(1.0), Amperes::milliamps(0.1));
  EXPECT_FALSE(step.pump_enabled);
  EXPECT_DOUBLE_EQ(step.input_energy.value(), 0.0);
}

TEST(Regulator, HigherLoadMeansHigherDuty) {
  const auto duty_at = [](Amperes load) {
    DicksonPump pump(PumpConfig{});
    Regulator regulator(RegulatorConfig{}, Volts{16.0});
    pump.reset(Volts{16.0});
    return regulate_for(regulator, pump, Seconds::millis(2.0), 4000, load)
        .duty_cycle;
  };
  EXPECT_LT(duty_at(Amperes::milliamps(0.05)), duty_at(Amperes::milliamps(0.4)));
}

TEST(Regulator, InvalidTargetsRejected) {
  EXPECT_THROW(Regulator(RegulatorConfig{}, Volts{0.0}),
               std::invalid_argument);
  Regulator regulator(RegulatorConfig{}, Volts{10.0});
  EXPECT_THROW(regulator.set_target(Volts{-1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace xlf::hv
