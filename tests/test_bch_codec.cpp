#include "src/bch/codec.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/bch/error_injection.hpp"
#include "src/util/rng.hpp"

namespace xlf::bch {
namespace {

BitVec random_message(std::uint32_t k, Rng& rng) {
  BitVec msg(k);
  for (std::uint32_t i = 0; i < k; ++i) msg.set(i, rng.chance(0.5));
  return msg;
}

AdaptiveCodecConfig small_config() {
  // A downsized adaptive codec for fast unit tests: GF(2^13),
  // 512-byte sectors, t in [1, 12] — the configuration of [28] that
  // the paper compares against.
  AdaptiveCodecConfig config;
  config.m = 13;
  config.k = 4096;
  config.t_min = 1;
  config.t_max = 12;
  config.initial_t = 4;
  return config;
}

TEST(AdaptiveCodec, ConstructionValidatesRange) {
  AdaptiveCodecConfig bad = small_config();
  bad.initial_t = 13;
  EXPECT_THROW(AdaptiveBchCodec{bad}, std::invalid_argument);
  bad = small_config();
  bad.t_min = 0;
  EXPECT_THROW(AdaptiveBchCodec{bad}, std::invalid_argument);
}

TEST(AdaptiveCodec, CorrectionCapabilityPort) {
  AdaptiveBchCodec codec(small_config());
  EXPECT_EQ(codec.correction_capability(), 4u);
  codec.set_correction_capability(9);
  EXPECT_EQ(codec.correction_capability(), 9u);
  EXPECT_EQ(codec.current_params().t, 9u);
  EXPECT_THROW(codec.set_correction_capability(0), std::invalid_argument);
  EXPECT_THROW(codec.set_correction_capability(13), std::invalid_argument);
}

TEST(AdaptiveCodec, ParityGrowsWithT) {
  AdaptiveBchCodec codec(small_config());
  Rng rng(1);
  const BitVec msg = random_message(4096, rng);
  codec.set_correction_capability(2);
  const BitVec cw2 = codec.encode(msg);
  codec.set_correction_capability(8);
  const BitVec cw8 = codec.encode(msg);
  EXPECT_EQ(cw2.size(), 4096u + 2u * 13u);
  EXPECT_EQ(cw8.size(), 4096u + 8u * 13u);
}

TEST(AdaptiveCodec, RoundTripAtEveryCapability) {
  AdaptiveBchCodec codec(small_config());
  Rng rng(2);
  for (unsigned t = 1; t <= 12; ++t) {
    codec.set_correction_capability(t);
    const BitVec msg = random_message(4096, rng);
    BitVec cw = codec.encode(msg);
    inject_exact(cw, t, rng);  // worst admissible load
    const DecodeResult result = codec.decode(cw);
    EXPECT_TRUE(result.ok()) << "t=" << t;
    EXPECT_EQ(result.corrected, t) << "t=" << t;
    EXPECT_EQ(codec.extract_message(cw), msg) << "t=" << t;
  }
}

TEST(AdaptiveCodec, ReconfigurationMidStream) {
  // Encode at t=3, decode, raise to t=10, continue — the runtime
  // adaptation scenario of the paper.
  AdaptiveBchCodec codec(small_config());
  Rng rng(3);

  codec.set_correction_capability(3);
  const BitVec msg1 = random_message(4096, rng);
  BitVec cw1 = codec.encode(msg1);
  inject_exact(cw1, 3, rng);
  EXPECT_TRUE(codec.decode(cw1).ok());
  EXPECT_EQ(codec.extract_message(cw1), msg1);

  codec.set_correction_capability(10);
  const BitVec msg2 = random_message(4096, rng);
  BitVec cw2 = codec.encode(msg2);
  inject_exact(cw2, 10, rng);
  EXPECT_TRUE(codec.decode(cw2).ok());
  EXPECT_EQ(codec.extract_message(cw2), msg2);
}

TEST(AdaptiveCodec, CachesConfigurations) {
  AdaptiveBchCodec codec(small_config());
  Rng rng(4);
  const BitVec msg = random_message(4096, rng);
  EXPECT_EQ(codec.cached_configurations(), 0u);
  codec.encode(msg);
  EXPECT_EQ(codec.cached_configurations(), 1u);
  codec.encode(msg);
  EXPECT_EQ(codec.cached_configurations(), 1u);  // reused
  codec.set_correction_capability(7);
  codec.encode(msg);
  EXPECT_EQ(codec.cached_configurations(), 2u);
}

TEST(AdaptiveCodec, OverloadBeyondTIsNotSilentlyMiscorrectedToOriginal) {
  AdaptiveBchCodec codec(small_config());
  Rng rng(5);
  codec.set_correction_capability(4);
  const BitVec msg = random_message(4096, rng);
  const BitVec clean = codec.encode(msg);
  int detected = 0;
  for (int trial = 0; trial < 30; ++trial) {
    BitVec cw = clean;
    inject_exact(cw, 7, rng);
    const DecodeResult result = codec.decode_with_reference(cw, clean);
    if (result.status == DecodeStatus::kUncorrectable) {
      ++detected;
    } else {
      EXPECT_NE(cw, clean);
    }
  }
  EXPECT_GT(detected, 15);
}

TEST(AdaptiveCodec, PaperProductionConfigConstructs) {
  // The real thing: GF(2^16), 4 KB page, t in [3, 65]. Construction
  // builds the field tables; codecs per t are lazy so this is cheap.
  AdaptiveCodecConfig config;  // defaults are the paper values
  AdaptiveBchCodec codec(config);
  EXPECT_EQ(codec.config().t_max, 65u);
  EXPECT_EQ(codec.field().m(), 16u);
  codec.set_correction_capability(14);  // ISPP-DV end-of-life point
  Rng rng(6);
  const BitVec msg = random_message(32768, rng);
  BitVec cw = codec.encode(msg);
  inject_exact(cw, 14, rng);
  const DecodeResult result = codec.decode_with_reference(cw, codec.encode(msg));
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(codec.extract_message(cw), msg);
}

}  // namespace
}  // namespace xlf::bch
