#include "src/util/units.hpp"

#include <gtest/gtest.h>

namespace xlf {
namespace {

using namespace xlf::literals;

TEST(Units, LiteralsProduceSiValues) {
  EXPECT_DOUBLE_EQ((1.5_ms).value(), 1.5e-3);
  EXPECT_DOUBLE_EQ((75.0_us).value(), 75e-6);
  EXPECT_DOUBLE_EQ((19.0_V).value(), 19.0);
  EXPECT_DOUBLE_EQ((250.0_mV).value(), 0.25);
  EXPECT_DOUBLE_EQ((7.5_mW).value(), 7.5e-3);
  EXPECT_DOUBLE_EQ((80.0_MHz).value(), 80e6);
}

TEST(Units, ArithmeticStaysInDimension) {
  const Seconds total = 75.0_us + 150.0_us;
  EXPECT_DOUBLE_EQ(total.micros(), 225.0);
  EXPECT_DOUBLE_EQ((total - 25.0_us).micros(), 200.0);
  EXPECT_DOUBLE_EQ((2.0 * 10.0_us).micros(), 20.0);
  EXPECT_DOUBLE_EQ((10.0_us / 4.0).micros(), 2.5);
}

TEST(Units, RatioIsDimensionless) {
  const double ratio = 150.0_us / 75.0_us;
  EXPECT_DOUBLE_EQ(ratio, 2.0);
}

TEST(Units, CrossDimensionProducts) {
  const Joules e = 0.16_W * 1.5_ms;
  EXPECT_NEAR(e.microjoules(), 240.0, 1e-9);
  const Watts p = e / 1.5_ms;
  EXPECT_NEAR(p.value(), 0.16, 1e-12);
  const Watts pi = 18.0_V * Amperes::milliamps(2.0);
  EXPECT_NEAR(pi.milliwatts(), 36.0, 1e-9);
}

TEST(Units, ClockPeriod) {
  EXPECT_NEAR((80.0_MHz).period().value(), 12.5e-9, 1e-18);
}

TEST(Units, Comparisons) {
  EXPECT_LT(75.0_us, 150.0_us);
  EXPECT_GT(1.5_ms, 999.0_us);
  EXPECT_EQ(1000.0_us, 1.0_ms);
}

TEST(Units, Accumulation) {
  Seconds acc{0.0};
  for (int i = 0; i < 10; ++i) acc += 25.0_us;
  EXPECT_NEAR(acc.micros(), 250.0, 1e-9);
  acc -= 50.0_us;
  EXPECT_NEAR(acc.micros(), 200.0, 1e-9);
}

TEST(Units, ToStringPicksSensiblePrefix) {
  EXPECT_EQ(to_string(Seconds::micros(159.3)), "159 us");
  EXPECT_EQ(to_string(Watts::milliwatts(7.5)), "7.5 mW");
  EXPECT_EQ(to_string(Volts{19.0}), "19 V");
}

TEST(Units, ThroughputConversion) {
  const BytesPerSecond bw = BytesPerSecond::mib(10.0);
  EXPECT_NEAR(bw.mib(), 10.0, 1e-12);
  EXPECT_NEAR(bw.value(), 10.0 * 1024 * 1024, 1e-6);
}

}  // namespace
}  // namespace xlf
