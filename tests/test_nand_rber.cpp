#include "src/nand/rber_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/nand/array.hpp"
#include "src/util/stats.hpp"

namespace xlf::nand {
namespace {

RberModel default_model() {
  const ArrayConfig config;
  return RberModel(config.plan, config.aging, config.ispp, config.variability,
                   config.interference);
}

TEST(RberModel, MacroLawPassThrough) {
  const RberModel model = default_model();
  const AgingLaw law;
  for (double c : {1.0, 1e4, 1e6}) {
    EXPECT_DOUBLE_EQ(model.rber(ProgramAlgorithm::kIsppSv, c),
                     law.rber(ProgramAlgorithm::kIsppSv, c));
  }
}

TEST(RberModel, OverlapRberMonotoneInSigma) {
  const RberModel model = default_model();
  double prev = 0.0;
  for (double sigma = 0.05; sigma <= 0.5; sigma += 0.05) {
    const double r =
        model.rber_from_overlap(ProgramAlgorithm::kIsppSv, Volts{sigma});
    EXPECT_GT(r, prev);
    prev = r;
  }
}

TEST(RberModel, EffectiveSigmaReproducesMacroLaw) {
  // The solved sigma plugged back into the overlap computation must
  // return the macro RBER — the calibration identity.
  const RberModel model = default_model();
  for (auto algo : {ProgramAlgorithm::kIsppSv, ProgramAlgorithm::kIsppDv}) {
    for (double c : {1.0, 1e4, 1e5, 1e6}) {
      const Volts sigma = model.effective_sigma(algo, c);
      const double reproduced = model.rber_from_overlap(algo, sigma);
      const double target = model.rber(algo, c);
      EXPECT_NEAR(reproduced / target, 1.0, 1e-3)
          << to_string(algo) << " at " << c;
    }
  }
}

TEST(RberModel, SigmaGrowsWithAgeAndDvIsTighter) {
  const RberModel model = default_model();
  for (auto algo : {ProgramAlgorithm::kIsppSv, ProgramAlgorithm::kIsppDv}) {
    EXPECT_GT(model.effective_sigma(algo, 1e6).value(),
              model.effective_sigma(algo, 1.0).value());
  }
  for (double c : {1.0, 1e5, 1e6}) {
    EXPECT_LT(model.effective_sigma(ProgramAlgorithm::kIsppDv, c).value(),
              model.effective_sigma(ProgramAlgorithm::kIsppSv, c).value());
  }
}

TEST(RberModel, PlacementTighterForDv) {
  const RberModel model = default_model();
  EXPECT_LT(model.placement_offset(ProgramAlgorithm::kIsppDv).value(),
            model.placement_offset(ProgramAlgorithm::kIsppSv).value());
  EXPECT_LT(model.placement_sigma(ProgramAlgorithm::kIsppDv).value(),
            model.placement_sigma(ProgramAlgorithm::kIsppSv).value());
}

TEST(RberModel, EffectiveFinalStepMatchesStaircasePhysics) {
  const RberModel model = default_model();
  const ArrayConfig config;
  // SV: the full Delta-ISPP.
  EXPECT_NEAR(model.effective_final_step(ProgramAlgorithm::kIsppSv).value(),
              config.ispp.v_step.value(), 1e-12);
  // DV: the bitline bias shrinks the crawl step well below the full
  // step but it stays positive.
  const double crawl =
      model.effective_final_step(ProgramAlgorithm::kIsppDv).value();
  EXPECT_LT(crawl, 0.5 * config.ispp.v_step.value());
  EXPECT_GT(crawl, 0.0);
}

TEST(RberModel, WearSigmaComposesWithPlacement) {
  // placement^2 + wear^2 ~ effective^2 (the decomposition the array
  // simulation applies).
  const RberModel model = default_model();
  for (auto algo : {ProgramAlgorithm::kIsppSv, ProgramAlgorithm::kIsppDv}) {
    const double place = model.placement_sigma(algo).value();
    const double wear = model.wear_sigma(algo, 1e5).value();
    const double eff = model.effective_sigma(algo, 1e5).value();
    EXPECT_NEAR(std::sqrt(place * place + wear * wear), eff, 0.02);
  }
}

TEST(RberModel, DistributionsMatchVoltagePlan) {
  const RberModel model = default_model();
  const ArrayConfig config;
  const LevelDistribution l0 =
      model.distribution(Level::kL0, ProgramAlgorithm::kIsppSv, 1e4);
  EXPECT_DOUBLE_EQ(l0.mean.value(), config.plan.erased_mean.value());
  for (Level level : {Level::kL1, Level::kL2, Level::kL3}) {
    const LevelDistribution d =
        model.distribution(level, ProgramAlgorithm::kIsppSv, 1e4);
    EXPECT_GT(d.mean, config.plan.verify_for(level));
    EXPECT_LT(d.mean, config.plan.verify_for(level) + Volts{0.3});
  }
}

TEST(RberModel, MonteCarloStatisticalModeMatchesLaw) {
  // The statistical array placement must reproduce the macro law
  // within Monte-Carlo tolerance (the Fig. 5 companion check).
  const ArrayConfig config;
  const RberModel model = default_model();
  struct Case {
    double cycles;
    unsigned pages;
  };
  for (const Case& c : {Case{1e5, 120}, Case{1e6, 30}}) {
    for (auto algo : {ProgramAlgorithm::kIsppSv, ProgramAlgorithm::kIsppDv}) {
      const double macro = model.rber(algo, c.cycles);
      const double measured = monte_carlo_rber(
          config, algo, c.cycles, c.pages, ProgramMode::kStatistical, 99);
      EXPECT_GT(measured, macro / 2.0) << to_string(algo) << " " << c.cycles;
      EXPECT_LT(measured, macro * 2.0) << to_string(algo) << " " << c.cycles;
    }
  }
}

TEST(RberModel, MonteCarloIsppModeWithinPhysicalTolerance) {
  // The pulse-by-pulse path carries non-Gaussian placement detail; it
  // must agree with the macro law within a small factor and preserve
  // the SV/DV ordering.
  const ArrayConfig config;
  const RberModel model = default_model();
  const double sv = monte_carlo_rber(config, ProgramAlgorithm::kIsppSv, 1e6,
                                     12, ProgramMode::kIsppSimulation, 7);
  const double dv = monte_carlo_rber(config, ProgramAlgorithm::kIsppDv, 1e6,
                                     12, ProgramMode::kIsppSimulation, 7);
  const double macro_sv = model.rber(ProgramAlgorithm::kIsppSv, 1e6);
  EXPECT_GT(sv, macro_sv / 5.0);
  EXPECT_LT(sv, macro_sv * 5.0);
  EXPECT_GT(sv, dv);  // DV strictly better
}

}  // namespace
}  // namespace xlf::nand
