#include "src/bch/generator.hpp"

#include <gtest/gtest.h>

#include "src/gf/minpoly.hpp"

namespace xlf::bch {
namespace {

TEST(Generator, KnownBch15_5_7) {
  // Classic BCH(15, 5) t = 3 generator over GF(16):
  // g(x) = x^10 + x^8 + x^5 + x^4 + x^2 + x + 1.
  const gf::Gf2m field(4);
  const gf::Gf2Poly g = generator_polynomial(field, 3);
  EXPECT_EQ(g, gf::Gf2Poly(0b10100110111));
  EXPECT_EQ(g.degree(), 10);
}

TEST(Generator, KnownBch15_7_5) {
  // BCH(15, 7) t = 2: g(x) = x^8 + x^7 + x^6 + x^4 + 1.
  const gf::Gf2m field(4);
  const gf::Gf2Poly g = generator_polynomial(field, 2);
  EXPECT_EQ(g, gf::Gf2Poly(0b111010001));
}

TEST(Generator, SingleErrorIsMinimalPolynomial) {
  // t = 1: the generator is just the minimal polynomial of alpha,
  // i.e. the field's defining polynomial — a Hamming code.
  const gf::Gf2m field(8);
  EXPECT_EQ(generator_polynomial(field, 1), gf::Gf2Poly(0x11D));
}

class GeneratorSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(GeneratorSweep, HasAllDesignedRoots) {
  const auto [m, t] = GetParam();
  const gf::Gf2m field(m);
  const gf::Gf2Poly g = generator_polynomial(field, t);
  for (unsigned i = 1; i <= 2 * t; ++i) {
    EXPECT_EQ(g.eval(field, field.alpha_pow(i)), 0u)
        << "alpha^" << i << " not a root, m=" << m << " t=" << t;
  }
}

TEST_P(GeneratorSweep, DegreeAtMostMT) {
  // deg g = sum of distinct coset sizes <= m*t; equality holds for the
  // common case of full-size cosets.
  const auto [m, t] = GetParam();
  const gf::Gf2m field(m);
  const gf::Gf2Poly g = generator_polynomial(field, t);
  EXPECT_LE(g.degree(), static_cast<long long>(m) * t);
  EXPECT_GT(g.degree(), 0);
}

TEST_P(GeneratorSweep, EqualsProductOfFactors) {
  const auto [m, t] = GetParam();
  const gf::Gf2m field(m);
  const auto factors = generator_factors(field, t);
  gf::Gf2Poly product = gf::Gf2Poly::one();
  for (const auto& f : factors) product = product * f;
  EXPECT_EQ(product, generator_polynomial(field, t));
}

TEST_P(GeneratorSweep, FactorsArePairwiseCoprime) {
  const auto [m, t] = GetParam();
  const gf::Gf2m field(m);
  const auto factors = generator_factors(field, t);
  for (std::size_t i = 0; i < factors.size(); ++i) {
    for (std::size_t j = i + 1; j < factors.size(); ++j) {
      EXPECT_EQ(gf::Gf2Poly::gcd(factors[i], factors[j]).degree(), 0);
    }
  }
}

TEST_P(GeneratorSweep, DividesXnMinus1) {
  // Every cyclic-code generator divides x^(2^m - 1) + 1.
  const auto [m, t] = GetParam();
  const gf::Gf2m field(m);
  const gf::Gf2Poly g = generator_polynomial(field, t);
  gf::Gf2Poly xn1 = gf::Gf2Poly::monomial(field.order()) + gf::Gf2Poly::one();
  EXPECT_TRUE((xn1 % g).is_zero());
}

INSTANTIATE_TEST_SUITE_P(
    SmallCodes, GeneratorSweep,
    ::testing::Values(std::make_tuple(4u, 1u), std::make_tuple(4u, 2u),
                      std::make_tuple(4u, 3u), std::make_tuple(6u, 4u),
                      std::make_tuple(8u, 2u), std::make_tuple(8u, 8u),
                      std::make_tuple(10u, 5u), std::make_tuple(13u, 8u)));

TEST(Generator, PaperScaleDegrees) {
  // GF(2^16): full cosets give deg g = 16 t for the paper's corner
  // capabilities.
  const gf::Gf2m field(16);
  EXPECT_EQ(generator_polynomial(field, 3).degree(), 48);
  EXPECT_EQ(generator_polynomial(field, 14).degree(), 224);
}

TEST(GeneratorCache, ReturnsSameObjectAndIsConsistent) {
  const gf::Gf2m field(8);
  GeneratorCache cache(field);
  const gf::Gf2Poly& a = cache.get(4);
  const gf::Gf2Poly& b = cache.get(4);
  EXPECT_EQ(&a, &b);  // cached, not rebuilt
  EXPECT_EQ(a, generator_polynomial(field, 4));
}

}  // namespace
}  // namespace xlf::bch
