#include "src/gf/minpoly.hpp"

#include <gtest/gtest.h>

#include <set>

namespace xlf::gf {
namespace {

TEST(CyclotomicCoset, KnownCosetsGf16) {
  const Gf2m field(4);
  // Modulo 15: C1 = {1,2,4,8}, C3 = {3,6,12,9}, C5 = {5,10}, C7 = {7,14,13,11}.
  EXPECT_EQ(cyclotomic_coset(field, 1),
            (std::vector<std::uint32_t>{1, 2, 4, 8}));
  EXPECT_EQ(cyclotomic_coset(field, 3),
            (std::vector<std::uint32_t>{3, 6, 9, 12}));
  EXPECT_EQ(cyclotomic_coset(field, 5),
            (std::vector<std::uint32_t>{5, 10}));
  EXPECT_EQ(cyclotomic_coset(field, 7),
            (std::vector<std::uint32_t>{7, 11, 13, 14}));
}

TEST(CyclotomicCoset, CosetOfZeroIsItself) {
  const Gf2m field(4);
  EXPECT_EQ(cyclotomic_coset(field, 0), (std::vector<std::uint32_t>{0}));
}

TEST(CyclotomicCoset, MembersShareTheSameCoset) {
  const Gf2m field(6);
  for (std::uint32_t i : {1u, 5u, 9u, 21u}) {
    const auto coset = cyclotomic_coset(field, i);
    for (std::uint32_t j : coset) {
      EXPECT_EQ(cyclotomic_coset(field, j), coset);
    }
  }
}

TEST(CyclotomicCoset, PartitionCoversEverything) {
  const Gf2m field(5);
  std::set<std::uint32_t> covered;
  for (std::uint32_t i = 0; i < field.order(); ++i) {
    for (std::uint32_t j : cyclotomic_coset(field, i)) covered.insert(j);
  }
  EXPECT_EQ(covered.size(), field.order());
}

TEST(MinimalPolynomial, RootsAreTheCoset) {
  const Gf2m field(4);
  const Gf2Poly m1 = minimal_polynomial(field, 1);
  // The defining polynomial of the field: x^4 + x + 1.
  EXPECT_EQ(m1, Gf2Poly(0x13));
  for (std::uint32_t j : cyclotomic_coset(field, 1)) {
    EXPECT_EQ(m1.eval(field, field.alpha_pow(j)), 0u);
  }
}

TEST(MinimalPolynomial, KnownGf16Minpolys) {
  const Gf2m field(4);
  // Classic table for GF(16): m3 = x^4+x^3+x^2+x+1, m5 = x^2+x+1,
  // m7 = x^4+x^3+1.
  EXPECT_EQ(minimal_polynomial(field, 3), Gf2Poly(0x1F));
  EXPECT_EQ(minimal_polynomial(field, 5), Gf2Poly(0x7));
  EXPECT_EQ(minimal_polynomial(field, 7), Gf2Poly(0x19));
}

TEST(MinimalPolynomial, DegreeEqualsCosetSize) {
  const Gf2m field(8);
  for (std::uint32_t i : {1u, 3u, 5u, 17u, 51u, 85u}) {
    const auto coset = cyclotomic_coset(field, i);
    const Gf2Poly mp = minimal_polynomial(field, i);
    EXPECT_EQ(mp.degree(), static_cast<long long>(coset.size())) << "i=" << i;
  }
}

TEST(MinimalPolynomial, AnnihilatesOnlyItsCoset) {
  const Gf2m field(6);
  const auto coset = cyclotomic_coset(field, 5);
  const Gf2Poly mp = minimal_polynomial(field, 5);
  const std::set<std::uint32_t> members(coset.begin(), coset.end());
  for (std::uint32_t j = 0; j < field.order(); ++j) {
    const Element root = field.alpha_pow(j);
    if (members.count(j)) {
      EXPECT_EQ(mp.eval(field, root), 0u) << "j=" << j;
    } else {
      EXPECT_NE(mp.eval(field, root), 0u) << "j=" << j;
    }
  }
}

TEST(MinimalPolynomial, IrreducibleOverGf2) {
  // No factor of degree >= 1 below its own degree: gcd with any lower
  // degree polynomial sharing no roots must be 1. A cheap proxy:
  // minimal polynomials of distinct cosets are coprime.
  const Gf2m field(5);
  const Gf2Poly a = minimal_polynomial(field, 1);
  const Gf2Poly b = minimal_polynomial(field, 3);
  const Gf2Poly g = Gf2Poly::gcd(a, b);
  EXPECT_EQ(g.degree(), 0);
}

TEST(MinimalPolynomial, Gf16ProductOfAllEqualsXqMinusX) {
  // prod over coset leaders of minpoly = x^15 + 1 (times x for the
  // zero element). Check x^15 - 1 factorization.
  const Gf2m field(4);
  std::set<std::uint32_t> leaders;
  for (std::uint32_t i = 0; i < field.order(); ++i) {
    leaders.insert(cyclotomic_coset(field, i).front());
  }
  Gf2Poly prod = Gf2Poly::one();
  for (std::uint32_t leader : leaders) {
    prod = prod * minimal_polynomial(field, leader);
  }
  Gf2Poly expected = Gf2Poly::monomial(15) + Gf2Poly::one();
  EXPECT_EQ(prod, expected);
}

}  // namespace
}  // namespace xlf::gf
