#include "src/nand/cell.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/nand/ispp.hpp"
#include "src/util/stats.hpp"

namespace xlf::nand {
namespace {

CellParams quiet_params() {
  CellParams params;
  params.injection_sigma = Volts{0.0};  // deterministic transfer
  return params;
}

TEST(Cell, NoTunnellingBelowOnset) {
  FloatingGateCell cell(Volts{-3.0}, quiet_params());
  Rng rng(1);
  // VCG - VTH - K = 4 - (-3) - 14 = -7: deep below onset.
  cell.apply_pulse(Volts{4.0}, rng);
  EXPECT_NEAR(cell.vth().value(), -3.0, 1e-6);
}

TEST(Cell, SlopeOneTrackingAboveOnset) {
  // In the staircase steady state VTH advances by exactly the step.
  FloatingGateCell cell(Volts{-3.0}, quiet_params());
  Rng rng(2);
  std::vector<double> history;
  for (double vcg = 14.0; vcg <= 19.0; vcg += 0.25) {
    cell.apply_pulse(Volts{vcg}, rng);
    history.push_back(cell.vth().value());
  }
  // After the onset transient, consecutive deltas equal the 250 mV step.
  for (std::size_t i = history.size() - 5; i + 1 < history.size(); ++i) {
    EXPECT_NEAR(history[i + 1] - history[i], 0.25, 0.01);
  }
}

TEST(Cell, ExpectedStepIsSoftplusOfOverdrive) {
  const FloatingGateCell cell(Volts{0.0}, quiet_params());
  // Far above onset: step ~ overdrive (slope-1 region).
  EXPECT_NEAR(cell.expected_step(Volts{20.0}).value(), 6.0, 0.02);
  // Far below onset: step ~ 0.
  EXPECT_NEAR(cell.expected_step(Volts{8.0}).value(), 0.0, 1e-4);
  // At onset: step = s ln 2.
  EXPECT_NEAR(cell.expected_step(Volts{14.0}).value(), 0.4 * std::log(2.0),
              1e-9);
}

TEST(Cell, BitlineBiasReducesStep) {
  FloatingGateCell a(Volts{1.0}, quiet_params());
  FloatingGateCell b(Volts{1.0}, quiet_params());
  Rng rng(3);
  a.apply_pulse(Volts{16.0}, rng);
  b.apply_pulse(Volts{16.0}, rng, Volts{0.7});
  EXPECT_GT(a.vth(), b.vth());
  EXPECT_GT(b.vth(), Volts{1.0});  // still programs, just slower
}

TEST(Cell, FasterCellsHaveSmallerOnset) {
  CellParams fast = quiet_params();
  fast.k_onset = Volts{13.5};
  CellParams slow = quiet_params();
  slow.k_onset = Volts{14.5};
  FloatingGateCell fast_cell(Volts{-3.0}, fast);
  FloatingGateCell slow_cell(Volts{-3.0}, slow);
  Rng rng(4);
  for (double vcg = 14.0; vcg < 16.0; vcg += 0.25) {
    fast_cell.apply_pulse(Volts{vcg}, rng);
    slow_cell.apply_pulse(Volts{vcg}, rng);
  }
  EXPECT_GT(fast_cell.vth(), slow_cell.vth());
}

TEST(Cell, InjectionNoiseScalesWithStep) {
  CellParams noisy;
  noisy.injection_sigma = Volts{0.05};
  Rng rng(5);
  RunningStats small_steps, large_steps;
  for (int trial = 0; trial < 4000; ++trial) {
    FloatingGateCell cell(Volts{0.0}, noisy);
    cell.apply_pulse(Volts{14.3}, rng);  // overdrive 0.3
    small_steps.add(cell.vth().value());
    FloatingGateCell cell2(Volts{0.0}, noisy);
    cell2.apply_pulse(Volts{17.0}, rng);  // overdrive 3.0
    large_steps.add(cell2.vth().value());
  }
  EXPECT_GT(large_steps.stddev(), small_steps.stddev());
  // sigma = 0.05 * sqrt(step): ~0.0866 for a 3 V step.
  EXPECT_NEAR(large_steps.stddev(), 0.05 * std::sqrt(3.0), 0.01);
}

TEST(Cell, EraseAndShift) {
  FloatingGateCell cell(Volts{2.0}, quiet_params());
  cell.shift(Volts{0.5});
  EXPECT_NEAR(cell.vth().value(), 2.5, 1e-12);
  cell.erase(Volts{-3.2});
  EXPECT_NEAR(cell.vth().value(), -3.2, 1e-12);
}

TEST(Cell, InhibitedCellUnaffectedByNoise) {
  // A cell far below onset must not random-walk from injection noise
  // (noise scales with the transferred charge).
  CellParams noisy;
  noisy.injection_sigma = Volts{0.10};
  FloatingGateCell cell(Volts{-3.0}, noisy);
  Rng rng(6);
  for (int i = 0; i < 100; ++i) cell.apply_pulse(Volts{5.0}, rng);
  EXPECT_NEAR(cell.vth().value(), -3.0, 1e-3);
}

}  // namespace
}  // namespace xlf::nand
