#include "src/ecc_hw/power.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace xlf::ecc_hw {
namespace {

TEST(EccPower, PaperAnchors) {
  // Section 6.3.2: ECC power relaxes "from 7 mW to 1 mW" when moving
  // from the SV end-of-life configuration (t = 65, ~34 raised locator
  // terms at RBER 1e-3) to the DV one (t ~ 14-16, ~3 errors).
  const PowerModel power{EccHwConfig{}};
  const double sv_eol = power.decode_power(65, 33.8).milliwatts();
  const double dv_eol = power.decode_power(14, 3.3).milliwatts();
  EXPECT_NEAR(sv_eol, 7.0, 1.0);
  EXPECT_NEAR(dv_eol, 1.0, 0.7);
  EXPECT_GT(sv_eol / dv_eol, 4.0);
}

TEST(EccPower, DecodeEnergyMonotoneInT) {
  const PowerModel power{EccHwConfig{}};
  double prev = 0.0;
  for (unsigned t = 3; t <= 65; t += 2) {
    const double e = power.decode_energy(t, t).value();
    EXPECT_GT(e, prev) << "t=" << t;
    prev = e;
  }
}

TEST(EccPower, ChienActivityTracksErrorLoad) {
  // Clock-gated locator terms: more actual errors, more switching.
  const PowerModel power{EccHwConfig{}};
  const double light = power.decode_energy(65, 1.0).value();
  const double heavy = power.decode_energy(65, 60.0).value();
  EXPECT_GT(heavy, light * 2.0);
}

TEST(EccPower, ErrorLoadCappedAtT) {
  // The locator degree cannot exceed t, so energy saturates there.
  const PowerModel power{EccHwConfig{}};
  EXPECT_DOUBLE_EQ(power.decode_energy(10, 10.0).value(),
                   power.decode_energy(10, 500.0).value());
}

TEST(EccPower, EncodeEnergyGrowsWithT) {
  // Wider parity register switching.
  const PowerModel power{EccHwConfig{}};
  EXPECT_GT(power.encode_energy(65).value(), power.encode_energy(3).value());
}

TEST(EccPower, EncodePowerWellBelowDecodePower) {
  const PowerModel power{EccHwConfig{}};
  EXPECT_LT(power.encode_power(65).value(),
            power.decode_power(65, 33.8).value());
}

TEST(EccPower, CleanDecodeCostsLessThanDirty) {
  const PowerModel power{EccHwConfig{}};
  EXPECT_LT(power.decode_energy(30, 0.0).value(),
            power.decode_energy(30, 15.0).value());
}

TEST(EccPower, RejectsInvalidArguments) {
  const PowerModel power{EccHwConfig{}};
  EXPECT_THROW(power.decode_energy(2, 1.0), std::invalid_argument);
  EXPECT_THROW(power.decode_energy(10, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace xlf::ecc_hw
