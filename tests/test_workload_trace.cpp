// Trace-replay round trip: a recorded request stream serialised to
// text and replayed through the Workload interface must reproduce
// addresses, op mix and think-time gaps exactly — bit-for-bit on the
// gap doubles.
#include "src/sim/workload.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace xlf::sim {
namespace {

nand::Geometry test_geometry() {
  nand::Geometry geometry;
  geometry.blocks = 4;
  geometry.pages_per_block = 8;
  return geometry;
}

void expect_identical(const std::vector<Request>& a,
                      const std::vector<Request>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].type, b[i].type) << "request " << i;
    EXPECT_EQ(a[i].addr, b[i].addr) << "request " << i;
    // Bit-exact: gaps survive the text round trip unchanged.
    EXPECT_EQ(a[i].gap.value(), b[i].gap.value()) << "request " << i;
  }
}

TEST(TraceRoundTrip, EveryWorkloadSurvivesTextSerialisation) {
  const nand::Geometry geometry = test_geometry();
  std::vector<std::unique_ptr<Workload>> workloads;
  workloads.push_back(std::make_unique<SequentialReadWorkload>());
  workloads.push_back(std::make_unique<RandomReadWorkload>());
  workloads.push_back(std::make_unique<WriteBurstWorkload>());
  workloads.push_back(std::make_unique<MixedWorkload>(0.6));
  workloads.push_back(std::make_unique<MultimediaStreamingWorkload>(
      BytesPerSecond::mib(8.0)));

  for (const auto& workload : workloads) {
    const std::vector<Request> recorded =
        record_trace(*workload, geometry, 64, 0xF00D);
    const std::string text = trace_to_text(recorded);
    const std::vector<Request> parsed = trace_from_text(text);
    SCOPED_TRACE(workload->name());
    expect_identical(recorded, parsed);

    // Replay through the Workload interface reproduces the stream.
    const TraceReplayWorkload replay(parsed);
    const std::vector<Request> replayed =
        record_trace(replay, geometry, 64, /*seed (unused)=*/1);
    expect_identical(recorded, replayed);
  }
}

TEST(TraceRoundTrip, GapsRoundTripBitExactly) {
  // Awkward doubles: subnormal-ish, repeating binary fractions, and
  // values with all 17 significant digits in play.
  std::vector<Request> trace;
  for (double gap : {0.0, 1.0 / 3.0, 4.9406564584124654e-324,
                     1.2345678901234567e-5, 0.1}) {
    trace.push_back({OpType::kRead, {1, 2}, Seconds{gap}});
  }
  const std::vector<Request> parsed = trace_from_text(trace_to_text(trace));
  expect_identical(trace, parsed);
}

TEST(TraceRoundTrip, ReplayCapsAtCountAndChecksGeometry) {
  const nand::Geometry geometry = test_geometry();
  const std::vector<Request> recorded =
      record_trace(RandomReadWorkload{}, geometry, 16, 3);
  const TraceReplayWorkload replay(recorded);
  Rng rng(0);
  EXPECT_EQ(replay.generate(geometry, 5, rng).size(), 5u);
  EXPECT_EQ(replay.generate(geometry, 100, rng).size(), 16u);
  EXPECT_EQ(replay.size(), 16u);

  // A trace addressing outside the geometry is rejected at replay.
  nand::Geometry tiny = geometry;
  tiny.blocks = 1;
  EXPECT_THROW(replay.generate(tiny, 16, rng), std::invalid_argument);
}

TEST(TraceRoundTrip, MalformedTextRejected) {
  EXPECT_THROW(trace_from_text("X 1 2 0.0\n"), std::invalid_argument);
  EXPECT_THROW(trace_from_text("R 1\n"), std::invalid_argument);
  // Blank lines are tolerated (trailing newline artefacts).
  EXPECT_TRUE(trace_from_text("\n\n").empty());
}

}  // namespace
}  // namespace xlf::sim
