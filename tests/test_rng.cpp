#include "src/util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "src/util/stats.hpp"

namespace xlf {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.stddev(), std::sqrt(1.0 / 12.0), 0.01);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  EXPECT_THROW(rng.below(0), std::invalid_argument);
}

TEST(Rng, BelowCoversRange) {
  Rng rng(17);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 80000; ++i) ++counts[rng.below(8)];
  for (int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(19);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.gaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.01);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.01);
}

TEST(Rng, GaussianScaled) {
  Rng rng(23);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.gaussian(3.3, 0.25));
  EXPECT_NEAR(stats.mean(), 3.3, 0.01);
  EXPECT_NEAR(stats.stddev(), 0.25, 0.01);
  EXPECT_THROW(rng.gaussian(0.0, -1.0), std::invalid_argument);
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(29);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (rng.chance(0.125)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.125, 0.01);
  EXPECT_THROW(rng.chance(1.5), std::invalid_argument);
}

TEST(Rng, PoissonSmallLambda) {
  Rng rng(31);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.add(static_cast<double>(rng.poisson(2.5)));
  }
  EXPECT_NEAR(stats.mean(), 2.5, 0.05);
  EXPECT_NEAR(stats.variance(), 2.5, 0.1);
}

TEST(Rng, PoissonLargeLambdaUsesNormalApprox) {
  Rng rng(37);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.add(static_cast<double>(rng.poisson(100.0)));
  }
  EXPECT_NEAR(stats.mean(), 100.0, 1.0);
  EXPECT_NEAR(stats.stddev(), 10.0, 0.5);
}

TEST(Rng, PoissonZeroLambda) {
  Rng rng(41);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, PoissonNegativeNormalDrawClampsToZero) {
  // Adversarial seed (found by search): the first Box-Muller draw is
  // -5.58 sigma, so the normal-approximation branch at lambda = 30
  // produces a negative double. Casting that to uint64_t is undefined
  // behaviour; the clamp must return 0 instead (the sanitizer CI job
  // guards the cast itself).
  Rng rng(18526159);
  EXPECT_EQ(rng.poisson(30.0), 0u);
}

TEST(Rng, PoissonHugeLambdaSaturatesInsteadOfOverflowing) {
  // lambda = 2e19 exceeds 2^64 - 1, so every normal-approximation draw
  // lies beyond the uint64_t range; the unchecked cast was undefined
  // behaviour. The draw must saturate, not wrap or trap.
  Rng rng(47);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.poisson(2e19), ~0ull);
  }
}

TEST(Rng, PoissonLargeLambdaStaysNearMeanAcrossSeeds) {
  // Regression sweep over many seeds at a lambda deep in the
  // normal-approximation branch: every draw must stay a plausible
  // count (mean +/- 8 sigma), never an overflow artifact.
  const double lambda = 1e6;
  const double sigma = 1000.0;
  for (std::uint64_t seed = 0; seed < 3000; ++seed) {
    Rng rng(seed);
    const std::uint64_t draw = rng.poisson(lambda);
    EXPECT_GT(draw, static_cast<std::uint64_t>(lambda - 8 * sigma));
    EXPECT_LT(draw, static_cast<std::uint64_t>(lambda + 8 * sigma));
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(43);
  Rng child = parent.fork();
  // The child stream must differ from the parent's continuation.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next() == child.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace xlf
