#include "src/gf/gf2_poly.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/util/rng.hpp"

namespace xlf::gf {
namespace {

Gf2Poly random_poly(Rng& rng, std::size_t max_degree) {
  Gf2Poly p;
  const std::size_t deg = static_cast<std::size_t>(rng.below(max_degree + 1));
  for (std::size_t i = 0; i <= deg; ++i) p.set_coeff(i, rng.chance(0.5));
  return p;
}

TEST(Gf2Poly, ZeroAndOne) {
  EXPECT_TRUE(Gf2Poly::zero().is_zero());
  EXPECT_EQ(Gf2Poly::zero().degree(), -1);
  EXPECT_EQ(Gf2Poly::one().degree(), 0);
  EXPECT_EQ(Gf2Poly::monomial(5).degree(), 5);
  EXPECT_EQ(Gf2Poly::monomial(5).weight(), 1u);
}

TEST(Gf2Poly, BitPatternConstructor) {
  const Gf2Poly p(0x13);  // x^4 + x + 1
  EXPECT_EQ(p.degree(), 4);
  EXPECT_TRUE(p.coeff(0));
  EXPECT_TRUE(p.coeff(1));
  EXPECT_FALSE(p.coeff(2));
  EXPECT_FALSE(p.coeff(3));
  EXPECT_TRUE(p.coeff(4));
  EXPECT_EQ(p.weight(), 3u);
}

TEST(Gf2Poly, AdditionIsXor) {
  const Gf2Poly a(0b1101);
  const Gf2Poly b(0b0111);
  const Gf2Poly sum = a + b;
  EXPECT_EQ(sum, Gf2Poly(0b1010));
  EXPECT_TRUE((a + a).is_zero());
}

TEST(Gf2Poly, MultiplicationKnownProduct) {
  // (x + 1)(x + 1) = x^2 + 1 over GF(2).
  const Gf2Poly x1(0b11);
  EXPECT_EQ(x1 * x1, Gf2Poly(0b101));
  // (x^2 + x + 1)(x + 1) = x^3 + 1.
  EXPECT_EQ(Gf2Poly(0b111) * Gf2Poly(0b11), Gf2Poly(0b1001));
}

TEST(Gf2Poly, MultiplicationByZeroAndOne) {
  Rng rng(1);
  const Gf2Poly p = random_poly(rng, 100);
  EXPECT_TRUE((p * Gf2Poly::zero()).is_zero());
  EXPECT_EQ(p * Gf2Poly::one(), p);
}

TEST(Gf2Poly, MultiplicationCommutesAndAssociates) {
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const Gf2Poly a = random_poly(rng, 60);
    const Gf2Poly b = random_poly(rng, 60);
    const Gf2Poly c = random_poly(rng, 60);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
  }
}

TEST(Gf2Poly, DegreeOfProductAdds) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    Gf2Poly a = random_poly(rng, 40);
    Gf2Poly b = random_poly(rng, 40);
    if (a.is_zero() || b.is_zero()) continue;
    EXPECT_EQ((a * b).degree(), a.degree() + b.degree());
  }
}

TEST(Gf2Poly, DivModReconstructs) {
  Rng rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    const Gf2Poly a = random_poly(rng, 200);
    Gf2Poly d = random_poly(rng, 50);
    if (d.is_zero()) d = Gf2Poly::one();
    const auto [q, r] = a.divmod(d);
    EXPECT_EQ(q * d + r, a);
    if (!r.is_zero()) {
      EXPECT_LT(r.degree(), d.degree());
    }
  }
}

TEST(Gf2Poly, DivisionByZeroThrows) {
  EXPECT_THROW(Gf2Poly(0b101).divmod(Gf2Poly::zero()), std::invalid_argument);
}

TEST(Gf2Poly, ModuloOfMultipleIsZero) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const Gf2Poly a = random_poly(rng, 40);
    Gf2Poly d = random_poly(rng, 20);
    if (d.is_zero()) d = Gf2Poly(0b11);
    EXPECT_TRUE(((a * d) % d).is_zero());
  }
}

TEST(Gf2Poly, ShiftMatchesMonomialMultiply) {
  Rng rng(6);
  for (int trial = 0; trial < 30; ++trial) {
    const Gf2Poly p = random_poly(rng, 100);
    const std::size_t e = static_cast<std::size_t>(rng.below(150));
    EXPECT_EQ(p.shifted(e), p * Gf2Poly::monomial(e));
  }
}

TEST(Gf2Poly, EvalOverField) {
  const Gf2m field(4);
  // p(x) = x^4 + x + 1 is the field's defining polynomial, so
  // p(alpha) = 0.
  const Gf2Poly p(0x13);
  EXPECT_EQ(p.eval(field, field.alpha_pow(1)), 0u);
  // p(0) = constant term = 1; p(1) = weight mod 2 = 1.
  EXPECT_EQ(p.eval(field, 0), 1u);
  EXPECT_EQ(p.eval(field, 1), 1u);
}

TEST(Gf2Poly, EvalIsRingHomomorphism) {
  const Gf2m field(8);
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const Gf2Poly a = random_poly(rng, 30);
    const Gf2Poly b = random_poly(rng, 30);
    const Element x = static_cast<Element>(rng.below(field.size()));
    EXPECT_EQ((a + b).eval(field, x),
              Gf2m::add(a.eval(field, x), b.eval(field, x)));
    EXPECT_EQ((a * b).eval(field, x),
              field.mul(a.eval(field, x), b.eval(field, x)));
  }
}

TEST(Gf2Poly, DerivativeDropsEvenTerms) {
  // d/dx (x^5 + x^4 + x^3 + x + 1) = 5x^4 + 4x^3 + 3x^2 + 1
  //                                = x^4 + x^2 + 1 over GF(2).
  const Gf2Poly p(0b111011);
  EXPECT_EQ(p.derivative(), Gf2Poly(0b10101));
  EXPECT_TRUE(Gf2Poly(0b10101).derivative().is_zero());  // even-only
}

TEST(Gf2Poly, GcdOfMultiples) {
  const Gf2Poly g(0b111);  // x^2 + x + 1 (irreducible)
  const Gf2Poly a = g * Gf2Poly(0b1011);
  const Gf2Poly b = g * Gf2Poly(0b1101);
  const Gf2Poly d = Gf2Poly::gcd(a, b);
  // gcd must be divisible by g and divide both.
  EXPECT_TRUE((d % g).is_zero());
  EXPECT_TRUE((a % d).is_zero());
  EXPECT_TRUE((b % d).is_zero());
}

TEST(Gf2Poly, ToStringReadable) {
  EXPECT_EQ(Gf2Poly(0b10011).to_string(), "x^4 + x + 1");
  EXPECT_EQ(Gf2Poly::zero().to_string(), "0");
  EXPECT_EQ(Gf2Poly::one().to_string(), "1");
  EXPECT_EQ(Gf2Poly(0b10).to_string(), "x");
}

TEST(Gf2Poly, CrossWordBoundaryOperations) {
  // Exercise degrees spanning multiple 64-bit words.
  Gf2Poly p = Gf2Poly::monomial(200) + Gf2Poly::monomial(64) + Gf2Poly::one();
  EXPECT_EQ(p.degree(), 200);
  EXPECT_EQ(p.weight(), 3u);
  const Gf2Poly shifted = p.shifted(63);
  EXPECT_EQ(shifted.degree(), 263);
  EXPECT_TRUE(shifted.coeff(63));
  EXPECT_TRUE(shifted.coeff(127));
  EXPECT_TRUE(shifted.coeff(263));
  EXPECT_EQ(shifted.weight(), 3u);
}

}  // namespace
}  // namespace xlf::gf
