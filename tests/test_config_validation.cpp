// Constructor validation must teach the fix: geometry/configuration
// errors out of Ftl and DieAllocator name the offending field and its
// value, not a bare invariant condition.
#include <gtest/gtest.h>

#include "src/ftl/ssd.hpp"
#include "src/policy/registry.hpp"

namespace xlf::ftl {
namespace {

std::string construction_error(const SsdConfig& config) {
  try {
    Ssd ssd(config);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

SsdConfig small_config() {
  SsdConfig config;
  config.topology = {1, 1};
  config.die.device.array.geometry.blocks = 8;
  config.die.device.array.geometry.pages_per_block = 4;
  return config;
}

TEST(FtlValidation, LogicalFractionErrorNamesFieldValueAndRemedy) {
  SsdConfig config = small_config();
  config.ftl.logical_fraction = 0.95;
  const std::string what = construction_error(config);
  EXPECT_NE(what.find("logical_fraction=0.95"), std::string::npos) << what;
  EXPECT_NE(what.find("gc_free_blocks+2=3"), std::string::npos) << what;
  EXPECT_NE(what.find("pages_per_block=4"), std::string::npos) << what;
}

TEST(FtlValidation, OutOfRangeLogicalFractionNamesBound) {
  SsdConfig config = small_config();
  config.ftl.logical_fraction = 1.5;
  const std::string what = construction_error(config);
  EXPECT_NE(what.find("logical_fraction=1.5"), std::string::npos) << what;
  EXPECT_NE(what.find("(0, 1)"), std::string::npos) << what;
}

TEST(FtlValidation, GcFreeBlocksErrorNamesFieldAndValue) {
  SsdConfig config = small_config();
  config.ftl.gc_free_blocks = 0;
  const std::string what = construction_error(config);
  EXPECT_NE(what.find("gc_free_blocks=0"), std::string::npos) << what;
}

TEST(FtlValidation, PeCyclesPerEraseErrorNamesFieldAndValue) {
  SsdConfig config = small_config();
  config.ftl.pe_cycles_per_erase = 0.5;
  const std::string what = construction_error(config);
  EXPECT_NE(what.find("pe_cycles_per_erase=0.5"), std::string::npos) << what;
}

TEST(FtlValidation, SlackErrorNamesGeometry) {
  SsdConfig config = small_config();
  config.ftl.gc_free_blocks = 6;  // slack = 8 blocks; die has only 8
  const std::string what = construction_error(config);
  EXPECT_NE(what.find("blocks=8"), std::string::npos) << what;
  EXPECT_NE(what.find("gc_free_blocks=6"), std::string::npos) << what;
}

TEST(FtlValidation, UnknownPolicyNamesFailConstructionListingRegistered) {
  SsdConfig config = small_config();
  config.ftl.gc_policy = "lifo";
  const std::string what = construction_error(config);
  EXPECT_NE(what.find("unknown gc policy 'lifo'"), std::string::npos) << what;
  EXPECT_NE(what.find("greedy"), std::string::npos) << what;
}

TEST(AllocatorValidation, ErrorsNameFieldAndValue) {
  const auto wear =
      policy::PolicyRegistry<policy::WearPolicy>::instance().make_shared(
          "none");
  try {
    DieAllocator alloc(AllocatorConfig{2, 4, wear});
    FAIL() << "2 blocks must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("blocks=2"), std::string::npos)
        << e.what();
  }
  try {
    DieAllocator alloc(AllocatorConfig{4, 0, wear});
    FAIL() << "0 pages per block must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("pages_per_block=0"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace xlf::ftl
