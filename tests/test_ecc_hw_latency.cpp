#include "src/ecc_hw/latency.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace xlf::ecc_hw {
namespace {

EccHwConfig paper_config() { return EccHwConfig{}; }  // defaults = paper

TEST(Latency, EncodeIsIndependentOfT) {
  // Section 4: "The encoding latency is therefore not influenced by
  // the selected correction capability."
  const LatencyModel model(paper_config());
  const auto cycles = model.encode_cycles();
  EXPECT_EQ(cycles, 32768ull / 8ull + 4ull);
  // Nothing about encode_cycles takes t; the latency must sit at
  // ~51 us at 80 MHz.
  EXPECT_NEAR(model.encode_latency().micros(), 51.25, 0.01);
}

TEST(Latency, DecodeCyclesComposeFromStages) {
  const LatencyModel model(paper_config());
  for (unsigned t : {3u, 14u, 30u, 65u}) {
    EXPECT_EQ(model.decode_cycles(t),
              model.syndrome_cycles(t) + model.berlekamp_massey_cycles(t) +
                  model.chien_cycles(t) + 12);
  }
}

TEST(Latency, PaperEnvelopeAt80MHz) {
  // Fig. 8: decode between ~103 us (t=3) and ~159 us (t=65); the text
  // quotes ~150 us against the 75 us page read.
  const LatencyModel model(paper_config());
  EXPECT_NEAR(model.decode_latency(3).micros(), 103.0, 1.0);
  EXPECT_NEAR(model.decode_latency(65).micros(), 159.4, 1.0);
  EXPECT_GT(model.decode_latency(65).micros(), 150.0);
  EXPECT_LT(model.decode_latency(65).micros(), 165.0);
  // DV end-of-life capability keeps decode nearly flat.
  EXPECT_LT(model.decode_latency(14).micros(), 110.0);
}

TEST(Latency, DecodeMonotoneInT) {
  const LatencyModel model(paper_config());
  unsigned long long prev = 0;
  for (unsigned t = 3; t <= 65; ++t) {
    const auto cycles = model.decode_cycles(t);
    EXPECT_GT(cycles, prev) << "t=" << t;
    prev = cycles;
  }
}

TEST(Latency, SyndromeScalesWithCodewordAndParallelism) {
  EccHwConfig narrow = paper_config();
  narrow.lfsr_parallelism = 4;
  EccHwConfig wide = paper_config();
  wide.lfsr_parallelism = 16;
  const LatencyModel narrow_model(narrow);
  const LatencyModel wide_model(wide);
  // 4x parallelism difference => ~4x syndrome cycles difference.
  const double ratio =
      static_cast<double>(narrow_model.syndrome_cycles(10)) /
      static_cast<double>(wide_model.syndrome_cycles(10));
  EXPECT_NEAR(ratio, 4.0, 0.1);
}

TEST(Latency, ChienScalesWithParallelism) {
  EccHwConfig slow = paper_config();
  slow.chien_parallelism = 1;
  EccHwConfig fast = paper_config();
  fast.chien_parallelism = 8;
  const LatencyModel slow_model(slow);
  const LatencyModel fast_model(fast);
  EXPECT_NEAR(static_cast<double>(slow_model.chien_cycles(20)) /
                  static_cast<double>(fast_model.chien_cycles(20)),
              8.0, 0.01);
}

TEST(Latency, AlignmentOnlyWhenParityMisaligned) {
  // r = 16 t with p = 8 is always aligned.
  const LatencyModel aligned(paper_config());
  EXPECT_EQ(aligned.alignment_cycles(7), 0ull);
  // p = 32: r = 16*t misaligns for odd t.
  EccHwConfig cfg = paper_config();
  cfg.lfsr_parallelism = 32;
  const LatencyModel misaligned(cfg);
  EXPECT_EQ(misaligned.alignment_cycles(4), 0ull);
  EXPECT_EQ(misaligned.alignment_cycles(5), 16ull);
}

TEST(Latency, BerlekampMasseyQuadraticInT) {
  const LatencyModel model(paper_config());
  EXPECT_EQ(model.berlekamp_massey_cycles(3), 12ull);
  EXPECT_EQ(model.berlekamp_massey_cycles(65), 65ull * 66ull);
}

TEST(Latency, CleanPageSkipsLocatorStages) {
  const LatencyModel model(paper_config());
  for (unsigned t : {3u, 65u}) {
    EXPECT_LT(model.decode_cycles_clean(t), model.decode_cycles(t));
    EXPECT_EQ(model.decode_cycles_clean(t), model.syndrome_cycles(t) + 4);
  }
}

TEST(Latency, ExpectedLatencyInterpolatesCleanAndDirty) {
  const LatencyModel model(paper_config());
  const Seconds clean = model.decode_latency_clean(10);
  const Seconds dirty = model.decode_latency(10);
  // Near-zero RBER: expected ~ clean. High RBER: expected ~ dirty.
  EXPECT_NEAR(model.expected_decode_latency(10, 1e-12).value(), clean.value(),
              1e-9);
  EXPECT_NEAR(model.expected_decode_latency(10, 1e-2).value(), dirty.value(),
              1e-9);
  const Seconds mid = model.expected_decode_latency(10, 1e-5);
  EXPECT_GT(mid, clean);
  EXPECT_LT(mid, dirty);
}

TEST(Latency, RejectsOutOfRangeT) {
  const LatencyModel model(paper_config());
  EXPECT_THROW(model.decode_latency(2), std::invalid_argument);
  EXPECT_THROW(model.decode_latency(66), std::invalid_argument);
}

TEST(Latency, RejectsInvalidConfigs) {
  EccHwConfig bad = paper_config();
  bad.lfsr_parallelism = 0;
  EXPECT_THROW(LatencyModel{bad}, std::invalid_argument);
  bad = paper_config();
  bad.t_min = 0;
  EXPECT_THROW(LatencyModel{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace xlf::ecc_hw
