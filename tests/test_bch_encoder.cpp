#include "src/bch/encoder.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/bch/generator.hpp"
#include "src/util/rng.hpp"

namespace xlf::bch {
namespace {

BitVec random_message(std::uint32_t k, Rng& rng) {
  BitVec msg(k);
  for (std::uint32_t i = 0; i < k; ++i) msg.set(i, rng.chance(0.5));
  return msg;
}

TEST(Encoder, KnownBch15_5_CodewordIsMultipleOfGenerator) {
  const gf::Gf2m field(4);
  const gf::Gf2Poly g = generator_polynomial(field, 3);  // deg 10
  const CodeParams params{4, 5, 3, 10};
  const Encoder encoder(params, g);
  EXPECT_FALSE(encoder.byte_accelerated());

  Rng rng(1);
  for (int trial = 0; trial < 32; ++trial) {
    const BitVec msg = random_message(5, rng);
    const BitVec cw = encoder.encode(msg);
    ASSERT_EQ(cw.size(), 15u);
    // Codeword as polynomial must be divisible by g.
    gf::Gf2Poly c;
    for (std::size_t i = 0; i < cw.size(); ++i) {
      if (cw.get(i)) c.set_coeff(i, true);
    }
    EXPECT_TRUE((c % g).is_zero());
  }
}

TEST(Encoder, SystematicLayout) {
  const gf::Gf2m field(8);
  const gf::Gf2Poly g = generator_polynomial(field, 2);  // deg 16
  const CodeParams params{8, 64, 2};                     // r = 16, n = 80
  const Encoder encoder(params, g);
  Rng rng(2);
  const BitVec msg = random_message(64, rng);
  const BitVec cw = encoder.encode(msg);
  // Message occupies bits [r, n) untouched.
  for (std::uint32_t i = 0; i < 64; ++i) {
    EXPECT_EQ(cw.get(16 + i), msg.get(i));
  }
  EXPECT_EQ(encoder.extract_message(cw), msg);
}

TEST(Encoder, ByteFastPathMatchesReference) {
  // m = 8, t = 2: r = deg g = 16, byte-aligned with k = 512.
  const gf::Gf2m field(8);
  const gf::Gf2Poly g = generator_polynomial(field, 2);
  const CodeParams params{8, 96, 2};
  const Encoder encoder(params, g);
  EXPECT_TRUE(encoder.byte_accelerated());
  Rng rng(3);
  for (int trial = 0; trial < 64; ++trial) {
    const BitVec msg = random_message(96, rng);
    EXPECT_EQ(encoder.parity(msg), encoder.parity_reference(msg));
  }
}

TEST(Encoder, BitSerialPathMatchesReference) {
  // m = 6, t = 3: deg g = 6+6+6 = 18? depends on cosets; use explicit.
  const gf::Gf2m field(6);
  const gf::Gf2Poly g = generator_polynomial(field, 3);
  const auto deg = static_cast<std::uint32_t>(g.degree());
  const CodeParams params{6, 40, 3, deg};
  const Encoder encoder(params, g);
  EXPECT_FALSE(encoder.byte_accelerated());
  Rng rng(4);
  for (int trial = 0; trial < 64; ++trial) {
    const BitVec msg = random_message(40, rng);
    EXPECT_EQ(encoder.parity(msg), encoder.parity_reference(msg));
  }
}

TEST(Encoder, ArchitectedParityWiderThanGenerator) {
  // Force r > deg g: the remainder must then be of m(x) x^r, not
  // m(x) x^deg(g) — verified against the polynomial reference.
  const gf::Gf2m field(6);
  const gf::Gf2Poly g = generator_polynomial(field, 2);  // deg 12
  const CodeParams params{6, 16, 2, 20};                 // r = 20 > 12
  const Encoder encoder(params, g);
  Rng rng(5);
  for (int trial = 0; trial < 32; ++trial) {
    const BitVec msg = random_message(16, rng);
    EXPECT_EQ(encoder.parity(msg), encoder.parity_reference(msg));
  }
}

TEST(Encoder, PaperScaleByteAccelerated) {
  // GF(2^16), 4 KB page, t = 8 (kept modest to bound generator
  // construction time in unit tests; t = 65 is covered in the
  // integration suite).
  const gf::Gf2m field(16);
  const gf::Gf2Poly g = generator_polynomial(field, 8);
  const CodeParams params{16, 32768, 8};
  const Encoder encoder(params, g);
  EXPECT_TRUE(encoder.byte_accelerated());
  Rng rng(6);
  const BitVec msg = random_message(32768, rng);
  const BitVec parity = encoder.parity(msg);
  EXPECT_EQ(parity, encoder.parity_reference(msg));
  EXPECT_EQ(parity.size(), 128u);
}

TEST(Encoder, ZeroMessageHasZeroParity) {
  const gf::Gf2m field(8);
  const gf::Gf2Poly g = generator_polynomial(field, 3);
  const Encoder encoder(CodeParams{8, 64, 3}, g);
  const BitVec zero(64);
  EXPECT_EQ(encoder.parity(zero).popcount(), 0u);
}

TEST(Encoder, LinearityOfParity) {
  // parity(a ^ b) = parity(a) ^ parity(b): the code is linear.
  const gf::Gf2m field(8);
  const gf::Gf2Poly g = generator_polynomial(field, 4);
  const Encoder encoder(CodeParams{8, 128, 4}, g);
  Rng rng(7);
  for (int trial = 0; trial < 32; ++trial) {
    const BitVec a = random_message(128, rng);
    const BitVec b = random_message(128, rng);
    BitVec ab = a;
    ab ^= b;
    BitVec pa = encoder.parity(a);
    pa ^= encoder.parity(b);
    EXPECT_EQ(encoder.parity(ab), pa);
  }
}

TEST(Encoder, RejectsWrongMessageLength) {
  const gf::Gf2m field(8);
  const gf::Gf2Poly g = generator_polynomial(field, 2);
  const Encoder encoder(CodeParams{8, 64, 2}, g);
  EXPECT_THROW(encoder.parity(BitVec(63)), std::invalid_argument);
  EXPECT_THROW(encoder.extract_message(BitVec(10)), std::invalid_argument);
}

TEST(Encoder, RejectsGeneratorWiderThanParity) {
  const gf::Gf2m field(8);
  const gf::Gf2Poly g = generator_polynomial(field, 3);  // deg 24
  EXPECT_THROW(Encoder(CodeParams{8, 64, 3, 16}, g), std::invalid_argument);
}

}  // namespace
}  // namespace xlf::bch
