// xlf::Stopwatch — the repo's single sanctioned wall-clock reader
// (src/util/stopwatch.hpp). The interesting property is not precision
// but monotonicity and the reset contract: elapsed time never goes
// negative, never shrinks while the watch runs, and reset() restarts
// the measurement from (near) zero.
#include "src/util/stopwatch.hpp"

#include <gtest/gtest.h>

namespace xlf {
namespace {

TEST(Stopwatch, ElapsedIsNonNegativeAndMonotonic) {
  const Stopwatch watch;
  const double first = watch.elapsed_seconds();
  EXPECT_GE(first, 0.0);
  // Burn a little time; steady_clock guarantees the second read is not
  // earlier than the first.
  volatile unsigned sink = 0;
  for (unsigned i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(watch.elapsed_seconds(), first);
}

TEST(Stopwatch, ResetRestartsTheMeasurement) {
  const Stopwatch outer;
  Stopwatch watch;
  volatile unsigned sink = 0;
  for (unsigned i = 0; i < 100000; ++i) sink = sink + i;
  watch.reset();
  // `watch` now measures from a later origin than `outer`, and `outer`
  // is read after `watch`: its reading must be at least as large, no
  // matter how the scheduler stretches the gaps.
  const double after = watch.elapsed_seconds();
  EXPECT_GE(after, 0.0);
  EXPECT_GE(outer.elapsed_seconds(), after);
}

}  // namespace
}  // namespace xlf
