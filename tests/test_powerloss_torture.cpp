// Seeded randomized power-loss torture: a (workload seed x kill
// point) matrix drives a mixed write/trim/flush/read stream against
// the FTL, cuts power at event indices spread across the run AND at
// targeted fault windows (mid host program, mid GC relocation, mid
// flush), then remounts over the surviving NAND and audits:
//  (a) every acknowledged write reads back bit-true (writes are
//      write-through durable: data + OOB land in one program, so
//      "acked before the last completed flush" is implied a fortiori);
//  (b) the rebuilt state passes the full cross-structure consistency
//      audit, stays serviceable, and a subsequent clean shutdown
//      rebuilds exactly;
//  (c) trimmed LPAs obey the durability contract — flushed tombstones
//      never resurrect, unflushed ones may only resurrect a
//      previously acknowledged payload (advisory deallocate);
//  (d) the whole matrix is bit-deterministic across thread counts
//      (every cell digested, digests compared between a 1-thread and
//      a multi-thread execution of the same matrix).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/ftl/fault.hpp"
#include "src/ftl/ssd.hpp"
#include "src/util/rng.hpp"
#include "src/util/thread_pool.hpp"

namespace xlf::ftl {
namespace {

constexpr std::size_t kSeeds = 8;
constexpr std::size_t kOps = 144;        // ops before the kill window
constexpr std::size_t kPostOps = 24;     // ops after the crash remount
constexpr double kKillFractions[] = {0.2, 0.5, 0.85};
constexpr FaultPoint kKillPoints[] = {FaultPoint::kMidHostProgram,
                                      FaultPoint::kMidGcProgram,
                                      FaultPoint::kMidFlush};
// Cells per seed: crash-free + the event-index kills + the targeted
// fault-window kills.
constexpr std::size_t kCells =
    1 + std::size(kKillFractions) + std::size(kKillPoints);

SsdConfig torture_ssd() {
  SsdConfig config;
  config.topology = {2, 1};
  config.die.device.array.geometry.blocks = 8;
  config.die.device.array.geometry.pages_per_block = 4;
  config.initial_pe_cycles = 1e4;
  config.ftl.pe_cycles_per_erase = 3e4;
  return config;
}

BitVec pattern(std::uint32_t bits, std::uint64_t key) {
  BitVec data(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    if (((key >> (i % 64)) ^ (i / 64)) & 1u) data.set(i, true);
  }
  return data;
}

struct Op {
  enum Kind { kWrite, kTrim, kFlush, kRead } kind;
  Lpa lpa = 0;
  std::uint64_t key = 0;  // payload pattern for writes
};

// The seed fully determines the op stream: 60% writes, 15% trims,
// 10% flushes, 15% reads over a uniformly random LPA.
std::vector<Op> make_ops(std::uint32_t logical, std::uint64_t seed,
                         std::size_t count) {
  Rng rng(0x704E5EEDull ^ (seed * 0x9E3779B97F4A7C15ull));
  std::vector<Op> ops;
  ops.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Op op;
    const double roll = rng.uniform();
    op.lpa = static_cast<Lpa>(rng.below(logical));
    op.key = rng.next();
    if (roll < 0.60) {
      op.kind = Op::kWrite;
    } else if (roll < 0.75) {
      op.kind = Op::kTrim;
    } else if (roll < 0.85) {
      op.kind = Op::kFlush;
    } else {
      op.kind = Op::kRead;
    }
    ops.push_back(op);
  }
  return ops;
}

struct ArmSpec {
  std::uint64_t event = 0;              // kill at this event index, or
  FaultPoint point = FaultPoint::kNone;  // at this fault window
};

struct CellResult {
  bool crashed = false;
  std::uint64_t kill_event = 0;
  FaultPoint kill_point = FaultPoint::kNone;
  std::string digest;
  std::vector<std::string> errors;
};

// Host-side oracle of one cell's truth.
struct Oracle {
  std::map<Lpa, BitVec> acked;                // current acknowledged value
  std::map<Lpa, std::vector<BitVec>> history;  // every value ever acked
  std::set<Lpa> pending_trim;                  // tombstone only in DRAM
  std::set<Lpa> flushed_trim;                  // tombstone journaled
};

bool in_history(const Oracle& oracle, Lpa lpa, const BitVec& data) {
  const auto it = oracle.history.find(lpa);
  if (it == oracle.history.end()) return false;
  for (const BitVec& old : it->second) {
    if (data == old) return true;
  }
  return false;
}

// Applies ops until the stream ends or power is cut. Returns true if
// a PowerLoss fired.
bool apply_ops(Ftl& ftl, const std::vector<Op>& ops, std::uint32_t bits,
               Oracle& oracle, CellResult& result) {
  for (const Op& op : ops) {
    try {
      switch (op.kind) {
        case Op::kWrite: {
          BitVec payload = pattern(bits, op.key);
          ftl.write(op.lpa, payload);
          // Acked: data + OOB record are on flash.
          oracle.history[op.lpa].push_back(payload);
          oracle.acked[op.lpa] = std::move(payload);
          oracle.pending_trim.erase(op.lpa);
          oracle.flushed_trim.erase(op.lpa);
          break;
        }
        case Op::kTrim: {
          const FtlOpResult r = ftl.trim(op.lpa);
          if (!r.unmapped) {  // effective trim: tombstone buffered
            oracle.acked.erase(op.lpa);
            oracle.pending_trim.insert(op.lpa);
          }
          break;
        }
        case Op::kFlush: {
          ftl.flush();
          for (const Lpa lpa : oracle.pending_trim) {
            oracle.flushed_trim.insert(lpa);
          }
          oracle.pending_trim.clear();
          break;
        }
        case Op::kRead: {
          const FtlOpResult r = ftl.read(op.lpa);
          const auto it = oracle.acked.find(op.lpa);
          if (it != oracle.acked.end()) {
            if (r.unmapped || !(r.data == it->second)) {
              result.errors.push_back("live read mismatch at lpa " +
                                      std::to_string(op.lpa));
            }
          } else if (!r.unmapped) {
            result.errors.push_back("live read of dead lpa " +
                                    std::to_string(op.lpa) + " came back mapped");
          }
          break;
        }
      }
    } catch (const PowerLoss& loss) {
      // The op that took the cut never acked. A torn write is
      // invisible by construction (the kill windows all precede the
      // OOB record), so the oracle simply keeps the pre-op state —
      // except a kMidFlush cut, which persisted an unknown prefix of
      // the pending tombstones: leave them in pending_trim, whose
      // post-crash contract (unmapped or resurrection of an acked
      // value) covers both the journaled and the lost case.
      result.crashed = true;
      result.kill_event = loss.event;
      result.kill_point = loss.point;
      return true;
    }
  }
  return false;
}

// Post-remount audit of a crashed cell.
void verify_after_crash(Ftl& ftl, const Oracle& oracle, CellResult& result) {
  for (Lpa lpa = 0; lpa < ftl.logical_pages(); ++lpa) {
    const FtlOpResult r = ftl.read(lpa);
    const auto it = oracle.acked.find(lpa);
    if (it != oracle.acked.end()) {
      if (r.unmapped || !(r.data == it->second)) {
        result.errors.push_back("acked write lost at lpa " +
                                std::to_string(lpa));
      }
    } else if (oracle.flushed_trim.count(lpa) != 0) {
      if (!r.unmapped) {
        result.errors.push_back("flushed trim resurrected at lpa " +
                                std::to_string(lpa));
      }
    } else if (oracle.pending_trim.count(lpa) != 0) {
      if (!r.unmapped && !in_history(oracle, lpa, r.data)) {
        result.errors.push_back("unflushed trim at lpa " +
                                std::to_string(lpa) +
                                " resurrected a never-acked payload");
      }
    } else if (!r.unmapped) {
      result.errors.push_back("never-written lpa " + std::to_string(lpa) +
                              " came back mapped");
    }
  }
}

// Exact audit after a clean shutdown (flush + remount): acked LPAs
// bit-true, everything else unmapped.
void verify_exact(Ftl& ftl, const Oracle& oracle, CellResult& result) {
  for (Lpa lpa = 0; lpa < ftl.logical_pages(); ++lpa) {
    const FtlOpResult r = ftl.read(lpa);
    const auto it = oracle.acked.find(lpa);
    if (it != oracle.acked.end()) {
      if (r.unmapped || !(r.data == it->second)) {
        result.errors.push_back("clean-shutdown mismatch at lpa " +
                                std::to_string(lpa));
      }
    } else if (!r.unmapped) {
      result.errors.push_back("clean-shutdown ghost mapping at lpa " +
                              std::to_string(lpa));
    }
  }
}

std::string state_digest(const Ssd& ssd) {
  const Ftl& ftl = ssd.ftl();
  std::ostringstream os;
  os << ftl.sequence() << ':' << ftl.logical_clock();
  for (Lpa lpa = 0; lpa < ftl.logical_pages(); ++lpa) {
    const Ppa ppa = ftl.map().lookup(lpa);
    if (ppa.valid()) {
      os << ';' << ppa.die << '.' << ppa.block << '.' << ppa.page;
    } else {
      os << ";-";
    }
  }
  for (std::uint32_t d = 0; d < ftl.dies(); ++d) {
    for (std::uint32_t b = 0; b < ssd.die_geometry().blocks; ++b) {
      os << ',' << ftl.allocator(d).erase_count(b) << '.'
         << static_cast<int>(ftl.allocator(d).state(b));
    }
  }
  return os.str();
}

CellResult run_cell(std::uint64_t seed, const ArmSpec& arm) {
  CellResult result;
  Ssd ssd(torture_ssd());
  FaultInjector injector;
  ssd.set_fault_injector(&injector);
  if (arm.event != 0) {
    injector.arm_at_event(arm.event);
  } else if (arm.point != FaultPoint::kNone) {
    injector.arm_at_point(arm.point);
  }

  const std::uint32_t bits = ssd.die_geometry().data_bits_per_page();
  const std::uint32_t logical = ssd.logical_pages();
  Oracle oracle;

  const bool crashed =
      apply_ops(ssd.ftl(), make_ops(logical, seed, kOps), bits, oracle, result);
  try {
    if (crashed) {
      ssd.remount();
      ssd.ftl().check_consistency();
      verify_after_crash(ssd.ftl(), oracle, result);
    } else {
      ssd.ftl().flush();
      for (const Lpa lpa : oracle.pending_trim) oracle.flushed_trim.insert(lpa);
      oracle.pending_trim.clear();
      ssd.remount();
      ssd.ftl().check_consistency();
      verify_exact(ssd.ftl(), oracle, result);
    }

    // The rebuilt device must stay serviceable: re-sync the oracle to
    // the (possibly resurrection-resolved) device state, run more
    // traffic, then prove a clean shutdown is exact.
    oracle.pending_trim.clear();
    oracle.flushed_trim.clear();
    for (Lpa lpa = 0; lpa < logical; ++lpa) {
      const FtlOpResult r = ssd.ftl().read(lpa);
      if (r.unmapped) {
        oracle.acked.erase(lpa);
      } else {
        oracle.history[lpa].push_back(r.data);
        oracle.acked[lpa] = r.data;
      }
    }
    apply_ops(ssd.ftl(), make_ops(logical, seed ^ 0xC0FFEEull, kPostOps), bits,
              oracle, result);
    ssd.ftl().flush();
    for (const Lpa lpa : oracle.pending_trim) oracle.flushed_trim.insert(lpa);
    oracle.pending_trim.clear();
    ssd.remount();
    ssd.ftl().check_consistency();
    verify_exact(ssd.ftl(), oracle, result);
  } catch (const std::exception& e) {
    result.errors.push_back(std::string("exception: ") + e.what());
  }

  std::ostringstream digest;
  digest << result.crashed << ':' << result.kill_event << ':'
         << static_cast<int>(result.kill_point) << '|' << injector.events()
         << '|' << state_digest(ssd);
  result.digest = digest.str();
  return result;
}

// One counting pass per seed: how many kill opportunities the op
// stream generates end to end (the denominator the event-index cells
// scale their kill fraction against).
std::uint64_t count_events(std::uint64_t seed) {
  Ssd ssd(torture_ssd());
  FaultInjector injector;
  ssd.set_fault_injector(&injector);
  CellResult scratch;
  Oracle oracle;
  apply_ops(ssd.ftl(), make_ops(ssd.logical_pages(), seed, kOps),
            ssd.die_geometry().data_bits_per_page(), oracle, scratch);
  return injector.events();
}

ArmSpec arm_for_cell(std::size_t cell, std::uint64_t total_events) {
  ArmSpec arm;
  if (cell == 0) return arm;  // crash-free
  if (cell <= std::size(kKillFractions)) {
    const double fraction = kKillFractions[cell - 1];
    arm.event = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(static_cast<double>(total_events) *
                                      fraction));
    return arm;
  }
  arm.point = kKillPoints[cell - 1 - std::size(kKillFractions)];
  return arm;
}

std::vector<CellResult> run_matrix(ThreadPool& pool,
                                   const std::vector<std::uint64_t>& totals) {
  std::vector<CellResult> results(kSeeds * kCells);
  pool.parallel_for(results.size(), [&](std::size_t index) {
    const std::uint64_t seed = index / kCells;
    const std::size_t cell = index % kCells;
    results[index] = run_cell(seed, arm_for_cell(cell, totals[seed]));
  });
  return results;
}

TEST(PowerLossTorture, SeedByKillPointMatrixRecoversEverywhere) {
  std::vector<std::uint64_t> totals;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    totals.push_back(count_events(seed));
    ASSERT_GT(totals.back(), 10u) << "seed " << seed
                                  << " produced too few kill opportunities";
  }

  ThreadPool serial(1);
  const std::vector<CellResult> reference = run_matrix(serial, totals);

  std::size_t crashes = 0;
  std::set<FaultPoint> points_hit;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const CellResult& r = reference[i];
    for (const std::string& error : r.errors) {
      ADD_FAILURE() << "seed " << (i / kCells) << " cell " << (i % kCells)
                    << ": " << error;
    }
    if (r.crashed) {
      ++crashes;
      points_hit.insert(r.kill_point);
    }
  }
  // Every event-index cell must actually have crashed (the fraction
  // lands inside the run by construction)...
  EXPECT_GE(crashes, kSeeds * std::size(kKillFractions));
  // ...and the targeted cells must have covered the torn-program and
  // torn-flush windows across the seed set.
  EXPECT_TRUE(points_hit.count(FaultPoint::kMidHostProgram));
  EXPECT_TRUE(points_hit.count(FaultPoint::kMidGcProgram));
  EXPECT_TRUE(points_hit.count(FaultPoint::kMidFlush));

  // Determinism across thread counts: the same matrix on a wide pool
  // produces byte-identical per-cell digests.
  ThreadPool wide(4);
  const std::vector<CellResult> parallel = run_matrix(wide, totals);
  ASSERT_EQ(parallel.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(parallel[i].digest, reference[i].digest)
        << "seed " << (i / kCells) << " cell " << (i % kCells);
    EXPECT_TRUE(parallel[i].errors.empty());
  }
}

}  // namespace
}  // namespace xlf::ftl
