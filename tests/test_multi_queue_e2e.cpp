// Multi-queue host interface, end to end (the PR's acceptance
// criteria): a 4-queue weighted-arbitration sweep separates per-queue
// latencies in weight order, trimmed workloads run at measurably
// lower write amplification than trim-free ones, and both results are
// byte-identical for any thread count.
#include <gtest/gtest.h>

#include "src/explore/ftl_sweep.hpp"
#include "src/explore/report.hpp"

namespace xlf::explore {
namespace {

FtlSweepSpec base_spec() {
  FtlSweepSpec spec;
  spec.base.die.device.array.geometry.blocks = 8;
  spec.base.die.device.array.geometry.pages_per_block = 4;
  spec.base.initial_pe_cycles = 1e4;
  spec.base.ftl.pe_cycles_per_erase = 3e4;
  // One saturated die: every queue contends for the same resources,
  // which is where arbitration weights become visible as latency.
  spec.topologies = {{1, 1}};
  spec.queue_depths = {2};
  spec.gc_policies = {"greedy"};
  spec.requests = 240;
  spec.seed = 0xC0FFEE;
  return spec;
}

TEST(MultiQueueE2e, WeightedArbitrationSeparatesPerQueueLatency) {
  FtlSweepSpec spec = base_spec();
  spec.queue_counts = {4};
  spec.arbitration_policies = {"weighted"};
  spec.queue_weights = {27.0, 9.0, 3.0, 1.0};

  ThreadPool pool(2);
  const FtlSweepResult result = ftl_sweep(spec, pool);
  ASSERT_EQ(result.rows.size(), 1u);
  const sim::SsdSimStats& stats = result.rows[0].stats;
  ASSERT_EQ(stats.queue_stats.size(), 4u);

  // Heavier queues drain first under contention: mean write latency
  // strictly increases from the weight-27 queue to the weight-1 one.
  for (std::size_t q = 0; q + 1 < 4; ++q) {
    ASSERT_GT(stats.queue_stats[q].writes, 0u);
    EXPECT_LT(stats.queue_stats[q].write_latency.mean(),
              stats.queue_stats[q + 1].write_latency.mean())
        << "queue " << q << " vs " << q + 1;
  }
  // Every tenant's traffic was actually serviced, bit-true.
  EXPECT_EQ(stats.data_mismatches, 0u);
  std::uint64_t commands = 0;
  for (const host::QueueStats& queue : stats.queue_stats) {
    commands += queue.commands();
  }
  EXPECT_EQ(commands, spec.requests);
}

TEST(MultiQueueE2e, RoundRobinDoesNotSeparateLikeWeights) {
  // Same load under round-robin: the weight-order spread collapses —
  // the extreme queues sit within a factor the weighted run far
  // exceeds, pinning that the separation above comes from the
  // arbiter, not the workload split.
  FtlSweepSpec spec = base_spec();
  spec.queue_counts = {4};
  spec.arbitration_policies = {"round-robin", "weighted"};
  spec.queue_weights = {27.0, 9.0, 3.0, 1.0};

  ThreadPool pool(2);
  const FtlSweepResult result = ftl_sweep(spec, pool);
  ASSERT_EQ(result.rows.size(), 2u);
  const auto spread = [](const sim::SsdSimStats& stats) {
    return stats.queue_stats[3].write_latency.mean() /
           stats.queue_stats[0].write_latency.mean();
  };
  EXPECT_LT(spread(result.rows[0].stats), 1.5);  // round-robin: flat
  EXPECT_GT(spread(result.rows[1].stats), 2.0);  // weighted: spread
}

TEST(MultiQueueE2e, TrimLowersWriteAmplification) {
  // Longer stream than the latency tests: WA converges slowly, and
  // the trim advantage must clear the 15% bar on any seed.
  FtlSweepSpec trim_free = base_spec();
  trim_free.requests = 600;
  FtlSweepSpec trimmed = trim_free;
  trimmed.trim_fraction = 0.3;

  ThreadPool pool(2);
  const FtlSweepResult baseline = ftl_sweep(trim_free, pool);
  const FtlSweepResult with_trim = ftl_sweep(trimmed, pool);
  ASSERT_EQ(baseline.rows.size(), 1u);
  ASSERT_EQ(with_trim.rows.size(), 1u);

  EXPECT_EQ(baseline.rows[0].stats.trims, 0u);
  EXPECT_GT(with_trim.rows[0].stats.trims, 0u);
  EXPECT_GT(with_trim.rows[0].stats.trimmed_pages, 0u);
  // Deallocated pages make GC victims cheaper: measurably lower WA.
  EXPECT_LT(with_trim.rows[0].stats.write_amplification,
            0.85 * baseline.rows[0].stats.write_amplification);
  EXPECT_EQ(with_trim.rows[0].stats.data_mismatches, 0u);
}

TEST(MultiQueueE2e, DeterministicAcrossThreadCounts) {
  FtlSweepSpec spec = base_spec();
  spec.queue_counts = {1, 4};
  spec.arbitration_policies = {"round-robin", "weighted"};
  spec.queue_weights = {27.0, 9.0, 3.0, 1.0};
  spec.trim_fraction = 0.25;

  ThreadPool serial(1), parallel(4);
  const FtlSweepResult a = ftl_sweep(spec, serial);
  const FtlSweepResult b = ftl_sweep(spec, parallel);
  ASSERT_EQ(a.rows.size(), 4u);
  EXPECT_EQ(ftl_csv(a), ftl_csv(b));
  EXPECT_EQ(ftl_json(a), ftl_json(b));
}

}  // namespace
}  // namespace xlf::explore
