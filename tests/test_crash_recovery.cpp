// Crash consistency, focused and deterministic: flush as the trim
// durability barrier, trim-crash-remount semantics (flushed
// tombstones never resurrect; unflushed ones follow the documented
// advisory-deallocate model), torn programs, grown-bad block
// management, and the property that a crash-free shutdown's rebuild
// reproduces the live DRAM state field by field. The randomized
// seed x kill-point matrix lives in test_powerloss_torture.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "src/ftl/fault.hpp"
#include "src/ftl/ssd.hpp"
#include "src/policy/registry.hpp"

namespace xlf::ftl {
namespace {

SsdConfig small_ssd(std::uint32_t blocks = 8) {
  SsdConfig config;
  config.topology = {2, 1};  // 2 channels x 1 die
  config.die.device.array.geometry.blocks = blocks;
  config.die.device.array.geometry.pages_per_block = 4;
  config.initial_pe_cycles = 1e4;
  config.ftl.pe_cycles_per_erase = 3e4;
  return config;
}

BitVec pattern(std::uint32_t bits, std::uint64_t key) {
  BitVec data(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    if (((key >> (i % 64)) ^ (i / 64)) & 1u) data.set(i, true);
  }
  return data;
}

// Everything Ftl rebuilds; captured live and compared after a
// clean-shutdown remount. FtlStats is deliberately absent — counters
// are per-mount telemetry, not device state.
struct FtlSnapshot {
  std::vector<Ppa> l2p;
  std::vector<std::uint32_t> valid_counts;          // [die * blocks + block]
  std::vector<DieAllocator::BlockState> states;     // [die * blocks + block]
  std::vector<std::uint32_t> erase_counts;          // [die * blocks + block]
  std::vector<std::uint64_t> last_writes;           // [die * blocks + block]
  std::vector<unsigned> block_ts;                   // [die * blocks + block]
  std::vector<DieAllocator::FrontierView> frontiers;  // [die * 2 + stream]
  std::vector<std::size_t> free_counts;             // [die]
  std::uint64_t seq = 0;
  std::uint64_t clock = 0;

  friend bool operator==(const FtlSnapshot&, const FtlSnapshot&) = default;
};

FtlSnapshot snapshot(const Ssd& ssd) {
  const Ftl& ftl = ssd.ftl();
  const std::uint32_t blocks = ssd.die_geometry().blocks;
  FtlSnapshot snap;
  for (Lpa lpa = 0; lpa < ftl.logical_pages(); ++lpa) {
    snap.l2p.push_back(ftl.map().lookup(lpa));
  }
  for (std::uint32_t d = 0; d < ftl.dies(); ++d) {
    const DieAllocator& alloc = ftl.allocator(d);
    for (std::uint32_t b = 0; b < blocks; ++b) {
      snap.valid_counts.push_back(ftl.map().valid_count(d, b));
      snap.states.push_back(alloc.state(b));
      snap.erase_counts.push_back(alloc.erase_count(b));
      snap.last_writes.push_back(alloc.last_write(b));
      snap.block_ts.push_back(ftl.block_t(d, b));
    }
    snap.frontiers.push_back(alloc.frontier_view(DieAllocator::Stream::kHost));
    snap.frontiers.push_back(alloc.frontier_view(DieAllocator::Stream::kGc));
    snap.free_counts.push_back(alloc.free_count());
  }
  snap.seq = ftl.sequence();
  snap.clock = ftl.logical_clock();
  return snap;
}

TEST(CrashRecovery, RemountRebuildsMappingsAndPayloadsBitTrue) {
  Ssd ssd(small_ssd());
  Ftl& ftl = ssd.ftl();
  const std::uint32_t bits = ssd.die_geometry().data_bits_per_page();

  std::map<Lpa, BitVec> acked;
  for (Lpa lpa = 0; lpa < ftl.logical_pages(); ++lpa) {
    BitVec payload = pattern(bits, 0x1000u + lpa);
    ASSERT_TRUE(ftl.write(lpa, payload).ok);
    acked[lpa] = std::move(payload);
  }
  // Overwrite a hot slice so the map points into relocated blocks too.
  for (int pass = 0; pass < 6; ++pass) {
    for (Lpa lpa = 0; lpa < 4; ++lpa) {
      BitVec payload = pattern(bits, 0x2000u + pass * 16u + lpa);
      ASSERT_TRUE(ftl.write(lpa, payload).ok);
      acked[lpa] = std::move(payload);
    }
  }
  ASSERT_GT(ftl.stats().gc_relocations, 0u) << "workload must exercise GC";

  // Power cut with NO flush: acknowledged writes are write-through
  // durable, so every one of them must still read bit-true.
  ssd.remount();
  ssd.ftl().check_consistency();
  for (const auto& [lpa, payload] : acked) {
    const FtlOpResult r = ssd.ftl().read(lpa);
    EXPECT_FALSE(r.unmapped) << "lpa " << lpa;
    EXPECT_TRUE(r.data == payload) << "lpa " << lpa;
  }
}

TEST(CrashRecovery, FlushedTrimStaysUnmappedAcrossCrashRemount) {
  // The trim-crash-remount regression: once a flush persisted the
  // tombstone, no crash may resurrect the LPA.
  Ssd ssd(small_ssd());
  Ftl& ftl = ssd.ftl();
  const std::uint32_t bits = ssd.die_geometry().data_bits_per_page();

  ASSERT_TRUE(ftl.write(7, pattern(bits, 7)).ok);
  ASSERT_FALSE(ftl.trim(7).unmapped);
  ftl.flush();
  ASSERT_EQ(ssd.durable().tombstones.size(), 1u);

  // Crash (no further flush): the data page's OOB record is still on
  // flash, but the tombstone's higher sequence number wins replay.
  ssd.remount();
  ssd.ftl().check_consistency();
  EXPECT_FALSE(ssd.ftl().mapped(7));
  EXPECT_TRUE(ssd.ftl().read(7).unmapped);

  // A write after the trim re-maps the LPA and outlives another crash
  // (its sequence number outranks the journaled tombstone).
  const BitVec rewritten = pattern(bits, 0xBEEF);
  ASSERT_TRUE(ssd.ftl().write(7, rewritten).ok);
  ssd.remount();
  ssd.ftl().check_consistency();
  ASSERT_TRUE(ssd.ftl().mapped(7));
  EXPECT_TRUE(ssd.ftl().read(7).data == rewritten);
}

TEST(CrashRecovery, UnflushedTrimFollowsAdvisoryDeallocateSemantics) {
  // Without a flush the tombstone only exists in DRAM: after a crash
  // the LPA's surviving OOB record wins and the pre-trim value comes
  // back. That resurrection is the documented advisory-deallocate
  // model (and exactly why flush() exists).
  Ssd ssd(small_ssd());
  Ftl& ftl = ssd.ftl();
  const std::uint32_t bits = ssd.die_geometry().data_bits_per_page();

  const BitVec payload = pattern(bits, 0xA5);
  ASSERT_TRUE(ftl.write(3, payload).ok);
  ASSERT_FALSE(ftl.trim(3).unmapped);
  ASSERT_FALSE(ftl.mapped(3));
  ASSERT_EQ(ftl.pending_trims(), 1u);

  ssd.remount();  // crash: the pending tombstone is gone
  ssd.ftl().check_consistency();
  ASSERT_TRUE(ssd.ftl().mapped(3));
  EXPECT_TRUE(ssd.ftl().read(3).data == payload);
}

TEST(CrashRecovery, DoubleTrimThenCrashRemountStaysUnmapped) {
  Ssd ssd(small_ssd());
  Ftl& ftl = ssd.ftl();
  const std::uint32_t bits = ssd.die_geometry().data_bits_per_page();

  ASSERT_TRUE(ftl.write(5, pattern(bits, 5)).ok);
  ASSERT_FALSE(ftl.trim(5).unmapped);
  EXPECT_TRUE(ftl.trim(5).unmapped);  // second trim: accepted no-op
  ftl.flush();
  // Only the effective trim journaled a tombstone.
  EXPECT_EQ(ssd.durable().tombstones.size(), 1u);
  // Trim of a never-written LPA journals nothing either.
  EXPECT_TRUE(ftl.trim(6).unmapped);
  ftl.flush();
  EXPECT_EQ(ssd.durable().tombstones.size(), 1u);

  ssd.remount();
  ssd.ftl().check_consistency();
  EXPECT_FALSE(ssd.ftl().mapped(5));
  EXPECT_FALSE(ssd.ftl().mapped(6));
}

TEST(CrashRecovery, TornHostProgramIsInvisibleAfterRemount) {
  // Kill between a host write's data program and its OOB record: the
  // cells are charged but no record says so. Rebuild must treat the
  // page as never written — and a previously acked copy of the same
  // LPA must survive untouched.
  Ssd ssd(small_ssd());
  FaultInjector injector;
  ssd.set_fault_injector(&injector);
  Ftl& ftl = ssd.ftl();
  const std::uint32_t bits = ssd.die_geometry().data_bits_per_page();

  const BitVec old_value = pattern(bits, 0x01D);
  ASSERT_TRUE(ftl.write(2, old_value).ok);

  injector.arm_at_point(FaultPoint::kMidHostProgram);
  EXPECT_THROW(ftl.write(2, pattern(bits, 0x7E4)), PowerLoss);

  ssd.remount();
  ssd.ftl().check_consistency();
  ASSERT_TRUE(ssd.ftl().mapped(2));
  EXPECT_TRUE(ssd.ftl().read(2).data == old_value);

  // Same window on a never-written LPA: it stays unmapped.
  injector.arm_at_point(FaultPoint::kMidHostProgram);
  EXPECT_THROW(ssd.ftl().write(9, pattern(bits, 9)), PowerLoss);
  ssd.remount();
  ssd.ftl().check_consistency();
  EXPECT_FALSE(ssd.ftl().mapped(9));
}

TEST(CrashRecovery, MidGcRelocationCrashLosesNoAckedData) {
  // Kill inside a GC relocation's torn-program window. The victim
  // block is only erased after every live page relocated, so each
  // LPA's source record still wins replay and nothing acked is lost.
  Ssd ssd(small_ssd());
  FaultInjector injector;
  ssd.set_fault_injector(&injector);
  Ftl& ftl = ssd.ftl();
  const std::uint32_t bits = ssd.die_geometry().data_bits_per_page();

  std::map<Lpa, BitVec> acked;
  for (Lpa lpa = 0; lpa < ftl.logical_pages(); ++lpa) {
    BitVec payload = pattern(bits, 0x3000u + lpa);
    ASSERT_TRUE(ftl.write(lpa, payload).ok);
    acked[lpa] = std::move(payload);
  }

  injector.arm_at_point(FaultPoint::kMidGcProgram);
  bool crashed = false;
  for (int pass = 0; pass < 12 && !crashed; ++pass) {
    for (Lpa lpa = 0; lpa < 4 && !crashed; ++lpa) {
      BitVec payload = pattern(bits, 0x4000u + pass * 16u + lpa);
      try {
        ftl.write(lpa, payload);
        acked[lpa] = std::move(payload);
      } catch (const PowerLoss& loss) {
        EXPECT_EQ(loss.point, FaultPoint::kMidGcProgram);
        crashed = true;
        // The write that triggered GC never acked: lpa keeps its old
        // oracle entry, which must still be readable.
      }
    }
  }
  ASSERT_TRUE(crashed) << "overwrites must trigger GC on this geometry";

  ssd.remount();
  ssd.ftl().check_consistency();
  for (const auto& [lpa, payload] : acked) {
    const FtlOpResult r = ssd.ftl().read(lpa);
    ASSERT_FALSE(r.unmapped) << "lpa " << lpa;
    EXPECT_TRUE(r.data == payload) << "lpa " << lpa;
  }
}

TEST(CrashRecovery, CrashFreeShutdownRebuildReproducesLiveStateExactly) {
  // The field-identity property: flush (checkpointing seq/clock),
  // snapshot every piece of DRAM state the mount path reconstructs,
  // remount, snapshot again — the two must be equal member by member.
  Ssd ssd(small_ssd());
  Ftl& ftl = ssd.ftl();
  const std::uint32_t bits = ssd.die_geometry().data_bits_per_page();

  for (Lpa lpa = 0; lpa < ftl.logical_pages(); ++lpa) {
    ASSERT_TRUE(ftl.write(lpa, pattern(bits, 0x5000u + lpa)).ok);
  }
  for (int pass = 0; pass < 8; ++pass) {
    for (Lpa lpa = 0; lpa < 6; ++lpa) {
      ASSERT_TRUE(ftl.write(lpa, pattern(bits, 0x6000u + pass * 16u + lpa)).ok);
    }
    ftl.trim(10 + static_cast<Lpa>(pass) % 4);
    ftl.flush();
  }
  ASSERT_GT(ftl.stats().gc_relocations, 0u);

  const FtlSnapshot live = snapshot(ssd);
  ssd.remount();
  ssd.ftl().check_consistency();
  const FtlSnapshot rebuilt = snapshot(ssd);

  EXPECT_EQ(live.l2p, rebuilt.l2p);
  EXPECT_EQ(live.valid_counts, rebuilt.valid_counts);
  EXPECT_EQ(live.states, rebuilt.states);
  EXPECT_EQ(live.erase_counts, rebuilt.erase_counts);
  EXPECT_EQ(live.last_writes, rebuilt.last_writes);
  EXPECT_EQ(live.block_ts, rebuilt.block_ts);
  EXPECT_EQ(live.frontiers, rebuilt.frontiers);
  EXPECT_EQ(live.free_counts, rebuilt.free_counts);
  EXPECT_EQ(live.seq, rebuilt.seq);
  EXPECT_EQ(live.clock, rebuilt.clock);
  EXPECT_EQ(live, rebuilt);

  // The rebuilt instance keeps working: writes land, reads verify.
  const BitVec more = pattern(bits, 0xF00D);
  ASSERT_TRUE(ssd.ftl().write(0, more).ok);
  EXPECT_TRUE(ssd.ftl().read(0).data == more);
}

TEST(CrashRecovery, GrownBadBlocksRetireRouteAroundAndSurviveRemount) {
  // Grown-bad management end to end: the injected block's first erase
  // fails, it retires into the durable bad-block table, every policy
  // routes around it (no allocation, no GC victim, excluded from the
  // wear spread), and the retirement survives a remount.
  SsdConfig config = small_ssd(/*blocks=*/12);
  Ssd ssd(config);
  FaultInjector injector;
  const std::uint32_t blocks = ssd.die_geometry().blocks;
  // Fail block 0 on every die: the block every wear policy allocates
  // first, so its erase (and the injected failure) is guaranteed to
  // happen under churn.
  constexpr std::uint32_t kDoomed = 0;
  for (std::uint32_t d = 0; d < ssd.ftl().dies(); ++d) {
    injector.fail_block(d, kDoomed);
  }
  ssd.set_fault_injector(&injector);
  Ftl& ftl = ssd.ftl();
  const std::uint32_t bits = ssd.die_geometry().data_bits_per_page();

  for (Lpa lpa = 0; lpa < ftl.logical_pages(); ++lpa) {
    ASSERT_TRUE(ftl.write(lpa, pattern(bits, lpa)).ok);
  }
  // Overwrite everything repeatedly: every allocated block cycles
  // through GC, so the doomed ones meet their failing erase.
  for (int pass = 0; pass < 10; ++pass) {
    for (Lpa lpa = 0; lpa < ftl.logical_pages(); ++lpa) {
      ASSERT_TRUE(ftl.write(lpa, pattern(bits, 0x9000u + pass * 64u + lpa)).ok);
    }
  }
  ASSERT_EQ(ftl.stats().bad_blocks, 2u)
      << "both injected blocks must hit their failing erase";

  for (std::uint32_t d = 0; d < ftl.dies(); ++d) {
    EXPECT_TRUE(ftl.is_bad(d, kDoomed));
    EXPECT_EQ(ftl.allocator(d).state(kDoomed), DieAllocator::BlockState::kBad);
    // Retirement is not an erase: the failed attempt never advanced
    // the block's FTL-visible wear counter.
    EXPECT_EQ(ftl.allocator(d).erase_count(kDoomed), 0u);
    // Nothing lives there and no frontier points there.
    EXPECT_EQ(ftl.map().valid_count(d, kDoomed), 0u);
    for (const auto stream :
         {DieAllocator::Stream::kHost, DieAllocator::Stream::kGc}) {
      const auto view = ftl.allocator(d).frontier_view(stream);
      EXPECT_TRUE(!view.open || view.block != kDoomed);
    }
    // The wear spread excludes the retired block's frozen counter:
    // recompute min/max over the healthy blocks independently.
    std::uint32_t min_healthy = ~0u, max_healthy = 0;
    for (std::uint32_t b = 0; b < blocks; ++b) {
      if (ftl.allocator(d).state(b) == DieAllocator::BlockState::kBad) continue;
      min_healthy = std::min(min_healthy, ftl.allocator(d).erase_count(b));
      max_healthy = std::max(max_healthy, ftl.allocator(d).erase_count(b));
    }
    EXPECT_EQ(ftl.allocator(d).min_erase_count(), min_healthy);
    EXPECT_EQ(ftl.allocator(d).max_erase_count(), max_healthy);
  }
  // No mapped LPA resolves into a retired block.
  for (Lpa lpa = 0; lpa < ftl.logical_pages(); ++lpa) {
    const Ppa ppa = ftl.map().lookup(lpa);
    ASSERT_TRUE(ppa.valid());
    EXPECT_NE(ppa.block, kDoomed);
  }

  // Retirement is durable: still bad after a crash + remount, and the
  // device keeps serving traffic around it.
  ssd.remount();
  ssd.ftl().check_consistency();
  for (std::uint32_t d = 0; d < ssd.ftl().dies(); ++d) {
    EXPECT_TRUE(ssd.ftl().is_bad(d, kDoomed));
    EXPECT_EQ(ssd.ftl().allocator(d).state(kDoomed),
              DieAllocator::BlockState::kBad);
  }
  for (int pass = 0; pass < 4; ++pass) {
    for (Lpa lpa = 0; lpa < ssd.ftl().logical_pages(); ++lpa) {
      ASSERT_TRUE(
          ssd.ftl().write(lpa, pattern(bits, 0xA000u + pass * 64u + lpa)).ok);
    }
  }
  for (Lpa lpa = 0; lpa < ssd.ftl().logical_pages(); ++lpa) {
    EXPECT_NE(ssd.ftl().map().lookup(lpa).block, kDoomed);
  }
  ssd.ftl().check_consistency();
}

// The victim index after a crash + remount: rebuild_from_oob feeds
// the rebuilt allocators through the same map/close notifications as
// live traffic, so the indexed pick must equal a from-scratch linear
// scan of the rebuilt state — killed mid-GC, the worst case, because
// the victim's partially relocated valid counts and the GC frontier
// both land in the index via replay rather than live churn.
TEST(CrashRecovery, VictimIndexRebuildMatchesScratchScanAfterMidGcCrash) {
  for (const std::string name : {"greedy", "cost-benefit"}) {
    SsdConfig config = small_ssd();
    config.ftl.gc_policy = name;
    Ssd ssd(config);
    FaultInjector injector;
    ssd.set_fault_injector(&injector);
    Ftl& ftl = ssd.ftl();
    const std::uint32_t bits = ssd.die_geometry().data_bits_per_page();

    for (Lpa lpa = 0; lpa < ftl.logical_pages(); ++lpa) {
      ASSERT_TRUE(ftl.write(lpa, pattern(bits, 0x7000u + lpa)).ok);
    }
    injector.arm_at_point(FaultPoint::kMidGcProgram);
    bool crashed = false;
    for (int pass = 0; pass < 12 && !crashed; ++pass) {
      for (Lpa lpa = 0; lpa < 4 && !crashed; ++lpa) {
        try {
          ftl.write(lpa, pattern(bits, 0x8000u + pass * 16u + lpa));
        } catch (const PowerLoss&) {
          crashed = true;
        }
      }
    }
    ASSERT_TRUE(crashed) << name << ": overwrites must trigger GC here";

    ssd.remount();
    ssd.ftl().check_consistency();
    const auto policy =
        policy::PolicyRegistry<policy::GcPolicy>::instance().make(name);
    const std::uint64_t now = ssd.ftl().logical_clock();
    for (std::uint32_t d = 0; d < ssd.dies(); ++d) {
      const DieAllocator& alloc = ssd.ftl().allocator(d);
      ASSERT_TRUE(alloc.victim_index_enabled());
      const auto scratch = alloc.pick_victim_scored(
          [&](const policy::GcBlockView& view) { return policy->score(view); },
          [&](std::uint32_t b) { return alloc.cached_valid(b); }, now);
      EXPECT_EQ(alloc.pick_victim_indexed(*policy, now), scratch)
          << name << " die " << d;
    }
  }
}

TEST(CrashRecovery, SpentInjectorDoesNotRefireOnRemountTraffic) {
  Ssd ssd(small_ssd());
  FaultInjector injector;
  ssd.set_fault_injector(&injector);
  const std::uint32_t bits = ssd.die_geometry().data_bits_per_page();

  injector.arm_at_event(1);
  EXPECT_THROW(ssd.ftl().write(0, pattern(bits, 0)), PowerLoss);
  EXPECT_TRUE(injector.fired());

  ssd.remount();
  // Post-crash traffic passes the same fault points; a spent injector
  // must stay quiet until re-armed.
  EXPECT_NO_THROW(ssd.ftl().write(0, pattern(bits, 1)));
  EXPECT_TRUE(ssd.ftl().read(0).data == pattern(bits, 1));
}

}  // namespace
}  // namespace xlf::ftl
