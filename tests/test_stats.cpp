#include "src/util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "src/util/rng.hpp"

namespace xlf {
namespace {

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, MergeMatchesCombinedStream) {
  Rng rng(5);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.gaussian(2.0, 3.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(2.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(RunningStats, EmptySideNeverPollutesExtrema) {
  // All samples strictly positive: if the empty side's default
  // min_/max_ leaked into the merge, min() would come back 0.
  RunningStats a, b;
  a.add(4.0);
  a.add(9.0);
  a.merge(b);  // empty right side
  EXPECT_DOUBLE_EQ(a.min(), 4.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);

  RunningStats c;
  c.merge(a);  // empty left side
  EXPECT_DOUBLE_EQ(c.min(), 4.0);
  EXPECT_DOUBLE_EQ(c.max(), 9.0);

  // Same in the all-negative direction, where a polluted max() shows 0.
  RunningStats d, e;
  d.add(-7.0);
  d.add(-2.0);
  d.merge(e);
  EXPECT_DOUBLE_EQ(d.max(), -2.0);
  e.merge(d);
  EXPECT_DOUBLE_EQ(e.min(), -7.0);
  EXPECT_DOUBLE_EQ(e.max(), -2.0);
}

TEST(RunningStats, EmptyStatsReportNanExtrema) {
  // Documented convention for empty accumulators: a zero-request
  // stream (e.g. a write-only run's read-latency distribution) must
  // not report a fabricated 0.0 extremum into CSV reports — NaN marks
  // the side as unobserved.
  const RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(RunningStats, NanExtremaClearOnFirstSample) {
  RunningStats s;
  EXPECT_TRUE(std::isnan(s.min()));
  s.add(-3.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), -3.0);

  // Merging a populated accumulator into an empty one also clears the
  // NaN state (the infinity identities, not the reported NaN, drive
  // the merge).
  RunningStats empty;
  empty.merge(s);
  EXPECT_DOUBLE_EQ(empty.min(), -3.0);
  EXPECT_DOUBLE_EQ(empty.max(), -3.0);
}

TEST(RunningStats, ChainedShardMergeMatchesSerial) {
  // The parallel replica reduction folds shards in index order, some
  // of which may be empty; the result must match one serial stream.
  Rng rng(77);
  RunningStats serial;
  std::vector<RunningStats> shards(8);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.gaussian(-1.0, 2.0);
    serial.add(x);
    shards[static_cast<std::size_t>(i) % 5].add(x);  // shards 5..7 stay empty
  }
  RunningStats merged;
  for (const RunningStats& shard : shards) merged.merge(shard);
  EXPECT_EQ(merged.count(), serial.count());
  EXPECT_NEAR(merged.mean(), serial.mean(), 1e-12);
  EXPECT_NEAR(merged.variance(), serial.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(merged.min(), serial.min());
  EXPECT_DOUBLE_EQ(merged.max(), serial.max());
}

TEST(Histogram, BinningAndQuantile) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(0.5);  // all in first bin
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.bin_count(0), 100u);
  EXPECT_NEAR(h.bin_center(0), 0.5, 1e-12);
  EXPECT_LT(h.quantile(0.5), 1.0);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(5.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(3), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, QuantileOfUniformSamples) {
  Rng rng(7);
  Histogram h(0.0, 1.0, 100);
  for (int i = 0; i < 100000; ++i) h.add(rng.uniform());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
}

TEST(Percentile, ExactValues) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.0);
  EXPECT_THROW(percentile({}, 0.5), std::invalid_argument);
}

TEST(Rmse, KnownValue) {
  EXPECT_DOUBLE_EQ(rmse({1.0, 2.0, 3.0}, {1.0, 2.0, 3.0}), 0.0);
  EXPECT_NEAR(rmse({0.0, 0.0}, {3.0, 4.0}), std::sqrt(12.5), 1e-12);
  EXPECT_THROW(rmse({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(LinearFit, RecoversLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(2.5 * i - 7.0);
  }
  const LinearFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 2.5, 1e-10);
  EXPECT_NEAR(fit.intercept, -7.0, 1e-8);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LinearFit, NoisyLineStillClose) {
  Rng rng(11);
  std::vector<double> x, y;
  for (int i = 0; i < 500; ++i) {
    x.push_back(i * 0.1);
    y.push_back(1.2 * i * 0.1 + 3.0 + rng.gaussian(0.0, 0.05));
  }
  const LinearFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 1.2, 0.02);
  EXPECT_NEAR(fit.intercept, 3.0, 0.05);
  EXPECT_GT(fit.r2, 0.99);
}

TEST(QFunction, KnownValues) {
  EXPECT_NEAR(q_function(0.0), 0.5, 1e-12);
  EXPECT_NEAR(q_function(1.0), 0.15865525, 1e-7);
  EXPECT_NEAR(q_function(3.0), 1.3498980e-3, 1e-9);
  // Q(4.7534) ~ 1e-6 — the BOL RBER operating zone.
  EXPECT_NEAR(q_function(4.7534), 1e-6, 2e-8);
}

TEST(QFunction, InverseRoundTrip) {
  for (double p : {0.4, 0.1, 1e-3, 1e-6, 1e-9, 1e-12}) {
    const double x = q_function_inverse(p);
    EXPECT_NEAR(q_function(x), p, p * 1e-6) << "p=" << p;
  }
  EXPECT_THROW(q_function_inverse(0.0), std::invalid_argument);
  EXPECT_THROW(q_function_inverse(1.0), std::invalid_argument);
}

TEST(LogSpace, EndpointsAndMonotonicity) {
  const auto grid = log_space(1e2, 1e6, 9);
  ASSERT_EQ(grid.size(), 9u);
  EXPECT_NEAR(grid.front(), 1e2, 1e-9);
  EXPECT_NEAR(grid.back(), 1e6, 1e-3);
  for (std::size_t i = 1; i < grid.size(); ++i) EXPECT_GT(grid[i], grid[i - 1]);
  // Log-equidistant: constant ratio.
  const double ratio = grid[1] / grid[0];
  for (std::size_t i = 1; i < grid.size(); ++i) {
    EXPECT_NEAR(grid[i] / grid[i - 1], ratio, 1e-9);
  }
}

}  // namespace
}  // namespace xlf
