// Open-loop SSD simulator: completion accounting, queue-depth and
// multi-die scaling, utilisation bookkeeping, and dispatcher timing
// arithmetic.
#include "src/sim/ssd_sim.hpp"

#include <gtest/gtest.h>

#include "src/controller/dispatch.hpp"
#include "src/sim/host_workload.hpp"

namespace xlf::sim {
namespace {

using namespace xlf::literals;

ftl::SsdConfig ssd_config(std::uint32_t channels, std::uint32_t dies) {
  ftl::SsdConfig config;
  config.topology = {channels, dies};
  config.die.device.array.geometry.blocks = 8;
  config.die.device.array.geometry.pages_per_block = 4;
  return config;
}

TEST(DieDispatcher, WritesShareChannelButOverlapOnDies) {
  // 1 channel x 2 dies: the bursts serialise on the bus, the
  // programs overlap.
  controller::DieDispatcher dispatcher({1, 2});
  const Seconds io = 0.001_s, cell = 0.010_s;
  const auto a = dispatcher.submit_write(0, Seconds{0.0}, io, cell);
  const auto b = dispatcher.submit_write(1, Seconds{0.0}, io, cell);
  EXPECT_DOUBLE_EQ(a.completion.value(), 0.011);
  // Die 1's burst waits for die 0's burst only, not its program.
  EXPECT_DOUBLE_EQ(b.start.value(), 0.001);
  EXPECT_DOUBLE_EQ(b.completion.value(), 0.012);
  EXPECT_DOUBLE_EQ(dispatcher.channel_busy(0).value(), 0.002);
}

TEST(DieDispatcher, SameDieSerialises) {
  controller::DieDispatcher dispatcher({1, 1});
  const Seconds io = 0.001_s, cell = 0.010_s;
  const auto a = dispatcher.submit_write(0, Seconds{0.0}, io, cell);
  const auto b = dispatcher.submit_write(0, Seconds{0.0}, io, cell);
  EXPECT_DOUBLE_EQ(b.start.value(), a.completion.value());
  EXPECT_DOUBLE_EQ(b.completion.value(), 0.022);
}

TEST(DieDispatcher, ReadSensesBeforeBurstingOut) {
  controller::DieDispatcher dispatcher({1, 2});
  // Die 0 reads (sense 75us, burst 25us); die 1's read senses in
  // parallel and its burst queues behind die 0's.
  const auto a = dispatcher.submit_read(0, Seconds{0.0}, 25.0_us, 75.0_us);
  const auto b = dispatcher.submit_read(1, Seconds{0.0}, 25.0_us, 75.0_us);
  EXPECT_DOUBLE_EQ(a.completion.micros(), 100.0);
  EXPECT_DOUBLE_EQ(b.completion.micros(), 125.0);
}

TEST(DieDispatcher, DiesStripeRoundRobinAcrossChannels) {
  controller::DieDispatcher dispatcher({2, 2});
  ASSERT_EQ(dispatcher.dies(), 4u);
  EXPECT_EQ(dispatcher.channel_of(0), 0u);
  EXPECT_EQ(dispatcher.channel_of(1), 1u);
  EXPECT_EQ(dispatcher.channel_of(2), 0u);
  EXPECT_EQ(dispatcher.channel_of(3), 1u);
}

TEST(SsdSimulator, AccountsEveryRequest) {
  ftl::Ssd ssd(ssd_config(2, 1));
  SsdSimulator simulator(ssd);
  const UniformOverwriteWorkload workload(0.25);
  Rng rng(11);
  const auto requests = workload.generate(ssd.logical_pages(), 60, rng);
  const SsdSimStats stats = simulator.run(requests);
  EXPECT_EQ(stats.reads + stats.writes + stats.unmapped_reads,
            requests.size());
  EXPECT_EQ(stats.unmapped_reads, 0u);  // reads only target written LPAs
  EXPECT_GT(stats.elapsed.value(), 0.0);
  EXPECT_EQ(stats.die_utilisation.size(), 2u);
  EXPECT_EQ(stats.data_mismatches, 0u);
}

TEST(SsdSimulator, PrepopulateMapsEveryLogicalPage) {
  ftl::Ssd ssd(ssd_config(1, 1));
  SsdSimulator simulator(ssd);
  simulator.prepopulate();
  for (ftl::Lpa lpa = 0; lpa < ssd.logical_pages(); ++lpa) {
    EXPECT_TRUE(ssd.ftl().mapped(lpa));
  }
}

TEST(SsdSimulator, MoreDiesAndDepthFinishSooner) {
  // Identical sequential write load; the 2-die SSD at QD 4 overlaps
  // programs that the 1-die QD-1 SSD must serialise.
  const auto run = [](std::uint32_t channels, std::size_t qd) {
    ftl::Ssd ssd(ssd_config(channels, 1));
    SsdSimConfig config;
    config.queue_depth = qd;
    SsdSimulator simulator(ssd, config);
    const SequentialOverwriteWorkload workload;
    Rng rng(5);
    // Fixed request count (not capacity-scaled) for comparability.
    const auto requests = workload.generate(12, 40, rng);
    return simulator.run(requests);
  };
  const SsdSimStats serial = run(1, 1);
  const SsdSimStats overlapped = run(2, 4);
  EXPECT_LT(overlapped.elapsed.value(), serial.elapsed.value());
  EXPECT_LT(overlapped.write_latency.mean(), serial.write_latency.mean());
  // The single die is saturated under back-to-back arrivals.
  EXPECT_NEAR(serial.die_util_max(), 1.0, 1e-9);
}

TEST(SsdSimulator, UnmappedReadsCompleteInstantly) {
  ftl::Ssd ssd(ssd_config(1, 1));
  SsdSimulator simulator(ssd);
  std::vector<HostRequest> requests{{OpType::kRead, 0, Seconds{0.0}},
                                    {OpType::kRead, 1, Seconds{0.0}}};
  const SsdSimStats stats = simulator.run(requests);
  EXPECT_EQ(stats.unmapped_reads, 2u);
  EXPECT_EQ(stats.reads, 0u);
  EXPECT_DOUBLE_EQ(stats.elapsed.value(), 0.0);
}

}  // namespace
}  // namespace xlf::sim
