// Open-loop SSD simulator: completion accounting, queue-depth and
// multi-die scaling, utilisation bookkeeping, and dispatcher timing
// arithmetic.
#include "src/sim/ssd_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/controller/dispatch.hpp"
#include "src/sim/host_workload.hpp"

namespace xlf::sim {
namespace {

using namespace xlf::literals;

ftl::SsdConfig ssd_config(std::uint32_t channels, std::uint32_t dies) {
  ftl::SsdConfig config;
  config.topology = {channels, dies};
  config.die.device.array.geometry.blocks = 8;
  config.die.device.array.geometry.pages_per_block = 4;
  return config;
}

TEST(DieDispatcher, WritesShareChannelButOverlapOnDies) {
  // 1 channel x 2 dies: the bursts serialise on the bus, the
  // programs overlap.
  controller::DieDispatcher dispatcher({1, 2});
  const Seconds io = 0.001_s, cell = 0.010_s;
  const auto a = dispatcher.submit_write(0, Seconds{0.0}, io, cell);
  const auto b = dispatcher.submit_write(1, Seconds{0.0}, io, cell);
  EXPECT_DOUBLE_EQ(a.completion.value(), 0.011);
  // Die 1's burst waits for die 0's burst only, not its program.
  EXPECT_DOUBLE_EQ(b.start.value(), 0.001);
  EXPECT_DOUBLE_EQ(b.completion.value(), 0.012);
  EXPECT_DOUBLE_EQ(dispatcher.channel_busy(0).value(), 0.002);
}

TEST(DieDispatcher, SameDieSerialises) {
  controller::DieDispatcher dispatcher({1, 1});
  const Seconds io = 0.001_s, cell = 0.010_s;
  const auto a = dispatcher.submit_write(0, Seconds{0.0}, io, cell);
  const auto b = dispatcher.submit_write(0, Seconds{0.0}, io, cell);
  EXPECT_DOUBLE_EQ(b.start.value(), a.completion.value());
  EXPECT_DOUBLE_EQ(b.completion.value(), 0.022);
}

TEST(DieDispatcher, ReadSensesBeforeBurstingOut) {
  controller::DieDispatcher dispatcher({1, 2});
  // Die 0 reads (sense 75us, burst 25us); die 1's read senses in
  // parallel and its burst queues behind die 0's.
  const auto a = dispatcher.submit_read(0, Seconds{0.0}, 25.0_us, 75.0_us);
  const auto b = dispatcher.submit_read(1, Seconds{0.0}, 25.0_us, 75.0_us);
  EXPECT_DOUBLE_EQ(a.completion.micros(), 100.0);
  EXPECT_DOUBLE_EQ(b.completion.micros(), 125.0);
}

TEST(DieDispatcher, DiesStripeRoundRobinAcrossChannels) {
  controller::DieDispatcher dispatcher({2, 2});
  ASSERT_EQ(dispatcher.dies(), 4u);
  EXPECT_EQ(dispatcher.channel_of(0), 0u);
  EXPECT_EQ(dispatcher.channel_of(1), 1u);
  EXPECT_EQ(dispatcher.channel_of(2), 0u);
  EXPECT_EQ(dispatcher.channel_of(3), 1u);
}

TEST(SsdSimulator, AccountsEveryRequest) {
  ftl::Ssd ssd(ssd_config(2, 1));
  SsdSimulator simulator(ssd);
  const UniformOverwriteWorkload workload(0.25);
  Rng rng(11);
  const auto requests = workload.generate(ssd.logical_pages(), 60, rng);
  const SsdSimStats stats = simulator.run(requests);
  EXPECT_EQ(stats.reads + stats.writes + stats.unmapped_reads,
            requests.size());
  EXPECT_EQ(stats.unmapped_reads, 0u);  // reads only target written LPAs
  EXPECT_GT(stats.elapsed.value(), 0.0);
  EXPECT_EQ(stats.die_utilisation.size(), 2u);
  EXPECT_EQ(stats.data_mismatches, 0u);
}

TEST(SsdSimulator, PrepopulateMapsEveryLogicalPage) {
  ftl::Ssd ssd(ssd_config(1, 1));
  SsdSimulator simulator(ssd);
  simulator.prepopulate();
  for (ftl::Lpa lpa = 0; lpa < ssd.logical_pages(); ++lpa) {
    EXPECT_TRUE(ssd.ftl().mapped(lpa));
  }
}

TEST(SsdSimulator, MoreDiesAndDepthFinishSooner) {
  // Identical sequential write load; the 2-die SSD at QD 4 overlaps
  // programs that the 1-die QD-1 SSD must serialise.
  const auto run = [](std::uint32_t channels, std::size_t qd) {
    ftl::Ssd ssd(ssd_config(channels, 1));
    SsdSimConfig config;
    config.queue_depth = qd;
    SsdSimulator simulator(ssd, config);
    const SequentialOverwriteWorkload workload;
    Rng rng(5);
    // Fixed request count (not capacity-scaled) for comparability.
    const auto requests = workload.generate(12, 40, rng);
    return simulator.run(requests);
  };
  const SsdSimStats serial = run(1, 1);
  const SsdSimStats overlapped = run(2, 4);
  EXPECT_LT(overlapped.elapsed.value(), serial.elapsed.value());
  EXPECT_LT(overlapped.write_latency.mean(), serial.write_latency.mean());
  // The single die is saturated under back-to-back arrivals.
  EXPECT_NEAR(serial.die_util_max(), 1.0, 1e-9);
}

TEST(SsdSimulator, UnmappedReadsCompleteInstantly) {
  ftl::Ssd ssd(ssd_config(1, 1));
  SsdSimulator simulator(ssd);
  std::vector<HostRequest> requests{{OpType::kRead, 0, Seconds{0.0}},
                                    {OpType::kRead, 1, Seconds{0.0}}};
  const SsdSimStats stats = simulator.run(requests);
  EXPECT_EQ(stats.unmapped_reads, 2u);
  EXPECT_EQ(stats.reads, 0u);
  EXPECT_DOUBLE_EQ(stats.elapsed.value(), 0.0);
}

// Regression (satellite): the utilisation summaries of an empty
// vector must read as NaN (JSON null), not a fabricated 0.0 — and
// must not touch the vector at all (the old mean() divided by zero
// size on some refactors of this code).
TEST(SsdSimStats, EmptyUtilisationSummariesAreNaN) {
  const SsdSimStats stats;
  ASSERT_TRUE(stats.die_utilisation.empty());
  EXPECT_TRUE(std::isnan(stats.die_util_min()));
  EXPECT_TRUE(std::isnan(stats.die_util_max()));
  EXPECT_TRUE(std::isnan(stats.die_util_mean()));
}

host::Command command(host::CmdType type, ftl::Lpa lba,
                      std::uint16_t queue = 0) {
  host::Command cmd;
  cmd.type = type;
  cmd.lba = lba;
  cmd.queue = queue;
  return cmd;
}

TEST(SsdSimulator, LegacyRequestPathEqualsOneQueueCommandPath) {
  // The flat request vector and its command conversion on a 1-queue
  // round-robin interface are the same simulation, stat for stat.
  const auto run_with = [](bool as_commands) {
    ftl::Ssd ssd(ssd_config(2, 1));
    SsdSimulator simulator(ssd);
    const UniformOverwriteWorkload workload(0.25);
    Rng rng(11);
    const auto requests = workload.generate(ssd.logical_pages(), 60, rng);
    return as_commands ? simulator.run(to_commands(requests))
                       : simulator.run(requests);
  };
  const SsdSimStats legacy = run_with(false);
  const SsdSimStats commands = run_with(true);
  EXPECT_EQ(legacy.reads, commands.reads);
  EXPECT_EQ(legacy.writes, commands.writes);
  EXPECT_EQ(legacy.gc_relocations, commands.gc_relocations);
  EXPECT_DOUBLE_EQ(legacy.elapsed.value(), commands.elapsed.value());
  EXPECT_DOUBLE_EQ(legacy.read_latency.mean(), commands.read_latency.mean());
  EXPECT_DOUBLE_EQ(legacy.write_latency.mean(),
                   commands.write_latency.mean());
  // The command path also reports the single queue's view, which must
  // agree with the globals.
  ASSERT_EQ(commands.queue_stats.size(), 1u);
  EXPECT_EQ(commands.queue_stats[0].reads + commands.queue_stats[0].writes,
            60u);
  EXPECT_DOUBLE_EQ(commands.queue_stats[0].write_latency.mean(),
                   commands.write_latency.mean());
}

TEST(SsdSimulator, TrimUnmapsAndReadsComeBackUnmapped) {
  ftl::Ssd ssd(ssd_config(1, 1));
  SsdSimulator simulator(ssd);
  const std::vector<host::Command> commands{
      command(host::CmdType::kWrite, 3),
      command(host::CmdType::kTrim, 3),
      command(host::CmdType::kTrim, 4),  // never written: no-op trim
      command(host::CmdType::kRead, 3),
  };
  const SsdSimStats stats = simulator.run(commands);
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.trims, 2u);
  EXPECT_EQ(stats.trimmed_pages, 1u);
  // The trimmed LPA reads as deallocated (no flash access, no
  // mismatch against the erased oracle entry).
  EXPECT_EQ(stats.unmapped_reads, 1u);
  EXPECT_EQ(stats.reads, 0u);
  EXPECT_EQ(stats.data_mismatches, 0u);
  EXPECT_FALSE(ssd.ftl().mapped(3));
}

TEST(SsdSimulator, MultiPageExtentCompletesWithItsLastPage) {
  ftl::Ssd ssd(ssd_config(1, 1));
  SsdSimConfig config;
  config.queue_depth = 4;
  SsdSimulator simulator(ssd, config);
  host::Command extent = command(host::CmdType::kWrite, 0);
  extent.length = 4;
  const SsdSimStats stats = simulator.run({extent});
  // Four page programs, one command: the single latency sample is the
  // whole extent's service time.
  EXPECT_EQ(stats.writes, 4u);
  ASSERT_EQ(stats.queue_stats.size(), 1u);
  EXPECT_EQ(stats.queue_stats[0].writes, 1u);
  EXPECT_EQ(stats.write_latency.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.write_latency.max(), stats.elapsed.value());
}

TEST(SsdSimulator, FlushIsAPerQueueBarrier) {
  ftl::Ssd ssd(ssd_config(1, 1));
  SsdSimConfig config;
  config.queue_depth = 8;  // depth never binds; the barrier must
  SsdSimulator simulator(ssd, config);
  const std::vector<host::Command> commands{
      command(host::CmdType::kWrite, 0),
      command(host::CmdType::kWrite, 1),
      command(host::CmdType::kFlush, 0),
      command(host::CmdType::kWrite, 2),
  };
  const SsdSimStats stats = simulator.run(commands);
  EXPECT_EQ(stats.flushes, 1u);
  ASSERT_EQ(stats.queue_stats.size(), 1u);
  EXPECT_EQ(stats.queue_stats[0].flushes, 1u);

  // All four commands arrive at t=0. Without the barrier, write 2
  // would issue immediately (depth 8) and overlap the first two; the
  // flush holds it until both have completed, so its latency includes
  // the full drain. On one die writes serialise: the last write's
  // completion is the whole run.
  EXPECT_EQ(stats.writes, 3u);
  const double last_write = stats.write_latency.max();
  EXPECT_DOUBLE_EQ(last_write, stats.elapsed.value());
  // The flush completed exactly when the pre-flush writes drained,
  // i.e. strictly before the run's end (write 2 still had to run).
  EXPECT_GT(stats.elapsed.value(), 0.0);
}

TEST(SsdSimulator, QueuesKeepIndependentStatsThatSumToGlobal) {
  ftl::Ssd ssd(ssd_config(2, 1));
  SsdSimConfig config;
  config.queue_depth = 4;
  config.host.queues = 3;
  SsdSimulator simulator(ssd, config);
  std::vector<host::Command> commands;
  for (std::uint16_t q = 0; q < 3; ++q) {
    for (ftl::Lpa lpa = 0; lpa < 4; ++lpa) {
      commands.push_back(
          command(host::CmdType::kWrite, lpa * 3 + q, q));
    }
  }
  const SsdSimStats stats = simulator.run(commands);
  ASSERT_EQ(stats.queue_stats.size(), 3u);
  std::uint64_t per_queue_writes = 0;
  for (const host::QueueStats& queue : stats.queue_stats) {
    EXPECT_EQ(queue.writes, 4u);
    per_queue_writes += queue.writes;
  }
  EXPECT_EQ(per_queue_writes, stats.writes);
  EXPECT_EQ(stats.data_mismatches, 0u);
}

}  // namespace
}  // namespace xlf::sim
