#include "src/controller/ecc_unit.hpp"

#include <gtest/gtest.h>

#include "src/bch/error_injection.hpp"
#include "src/util/rng.hpp"

namespace xlf::controller {
namespace {

EccUnit make_unit() {
  return EccUnit(bch::AdaptiveCodecConfig{}, ecc_hw::EccHwConfig{});
}

BitVec random_message(Rng& rng) {
  BitVec msg(32768);
  for (std::size_t i = 0; i < msg.size(); ++i) msg.set(i, rng.chance(0.5));
  return msg;
}

TEST(EccUnit, ConfigMismatchRejected) {
  bch::AdaptiveCodecConfig codec;
  ecc_hw::EccHwConfig hw;
  hw.t_max = 32;  // codec says 65
  EXPECT_THROW(EccUnit(codec, hw), std::invalid_argument);
}

TEST(EccUnit, EncodeCarriesHardwareLatency) {
  EccUnit unit = make_unit();
  Rng rng(1);
  const EncodeOutcome out = unit.encode(random_message(rng));
  EXPECT_EQ(out.codeword.size(), 32768u + 16u * 3u);  // initial t = 3
  EXPECT_NEAR(out.latency.micros(), 51.25, 0.01);
  EXPECT_GT(out.energy.value(), 0.0);
}

TEST(EccUnit, CleanDecodeTakesFastPath) {
  EccUnit unit = make_unit();
  Rng rng(2);
  const EncodeOutcome enc = unit.encode(random_message(rng));
  BitVec cw = enc.codeword;
  const DecodeOutcome dec = unit.decode(cw);
  EXPECT_EQ(dec.result.status, bch::DecodeStatus::kClean);
  // Clean path = syndrome-only latency, about a third of the full
  // pipeline at t = 3.
  EXPECT_LT(dec.latency.micros(), 60.0);
}

TEST(EccUnit, DirtyDecodePaysFullPipeline) {
  EccUnit unit = make_unit();
  unit.set_correction_capability(8);
  Rng rng(3);
  const BitVec msg = random_message(rng);
  const EncodeOutcome enc = unit.encode(msg);
  BitVec cw = enc.codeword;
  bch::inject_exact(cw, 8, rng);
  const DecodeOutcome dec = unit.decode(cw);
  EXPECT_EQ(dec.result.status, bch::DecodeStatus::kCorrected);
  EXPECT_EQ(dec.result.corrected, 8u);
  EXPECT_GT(dec.latency.micros(), 100.0);
  EXPECT_EQ(unit.extract_message(cw), msg);
  // Dirty decode burns more energy than a clean one.
  BitVec clean = enc.codeword;
  const DecodeOutcome clean_dec = unit.decode(clean);
  EXPECT_GT(dec.energy.value(), clean_dec.energy.value());
}

TEST(EccUnit, ReferenceDecodeMatchesHonest) {
  EccUnit unit = make_unit();
  unit.set_correction_capability(5);
  Rng rng(4);
  const BitVec msg = random_message(rng);
  const EncodeOutcome enc = unit.encode(msg);
  BitVec honest = enc.codeword;
  bch::inject_exact(honest, 5, rng);
  BitVec fast = honest;
  const DecodeOutcome a = unit.decode(honest);
  const DecodeOutcome b = unit.decode_with_reference(fast, enc.codeword);
  EXPECT_EQ(a.result.status, b.result.status);
  EXPECT_EQ(a.result.corrected, b.result.corrected);
  EXPECT_NEAR(a.latency.value(), b.latency.value(), 1e-12);
  EXPECT_EQ(honest, fast);
}

TEST(EccUnit, AdaptationPortDrivesEverything) {
  EccUnit unit = make_unit();
  unit.set_correction_capability(65);
  EXPECT_EQ(unit.correction_capability(), 65u);
  EXPECT_EQ(unit.current_params().parity_bits(), 1040u);
  Rng rng(5);
  const EncodeOutcome out = unit.encode(random_message(rng));
  EXPECT_EQ(out.codeword.size(), 33808u);
}

}  // namespace
}  // namespace xlf::controller
