#include "src/util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace xlf {
namespace {

TEST(ThreadPool, SingleThreadRunsInlineOnCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(16);
  pool.parallel_for(seen.size(),
                    [&](std::size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SlotResultsMatchSerialReference) {
  // The deterministic-reduction pattern: task i writes slot i; the
  // gathered slots must be independent of the thread count.
  auto run = [](unsigned threads) {
    ThreadPool pool(threads);
    std::vector<std::uint64_t> slots(257);
    pool.parallel_for(slots.size(),
                      [&](std::size_t i) { slots[i] = i * i + 7 * i; });
    return slots;
  };
  EXPECT_EQ(run(1), run(5));
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(3);
  for (std::size_t count : {1u, 7u, 64u, 3u}) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(count, [&](std::size_t i) { sum += i + 1; });
    EXPECT_EQ(sum.load(), count * (count + 1) / 2);
  }
}

TEST(ThreadPool, ZeroTasksIsANoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, MoreTasksThanThreadsAllComplete) {
  ThreadPool pool(2);
  std::atomic<std::size_t> done{0};
  pool.parallel_for(10000, [&](std::size_t) { ++done; });
  EXPECT_EQ(done.load(), 10000u);
}

TEST(ThreadPool, FirstExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  std::atomic<std::size_t> completed{0};
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 37) {
                                     throw std::runtime_error("task 37");
                                   }
                                   ++completed;
                                 }),
               std::runtime_error);
  // All other tasks still drained and the pool accepts the next job.
  EXPECT_EQ(completed.load(), 99u);
  std::atomic<std::size_t> after{0};
  pool.parallel_for(10, [&](std::size_t) { ++after; });
  EXPECT_EQ(after.load(), 10u);
}

TEST(ThreadPool, SerialPathDrainsAndPropagatesLikePooledPath) {
  ThreadPool pool(1);
  std::size_t completed = 0;
  EXPECT_THROW(pool.parallel_for(5,
                                 [&](std::size_t i) {
                                   if (i == 2) throw std::logic_error("x");
                                   ++completed;
                                 }),
               std::logic_error);
  // Same contract as the pooled path: the other tasks still ran.
  EXPECT_EQ(completed, 4u);
}

// ---- TSan-facing edge cases: the exact paths the tsan CI job walks.

TEST(ThreadPool, SingleTaskOnPooledPoolRunsExactlyOnce) {
  // count == 1 with workers around: the caller's drain usually claims
  // the only index while workers wake to an exhausted job and retire.
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> hits{0};
    pool.parallel_for(1, [&](std::size_t i) {
      EXPECT_EQ(i, 0u);
      ++hits;
    });
    EXPECT_EQ(hits.load(), 1);
  }
}

TEST(ThreadPool, ExceptionFromTheOnlyTaskPropagates) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(1,
                        [](std::size_t) { throw std::runtime_error("only"); }),
      std::runtime_error);
  std::atomic<int> after{0};
  pool.parallel_for(4, [&](std::size_t) { ++after; });
  EXPECT_EQ(after.load(), 4);
}

TEST(ThreadPool, DestructionWithNoWorkEverSubmitted) {
  // Workers park in the idle wait and must all join on shutdown even
  // though no generation ever advanced.
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(4);
    EXPECT_EQ(pool.thread_count(), 4u);
  }
}

TEST(ThreadPool, DestructionRightAfterAJobJoinsLateWakers) {
  // A worker can wake for a finished job (or never wake for it at
  // all) while the pool is already being torn down; the shutdown
  // flag must win over the stale generation either way.
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(4);
    std::atomic<int> hits{0};
    pool.parallel_for(2, [&](std::size_t) { ++hits; });
    EXPECT_EQ(hits.load(), 2);
  }
}

}  // namespace
}  // namespace xlf
