#include "src/nand/threshold.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace xlf::nand {
namespace {

TEST(GrayMapping, RoundTrip) {
  for (Level level : kAllLevels) {
    EXPECT_EQ(bits_to_level(level_to_bits(level)), level);
  }
}

TEST(GrayMapping, AdjacentLevelsDifferInOneBit) {
  // The property the RBER accounting relies on: a one-level misread
  // costs exactly one of the cell's two bits.
  EXPECT_EQ(bit_distance(Level::kL0, Level::kL1), 1u);
  EXPECT_EQ(bit_distance(Level::kL1, Level::kL2), 1u);
  EXPECT_EQ(bit_distance(Level::kL2, Level::kL3), 1u);
}

TEST(GrayMapping, SkipsCostMoreBits) {
  EXPECT_EQ(bit_distance(Level::kL0, Level::kL2), 2u);
  EXPECT_EQ(bit_distance(Level::kL1, Level::kL3), 2u);
  // L0 (11) and L3 (10) differ in the LSB only.
  EXPECT_EQ(bit_distance(Level::kL0, Level::kL3), 1u);
  EXPECT_EQ(bit_distance(Level::kL2, Level::kL2), 0u);
}

TEST(GrayMapping, AllFourEncodingsDistinct) {
  for (Level a : kAllLevels) {
    for (Level b : kAllLevels) {
      if (a != b) {
        EXPECT_NE(bit_distance(a, b), 0u);
      }
    }
  }
}

TEST(VoltagePlan, DefaultIsConsistent) {
  const VoltagePlan plan;
  EXPECT_TRUE(plan.consistent());
}

TEST(VoltagePlan, FigureThreeOrdering) {
  // Fig. 3: erased < R1 < VFY1 < R2 < VFY2 < R3 < VFY3 < OP.
  const VoltagePlan plan;
  EXPECT_LT(plan.erased_mean, plan.read[0]);
  EXPECT_LT(plan.read[0], plan.verify[0]);
  EXPECT_LT(plan.verify[0], plan.read[1]);
  EXPECT_LT(plan.read[1], plan.verify[1]);
  EXPECT_LT(plan.verify[1], plan.read[2]);
  EXPECT_LT(plan.read[2], plan.verify[2]);
  EXPECT_LT(plan.verify[2], plan.over_program);
}

TEST(VoltagePlan, VerifyLookupMatchesArrays) {
  const VoltagePlan plan;
  EXPECT_EQ(plan.verify_for(Level::kL1), plan.verify[0]);
  EXPECT_EQ(plan.verify_for(Level::kL2), plan.verify[1]);
  EXPECT_EQ(plan.verify_for(Level::kL3), plan.verify[2]);
  EXPECT_THROW(plan.verify_for(Level::kL0), std::invalid_argument);
}

TEST(VoltagePlan, PreVerifySitsBelowVerify) {
  const VoltagePlan plan;
  for (Level level : {Level::kL1, Level::kL2, Level::kL3}) {
    EXPECT_LT(plan.pre_verify_for(level), plan.verify_for(level));
    EXPECT_NEAR(
        (plan.verify_for(level) - plan.pre_verify_for(level)).value(),
        plan.pre_verify_offset.value(), 1e-12);
  }
}

TEST(VoltagePlan, ReadClassifiesBands) {
  const VoltagePlan plan;
  EXPECT_EQ(plan.read_level(Volts{-3.0}), Level::kL0);
  EXPECT_EQ(plan.read_level(Volts{1.3}), Level::kL1);
  EXPECT_EQ(plan.read_level(Volts{2.6}), Level::kL2);
  EXPECT_EQ(plan.read_level(Volts{4.0}), Level::kL3);
  // Exactly at a read level the cell conducts as the upper band.
  EXPECT_EQ(plan.read_level(plan.read[1]), Level::kL2);
}

TEST(VoltagePlan, OverProgramDetection) {
  const VoltagePlan plan;
  EXPECT_FALSE(plan.is_over_programmed(Volts{4.5}));
  EXPECT_TRUE(plan.is_over_programmed(Volts{5.5}));
}

TEST(VoltagePlan, InconsistentPlansDetected) {
  VoltagePlan bad;
  bad.read[1] = Volts{3.0};  // above VFY2 = 2.5
  EXPECT_FALSE(bad.consistent());
  VoltagePlan bad2;
  bad2.over_program = Volts{3.0};  // below VFY3
  EXPECT_FALSE(bad2.consistent());
}

}  // namespace
}  // namespace xlf::nand
