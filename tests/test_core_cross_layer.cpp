#include "src/core/cross_layer.hpp"

#include <gtest/gtest.h>

#include "src/core/paper.hpp"
#include "src/core/subsystem.hpp"

namespace xlf::core {
namespace {

struct Fixture {
  SubsystemConfig config = SubsystemConfig::defaults();
  nand::NandTiming timing{config.device.timing, config.device.array.ispp,
                          config.device.array.plan,
                          config.device.array.variability,
                          config.device.array.aging};
  CrossLayerFramework framework{config.cross_layer, config.device.array.aging,
                                timing, config.hv};
};

TEST(OperatingPoint, NamedPointsMatchPaperDefinitions) {
  const OperatingPoint baseline = OperatingPoint::baseline();
  EXPECT_EQ(baseline.algorithm, nand::ProgramAlgorithm::kIsppSv);
  EXPECT_EQ(baseline.schedule, EccSchedule::kTrackSv);

  const OperatingPoint min_uber = OperatingPoint::min_uber();
  EXPECT_EQ(min_uber.algorithm, nand::ProgramAlgorithm::kIsppDv);
  EXPECT_EQ(min_uber.schedule, EccSchedule::kTrackSv);  // keeps SV sizing

  const OperatingPoint max_read = OperatingPoint::max_read();
  EXPECT_EQ(max_read.algorithm, nand::ProgramAlgorithm::kIsppDv);
  EXPECT_EQ(max_read.schedule, EccSchedule::kTrackDv);  // relaxes ECC

  EXPECT_NE(baseline.describe().find("ISPP-SV"), std::string::npos);
  EXPECT_NE(max_read.describe().find("DV schedule"), std::string::npos);
}

TEST(CrossLayer, ScheduledTMatchesPaperCorners) {
  Fixture fx;
  EXPECT_LE(fx.framework.scheduled_t(nand::ProgramAlgorithm::kIsppSv, 1.0), 4u);
  EXPECT_EQ(fx.framework.scheduled_t(nand::ProgramAlgorithm::kIsppSv, 1e6),
            paper::kTMaxSv);
  EXPECT_EQ(fx.framework.scheduled_t(nand::ProgramAlgorithm::kIsppDv, 1.0),
            paper::kTMin);
  EXPECT_NEAR(fx.framework.scheduled_t(nand::ProgramAlgorithm::kIsppDv, 1e6),
              paper::kTMaxDv, 2.0);
}

TEST(CrossLayer, MinUberKeepsSvScheduleAndReadLatency) {
  Fixture fx;
  for (double cycles : {1e2, 1e5, 1e6}) {
    const Metrics base =
        fx.framework.evaluate(OperatingPoint::baseline(), cycles);
    const Metrics min_uber =
        fx.framework.evaluate(OperatingPoint::min_uber(), cycles);
    EXPECT_EQ(base.t, min_uber.t);  // same ECC sizing
    // Identical decode path => identical read latency (Section 6.3.1:
    // "the UBER boost does not come at the cost of read throughput").
    EXPECT_NEAR(base.read_latency.value(), min_uber.read_latency.value(),
                1e-12);
    // But far better UBER.
    EXPECT_LT(min_uber.log10_uber, base.log10_uber - 2.0);
  }
}

TEST(CrossLayer, MaxReadGainMatchesFig11Shape) {
  Fixture fx;
  const Metrics base_bol =
      fx.framework.evaluate(OperatingPoint::baseline(), 1.0);
  const Metrics cross_bol =
      fx.framework.evaluate(OperatingPoint::max_read(), 1.0);
  EXPECT_NEAR(compare(cross_bol, base_bol).read_throughput_gain_pct, 0.0, 2.0);

  const Metrics base_eol =
      fx.framework.evaluate(OperatingPoint::baseline(), 1e6);
  const Metrics cross_eol =
      fx.framework.evaluate(OperatingPoint::max_read(), 1e6);
  const double gain = compare(cross_eol, base_eol).read_throughput_gain_pct;
  EXPECT_GT(gain, 24.0);  // paper: up to ~30%
  EXPECT_LT(gain, 34.0);
  // At unchanged UBER target.
  EXPECT_LE(cross_eol.uber, fx.config.cross_layer.uber_target * 1.0001);
}

TEST(CrossLayer, WriteLossMatchesFig9Window) {
  Fixture fx;
  for (double cycles : {1e2, 1e6}) {
    const Metrics base =
        fx.framework.evaluate(OperatingPoint::baseline(), cycles);
    const Metrics cross =
        fx.framework.evaluate(OperatingPoint::max_read(), cycles);
    const double loss = compare(cross, base).write_throughput_loss_pct;
    EXPECT_GT(loss, 33.0) << cycles;
    EXPECT_LT(loss, 55.0) << cycles;
  }
}

TEST(CrossLayer, EccPowerRelaxationAtEol) {
  // Section 6.3.2: ~7 mW -> ~1 mW.
  Fixture fx;
  const Metrics base = fx.framework.evaluate(OperatingPoint::baseline(), 1e6);
  const Metrics cross = fx.framework.evaluate(OperatingPoint::max_read(), 1e6);
  EXPECT_NEAR(base.ecc_decode_power.milliwatts(), 7.0, 1.5);
  EXPECT_LT(cross.ecc_decode_power.milliwatts(), 2.0);
}

TEST(CrossLayer, PowerBudgetRoughlyConstantAtEol) {
  // The NAND DV penalty is offset by the ECC relaxation.
  Fixture fx;
  const Metrics base = fx.framework.evaluate(OperatingPoint::baseline(), 1e6);
  const Metrics cross = fx.framework.evaluate(OperatingPoint::max_read(), 1e6);
  const double delta_mw =
      (cross.total_power() - base.total_power()).milliwatts();
  EXPECT_LT(std::abs(delta_mw), 8.0);
}

TEST(CrossLayer, FixedPointEvaluation) {
  Fixture fx;
  const OperatingPoint custom =
      OperatingPoint::custom(nand::ProgramAlgorithm::kIsppDv, 20);
  const Metrics m = fx.framework.evaluate(custom, 1e4);
  EXPECT_EQ(m.t, 20u);
  EXPECT_THROW(fx.framework.evaluate(
                   OperatingPoint::custom(nand::ProgramAlgorithm::kIsppSv, 2),
                   1e4),
               std::invalid_argument);
}

TEST(CrossLayer, EnumerationCoversSpace) {
  Fixture fx;
  const auto space = fx.framework.enumerate(1e5);
  EXPECT_EQ(space.size(), 2u * (65u - 3u + 1u));
}

TEST(CrossLayer, ParetoFrontIsNonDominated) {
  Fixture fx;
  const auto space = fx.framework.enumerate(1e6);
  const auto front = CrossLayerFramework::pareto_front(space);
  EXPECT_GT(front.size(), 0u);
  EXPECT_LT(front.size(), space.size());
  // No member may dominate another member.
  for (const Metrics& a : front) {
    for (const Metrics& b : front) {
      const bool dominates =
          a.read_throughput.value() >= b.read_throughput.value() &&
          a.write_throughput.value() >= b.write_throughput.value() &&
          a.log10_uber <= b.log10_uber &&
          a.total_power().value() <= b.total_power().value() &&
          (a.read_throughput.value() > b.read_throughput.value() ||
           a.write_throughput.value() > b.write_throughput.value() ||
           a.log10_uber < b.log10_uber ||
           a.total_power().value() < b.total_power().value());
      EXPECT_FALSE(dominates);
    }
  }
}

TEST(Metrics, CompareComputesDeltas) {
  Metrics a, b;
  a.read_throughput = BytesPerSecond::mib(20.0);
  b.read_throughput = BytesPerSecond::mib(25.0);
  a.write_throughput = BytesPerSecond::mib(10.0);
  b.write_throughput = BytesPerSecond::mib(6.0);
  a.log10_uber = -11.0;
  b.log10_uber = -15.0;
  const MetricsDelta delta = compare(b, a);
  EXPECT_NEAR(delta.read_throughput_gain_pct, 25.0, 1e-9);
  EXPECT_NEAR(delta.write_throughput_loss_pct, 40.0, 1e-9);
  EXPECT_NEAR(delta.uber_improvement_orders, 4.0, 1e-9);
}

}  // namespace
}  // namespace xlf::core
