#include "src/hv/hv_subsystem.hpp"

#include <gtest/gtest.h>

#include "src/hv/power_model.hpp"
#include "src/nand/array.hpp"
#include "src/nand/timing.hpp"

namespace xlf::hv {
namespace {

nand::NandTiming make_timing() {
  const nand::ArrayConfig array;
  return nand::NandTiming(nand::TimingConfig{}, array.ispp, array.plan,
                          array.variability, array.aging);
}

TEST(HvSubsystem, RailsAreReachable) {
  const HvSubsystem hv{HvConfig{}};
  EXPECT_GT(hv.program_pump().open_circuit_voltage().value(), 19.0);
  EXPECT_GT(hv.inhibit_pump().open_circuit_voltage().value(), 8.0);
  EXPECT_GT(hv.verify_pump().open_circuit_voltage().value(), 4.5);
}

TEST(HvSubsystem, EnergyBreakdownSumsToTotal) {
  const HvSubsystem hv{HvConfig{}};
  const nand::NandTiming timing = make_timing();
  const auto& trace =
      timing.sample_trace(nand::ProgramAlgorithm::kIsppSv, 100.0);
  const HvEnergyBreakdown energy = hv.energy(trace);
  EXPECT_NEAR(energy.total().value(),
              (energy.program_pump + energy.inhibit_pump + energy.verify_pump +
               energy.sensing + energy.background)
                  .value(),
              1e-15);
  EXPECT_GT(energy.program_pump.value(), 0.0);
  EXPECT_GT(energy.verify_pump.value(), 0.0);
  EXPECT_GT(energy.background.value(), 0.0);
}

TEST(HvSubsystem, ProgramPowerInPaperWindow) {
  // Fig. 6: program power between 0.15 and 0.18 W.
  const nand::NandTiming timing = make_timing();
  const NandPowerModel power(HvConfig{}, timing);
  for (auto algo :
       {nand::ProgramAlgorithm::kIsppSv, nand::ProgramAlgorithm::kIsppDv}) {
    for (double cycles : {1.0, 1e3, 1e5}) {
      for (auto pattern :
           {std::optional<nand::Level>{}, std::optional{nand::Level::kL1},
            std::optional{nand::Level::kL3}}) {
        const double watts =
            power.program_power(algo, cycles, pattern).value();
        EXPECT_GT(watts, 0.125) << to_string(algo) << " " << cycles;
        EXPECT_LT(watts, 0.190) << to_string(algo) << " " << cycles;
      }
    }
  }
}

TEST(HvSubsystem, DvPenaltyNearPaperValue) {
  // Fig. 6: ~7.5 mW between DV and SV, a 4-5% increment.
  const nand::NandTiming timing = make_timing();
  const NandPowerModel power(HvConfig{}, timing);
  for (double cycles : {1.0, 1e2, 1e4}) {
    const double gap_mw = power.dv_power_penalty(cycles).milliwatts();
    EXPECT_GT(gap_mw, 3.0) << cycles;
    EXPECT_LT(gap_mw, 13.0) << cycles;
  }
}

TEST(HvSubsystem, PatternOrderingL1L2L3) {
  // Fig. 6: programming toward L3 keeps the HV subsystem enabled
  // longer and at higher VCG.
  const nand::NandTiming timing = make_timing();
  const NandPowerModel power(HvConfig{}, timing);
  const double l1 =
      power.program_power(nand::ProgramAlgorithm::kIsppSv, 1e2, nand::Level::kL1)
          .value();
  const double l2 =
      power.program_power(nand::ProgramAlgorithm::kIsppSv, 1e2, nand::Level::kL2)
          .value();
  const double l3 =
      power.program_power(nand::ProgramAlgorithm::kIsppSv, 1e2, nand::Level::kL3)
          .value();
  EXPECT_LT(l1, l2);
  EXPECT_LT(l2, l3);
}

TEST(HvSubsystem, DvCostsMoreEnergyPerProgram) {
  const nand::NandTiming timing = make_timing();
  const NandPowerModel power(HvConfig{}, timing);
  EXPECT_GT(
      power.program_energy(nand::ProgramAlgorithm::kIsppDv, 1e3).value(),
      power.program_energy(nand::ProgramAlgorithm::kIsppSv, 1e3).value());
}

TEST(HvSubsystem, ReadEnergyScalesWithTime) {
  const HvSubsystem hv{HvConfig{}};
  const Joules short_read = hv.read_energy(Seconds::micros(25.0));
  const Joules long_read = hv.read_energy(Seconds::micros(75.0));
  EXPECT_GT(long_read.value(), short_read.value());
  // 75 us read at ~0.17 W-class sensing power: tens of microjoules.
  EXPECT_GT(long_read.microjoules(), 1.0);
  EXPECT_LT(long_read.microjoules(), 100.0);
}

TEST(HvSubsystem, AveragePowerRequiresDuration) {
  const HvSubsystem hv{HvConfig{}};
  nand::IsppTrace empty;
  EXPECT_THROW(hv.average_power(empty), std::invalid_argument);
}

}  // namespace
}  // namespace xlf::hv
