#include <gtest/gtest.h>

#include <vector>

#include "src/nand/device.hpp"
#include "src/nand/timing.hpp"
#include "src/util/rng.hpp"
#include "src/util/thread_pool.hpp"

namespace xlf::nand {
namespace {

NandTiming make_timing() {
  const ArrayConfig array;
  return NandTiming(TimingConfig{}, array.ispp, array.plan, array.variability,
                    array.aging);
}

TEST(Timing, DatasheetConstants) {
  const NandTiming timing = make_timing();
  EXPECT_NEAR(timing.read_time().micros(), 75.0, 1e-9);   // [27]
  EXPECT_NEAR(timing.erase_time().millis(), 2.5, 1e-9);
}

TEST(Timing, SvProgramNearPaperQuote) {
  // Section 6.3.3 quotes ~1.5 ms for the ISPP-SV page program.
  const NandTiming timing = make_timing();
  const double ms =
      timing.program_time(ProgramAlgorithm::kIsppSv, 100.0).millis();
  EXPECT_GT(ms, 1.1);
  EXPECT_LT(ms, 1.9);
}

TEST(Timing, DvSlowerByPaperWindow) {
  // Fig. 9 window: the DV/SV ratio implies a 35-55% write loss.
  const NandTiming timing = make_timing();
  for (double c : {1.0, 1e4, 1e6}) {
    const double ratio = timing.program_time(ProgramAlgorithm::kIsppDv, c) /
                         timing.program_time(ProgramAlgorithm::kIsppSv, c);
    EXPECT_GT(ratio, 1.45) << c;
    EXPECT_LT(ratio, 2.3) << c;
  }
}

TEST(Timing, DvPenaltyGrowsOverLife) {
  const NandTiming timing = make_timing();
  const double bol = timing.program_time(ProgramAlgorithm::kIsppDv, 1e2) /
                     timing.program_time(ProgramAlgorithm::kIsppSv, 1e2);
  const double eol = timing.program_time(ProgramAlgorithm::kIsppDv, 1e6) /
                     timing.program_time(ProgramAlgorithm::kIsppSv, 1e6);
  EXPECT_GT(eol, bol);
}

TEST(Timing, TracesAreCachedPerAgeCell) {
  const NandTiming timing = make_timing();
  const IsppTrace& a = timing.sample_trace(ProgramAlgorithm::kIsppSv, 1e4);
  const IsppTrace& b = timing.sample_trace(ProgramAlgorithm::kIsppSv, 1e4);
  EXPECT_EQ(&a, &b);
}

TEST(Timing, PatternTracesOrdered) {
  const NandTiming timing = make_timing();
  const Seconds l1 =
      timing.sample_trace(ProgramAlgorithm::kIsppSv, 10.0, Level::kL1)
          .duration();
  const Seconds l3 =
      timing.sample_trace(ProgramAlgorithm::kIsppSv, 10.0, Level::kL3)
          .duration();
  EXPECT_LT(l1, l3);
}

TEST(Timing, IoTransferAndLoadStrategies) {
  const NandTiming timing = make_timing();
  const Seconds load = timing.io_transfer_time(4096);
  EXPECT_GT(load.micros(), 10.0);
  const Seconds full = timing.page_write_time(
      ProgramAlgorithm::kIsppSv, 100.0, 4096, LoadStrategy::kFullSequence);
  const Seconds two_round = timing.page_write_time(
      ProgramAlgorithm::kIsppSv, 100.0, 4096, LoadStrategy::kTwoRound);
  // Two-round overlaps half the load (Section 6.3.3 mitigation).
  EXPECT_NEAR((full - two_round).value(), (load / 2.0).value(), 1e-12);
}

TEST(Device, AlgorithmSelectionIsTheRuntimeKnob) {
  DeviceConfig config;
  config.array.geometry.blocks = 1;
  config.array.geometry.pages_per_block = 2;
  NandDevice device(config);
  EXPECT_EQ(device.program_algorithm(), ProgramAlgorithm::kIsppSv);
  device.select_program_algorithm(ProgramAlgorithm::kIsppDv);
  EXPECT_EQ(device.program_algorithm(), ProgramAlgorithm::kIsppDv);
}

TEST(Device, SingleAlgorithmRomRejectsOthers) {
  DeviceConfig config;
  config.array.geometry.blocks = 1;
  config.array.geometry.pages_per_block = 2;
  config.available_algorithms = {ProgramAlgorithm::kIsppSv};
  NandDevice device(config);
  EXPECT_THROW(device.select_program_algorithm(ProgramAlgorithm::kIsppDv),
               std::invalid_argument);
  // Code-ROM devices cannot take uploads (Section 6.4).
  EXPECT_THROW(device.upload_algorithm(ProgramAlgorithm::kIsppDv),
               std::invalid_argument);
}

TEST(Device, SramStoreAcceptsUploads) {
  DeviceConfig config;
  config.array.geometry.blocks = 1;
  config.array.geometry.pages_per_block = 2;
  config.store = AlgorithmStore::kSram;
  config.available_algorithms = {ProgramAlgorithm::kIsppSv};
  NandDevice device(config);
  const std::size_t before = device.code_store_bytes();
  device.upload_algorithm(ProgramAlgorithm::kIsppDv);
  EXPECT_EQ(device.algorithms_resident(), 2u);
  EXPECT_GT(device.code_store_bytes(), before);
  EXPECT_NO_THROW(device.select_program_algorithm(ProgramAlgorithm::kIsppDv));
}

TEST(Device, CodeRomGrowthIsSmall) {
  // Section 6.4: selectability costs only "a small increase of the
  // code-ROM capacity".
  DeviceConfig single;
  single.array.geometry.blocks = 1;
  single.array.geometry.pages_per_block = 2;
  single.available_algorithms = {ProgramAlgorithm::kIsppSv};
  DeviceConfig dual = single;
  dual.available_algorithms = {ProgramAlgorithm::kIsppSv,
                               ProgramAlgorithm::kIsppDv};
  const NandDevice a(single), b(dual);
  const double growth = static_cast<double>(b.code_store_bytes()) /
                            a.code_store_bytes() -
                        1.0;
  EXPECT_GT(growth, 0.0);
  EXPECT_LT(growth, 0.15);
}

TEST(Device, CommandSetRoundTrip) {
  DeviceConfig config;
  config.array.geometry.blocks = 1;
  config.array.geometry.pages_per_block = 2;
  NandDevice device(config);
  Rng rng(1);
  BitVec data(device.geometry().bits_per_page());
  for (std::size_t i = 0; i < data.size(); ++i) data.set(i, rng.chance(0.5));

  const ProgramOutcome write = device.program_page({0, 0}, data);
  EXPECT_TRUE(write.ok);
  EXPECT_GT(write.busy_time.millis(), 1.0);

  const ReadOutcome read = device.read_page({0, 0});
  EXPECT_NEAR(read.busy_time.micros(), 75.0, 1e-9);
  EXPECT_LE(read.data.hamming_distance(data), 2u);

  const EraseOutcome erase = device.erase_block(0);
  EXPECT_NEAR(erase.busy_time.millis(), 2.5, 1e-9);
}

TEST(Device, UniformWearApplies) {
  DeviceConfig config;
  config.array.geometry.blocks = 3;
  config.array.geometry.pages_per_block = 2;
  NandDevice device(config);
  device.set_uniform_wear(1234.0);
  for (std::uint32_t b = 0; b < 3; ++b) {
    EXPECT_DOUBLE_EQ(device.wear(b), 1234.0);
  }
}

TEST(Timing, SharedCacheIsThreadSafeAndValueStable) {
  // The ISPP characterisation cache is the one mutable piece of
  // NandTiming; concurrent first-touch from many workers must neither
  // race nor change any value versus a serial reference instance.
  const NandTiming shared = make_timing();
  const NandTiming reference = make_timing();
  const std::vector<double> ages{1.0, 10.0, 1e2, 1e3, 1e4, 1e5, 1e6};

  ThreadPool pool(8);
  std::vector<double> sv(ages.size()), dv(ages.size());
  pool.parallel_for(ages.size(), [&](std::size_t i) {
    // Both algorithms from every worker: maximum cache contention.
    sv[i] = shared.program_time(ProgramAlgorithm::kIsppSv, ages[i]).value();
    dv[i] = shared.program_time(ProgramAlgorithm::kIsppDv, ages[i]).value();
  });
  for (std::size_t i = 0; i < ages.size(); ++i) {
    EXPECT_EQ(sv[i],
              reference.program_time(ProgramAlgorithm::kIsppSv, ages[i]).value())
        << ages[i];
    EXPECT_EQ(dv[i],
              reference.program_time(ProgramAlgorithm::kIsppDv, ages[i]).value())
        << ages[i];
  }
}

}  // namespace
}  // namespace xlf::nand
