// Data-plane execution modes: the sharded per-die cell queues
// (sim::DieShardExecutor) must leave every statistic byte-identical
// to inline execution for any thread count, and the metadata-only
// device mode (DeviceConfig::data_plane = false) must reproduce the
// bit-true run's FTL decisions — write amplification, GC relocations,
// erases, tuning spread, wear — exactly, differing only in the
// latency/timing columns its worst-case decode model changes.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "src/explore/ftl_sweep.hpp"
#include "src/explore/report.hpp"
#include "src/ftl/ssd.hpp"
#include "src/sim/die_shard.hpp"
#include "src/sim/host_workload.hpp"
#include "src/sim/ssd_sim.hpp"
#include "src/util/rng.hpp"
#include "src/util/thread_pool.hpp"

namespace xlf {
namespace {

explore::FtlSweepSpec small_spec() {
  explore::FtlSweepSpec spec;
  spec.base.die.device.array.geometry.blocks = 8;
  spec.base.die.device.array.geometry.pages_per_block = 4;
  spec.base.initial_pe_cycles = 1e4;
  spec.base.ftl.pe_cycles_per_erase = 3e4;
  spec.topologies = {{1, 1}, {2, 2}};
  spec.queue_depths = {2};
  spec.gc_policies = {"greedy", "cost-benefit"};
  spec.trim_fraction = 0.1;
  spec.requests = 48;
  spec.seed = 0xD1E5;
  return spec;
}

TEST(DataPlane, ShardedSweepIsByteIdenticalToInline) {
  const explore::FtlSweepSpec inline_spec = small_spec();
  explore::FtlSweepSpec sharded = inline_spec;
  sharded.shard_dies = true;

  ThreadPool serial(1), pool(4);
  const std::string baseline =
      explore::ftl_csv(explore::ftl_sweep(inline_spec, serial));
  EXPECT_EQ(baseline, explore::ftl_csv(explore::ftl_sweep(sharded, serial)));
  EXPECT_EQ(baseline, explore::ftl_csv(explore::ftl_sweep(sharded, pool)));
}

TEST(DataPlane, MetadataModeReproducesBitTrueDecisions) {
  const explore::FtlSweepSpec bit_true = small_spec();
  explore::FtlSweepSpec meta = bit_true;
  meta.data_plane = false;

  ThreadPool pool(2);
  const explore::FtlSweepResult a = explore::ftl_sweep(bit_true, pool);
  const explore::FtlSweepResult b = explore::ftl_sweep(meta, pool);
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    const explore::FtlSweepRow& x = a.rows[i];
    const explore::FtlSweepRow& y = b.rows[i];
    // Decision plane: identical — GC, wear leveling and tuning read
    // models and metadata, never cell noise.
    EXPECT_EQ(x.stats.writes, y.stats.writes) << "row " << i;
    EXPECT_EQ(x.stats.reads, y.stats.reads) << "row " << i;
    EXPECT_EQ(x.stats.trims, y.stats.trims) << "row " << i;
    EXPECT_EQ(x.stats.trimmed_pages, y.stats.trimmed_pages) << "row " << i;
    EXPECT_EQ(x.stats.gc_relocations, y.stats.gc_relocations) << "row " << i;
    EXPECT_EQ(x.stats.erases, y.stats.erases) << "row " << i;
    EXPECT_EQ(x.stats.wl_swaps, y.stats.wl_swaps) << "row " << i;
    EXPECT_EQ(x.stats.write_amplification, y.stats.write_amplification)
        << "row " << i;
    EXPECT_EQ(x.stats.min_t_used, y.stats.min_t_used) << "row " << i;
    EXPECT_EQ(x.stats.max_t_used, y.stats.max_t_used) << "row " << i;
    EXPECT_EQ(x.stats.wear_min, y.stats.wear_min) << "row " << i;
    EXPECT_EQ(x.stats.wear_max, y.stats.wear_max) << "row " << i;
    EXPECT_EQ(x.bad_blocks, y.bad_blocks) << "row " << i;
    // Metadata reads decode nothing, so the audit cannot mismatch and
    // nothing is uncorrectable; the remount rebuild must still hold.
    EXPECT_EQ(y.stats.uncorrectable, 0u) << "row " << i;
    EXPECT_EQ(y.stats.data_mismatches, 0u) << "row " << i;
    EXPECT_EQ(y.rebuild_mismatches, 0u) << "row " << i;
  }
}

// Direct simulator-level check on a 4-die SSD with bit-true payload
// verification: attaching the shard executor (cell work deferred into
// per-die queues, drained on 4 worker threads) changes nothing — not
// the payloads read back, not a single latency sample.
TEST(DataPlane, ShardedSimulatorMatchesInlineBitForBit) {
  const auto make_config = [] {
    ftl::SsdConfig config;
    config.topology = {2, 2};
    config.die.device.array.geometry.blocks = 8;
    config.die.device.array.geometry.pages_per_block = 4;
    config.initial_pe_cycles = 1e4;
    config.ftl.pe_cycles_per_erase = 3e4;
    return config;
  };

  sim::TenantSpec tenant;
  tenant.read_fraction = 0.3;
  tenant.trim_fraction = 0.05;
  const sim::MultiTenantWorkload workload({tenant});

  const auto run_once = [&](bool sharded, ThreadPool& pool) {
    ftl::Ssd ssd(make_config());
    sim::SsdSimConfig sim_config;
    sim_config.queue_depth = 4;
    std::optional<sim::DieShardExecutor> shards;
    // Tiny batch threshold so the mid-run flushes (not just the final
    // one) actually fire on this small workload.
    if (sharded) shards.emplace(ssd, pool, 8);
    if (shards.has_value()) sim_config.data_plane_shards = &*shards;
    sim::SsdSimulator simulator(ssd, sim_config);
    simulator.prepopulate();
    Rng stream(0xF00D);
    const std::vector<host::Command> commands =
        workload.generate(ssd.logical_pages(), 128, stream);
    sim::SsdSimStats stats = simulator.run(commands);
    shards.reset();
    EXPECT_EQ(simulator.verify_stored(), 0u);
    return stats;
  };

  ThreadPool serial(1), pool(4);
  const sim::SsdSimStats a = run_once(false, serial);
  const sim::SsdSimStats b = run_once(true, pool);
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.trims, b.trims);
  EXPECT_EQ(a.trimmed_pages, b.trimmed_pages);
  EXPECT_EQ(a.uncorrectable, b.uncorrectable);
  EXPECT_EQ(a.data_mismatches, 0u);
  EXPECT_EQ(b.data_mismatches, 0u);
  EXPECT_EQ(a.corrected_bits, b.corrected_bits);
  EXPECT_EQ(a.gc_relocations, b.gc_relocations);
  EXPECT_EQ(a.erases, b.erases);
  EXPECT_EQ(a.write_amplification, b.write_amplification);
  EXPECT_EQ(a.elapsed.v, b.elapsed.v);
  EXPECT_EQ(a.ecc_energy.v, b.ecc_energy.v);
  EXPECT_EQ(a.nand_energy.v, b.nand_energy.v);
  EXPECT_EQ(a.read_latency.mean(), b.read_latency.mean());
  EXPECT_EQ(a.read_latency.max(), b.read_latency.max());
  EXPECT_EQ(a.write_latency.mean(), b.write_latency.mean());
  EXPECT_EQ(a.write_latency.max(), b.write_latency.max());
}

}  // namespace
}  // namespace xlf
