#include "src/nand/array.hpp"

#include <gtest/gtest.h>

#include "src/util/stats.hpp"

namespace xlf::nand {
namespace {

ArrayConfig tiny_config() {
  ArrayConfig config;
  config.geometry.blocks = 2;
  config.geometry.pages_per_block = 4;
  return config;
}

BitVec random_page_bits(const Geometry& geometry, Rng& rng) {
  BitVec bits(geometry.bits_per_page());
  for (std::size_t i = 0; i < bits.size(); ++i) bits.set(i, rng.chance(0.5));
  return bits;
}

TEST(Array, StartsEresedEverywhere) {
  const NandArray array(tiny_config());
  for (std::uint32_t b = 0; b < 2; ++b) {
    for (std::uint32_t p = 0; p < 4; ++p) {
      EXPECT_TRUE(array.is_erased({b, p}));
    }
    EXPECT_DOUBLE_EQ(array.wear(b), 0.0);  // factory fresh
  }
}

TEST(Array, LevelBitConversionRoundTrip) {
  Rng rng(1);
  BitVec bits(64);
  for (std::size_t i = 0; i < bits.size(); ++i) bits.set(i, rng.chance(0.5));
  const auto levels = NandArray::bits_to_levels(bits);
  EXPECT_EQ(levels.size(), 32u);
  EXPECT_EQ(NandArray::levels_to_bits(levels), bits);
}

TEST(Array, ProgramReadRoundTripAtBol) {
  // At beginning of life the RBER is ~2.5e-6: a single page (34.5k
  // bits) reads back error-free with overwhelming probability.
  NandArray array(tiny_config());
  Rng rng(2);
  const BitVec data = random_page_bits(array.config().geometry, rng);
  const ProgramResult result =
      array.program_page({0, 0}, data, ProgramAlgorithm::kIsppSv,
                         ProgramMode::kStatistical);
  EXPECT_TRUE(result.ok);
  EXPECT_FALSE(array.is_erased({0, 0}));
  const BitVec read = array.read_page({0, 0});
  EXPECT_LE(read.hamming_distance(data), 2u);
}

TEST(Array, IsppModeRoundTripAtBol) {
  NandArray array(tiny_config());
  Rng rng(3);
  const BitVec data = random_page_bits(array.config().geometry, rng);
  const ProgramResult result = array.program_page(
      {0, 1}, data, ProgramAlgorithm::kIsppDv, ProgramMode::kIsppSimulation);
  EXPECT_TRUE(result.ok);
  ASSERT_TRUE(result.trace.has_value());
  EXPECT_TRUE(result.trace->converged);
  EXPECT_GT(result.trace->pulses, 10u);
  const BitVec read = array.read_page({0, 1});
  EXPECT_LE(read.hamming_distance(data), 2u);
}

TEST(Array, ProgramWithoutEraseRejected) {
  NandArray array(tiny_config());
  Rng rng(4);
  const BitVec data = random_page_bits(array.config().geometry, rng);
  array.program_page({0, 0}, data, ProgramAlgorithm::kIsppSv);
  EXPECT_THROW(array.program_page({0, 0}, data, ProgramAlgorithm::kIsppSv),
               std::invalid_argument);
}

TEST(Array, EraseRestoresProgrammability) {
  NandArray array(tiny_config());
  Rng rng(5);
  const BitVec data = random_page_bits(array.config().geometry, rng);
  array.program_page({0, 0}, data, ProgramAlgorithm::kIsppSv);
  array.erase_block(0);
  EXPECT_TRUE(array.is_erased({0, 0}));
  EXPECT_DOUBLE_EQ(array.wear(0), 1.0);
  EXPECT_NO_THROW(
      array.program_page({0, 0}, data, ProgramAlgorithm::kIsppSv));
}

TEST(Array, EraseIsPerBlock) {
  NandArray array(tiny_config());
  Rng rng(6);
  const BitVec data = random_page_bits(array.config().geometry, rng);
  array.program_page({0, 0}, data, ProgramAlgorithm::kIsppSv);
  array.program_page({1, 0}, data, ProgramAlgorithm::kIsppSv);
  array.erase_block(0);
  EXPECT_TRUE(array.is_erased({0, 0}));
  EXPECT_FALSE(array.is_erased({1, 0}));
  EXPECT_DOUBLE_EQ(array.wear(1), 0.0);
}

TEST(Array, WearControls) {
  NandArray array(tiny_config());
  array.set_wear(1, 5e5);
  EXPECT_DOUBLE_EQ(array.wear(1), 5e5);
  EXPECT_THROW(array.set_wear(9, 1.0), std::invalid_argument);
  EXPECT_THROW(array.set_wear(0, -1.0), std::invalid_argument);
}

TEST(Array, ErasedThresholdsAreNegative) {
  NandArray array(tiny_config());
  const auto thresholds = array.thresholds({0, 0});
  RunningStats stats;
  for (Volts v : thresholds) stats.add(v.value());
  EXPECT_NEAR(stats.mean(), -3.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 0.4, 0.05);
}

TEST(Array, ReadLevelsMatchProgrammedTargets) {
  NandArray array(tiny_config());
  Rng rng(7);
  const BitVec data = random_page_bits(array.config().geometry, rng);
  array.program_page({1, 2}, data, ProgramAlgorithm::kIsppSv);
  const auto levels = array.read_levels({1, 2});
  const auto targets = NandArray::bits_to_levels(data);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (levels[i] != targets[i]) ++mismatches;
  }
  EXPECT_LE(mismatches, 2u);
}

TEST(Array, AgedPagesShowMoreErrors) {
  ArrayConfig config = tiny_config();
  NandArray fresh(config);
  NandArray aged(config);
  aged.set_wear(0, 1e6);
  Rng rng(8);
  const BitVec data = random_page_bits(config.geometry, rng);
  fresh.program_page({0, 0}, data, ProgramAlgorithm::kIsppSv);
  aged.program_page({0, 0}, data, ProgramAlgorithm::kIsppSv);
  const auto fresh_errors = fresh.read_page({0, 0}).hamming_distance(data);
  const auto aged_errors = aged.read_page({0, 0}).hamming_distance(data);
  // EOL SV RBER 1e-3 over 34.5k bits: ~35 expected errors.
  EXPECT_LT(fresh_errors, 5u);
  EXPECT_GT(aged_errors, 10u);
}

TEST(Array, OutOfRangeAddressesRejected) {
  NandArray array(tiny_config());
  EXPECT_THROW(array.read_page({2, 0}), std::invalid_argument);
  EXPECT_THROW(array.read_page({0, 4}), std::invalid_argument);
  EXPECT_THROW(array.erase_block(5), std::invalid_argument);
}

TEST(Array, WrongPageSizeRejected) {
  NandArray array(tiny_config());
  EXPECT_THROW(
      array.program_page({0, 0}, BitVec(100), ProgramAlgorithm::kIsppSv),
      std::invalid_argument);
}

}  // namespace
}  // namespace xlf::nand
