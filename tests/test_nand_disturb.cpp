#include "src/nand/disturb.hpp"

#include <gtest/gtest.h>

#include "src/nand/array.hpp"
#include "src/util/rng.hpp"

namespace xlf::nand {
namespace {

TEST(DisturbModel, RetentionGrowsWithTimeAndWear) {
  const DisturbModel model{DisturbConfig{}};
  EXPECT_LT(model.retention_mean(10.0, 1e3).value(),
            model.retention_mean(1000.0, 1e3).value());
  EXPECT_LT(model.retention_mean(1000.0, 1e2).value(),
            model.retention_mean(1000.0, 1e5).value());
  EXPECT_NEAR(model.retention_mean(0.0, 1e3).value(), 0.0, 1e-12);
}

TEST(DisturbModel, RetentionAnchor) {
  // 1000 h at 1000 cycles is the configuration anchor.
  const DisturbConfig config;
  const DisturbModel model(config);
  EXPECT_NEAR(model.retention_mean(1000.0, 1000.0).value(),
              config.retention_loss_1khr.value(), 1e-12);
  EXPECT_NEAR(model.retention_sigma(1000.0, 1000.0).value(),
              config.retention_loss_1khr.value() * config.retention_rel_sigma,
              1e-12);
}

TEST(DisturbModel, RetentionSubLinearInTime) {
  // Detrapping slows down: doubling the bake must less-than-double
  // the loss.
  const DisturbModel model{DisturbConfig{}};
  const double once = model.retention_mean(500.0, 1e3).value();
  const double twice = model.retention_mean(1000.0, 1e3).value();
  EXPECT_GT(twice, once);
  EXPECT_LT(twice, 2.0 * once);
}

TEST(DisturbModel, ReadDisturbLinearInReads) {
  const DisturbModel model{DisturbConfig{}};
  EXPECT_NEAR(model.read_disturb_shift(2000).value(),
              2.0 * model.read_disturb_shift(1000).value(), 1e-12);
  EXPECT_NEAR(model.read_disturb_shift(0).value(), 0.0, 1e-12);
}

TEST(DisturbModel, InvalidConfigsRejected) {
  DisturbConfig bad;
  bad.retention_rel_sigma = -0.1;
  EXPECT_THROW(DisturbModel{bad}, std::invalid_argument);
  bad = DisturbConfig{};
  bad.time_exponent = 0.0;
  EXPECT_THROW(DisturbModel{bad}, std::invalid_argument);
}

// --- array-level stress injection -------------------------------------

ArrayConfig tiny_config() {
  ArrayConfig config;
  config.geometry.blocks = 1;
  config.geometry.pages_per_block = 2;
  return config;
}

BitVec random_page_bits(const Geometry& geometry, Rng& rng) {
  BitVec bits(geometry.bits_per_page());
  for (std::size_t i = 0; i < bits.size(); ++i) bits.set(i, rng.chance(0.5));
  return bits;
}

TEST(ArrayDisturb, RetentionBakeCreatesDownwardErrors) {
  NandArray array(tiny_config());
  array.set_wear(0, 1e4);
  Rng rng(1);
  const BitVec data = random_page_bits(array.config().geometry, rng);
  array.program_page({0, 0}, data, ProgramAlgorithm::kIsppSv);
  const auto before = array.read_page({0, 0}).hamming_distance(data);

  array.apply_retention({0, 0}, /*hours=*/20000.0);
  const auto after = array.read_page({0, 0}).hamming_distance(data);
  EXPECT_GT(after, before + 5);

  // Retention moves cells down: misread levels must sit at or below
  // the programmed ones.
  const auto levels = array.read_levels({0, 0});
  const auto targets = NandArray::bits_to_levels(data);
  for (std::size_t i = 0; i < levels.size(); ++i) {
    EXPECT_LE(static_cast<int>(levels[i]), static_cast<int>(targets[i]));
  }
}

TEST(ArrayDisturb, LongerBakeHurtsMore) {
  const auto errors_after = [&](double hours) {
    NandArray array(tiny_config());
    array.set_wear(0, 1e4);
    Rng rng(2);
    const BitVec data = random_page_bits(array.config().geometry, rng);
    array.program_page({0, 0}, data, ProgramAlgorithm::kIsppSv);
    array.apply_retention({0, 0}, hours);
    return array.read_page({0, 0}).hamming_distance(data);
  };
  EXPECT_LT(errors_after(1000.0), errors_after(50000.0));
}

TEST(ArrayDisturb, RetentionOnErasedPageRejected) {
  NandArray array(tiny_config());
  EXPECT_THROW(array.apply_retention({0, 0}, 100.0), std::invalid_argument);
}

TEST(ArrayDisturb, ReadDisturbLiftsErasedCells) {
  NandArray array(tiny_config());
  Rng rng(3);
  // All-ones payload = all cells erased (L0).
  BitVec data(array.config().geometry.bits_per_page());
  for (std::size_t i = 0; i < data.size(); ++i) data.set(i, true);
  array.program_page({0, 0}, data, ProgramAlgorithm::kIsppSv);
  EXPECT_EQ(array.read_page({0, 0}).hamming_distance(data), 0u);

  // Hammer the block: erased cells creep over R1 eventually.
  array.apply_read_disturb({0, 0}, 200000);
  EXPECT_GT(array.read_page({0, 0}).hamming_distance(data), 0u);
}

TEST(ArrayDisturb, ModerateStressStaysWithinEccReach) {
  // A realistic bake at mid-life must stay within what the SV-EOL
  // correction capability handles — the margin story of the paper.
  NandArray array(tiny_config());
  array.set_wear(0, 1e4);
  Rng rng(4);
  const BitVec data = random_page_bits(array.config().geometry, rng);
  array.program_page({0, 0}, data, ProgramAlgorithm::kIsppSv);
  array.apply_retention({0, 0}, 3000.0);
  const auto errors = array.read_page({0, 0}).hamming_distance(data);
  EXPECT_LT(errors, 65u);  // t = 65 covers it
}

}  // namespace
}  // namespace xlf::nand
