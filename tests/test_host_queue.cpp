// The multi-queue host interface: submission/completion bookkeeping,
// flush barriers, and the built-in arbitration policies' pick order
// (round-robin rotation, weighted deficit sharing, deterministic
// tie-breaks).
#include "src/host/queues.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "src/policy/registry.hpp"

namespace xlf::host {
namespace {

Command make(CmdType type, std::uint16_t queue, ftl::Lpa lba = 0) {
  Command command;
  command.type = type;
  command.queue = queue;
  command.lba = lba;
  return command;
}

TEST(HostInterface, SubmitPopRoundTripKeepsFifoOrderPerQueue) {
  HostConfig config;
  config.queues = 2;
  HostInterface host(config);
  host.submit(make(CmdType::kWrite, 0, 10), Seconds{1.0});
  host.submit(make(CmdType::kWrite, 0, 11), Seconds{2.0});
  host.submit(make(CmdType::kRead, 1, 12), Seconds{3.0});
  EXPECT_TRUE(host.pending());
  EXPECT_EQ(host.backlog(0), 2u);
  EXPECT_EQ(host.backlog(1), 1u);

  const auto [first, arrival] = host.pop(0);
  EXPECT_EQ(first.lba, 10u);
  EXPECT_DOUBLE_EQ(arrival.value(), 1.0);
  const auto [second, arrival2] = host.pop(0);
  EXPECT_EQ(second.lba, 11u);
  EXPECT_DOUBLE_EQ(arrival2.value(), 2.0);
  EXPECT_EQ(host.backlog(0), 0u);
}

TEST(HostInterface, RejectsBadShapes) {
  const auto build = [](std::size_t queues, std::vector<double> weights) {
    HostConfig config;
    config.queues = queues;
    config.queue_weights = std::move(weights);
    HostInterface host(config);
  };
  EXPECT_THROW(build(0, {}), std::logic_error);
  // More weights than queues.
  EXPECT_THROW(build(1, {1.0, 2.0}), std::logic_error);
  // Non-positive weight.
  EXPECT_THROW(build(1, {0.0}), std::logic_error);
  // Unknown arbitration names throw the registry's teaching message.
  try {
    HostConfig config;
    config.arbitration = "lottery";
    HostInterface host(config);
    FAIL() << "unknown arbitration name must throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown arbitration policy 'lottery'"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("round-robin"), std::string::npos) << what;
    EXPECT_NE(what.find("weighted"), std::string::npos) << what;
  }
}

TEST(HostInterface, ShortWeightListPadsWithOnes) {
  HostConfig config;
  config.queues = 3;
  config.queue_weights = {4.0};
  HostInterface host(config);
  EXPECT_DOUBLE_EQ(host.weight(0), 4.0);
  EXPECT_DOUBLE_EQ(host.weight(1), 1.0);
  EXPECT_DOUBLE_EQ(host.weight(2), 1.0);
}

TEST(HostInterface, RoundRobinRotatesAcrossEligibleQueues) {
  HostConfig config;
  config.queues = 3;
  HostInterface host(config);
  for (std::uint16_t q = 0; q < 3; ++q) {
    host.submit(make(CmdType::kWrite, q), Seconds{0.0});
    host.submit(make(CmdType::kWrite, q), Seconds{0.0});
  }
  std::vector<std::uint32_t> order;
  for (int i = 0; i < 6; ++i) {
    const auto pick = host.arbitrate();
    ASSERT_TRUE(pick.has_value());
    order.push_back(*pick);
    host.pop(*pick);
  }
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 1, 2, 0, 1, 2}));
  EXPECT_FALSE(host.arbitrate().has_value());
}

TEST(HostInterface, RoundRobinSkipsEmptyAndBlockedQueues) {
  HostConfig config;
  config.queues = 3;
  HostInterface host(config);
  host.submit(make(CmdType::kWrite, 1), Seconds{0.0});
  host.submit(make(CmdType::kWrite, 2), Seconds{0.0});
  host.block(1);
  const auto pick = host.arbitrate();
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 2u);  // 0 empty, 1 behind a flush barrier
  host.pop(*pick);
  EXPECT_FALSE(host.arbitrate().has_value());
  host.unblock(1);
  ASSERT_TRUE(host.arbitrate().has_value());
  EXPECT_EQ(*host.arbitrate(), 1u);
}

TEST(HostInterface, WeightedArbitrationIssuesInWeightProportion) {
  HostConfig config;
  config.queues = 2;
  config.arbitration = "weighted";
  config.queue_weights = {3.0, 1.0};
  HostInterface host(config);
  for (int i = 0; i < 8; ++i) {
    host.submit(make(CmdType::kWrite, 0), Seconds{0.0});
    host.submit(make(CmdType::kWrite, 1), Seconds{0.0});
  }
  std::size_t issued_heavy = 0;
  // First 8 issues while both queues stay backlogged: deficit sharing
  // gives the weight-3 queue 3 of every 4 slots (6 of 8).
  for (int i = 0; i < 8; ++i) {
    const auto pick = host.arbitrate();
    ASSERT_TRUE(pick.has_value());
    if (*pick == 0) ++issued_heavy;
    host.pop(*pick);
  }
  EXPECT_EQ(issued_heavy, 6u);
}

TEST(HostInterface, WeightedTieBreaksTowardLowestId) {
  HostConfig config;
  config.queues = 3;
  config.arbitration = "weighted";
  HostInterface host(config);
  for (std::uint16_t q = 0; q < 3; ++q) {
    host.submit(make(CmdType::kWrite, q), Seconds{0.0});
  }
  // Equal weights, equal (zero) issue counts: lowest id goes first.
  const auto pick = host.arbitrate();
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 0u);
}

TEST(HostInterface, CompletionsFeedPerQueueStatsAndDrain) {
  HostConfig config;
  config.queues = 2;
  config.record_completions = true;
  HostInterface host(config);

  Completion write;
  write.type = CmdType::kWrite;
  write.queue = 1;
  write.submitted = Seconds{1.0};
  write.completed = Seconds{3.0};
  host.complete(write);

  Completion trim;
  trim.type = CmdType::kTrim;
  trim.queue = 1;
  host.complete(trim);

  EXPECT_EQ(host.stats(1).writes, 1u);
  EXPECT_EQ(host.stats(1).trims, 1u);
  EXPECT_EQ(host.stats(1).commands(), 2u);
  EXPECT_DOUBLE_EQ(host.stats(1).write_latency.mean(), 2.0);
  EXPECT_EQ(host.stats(0).commands(), 0u);

  const std::vector<Completion> drained = host.drain(1);
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].type, CmdType::kWrite);
  EXPECT_TRUE(host.drain(1).empty());
}

TEST(HostInterface, CompletionRingStaysEmptyUnlessRequested) {
  // Stats-only consumers (the simulator) must not accumulate
  // O(commands) of ring memory: retention is opt-in.
  HostConfig config;
  HostInterface host(config);
  Completion entry;
  entry.type = CmdType::kWrite;
  host.complete(entry);
  EXPECT_EQ(host.stats(0).writes, 1u);
  EXPECT_TRUE(host.drain(0).empty());
}

TEST(HostInterface, FlushHorizonTracksLatestScheduledCompletion) {
  HostConfig config;
  HostInterface host(config);
  EXPECT_DOUBLE_EQ(host.last_scheduled_completion(0).value(), 0.0);
  host.note_scheduled_completion(0, Seconds{5.0});
  host.note_scheduled_completion(0, Seconds{2.0});  // older: no regress
  EXPECT_DOUBLE_EQ(host.last_scheduled_completion(0).value(), 5.0);
}

TEST(ArbitrationRegistry, ListsBuiltins) {
  const auto names =
      policy::PolicyRegistry<policy::ArbitrationPolicy>::instance().names();
  EXPECT_NE(std::find(names.begin(), names.end(), "round-robin"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "weighted"), names.end());
}

}  // namespace
}  // namespace xlf::host
