#include "src/core/subsystem.hpp"

#include <gtest/gtest.h>

#include "src/util/rng.hpp"

namespace xlf::core {
namespace {

SubsystemConfig small_config() {
  SubsystemConfig config = SubsystemConfig::defaults();
  config.device.array.geometry.blocks = 4;
  config.device.array.geometry.pages_per_block = 2;
  return config;
}

BitVec random_page(const SubsystemConfig& config, std::uint64_t seed) {
  Rng rng(seed);
  BitVec data(config.device.array.geometry.data_bits_per_page());
  for (std::size_t i = 0; i < data.size(); ++i) data.set(i, rng.chance(0.5));
  return data;
}

TEST(Subsystem, ConstructsOnBaseline) {
  MemorySubsystem subsystem(small_config());
  EXPECT_EQ(subsystem.active_point().name, "baseline");
  EXPECT_EQ(subsystem.controller().program_algorithm(),
            nand::ProgramAlgorithm::kIsppSv);
}

TEST(Subsystem, ApplyConfiguresBothLayersAtomically) {
  MemorySubsystem subsystem(small_config());
  subsystem.device().set_uniform_wear(1e6);
  subsystem.apply(OperatingPoint::max_read());
  EXPECT_EQ(subsystem.controller().program_algorithm(),
            nand::ProgramAlgorithm::kIsppDv);
  // ECC relaxed to the DV schedule at EOL wear.
  EXPECT_LT(subsystem.controller().correction_capability(), 20u);

  subsystem.apply(OperatingPoint::min_uber());
  EXPECT_EQ(subsystem.controller().program_algorithm(),
            nand::ProgramAlgorithm::kIsppDv);
  // ECC keeps the SV sizing.
  EXPECT_EQ(subsystem.controller().correction_capability(), 65u);
}

TEST(Subsystem, RefreshReResolvesAfterAging) {
  MemorySubsystem subsystem(small_config());
  const unsigned t_bol = subsystem.controller().correction_capability();
  subsystem.device().set_uniform_wear(1e6);
  subsystem.refresh();
  EXPECT_GT(subsystem.controller().correction_capability(), t_bol);
}

TEST(Subsystem, CurrentMetricsReflectActivePoint) {
  MemorySubsystem subsystem(small_config());
  subsystem.device().set_uniform_wear(1e6);
  subsystem.apply(OperatingPoint::baseline());
  const Metrics base = subsystem.current_metrics();
  subsystem.apply(OperatingPoint::max_read());
  const Metrics cross = subsystem.current_metrics();
  EXPECT_GT(cross.read_throughput.value(), base.read_throughput.value());
}

TEST(Subsystem, EndToEndRoundTrip) {
  const SubsystemConfig config = small_config();
  MemorySubsystem subsystem(config);
  const BitVec data = random_page(config, 1);
  const auto write = subsystem.write_page({0, 0}, data);
  EXPECT_TRUE(write.ok);
  const auto read = subsystem.read_page({0, 0});
  EXPECT_TRUE(read.ok);
  EXPECT_EQ(read.data, data);
}

TEST(Subsystem, SegmentsRouteOperatingPoints) {
  const SubsystemConfig config = small_config();
  MemorySubsystem subsystem(config);
  subsystem.define_segment({"otp", 0, 0, OperatingPoint::min_uber()});
  subsystem.define_segment({"bulk", 1, 3, OperatingPoint::baseline()});

  const BitVec data = random_page(config, 2);
  subsystem.write_page({0, 0}, data);
  EXPECT_EQ(subsystem.controller().program_algorithm(),
            nand::ProgramAlgorithm::kIsppDv);

  subsystem.write_page({2, 0}, data);
  EXPECT_EQ(subsystem.controller().program_algorithm(),
            nand::ProgramAlgorithm::kIsppSv);

  // Both read back fine regardless of current configuration.
  EXPECT_EQ(subsystem.read_page({0, 0}).data, data);
  EXPECT_EQ(subsystem.read_page({2, 0}).data, data);
}

TEST(Subsystem, OverlappingSegmentsRejected) {
  MemorySubsystem subsystem(small_config());
  subsystem.define_segment({"a", 0, 1, OperatingPoint::baseline()});
  EXPECT_THROW(
      subsystem.define_segment({"b", 1, 2, OperatingPoint::min_uber()}),
      std::invalid_argument);
}

TEST(Subsystem, SegmentBoundsValidated) {
  MemorySubsystem subsystem(small_config());
  EXPECT_THROW(
      subsystem.define_segment({"bad", 2, 1, OperatingPoint::baseline()}),
      std::invalid_argument);
  EXPECT_THROW(
      subsystem.define_segment({"oob", 0, 99, OperatingPoint::baseline()}),
      std::invalid_argument);
}

}  // namespace
}  // namespace xlf::core
