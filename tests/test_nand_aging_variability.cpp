#include <gtest/gtest.h>

#include "src/nand/aging.hpp"
#include "src/nand/variability.hpp"
#include "src/util/stats.hpp"

namespace xlf::nand {
namespace {

TEST(AgingLaw, PaperAnchors) {
  const AgingLaw law;
  // BOL RBER 2.5e-6 (Fig. 7: t=4 entry point).
  EXPECT_NEAR(law.rber(ProgramAlgorithm::kIsppSv, 0.0), 2.5e-6, 1e-8);
  // EOL RBER ~1e-3 (Fig. 7: t=65 point).
  EXPECT_NEAR(law.rber(ProgramAlgorithm::kIsppSv, 1e6), 1e-3, 5e-5);
  // One order of magnitude DV improvement at every age (Fig. 5).
  for (double c : {1.0, 1e3, 1e5, 1e6}) {
    EXPECT_NEAR(law.rber(ProgramAlgorithm::kIsppSv, c) /
                    law.rber(ProgramAlgorithm::kIsppDv, c),
                10.0, 1e-9);
  }
}

TEST(AgingLaw, RberMonotoneInCycles) {
  const AgingLaw law;
  for (auto algo : {ProgramAlgorithm::kIsppSv, ProgramAlgorithm::kIsppDv}) {
    double prev = 0.0;
    for (double c = 1.0; c <= 1e6; c *= 3.0) {
      const double r = law.rber(algo, c);
      EXPECT_GT(r, prev);
      prev = r;
    }
  }
}

TEST(AgingLaw, MicroEffectsScaleWithWear) {
  const AgingLaw law;
  // Cells get faster (negative onset shift) and more dispersed.
  EXPECT_NEAR(law.k_shift(0.0).value(), 0.0, 1e-12);
  EXPECT_LT(law.k_shift(1e6).value(), -0.2);
  EXPECT_NEAR(law.speed_spread_multiplier(0.0), 1.0, 1e-12);
  EXPECT_GT(law.speed_spread_multiplier(1e6), 1.4);
  EXPECT_NEAR(law.dv_zone_multiplier(0.0), 1.0, 1e-12);
  EXPECT_GT(law.dv_zone_multiplier(1e6), 2.0);
}

TEST(AgingLaw, NegativeCyclesRejected) {
  const AgingLaw law;
  EXPECT_THROW(law.rber(ProgramAlgorithm::kIsppSv, -1.0),
               std::invalid_argument);
  EXPECT_THROW(law.k_shift(-1.0), std::invalid_argument);
}

TEST(AlgorithmNames, Stringify) {
  EXPECT_STREQ(to_string(ProgramAlgorithm::kIsppSv), "ISPP-SV");
  EXPECT_STREQ(to_string(ProgramAlgorithm::kIsppDv), "ISPP-DV");
}

TEST(Variability, SampledOnsetTracksConfiguredSpread) {
  const VariabilityConfig config;
  const AgingLaw aging;
  const VariabilitySampler sampler(config, aging);
  Rng rng(1);
  RunningStats k_stats;
  for (int i = 0; i < 20000; ++i) {
    k_stats.add(sampler.sample(rng, 0.0).k_onset.value());
  }
  EXPECT_NEAR(k_stats.mean(), config.k_nominal.value(), 0.01);
  EXPECT_NEAR(k_stats.stddev(), config.k_sigma.value(), 0.01);
}

TEST(Variability, AgedPopulationIsFasterAndWider) {
  const VariabilityConfig config;
  const AgingLaw aging;
  const VariabilitySampler sampler(config, aging);
  Rng rng(2);
  RunningStats fresh, aged;
  for (int i = 0; i < 20000; ++i) {
    fresh.add(sampler.sample(rng, 0.0).k_onset.value());
    aged.add(sampler.sample(rng, 1e6).k_onset.value());
  }
  EXPECT_LT(aged.mean(), fresh.mean());        // trapped charge: faster
  EXPECT_GT(aged.stddev(), fresh.stddev());    // dispersion grows
}

TEST(Variability, SharpnessStaysPositive) {
  const VariabilityConfig config;
  const AgingLaw aging;
  const VariabilitySampler sampler(config, aging);
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_GT(sampler.sample(rng, 1e6).onset_sharpness.value(), 0.0);
  }
}

TEST(Variability, ErasedDistributionMatches) {
  const VariabilityConfig config;
  const AgingLaw aging;
  const VariabilitySampler sampler(config, aging);
  Rng rng(4);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.add(sampler.sample_erased(rng, Volts{-3.0}, Volts{0.4}).value());
  }
  EXPECT_NEAR(stats.mean(), -3.0, 0.01);
  EXPECT_NEAR(stats.stddev(), 0.4, 0.01);
}

}  // namespace
}  // namespace xlf::nand
