// FTL layer: L2P mapping invariants, allocator/GC policy mechanics,
// and the end-to-end property the whole PR exists for — a skewed
// overwrite workload drives GC until per-block P/E counts diverge and
// the reliability manager assigns *different* t to hot and cold
// blocks of the same run, with zero data mismatches.
#include "src/ftl/ssd.hpp"

#include <gtest/gtest.h>

#include <set>

#include "src/ftl/allocator.hpp"
#include "src/ftl/mapping.hpp"
#include "src/policy/registry.hpp"
#include "src/sim/host_workload.hpp"
#include "src/sim/ssd_sim.hpp"

namespace xlf::ftl {
namespace {

AllocatorConfig alloc_config(std::uint32_t blocks, std::uint32_t pages,
                             const std::string& wear) {
  return AllocatorConfig{
      blocks, pages,
      policy::PolicyRegistry<policy::WearPolicy>::instance().make_shared(
          wear)};
}

std::shared_ptr<const policy::GcPolicy> gc_policy(const std::string& name) {
  return policy::PolicyRegistry<policy::GcPolicy>::instance().make_shared(
      name);
}

TEST(PageMap, OutOfPlaceWriteInvalidatesOldLocation) {
  PageMap map(2, 4, 4, 20);
  EXPECT_FALSE(map.mapped(7));
  EXPECT_FALSE(map.lookup(7).valid());

  const Ppa first{1, 2, 3};
  map.map(7, first);
  EXPECT_TRUE(map.mapped(7));
  EXPECT_EQ(map.lookup(7), first);
  EXPECT_TRUE(map.valid(first));
  EXPECT_EQ(map.lpa_at(first), 7u);
  EXPECT_EQ(map.valid_count(1, 2), 1u);

  const Ppa second{0, 1, 0};
  map.map(7, second);
  EXPECT_EQ(map.lookup(7), second);
  EXPECT_FALSE(map.valid(first));
  EXPECT_EQ(map.valid_count(1, 2), 0u);
  EXPECT_EQ(map.valid_count(0, 1), 1u);
}

TEST(PageMap, RejectsMappingOntoLivePage) {
  PageMap map(1, 4, 4, 8);
  map.map(0, Ppa{0, 0, 0});
  EXPECT_THROW(map.map(1, Ppa{0, 0, 0}), std::invalid_argument);
}

TEST(PageMap, UnmapInvalidatesPageAndDropsValidCount) {
  PageMap map(1, 4, 4, 8);
  const Ppa ppa{0, 2, 1};
  map.map(5, ppa);
  ASSERT_EQ(map.valid_count(0, 2), 1u);
  map.unmap(5);
  EXPECT_FALSE(map.mapped(5));
  EXPECT_FALSE(map.valid(ppa));
  EXPECT_EQ(map.valid_count(0, 2), 0u);
  // The freed slot can host another LPA without relocation, and a
  // re-trim of the now-unmapped LPA is a caller error.
  map.map(3, ppa);
  EXPECT_EQ(map.lpa_at(ppa), 3u);
  EXPECT_THROW(map.unmap(5), std::invalid_argument);
}

TEST(PageMap, EraseRequiresNoLiveDataAndClearsPages) {
  PageMap map(1, 4, 4, 8);
  map.map(0, Ppa{0, 1, 0});
  EXPECT_THROW(map.on_erase(0, 1), std::invalid_argument);
  map.map(0, Ppa{0, 2, 0});  // relocate; block 1 now dead
  map.on_erase(0, 1);
  EXPECT_EQ(map.valid_count(0, 1), 0u);
  // The freed page is mappable again.
  map.map(1, Ppa{0, 1, 0});
  EXPECT_EQ(map.valid_count(0, 1), 1u);
}

TEST(PageMap, RequiresOverProvisioning) {
  // logical == physical leaves GC no slack; the map refuses it.
  EXPECT_THROW(PageMap(1, 2, 4, 8), std::invalid_argument);
  EXPECT_NO_THROW(PageMap(1, 2, 4, 7));
}

TEST(DieAllocator, FrontiersFillBlocksSequentially) {
  const AllocatorConfig config = alloc_config(4, 2, "none");
  DieAllocator alloc(config);
  EXPECT_EQ(alloc.free_count(), 4u);

  const auto a = alloc.take_page(DieAllocator::Stream::kHost);
  const auto b = alloc.take_page(DieAllocator::Stream::kHost);
  // Same block, consecutive pages; block closes when full.
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, 0u);
  EXPECT_EQ(b.second, 1u);
  EXPECT_TRUE(alloc.is_closed(a.first));
  EXPECT_EQ(alloc.free_count(), 3u);

  // The GC stream opens its own block: hot/cold separation.
  const auto c = alloc.take_page(DieAllocator::Stream::kGc);
  EXPECT_NE(c.first, a.first);
}

TEST(DieAllocator, DynamicWearLevelingPrefersLowEraseCounts) {
  const AllocatorConfig config = alloc_config(4, 1, "dynamic");
  DieAllocator alloc(config);
  // One-page blocks close on every take; erasing each one raises its
  // count, so the allocator walks the whole pool before reusing any
  // block — the levelling behaviour.
  for (std::uint32_t i = 0; i < 4; ++i) {
    const auto slot = alloc.take_page(DieAllocator::Stream::kHost);
    EXPECT_EQ(slot.first, i);
    alloc.on_erase(slot.first);
  }
  // Second lap: counts are level again, back to block 0.
  EXPECT_EQ(alloc.take_page(DieAllocator::Stream::kHost).first, 0u);
  EXPECT_EQ(alloc.max_erase_count(), 1u);
}

TEST(DieAllocator, GreedyVictimHasFewestValidPages) {
  const AllocatorConfig config = alloc_config(5, 4, "none");
  DieAllocator alloc(config);
  // Close three blocks (0, 1, 2).
  for (int b = 0; b < 3; ++b) {
    for (int p = 0; p < 4; ++p) alloc.take_page(DieAllocator::Stream::kHost);
  }
  const auto valid = [](std::uint32_t block) -> std::uint32_t {
    switch (block) {
      case 0: return 3;
      case 1: return 1;
      case 2: return 2;
      default: return 4;
    }
  };
  const auto victim = alloc.pick_victim(*gc_policy("greedy"), valid, 10);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 1u);
}

TEST(DieAllocator, CostBenefitPrefersColdOverSlightlyEmptier) {
  const AllocatorConfig config = alloc_config(5, 4, "none");
  DieAllocator alloc(config);
  for (int b = 0; b < 2; ++b) {
    for (int p = 0; p < 4; ++p) alloc.take_page(DieAllocator::Stream::kHost);
  }
  // Block 0: ancient, 2 valid. Block 1: just written, 1 valid.
  alloc.stamp_write(0, 1);
  alloc.stamp_write(1, 1000);
  const auto valid = [](std::uint32_t block) -> std::uint32_t {
    return block == 0 ? 2 : 1;
  };
  // Greedy takes the emptier block 1; cost-benefit weighs age and
  // takes the cold block 0.
  EXPECT_EQ(*alloc.pick_victim(*gc_policy("greedy"), valid, 1001), 1u);
  EXPECT_EQ(*alloc.pick_victim(*gc_policy("cost-benefit"), valid, 1001), 0u);
}

TEST(DieAllocator, SkipsFullyValidBlocks) {
  const AllocatorConfig config = alloc_config(4, 2, "none");
  DieAllocator alloc(config);
  for (int p = 0; p < 2; ++p) alloc.take_page(DieAllocator::Stream::kHost);
  const auto all_valid = [](std::uint32_t) -> std::uint32_t { return 2; };
  EXPECT_FALSE(
      alloc.pick_victim(*gc_policy("greedy"), all_valid, 1).has_value());
}

SsdConfig small_ssd() {
  SsdConfig config;
  config.topology = {2, 1};  // 2 channels x 1 die
  config.die.device.array.geometry.blocks = 8;
  config.die.device.array.geometry.pages_per_block = 4;
  // Start mid-life and compress the lifetime so a few hundred host
  // operations traverse enough of the paper's schedule for t to move.
  config.initial_pe_cycles = 1e4;
  config.ftl.pe_cycles_per_erase = 3e4;
  return config;
}

TEST(Ftl, OutOfPlaceOverwriteAndReadBack) {
  Ssd ssd(small_ssd());
  Ftl& ftl = ssd.ftl();
  const std::uint32_t bits = ssd.die_geometry().data_bits_per_page();

  BitVec first(bits);
  first.set(0, true);
  BitVec second(bits);
  second.set(1, true);

  const FtlOpResult w1 = ftl.write(0, first);
  EXPECT_TRUE(w1.ok);
  EXPECT_GE(w1.t_used, 3u);
  const FtlOpResult w2 = ftl.write(0, second);  // overwrite, no erase needed
  EXPECT_TRUE(w2.ok);
  EXPECT_EQ(ftl.stats().host_writes, 2u);
  EXPECT_EQ(ftl.stats().erases, 0u);

  const FtlOpResult r = ftl.read(0);
  EXPECT_FALSE(r.unmapped);
  EXPECT_FALSE(r.uncorrectable);
  EXPECT_TRUE(r.data == second);
}

TEST(Ftl, UnmappedReadServicedAsZeroPage) {
  Ssd ssd(small_ssd());
  const FtlOpResult r = ssd.ftl().read(3);
  EXPECT_TRUE(r.unmapped);
  EXPECT_EQ(r.data.popcount(), 0u);
  EXPECT_EQ(ssd.ftl().stats().unmapped_reads, 1u);
  EXPECT_EQ(r.cell_time.value(), 0.0);
}

TEST(Ftl, TrimDeallocatesWithoutTouchingFlash) {
  Ssd ssd(small_ssd());
  Ftl& ftl = ssd.ftl();
  const std::uint32_t bits = ssd.die_geometry().data_bits_per_page();
  BitVec payload(bits);
  payload.set(5, true);
  const FtlOpResult written = ftl.write(7, payload);
  const Ppa location = ftl.map().lookup(7);
  ASSERT_EQ(ftl.map().valid_count(location.die, location.block), 1u);

  const FtlOpResult trimmed = ftl.trim(7);
  EXPECT_FALSE(trimmed.unmapped);
  EXPECT_EQ(trimmed.die, written.die);
  // Metadata-only: no service time, no energy, no flash op.
  EXPECT_EQ(trimmed.cell_time.value(), 0.0);
  EXPECT_EQ(trimmed.io_time.value(), 0.0);
  EXPECT_EQ(trimmed.nand_energy.value(), 0.0);
  // The mapping is gone and the physical page reads invalid (one
  // fewer live page for GC to relocate).
  EXPECT_FALSE(ftl.mapped(7));
  EXPECT_EQ(ftl.map().valid_count(location.die, location.block), 0u);
  EXPECT_TRUE(ftl.read(7).unmapped);

  // Trim of a never-written (or already-trimmed) LPA is a no-op.
  const FtlOpResult again = ftl.trim(7);
  EXPECT_TRUE(again.unmapped);
  EXPECT_EQ(ftl.stats().host_trims, 2u);
  EXPECT_EQ(ftl.stats().trimmed_pages, 1u);
}

TEST(Ftl, TrimmedBlocksMakeGcMeasurablyCheaper) {
  // Two identical drives overwrite the same hot range until GC must
  // run; on one of them the cold remainder was trimmed first. The
  // trimmed drive's victims carry no live cold data, so the same
  // host-write stream costs fewer relocations (lower WA).
  const auto relocations_with = [](bool trim_cold) {
    Ssd ssd(small_ssd());
    Ftl& ftl = ssd.ftl();
    const std::uint32_t bits = ssd.die_geometry().data_bits_per_page();
    const BitVec payload(bits);
    for (Lpa lpa = 0; lpa < ftl.logical_pages(); ++lpa) {
      ftl.write(lpa, payload);
    }
    if (trim_cold) {
      for (Lpa lpa = 4; lpa < ftl.logical_pages(); ++lpa) ftl.trim(lpa);
    }
    const std::uint64_t before = ftl.stats().gc_relocations;
    for (int pass = 0; pass < 12; ++pass) {
      for (Lpa lpa = 0; lpa < 4; ++lpa) ftl.write(lpa, payload);
    }
    return ftl.stats().gc_relocations - before;
  };
  const std::uint64_t untrimmed = relocations_with(false);
  const std::uint64_t trimmed = relocations_with(true);
  EXPECT_LT(trimmed, untrimmed);
}

TEST(Ftl, FlushIsTheDurabilityBarrierForTrimsAndCounters) {
  // Flush stopped being a no-op: it persists the buffered trim
  // tombstones into the durable journal and checkpoints the sequence/
  // clock counters, still at zero modeled device time (data pages are
  // write-through; only the trim metadata needs the barrier).
  Ssd ssd(small_ssd());
  Ftl& ftl = ssd.ftl();
  const BitVec payload(ssd.die_geometry().data_bits_per_page());
  ftl.write(7, payload);
  ftl.trim(7);
  // The tombstone buffers in DRAM until a flush persists it.
  EXPECT_EQ(ftl.pending_trims(), 1u);
  EXPECT_TRUE(ssd.durable().tombstones.empty());

  const FtlOpResult flushed = ftl.flush();
  EXPECT_TRUE(flushed.ok);
  EXPECT_EQ(flushed.cell_time.value(), 0.0);
  EXPECT_EQ(flushed.io_time.value(), 0.0);
  EXPECT_EQ(ftl.pending_trims(), 0u);
  ASSERT_EQ(ssd.durable().tombstones.size(), 1u);
  EXPECT_EQ(ssd.durable().tombstones[0].lpa, 7u);
  EXPECT_EQ(ssd.durable().checkpoint_seq, ftl.sequence());
  EXPECT_EQ(ssd.durable().checkpoint_clock, ftl.logical_clock());
  EXPECT_EQ(ssd.durable().flush_epochs, 1u);
  EXPECT_EQ(ftl.stats().host_flushes, 1u);
  EXPECT_EQ(ftl.stats().flushed_tombstones, 1u);

  // A second flush is a pure checkpoint: no new tombstones.
  ftl.flush();
  EXPECT_EQ(ssd.durable().tombstones.size(), 1u);
  EXPECT_EQ(ssd.durable().flush_epochs, 2u);
}

TEST(Ftl, LpaDieAffinityStripesAcrossDies) {
  Ssd ssd(small_ssd());
  Ftl& ftl = ssd.ftl();
  ASSERT_EQ(ftl.dies(), 2u);
  const std::uint32_t bits = ssd.die_geometry().data_bits_per_page();
  const BitVec payload(bits);
  EXPECT_EQ(ftl.write(0, payload).die, 0u);
  EXPECT_EQ(ftl.write(1, payload).die, 1u);
  EXPECT_EQ(ftl.write(2, payload).die, 0u);
}

// The acceptance property of the whole refactor: skewed overwrites
// make GC churn hot blocks far past cold ones, the reliability
// manager picks per-block t from each block's own P/E count — so one
// run carries different t on different blocks — and every read still
// verifies bit-true.
TEST(Ftl, SkewedOverwritesDivergeWearAndPerBlockT) {
  Ssd ssd(small_ssd());
  sim::SsdSimConfig sim_config;
  sim_config.queue_depth = 4;
  sim_config.verify_data = true;
  sim::SsdSimulator simulator(ssd, sim_config);
  simulator.prepopulate();

  const sim::HotColdWorkload workload(0.25, 0.85, 0.3);
  Rng rng(2026);
  const auto requests = workload.generate(ssd.logical_pages(), 220, rng);
  const sim::SsdSimStats stats = simulator.run(requests);

  // GC actually ran.
  EXPECT_GT(stats.gc_relocations, 0u);
  EXPECT_GT(stats.erases, 0u);
  EXPECT_GT(stats.write_amplification, 1.0);

  // Wear diverged across blocks...
  EXPECT_GT(stats.wear_max, 1.5 * stats.wear_min);
  // ...and the reliability manager assigned different t to hot vs
  // cold blocks within this one run.
  EXPECT_GT(stats.max_t_used, stats.min_t_used);

  // Per-block capability spread is visible block by block too.
  std::set<unsigned> block_ts;
  for (std::uint32_t d = 0; d < ssd.ftl().dies(); ++d) {
    for (std::uint32_t b = 0; b < ssd.die_geometry().blocks; ++b) {
      if (ssd.ftl().block_t(d, b) > 0) block_ts.insert(ssd.ftl().block_t(d, b));
    }
  }
  EXPECT_GE(block_ts.size(), 2u);

  // Bit-true through all of it: every mapped read verified.
  EXPECT_EQ(stats.data_mismatches, 0u);
  EXPECT_EQ(stats.uncorrectable, 0u);
}

TEST(Ftl, StaticWearLevelingSwapsColdBlocks) {
  SsdConfig config = small_ssd();
  config.topology = {1, 1};
  config.ftl.wear_policy = "static";
  config.ftl.static_wl_spread = 3;
  Ssd ssd(config);
  sim::SsdSimulator simulator(ssd);
  simulator.prepopulate();

  // Heavy skew: nearly all writes hit 20% of the space, pinning the
  // cold majority in place — exactly what static WL exists to break.
  const sim::HotColdWorkload workload(0.2, 0.97, 0.0);
  Rng rng(7);
  const auto requests = workload.generate(ssd.logical_pages(), 200, rng);
  const sim::SsdSimStats stats = simulator.run(requests);
  EXPECT_GT(stats.wl_swaps, 0u);
  EXPECT_EQ(stats.data_mismatches, 0u);
}

TEST(Ssd, BlockMetricsTrackPerBlockWear) {
  Ssd ssd(small_ssd());
  // Age one block far past another and read both through the
  // cross-layer framework.
  ssd.die(0).device().set_wear(0, 1e3);
  ssd.die(0).device().set_wear(1, 5e5);
  const core::Metrics young = ssd.block_metrics(0, 0);
  const core::Metrics old = ssd.block_metrics(0, 1);
  EXPECT_LT(young.rber, old.rber);
  EXPECT_LE(young.t, old.t);
  EXPECT_LT(young.pe_cycles, old.pe_cycles);
}

TEST(Ftl, RunsAreDeterministic) {
  const auto run_once = [] {
    Ssd ssd(small_ssd());
    sim::SsdSimulator simulator(ssd);
    simulator.prepopulate();
    const sim::HotColdWorkload workload(0.25, 0.85, 0.3);
    Rng rng(99);
    const auto requests = workload.generate(ssd.logical_pages(), 80, rng);
    return simulator.run(requests);
  };
  const sim::SsdSimStats a = run_once();
  const sim::SsdSimStats b = run_once();
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.gc_relocations, b.gc_relocations);
  EXPECT_EQ(a.erases, b.erases);
  EXPECT_EQ(a.write_amplification, b.write_amplification);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.read_latency.mean(), b.read_latency.mean());
  EXPECT_EQ(a.write_latency.mean(), b.write_latency.mean());
  EXPECT_EQ(a.wear_max, b.wear_max);
  EXPECT_EQ(a.min_t_used, b.min_t_used);
  EXPECT_EQ(a.max_t_used, b.max_t_used);
}

}  // namespace
}  // namespace xlf::ftl
