#include <gtest/gtest.h>

#include "src/sim/event_queue.hpp"
#include "src/sim/workload.hpp"

namespace xlf::sim {
namespace {

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule_at(Seconds::micros(30.0), [&] { order.push_back(3); });
  queue.schedule_at(Seconds::micros(10.0), [&] { order.push_back(1); });
  queue.schedule_at(Seconds::micros(20.0), [&] { order.push_back(2); });
  queue.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_NEAR(queue.now().micros(), 30.0, 1e-9);
}

TEST(EventQueue, EqualTimesKeepSchedulingOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    queue.schedule_at(Seconds::micros(5.0), [&order, i] { order.push_back(i); });
  }
  queue.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CollidingTimestampsInterleavedStayDeterministic) {
  // Collisions at several timestamps, scheduled out of order and also
  // from inside callbacks: pops must follow (time, insertion order) —
  // the determinism contract the parallel-equals-serial criterion of
  // the explore engine rests on.
  EventQueue queue;
  std::vector<int> order;
  queue.schedule_at(Seconds::micros(20.0), [&] { order.push_back(4); });
  queue.schedule_at(Seconds::micros(10.0), [&] {
    order.push_back(1);
    // Scheduled mid-run at an already-populated timestamp: runs after
    // the earlier entries at 20 us.
    queue.schedule_at(Seconds::micros(20.0), [&] { order.push_back(6); });
  });
  queue.schedule_at(Seconds::micros(20.0), [&] { order.push_back(5); });
  queue.schedule_at(Seconds::micros(10.0), [&] { order.push_back(2); });
  queue.schedule_at(Seconds::micros(10.0), [&] { order.push_back(3); });
  queue.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5, 6}));
}

TEST(EventQueue, RunDrainingExactlyLimitEventsIsNotRunaway) {
  EventQueue queue;
  int fired = 0;
  for (int i = 0; i < 5; ++i) {
    queue.schedule_at(Seconds::micros(static_cast<double>(i)), [&] { ++fired; });
  }
  // The budget equals the queue depth: a legitimate completion, not a
  // runaway simulation.
  EXPECT_EQ(queue.run(5), 5u);
  EXPECT_EQ(fired, 5);
}

TEST(EventQueue, RunFlagsRunawayWhenEventsRemain) {
  EventQueue queue;
  std::function<void()> forever = [&] {
    queue.schedule_in(Seconds::micros(1.0), forever);
  };
  queue.schedule_in(Seconds::micros(1.0), forever);
  EXPECT_THROW(queue.run(100), std::logic_error);
}

TEST(EventQueue, CallbacksMayScheduleMore) {
  EventQueue queue;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 4) queue.schedule_in(Seconds::micros(1.0), chain);
  };
  queue.schedule_in(Seconds::micros(1.0), chain);
  queue.run();
  EXPECT_EQ(fired, 4);
  EXPECT_NEAR(queue.now().micros(), 4.0, 1e-9);
}

TEST(EventQueue, RunUntilLeavesFutureEvents) {
  EventQueue queue;
  int fired = 0;
  queue.schedule_at(Seconds::micros(10.0), [&] { ++fired; });
  queue.schedule_at(Seconds::micros(50.0), [&] { ++fired; });
  queue.run_until(Seconds::micros(20.0));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(queue.pending(), 1u);
  EXPECT_NEAR(queue.now().micros(), 20.0, 1e-9);  // clock advanced
  queue.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, PastSchedulingRejected) {
  EventQueue queue;
  queue.schedule_at(Seconds::micros(10.0), [] {});
  queue.run();
  EXPECT_THROW(queue.schedule_at(Seconds::micros(5.0), [] {}),
               std::invalid_argument);
  EXPECT_THROW(queue.schedule_in(Seconds::micros(-1.0), [] {}),
               std::invalid_argument);
}

nand::Geometry geometry() {
  nand::Geometry g;
  g.blocks = 2;
  g.pages_per_block = 4;
  return g;
}

TEST(Workload, SequentialReadCoversPagesInOrder) {
  Rng rng(1);
  const auto requests = SequentialReadWorkload().generate(geometry(), 10, rng);
  ASSERT_EQ(requests.size(), 10u);
  EXPECT_EQ(requests[0].addr, (nand::PageAddress{0, 0}));
  EXPECT_EQ(requests[3].addr, (nand::PageAddress{0, 3}));
  EXPECT_EQ(requests[4].addr, (nand::PageAddress{1, 0}));
  EXPECT_EQ(requests[8].addr, (nand::PageAddress{0, 0}));  // wraps
  for (const auto& r : requests) EXPECT_EQ(r.type, OpType::kRead);
}

TEST(Workload, RandomReadStaysInBounds) {
  Rng rng(2);
  const auto requests = RandomReadWorkload().generate(geometry(), 200, rng);
  for (const auto& r : requests) {
    EXPECT_LT(r.addr.block, 2u);
    EXPECT_LT(r.addr.page, 4u);
  }
}

TEST(Workload, MixedRespectsReadFraction) {
  Rng rng(3);
  const auto requests = MixedWorkload(0.75).generate(geometry(), 4000, rng);
  const auto reads = static_cast<double>(
      std::count_if(requests.begin(), requests.end(),
                    [](const Request& r) { return r.type == OpType::kRead; }));
  EXPECT_NEAR(reads / 4000.0, 0.75, 0.03);
  EXPECT_THROW(MixedWorkload(1.5), std::invalid_argument);
}

TEST(Workload, StreamingPacesRequests) {
  Rng rng(4);
  const MultimediaStreamingWorkload stream(BytesPerSecond::mib(8.0), 4096);
  const auto requests = stream.generate(geometry(), 10, rng);
  // 4096 B at 8 MiB/s: 488.28 us between pages.
  for (const auto& r : requests) {
    EXPECT_NEAR(r.gap.micros(), 4096.0 / (8.0 * 1024 * 1024) * 1e6, 1e-6);
    EXPECT_EQ(r.type, OpType::kRead);
  }
}

TEST(Workload, TraceReplayIsDeterministic) {
  const auto a = record_trace(RandomReadWorkload(), geometry(), 50, 42);
  const auto b = record_trace(RandomReadWorkload(), geometry(), 50, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].addr, b[i].addr);
    EXPECT_EQ(a[i].type, b[i].type);
  }
  const auto c = record_trace(RandomReadWorkload(), geometry(), 50, 43);
  bool any_different = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].addr == c[i].addr)) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(Workload, NamesAreStable) {
  EXPECT_EQ(SequentialReadWorkload().name(), "sequential-read");
  EXPECT_EQ(MixedWorkload(0.8).name(), "mixed-r80");
  EXPECT_EQ(MultimediaStreamingWorkload(BytesPerSecond::mib(1.0)).name(),
            "multimedia-streaming");
}

}  // namespace
}  // namespace xlf::sim
