// The minimal JSON reader behind experiment specs: value grammar,
// escapes, strict errors with line:column, and the config-oriented
// accessor contract (typed getters, missing-key messages).
#include "src/util/json.hpp"

#include <gtest/gtest.h>

namespace xlf {
namespace {

TEST(Json, ParsesScalarsAndContainers) {
  const JsonValue v = JsonValue::parse(
      R"({"a": 1.5, "b": -2e3, "c": true, "d": null,
          "e": "text", "f": [1, 2, 3], "g": {"nested": false}})");
  EXPECT_EQ(v.type(), JsonValue::Type::kObject);
  EXPECT_DOUBLE_EQ(v.at("a").as_number(), 1.5);
  EXPECT_DOUBLE_EQ(v.at("b").as_number(), -2000.0);
  EXPECT_TRUE(v.at("c").as_bool());
  EXPECT_TRUE(v.at("d").is_null());
  EXPECT_EQ(v.at("e").as_string(), "text");
  ASSERT_EQ(v.at("f").items().size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("f").items()[2].as_number(), 3.0);
  EXPECT_FALSE(v.at("g").at("nested").as_bool());
  EXPECT_TRUE(v.has("a"));
  EXPECT_FALSE(v.has("z"));
}

TEST(Json, ParsesStringEscapes) {
  const JsonValue v = JsonValue::parse(R"(["a\"b", "\\", "\n\t", "\u0041"])");
  EXPECT_EQ(v.items()[0].as_string(), "a\"b");
  EXPECT_EQ(v.items()[1].as_string(), "\\");
  EXPECT_EQ(v.items()[2].as_string(), "\n\t");
  EXPECT_EQ(v.items()[3].as_string(), "A");
}

TEST(Json, UnicodeEscapesEncodeUtf8) {
  // U+00E9 (two bytes) and U+20AC (three bytes).
  const JsonValue v = JsonValue::parse(R"(["\u00e9", "\u20AC"])");
  EXPECT_EQ(v.items()[0].as_string(), "\xC3\xA9");
  EXPECT_EQ(v.items()[1].as_string(), "\xE2\x82\xAC");
}

TEST(Json, ErrorsCarryLineAndColumn) {
  try {
    JsonValue::parse("{\n  \"a\": tru\n}");
    FAIL() << "malformed literal must throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2:"), std::string::npos) << what;
  }
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_THROW(JsonValue::parse(""), std::invalid_argument);
  EXPECT_THROW(JsonValue::parse("{"), std::invalid_argument);
  EXPECT_THROW(JsonValue::parse("[1,]"), std::invalid_argument);
  EXPECT_THROW(JsonValue::parse("{\"a\": 1} trailing"),
               std::invalid_argument);
  EXPECT_THROW(JsonValue::parse("{\"a\": 1, \"a\": 2}"),
               std::invalid_argument);  // duplicate key
  EXPECT_THROW(JsonValue::parse("01e"), std::invalid_argument);
  EXPECT_THROW(JsonValue::parse("\"\\q\""), std::invalid_argument);
  EXPECT_THROW(JsonValue::parse("\"\\ud800\""), std::invalid_argument);
}

TEST(Json, AccessorsEnforceTypesAndKeys) {
  const JsonValue v = JsonValue::parse(R"({"n": 4})");
  EXPECT_THROW(v.at("n").as_string(), std::invalid_argument);
  EXPECT_THROW(v.as_number(), std::invalid_argument);
  try {
    v.at("missing");
    FAIL() << "missing key must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("missing"), std::string::npos);
  }
}

}  // namespace
}  // namespace xlf
