// FTL sweep determinism: the (topology x queue depth x GC policy)
// grid produces byte-identical CSV/JSON whatever the thread count —
// the same contract the configuration-space sweep ships under.
#include "src/explore/ftl_sweep.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/explore/report.hpp"

namespace xlf::explore {
namespace {

FtlSweepSpec small_spec() {
  FtlSweepSpec spec;
  spec.base.die.device.array.geometry.blocks = 8;
  spec.base.die.device.array.geometry.pages_per_block = 4;
  spec.base.initial_pe_cycles = 1e4;
  spec.base.ftl.pe_cycles_per_erase = 3e4;
  spec.topologies = {{1, 1}, {2, 1}};
  spec.queue_depths = {2};
  spec.gc_policies = {"greedy", "cost-benefit"};
  spec.requests = 40;
  spec.seed = 31337;
  return spec;
}

TEST(FtlSweep, ParallelIsByteIdenticalToSerial) {
  const FtlSweepSpec spec = small_spec();
  ThreadPool serial(1), parallel(4);
  const FtlSweepResult a = ftl_sweep(spec, serial);
  const FtlSweepResult b = ftl_sweep(spec, parallel);
  ASSERT_EQ(a.rows.size(), b.rows.size());
  EXPECT_EQ(ftl_csv(a), ftl_csv(b));
  EXPECT_EQ(ftl_json(a), ftl_json(b));
}

TEST(FtlSweep, CoversTheFullGridInOrder) {
  const FtlSweepSpec spec = small_spec();
  ThreadPool pool(2);
  const FtlSweepResult result = ftl_sweep(spec, pool);
  ASSERT_EQ(result.rows.size(), 4u);
  // Topology-major, then queue depth, then policy.
  EXPECT_EQ(result.rows[0].channels, 1u);
  EXPECT_EQ(result.rows[0].gc_policy, "greedy");
  EXPECT_EQ(result.rows[1].channels, 1u);
  EXPECT_EQ(result.rows[1].gc_policy, "cost-benefit");
  EXPECT_EQ(result.rows[2].channels, 2u);
  EXPECT_EQ(result.rows[3].channels, 2u);
  for (const FtlSweepRow& row : result.rows) {
    EXPECT_EQ(row.queue_depth, 2u);
    EXPECT_GT(row.stats.writes, 0u);
    EXPECT_EQ(row.stats.data_mismatches, 0u);
    // Every combo saw GC (prepopulation + overwrites on small dies).
    EXPECT_GT(row.stats.write_amplification, 0.0);
  }
  // The report carries one line per combo plus the header.
  const std::string csv = ftl_csv(result);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 5);
}

}  // namespace
}  // namespace xlf::explore
