// Declarative experiment specs: strict parsing (unknown keys, unknown
// policies and malformed values fail with teaching messages), and the
// acceptance property of the spec satellite — the shipped
// examples/specs/ftl_smoke.json reproduces the CLI smoke grid
// (--ftl-sweep --ftl-requests 64) byte for byte.
#include "src/explore/experiment.hpp"

#include <gtest/gtest.h>

#include "src/explore/report.hpp"
#include "src/explore/sweep.hpp"
#include "src/util/stats.hpp"

#ifndef XLF_SPEC_DIR
#define XLF_SPEC_DIR "examples/specs"
#endif

namespace xlf::explore {
namespace {

std::string error_of(const std::string& text) {
  try {
    parse_experiment_text(text);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

TEST(ExperimentSpec, MinimalFtlSweepUsesCliDefaults) {
  const ExperimentSpec spec = parse_experiment_text(R"({"mode": "ftl-sweep"})");
  EXPECT_EQ(spec.mode, ExperimentSpec::Mode::kFtlSweep);
  EXPECT_EQ(spec.ftl.base.die.device.array.geometry.blocks, 8u);
  EXPECT_EQ(spec.ftl.base.die.device.array.geometry.pages_per_block, 4u);
  EXPECT_DOUBLE_EQ(spec.ftl.base.initial_pe_cycles, 1e4);
  EXPECT_DOUBLE_EQ(spec.ftl.base.ftl.pe_cycles_per_erase, 3e4);
  EXPECT_EQ(spec.ftl.gc_policies,
            (std::vector<std::string>{"greedy", "cost-benefit"}));
  EXPECT_EQ(spec.ftl.wear_policies, std::vector<std::string>{"dynamic"});
  EXPECT_EQ(spec.ftl.tuning_policies,
            std::vector<std::string>{"model_based"});
  EXPECT_EQ(spec.ftl.refresh_policies, std::vector<std::string>{"none"});
}

TEST(ExperimentSpec, ModeIsRequiredAndValidated) {
  EXPECT_NE(error_of("{}").find("missing required key 'mode'"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"mode": "warp"})").find("unknown mode 'warp'"),
            std::string::npos);
}

TEST(ExperimentSpec, UnknownKeysRejectedWithKnownList) {
  const std::string top =
      error_of(R"({"mode": "ftl-sweep", "sweeps": {}})");
  EXPECT_NE(top.find("unknown key 'sweeps'"), std::string::npos) << top;
  EXPECT_NE(top.find("sweep"), std::string::npos) << top;

  const std::string nested = error_of(
      R"({"mode": "ftl-sweep", "sweep": {"qeue_depths": [1]}})");
  EXPECT_NE(nested.find("unknown key 'qeue_depths'"), std::string::npos)
      << nested;
  EXPECT_NE(nested.find("queue_depths"), std::string::npos) << nested;
}

TEST(ExperimentSpec, MultiQueueKnobsParseAndValidate) {
  const ExperimentSpec spec = parse_experiment_text(R"({
    "mode": "ftl-sweep",
    "workload": {"trim_fraction": 0.2, "queue_weights": [8, 4, 2, 1]},
    "sweep": {"queues": [1, 4], "arbitrations": ["round-robin", "weighted"]}
  })");
  EXPECT_EQ(spec.ftl.queue_counts, (std::vector<std::size_t>{1, 4}));
  EXPECT_EQ(spec.ftl.arbitration_policies,
            (std::vector<std::string>{"round-robin", "weighted"}));
  EXPECT_DOUBLE_EQ(spec.ftl.trim_fraction, 0.2);
  EXPECT_EQ(spec.ftl.queue_weights, (std::vector<double>{8, 4, 2, 1}));

  // Defaults: the pre-redesign single-stream shape.
  const ExperimentSpec defaults =
      parse_experiment_text(R"({"mode": "ftl-sweep"})");
  EXPECT_EQ(defaults.ftl.queue_counts, std::vector<std::size_t>{1});
  EXPECT_EQ(defaults.ftl.arbitration_policies,
            std::vector<std::string>{"round-robin"});
  EXPECT_DOUBLE_EQ(defaults.ftl.trim_fraction, 0.0);

  EXPECT_NE(error_of(R"({"mode": "ftl-sweep",
                         "sweep": {"queues": [0]}})")
                .find("'queues' entries must be >= 1"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"mode": "ftl-sweep",
                         "workload": {"trim_fraction": 1.5}})")
                .find("'trim_fraction' must lie in [0, 1)"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"mode": "ftl-sweep",
                         "workload": {"queue_weights": [0]}})")
                .find("'queue_weights' entries must be > 0"),
            std::string::npos);
  const std::string what = error_of(R"({"mode": "ftl-sweep",
                                        "sweep": {"arbitrations": ["fifo"]}})");
  EXPECT_NE(what.find("unknown arbitration policy 'fifo'"),
            std::string::npos)
      << what;
  EXPECT_NE(what.find("round-robin"), std::string::npos) << what;
}

TEST(ExperimentSpec, UnknownPolicyNamesFailListingRegistered) {
  const std::string what = error_of(
      R"({"mode": "ftl-sweep", "sweep": {"gc_policies": ["fifo"]}})");
  EXPECT_NE(what.find("unknown gc policy 'fifo'"), std::string::npos) << what;
  EXPECT_NE(what.find("greedy"), std::string::npos) << what;
  EXPECT_NE(what.find("cost-benefit"), std::string::npos) << what;
}

TEST(ExperimentSpec, MalformedValuesRejected) {
  EXPECT_NE(error_of(R"({"mode": "ftl-sweep",
                         "sweep": {"topologies": ["2by1"]}})")
                .find("topology '2by1'"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"mode": "space",
                         "ages": {"lo": 10, "hi": 1, "points": 5}})")
                .find("invalid ages grid"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"mode": "space", "uber_target": 2})")
                .find("uber_target"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"mode": "space", "point": "fastest"})")
                .find("unknown operating point 'fastest'"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"mode": "space",
                         "monte_carlo": {"workloads": ["disk-thrash"]}})")
                .find("unknown workload 'disk-thrash'"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"mode": "ftl-sweep",
                         "workload": {"requests": 1.5}})")
                .find("'requests' must be a non-negative integer"),
            std::string::npos);
}

// The acceptance property: the shipped example spec is the CI smoke
// grid. A spec authored in JSON and the equivalent flag-built spec
// must render byte-identical reports in both formats.
TEST(ExperimentSpec, FtlSmokeExampleReproducesCliSmokeGrid) {
  const ExperimentSpec from_json =
      load_experiment(std::string(XLF_SPEC_DIR) + "/ftl_smoke.json");

  // What tools/xlf_explore builds for `--ftl-sweep --ftl-requests 64`.
  ExperimentSpec from_flags = ExperimentSpec::defaults();
  from_flags.mode = ExperimentSpec::Mode::kFtlSweep;
  from_flags.ftl.requests = 64;

  ThreadPool pool(2);
  EXPECT_EQ(run_experiment(from_json, pool, "csv"),
            run_experiment(from_flags, pool, "csv"));
  EXPECT_EQ(run_experiment(from_json, pool, "json"),
            run_experiment(from_flags, pool, "json"));
}

TEST(ExperimentSpec, SpaceModeMatchesDirectSweep) {
  const ExperimentSpec spec = parse_experiment_text(
      R"({"mode": "space", "ages": {"lo": 1, "hi": 1e4, "points": 3}})");
  ThreadPool pool(2);
  const std::string report = run_experiment(spec, pool, "csv");

  core::SubsystemConfig subsystem = core::SubsystemConfig::defaults();
  SweepSpec sweep_spec;
  sweep_spec.framework = FrameworkSpec::from(subsystem);
  sweep_spec.ages = log_space(1.0, 1e4, 3);
  const SweepResult space = sweep_space(sweep_spec, pool);
  EXPECT_EQ(report, sweep_csv(space));
}

TEST(ExperimentSpec, PolicyAxesMultiplyTheGrid) {
  ExperimentSpec spec = parse_experiment_text(R"({
    "mode": "ftl-sweep",
    "workload": {"requests": 8},
    "sweep": {"topologies": ["1x1"], "queue_depths": [2],
              "gc_policies": ["greedy"],
              "wear_policies": ["none", "dynamic"],
              "tuning_policies": ["static", "model_based"]}
  })");
  ThreadPool pool(2);
  const FtlSweepResult result = [&] {
    FtlSweepSpec ftl = spec.ftl;
    ftl.seed = spec.seed;
    return ftl_sweep(ftl, pool);
  }();
  ASSERT_EQ(result.rows.size(), 4u);
  // wear outer, tuning inner.
  EXPECT_EQ(result.rows[0].wear_policy, "none");
  EXPECT_EQ(result.rows[0].tuning_policy, "static");
  EXPECT_EQ(result.rows[1].tuning_policy, "model_based");
  EXPECT_EQ(result.rows[2].wear_policy, "dynamic");
  for (const FtlSweepRow& row : result.rows) {
    EXPECT_EQ(row.gc_policy, "greedy");
    EXPECT_EQ(row.refresh_policy, "none");
    EXPECT_GT(row.stats.writes, 0u);
  }
}

TEST(ExperimentSpec, RunRejectsUnknownFormat) {
  const ExperimentSpec spec = parse_experiment_text(R"({"mode": "space"})");
  ThreadPool pool(1);
  EXPECT_THROW(run_experiment(spec, pool, "xml"), std::invalid_argument);
}

TEST(ExperimentSpec, LoadRejectsMissingFile) {
  try {
    load_experiment("/nonexistent/spec.json");
    FAIL() << "missing file must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("cannot open"), std::string::npos);
  }
}

}  // namespace
}  // namespace xlf::explore
