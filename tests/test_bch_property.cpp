// Property-based sweeps over code configurations: every (m, k, t)
// combination must encode systematically, correct any <= t pattern,
// and behave linearly. These are the invariants the rest of the
// system (controller, simulator, benches) silently relies on.
#include <gtest/gtest.h>

#include <tuple>

#include "src/bch/decoder.hpp"
#include "src/bch/encoder.hpp"
#include "src/bch/error_injection.hpp"
#include "src/bch/generator.hpp"
#include "src/util/rng.hpp"

namespace xlf::bch {
namespace {

using Config = std::tuple<unsigned /*m*/, std::uint32_t /*k*/, unsigned /*t*/>;

class CodeSweep : public ::testing::TestWithParam<Config> {
 protected:
  void SetUp() override {
    const auto [m, k, t] = GetParam();
    field_ = std::make_unique<gf::Gf2m>(m);
    generator_ = generator_polynomial(*field_, t);
    params_ = CodeParams{m, k, t,
                         static_cast<std::uint32_t>(generator_.degree())};
    ASSERT_TRUE(params_.valid());
    encoder_ = std::make_unique<Encoder>(params_, generator_);
    decoder_ = std::make_unique<Decoder>(*field_, params_);
  }

  BitVec random_message(Rng& rng) const {
    BitVec msg(params_.k);
    for (std::uint32_t i = 0; i < params_.k; ++i) msg.set(i, rng.chance(0.5));
    return msg;
  }

  std::unique_ptr<gf::Gf2m> field_;
  gf::Gf2Poly generator_;
  CodeParams params_;
  std::unique_ptr<Encoder> encoder_;
  std::unique_ptr<Decoder> decoder_;
};

TEST_P(CodeSweep, EncodeDecodeIdentityWithoutErrors) {
  Rng rng(std::get<0>(GetParam()));
  const BitVec msg = random_message(rng);
  BitVec cw = encoder_->encode(msg);
  EXPECT_EQ(decoder_->decode(cw).status, DecodeStatus::kClean);
  EXPECT_EQ(encoder_->extract_message(cw), msg);
}

TEST_P(CodeSweep, CorrectsEveryErrorCountUpToT) {
  const auto [m, k, t] = GetParam();
  Rng rng(m * 1000 + t);
  for (unsigned errors = 1; errors <= t; ++errors) {
    const BitVec msg = random_message(rng);
    const BitVec clean = encoder_->encode(msg);
    BitVec cw = clean;
    const auto injected = inject_exact(cw, errors, rng);
    const DecodeResult result = decoder_->decode(cw);
    ASSERT_TRUE(result.ok()) << errors << " errors";
    EXPECT_EQ(result.corrected, errors);
    EXPECT_EQ(cw, clean);
    // Reported positions are exactly the injected ones.
    std::vector<std::uint32_t> expected(injected.begin(), injected.end());
    EXPECT_EQ(result.positions, expected);
  }
}

TEST_P(CodeSweep, ParityMatchesPolynomialReference) {
  Rng rng(std::get<0>(GetParam()) + 99);
  for (int trial = 0; trial < 8; ++trial) {
    const BitVec msg = random_message(rng);
    EXPECT_EQ(encoder_->parity(msg), encoder_->parity_reference(msg));
  }
}

TEST_P(CodeSweep, CodewordSumIsACodeword) {
  // Linearity: XOR of two codewords has zero syndromes.
  Rng rng(std::get<0>(GetParam()) + 7);
  BitVec a = encoder_->encode(random_message(rng));
  const BitVec b = encoder_->encode(random_message(rng));
  a ^= b;
  for (gf::Element s : decoder_->syndromes(a)) EXPECT_EQ(s, 0u);
}

TEST_P(CodeSweep, SparseAndDenseSyndromesAgree) {
  Rng rng(std::get<0>(GetParam()) + 13);
  const auto t = std::get<2>(GetParam());
  const BitVec clean = encoder_->encode(random_message(rng));
  BitVec cw = clean;
  const auto injected = inject_exact(cw, t, rng);
  EXPECT_EQ(decoder_->syndromes(cw),
            decoder_->syndromes_from_errors(injected));
}

TEST_P(CodeSweep, IidChannelAtHalfLoadIsAlwaysCorrected) {
  // Inject iid errors with expected count t/2; retry until the draw
  // lands within [0, t] (overwhelmingly likely) and require
  // correction.
  const auto [m, k, t] = GetParam();
  Rng rng(m + 17 * t);
  const double rber = 0.5 * t / params_.n();
  for (int trial = 0; trial < 5; ++trial) {
    const BitVec clean = encoder_->encode(random_message(rng));
    BitVec cw = clean;
    const auto injected = inject_iid(cw, rber, rng);
    if (injected.size() > t || injected.empty()) continue;
    const DecodeResult result = decoder_->decode(cw);
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(cw, clean);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, CodeSweep,
    ::testing::Values(
        // (m, k, t): small fields, sector-sized, and page-sized codes.
        Config{5, 16, 2}, Config{6, 32, 3}, Config{7, 64, 5},
        Config{8, 128, 4}, Config{8, 200, 6}, Config{9, 256, 8},
        Config{10, 512, 10}, Config{11, 1024, 7}, Config{12, 2048, 9},
        Config{13, 4096, 12},  // adaptive-rate codec of ref. [28]
        Config{14, 8192, 6}, Config{15, 16384, 5},
        Config{16, 32768, 4}  // the paper's page size, light t
        ),
    [](const ::testing::TestParamInfo<Config>& info) {
      // Built with append rather than operator+ chains: GCC 12 at -O2
      // flags the `const char* + std::string&&` form with a spurious
      // -Wrestrict (PR 105651), which breaks -Werror builds.
      std::string name = "m";
      name += std::to_string(std::get<0>(info.param));
      name += "_k";
      name += std::to_string(std::get<1>(info.param));
      name += "_t";
      name += std::to_string(std::get<2>(info.param));
      return name;
    });

}  // namespace
}  // namespace xlf::bch
