#include "src/gf/gf2m.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/util/rng.hpp"

namespace xlf::gf {
namespace {

// Field axioms checked across every supported degree — the BCH stack
// uses GF(2^16) in production and smaller fields in tests/benches.
class Gf2mAxioms : public ::testing::TestWithParam<unsigned> {};

TEST_P(Gf2mAxioms, SizesAndOrder) {
  const Gf2m field(GetParam());
  EXPECT_EQ(field.m(), GetParam());
  EXPECT_EQ(field.size(), 1u << GetParam());
  EXPECT_EQ(field.order(), (1u << GetParam()) - 1);
}

TEST_P(Gf2mAxioms, MultiplicationClosedAndCommutative) {
  const Gf2m field(GetParam());
  Rng rng(GetParam());
  for (int trial = 0; trial < 500; ++trial) {
    const Element a = static_cast<Element>(rng.below(field.size()));
    const Element b = static_cast<Element>(rng.below(field.size()));
    const Element ab = field.mul(a, b);
    EXPECT_LT(ab, field.size());
    EXPECT_EQ(ab, field.mul(b, a));
  }
}

TEST_P(Gf2mAxioms, MultiplicationAssociative) {
  const Gf2m field(GetParam());
  Rng rng(GetParam() + 100);
  for (int trial = 0; trial < 300; ++trial) {
    const Element a = static_cast<Element>(rng.below(field.size()));
    const Element b = static_cast<Element>(rng.below(field.size()));
    const Element c = static_cast<Element>(rng.below(field.size()));
    EXPECT_EQ(field.mul(field.mul(a, b), c), field.mul(a, field.mul(b, c)));
  }
}

TEST_P(Gf2mAxioms, DistributivityOverAddition) {
  const Gf2m field(GetParam());
  Rng rng(GetParam() + 200);
  for (int trial = 0; trial < 300; ++trial) {
    const Element a = static_cast<Element>(rng.below(field.size()));
    const Element b = static_cast<Element>(rng.below(field.size()));
    const Element c = static_cast<Element>(rng.below(field.size()));
    EXPECT_EQ(field.mul(a, Gf2m::add(b, c)),
              Gf2m::add(field.mul(a, b), field.mul(a, c)));
  }
}

TEST_P(Gf2mAxioms, MultiplicativeIdentityAndZero) {
  const Gf2m field(GetParam());
  for (Element a = 0; a < field.size(); a += 7) {
    EXPECT_EQ(field.mul(a, 1), a);
    EXPECT_EQ(field.mul(a, 0), 0u);
  }
}

TEST_P(Gf2mAxioms, InverseUndoesMultiplication) {
  const Gf2m field(GetParam());
  Rng rng(GetParam() + 300);
  for (int trial = 0; trial < 500; ++trial) {
    const Element a = 1 + static_cast<Element>(rng.below(field.order()));
    EXPECT_EQ(field.mul(a, field.inv(a)), 1u);
    const Element b = 1 + static_cast<Element>(rng.below(field.order()));
    EXPECT_EQ(field.mul(field.div(a, b), b), a);
  }
  EXPECT_THROW(field.inv(0), std::invalid_argument);
  EXPECT_THROW(field.div(1, 0), std::invalid_argument);
}

TEST_P(Gf2mAxioms, AdditionIsSelfInverse) {
  const Gf2m field(GetParam());
  for (Element a = 0; a < field.size(); a += 5) {
    EXPECT_EQ(Gf2m::add(a, a), 0u);
    EXPECT_EQ(Gf2m::add(a, 0), a);
  }
}

TEST_P(Gf2mAxioms, AlphaGeneratesWholeGroup) {
  const Gf2m field(GetParam());
  // alpha's powers must touch every nonzero element exactly once.
  std::vector<bool> seen(field.size(), false);
  for (std::uint32_t i = 0; i < field.order(); ++i) {
    const Element x = field.alpha_pow(i);
    EXPECT_FALSE(seen[x]) << "repeat at exponent " << i;
    seen[x] = true;
  }
  EXPECT_FALSE(seen[0]);
}

TEST_P(Gf2mAxioms, LogIsInverseOfAlphaPow) {
  const Gf2m field(GetParam());
  Rng rng(GetParam() + 400);
  for (int trial = 0; trial < 300; ++trial) {
    const auto e = static_cast<std::uint32_t>(rng.below(field.order()));
    EXPECT_EQ(field.log(field.alpha_pow(e)), e);
  }
  EXPECT_THROW(field.log(0), std::invalid_argument);
}

TEST_P(Gf2mAxioms, PowHandlesNegativeExponents) {
  const Gf2m field(GetParam());
  Rng rng(GetParam() + 500);
  for (int trial = 0; trial < 200; ++trial) {
    const Element a = 1 + static_cast<Element>(rng.below(field.order()));
    EXPECT_EQ(field.mul(field.pow(a, 3), field.pow(a, -3)), 1u);
    EXPECT_EQ(field.pow(a, field.order()), a == 0 ? 0u : field.pow(a, 0));
  }
  EXPECT_EQ(field.alpha_pow(-1), field.inv(field.alpha_pow(1)));
}

TEST_P(Gf2mAxioms, SqrtInvertsSquaring) {
  const Gf2m field(GetParam());
  Rng rng(GetParam() + 600);
  for (int trial = 0; trial < 300; ++trial) {
    const Element a = static_cast<Element>(rng.below(field.size()));
    EXPECT_EQ(field.sqrt(field.mul(a, a)), a);
  }
}

TEST_P(Gf2mAxioms, FrobeniusFreshmanDream) {
  // (a + b)^2 = a^2 + b^2 in characteristic 2 — the identity behind
  // the decoder's even-syndrome shortcut.
  const Gf2m field(GetParam());
  Rng rng(GetParam() + 700);
  for (int trial = 0; trial < 300; ++trial) {
    const Element a = static_cast<Element>(rng.below(field.size()));
    const Element b = static_cast<Element>(rng.below(field.size()));
    const Element lhs = field.mul(Gf2m::add(a, b), Gf2m::add(a, b));
    const Element rhs = Gf2m::add(field.mul(a, a), field.mul(b, b));
    EXPECT_EQ(lhs, rhs);
  }
}

INSTANTIATE_TEST_SUITE_P(AllDegrees, Gf2mAxioms,
                         ::testing::Values(3u, 4u, 5u, 6u, 8u, 10u, 13u, 16u));

TEST(Gf2m, RejectsNonPrimitivePolynomial) {
  // x^4 + x^3 + x^2 + x + 1 is irreducible but NOT primitive (its
  // roots have order 5, not 15).
  EXPECT_THROW(Gf2m(4, 0x1F), std::invalid_argument);
}

TEST(Gf2m, RejectsWrongDegreePolynomial) {
  EXPECT_THROW(Gf2m(4, 0x0B), std::invalid_argument);   // degree 3
  EXPECT_THROW(Gf2m(4, 0x103), std::invalid_argument);  // degree 8
}

TEST(Gf2m, RejectsUnsupportedDegrees) {
  EXPECT_THROW(Gf2m(2), std::invalid_argument);
  EXPECT_THROW(Gf2m(17), std::invalid_argument);
}

TEST(Gf2m, KnownGf16MultiplicationTable) {
  // Spot values for GF(16) with x^4 + x + 1: alpha^4 = alpha + 1 = 3.
  const Gf2m field(4);
  EXPECT_EQ(field.alpha_pow(0), 1u);
  EXPECT_EQ(field.alpha_pow(1), 2u);
  EXPECT_EQ(field.alpha_pow(4), 3u);
  EXPECT_EQ(field.mul(2, 2), 4u);     // alpha * alpha = alpha^2
  EXPECT_EQ(field.mul(8, 2), 3u);     // alpha^3 * alpha = alpha^4
  EXPECT_EQ(field.mul(9, 9), 13u);    // (alpha^3+1)^2 = alpha^6+1
}

}  // namespace
}  // namespace xlf::gf
