// Victim-index equivalence property: under randomized block churn —
// host programs, overwrites/trims (page invalidation), GC relocation
// + erase, and grown-bad retirement — the incremental index's pick is
// equal to the linear oracle scan after every single step, for both
// built-in GC policies. A full-stack variant drives the same churn
// through Ssd + SsdSimulator (trims, grown-bad injection, GC under
// real workload skew) and audits the index with Ftl::check_consistency
// plus an explicit indexed-vs-oracle pick per die between chunks.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/ftl/allocator.hpp"
#include "src/ftl/fault.hpp"
#include "src/ftl/ssd.hpp"
#include "src/policy/registry.hpp"
#include "src/sim/host_workload.hpp"
#include "src/sim/ssd_sim.hpp"
#include "src/util/rng.hpp"

namespace xlf::ftl {
namespace {

std::optional<std::uint32_t> oracle_pick(const DieAllocator& alloc,
                                         const policy::GcPolicy& policy,
                                         std::uint64_t now) {
  return alloc.pick_victim_scored(
      [&policy](const policy::GcBlockView& view) { return policy.score(view); },
      [&alloc](std::uint32_t b) { return alloc.cached_valid(b); }, now);
}

// Allocator-level churn: every transition the Ftl can feed the index
// (map, invalidate, close, erase, retire), in random order, with the
// indexed pick checked against the oracle after each step.
void churn_property(const std::string& name, std::uint64_t seed) {
  const auto policy =
      policy::PolicyRegistry<policy::GcPolicy>::instance().make(name);
  constexpr std::uint32_t kBlocks = 48;
  constexpr std::uint32_t kPages = 8;
  AllocatorConfig config{kBlocks, kPages, nullptr, gc_index_kind_for(name)};
  ASSERT_NE(config.gc_index, GcIndexKind::kNone);
  DieAllocator alloc(config);
  ASSERT_TRUE(alloc.victim_index_enabled());

  Rng rng(seed);
  std::uint64_t clock = 0;
  int retired = 0;
  const auto valid_count = [&](std::uint32_t b) {
    return alloc.cached_valid(b);
  };
  for (int step = 0; step < 4000; ++step) {
    const std::uint32_t op = static_cast<std::uint32_t>(rng.below(100));
    if (op < 55) {
      // Host program (skipped when the die is out of free blocks and
      // the frontier is full — the GC branch unblocks it).
      if (!alloc.needs_block(DieAllocator::Stream::kHost) ||
          alloc.free_count() > 0) {
        const auto [block, page] =
            alloc.take_page(DieAllocator::Stream::kHost);
        (void)page;
        alloc.on_page_mapped(block);
        alloc.stamp_write(block, ++clock);
      }
    } else if (op < 75) {
      // Overwrite / trim: one page of some block goes invalid.
      const auto start = static_cast<std::uint32_t>(rng.below(kBlocks));
      for (std::uint32_t k = 0; k < kBlocks; ++k) {
        const std::uint32_t b = (start + k) % kBlocks;
        if (alloc.cached_valid(b) > 0) {
          alloc.on_page_invalidated(b);
          break;
        }
      }
    } else if (op < 97) {
      // GC step: pick through the production entry point, relocate
      // the live pages onto the GC frontier, erase the victim.
      const auto victim = alloc.pick_victim(*policy, valid_count, clock);
      if (victim.has_value()) {
        bool relocated = true;
        while (alloc.cached_valid(*victim) > 0) {
          if (alloc.needs_block(DieAllocator::Stream::kGc) &&
              alloc.free_count() == 0) {
            relocated = false;
            break;
          }
          const auto [block, page] =
              alloc.take_page(DieAllocator::Stream::kGc);
          (void)page;
          alloc.on_page_mapped(block);
          alloc.stamp_write(block, ++clock);
          alloc.on_page_invalidated(*victim);
        }
        if (relocated) alloc.on_erase(*victim);
      }
    } else if (retired < 3) {
      // Grown-bad retirement of some closed block (bounded: retired
      // blocks leave the cycle for good).
      const auto start = static_cast<std::uint32_t>(rng.below(kBlocks));
      for (std::uint32_t k = 0; k < kBlocks; ++k) {
        const std::uint32_t b = (start + k) % kBlocks;
        if (alloc.is_closed(b)) {
          alloc.retire(b);
          ++retired;
          break;
        }
      }
    }
    const auto indexed = alloc.pick_victim_indexed(*policy, clock);
    const auto oracle = oracle_pick(alloc, *policy, clock);
    ASSERT_EQ(indexed, oracle) << name << " diverged at step " << step;
  }
}

TEST(VictimIndexProperty, GreedyChurnMatchesOracleEveryStep) {
  churn_property("greedy", 0xA11CE);
}

TEST(VictimIndexProperty, CostBenefitChurnMatchesOracleEveryStep) {
  churn_property("cost-benefit", 0xB0B5);
}

// Custom/unknown policy names keep the index off and the linear
// oracle in charge — the fallback contract of AllocatorConfig.
TEST(VictimIndexProperty, UnknownPolicyNameDisablesTheIndex) {
  EXPECT_EQ(gc_index_kind_for("greedy"), GcIndexKind::kGreedy);
  EXPECT_EQ(gc_index_kind_for("cost-benefit"), GcIndexKind::kCostBenefit);
  EXPECT_EQ(gc_index_kind_for("my-downstream-policy"), GcIndexKind::kNone);
  AllocatorConfig config{8, 4, nullptr, gc_index_kind_for("whatever")};
  const DieAllocator alloc(config);
  EXPECT_FALSE(alloc.victim_index_enabled());
}

// Full-stack churn: a trim-heavy skewed workload with grown-bad
// injection, run in chunks with the Ftl-level invariant audit (which
// includes the index-vs-oracle sweep) plus an explicit per-die pick
// comparison between chunks.
void full_stack_property(const std::string& name) {
  SsdConfig config;
  config.topology = {2, 1};
  config.die.device.array.geometry.blocks = 10;
  config.die.device.array.geometry.pages_per_block = 4;
  config.initial_pe_cycles = 1e4;
  config.ftl.pe_cycles_per_erase = 3e4;
  config.ftl.gc_policy = name;
  Ssd ssd(config);

  FaultInjector injector;
  for (std::size_t d = 0; d < ssd.dies(); ++d) {
    injector.fail_block(static_cast<std::uint32_t>(d), 0);
  }
  ssd.set_fault_injector(&injector);

  sim::SsdSimulator simulator(ssd);
  simulator.prepopulate();

  sim::TenantSpec tenant;
  tenant.read_fraction = 0.2;
  tenant.trim_fraction = 0.15;
  const sim::MultiTenantWorkload workload({tenant});
  const auto policy =
      policy::PolicyRegistry<policy::GcPolicy>::instance().make(name);

  Rng stream(0x5EED ^ name.size());
  for (int chunk = 0; chunk < 6; ++chunk) {
    const std::vector<host::Command> commands =
        workload.generate(ssd.logical_pages(), 64, stream);
    const sim::SsdSimStats stats = simulator.run(commands);
    ASSERT_FALSE(stats.power_loss);
    ssd.ftl().check_consistency();
    const std::uint64_t now = ssd.ftl().logical_clock();
    for (std::uint32_t d = 0; d < ssd.dies(); ++d) {
      const DieAllocator& alloc = ssd.ftl().allocator(d);
      ASSERT_TRUE(alloc.victim_index_enabled());
      EXPECT_EQ(alloc.pick_victim_indexed(*policy, now),
                oracle_pick(alloc, *policy, now))
          << name << " die " << d << " chunk " << chunk;
    }
  }
}

TEST(VictimIndexProperty, FullStackGreedyStaysConsistent) {
  full_stack_property("greedy");
}

TEST(VictimIndexProperty, FullStackCostBenefitStaysConsistent) {
  full_stack_property("cost-benefit");
}

}  // namespace
}  // namespace xlf::ftl
