#include "src/hv/charge_pump.hpp"

#include <gtest/gtest.h>

namespace xlf::hv {
namespace {

PumpConfig program_pump_config() {
  return PumpConfig{};  // 12-stage defaults
}

TEST(Pump, OpenCircuitVoltageFollowsStageCount) {
  // (N+1) Vdd - N Vloss.
  DicksonPump pump(program_pump_config());
  EXPECT_NEAR(pump.open_circuit_voltage().value(), 13.0 * 1.8 - 12.0 * 0.15,
              1e-9);
}

TEST(Pump, PaperRailsReachable) {
  // Program pump (12 stages) must exceed the 19 V ISPP ceiling,
  // inhibit (8) the 8 V rail, verify (4) the 4.5 V rail.
  PumpConfig program = program_pump_config();
  EXPECT_GT(DicksonPump(program).open_circuit_voltage().value(), 19.0);
  PumpConfig inhibit;
  inhibit.stages = 8;
  EXPECT_GT(DicksonPump(inhibit).open_circuit_voltage().value(), 8.0);
  PumpConfig verify;
  verify.stages = 4;
  EXPECT_GT(DicksonPump(verify).open_circuit_voltage().value(), 4.5);
}

TEST(Pump, MoreStagesMoreVoltage) {
  PumpConfig few;
  few.stages = 4;
  PumpConfig many;
  many.stages = 12;
  EXPECT_LT(DicksonPump(few).open_circuit_voltage(),
            DicksonPump(many).open_circuit_voltage());
}

TEST(Pump, LoadDroopsOutput) {
  DicksonPump pump(program_pump_config());
  const Volts unloaded = pump.steady_state_voltage(Amperes{0.0});
  const Volts loaded = pump.steady_state_voltage(Amperes::milliamps(1.0));
  EXPECT_LT(loaded, unloaded);
  EXPECT_NEAR((unloaded - loaded).value(),
              1e-3 * pump.output_impedance_ohm(), 1e-9);
}

TEST(Pump, InputCurrentLiftsThroughAllStages) {
  DicksonPump pump(program_pump_config());
  const Amperes in = pump.input_current(Amperes::milliamps(1.0));
  // At least (N+1) x the load plus parasitics.
  EXPECT_GE(in.value(), 13.0e-3);
  EXPECT_GT(in.value(), 13.0e-3);  // parasitics are nonzero
}

TEST(Pump, EfficiencyBelowIdealAndSensible) {
  DicksonPump pump(program_pump_config());
  const Amperes load = Amperes::milliamps(0.5);
  const Volts vout = pump.steady_state_voltage(load);
  const double eta = pump.efficiency(vout, load);
  EXPECT_GT(eta, 0.3);
  EXPECT_LT(eta, 1.0);
  EXPECT_DOUBLE_EQ(pump.efficiency(vout, Amperes{0.0}), 0.0);
}

TEST(Pump, TransientRampsTowardTarget) {
  DicksonPump pump(program_pump_config());
  pump.reset(Volts{0.0});
  const Amperes load = Amperes::milliamps(0.2);
  double prev = 0.0;
  for (int i = 0; i < 50; ++i) {
    const PumpStep step = pump.step(Seconds::micros(2.0), true, load);
    EXPECT_GE(step.vout.value() + 1e-12, prev);
    prev = step.vout.value();
  }
  // Converges near the loaded steady state.
  EXPECT_NEAR(prev, pump.steady_state_voltage(load).value(), 0.5);
}

TEST(Pump, DisabledPumpDischargesUnderLoad) {
  DicksonPump pump(program_pump_config());
  pump.reset(Volts{15.0});
  const PumpStep step =
      pump.step(Seconds::micros(5.0), false, Amperes::milliamps(0.1));
  EXPECT_LT(step.vout.value(), 15.0);
  EXPECT_DOUBLE_EQ(step.input_energy.value(), 0.0);  // no supply draw
}

TEST(Pump, EnergyAccountingMatchesCurrent) {
  DicksonPump pump(program_pump_config());
  pump.reset(Volts{16.0});
  const Amperes load = Amperes::milliamps(0.4);
  const Seconds dt = Seconds::micros(3.0);
  const PumpStep step = pump.step(dt, true, load);
  EXPECT_NEAR(step.input_energy.value(),
              1.8 * step.input_current.value() * dt.value(), 1e-15);
}

TEST(Pump, InvalidConfigsRejected) {
  PumpConfig bad = program_pump_config();
  bad.stages = 0;
  EXPECT_THROW(DicksonPump{bad}, std::invalid_argument);
  bad = program_pump_config();
  bad.parasitic_fraction = 1.5;
  EXPECT_THROW(DicksonPump{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace xlf::hv
