#include "src/util/logmath.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace xlf {
namespace {

TEST(LogMath, FactorialSmallValues) {
  EXPECT_NEAR(log_factorial(0), 0.0, 1e-12);
  EXPECT_NEAR(log_factorial(1), 0.0, 1e-12);
  EXPECT_NEAR(log_factorial(5), std::log(120.0), 1e-10);
  EXPECT_NEAR(log_factorial(10), std::log(3628800.0), 1e-8);
}

TEST(LogMath, ChooseMatchesPascal) {
  EXPECT_NEAR(log_choose(5, 2), std::log(10.0), 1e-10);
  EXPECT_NEAR(log_choose(10, 5), std::log(252.0), 1e-10);
  EXPECT_NEAR(log_choose(52, 5), std::log(2598960.0), 1e-8);
  EXPECT_NEAR(log_choose(7, 0), 0.0, 1e-12);
  EXPECT_NEAR(log_choose(7, 7), 0.0, 1e-12);
  EXPECT_THROW(log_choose(3, 4), std::invalid_argument);
}

TEST(LogMath, ChooseAtPaperScaleIsFinite) {
  // C(33808, 66) — the Eq. (1) term at t = 65 — must be representable
  // in log space (it overflows linear doubles by far).
  const double lc = log_choose(33808, 66);
  EXPECT_TRUE(std::isfinite(lc));
  EXPECT_GT(lc, 400.0);  // ~ e^467
  EXPECT_LT(lc, 600.0);
}

TEST(LogMath, BinomialPmfMatchesDirectComputation) {
  // Binomial(10, 0.3), k = 4: C(10,4) 0.3^4 0.7^6.
  const double expected = 210.0 * std::pow(0.3, 4) * std::pow(0.7, 6);
  EXPECT_NEAR(safe_exp(log_binomial_pmf(10, 4, 0.3)), expected, 1e-12);
}

TEST(LogMath, BinomialPmfSumsToOne) {
  double total = -1e300;
  for (int k = 0; k <= 20; ++k) total = log_add(total, log_binomial_pmf(20, k, 0.37));
  EXPECT_NEAR(safe_exp(total), 1.0, 1e-10);
}

TEST(LogMath, TailGeqZeroIsCertain) {
  EXPECT_NEAR(log_binomial_tail_geq(100, 0, 0.01), 0.0, 1e-12);
}

TEST(LogMath, TailAboveNIsImpossible) {
  EXPECT_EQ(log_binomial_tail_geq(10, 11, 0.5),
            -std::numeric_limits<double>::infinity());
}

TEST(LogMath, TailMatchesBruteForce) {
  // Direct summation at small n.
  const double p = 0.2;
  double brute = 0.0;
  for (int k = 3; k <= 12; ++k) {
    brute += safe_exp(log_binomial_pmf(12, k, p));
  }
  EXPECT_NEAR(safe_exp(log_binomial_tail_geq(12, 3, p)), brute, 1e-12);
}

TEST(LogMath, TailIsMonotoneInThreshold) {
  double prev = 0.0;
  for (unsigned k = 1; k <= 20; ++k) {
    const double tail = log_binomial_tail_geq(1000, k, 0.005);
    EXPECT_LT(tail, prev);
    prev = tail;
  }
}

TEST(LogMath, LogAddCommutesAndHandlesInfinity) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_NEAR(log_add(std::log(3.0), std::log(4.0)), std::log(7.0), 1e-12);
  EXPECT_NEAR(log_add(std::log(4.0), std::log(3.0)), std::log(7.0), 1e-12);
  EXPECT_DOUBLE_EQ(log_add(-inf, std::log(2.0)), std::log(2.0));
  EXPECT_DOUBLE_EQ(log_add(std::log(2.0), -inf), std::log(2.0));
}

TEST(LogMath, SafeExpUnderflowsToZero) {
  EXPECT_DOUBLE_EQ(safe_exp(-1000.0), 0.0);
  EXPECT_NEAR(safe_exp(-1.0), std::exp(-1.0), 1e-15);
}

TEST(LogMath, Log1mAccurateNearZero) {
  EXPECT_NEAR(log1m(1e-15), -1e-15, 1e-22);
  EXPECT_NEAR(log1m(0.5), std::log(0.5), 1e-12);
  EXPECT_THROW(log1m(1.0), std::invalid_argument);
}

}  // namespace
}  // namespace xlf
