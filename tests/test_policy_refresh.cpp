// The retention-aware refresh policy, unit and end-to-end: decision
// boundaries against the prediction model, and the acceptance
// property — on an aged SSD whose pages have absorbed real retention
// stress in the bit-true array, a scrub pass re-programs blocks and
// the observed corrected-bit density of subsequent reads drops.
#include <gtest/gtest.h>

#include "src/ftl/ssd.hpp"
#include "src/policy/policy.hpp"
#include "src/policy/registry.hpp"
#include "src/sim/ssd_sim.hpp"

namespace xlf {
namespace {

std::unique_ptr<policy::RefreshPolicy> retention_aware() {
  return policy::PolicyRegistry<policy::RefreshPolicy>::instance().make(
      "retention_aware");
}

policy::RefreshContext context_at(double pe_cycles, unsigned page_t,
                                  double hours, const nand::AgingLaw& law) {
  policy::RefreshContext ctx;
  ctx.algo = nand::ProgramAlgorithm::kIsppSv;
  ctx.pe_cycles = pe_cycles;
  ctx.page_t = page_t;
  ctx.retention_hours = hours;
  ctx.law = &law;
  return ctx;
}

TEST(RetentionAwareRefresh, DecisionBoundaries) {
  const nand::AgingLaw law;
  const auto policy = retention_aware();

  // Never-programmed blocks and a zero retention horizon never refresh.
  EXPECT_FALSE(policy->should_refresh(context_at(3e5, 0, 2000.0, law)));
  EXPECT_FALSE(policy->should_refresh(context_at(3e5, 30, 0.0, law)));

  // Young block written at the model-based t for its wear (t = 4 at
  // 1e3 cycles): retention barely moves the tiny RBER, the stressed
  // requirement stays within the budget.
  EXPECT_FALSE(policy->should_refresh(context_at(1e3, 4, 1000.0, law)));

  // End-of-life block: retention growth on an already-high RBER blows
  // through the t its pages carry.
  EXPECT_TRUE(policy->should_refresh(context_at(3e5, 30, 2000.0, law)));

  // A generous static budget (t_max) absorbs the same stress.
  EXPECT_FALSE(policy->should_refresh(context_at(1e4, 65, 1000.0, law)));
}

ftl::SsdConfig aged_ssd(const std::string& refresh_policy) {
  ftl::SsdConfig config;
  config.topology = {1, 1};
  config.die.device.array.geometry.blocks = 8;
  config.die.device.array.geometry.pages_per_block = 4;
  // Old drive: every block deep into its life, so per-block t is high
  // and retention margins are thin. 300 h of stress at 1.5e5 cycles
  // is calibrated to be clearly visible in corrected-bit counts while
  // every page stays correctable (the bit-true array's retention
  // shift at 1000+ h would push pages past t entirely).
  config.initial_pe_cycles = 1.5e5;
  config.ftl.pe_cycles_per_erase = 1.0;
  config.ftl.refresh_policy = refresh_policy;
  config.ftl.scrub_retention_hours = 300.0;
  return config;
}

// Writes every logical page, bakes `hours` of retention stress into
// every valid physical page, and returns the total corrected bits
// over one read of the full logical space.
struct BakedSsd {
  explicit BakedSsd(const std::string& refresh_policy)
      : ssd(aged_ssd(refresh_policy)) {
    ftl::Ftl& ftl = ssd.ftl();
    const std::uint32_t bits = ssd.die_geometry().data_bits_per_page();
    Rng rng(20260727);
    for (ftl::Lpa lpa = 0; lpa < ftl.logical_pages(); ++lpa) {
      BitVec data(bits);
      for (std::uint32_t i = 0; i < bits; ++i) {
        if (rng.chance(0.5)) data.set(i, true);
      }
      ftl.write(lpa, data);
    }
  }

  void bake_retention(double hours) {
    const nand::Geometry& geometry = ssd.die_geometry();
    for (std::uint32_t b = 0; b < geometry.blocks; ++b) {
      for (std::uint32_t p = 0; p < geometry.pages_per_block; ++p) {
        if (!ssd.ftl().map().valid(ftl::Ppa{0, b, p})) continue;
        ssd.die(0).device().array().apply_retention({b, p}, hours);
      }
    }
  }

  std::size_t corrected_bits_per_full_read() {
    std::size_t corrected = 0;
    for (ftl::Lpa lpa = 0; lpa < ssd.ftl().logical_pages(); ++lpa) {
      const ftl::FtlOpResult r = ssd.ftl().read(lpa);
      EXPECT_FALSE(r.uncorrectable);
      corrected += r.corrected_bits;
    }
    return corrected;
  }

  ftl::Ssd ssd;
};

TEST(RetentionAwareRefresh, ScrubLowersCorrectedBitDensityOnAgedBlocks) {
  BakedSsd baked("retention_aware");
  baked.bake_retention(300.0);
  const std::size_t before = baked.corrected_bits_per_full_read();
  ASSERT_GT(before, 0u) << "retention stress must be visible before scrub";

  const ftl::ScrubResult scrubbed = baked.ssd.ftl().scrub();
  EXPECT_GT(scrubbed.blocks_refreshed, 0u);
  EXPECT_GT(scrubbed.pages_relocated, 0u);
  EXPECT_GT(scrubbed.busy.value(), 0.0);
  EXPECT_EQ(baked.ssd.ftl().stats().refresh_blocks,
            scrubbed.blocks_refreshed);
  EXPECT_EQ(baked.ssd.ftl().stats().refresh_relocations,
            scrubbed.pages_relocated);

  // Refreshed pages were re-programmed fresh: the retention shift is
  // gone and reads correct observably fewer bits.
  const std::size_t after = baked.corrected_bits_per_full_read();
  EXPECT_LT(after, before);
}

TEST(RetentionAwareRefresh, NonePolicyNeverRefreshes) {
  BakedSsd baked("none");
  baked.bake_retention(300.0);
  const ftl::ScrubResult scrubbed = baked.ssd.ftl().scrub();
  EXPECT_GT(scrubbed.blocks_checked, 0u);
  EXPECT_EQ(scrubbed.blocks_refreshed, 0u);
  EXPECT_EQ(scrubbed.pages_relocated, 0u);
  EXPECT_EQ(baked.ssd.ftl().stats().refresh_blocks, 0u);
}

}  // namespace
}  // namespace xlf
