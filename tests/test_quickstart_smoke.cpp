// Smoke test guarding the documented entry point: exercises the same
// public-API sequence as examples/quickstart.cpp (construct the
// subsystem from defaults, write/read a page, sweep the three named
// operating points at mid-life, then drive the raw controller knobs)
// so the README quickstart can never silently rot.
#include <gtest/gtest.h>

#include "src/core/subsystem.hpp"
#include "src/util/rng.hpp"

namespace xlf {
namespace {

TEST(QuickstartSmoke, DefaultsConstructAndExposeGeometry) {
  core::SubsystemConfig config = core::SubsystemConfig::defaults();
  core::MemorySubsystem subsystem(config);

  const nand::Geometry& geometry = subsystem.device().geometry();
  EXPECT_GT(geometry.blocks, 0u);
  EXPECT_GT(geometry.pages_per_block, 0u);
  EXPECT_GT(geometry.data_bytes_per_page, 0u);
  EXPECT_EQ(geometry.data_bits_per_page(),
            config.device.array.geometry.data_bits_per_page());
}

TEST(QuickstartSmoke, WriteThenReadRoundTripsAtBaseline) {
  core::MemorySubsystem subsystem(core::SubsystemConfig::defaults());

  Rng rng(42);
  BitVec payload(
      subsystem.device().geometry().data_bits_per_page());
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload.set(i, rng.chance(0.5));
  }

  const nand::PageAddress addr{0, 0};
  const controller::WriteResult write = subsystem.write_page(addr, payload);
  const controller::ReadResult read = subsystem.read_page(addr);

  EXPECT_GT(write.latency.value(), 0.0);
  EXPECT_GT(write.t_used, 0u);
  EXPECT_GT(read.latency.value(), 0.0);
  EXPECT_TRUE(read.data == payload) << "page corrupted through write/read";
}

TEST(QuickstartSmoke, NamedOperatingPointsEvaluateAtMidLife) {
  core::MemorySubsystem subsystem(core::SubsystemConfig::defaults());
  subsystem.device().set_uniform_wear(1e5);

  for (const core::OperatingPoint& point :
       {core::OperatingPoint::baseline(), core::OperatingPoint::min_uber(),
        core::OperatingPoint::max_read()}) {
    subsystem.apply(point);
    EXPECT_EQ(subsystem.active_point().name, point.name);

    const core::Metrics m = subsystem.current_metrics();
    EXPECT_GT(m.t, 0u);
    EXPECT_GT(m.rber, 0.0);
    EXPECT_LT(m.log10_uber, 0.0);
    EXPECT_GT(m.read_throughput.value(), 0.0);
    EXPECT_GT(m.write_throughput.value(), 0.0);
    EXPECT_GT(m.total_power().value(), 0.0);
    EXPECT_FALSE(m.summary().empty());
  }
}

// MinUber keeps the SV-sized schedule on DV RBER, so at equal wear its
// UBER must beat Baseline's (the paper's Section 6.3.1 claim).
TEST(QuickstartSmoke, MinUberBeatsBaselineUberAtMidLife) {
  core::MemorySubsystem subsystem(core::SubsystemConfig::defaults());
  subsystem.device().set_uniform_wear(1e5);

  subsystem.apply(core::OperatingPoint::baseline());
  const core::Metrics baseline = subsystem.current_metrics();
  subsystem.apply(core::OperatingPoint::min_uber());
  const core::Metrics min_uber = subsystem.current_metrics();

  EXPECT_LT(min_uber.log10_uber, baseline.log10_uber);
}

TEST(QuickstartSmoke, RawControllerKnobsMatchQuickstartCustomPoint) {
  core::MemorySubsystem subsystem(core::SubsystemConfig::defaults());

  subsystem.controller().set_program_algorithm(
      nand::ProgramAlgorithm::kIsppDv);
  subsystem.controller().set_correction_capability(20);

  EXPECT_EQ(subsystem.controller().program_algorithm(),
            nand::ProgramAlgorithm::kIsppDv);
  EXPECT_EQ(subsystem.controller().correction_capability(), 20u);
}

}  // namespace
}  // namespace xlf
