#include "src/sim/subsystem_sim.hpp"

#include <gtest/gtest.h>

#include "src/sim/lifetime.hpp"

namespace xlf::sim {
namespace {

struct Fixture {
  nand::NandDevice device;
  controller::MemoryController controller;

  Fixture()
      : device(device_config()),
        controller(controller::ControllerConfig{}, device, hv::HvConfig{}) {}

  static nand::DeviceConfig device_config() {
    nand::DeviceConfig config;
    config.array.geometry.blocks = 2;
    config.array.geometry.pages_per_block = 4;
    return config;
  }
};

TEST(SubsystemSim, WriteBurstAccounting) {
  Fixture fx;
  SubsystemSimulator simulator(fx.controller);
  Rng rng(1);
  const auto requests =
      WriteBurstWorkload().generate(fx.device.geometry(), 6, rng);
  const SimStats stats = simulator.run(requests);
  EXPECT_EQ(stats.writes, 6u);
  EXPECT_EQ(stats.reads, 0u);
  EXPECT_EQ(stats.erases, 0u);  // device was erased
  EXPECT_GT(stats.write_busy.millis(), 6.0);
  EXPECT_GT(stats.write_throughput(4096).mib(), 0.5);
  EXPECT_EQ(stats.data_mismatches, 0u);
}

TEST(SubsystemSim, ReadsAutoPopulateAndVerify) {
  Fixture fx;
  SubsystemSimulator simulator(fx.controller);
  Rng rng(2);
  const auto requests =
      SequentialReadWorkload().generate(fx.device.geometry(), 8, rng);
  const SimStats stats = simulator.run(requests);
  EXPECT_EQ(stats.reads, 8u);
  EXPECT_EQ(stats.uncorrectable, 0u);
  EXPECT_EQ(stats.data_mismatches, 0u);
  EXPECT_GT(stats.read_throughput(4096).mib(), 10.0);
}

TEST(SubsystemSim, RewritingForcesErase) {
  Fixture fx;
  SubsystemSimulator simulator(fx.controller);
  Rng rng(3);
  // 10 writes over 8 pages: at least one block recycles.
  const auto requests =
      WriteBurstWorkload().generate(fx.device.geometry(), 10, rng);
  const SimStats stats = simulator.run(requests);
  EXPECT_EQ(stats.writes, 10u);
  EXPECT_GE(stats.erases, 1u);
}

TEST(SubsystemSim, PrepopulateWritesWholeDevice) {
  Fixture fx;
  SubsystemSimulator simulator(fx.controller);
  simulator.prepopulate();
  for (std::uint32_t b = 0; b < 2; ++b) {
    for (std::uint32_t p = 0; p < 4; ++p) {
      EXPECT_FALSE(fx.device.array().is_erased({b, p}));
    }
  }
  // A pure-read run over the populated device counts no writes.
  Rng rng(4);
  const auto requests =
      SequentialReadWorkload().generate(fx.device.geometry(), 8, rng);
  const SimStats stats = simulator.run(requests);
  EXPECT_EQ(stats.reads, 8u);
  EXPECT_EQ(stats.writes, 0u);
}

TEST(SubsystemSim, PacedStreamTracksWallClock) {
  Fixture fx;
  SubsystemSimulator simulator(fx.controller);
  simulator.prepopulate();
  Rng rng(5);
  // Slow stream: service (~120 us) far faster than the 2 ms cadence.
  const MultimediaStreamingWorkload stream(BytesPerSecond::mib(2.0), 4096);
  const auto requests = stream.generate(fx.device.geometry(), 10, rng);
  const SimStats stats = simulator.run(requests);
  EXPECT_EQ(stats.qos_misses, 0u);
  // Elapsed is dominated by the pacing, not the device.
  EXPECT_GT(stats.elapsed.millis(), 15.0);
}

TEST(SubsystemSim, OverloadedStreamMissesQos) {
  Fixture fx;
  fx.device.set_uniform_wear(1e6);
  fx.controller.adapt_ecc(1e6);  // t = 65: worst-case decode 159 us
  SubsystemSimulator simulator(fx.controller);
  simulator.prepopulate();
  Rng rng(6);
  // Demand just above what the aged baseline can serve.
  const MultimediaStreamingWorkload stream(BytesPerSecond::mib(18.0), 4096);
  const auto requests = stream.generate(fx.device.geometry(), 30, rng);
  const SimStats stats = simulator.run(requests);
  EXPECT_GT(stats.qos_misses, 0u);
}

TEST(LifetimeRunner, AdaptsAndCollects) {
  Fixture fx;
  const MixedWorkload workload(0.7);
  const LifetimePoint point =
      run_at_age(fx.controller, workload, 20, 1e6, /*seed=*/7);
  EXPECT_EQ(point.t_selected, 65u);
  EXPECT_NEAR(point.rber, 1e-3, 1e-4);
  EXPECT_LE(point.uber, 1e-11);
  EXPECT_EQ(point.stats.reads + point.stats.writes, 20u);
  EXPECT_EQ(point.stats.uncorrectable, 0u);
}

TEST(LifetimeGrid, SpansPaperAxes) {
  const auto grid = lifetime_grid(2);
  EXPECT_NEAR(grid.front(), 1.0, 1e-9);
  EXPECT_NEAR(grid.back(), 1e6, 1.0);
  EXPECT_EQ(grid.size(), 13u);
}

}  // namespace
}  // namespace xlf::sim
