#include "src/nand/interference.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace xlf::nand {
namespace {

std::vector<FloatingGateCell> cells_at(std::initializer_list<double> vths) {
  std::vector<FloatingGateCell> cells;
  for (double v : vths) cells.emplace_back(Volts{v}, CellParams{});
  return cells;
}

TEST(Interference, WithinPageCouplesNeighbours) {
  const InterferenceModel model(InterferenceConfig{.gamma_x = 0.1,
                                                   .gamma_y = 0.0});
  auto cells = cells_at({1.0, 1.0, 1.0});
  const std::vector<Volts> deltas{Volts{2.0}, Volts{0.0}, Volts{4.0}};
  model.apply_within_page(cells, deltas);
  // Middle cell sees both neighbours: 0.1 * (2 + 4) / 2 = 0.3.
  EXPECT_NEAR(cells[1].vth().value(), 1.3, 1e-12);
  // Edge cells see one neighbour each.
  EXPECT_NEAR(cells[0].vth().value(), 1.0, 1e-12);  // neighbour delta 0
  EXPECT_NEAR(cells[2].vth().value(), 1.0, 1e-12);
}

TEST(Interference, ZeroCouplingIsNoOp) {
  const InterferenceModel model(InterferenceConfig{.gamma_x = 0.0,
                                                   .gamma_y = 0.0});
  auto cells = cells_at({1.0, 2.0});
  const std::vector<Volts> deltas{Volts{5.0}, Volts{5.0}};
  model.apply_within_page(cells, deltas);
  EXPECT_NEAR(cells[0].vth().value(), 1.0, 1e-12);
  EXPECT_NEAR(cells[1].vth().value(), 2.0, 1e-12);
}

TEST(Interference, PageToPageUsesGammaY) {
  const InterferenceModel model(InterferenceConfig{.gamma_x = 0.0,
                                                   .gamma_y = 0.05});
  auto victims = cells_at({1.0, 2.0});
  const std::vector<Volts> deltas{Volts{4.0}, Volts{0.0}};
  model.apply_page_to_page(victims, deltas);
  EXPECT_NEAR(victims[0].vth().value(), 1.2, 1e-12);
  EXPECT_NEAR(victims[1].vth().value(), 2.0, 1e-12);
}

TEST(Interference, SigmaEstimatePositiveAndScales) {
  const InterferenceModel weak(InterferenceConfig{.gamma_x = 0.004,
                                                  .gamma_y = 0.0});
  const InterferenceModel strong(InterferenceConfig{.gamma_x = 0.04,
                                                    .gamma_y = 0.0});
  const Volts typical{4.0};
  EXPECT_GT(weak.within_page_sigma(typical).value(), 0.0);
  EXPECT_NEAR(strong.within_page_sigma(typical).value() /
                  weak.within_page_sigma(typical).value(),
              10.0, 1e-9);
}

TEST(Interference, MismatchedSpansRejected) {
  const InterferenceModel model(InterferenceConfig{});
  auto cells = cells_at({1.0, 2.0});
  const std::vector<Volts> deltas{Volts{1.0}};
  EXPECT_THROW(model.apply_within_page(cells, deltas), std::invalid_argument);
  EXPECT_THROW(model.apply_page_to_page(cells, deltas),
               std::invalid_argument);
}

TEST(Interference, UnphysicalRatiosRejected) {
  EXPECT_THROW(
      InterferenceModel(InterferenceConfig{.gamma_x = 0.6, .gamma_y = 0.0}),
      std::invalid_argument);
  EXPECT_THROW(
      InterferenceModel(InterferenceConfig{.gamma_x = 0.0, .gamma_y = -0.1}),
      std::invalid_argument);
}

}  // namespace
}  // namespace xlf::nand
