// Correction-boundary regression at the paper's corner capabilities:
// exactly t injected errors must correct, t+1 must be *detected* as
// kUncorrectable — for both the bit-true decode() and the simulation
// fast path decode_with_reference(), at t_min = 3 and t_max = 65 on
// the full 4 KiB page code over GF(2^16). The word-at-a-time syndrome
// kernel is also pinned against the per-bit reference here, since this
// is the code size the explore engine hammers.
#include "src/bch/decoder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/bch/encoder.hpp"
#include "src/bch/error_injection.hpp"
#include "src/bch/generator.hpp"
#include "src/util/rng.hpp"

namespace xlf::bch {
namespace {

BitVec random_message(std::uint32_t k, Rng& rng) {
  BitVec msg(k);
  for (std::uint32_t i = 0; i < k; ++i) msg.set(i, rng.chance(0.5));
  return msg;
}

struct PageCode {
  gf::Gf2m field{16};
  CodeParams params;
  Encoder encoder;
  Decoder decoder;

  explicit PageCode(unsigned t)
      : params{16, 32768, t},
        encoder(params, generator_polynomial(field, t)),
        decoder(field, params) {}
};

void expect_boundary_behaviour(unsigned t, std::uint64_t seed) {
  PageCode code(t);
  Rng rng(seed);
  const BitVec clean = code.encoder.encode(random_message(32768, rng));

  // Exactly t errors: both paths correct back to the clean codeword
  // and report the injected positions.
  {
    BitVec corrupted = clean;
    const auto injected = inject_exact(corrupted, t, rng);
    BitVec honest = corrupted;
    const DecodeResult result = code.decoder.decode(honest);
    EXPECT_EQ(result.status, DecodeStatus::kCorrected);
    EXPECT_EQ(result.corrected, t);
    EXPECT_EQ(honest, clean);
    std::vector<std::size_t> reported(result.positions.begin(),
                                      result.positions.end());
    std::sort(reported.begin(), reported.end());
    EXPECT_EQ(reported, injected);

    BitVec fast = corrupted;
    const DecodeResult ref_result =
        code.decoder.decode_with_reference(fast, clean);
    EXPECT_EQ(ref_result.status, DecodeStatus::kCorrected);
    EXPECT_EQ(ref_result.corrected, t);
    EXPECT_EQ(fast, clean);
  }

  // t+1 errors: one beyond the design capability; must be detected,
  // not miscorrected, on both paths (seeds pin patterns where the
  // locator is inconsistent — the overwhelmingly common case).
  {
    BitVec corrupted = clean;
    inject_exact(corrupted, t + 1, rng);
    BitVec honest = corrupted;
    const DecodeResult result = code.decoder.decode(honest);
    EXPECT_EQ(result.status, DecodeStatus::kUncorrectable);
    EXPECT_EQ(honest, corrupted);  // detection leaves the word untouched

    BitVec fast = corrupted;
    const DecodeResult ref_result =
        code.decoder.decode_with_reference(fast, clean);
    EXPECT_EQ(ref_result.status, DecodeStatus::kUncorrectable);
    EXPECT_EQ(fast, corrupted);
  }
}

TEST(BchBoundary, TminCorrectsAtTAndDetectsAtTPlusOne) {
  expect_boundary_behaviour(3, 101);
  expect_boundary_behaviour(3, 102);
}

TEST(BchBoundary, TmaxCorrectsAtTAndDetectsAtTPlusOne) {
  expect_boundary_behaviour(65, 201);
  expect_boundary_behaviour(65, 202);
}

TEST(BchBoundary, WordKernelMatchesBitwiseReference) {
  // The production syndrome kernel vs the per-bit Horner reference on
  // the paper-scale code, clean and corrupted (dense and sparse-ish
  // words, including the partial tail word of n = 33808 + parity).
  for (unsigned t : {3u, 65u}) {
    PageCode code(t);
    Rng rng(7 + t);
    BitVec cw = code.encoder.encode(random_message(32768, rng));
    EXPECT_EQ(code.decoder.syndromes(cw), code.decoder.syndromes_bitwise(cw));
    inject_exact(cw, t + 5, rng);
    EXPECT_EQ(code.decoder.syndromes(cw), code.decoder.syndromes_bitwise(cw));
    // All-zero words exercise the zero-skip fast path.
    BitVec zeros(code.params.n());
    EXPECT_EQ(code.decoder.syndromes(zeros),
              code.decoder.syndromes_bitwise(zeros));
    // A lone set bit in the top (partial) word pins the tail handling.
    BitVec top(code.params.n());
    top.set(code.params.n() - 1, true);
    EXPECT_EQ(code.decoder.syndromes(top),
              code.decoder.syndromes_bitwise(top));
  }
}

TEST(BchBoundary, WordKernelMatchesBitwiseOnSmallFields) {
  // Sweep small fields so codeword lengths land at awkward non-word
  // multiples.
  for (unsigned m : {5u, 8u, 11u}) {
    const gf::Gf2m field(m);
    const unsigned t = 2;
    const gf::Gf2Poly g = generator_polynomial(field, t);
    const auto r = static_cast<std::uint32_t>(g.degree());
    const std::uint32_t k = field.order() - r - 3;  // shortened oddly
    const CodeParams params{m, k, t, r};
    const Encoder encoder(params, g);
    const Decoder decoder(field, params);
    Rng rng(m);
    BitVec cw = encoder.encode(random_message(k, rng));
    inject_exact(cw, t, rng);
    EXPECT_EQ(decoder.syndromes(cw), decoder.syndromes_bitwise(cw));
  }
}

}  // namespace
}  // namespace xlf::bch
