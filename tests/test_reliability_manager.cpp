#include "src/controller/reliability_manager.hpp"

#include <gtest/gtest.h>

namespace xlf::controller {
namespace {

ReliabilityManager make_manager(const std::string& policy) {
  return ReliabilityManager(ReliabilityConfig{}, policy, nand::AgingLaw{});
}

TEST(ReliabilityManager, ModelBasedSchedulesMatchPaper) {
  // Section 6.2: SV needs tMIN ~3-4 at BOL and tMAX = 65 at EOL; the
  // DV schedule stays far lower.
  const ReliabilityManager manager =
      make_manager("model_based");
  EXPECT_LE(manager.select_t(nand::ProgramAlgorithm::kIsppSv, 1.0), 4u);
  EXPECT_EQ(manager.select_t(nand::ProgramAlgorithm::kIsppSv, 1e6), 65u);
  EXPECT_FALSE(manager.saturated());
  EXPECT_EQ(manager.select_t(nand::ProgramAlgorithm::kIsppDv, 1.0), 3u);
  const unsigned dv_eol =
      manager.select_t(nand::ProgramAlgorithm::kIsppDv, 1e6);
  EXPECT_GE(dv_eol, 14u);  // paper quotes 14; exact Eq.-(1) gives 16
  EXPECT_LE(dv_eol, 17u);
}

TEST(ReliabilityManager, ScheduleMonotoneOverLife) {
  const ReliabilityManager manager =
      make_manager("model_based");
  for (auto algo :
       {nand::ProgramAlgorithm::kIsppSv, nand::ProgramAlgorithm::kIsppDv}) {
    unsigned prev = 0;
    for (double c = 1.0; c <= 1e6; c *= 2.0) {
      const unsigned t = manager.select_t(algo, c);
      EXPECT_GE(t, prev);
      prev = t;
    }
  }
}

TEST(ReliabilityManager, PredictedUberMeetsTarget) {
  const ReliabilityManager manager =
      make_manager("model_based");
  for (auto algo :
       {nand::ProgramAlgorithm::kIsppSv, nand::ProgramAlgorithm::kIsppDv}) {
    for (double c : {1.0, 1e3, 1e5, 1e6}) {
      EXPECT_LE(manager.predicted_uber(algo, c), 1e-11 * 1.0001)
          << to_string(algo) << " " << c;
    }
  }
}

TEST(ReliabilityManager, SaturationReported) {
  ReliabilityConfig tight;
  tight.t_max = 10;  // too weak for EOL ISPP-SV
  const ReliabilityManager manager(tight, "model_based",
                                   nand::AgingLaw{});
  EXPECT_EQ(manager.select_t(nand::ProgramAlgorithm::kIsppSv, 1e6), 10u);
  EXPECT_TRUE(manager.saturated());
}

TEST(ReliabilityManager, StaticPolicyKeepsFallback) {
  const ReliabilityManager manager = make_manager("static");
  EXPECT_EQ(
      manager.recommended_t(nand::ProgramAlgorithm::kIsppSv, 1e6, 12u), 12u);
}

TEST(ReliabilityManager, FeedbackWaitsForWarmup) {
  ReliabilityManager manager = make_manager("feedback");
  EXPECT_FALSE(manager.estimate_ready());
  EXPECT_EQ(
      manager.recommended_t(nand::ProgramAlgorithm::kIsppSv, 1e5, 7u), 7u);
}

TEST(ReliabilityManager, FeedbackConvergesToObservedRate) {
  ReliabilityManager manager = make_manager("feedback");
  // Feed decodes at a known error density: 33 corrected bits per
  // 33808-bit codeword = RBER ~9.76e-4 (the EOL SV point).
  for (int i = 0; i < 400; ++i) manager.observe_decode(33, 33808);
  EXPECT_TRUE(manager.estimate_ready());
  EXPECT_NEAR(manager.estimated_rber(), 33.0 / 33808.0, 2e-5);
  const unsigned t =
      manager.recommended_t(nand::ProgramAlgorithm::kIsppSv, 0.0, 3u);
  // With the 1.25x safety margin this must land at/near the EOL t.
  EXPECT_GE(t, 60u);
  EXPECT_LE(t, 65u);
}

TEST(ReliabilityManager, FeedbackWithNoErrorsFallsToFloor) {
  ReliabilityManager manager = make_manager("feedback");
  for (int i = 0; i < 100; ++i) manager.observe_decode(0, 33808);
  EXPECT_EQ(
      manager.recommended_t(nand::ProgramAlgorithm::kIsppSv, 1e6, 40u), 3u);
}

TEST(ReliabilityManager, FeedbackTracksModelAcrossLife) {
  // Feeding synthetic observations drawn from the aging law must make
  // the feedback schedule track the model-based one within a step or
  // two (the safety factor biases it upward).
  const nand::AgingLaw law;
  const ReliabilityManager model = make_manager("model_based");
  for (double c : {1e3, 1e5, 1e6}) {
    ReliabilityManager feedback = make_manager("feedback");
    const double rber = law.rber(nand::ProgramAlgorithm::kIsppSv, c);
    const auto corrected = static_cast<unsigned>(rber * 33808.0 + 0.5);
    for (int i = 0; i < 200; ++i) feedback.observe_decode(corrected, 33808);
    const unsigned t_feedback =
        feedback.recommended_t(nand::ProgramAlgorithm::kIsppSv, c, 3u);
    const unsigned t_model = model.select_t(nand::ProgramAlgorithm::kIsppSv, c);
    EXPECT_GE(t_feedback + 1, t_model) << c;   // never dangerously below
    EXPECT_LE(t_feedback, t_model + 8) << c;   // nor wastefully above
  }
}

TEST(ReliabilityManager, InvalidConfigsRejected) {
  ReliabilityConfig bad;
  bad.uber_target = 0.0;
  EXPECT_THROW(ReliabilityManager(bad, "static",
                                  nand::AgingLaw{}),
               std::invalid_argument);
  bad = ReliabilityConfig{};
  bad.safety_factor = 0.5;
  EXPECT_THROW(ReliabilityManager(bad, "static",
                                  nand::AgingLaw{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace xlf::controller
