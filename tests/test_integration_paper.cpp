// End-to-end assertions of the paper's headline claims, exercised
// through the full stack (device + controller + framework), not the
// individual models. This is the reproduction contract: if any of
// these breaks, a figure stopped matching the paper's shape.
#include <gtest/gtest.h>

#include "src/core/cross_layer.hpp"
#include "src/core/paper.hpp"
#include "src/core/subsystem.hpp"
#include "src/sim/lifetime.hpp"
#include "src/sim/subsystem_sim.hpp"

namespace xlf::core {
namespace {

struct Fixture {
  SubsystemConfig config;
  std::unique_ptr<MemorySubsystem> subsystem;

  Fixture() {
    config = SubsystemConfig::defaults();
    config.device.array.geometry.blocks = 2;
    config.device.array.geometry.pages_per_block = 4;
    subsystem = std::make_unique<MemorySubsystem>(config);
  }
};

TEST(PaperClaims, Fig5RberGapIsOneOrderOfMagnitude) {
  const nand::AgingLaw law;
  for (double c : {1e2, 1e4, 1e6}) {
    const double ratio = law.rber(nand::ProgramAlgorithm::kIsppSv, c) /
                         law.rber(nand::ProgramAlgorithm::kIsppDv, c);
    EXPECT_NEAR(ratio, paper::kRberImprovementFactor, 0.1);
  }
}

TEST(PaperClaims, Fig7CapabilityChain) {
  // The annotated (RBER, t) pairs of Fig. 7.
  const auto t_for = [](double rber) {
    return bch::min_t_for_uber(rber, paper::kUberTarget, paper::kPageBits,
                               paper::kFieldDegree, 1, 100)
        .value_or(0);
  };
  EXPECT_EQ(t_for(1e-6), 3u);
  EXPECT_EQ(t_for(2.5e-6), 4u);
  EXPECT_NEAR(t_for(2.75e-4), 27.0, 1.0);
  EXPECT_NEAR(t_for(3.35e-4), 30.0, 1.0);
  EXPECT_NEAR(t_for(1e-3), 65.0, 1.0);
}

TEST(PaperClaims, Fig8LatencyEnvelope) {
  const ecc_hw::LatencyModel latency{ecc_hw::EccHwConfig{}};
  // Encode flat at ~51 us, t-independent by construction.
  EXPECT_NEAR(latency.encode_latency().micros(), 51.25, 0.1);
  // Decode between ~103 us and ~159 us — inside the 40..160 us plot.
  EXPECT_GT(latency.decode_latency(3).micros(), 40.0);
  EXPECT_LT(latency.decode_latency(65).micros(), 165.0);
  // The Section 6.3.2 ratio: decode dominates the 75 us page read.
  EXPECT_GT(latency.decode_latency(65), paper::kPageReadTime);
}

TEST(PaperClaims, Fig9WriteLossWindowEndToEnd) {
  Fixture fx;
  const nand::NandTiming& timing = fx.subsystem->device().timing();
  for (double c : {1e2, 1e6}) {
    const double sv =
        timing.program_time(nand::ProgramAlgorithm::kIsppSv, c).value();
    const double dv =
        timing.program_time(nand::ProgramAlgorithm::kIsppDv, c).value();
    const double loss = 100.0 * (1.0 - sv / dv);
    EXPECT_GT(loss, 33.0) << c;
    EXPECT_LT(loss, 55.0) << c;
  }
  // Section 6.3.3: the SV program time anchors near 1.5 ms.
  EXPECT_NEAR(
      timing.program_time(nand::ProgramAlgorithm::kIsppSv, 1e2).millis(),
      paper::kProgramTimeQuote.millis(), 0.4);
}

TEST(PaperClaims, Fig10MinUberBoostsWithoutReadPenalty) {
  Fixture fx;
  const CrossLayerFramework& fw = fx.subsystem->framework();
  for (double c : {1e2, 1e6}) {
    const Metrics base = fw.evaluate(OperatingPoint::baseline(), c);
    const Metrics boost = fw.evaluate(OperatingPoint::min_uber(), c);
    EXPECT_NEAR(boost.read_latency.value(), base.read_latency.value(), 1e-12);
    EXPECT_LT(boost.log10_uber, base.log10_uber - 3.0);
  }
  // The margin grows with age (Fig. 10's widening gap).
  const double gap_bol =
      fw.evaluate(OperatingPoint::baseline(), 1e2).log10_uber -
      fw.evaluate(OperatingPoint::min_uber(), 1e2).log10_uber;
  const double gap_eol =
      fw.evaluate(OperatingPoint::baseline(), 1e6).log10_uber -
      fw.evaluate(OperatingPoint::min_uber(), 1e6).log10_uber;
  EXPECT_GT(gap_eol, gap_bol);
}

TEST(PaperClaims, Fig11ReadGainReaches30PctAtEol) {
  Fixture fx;
  const CrossLayerFramework& fw = fx.subsystem->framework();
  const Metrics base = fw.evaluate(OperatingPoint::baseline(), 1e6);
  const Metrics cross = fw.evaluate(OperatingPoint::max_read(), 1e6);
  const double gain = compare(cross, base).read_throughput_gain_pct;
  EXPECT_NEAR(gain, paper::kReadGainEolPct, 5.0);
  EXPECT_LE(cross.uber, paper::kUberTarget * 1.0001);
}

TEST(PaperClaims, PowerStoryHoldsTogether) {
  Fixture fx;
  const CrossLayerFramework& fw = fx.subsystem->framework();
  const Metrics base = fw.evaluate(OperatingPoint::baseline(), 1e6);
  const Metrics cross = fw.evaluate(OperatingPoint::max_read(), 1e6);
  // NAND pays ~4-13 mW for DV...
  const double nand_penalty_mw =
      (cross.nand_program_power - base.nand_program_power).milliwatts();
  EXPECT_GT(nand_penalty_mw, 2.0);
  EXPECT_LT(nand_penalty_mw, 14.0);
  // ...the ECC returns ~5-7 mW...
  const double ecc_saving_mw =
      (base.ecc_decode_power - cross.ecc_decode_power).milliwatts();
  EXPECT_GT(ecc_saving_mw, 4.0);
  // ...so the budget moves by less than the NAND penalty alone.
  EXPECT_LT(std::abs((cross.total_power() - base.total_power()).milliwatts()),
            nand_penalty_mw);
}

TEST(PaperClaims, BitTrueLifetimeRunsStayCorrectable) {
  // Drive real traffic through the full stack at three ages under the
  // MaxRead point: every page must decode, every payload must match.
  Fixture fx;
  fx.subsystem->apply(OperatingPoint::max_read());
  sim::MixedWorkload workload(0.75);
  for (double cycles : {1e2, 1e5, 1e6}) {
    fx.subsystem->device().set_uniform_wear(cycles);
    fx.subsystem->refresh();
    const sim::LifetimePoint point = sim::run_at_age(
        fx.subsystem->controller(), workload, 24, cycles, /*seed=*/17);
    EXPECT_EQ(point.stats.uncorrectable, 0u) << cycles;
    EXPECT_EQ(point.stats.data_mismatches, 0u) << cycles;
    EXPECT_LE(point.uber, paper::kUberTarget * 1.0001) << cycles;
  }
}

TEST(PaperClaims, AblationOnlyCrossLayerWins) {
  // The paper's core argument as a single assertion: the ECC knob
  // alone violates the UBER target at EOL; the device knob alone buys
  // no read throughput; only the combination gives both.
  Fixture fx;
  const CrossLayerFramework& fw = fx.subsystem->framework();
  const double c = 1e6;
  const Metrics base = fw.evaluate(OperatingPoint::baseline(), c);

  const OperatingPoint ecc_only{"ecc-only", nand::ProgramAlgorithm::kIsppSv,
                                EccSchedule::kTrackDv, 3};
  const Metrics ecc_only_m = fw.evaluate(ecc_only, c);
  EXPECT_GT(ecc_only_m.uber, paper::kUberTarget * 100.0);  // broken

  const Metrics phys_only = fw.evaluate(OperatingPoint::min_uber(), c);
  EXPECT_NEAR(compare(phys_only, base).read_throughput_gain_pct, 0.0, 0.5);

  const Metrics cross = fw.evaluate(OperatingPoint::max_read(), c);
  EXPECT_GT(compare(cross, base).read_throughput_gain_pct, 24.0);
  EXPECT_LE(cross.uber, paper::kUberTarget * 1.0001);
}

}  // namespace
}  // namespace xlf::core
