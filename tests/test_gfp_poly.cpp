#include "src/gf/gfp_poly.hpp"

#include <gtest/gtest.h>

#include "src/util/rng.hpp"

namespace xlf::gf {
namespace {

GfpPoly random_poly(const Gf2m& field, Rng& rng, std::size_t max_degree) {
  std::vector<Element> coeffs(rng.below(max_degree + 1) + 1);
  for (auto& c : coeffs) c = static_cast<Element>(rng.below(field.size()));
  return GfpPoly(std::move(coeffs));
}

TEST(GfpPoly, DegreeAndTrim) {
  EXPECT_EQ(GfpPoly::zero().degree(), -1);
  EXPECT_EQ(GfpPoly::one().degree(), 0);
  EXPECT_EQ(GfpPoly({1, 2, 0, 0}).degree(), 1);  // trailing zeros trimmed
  EXPECT_EQ(GfpPoly({0, 0, 7}).degree(), 2);
}

TEST(GfpPoly, CoeffAccess) {
  GfpPoly p({3, 0, 5});
  EXPECT_EQ(p.coeff(0), 3u);
  EXPECT_EQ(p.coeff(1), 0u);
  EXPECT_EQ(p.coeff(2), 5u);
  EXPECT_EQ(p.coeff(99), 0u);  // beyond degree reads as zero
  p.set_coeff(7, 9);
  EXPECT_EQ(p.degree(), 7);
  EXPECT_EQ(p.coeff(7), 9u);
}

TEST(GfpPoly, AdditionIsCoefficientwiseXor) {
  const Gf2m field(8);
  const GfpPoly a({1, 2, 3});
  const GfpPoly b({3, 2, 1});
  const GfpPoly sum = a.add(field, b);
  EXPECT_EQ(sum.coeff(0), 2u);
  EXPECT_EQ(sum.coeff(1), 0u);
  EXPECT_EQ(sum.coeff(2), 2u);
  EXPECT_TRUE(a.add(field, a).is_zero());
}

TEST(GfpPoly, MulMatchesEval) {
  const Gf2m field(8);
  Rng rng(1);
  for (int trial = 0; trial < 60; ++trial) {
    const GfpPoly a = random_poly(field, rng, 10);
    const GfpPoly b = random_poly(field, rng, 10);
    const GfpPoly prod = a.mul(field, b);
    for (int i = 0; i < 5; ++i) {
      const Element x = static_cast<Element>(rng.below(field.size()));
      EXPECT_EQ(prod.eval(field, x),
                field.mul(a.eval(field, x), b.eval(field, x)));
    }
  }
}

TEST(GfpPoly, ScaleAndShift) {
  const Gf2m field(4);
  const GfpPoly p({1, 2});
  const GfpPoly scaled = p.scale(field, 3);
  EXPECT_EQ(scaled.coeff(0), field.mul(1, 3));
  EXPECT_EQ(scaled.coeff(1), field.mul(2, 3));
  const GfpPoly shifted = p.shifted(2);
  EXPECT_EQ(shifted.degree(), 3);
  EXPECT_EQ(shifted.coeff(2), 1u);
  EXPECT_EQ(shifted.coeff(3), 2u);
  EXPECT_TRUE(p.scale(field, 0).is_zero());
}

TEST(GfpPoly, EvalHorner) {
  const Gf2m field(4);
  // p(x) = x^2 + alpha: p(alpha) = alpha^2 + alpha = 4 ^ 2 = 6.
  const GfpPoly p({2, 0, 1});
  EXPECT_EQ(p.eval(field, 2), 6u);
  EXPECT_EQ(p.eval(field, 0), 2u);  // constant term
}

TEST(GfpPoly, RootsOfConstructedLocator) {
  // Build lambda(x) = (1 - X1 x)(1 - X2 x) and confirm its roots are
  // exactly the inverses of X1, X2 — the Chien-search contract.
  const Gf2m field(8);
  const Element x1 = field.alpha_pow(10);
  const Element x2 = field.alpha_pow(77);
  const GfpPoly f1({1, x1});
  const GfpPoly f2({1, x2});
  const GfpPoly lambda = f1.mul(field, f2);
  EXPECT_EQ(lambda.eval(field, field.inv(x1)), 0u);
  EXPECT_EQ(lambda.eval(field, field.inv(x2)), 0u);
  EXPECT_NE(lambda.eval(field, field.alpha_pow(3)), 0u);
}

TEST(GfpPoly, DerivativeCharacteristic2) {
  const GfpPoly p({5, 7, 9, 11});  // 5 + 7x + 9x^2 + 11x^3
  const GfpPoly d = p.derivative();
  EXPECT_EQ(d.coeff(0), 7u);   // odd terms survive
  EXPECT_EQ(d.coeff(1), 0u);   // even terms vanish
  EXPECT_EQ(d.coeff(2), 11u);
  EXPECT_EQ(d.degree(), 2);
}

TEST(GfpPoly, EqualsIgnoresRepresentation) {
  GfpPoly a({1, 2});
  GfpPoly b({1, 2, 0});
  EXPECT_TRUE(a.equals(b));
  EXPECT_FALSE(a.equals(GfpPoly({1, 3})));
}

TEST(GfpPoly, ToString) {
  EXPECT_EQ(GfpPoly({1, 0, 3}).to_string(), "3*x^2 + 1");
  EXPECT_EQ(GfpPoly::zero().to_string(), "0");
}

}  // namespace
}  // namespace xlf::gf
