// Host workload generators: fixed-seed determinism (byte-identical
// request/command streams), empirical hot/cold skew, the
// single-tenant degenerate-case contract of MultiTenantWorkload, and
// trim emission.
#include "src/sim/host_workload.hpp"

#include <gtest/gtest.h>

#include <set>

namespace xlf::sim {
namespace {

bool same_request(const HostRequest& a, const HostRequest& b) {
  return a.type == b.type && a.lpa == b.lpa &&
         a.gap.value() == b.gap.value();
}

bool same_command(const host::Command& a, const host::Command& b) {
  return a.type == b.type && a.lba == b.lba && a.length == b.length &&
         a.queue == b.queue && a.tenant == b.tenant &&
         a.gap.value() == b.gap.value();
}

TEST(HostWorkload, FixedSeedGivesByteIdenticalStreams) {
  const HotColdWorkload hot_cold(0.25, 0.85, 0.3, Seconds{1e-4});
  const SequentialOverwriteWorkload sequential(Seconds{1e-4});
  const UniformOverwriteWorkload uniform(0.2, Seconds{1e-4});
  for (const HostWorkload* workload :
       {static_cast<const HostWorkload*>(&hot_cold),
        static_cast<const HostWorkload*>(&sequential),
        static_cast<const HostWorkload*>(&uniform)}) {
    Rng a(12345), b(12345);
    const auto first = workload->generate(64, 500, a);
    const auto second = workload->generate(64, 500, b);
    ASSERT_EQ(first.size(), second.size()) << workload->name();
    for (std::size_t i = 0; i < first.size(); ++i) {
      ASSERT_TRUE(same_request(first[i], second[i]))
          << workload->name() << " diverges at request " << i;
    }
  }
}

TEST(HostWorkload, MultiTenantFixedSeedIsByteIdentical) {
  const MultiTenantWorkload workload(
      std::vector<TenantSpec>(3, TenantSpec{0.25, 0.85, 0.3, 0.1,
                                            Seconds{1e-4}}));
  Rng a(777), b(777);
  const auto first = workload.generate(64, 300, a);
  const auto second = workload.generate(64, 300, b);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    ASSERT_TRUE(same_command(first[i], second[i]))
        << "stream diverges at command " << i;
  }
}

TEST(HostWorkload, HotColdSkewMatchesConfiguredFractions) {
  // 20% of the LPA space is hot and takes 80% of writes; with 10k
  // requests the empirical shares sit within a few percent.
  const double hot_fraction = 0.2;
  const double hot_write_fraction = 0.8;
  const double read_fraction = 0.3;
  const HotColdWorkload workload(hot_fraction, hot_write_fraction,
                                 read_fraction);
  const std::uint32_t logical_pages = 1000;
  Rng rng(42);
  const auto requests = workload.generate(logical_pages, 10000, rng);

  const std::uint32_t hot_pages =
      static_cast<std::uint32_t>(logical_pages * hot_fraction);
  std::size_t writes = 0, hot_writes = 0, reads = 0;
  for (const HostRequest& request : requests) {
    if (request.type == OpType::kRead) {
      ++reads;
      continue;
    }
    ++writes;
    if (request.lpa < hot_pages) ++hot_writes;
  }
  const double observed_hot =
      static_cast<double>(hot_writes) / static_cast<double>(writes);
  EXPECT_NEAR(observed_hot, hot_write_fraction, 0.03);
  const double observed_reads =
      static_cast<double>(reads) / static_cast<double>(requests.size());
  EXPECT_NEAR(observed_reads, read_fraction, 0.03);
  // Hot writes actually stay inside the hot slice's address range.
  for (const HostRequest& request : requests) {
    EXPECT_LT(request.lpa, logical_pages);
  }
}

// The degenerate-case contract the multi-queue sweep's byte-identity
// rests on: one tenant with trim_fraction 0 consumes the Rng exactly
// like HotColdWorkload and emits the converted stream on queue 0.
TEST(HostWorkload, SingleTenantWithoutTrimMatchesHotColdExactly) {
  const TenantSpec tenant{0.25, 0.85, 0.3, 0.0, Seconds{2e-4}};
  const MultiTenantWorkload composite(std::vector<TenantSpec>{tenant});
  const HotColdWorkload flat(tenant.hot_fraction, tenant.hot_write_fraction,
                             tenant.read_fraction, tenant.mean_gap);
  Rng a(0xFEED), b(0xFEED);
  const auto commands = composite.generate(64, 400, a);
  const auto converted = to_commands(flat.generate(64, 400, b));
  ASSERT_EQ(commands.size(), converted.size());
  for (std::size_t i = 0; i < commands.size(); ++i) {
    ASSERT_TRUE(same_command(commands[i], converted[i]))
        << "degenerate case diverges at command " << i;
  }
  // And the two Rngs sit at the same point afterwards.
  EXPECT_EQ(a.next(), b.next());
}

TEST(HostWorkload, MultiTenantSplitsRequestsAcrossQueues) {
  const MultiTenantWorkload workload(
      std::vector<TenantSpec>(4, TenantSpec{}));
  Rng rng(9);
  const auto commands = workload.generate(64, 203, rng);
  ASSERT_EQ(commands.size(), 203u);
  std::vector<std::size_t> per_queue(4, 0);
  double previous = 0.0;
  double arrival = 0.0;
  for (const host::Command& command : commands) {
    ASSERT_LT(command.queue, 4u);
    EXPECT_EQ(command.tenant, command.queue);
    ++per_queue[command.queue];
    // Merged stream is time-ordered: gaps never negative.
    EXPECT_GE(command.gap.value(), 0.0);
    arrival += command.gap.value();
    EXPECT_GE(arrival, previous);
    previous = arrival;
  }
  // 203 = 4*50 + 3: earlier tenants absorb the remainder.
  EXPECT_EQ(per_queue, (std::vector<std::size_t>{51, 51, 51, 50}));
}

TEST(HostWorkload, TrimFractionEmitsTrimsOfWrittenLpasOnly) {
  const TenantSpec tenant{0.25, 0.85, 0.2, 0.3, Seconds{0.0}};
  const MultiTenantWorkload workload(std::vector<TenantSpec>{tenant});
  Rng rng(31);
  const auto commands = workload.generate(64, 4000, rng);
  std::set<ftl::Lpa> ever_written;
  std::size_t trims = 0, non_reads = 0;
  for (const host::Command& command : commands) {
    switch (command.type) {
      case host::CmdType::kWrite:
        ever_written.insert(command.lba);
        ++non_reads;
        break;
      case host::CmdType::kTrim:
        // Trims only target LPAs the stream wrote earlier. (The
        // written list carries overwrite duplicates — deliberately,
        // to keep read-target skew identical to HotColdWorkload — so
        // an LPA can occasionally be trimmed twice without a rewrite
        // in between; the FTL services that as a no-op.)
        EXPECT_EQ(ever_written.count(command.lba), 1u)
            << "trim of a never-written LPA";
        ++trims;
        ++non_reads;
        break;
      case host::CmdType::kRead:
        break;
      case host::CmdType::kFlush:
        FAIL() << "generator never emits flushes";
    }
  }
  // ~30% of non-read requests trim (the configured conditional).
  const double observed =
      static_cast<double>(trims) / static_cast<double>(non_reads);
  EXPECT_NEAR(observed, tenant.trim_fraction, 0.03);
}

}  // namespace
}  // namespace xlf::sim
