#include "src/util/series.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace xlf {
namespace {

TEST(SeriesTable, BuildAndQuery) {
  SeriesTable table("PE_cycles");
  const auto sv = table.add_series("RBER_SV");
  const auto dv = table.add_series("RBER_DV");
  table.add_row(100.0, {1e-5, 1e-6});
  table.add_row(1000.0, {2e-5, 2e-6});
  EXPECT_EQ(table.rows(), 2u);
  EXPECT_EQ(table.series(), 2u);
  EXPECT_DOUBLE_EQ(table.x_at(1), 1000.0);
  EXPECT_DOUBLE_EQ(table.value_at(0, sv), 1e-5);
  EXPECT_DOUBLE_EQ(table.value_at(1, dv), 2e-6);
  EXPECT_EQ(table.label(0), "RBER_SV");
}

TEST(SeriesTable, RowArityIsChecked) {
  SeriesTable table("x");
  table.add_series("a");
  EXPECT_THROW(table.add_row(1.0, {1.0, 2.0}), std::invalid_argument);
}

TEST(SeriesTable, ColumnsLockAfterFirstRow) {
  SeriesTable table("x");
  table.add_series("a");
  table.add_row(1.0, {1.0});
  EXPECT_THROW(table.add_series("late"), std::invalid_argument);
}

TEST(SeriesTable, PrintContainsLabelsAndValues) {
  SeriesTable table("cycles");
  table.add_series("gain_pct");
  table.add_row(10.0, {29.6});
  std::ostringstream os;
  table.print(os, /*scientific=*/false);
  const std::string out = os.str();
  EXPECT_NE(out.find("cycles"), std::string::npos);
  EXPECT_NE(out.find("gain_pct"), std::string::npos);
  EXPECT_NE(out.find("29.6"), std::string::npos);
}

TEST(SeriesTable, ScientificFormatting) {
  SeriesTable table("x");
  table.add_series("uber");
  table.add_row(1.0, {1.23e-11});
  std::ostringstream os;
  table.print(os, /*scientific=*/true);
  EXPECT_NE(os.str().find("e-11"), std::string::npos);
}

TEST(SeriesTable, CsvRoundTrip) {
  SeriesTable table("x");
  table.add_series("y1");
  table.add_series("y2");
  table.add_row(1.0, {0.5, -2.0});
  table.add_row(2.0, {1.5, -4.0});

  const std::string path = "/tmp/xlf_test_series.csv";
  table.write_csv(path);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header, row1, row2;
  std::getline(in, header);
  std::getline(in, row1);
  std::getline(in, row2);
  EXPECT_EQ(header, "x,y1,y2");
  EXPECT_EQ(row1, "1,0.5,-2");
  EXPECT_EQ(row2, "2,1.5,-4");
  std::remove(path.c_str());
}

TEST(SeriesTable, CsvBadPathThrows) {
  SeriesTable table("x");
  table.add_series("y");
  table.add_row(1.0, {1.0});
  EXPECT_THROW(table.write_csv("/nonexistent_dir_xlf/out.csv"),
               std::runtime_error);
}

TEST(Banner, MentionsFigure) {
  std::ostringstream os;
  print_banner(os, "Figure 5", "RBER characterization");
  EXPECT_NE(os.str().find("Figure 5"), std::string::npos);
  EXPECT_NE(os.str().find("RBER characterization"), std::string::npos);
}

}  // namespace
}  // namespace xlf
