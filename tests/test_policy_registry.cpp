// PolicyRegistry contract: built-ins registered from their own
// translation units are visible at lookup, duplicate names are
// rejected, unknown names fail listing what is registered, and a
// policy registered by a downstream TU (this test) becomes
// constructible by name without touching any core file.
#include "src/policy/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/policy/policy.hpp"

namespace xlf::policy {
namespace {

bool contains(const std::vector<std::string>& names, const std::string& name) {
  return std::find(names.begin(), names.end(), name) != names.end();
}

// The built-ins live one TU per interface inside libxlf_policy.a, and
// retention_aware lives in yet another TU that no core file
// references; all must be linked and registered by the time any
// lookup runs (the registry's anchor scheme).
TEST(PolicyRegistry, BuiltinsFromSeparateTusAreVisibleAtLookup) {
  const auto tuning = PolicyRegistry<TuningPolicy>::instance().names();
  EXPECT_TRUE(contains(tuning, "static"));
  EXPECT_TRUE(contains(tuning, "model_based"));
  EXPECT_TRUE(contains(tuning, "feedback"));

  const auto gc = PolicyRegistry<GcPolicy>::instance().names();
  EXPECT_TRUE(contains(gc, "greedy"));
  EXPECT_TRUE(contains(gc, "cost-benefit"));

  const auto wear = PolicyRegistry<WearPolicy>::instance().names();
  EXPECT_TRUE(contains(wear, "none"));
  EXPECT_TRUE(contains(wear, "dynamic"));
  EXPECT_TRUE(contains(wear, "static"));

  const auto refresh = PolicyRegistry<RefreshPolicy>::instance().names();
  EXPECT_TRUE(contains(refresh, "none"));
  EXPECT_TRUE(contains(refresh, "retention_aware"));
}

TEST(PolicyRegistry, MakeConstructsWorkingPolicies) {
  const auto greedy = PolicyRegistry<GcPolicy>::instance().make("greedy");
  ASSERT_NE(greedy, nullptr);
  GcBlockView emptier;
  emptier.valid_pages = 1;
  emptier.pages_per_block = 4;
  GcBlockView fuller = emptier;
  fuller.valid_pages = 3;
  EXPECT_GT(greedy->score(emptier), greedy->score(fuller));

  const auto shared =
      PolicyRegistry<WearPolicy>::instance().make_shared("dynamic");
  ASSERT_NE(shared, nullptr);
  EXPECT_GT(shared->free_block_score(2), shared->free_block_score(7));
}

TEST(PolicyRegistry, UnknownNameThrowsListingAvailable) {
  try {
    PolicyRegistry<GcPolicy>::instance().make("round-robin");
    FAIL() << "unknown policy name must throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown gc policy 'round-robin'"), std::string::npos)
        << what;
    // The message must teach the fix: every registered name listed.
    EXPECT_NE(what.find("greedy"), std::string::npos) << what;
    EXPECT_NE(what.find("cost-benefit"), std::string::npos) << what;
  }
}

class TestOnlyRefresh final : public RefreshPolicy {
 public:
  bool should_refresh(const RefreshContext&) const override { return true; }
};

TEST(PolicyRegistry, DuplicateRegistrationRejected) {
  auto& registry = PolicyRegistry<RefreshPolicy>::instance();
  registry.add("test-dup", [] { return std::make_unique<TestOnlyRefresh>(); });
  try {
    registry.add("test-dup",
                 [] { return std::make_unique<TestOnlyRefresh>(); });
    FAIL() << "duplicate registration must throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("duplicate"), std::string::npos) << what;
    EXPECT_NE(what.find("test-dup"), std::string::npos) << what;
  }
  // The original registration survives the rejected duplicate.
  EXPECT_TRUE(registry.contains("test-dup"));
}

TEST(PolicyRegistry, DownstreamRegistrationIsConstructibleByName) {
  auto& registry = PolicyRegistry<RefreshPolicy>::instance();
  const Registration<RefreshPolicy, TestOnlyRefresh> registration(
      "test-downstream");
  ASSERT_TRUE(registry.contains("test-downstream"));
  const auto policy = registry.make("test-downstream");
  EXPECT_TRUE(policy->should_refresh(RefreshContext{}));
}

TEST(PolicyRegistry, EmptyNameAndNullFactoryRejected) {
  auto& registry = PolicyRegistry<RefreshPolicy>::instance();
  EXPECT_THROW(
      registry.add("", [] { return std::make_unique<TestOnlyRefresh>(); }),
      std::invalid_argument);
  EXPECT_THROW(registry.add("test-null", nullptr), std::invalid_argument);
  EXPECT_FALSE(registry.contains("test-null"));
}

}  // namespace
}  // namespace xlf::policy
