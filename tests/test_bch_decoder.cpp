#include "src/bch/decoder.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "src/bch/encoder.hpp"
#include "src/bch/error_injection.hpp"
#include "src/bch/generator.hpp"
#include "src/util/rng.hpp"

namespace xlf::bch {
namespace {

BitVec random_message(std::uint32_t k, Rng& rng) {
  BitVec msg(k);
  for (std::uint32_t i = 0; i < k; ++i) msg.set(i, rng.chance(0.5));
  return msg;
}

struct SmallCode {
  gf::Gf2m field;
  CodeParams params;
  Encoder encoder;
  Decoder decoder;

  SmallCode(unsigned m, std::uint32_t k, unsigned t, const gf::Gf2Poly& g,
            std::uint32_t r)
      : field(m),
        params{m, k, t, r},
        encoder(params, g),
        decoder(field, params) {}
};

SmallCode make_code(unsigned m, std::uint32_t k, unsigned t) {
  const gf::Gf2m field(m);
  const gf::Gf2Poly g = generator_polynomial(field, t);
  return SmallCode(m, k, t, g, static_cast<std::uint32_t>(g.degree()));
}

TEST(Decoder, CleanCodewordHasZeroSyndromes) {
  auto code = make_code(8, 128, 4);
  Rng rng(1);
  const BitVec cw = code.encoder.encode(random_message(128, rng));
  for (gf::Element s : code.decoder.syndromes(cw)) EXPECT_EQ(s, 0u);
  BitVec copy = cw;
  const DecodeResult result = code.decoder.decode(copy);
  EXPECT_EQ(result.status, DecodeStatus::kClean);
  EXPECT_EQ(copy, cw);
}

TEST(Decoder, Bch15_5_ExhaustiveUpToThreeErrors) {
  // BCH(15,5) corrects any pattern of <= 3 errors; check every single,
  // double, and triple pattern on several codewords — 575 patterns
  // each, fully exhaustive.
  const gf::Gf2m field(4);
  const gf::Gf2Poly g = generator_polynomial(field, 3);
  SmallCode code(4, 5, 3, g, 10);
  Rng rng(2);
  for (int trial = 0; trial < 4; ++trial) {
    const BitVec cw = code.encoder.encode(random_message(5, rng));
    for (std::size_t a = 0; a < 15; ++a) {
      for (std::size_t b = a; b < 15; ++b) {
        for (std::size_t c = b; c < 15; ++c) {
          BitVec corrupted = cw;
          corrupted.flip(a);
          if (b != a) corrupted.flip(b);
          if (c != b && c != a) corrupted.flip(c);
          const DecodeResult result = code.decoder.decode(corrupted);
          EXPECT_TRUE(result.ok());
          EXPECT_EQ(corrupted, cw)
              << "pattern {" << a << "," << b << "," << c << "}";
        }
      }
    }
  }
}

TEST(Decoder, SyndromesFromErrorsMatchesDense) {
  auto code = make_code(10, 512, 6);
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const BitVec cw = code.encoder.encode(random_message(512, rng));
    BitVec corrupted = cw;
    const auto injected = inject_exact(corrupted, 1 + trial % 6, rng);
    EXPECT_EQ(code.decoder.syndromes(corrupted),
              code.decoder.syndromes_from_errors(injected));
  }
}

TEST(Decoder, SyndromeLinearity) {
  // Syndromes of received = syndromes of error pattern (codeword
  // contributes zero) — the identity the simulation fast path uses.
  auto code = make_code(8, 64, 3);
  Rng rng(4);
  const BitVec cw = code.encoder.encode(random_message(64, rng));
  BitVec corrupted = cw;
  const auto injected = inject_exact(corrupted, 3, rng);
  BitVec error_only(corrupted.size());
  for (std::size_t pos : injected) error_only.set(pos, true);
  EXPECT_EQ(code.decoder.syndromes(corrupted),
            code.decoder.syndromes(error_only));
}

TEST(Decoder, BerlekampMasseyDegreeEqualsErrorCount) {
  auto code = make_code(10, 512, 8);
  Rng rng(5);
  for (unsigned errors = 1; errors <= 8; ++errors) {
    const BitVec cw = code.encoder.encode(random_message(512, rng));
    BitVec corrupted = cw;
    inject_exact(corrupted, errors, rng);
    const auto syn = code.decoder.syndromes(corrupted);
    const gf::GfpPoly lambda = code.decoder.berlekamp_massey(syn);
    EXPECT_EQ(lambda.degree(), static_cast<long long>(errors));
    EXPECT_EQ(lambda.coeff(0), 1u);
  }
}

TEST(Decoder, ChienFindsExactlyTheInjectedPositions) {
  auto code = make_code(10, 512, 8);
  Rng rng(6);
  for (int trial = 0; trial < 10; ++trial) {
    const BitVec cw = code.encoder.encode(random_message(512, rng));
    BitVec corrupted = cw;
    const auto injected = inject_exact(corrupted, 5, rng);
    const auto syn = code.decoder.syndromes(corrupted);
    const auto lambda = code.decoder.berlekamp_massey(syn);
    auto roots = code.decoder.chien_search(lambda);
    std::vector<std::uint32_t> expected(injected.begin(), injected.end());
    EXPECT_EQ(roots, expected);
  }
}

TEST(Decoder, CorrectsUpToT) {
  auto code = make_code(10, 400, 10);
  Rng rng(7);
  for (unsigned errors = 0; errors <= 10; ++errors) {
    const BitVec cw = code.encoder.encode(random_message(400, rng));
    BitVec corrupted = cw;
    inject_exact(corrupted, errors, rng);
    const DecodeResult result = code.decoder.decode(corrupted);
    EXPECT_TRUE(result.ok()) << errors << " errors";
    EXPECT_EQ(result.corrected, errors);
    EXPECT_EQ(corrupted, cw) << errors << " errors";
  }
}

TEST(Decoder, NeverSilentlyReturnsOriginalBeyondT) {
  // With > t errors the decoder can fail (detected) or miscorrect to
  // a *different* codeword, but it can never reproduce the original.
  auto code = make_code(8, 100, 3);
  Rng rng(8);
  int detected = 0;
  const int trials = 200;
  for (int trial = 0; trial < trials; ++trial) {
    const BitVec cw = code.encoder.encode(random_message(100, rng));
    BitVec corrupted = cw;
    inject_exact(corrupted, 5, rng);
    const DecodeResult result = code.decoder.decode(corrupted);
    if (result.status == DecodeStatus::kUncorrectable) {
      ++detected;
    } else {
      EXPECT_NE(corrupted, cw);
    }
  }
  // Detection should be the common outcome.
  EXPECT_GT(detected, trials / 2);
}

TEST(Decoder, BurstWithinTIsCorrected) {
  auto code = make_code(10, 400, 12);
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    const BitVec cw = code.encoder.encode(random_message(400, rng));
    BitVec corrupted = cw;
    inject_burst(corrupted, 12, rng);
    const DecodeResult result = code.decoder.decode(corrupted);
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(corrupted, cw);
  }
}

TEST(Decoder, DecodeWithReferenceMatchesHonestDecode) {
  auto code = make_code(10, 512, 6);
  Rng rng(10);
  for (int trial = 0; trial < 20; ++trial) {
    const BitVec cw = code.encoder.encode(random_message(512, rng));
    BitVec honest = cw;
    inject_exact(honest, 1 + trial % 6, rng);
    BitVec fast = honest;

    const DecodeResult r1 = code.decoder.decode(honest);
    const DecodeResult r2 = code.decoder.decode_with_reference(fast, cw);
    EXPECT_EQ(r1.status, r2.status);
    EXPECT_EQ(r1.corrected, r2.corrected);
    EXPECT_EQ(honest, fast);
  }
}

TEST(Decoder, ErrorInParitySectionIsAlsoCorrected) {
  auto code = make_code(8, 64, 4);
  Rng rng(11);
  const BitVec cw = code.encoder.encode(random_message(64, rng));
  BitVec corrupted = cw;
  // Flip bits inside the parity area only (bits [0, r)).
  corrupted.flip(0);
  corrupted.flip(5);
  const DecodeResult result = code.decoder.decode(corrupted);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(corrupted, cw);
}

TEST(Decoder, PaperScaleT65RoundTrip) {
  // The full production configuration: GF(2^16), 4 KB page, t = 65,
  // exactly 65 injected errors, honest dense-syndrome decode.
  const gf::Gf2m field(16);
  const gf::Gf2Poly g = generator_polynomial(field, 65);
  const CodeParams params{16, 32768, 65};
  const Encoder encoder(params, g);
  const Decoder decoder(field, params);

  Rng rng(12);
  const BitVec msg = random_message(32768, rng);
  const BitVec cw = encoder.encode(msg);
  BitVec corrupted = cw;
  inject_exact(corrupted, 65, rng);

  const DecodeResult result = decoder.decode(corrupted);
  EXPECT_EQ(result.status, DecodeStatus::kCorrected);
  EXPECT_EQ(result.corrected, 65u);
  EXPECT_EQ(corrupted, cw);
  EXPECT_EQ(encoder.extract_message(corrupted), msg);

  // And 66 errors must not silently pass as the original.
  BitVec overloaded = cw;
  inject_exact(overloaded, 66, rng);
  const DecodeResult over = decoder.decode_with_reference(overloaded, cw);
  if (over.status != DecodeStatus::kUncorrectable) {
    EXPECT_NE(overloaded, cw);
  }
}

}  // namespace
}  // namespace xlf::bch
