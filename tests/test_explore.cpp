// The explore layer's load-bearing promise: a parallel run is
// bit-identical to the serial run — same cells, same Pareto flags,
// same merged Monte-Carlo statistics — for any thread count.
#include "src/explore/monte_carlo.hpp"
#include "src/explore/report.hpp"
#include "src/explore/sweep.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace xlf::explore {
namespace {

core::SubsystemConfig small_subsystem() {
  core::SubsystemConfig config = core::SubsystemConfig::defaults();
  config.device.array.geometry.blocks = 2;
  config.device.array.geometry.pages_per_block = 4;
  return config;
}

SweepSpec small_sweep() {
  SweepSpec spec;
  spec.framework = FrameworkSpec::from(core::SubsystemConfig::defaults());
  spec.ages = {1.0, 1e3, 1e5, 1e6};
  return spec;
}

void expect_identical(const core::Metrics& a, const core::Metrics& b) {
  EXPECT_EQ(a.pe_cycles, b.pe_cycles);
  EXPECT_EQ(a.algo, b.algo);
  EXPECT_EQ(a.t, b.t);
  EXPECT_EQ(a.rber, b.rber);
  EXPECT_EQ(a.uber, b.uber);
  EXPECT_EQ(a.log10_uber, b.log10_uber);
  EXPECT_EQ(a.read_latency, b.read_latency);
  EXPECT_EQ(a.write_latency, b.write_latency);
  EXPECT_EQ(a.read_throughput, b.read_throughput);
  EXPECT_EQ(a.write_throughput, b.write_throughput);
  EXPECT_EQ(a.nand_program_power, b.nand_program_power);
  EXPECT_EQ(a.ecc_decode_power, b.ecc_decode_power);
}

TEST(Sweep, ParallelIsBitIdenticalToSerial) {
  const SweepSpec spec = small_sweep();
  ThreadPool serial(1), parallel(4);
  const SweepResult a = sweep_space(spec, serial);
  const SweepResult b = sweep_space(spec, parallel);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  EXPECT_EQ(a.cells_per_age, b.cells_per_age);
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    expect_identical(a.cells[i].metrics, b.cells[i].metrics);
    EXPECT_EQ(a.cells[i].pareto, b.cells[i].pareto);
  }
  // Byte-identical reports follow from bit-identical cells.
  EXPECT_EQ(sweep_csv(a), sweep_csv(b));
  EXPECT_EQ(sweep_json(a), sweep_json(b));
}

TEST(Sweep, MatchesDirectFrameworkEnumeration) {
  const SweepSpec spec = small_sweep();
  ThreadPool pool(2);
  const SweepResult result = sweep_space(spec, pool);

  nand::NandTiming timing = spec.framework.make_timing();
  const core::CrossLayerFramework framework(
      spec.framework.cross_layer, spec.framework.aging, timing,
      spec.framework.hv);
  for (std::size_t a = 0; a < spec.ages.size(); ++a) {
    const auto space = framework.enumerate(spec.ages[a]);
    ASSERT_EQ(space.size(), result.cells_per_age);
    for (std::size_t i = 0; i < space.size(); ++i) {
      expect_identical(result.cells[a * result.cells_per_age + i].metrics,
                       space[i]);
    }
  }
}

TEST(Sweep, ParetoFlagsMatchCoreFront) {
  const SweepSpec spec = small_sweep();
  ThreadPool pool(2);
  const SweepResult result = sweep_space(spec, pool);

  nand::NandTiming timing = spec.framework.make_timing();
  const core::CrossLayerFramework framework(
      spec.framework.cross_layer, spec.framework.aging, timing,
      spec.framework.hv);
  for (std::size_t a = 0; a < spec.ages.size(); ++a) {
    const auto front =
        core::CrossLayerFramework::pareto_front(framework.enumerate(spec.ages[a]));
    std::size_t flagged = 0;
    for (std::size_t i = 0; i < result.cells_per_age; ++i) {
      if (result.cells[a * result.cells_per_age + i].pareto) ++flagged;
    }
    EXPECT_EQ(flagged, front.size());
  }
  // front() collects exactly the flagged cells.
  std::size_t total_flagged = 0;
  for (const SweepCell& cell : result.cells) total_flagged += cell.pareto;
  EXPECT_EQ(result.front().size(), total_flagged);
  EXPECT_GT(total_flagged, 0u);
}

// EXPECT_EQ with NaN==NaN allowed: empty latency sides report NaN
// extrema, and "both unobserved" is identical for determinism checks.
void expect_same_double(double a, double b) {
  if (std::isnan(a) && std::isnan(b)) return;
  EXPECT_EQ(a, b);
}

void expect_identical(const sim::SimStats& a, const sim::SimStats& b) {
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.erases, b.erases);
  EXPECT_EQ(a.uncorrectable, b.uncorrectable);
  EXPECT_EQ(a.data_mismatches, b.data_mismatches);
  EXPECT_EQ(a.corrected_bits, b.corrected_bits);
  EXPECT_EQ(a.qos_misses, b.qos_misses);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.read_busy, b.read_busy);
  EXPECT_EQ(a.write_busy, b.write_busy);
  EXPECT_EQ(a.ecc_energy, b.ecc_energy);
  EXPECT_EQ(a.nand_energy, b.nand_energy);
  EXPECT_EQ(a.read_latency.count(), b.read_latency.count());
  EXPECT_EQ(a.read_latency.mean(), b.read_latency.mean());
  EXPECT_EQ(a.read_latency.variance(), b.read_latency.variance());
  expect_same_double(a.read_latency.min(), b.read_latency.min());
  expect_same_double(a.read_latency.max(), b.read_latency.max());
  EXPECT_EQ(a.write_latency.count(), b.write_latency.count());
  EXPECT_EQ(a.write_latency.mean(), b.write_latency.mean());
  expect_same_double(a.write_latency.max(), b.write_latency.max());
}

TEST(MonteCarlo, ParallelIsBitIdenticalToSerial) {
  const sim::MixedWorkload workload(0.7);
  MonteCarloSpec spec;
  spec.subsystem = small_subsystem();
  spec.pe_cycles = 1e5;
  spec.workload = &workload;
  spec.requests_per_replica = 10;
  spec.replicas = 5;
  spec.seed = 99;

  ThreadPool serial(1), parallel(3);
  const MonteCarloResult a = run_monte_carlo(spec, serial);
  const MonteCarloResult b = run_monte_carlo(spec, parallel);
  EXPECT_EQ(a.replicas, b.replicas);
  expect_identical(a.merged, b.merged);
}

TEST(MonteCarlo, AccountsEveryRequestOfEveryReplica) {
  const sim::SequentialReadWorkload workload;
  MonteCarloSpec spec;
  spec.subsystem = small_subsystem();
  spec.pe_cycles = 1.0;  // beginning of life
  spec.workload = &workload;
  spec.requests_per_replica = 8;
  spec.replicas = 3;

  ThreadPool pool(2);
  const MonteCarloResult result = run_monte_carlo(spec, pool);
  EXPECT_EQ(result.merged.reads + result.merged.writes,
            spec.replicas * spec.requests_per_replica);
  // A healthy young device under the baseline schedule: nothing
  // uncorrectable, nothing silently corrupted.
  EXPECT_EQ(result.merged.uncorrectable, 0u);
  EXPECT_EQ(result.merged.data_mismatches, 0u);
  EXPECT_EQ(result.uncorrectable_page_rate(), 0.0);
}

TEST(MonteCarlo, DifferentSeedsGiveDifferentRuns) {
  const sim::MixedWorkload workload(0.5);
  MonteCarloSpec spec;
  spec.subsystem = small_subsystem();
  spec.pe_cycles = 1e4;
  spec.workload = &workload;
  spec.requests_per_replica = 20;
  spec.replicas = 2;

  ThreadPool pool(2);
  spec.seed = 1;
  const MonteCarloResult a = run_monte_carlo(spec, pool);
  spec.seed = 2;
  const MonteCarloResult b = run_monte_carlo(spec, pool);
  // Mixed request streams derive from the seed, so the read/write
  // split (or at least the latency accumulation) must differ.
  EXPECT_TRUE(a.merged.reads != b.merged.reads ||
              a.merged.write_latency.mean() != b.merged.write_latency.mean() ||
              a.merged.read_latency.mean() != b.merged.read_latency.mean());
}

TEST(Report, QosTablesCoverAllValidations) {
  const sim::SequentialReadWorkload workload;
  MonteCarloSpec spec;
  spec.subsystem = small_subsystem();
  spec.pe_cycles = 1.0;
  spec.workload = &workload;
  spec.requests_per_replica = 4;
  spec.replicas = 2;
  ThreadPool pool(1);
  const MonteCarloResult mc = run_monte_carlo(spec, pool);

  const std::vector<WorkloadValidation> rows{
      {"sequential-read", 1.0, mc}, {"sequential-read-bis", 1.0, mc}};
  const std::string csv = qos_csv(rows);
  // Header plus one line per validation.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
  EXPECT_NE(csv.find("sequential-read-bis,"), std::string::npos);
  const std::string json = qos_json(rows);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"workload\":\"sequential-read\""), std::string::npos);
}

}  // namespace
}  // namespace xlf::explore
