#include "src/nand/ispp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/nand/aging.hpp"
#include "src/nand/variability.hpp"
#include "src/util/stats.hpp"

namespace xlf::nand {
namespace {

struct Population {
  std::vector<FloatingGateCell> cells;
  std::vector<Level> targets;
};

Population make_population(std::size_t count, double pe_cycles,
                           std::uint64_t seed,
                           std::optional<Level> pattern = std::nullopt) {
  const VariabilityConfig vcfg;
  const AgingLaw aging;
  const VariabilitySampler sampler(vcfg, aging);
  const VoltagePlan plan;
  Rng rng(seed);
  Population pop;
  for (std::size_t i = 0; i < count; ++i) {
    pop.cells.emplace_back(
        sampler.sample_erased(rng, plan.erased_mean, plan.erased_sigma),
        sampler.sample(rng, pe_cycles));
    pop.targets.push_back(pattern.value_or(static_cast<Level>(rng.below(4))));
  }
  return pop;
}

double level_sigma(const Population& pop, Level level) {
  RunningStats stats;
  for (std::size_t i = 0; i < pop.cells.size(); ++i) {
    if (pop.targets[i] == level) stats.add(pop.cells[i].vth().value());
  }
  return stats.stddev();
}

TEST(Ispp, AllCellsConvergeAtBeginningOfLife) {
  const IsppEngine engine(IsppConfig{}, VoltagePlan{});
  for (auto algo : {ProgramAlgorithm::kIsppSv, ProgramAlgorithm::kIsppDv}) {
    Population pop = make_population(2048, 0.0, 11);
    Rng rng(1);
    const IsppTrace trace =
        engine.program(pop.cells, pop.targets, algo, rng);
    EXPECT_TRUE(trace.converged) << to_string(algo);
    EXPECT_EQ(trace.failed_cells, 0u);
  }
}

TEST(Ispp, ProgrammedCellsLandAboveTheirVerifyLevel) {
  const VoltagePlan plan;
  const IsppEngine engine(IsppConfig{}, plan);
  Population pop = make_population(2048, 0.0, 12);
  Rng rng(2);
  engine.program(pop.cells, pop.targets, ProgramAlgorithm::kIsppSv, rng);
  for (std::size_t i = 0; i < pop.cells.size(); ++i) {
    if (pop.targets[i] == Level::kL0) {
      EXPECT_LT(pop.cells[i].vth(), plan.read[0]);
    } else {
      EXPECT_GE(pop.cells[i].vth() + Volts{1e-9},
                plan.verify_for(pop.targets[i]));
    }
  }
}

TEST(Ispp, DvCompactsDistributions) {
  // The double-verify slow zone must tighten the programmed spread —
  // the physical mechanism behind the Fig. 5 RBER gap.
  const IsppEngine engine(IsppConfig{}, VoltagePlan{});
  Population sv_pop = make_population(6144, 0.0, 13);
  Population dv_pop = make_population(6144, 0.0, 13);  // same seeds
  Rng rng_sv(3), rng_dv(3);
  engine.program(sv_pop.cells, sv_pop.targets, ProgramAlgorithm::kIsppSv,
                 rng_sv);
  engine.program(dv_pop.cells, dv_pop.targets, ProgramAlgorithm::kIsppDv,
                 rng_dv);
  for (Level level : {Level::kL1, Level::kL2, Level::kL3}) {
    EXPECT_LT(level_sigma(dv_pop, level), level_sigma(sv_pop, level))
        << "level " << static_cast<int>(level);
  }
}

TEST(Ispp, DvTakesLongerAndSensesMore) {
  const IsppEngine engine(IsppConfig{}, VoltagePlan{});
  Population sv_pop = make_population(2048, 0.0, 14);
  Population dv_pop = make_population(2048, 0.0, 14);
  Rng rng_sv(4), rng_dv(4);
  const IsppTrace sv =
      engine.program(sv_pop.cells, sv_pop.targets, ProgramAlgorithm::kIsppSv, rng_sv);
  const IsppTrace dv =
      engine.program(dv_pop.cells, dv_pop.targets, ProgramAlgorithm::kIsppDv, rng_dv);
  EXPECT_GT(dv.duration(), sv.duration());
  EXPECT_GT(dv.verify_ops, sv.verify_ops * 3 / 2);  // ~2x senses
  EXPECT_GE(dv.pulses, sv.pulses);                  // slow-zone crawl
  // The paper's write-loss window: DV costs ~1.4-2.1x SV.
  const double ratio = dv.duration() / sv.duration();
  EXPECT_GT(ratio, 1.3);
  EXPECT_LT(ratio, 2.2);
}

TEST(Ispp, L0OnlyPageNeedsNoPulses) {
  const IsppEngine engine(IsppConfig{}, VoltagePlan{});
  Population pop = make_population(256, 0.0, 15, Level::kL0);
  Rng rng(5);
  const IsppTrace trace =
      engine.program(pop.cells, pop.targets, ProgramAlgorithm::kIsppSv, rng);
  EXPECT_EQ(trace.pulses, 0u);
  EXPECT_EQ(trace.verify_ops, 0u);
  EXPECT_TRUE(trace.converged);
}

TEST(Ispp, PatternDurationOrderingL1L2L3) {
  // Higher targets keep the staircase running longer (Fig. 6's
  // pattern dependence).
  const IsppEngine engine(IsppConfig{}, VoltagePlan{});
  std::map<int, double> durations;
  for (Level level : {Level::kL1, Level::kL2, Level::kL3}) {
    Population pop = make_population(2048, 0.0, 16, level);
    Rng rng(6);
    durations[static_cast<int>(level)] =
        engine.program(pop.cells, pop.targets, ProgramAlgorithm::kIsppSv, rng)
            .duration()
            .value();
  }
  EXPECT_LT(durations[1], durations[2]);
  EXPECT_LT(durations[2], durations[3]);
}

TEST(Ispp, HigherPatternRaisesAverageVcg) {
  const IsppEngine engine(IsppConfig{}, VoltagePlan{});
  Population l1 = make_population(1024, 0.0, 17, Level::kL1);
  Population l3 = make_population(1024, 0.0, 17, Level::kL3);
  Rng rng1(7), rng3(7);
  const IsppTrace t1 =
      engine.program(l1.cells, l1.targets, ProgramAlgorithm::kIsppSv, rng1);
  const IsppTrace t3 =
      engine.program(l3.cells, l3.targets, ProgramAlgorithm::kIsppSv, rng3);
  EXPECT_GT(t3.average_vcg(), t1.average_vcg());
}

TEST(Ispp, WiderDvZoneSlowsDvFurther) {
  // The aging-driven zone widening is the Fig. 9 growth mechanism.
  const IsppEngine engine(IsppConfig{}, VoltagePlan{});
  Population a = make_population(2048, 0.0, 18);
  Population b = make_population(2048, 0.0, 18);
  Rng rng_a(8), rng_b(8);
  const IsppTrace narrow =
      engine.program(a.cells, a.targets, ProgramAlgorithm::kIsppDv, rng_a, 1.0);
  const IsppTrace wide =
      engine.program(b.cells, b.targets, ProgramAlgorithm::kIsppDv, rng_b, 3.0);
  EXPECT_GT(wide.duration(), narrow.duration());
}

TEST(Ispp, TraceAccountingIsConsistent) {
  const IsppConfig config;
  const IsppEngine engine(config, VoltagePlan{});
  Population pop = make_population(1024, 0.0, 19);
  Rng rng(9);
  const IsppTrace trace =
      engine.program(pop.cells, pop.targets, ProgramAlgorithm::kIsppSv, rng);
  EXPECT_NEAR(trace.program_pump_time.value(),
              trace.pulses * config.pulse_time.value(), 1e-12);
  EXPECT_NEAR(trace.verify_pump_time.value(),
              trace.verify_ops * config.verify_time.value(), 1e-12);
  EXPECT_NEAR(trace.duration().value(),
              (trace.setup_time + trace.program_pump_time +
               trace.verify_pump_time)
                  .value(),
              1e-12);
  // Average VCG falls inside the staircase range.
  EXPECT_GE(trace.average_vcg(), config.v_start);
  EXPECT_LE(trace.average_vcg(), config.v_end);
}

TEST(Ispp, StaircaseResponseMatchesPulseCount) {
  const IsppEngine engine(IsppConfig{}, VoltagePlan{});
  FloatingGateCell cell(Volts{-5.0}, CellParams{Volts{17.0}, Volts{0.4},
                                                Volts{0.0}});
  Rng rng(10);
  const auto response = engine.staircase_response(cell, Volts{6.0},
                                                  Volts{24.0}, Volts{1.0}, rng);
  EXPECT_EQ(response.size(), 19u);  // 6..24 inclusive, 1 V steps
  // Monotone non-decreasing threshold.
  for (std::size_t i = 1; i < response.size(); ++i) {
    EXPECT_GE(response[i] + Volts{1e-9}, response[i - 1]);
  }
}

TEST(Ispp, MismatchedSpansRejected) {
  const IsppEngine engine(IsppConfig{}, VoltagePlan{});
  std::vector<FloatingGateCell> cells(4);
  std::vector<Level> targets(5, Level::kL1);
  Rng rng(11);
  EXPECT_THROW(
      engine.program(cells, targets, ProgramAlgorithm::kIsppSv, rng),
      std::invalid_argument);
}

}  // namespace
}  // namespace xlf::nand
