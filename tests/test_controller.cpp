#include "src/controller/controller.hpp"

#include <gtest/gtest.h>

#include "src/util/rng.hpp"

namespace xlf::controller {
namespace {

struct Fixture {
  nand::NandDevice device;
  MemoryController controller;

  explicit Fixture(ControllerConfig config = {},
                   nand::DeviceConfig device_config = small_device())
      : device(device_config), controller(config, device, hv::HvConfig{}) {}

  static nand::DeviceConfig small_device() {
    nand::DeviceConfig config;
    config.array.geometry.blocks = 2;
    config.array.geometry.pages_per_block = 4;
    return config;
  }

  BitVec random_data(std::uint64_t seed) {
    Rng rng(seed);
    BitVec data(device.geometry().data_bits_per_page());
    for (std::size_t i = 0; i < data.size(); ++i) {
      data.set(i, rng.chance(0.5));
    }
    return data;
  }
};

TEST(Controller, WriteReadRoundTrip) {
  Fixture fx;
  const BitVec data = fx.random_data(1);
  const WriteResult write = fx.controller.write_page({0, 0}, data);
  EXPECT_TRUE(write.ok);
  EXPECT_EQ(write.t_used, 3u);  // baseline BOL capability
  EXPECT_GT(write.latency.millis(), 1.0);  // program dominates

  const ReadResult read = fx.controller.read_page({0, 0});
  EXPECT_TRUE(read.ok);
  EXPECT_EQ(read.data, data);
  EXPECT_GT(read.latency.micros(), 75.0);
}

TEST(Controller, ReadingUnwrittenPageRejected) {
  Fixture fx;
  EXPECT_THROW(fx.controller.read_page({0, 1}), std::invalid_argument);
}

TEST(Controller, CrossLayerKnobsReachBothLayers) {
  Fixture fx;
  fx.controller.set_program_algorithm(nand::ProgramAlgorithm::kIsppDv);
  EXPECT_EQ(fx.device.program_algorithm(), nand::ProgramAlgorithm::kIsppDv);
  EXPECT_EQ(fx.controller.registers().program_algorithm(),
            nand::ProgramAlgorithm::kIsppDv);
  fx.controller.set_correction_capability(20);
  EXPECT_EQ(fx.controller.registers().ecc_capability(), 20u);
  EXPECT_EQ(fx.controller.ecc().correction_capability(), 20u);
}

TEST(Controller, PagesDecodeWithTheirWriteTimeCapability) {
  Fixture fx;
  const BitVec data_a = fx.random_data(2);
  fx.controller.set_correction_capability(5);
  fx.controller.write_page({0, 0}, data_a);

  // Reconfigure before reading back: the stored page still uses t=5.
  fx.controller.set_correction_capability(30);
  const ReadResult read = fx.controller.read_page({0, 0});
  EXPECT_TRUE(read.ok);
  EXPECT_EQ(read.data, data_a);
  // Current configuration is untouched by the read.
  EXPECT_EQ(fx.controller.correction_capability(), 30u);
}

TEST(Controller, AdaptEccFollowsWear) {
  Fixture fx;
  fx.device.set_uniform_wear(1e6);
  const unsigned t = fx.controller.adapt_ecc(1e6);
  EXPECT_EQ(t, 65u);
  EXPECT_EQ(fx.controller.correction_capability(), 65u);
  fx.device.set_uniform_wear(1.0);
  EXPECT_LE(fx.controller.adapt_ecc(1.0), 4u);
}

TEST(Controller, AgedPagesAreCorrectedTransparently) {
  Fixture fx;
  fx.device.set_uniform_wear(1e6);
  fx.controller.adapt_ecc(1e6);  // t = 65
  const BitVec data = fx.random_data(3);
  fx.controller.write_page({0, 0}, data);
  const ReadResult read = fx.controller.read_page({0, 0});
  EXPECT_TRUE(read.ok);
  EXPECT_EQ(read.data, data);
  // EOL SV RBER 1e-3 x 33808 bits: expect tens of corrected bits.
  EXPECT_GT(read.corrected_bits, 5u);
  EXPECT_LT(read.corrected_bits, 80u);
}

TEST(Controller, FeedbackCountersReachRegisters) {
  Fixture fx;
  fx.device.set_uniform_wear(1e6);
  fx.controller.adapt_ecc(1e6);
  const BitVec data = fx.random_data(4);
  fx.controller.write_page({0, 0}, data);
  fx.controller.read_page({0, 0});
  EXPECT_EQ(fx.controller.registers().decoded_pages(), 1u);
  EXPECT_GT(fx.controller.registers().corrected_bits(), 0u);
  EXPECT_GT(fx.controller.reliability().estimated_rber(), 0.0);
}

TEST(Controller, EraseInvalidatesMetadata) {
  Fixture fx;
  const BitVec data = fx.random_data(5);
  fx.controller.write_page({0, 0}, data);
  const Seconds erase_time = fx.controller.erase_block(0);
  EXPECT_NEAR(erase_time.millis(), 2.5, 1e-9);
  EXPECT_THROW(fx.controller.read_page({0, 0}), std::invalid_argument);
}

TEST(Controller, HonestAndFastDecodeAgree) {
  ControllerConfig honest_config;
  honest_config.simulation_fast_decode = false;
  Fixture honest(honest_config);
  Fixture fast;

  honest.device.set_uniform_wear(1e5);
  fast.device.set_uniform_wear(1e5);
  honest.controller.adapt_ecc(1e5);
  fast.controller.adapt_ecc(1e5);

  const BitVec data = honest.random_data(6);
  honest.controller.write_page({0, 0}, data);
  fast.controller.write_page({0, 0}, data);
  const ReadResult a = honest.controller.read_page({0, 0});
  const ReadResult b = fast.controller.read_page({0, 0});
  EXPECT_TRUE(a.ok);
  EXPECT_TRUE(b.ok);
  EXPECT_EQ(a.data, data);
  EXPECT_EQ(b.data, data);
}

TEST(Controller, WorstCaseLatenciesMatchModels) {
  Fixture fx;
  fx.controller.set_correction_capability(65);
  EXPECT_NEAR(fx.controller.worst_case_read_latency().micros(), 75.0 + 159.4,
              1.5);
  const Seconds write = fx.controller.write_latency(100.0);
  EXPECT_GT(write.millis(), 1.0);
}

TEST(Controller, CodewordMustFitDevicePage) {
  // A device with a tiny spare area cannot host the t = 65 codeword.
  nand::DeviceConfig device_config = Fixture::small_device();
  device_config.array.geometry.spare_bytes_per_page = 64;  // 512 bits < 1040
  EXPECT_THROW(Fixture(ControllerConfig{}, device_config),
               std::invalid_argument);
}

}  // namespace
}  // namespace xlf::controller
