#include <gtest/gtest.h>

#include "src/controller/ocp.hpp"
#include "src/controller/page_buffer.hpp"
#include "src/controller/registers.hpp"

namespace xlf::controller {
namespace {

TEST(Registers, DefaultsMatchPaperBaseline) {
  const RegisterFile regs;
  EXPECT_TRUE(regs.enabled());
  EXPECT_EQ(regs.ecc_capability(), 3u);
  EXPECT_EQ(regs.program_algorithm(), nand::ProgramAlgorithm::kIsppSv);
  EXPECT_NEAR(regs.uber_target(), 1e-11, 1e-22);
  EXPECT_FALSE(regs.busy());
}

TEST(Registers, BusAccessRoundTrip) {
  RegisterFile regs;
  regs.write(RegisterId::kEccCapability, 42);
  EXPECT_EQ(regs.read(RegisterId::kEccCapability), 42u);
  regs.write(RegisterId::kProgramAlgo, 1);
  EXPECT_EQ(regs.program_algorithm(), nand::ProgramAlgorithm::kIsppDv);
  regs.write(RegisterId::kUberTargetExp, 15);
  EXPECT_NEAR(regs.uber_target(), 1e-15, 1e-26);
}

TEST(Registers, ReadOnlyRegistersRejectWrites) {
  RegisterFile regs;
  EXPECT_THROW(regs.write(RegisterId::kStatus, 1), std::invalid_argument);
  EXPECT_THROW(regs.write(RegisterId::kCorrectedBits, 1),
               std::invalid_argument);
  EXPECT_THROW(regs.write(RegisterId::kDecodedPages, 1),
               std::invalid_argument);
}

TEST(Registers, InvalidValuesRejected) {
  RegisterFile regs;
  EXPECT_THROW(regs.write(RegisterId::kEccCapability, 0),
               std::invalid_argument);
  EXPECT_THROW(regs.write(RegisterId::kProgramAlgo, 2),
               std::invalid_argument);
  EXPECT_THROW(regs.write(RegisterId::kUberTargetExp, 0),
               std::invalid_argument);
}

TEST(Registers, FeedbackCountersAccumulate) {
  RegisterFile regs;
  regs.record_decode(5, false);
  regs.record_decode(7, false);
  regs.record_decode(0, true);
  EXPECT_EQ(regs.corrected_bits(), 12u);
  EXPECT_EQ(regs.decoded_pages(), 3u);
  EXPECT_EQ(regs.uncorrectable_pages(), 1u);
  regs.clear_counters();
  EXPECT_EQ(regs.corrected_bits(), 0u);
  EXPECT_EQ(regs.decoded_pages(), 0u);
}

TEST(Registers, BusyAndErrorFlags) {
  RegisterFile regs;
  regs.set_busy(true);
  EXPECT_TRUE(regs.busy());
  EXPECT_EQ(regs.read(RegisterId::kStatus) & 1u, 1u);
  regs.set_error(true);
  EXPECT_EQ(regs.read(RegisterId::kStatus) & 2u, 2u);
  regs.set_busy(false);
  EXPECT_FALSE(regs.busy());
  EXPECT_EQ(regs.read(RegisterId::kStatus) & 2u, 2u);  // error sticks
}

TEST(Ocp, ConfigAccessesAreSingleBeat) {
  const OcpSocket socket{OcpConfig{}};
  const Seconds t =
      socket.transfer_time({OcpCommand::kConfigWrite, 0x10, 4});
  // Network latency + one clock.
  EXPECT_NEAR(t.micros(), 0.5 + 0.005, 1e-6);
}

TEST(Ocp, BurstTimeScalesWithSize) {
  const OcpSocket socket{OcpConfig{}};
  const Seconds page =
      socket.transfer_time({OcpCommand::kWrite, 0, 4096});
  // 4096 bytes over a 32-bit socket at 200 MHz: 1024 beats = 5.12 us.
  EXPECT_NEAR(page.micros(), 0.5 + 5.12, 1e-3);
  EXPECT_NEAR(socket.burst_time(8192) / socket.burst_time(4096), 2.0, 1e-9);
}

TEST(Ocp, SocketIsFastAgainstFlash) {
  // Fig. 1 rationale: "the network is typically much faster than the
  // flash device" — a page burst must be well under the 75 us read.
  const OcpSocket socket{OcpConfig{}};
  EXPECT_LT(socket.transfer_time({OcpCommand::kRead, 0, 4096}).micros(),
            20.0);
}

TEST(Ocp, TrafficAccounting) {
  OcpSocket socket{OcpConfig{}};
  socket.record({OcpCommand::kWrite, 0, 4096});
  socket.record({OcpCommand::kConfigRead, 0, 4});
  EXPECT_EQ(socket.requests_served(), 2u);
  EXPECT_EQ(socket.bytes_moved(), 4096u);  // config beats don't count
}

TEST(PageBuffer, HandOffProtocol) {
  PageBuffer buffer{PageBufferConfig{}};
  EXPECT_FALSE(buffer.occupied());
  BitVec data(1024);
  data.set(5, true);
  const Seconds load_time = buffer.load(data);
  EXPECT_GT(load_time.value(), 0.0);
  EXPECT_TRUE(buffer.occupied());
  EXPECT_TRUE(buffer.content().get(5));
  // Double-load violates the single-page hand-off.
  EXPECT_THROW(buffer.load(data), std::invalid_argument);
  const BitVec out = buffer.unload();
  EXPECT_TRUE(out.get(5));
  EXPECT_FALSE(buffer.occupied());
  EXPECT_THROW(buffer.unload(), std::invalid_argument);
}

TEST(PageBuffer, CapacityEnforced) {
  PageBuffer buffer{PageBufferConfig{.capacity_bits = 128,
                                     .bandwidth = BytesPerSecond::mib(100)}};
  EXPECT_THROW(buffer.load(BitVec(256)), std::invalid_argument);
  EXPECT_NO_THROW(buffer.load(BitVec(128)));
}

TEST(PageBuffer, StreamTimeFollowsBandwidth) {
  PageBuffer buffer{PageBufferConfig{}};
  const Seconds one_page = buffer.stream_time(32768);
  // 4 KiB at 800 MiB/s: ~4.9 us.
  EXPECT_NEAR(one_page.micros(), 4096.0 / (800.0 * 1024.0 * 1024.0) * 1e6,
              1e-3);
}

}  // namespace
}  // namespace xlf::controller
