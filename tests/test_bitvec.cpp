#include "src/util/bitvec.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/util/rng.hpp"

namespace xlf {
namespace {

TEST(BitVec, StartsZeroed) {
  BitVec v(100);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v.popcount(), 0u);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_FALSE(v.get(i));
}

TEST(BitVec, SetGetFlip) {
  BitVec v(130);
  v.set(0, true);
  v.set(64, true);
  v.set(129, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(129));
  EXPECT_EQ(v.popcount(), 3u);
  v.flip(64);
  EXPECT_FALSE(v.get(64));
  v.flip(65);
  EXPECT_TRUE(v.get(65));
  EXPECT_EQ(v.popcount(), 3u);
}

TEST(BitVec, OutOfRangeThrows) {
  BitVec v(10);
  EXPECT_THROW(v.get(10), std::invalid_argument);
  EXPECT_THROW(v.set(10, true), std::invalid_argument);
  EXPECT_THROW(v.flip(10), std::invalid_argument);
}

TEST(BitVec, SetPositionsAscending) {
  BitVec v(200);
  v.set(5, true);
  v.set(199, true);
  v.set(64, true);
  const auto positions = v.set_positions();
  ASSERT_EQ(positions.size(), 3u);
  EXPECT_EQ(positions[0], 5u);
  EXPECT_EQ(positions[1], 64u);
  EXPECT_EQ(positions[2], 199u);
}

TEST(BitVec, HammingDistance) {
  BitVec a(128), b(128);
  a.set(3, true);
  a.set(70, true);
  b.set(70, true);
  b.set(100, true);
  EXPECT_EQ(a.hamming_distance(b), 2u);
  EXPECT_EQ(a.hamming_distance(a), 0u);
}

TEST(BitVec, XorAccumulate) {
  BitVec a(128), b(128);
  a.set(1, true);
  a.set(2, true);
  b.set(2, true);
  b.set(3, true);
  a ^= b;
  EXPECT_TRUE(a.get(1));
  EXPECT_FALSE(a.get(2));
  EXPECT_TRUE(a.get(3));
}

TEST(BitVec, SliceAlignedAndUnaligned) {
  BitVec v(256);
  for (std::size_t i = 0; i < 256; i += 3) v.set(i, true);

  const BitVec aligned = v.slice(64, 128);
  EXPECT_EQ(aligned.size(), 128u);
  for (std::size_t i = 0; i < 128; ++i) {
    EXPECT_EQ(aligned.get(i), v.get(64 + i)) << "bit " << i;
  }

  const BitVec unaligned = v.slice(13, 77);
  EXPECT_EQ(unaligned.size(), 77u);
  for (std::size_t i = 0; i < 77; ++i) {
    EXPECT_EQ(unaligned.get(i), v.get(13 + i)) << "bit " << i;
  }
}

TEST(BitVec, InsertRoundTripsSlice) {
  Rng rng(42);
  BitVec v(512);
  for (std::size_t i = 0; i < v.size(); ++i) v.set(i, rng.chance(0.5));

  BitVec dst(512);
  dst.insert(128, v.slice(128, 256));
  for (std::size_t i = 0; i < 256; ++i) {
    EXPECT_EQ(dst.get(128 + i), v.get(128 + i));
  }

  // Unaligned insert.
  BitVec dst2(512);
  dst2.insert(3, v.slice(0, 100));
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(dst2.get(3 + i), v.get(i));
  }
}

TEST(BitVec, ByteAccess) {
  BitVec v(64);
  v.set_byte(0, 0xA5);
  v.set_byte(7, 0xFF);
  EXPECT_EQ(v.byte(0), 0xA5);
  EXPECT_EQ(v.byte(7), 0xFF);
  // Byte 0 covers bits 0..7 little-endian.
  EXPECT_TRUE(v.get(0));
  EXPECT_FALSE(v.get(1));
  EXPECT_TRUE(v.get(2));
  EXPECT_TRUE(v.get(7));
}

TEST(BitVec, ByteWriteDoesNotDisturbNeighbours) {
  BitVec v(24);
  v.set_byte(0, 0xFF);
  v.set_byte(2, 0xFF);
  v.set_byte(1, 0x81);
  EXPECT_EQ(v.byte(0), 0xFF);
  EXPECT_EQ(v.byte(1), 0x81);
  EXPECT_EQ(v.byte(2), 0xFF);
}

TEST(BitVec, TailBitsStayMasked) {
  BitVec v(70);  // 6 tail bits in second word
  for (std::size_t i = 0; i < 70; ++i) v.set(i, true);
  EXPECT_EQ(v.popcount(), 70u);
  const auto positions = v.set_positions();
  EXPECT_EQ(positions.size(), 70u);
  EXPECT_EQ(positions.back(), 69u);
}

TEST(BitVec, EqualityIncludesLength) {
  BitVec a(10), b(10), c(11);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  b.set(9, true);
  EXPECT_FALSE(a == b);
}

TEST(BitVec, ClearResets) {
  BitVec v(128);
  v.set(5, true);
  v.set(127, true);
  v.clear();
  EXPECT_EQ(v.popcount(), 0u);
  EXPECT_EQ(v.size(), 128u);
}

}  // namespace
}  // namespace xlf
