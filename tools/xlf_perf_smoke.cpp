// Performance smoke for the hot-path trajectory file (BENCH_8.json):
// wall-clock ops/s of GC victim selection at production block counts
// (incremental index vs the linear oracle, both built-in policies),
// the multi-queue host submission path, and one 65536-block FTL-sweep
// cell on the metadata-only data plane. Numbers are machine-dependent
// by nature — the checked-in JSON records the reference container;
// CI regenerates the file as a build artifact and (--check) gates
// only the machine-independent claim, the indexed-vs-linear speedup.
//
// Usage: xlf_perf_smoke [--check] [OUT.json]   (default: stdout)
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/explore/ftl_sweep.hpp"
#include "src/ftl/allocator.hpp"
#include "src/host/command.hpp"
#include "src/host/queues.hpp"
#include "src/policy/registry.hpp"
#include "src/util/rng.hpp"
#include "src/util/thread_pool.hpp"

namespace {

using namespace xlf;

using Clock = std::chrono::steady_clock;

// Time `op` in batches until ~0.15 s has elapsed; returns ops/s.
// `batch` sizes the granularity so slow ops (a multi-ms linear scan
// over 64k blocks) still get a faithful reading without a long run.
template <class Op>
double ops_per_second(Op&& op, std::size_t batch) {
  for (std::size_t i = 0; i < batch; ++i) op();  // warm-up
  std::size_t total = 0;
  const Clock::time_point begin = Clock::now();
  Clock::time_point end = begin;
  do {
    for (std::size_t i = 0; i < batch; ++i) op();
    total += batch;
    end = Clock::now();
  } while (end - begin < std::chrono::milliseconds(150));
  const std::chrono::duration<double> wall = end - begin;
  return static_cast<double>(total) / wall.count();
}

constexpr std::uint32_t kBlocks = 65536;
constexpr std::uint32_t kPages = 16;

// Same steady-state shape as bench_ftl's BM_VictimIndex: closed
// blocks with a random valid profile; each op is a pick plus an
// invalidate/remap churn pair (net-zero, so the population holds).
struct VictimFixture {
  ftl::DieAllocator alloc;
  std::vector<std::uint32_t> churn;
  std::uint64_t now = 1u << 20;
  std::size_t i = 0;

  explicit VictimFixture(ftl::GcIndexKind kind)
      : alloc(ftl::AllocatorConfig{
            kBlocks, kPages,
            policy::PolicyRegistry<policy::WearPolicy>::instance()
                .make_shared("dynamic"),
            kind}) {
    Rng rng(11);
    for (std::uint32_t b = 0; b + 4 < kBlocks; ++b) {
      std::uint32_t block = 0;
      for (std::uint32_t p = 0; p < kPages; ++p) {
        block = alloc.take_page(ftl::DieAllocator::Stream::kHost).first;
      }
      const auto valid = static_cast<std::uint32_t>(rng.below(kPages + 1));
      for (std::uint32_t v = 0; v < valid; ++v) alloc.on_page_mapped(block);
      alloc.stamp_write(block, rng.below(1u << 20));
      if (valid >= 1) churn.push_back(block);
    }
  }

  double measure(const std::string& policy_name, std::size_t batch) {
    const auto policy =
        policy::PolicyRegistry<policy::GcPolicy>::instance().make(policy_name);
    const auto valid_count = [this](std::uint32_t b) {
      return alloc.cached_valid(b);
    };
    return ops_per_second(
        [&] {
          const auto victim = alloc.pick_victim(*policy, valid_count, now++);
          static_cast<void>(victim);
          const std::uint32_t target = churn[i++ % churn.size()];
          alloc.on_page_invalidated(target);
          alloc.on_page_mapped(target);
        },
        batch);
  }
};

double host_submission_ops(const char* arbitration) {
  host::HostConfig config;
  config.queues = 8;
  config.arbitration = arbitration;
  config.queue_weights = {32, 16, 8, 8, 4, 4, 2, 1};
  host::HostInterface iface(config);
  host::Command command;
  command.type = host::CmdType::kWrite;
  for (std::uint16_t q = 0; q < 8; ++q) {
    command.queue = q;
    for (int i = 0; i < 4; ++i) iface.submit(command, Seconds{0.0});
  }
  double clock = 0.0;
  return ops_per_second(
      [&] {
        const auto pick = iface.arbitrate();
        auto [head, arrival] = iface.pop(*pick);
        iface.submit(head, Seconds{clock});
        host::Completion done;
        done.type = head.type;
        done.queue = head.queue;
        done.submitted = arrival;
        done.completed = Seconds{clock += 1e-6};
        iface.complete(done);
      },
      4096);
}

// One production-geometry sweep cell on the metadata-only data plane:
// 65536 blocks x 16 pages, QD 8, greedy GC under static tuning.
double sweep_cell_commands_per_second() {
  explore::FtlSweepSpec spec;
  spec.base.die.device.array.geometry.blocks = kBlocks;
  spec.base.die.device.array.geometry.pages_per_block = kPages;
  spec.topologies = {{1, 1}};
  spec.queue_depths = {8};
  spec.gc_policies = {"greedy"};
  spec.tuning_policies = {"static"};
  spec.requests = 100000;
  spec.data_plane = false;
  spec.measure_throughput = true;
  ThreadPool pool(1);
  const explore::FtlSweepResult result = explore::ftl_sweep(spec, pool);
  return result.throughput_commands_per_second.at(0);
}

std::string num(double v) {
  std::ostringstream out;
  out.precision(9);
  out << v;
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      out_path = argv[i];
    }
  }

  VictimFixture greedy_indexed(ftl::GcIndexKind::kGreedy);
  VictimFixture cb_indexed(ftl::GcIndexKind::kCostBenefit);
  VictimFixture linear(ftl::GcIndexKind::kNone);

  const double greedy_idx = greedy_indexed.measure("greedy", 4096);
  const double cb_idx = cb_indexed.measure("cost-benefit", 4096);
  const double greedy_lin = linear.measure("greedy", 16);
  const double cb_lin = linear.measure("cost-benefit", 16);
  const double rr = host_submission_ops("round-robin");
  const double weighted = host_submission_ops("weighted");
  const double cell = sweep_cell_commands_per_second();

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"hot-path perf smoke (PR 8)\",\n"
       << "  \"victim_pick_ops_per_s\": {\n"
       << "    \"blocks\": " << kBlocks << ",\n"
       << "    \"pages_per_block\": " << kPages << ",\n"
       << "    \"greedy_indexed\": " << num(greedy_idx) << ",\n"
       << "    \"greedy_linear\": " << num(greedy_lin) << ",\n"
       << "    \"greedy_speedup\": " << num(greedy_idx / greedy_lin) << ",\n"
       << "    \"cost_benefit_indexed\": " << num(cb_idx) << ",\n"
       << "    \"cost_benefit_linear\": " << num(cb_lin) << ",\n"
       << "    \"cost_benefit_speedup\": " << num(cb_idx / cb_lin) << "\n"
       << "  },\n"
       << "  \"host_submission_ops_per_s\": {\n"
       << "    \"round_robin\": " << num(rr) << ",\n"
       << "    \"weighted\": " << num(weighted) << "\n"
       << "  },\n"
       << "  \"ftl_sweep_cell\": {\n"
       << "    \"blocks\": " << kBlocks << ",\n"
       << "    \"pages_per_block\": " << kPages << ",\n"
       << "    \"topology\": \"1x1\",\n"
       << "    \"queue_depth\": 8,\n"
       << "    \"requests\": 100000,\n"
       << "    \"data_plane\": \"meta\",\n"
       << "    \"commands_per_s\": " << num(cell) << "\n"
       << "  }\n"
       << "}\n";

  if (out_path.empty()) {
    std::cout << json.str();
  } else {
    std::ofstream out(out_path);
    out << json.str();
    if (!out) {
      std::cerr << "xlf_perf_smoke: cannot write " << out_path << "\n";
      return 1;
    }
    std::cout << "wrote " << out_path << "\n";
  }

  if (check) {
    // The machine-independent gate: the incremental index must beat
    // the linear oracle by >= 10x at 64k blocks (the observed margin
    // is orders of magnitude larger, so this cannot flake on a noisy
    // runner without a real regression).
    const double floor = 10.0;
    if (greedy_idx / greedy_lin < floor || cb_idx / cb_lin < floor) {
      std::cerr << "xlf_perf_smoke: victim-index speedup below " << floor
                << "x (greedy " << num(greedy_idx / greedy_lin)
                << "x, cost-benefit " << num(cb_idx / cb_lin) << "x)\n";
      return 1;
    }
  }
  return 0;
}
